package streamsample

import (
	"repro/internal/core"
	"repro/internal/moments"
	"repro/internal/stream"
)

// TwoPassL0Sampler is the two-pass variant of the L0 sampler from the
// paper's appendix remark: a first pass estimates the support size, letting
// the second pass maintain a single exact-recovery level instead of ⌊log n⌋
// of them. Use it when the stream can be replayed (stored logs, two-phase
// pipelines) and space matters more than pass count.
//
// Protocol: feed the whole stream, call EndPass1, feed the whole stream
// again, then Sample.
type TwoPassL0Sampler struct {
	n     int
	opts  options
	inner *core.TwoPassL0Sampler
}

var _ Sketch = (*TwoPassL0Sampler)(nil)

// NewTwoPassL0Sampler creates the sampler for dimension n.
func NewTwoPassL0Sampler(n int, opts ...Option) *TwoPassL0Sampler {
	o := buildOptions(opts)
	return &TwoPassL0Sampler{n: n, opts: o, inner: core.NewTwoPassL0Sampler(n, o.delta, o.rng())}
}

// Update applies x[i] += delta in the current pass.
func (s *TwoPassL0Sampler) Update(i int, delta int64) {
	s.inner.Process(stream.Update{Index: i, Delta: delta})
}

// Process implements the stream.Sink interface.
func (s *TwoPassL0Sampler) Process(u Update) { s.inner.Process(u) }

// ProcessBatch implements the stream.BatchSink fast path for the current
// pass.
func (s *TwoPassL0Sampler) ProcessBatch(batch []Update) { s.inner.ProcessBatch(batch) }

// EndPass1 commits the subsampling level; call exactly once between the two
// replays of the stream.
func (s *TwoPassL0Sampler) EndPass1() { s.inner.EndPass1() }

// Merge adds another sampler's state for the current pass: shard the
// stream, merge the pass-1 replicas, EndPass1 everywhere with the merged
// estimate's level, then shard pass 2 the same way. Both samplers must be
// same-seed replicas in the same pass (pass-2 merges additionally require
// an identical committed level).
func (s *TwoPassL0Sampler) Merge(other Sketch) error {
	o, err := mergeTarget[TwoPassL0Sampler](other)
	if err != nil {
		return err
	}
	return s.inner.Merge(o.inner)
}

// Sample returns a uniform support element with its exact value.
func (s *TwoPassL0Sampler) Sample() (index int, value int64, ok bool) {
	out, ok := s.inner.Sample()
	return out.Index, int64(out.Estimate), ok
}

// SpaceBits reports the sketch size.
func (s *TwoPassL0Sampler) SpaceBits() int64 { return s.inner.SpaceBits() }

// FpEstimator estimates the frequency moment F_p = Σ|x_i|^p for p > 2 by
// importance sampling over L1 samples — the [23] application the paper's
// samplers were designed to speed up.
type FpEstimator struct {
	p       float64
	n       int
	samples int
	opts    options
	inner   *moments.FpEstimator
}

var _ Sketch = (*FpEstimator)(nil)

// NewFpEstimator creates an estimator for exponent p > 2 over dimension n,
// with the given number of independent samplers (the accuracy knob; a few
// dozen give constant-factor estimates on moderately skewed data).
func NewFpEstimator(p float64, n, samples int, opts ...Option) *FpEstimator {
	if samples < 1 {
		samples = 1 // mirror moments.NewFp, keeping the recorded config canonical
	}
	o := buildOptions(opts)
	return &FpEstimator{p: p, n: n, samples: samples, opts: o,
		inner: moments.NewFp(p, n, samples, o.rng())}
}

// Update applies x[i] += delta.
func (e *FpEstimator) Update(i int, delta int64) {
	e.inner.Process(stream.Update{Index: i, Delta: delta})
}

// Process implements the stream.Sink interface.
func (e *FpEstimator) Process(u Update) { e.inner.Process(u) }

// ProcessBatch implements the stream.BatchSink fast path.
func (e *FpEstimator) ProcessBatch(batch []Update) { e.inner.ProcessBatch(batch) }

// Merge adds another estimator's state; both must be *FpEstimator built
// with the same parameters and WithSeed value.
func (e *FpEstimator) Merge(other Sketch) error {
	o, err := mergeTarget[FpEstimator](other)
	if err != nil {
		return err
	}
	return e.inner.Merge(o.inner)
}

// Estimate returns the F_p estimate; ok is false when the vector is zero or
// every sampler failed.
func (e *FpEstimator) Estimate() (float64, bool) { return e.inner.Estimate() }

// SpaceBits reports the sketch size.
func (e *FpEstimator) SpaceBits() int64 { return e.inner.SpaceBits() }
