package streamsample

import (
	"repro/internal/core"
	"repro/internal/moments"
	"repro/internal/stream"
)

// TwoPassL0Sampler is the two-pass variant of the L0 sampler from the
// paper's appendix remark: a first pass estimates the support size, letting
// the second pass maintain a single exact-recovery level instead of ⌊log n⌋
// of them. Use it when the stream can be replayed (stored logs, two-phase
// pipelines) and space matters more than pass count.
//
// Protocol: feed the whole stream, call EndPass1, feed the whole stream
// again, then Sample.
type TwoPassL0Sampler struct {
	inner *core.TwoPassL0Sampler
}

// NewTwoPassL0Sampler creates the sampler for dimension n.
func NewTwoPassL0Sampler(n int, opts ...Option) *TwoPassL0Sampler {
	o := buildOptions(opts)
	return &TwoPassL0Sampler{inner: core.NewTwoPassL0Sampler(n, o.delta, o.rng())}
}

// Update applies x[i] += delta in the current pass.
func (s *TwoPassL0Sampler) Update(i int, delta int64) {
	s.inner.Process(stream.Update{Index: i, Delta: delta})
}

// Process implements the stream.Sink interface.
func (s *TwoPassL0Sampler) Process(u Update) { s.inner.Process(u) }

// EndPass1 commits the subsampling level; call exactly once between the two
// replays of the stream.
func (s *TwoPassL0Sampler) EndPass1() { s.inner.EndPass1() }

// Sample returns a uniform support element with its exact value.
func (s *TwoPassL0Sampler) Sample() (index int, value int64, ok bool) {
	out, ok := s.inner.Sample()
	return out.Index, int64(out.Estimate), ok
}

// SpaceBits reports the sketch size.
func (s *TwoPassL0Sampler) SpaceBits() int64 { return s.inner.SpaceBits() }

// FpEstimator estimates the frequency moment F_p = Σ|x_i|^p for p > 2 by
// importance sampling over L1 samples — the [23] application the paper's
// samplers were designed to speed up.
type FpEstimator struct {
	inner *moments.FpEstimator
}

// NewFpEstimator creates an estimator for exponent p > 2 over dimension n,
// with the given number of independent samplers (the accuracy knob; a few
// dozen give constant-factor estimates on moderately skewed data).
func NewFpEstimator(p float64, n, samples int, opts ...Option) *FpEstimator {
	o := buildOptions(opts)
	return &FpEstimator{inner: moments.NewFp(p, n, samples, o.rng())}
}

// Update applies x[i] += delta.
func (e *FpEstimator) Update(i int, delta int64) {
	e.inner.Process(stream.Update{Index: i, Delta: delta})
}

// Process implements the stream.Sink interface.
func (e *FpEstimator) Process(u Update) { e.inner.Process(u) }

// Estimate returns the F_p estimate; ok is false when the vector is zero or
// every sampler failed.
func (e *FpEstimator) Estimate() (float64, bool) { return e.inner.Estimate() }

// SpaceBits reports the sketch size.
func (e *FpEstimator) SpaceBits() int64 { return e.inner.SpaceBits() }
