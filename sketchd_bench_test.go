// Serving-tier benchmarks: the two ingest paths of the sketchd network
// tier, measured end-to-end through real HTTP — client framing, wire
// transfer, server-side decode/validation, and the sharded engine or merge
// tree behind the handler. Both are in the bench-gate set (see
// cmd/benchgate), so regressions in the serving hot path fail CI like any
// kernel regression.
package streamsample_test

import (
	"context"
	"math/rand/v2"
	"net/http/httptest"
	"testing"

	streamsample "repro"
	"repro/internal/sketchd"
	"repro/internal/stream"
)

// benchServe stands up a real registry-backed server on a loopback
// listener and returns a connected client plus the created sketch's
// coordinates.
func benchServe(b *testing.B, cfg sketchd.RegistryConfig, spec sketchd.Spec) *sketchd.Client {
	b.Helper()
	cfg.Dir = b.TempDir()
	reg, err := sketchd.OpenRegistry(cfg)
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(sketchd.NewServer(reg))
	b.Cleanup(func() {
		ts.Close()
		reg.Drain() //nolint:errcheck // benchmark teardown
	})
	c := sketchd.NewClient(ts.URL)
	if err := c.Create(context.Background(), "bench", "s", spec); err != nil {
		b.Fatal(err)
	}
	return c
}

// BenchmarkServeIngestRaw pushes a 60k-update turnstile stream per
// iteration as length-prefixed raw frames — the exporter path that rides
// the engine's write-ahead journal.
func BenchmarkServeIngestRaw(b *testing.B) {
	const n, seed, length = 1 << 14, 11, 60000
	c := benchServe(b, sketchd.RegistryConfig{Shards: 4}, sketchd.Spec{Kind: "l0", N: n, Seed: seed})
	st := stream.RandomTurnstile(n, length, 100, rand.New(rand.NewPCG(seed, seed)))
	ctx := context.Background()
	b.SetBytes(int64(len(st)) * 16) // wire bytes per iteration: 16 per update record
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for lo := 0; lo < len(st); lo += 2048 {
			hi := min(lo+2048, len(st))
			if _, err := c.PushUpdates(ctx, "bench", "s", st[lo:hi]); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkServeIngestSketch pushes 64 pre-folded exporter sketches per
// iteration — the upload path through Load, compatibility checks, and the
// hierarchical merge tree.
func BenchmarkServeIngestSketch(b *testing.B) {
	const n, seed, parts = 1 << 14, 11, 64
	c := benchServe(b, sketchd.RegistryConfig{FanIn: 8}, sketchd.Spec{Kind: "l0", N: n, Seed: seed})
	st := stream.RandomTurnstile(n, 60000, 100, rand.New(rand.NewPCG(seed, seed)))
	blobs := make([][]byte, parts)
	for p := 0; p < parts; p++ {
		local := streamsample.NewL0Sampler(n, streamsample.WithSeed(seed))
		var slice stream.Stream
		for j := p; j < len(st); j += parts {
			slice = append(slice, st[j])
		}
		local.ProcessBatch(slice)
		blob, err := local.MarshalBinary()
		if err != nil {
			b.Fatal(err)
		}
		blobs[p] = blob
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, blob := range blobs {
			if err := c.PushSketch(ctx, "bench", "s", blob, false); err != nil {
				b.Fatal(err)
			}
		}
	}
}
