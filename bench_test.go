// Root benchmark harness: one testing.B benchmark per evaluation table
// (E1-E11, A1-A3), plus the serial-vs-sharded ingestion benchmarks of the
// engine. Each experiment benchmark executes the same code path as
// `cmd/experiments -run <ID>` in quick mode, so `go test -bench=.` at the
// repository root regenerates every experiment under the benchmark clock.
//
// Per-operation micro-benchmarks (update throughput, recovery latency) live
// next to their packages under internal/.
package streamsample_test

import (
	"io"
	"math/rand/v2"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/countsketch"
	"repro/internal/duplicates"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/graphsketch"
	"repro/internal/stream"
)

func benchExperiment(b *testing.B, id string) {
	cfg := experiments.Config{Seed: 1, Quick: true}
	for i := 0; i < b.N; i++ {
		tbl, ok := experiments.Run(id, cfg)
		if !ok {
			b.Fatalf("unknown experiment %s", id)
		}
		if len(tbl.Rows) == 0 {
			b.Fatalf("experiment %s produced no rows", id)
		}
		if i == 0 && testing.Verbose() {
			tbl.Render(io.Discard)
		}
	}
}

// ---------------------------------------------------------------------------
// Ingestion throughput: serial single-sink vs sharded engine.
// ---------------------------------------------------------------------------

// The headline workload of the engine acceptance test: a 10M-update general
// turnstile stream. Generated once and shared across the ingestion
// benchmarks so the comparison isolates the sinks.
const (
	ingestLen = 10_000_000
	ingestN   = 1 << 16
)

var (
	ingestOnce   sync.Once
	ingestStream stream.Stream
)

func ingestWorkload() stream.Stream {
	ingestOnce.Do(func() {
		ingestStream = stream.RandomTurnstile(ingestN, ingestLen, 100, rand.New(rand.NewPCG(17, 29)))
	})
	return ingestStream
}

func newIngestSketch() *countsketch.Sketch {
	return countsketch.New(64, 12, rand.New(rand.NewPCG(3, 5)))
}

func reportThroughput(b *testing.B, updates int) {
	b.ReportMetric(float64(updates)*float64(b.N)/b.Elapsed().Seconds(), "updates/s")
}

// BenchmarkIngestSerial is the baseline: one count-sketch consuming the
// stream one Process call at a time.
func BenchmarkIngestSerial(b *testing.B) {
	st := ingestWorkload()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Feed(newIngestSketch())
	}
	reportThroughput(b, len(st))
}

// BenchmarkIngestSerialBatched isolates the ProcessBatch hot-path gain
// without sharding.
func BenchmarkIngestSerialBatched(b *testing.B) {
	st := ingestWorkload()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.FeedBatch(1024, newIngestSketch())
	}
	reportThroughput(b, len(st))
}

// BenchmarkIngestSerialBatchedWide drives the same stream through a wide
// count-sketch (m = 2^14: 98304 buckets per row, DRAM-resident) — the regime
// the prefetched counter-scatter kernel targets. Not part of the bench-gate
// baseline set (the gate regexp is $-anchored).
func BenchmarkIngestSerialBatchedWide(b *testing.B) {
	st := ingestWorkload()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.FeedBatch(1024, countsketch.New(1<<14, 4, rand.New(rand.NewPCG(3, 5))))
	}
	reportThroughput(b, len(st))
}

// BenchmarkIngestEngine is the full shard → batch → merge pipeline at
// GOMAXPROCS shards; on a multi-core runner it should beat BenchmarkIngestSerial
// by ≥ 2x.
func BenchmarkIngestEngine(b *testing.B) {
	st := ingestWorkload()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := engine.New(engine.Config{},
			func(int) *countsketch.Sketch { return newIngestSketch() },
			func(dst, src *countsketch.Sketch) error { return dst.Merge(src) })
		eng.Feed(st)
		if _, err := eng.Results(); err != nil {
			b.Fatal(err)
		}
	}
	reportThroughput(b, len(st))
}

// BenchmarkIngestL0Serial / BenchmarkIngestL0Engine run the same comparison
// on the much heavier L0 sampler update path (1M updates).
func BenchmarkIngestL0Serial(b *testing.B) {
	st := ingestWorkload()[:1_000_000]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sk := core.NewL0Sampler(core.L0Config{N: ingestN, Delta: 0.2}, rand.New(rand.NewPCG(7, 11)))
		st.Feed(sk)
	}
	reportThroughput(b, len(st))
}

// BenchmarkIngestL0SerialNested is the serial L0 ingest with the dyadic
// nested level assignment (L0Config.NestedLevels): one PRG tree walk per
// update decides every level's membership at once.
func BenchmarkIngestL0SerialNested(b *testing.B) {
	st := ingestWorkload()[:1_000_000]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sk := core.NewL0Sampler(core.L0Config{N: ingestN, Delta: 0.2, NestedLevels: true}, rand.New(rand.NewPCG(7, 11)))
		st.Feed(sk)
	}
	reportThroughput(b, len(st))
}

func BenchmarkIngestL0Engine(b *testing.B) {
	st := ingestWorkload()[:1_000_000]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := engine.New(engine.Config{},
			func(int) *core.L0Sampler {
				return core.NewL0Sampler(core.L0Config{N: ingestN, Delta: 0.2}, rand.New(rand.NewPCG(7, 11)))
			},
			func(dst, src *core.L0Sampler) error { return dst.Merge(src) })
		eng.Feed(st)
		if _, err := eng.Results(); err != nil {
			b.Fatal(err)
		}
	}
	reportThroughput(b, len(st))
}

// BenchmarkIngestEngineSkew runs the elastic production configuration —
// skew-aware hot-key routing, work-stealing, Spill backpressure — on a
// zipf-heavy variant of the ingest workload where half of all updates hit
// eight keys. Not part of the bench-gate baseline set (the gate regexp is
// $-anchored); it tracks the cost of the elastic machinery itself.
var (
	skewOnce   sync.Once
	skewStream stream.Stream
)

func BenchmarkIngestEngineSkew(b *testing.B) {
	skewOnce.Do(func() {
		r := rand.New(rand.NewPCG(23, 41))
		skewStream = make(stream.Stream, ingestLen)
		for i := range skewStream {
			idx := r.IntN(ingestN)
			if i%2 == 0 {
				idx = r.IntN(8) // hot set: 8 keys carry half the traffic
			}
			skewStream[i] = stream.Update{Index: idx, Delta: int64(1 + i%7)}
		}
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := engine.New(engine.Config{
			Backpressure:  engine.Spill,
			WorkStealing:  true,
			HotKeyRouting: true,
		},
			func(int) *countsketch.Sketch { return newIngestSketch() },
			func(dst, src *countsketch.Sketch) error { return dst.Merge(src) })
		eng.Feed(skewStream)
		if _, err := eng.Results(); err != nil {
			b.Fatal(err)
		}
	}
	reportThroughput(b, len(skewStream))
}

// ---------------------------------------------------------------------------
// Query-side throughput: repeated decodes on ingested sketches.
// ---------------------------------------------------------------------------

// BenchmarkQueryL0Sample measures repeated Sample() calls on an L0 sampler
// holding the 1M-update ingest prefix: the Theorem 2 recovery path (Chien
// scan + Vandermonde solve per level) and, after PR 4, the memoized decode
// on an unchanged sketch.
func BenchmarkQueryL0Sample(b *testing.B) {
	st := ingestWorkload()[:1_000_000]
	sk := core.NewL0Sampler(core.L0Config{N: ingestN, Delta: 0.2}, rand.New(rand.NewPCG(7, 11)))
	st.FeedBatch(2048, sk)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sk.Sample()
	}
}

// BenchmarkQueryGraphConnectivity is the end-to-end connectivity query: the
// full Borůvka merge-and-sample pipeline over a batch-ingested random graph
// (the sketch is consumed, so each iteration rebuilds it off the clock).
func BenchmarkQueryGraphConnectivity(b *testing.B) {
	const v = 48
	r := rand.New(rand.NewPCG(71, 72))
	edges := make([][2]int, 3*v)
	for i := range edges {
		u := r.IntN(v)
		w := r.IntN(v - 1)
		if w >= u {
			w++
		}
		edges[i] = [2]int{u, w}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		g := graphsketch.New(v, 0.2, rand.New(rand.NewPCG(61, 62)))
		g.AddEdges(edges)
		b.StartTimer()
		g.SpanningForest()
	}
}

// BenchmarkQueryDuplicatesFind measures repeated duplicate queries against
// an ingested Theorem 4 short stream (the exact sparse-recovery path).
func BenchmarkQueryDuplicatesFind(b *testing.B) {
	r := rand.New(rand.NewPCG(31, 32))
	const n, s = 1 << 12, 8
	sf := duplicates.NewShortFinder(n, s, 0.2, r)
	letters := make([]int, 0, n-s)
	for i := 0; i < n-2*s; i++ {
		letters = append(letters, i)
	}
	for i := 0; i < s; i++ {
		letters = append(letters, i)
	}
	sf.ProcessItems(letters)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := sf.Find(); res.Kind != duplicates.Duplicate {
			b.Fatalf("query failed: %+v", res)
		}
	}
}

func BenchmarkE1LpSamplerTV(b *testing.B)         { benchExperiment(b, "E1") }
func BenchmarkE2SpaceScaling(b *testing.B)        { benchExperiment(b, "E2") }
func BenchmarkE3L0Sampler(b *testing.B)           { benchExperiment(b, "E3") }
func BenchmarkE4Duplicates(b *testing.B)          { benchExperiment(b, "E4") }
func BenchmarkE5DuplicatesShort(b *testing.B)     { benchExperiment(b, "E5") }
func BenchmarkE6DuplicatesLong(b *testing.B)      { benchExperiment(b, "E6") }
func BenchmarkE7LowerBoundPipeline(b *testing.B)  { benchExperiment(b, "E7") }
func BenchmarkE8HeavyHitters(b *testing.B)        { benchExperiment(b, "E8") }
func BenchmarkE9CountSketchTail(b *testing.B)     { benchExperiment(b, "E9") }
func BenchmarkE10NormEstimation(b *testing.B)     { benchExperiment(b, "E10") }
func BenchmarkE11URProtocol(b *testing.B)         { benchExperiment(b, "E11") }
func BenchmarkE12Extensions(b *testing.B)         { benchExperiment(b, "E12") }
func BenchmarkA1ScalingIndependence(b *testing.B) { benchExperiment(b, "A1") }
func BenchmarkA2STest(b *testing.B)               { benchExperiment(b, "A2") }
func BenchmarkA3SketchWidth(b *testing.B)         { benchExperiment(b, "A3") }
