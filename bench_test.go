// Root benchmark harness: one testing.B benchmark per evaluation table
// (E1-E11, A1-A3). Each benchmark executes the same code path as
// `cmd/experiments -run <ID>` in quick mode, so `go test -bench=.` at the
// repository root regenerates every experiment under the benchmark clock.
//
// Per-operation micro-benchmarks (update throughput, recovery latency) live
// next to their packages under internal/.
package streamsample_test

import (
	"io"
	"testing"

	"repro/internal/experiments"
)

func benchExperiment(b *testing.B, id string) {
	cfg := experiments.Config{Seed: 1, Quick: true}
	for i := 0; i < b.N; i++ {
		tbl, ok := experiments.Run(id, cfg)
		if !ok {
			b.Fatalf("unknown experiment %s", id)
		}
		if len(tbl.Rows) == 0 {
			b.Fatalf("experiment %s produced no rows", id)
		}
		if i == 0 && testing.Verbose() {
			tbl.Render(io.Discard)
		}
	}
}

func BenchmarkE1LpSamplerTV(b *testing.B)         { benchExperiment(b, "E1") }
func BenchmarkE2SpaceScaling(b *testing.B)        { benchExperiment(b, "E2") }
func BenchmarkE3L0Sampler(b *testing.B)           { benchExperiment(b, "E3") }
func BenchmarkE4Duplicates(b *testing.B)          { benchExperiment(b, "E4") }
func BenchmarkE5DuplicatesShort(b *testing.B)     { benchExperiment(b, "E5") }
func BenchmarkE6DuplicatesLong(b *testing.B)      { benchExperiment(b, "E6") }
func BenchmarkE7LowerBoundPipeline(b *testing.B)  { benchExperiment(b, "E7") }
func BenchmarkE8HeavyHitters(b *testing.B)        { benchExperiment(b, "E8") }
func BenchmarkE9CountSketchTail(b *testing.B)     { benchExperiment(b, "E9") }
func BenchmarkE10NormEstimation(b *testing.B)     { benchExperiment(b, "E10") }
func BenchmarkE11URProtocol(b *testing.B)         { benchExperiment(b, "E11") }
func BenchmarkE12Extensions(b *testing.B)         { benchExperiment(b, "E12") }
func BenchmarkA1ScalingIndependence(b *testing.B) { benchExperiment(b, "A1") }
func BenchmarkA2STest(b *testing.B)               { benchExperiment(b, "A2") }
func BenchmarkA3SketchWidth(b *testing.B)         { benchExperiment(b, "A3") }
