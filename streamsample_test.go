package streamsample

import (
	"testing"
)

func TestPublicLpSampler(t *testing.T) {
	s := NewLpSampler(1, 64, WithSeed(1), WithEps(0.3), WithDelta(0.1))
	for i := 0; i < 64; i++ {
		s.Update(i, 1)
	}
	s.Update(9, 99999)
	idx, est, ok := s.Sample()
	if !ok {
		t.Fatal("sampler failed on dominated vector")
	}
	if idx != 9 {
		t.Fatalf("sampled %d, want dominant coordinate 9", idx)
	}
	if est < 50000 || est > 200000 {
		t.Fatalf("estimate %g far from 100000", est)
	}
	if s.SpaceBits() <= 0 {
		t.Error("SpaceBits must be positive")
	}
}

func TestPublicL0SamplerAndMerge(t *testing.T) {
	a := NewL0Sampler(128, WithSeed(7))
	b := NewL0Sampler(128, WithSeed(7))
	a.Update(3, 5)
	a.Update(10, 2)
	b.Update(3, -5) // cancels across sketches after merge
	b.Update(64, 1)
	if err := a.Merge(b); err != nil {
		t.Fatalf("same-seed merge failed: %v", err)
	}
	idx, val, ok := a.Sample()
	if !ok {
		t.Fatal("merged sampler failed")
	}
	want := map[int]int64{10: 2, 64: 1}
	if want[idx] != val {
		t.Fatalf("sampled (%d,%d), want a member of %v", idx, val, want)
	}
}

func TestPublicL0SamplerDeterministicSeed(t *testing.T) {
	a := NewL0Sampler(64, WithSeed(42))
	b := NewL0Sampler(64, WithSeed(42))
	for i := 0; i < 10; i++ {
		a.Update(i, int64(i+1))
		b.Update(i, int64(i+1))
	}
	ia, va, oka := a.Sample()
	ib, vb, okb := b.Sample()
	if ia != ib || va != vb || oka != okb {
		t.Fatal("same-seed samplers must agree")
	}
}

func TestPublicDuplicateFinder(t *testing.T) {
	found := 0
	for trial := 0; trial < 10; trial++ {
		d := NewDuplicateFinder(100, WithSeed(uint64(trial)), WithDelta(0.1))
		for i := 0; i < 100; i++ {
			d.Observe(i)
		}
		d.Observe(55) // the duplicate
		if letter, ok := d.Find(); ok {
			if letter != 55 {
				t.Fatalf("found %d, want 55", letter)
			}
			found++
		}
	}
	if found < 7 {
		t.Errorf("duplicate found only %d/10 times", found)
	}
}

func TestPublicHeavyHitters(t *testing.T) {
	h := NewHeavyHitters(1, 0.3, 256, WithSeed(3))
	for i := 0; i < 256; i++ {
		h.Update(i, 1)
	}
	h.Update(123, 5000)
	set := h.Report()
	ok := false
	for _, i := range set {
		if i == 123 {
			ok = true
		}
	}
	if !ok {
		t.Fatalf("heavy hitter 123 missing from %v", set)
	}
}

func TestProcessMatchesUpdate(t *testing.T) {
	a := NewLpSampler(1, 32, WithSeed(5))
	b := NewLpSampler(1, 32, WithSeed(5))
	a.Update(7, 10)
	b.Process(Update{Index: 7, Delta: 10})
	ia, _, oka := a.Sample()
	ib, _, okb := b.Sample()
	if ia != ib || oka != okb {
		t.Fatal("Update and Process must be equivalent")
	}
}

func TestPublicMergeNilRejected(t *testing.T) {
	if err := NewL0Sampler(64, WithSeed(1)).Merge(nil); err == nil {
		t.Error("L0Sampler.Merge(nil) must error")
	}
	if err := NewLpSampler(1, 64, WithSeed(1)).Merge(nil); err == nil {
		t.Error("LpSampler.Merge(nil) must error")
	}
	if err := NewDuplicateFinder(64, WithSeed(1)).Merge(nil); err == nil {
		t.Error("DuplicateFinder.Merge(nil) must error")
	}
	if err := NewHeavyHitters(1, 0.2, 64, WithSeed(1)).Merge(nil); err == nil {
		t.Error("HeavyHitters.Merge(nil) must error")
	}
}

func TestPublicL0SamplerNestedLevels(t *testing.T) {
	s := NewL0Sampler(256, WithSeed(9), WithNestedLevels())
	for i := 0; i < 40; i++ {
		s.Update(i, int64(i+1))
	}
	idx, val, ok := s.Sample()
	if !ok {
		t.Fatal("nested-mode sampler failed on 40-sparse vector")
	}
	if idx < 0 || idx >= 40 || val != int64(idx+1) {
		t.Fatalf("sampled (%d, %d), want exact support element", idx, val)
	}
	// Nested and default samplers are different constructions; merging them
	// must be rejected even with a shared seed.
	if err := NewL0Sampler(256, WithSeed(9)).Merge(s); err == nil {
		t.Error("merging nested into default-mode sampler must error")
	}
}
