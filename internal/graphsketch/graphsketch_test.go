package graphsketch

import (
	"math/rand/v2"
	"testing"
)

func TestEdgeSlotRoundTrip(t *testing.T) {
	g := New(10, 0.1, rand.New(rand.NewPCG(1, 1)))
	seen := map[int]bool{}
	for u := 0; u < 10; u++ {
		for w := u + 1; w < 10; w++ {
			s := g.EdgeSlot(u, w)
			if s < 0 || s >= g.slots {
				t.Fatalf("slot %d out of range", s)
			}
			if seen[s] {
				t.Fatalf("slot %d reused", s)
			}
			seen[s] = true
			ru, rw := g.SlotEdge(s)
			if ru != u || rw != w {
				t.Fatalf("SlotEdge(%d) = (%d,%d), want (%d,%d)", s, ru, rw, u, w)
			}
			if g.EdgeSlot(w, u) != s {
				t.Fatal("EdgeSlot must be symmetric")
			}
		}
	}
	if len(seen) != 45 {
		t.Fatalf("%d slots, want 45", len(seen))
	}
}

func TestPathGraphConnected(t *testing.T) {
	r := rand.New(rand.NewPCG(2, 2))
	const v = 32
	g := New(v, 0.1, r)
	for i := 1; i < v; i++ {
		g.AddEdge(i-1, i)
	}
	if !g.Connected() {
		t.Fatal("path graph reported disconnected")
	}
}

func TestTwoCliquesTwoComponents(t *testing.T) {
	r := rand.New(rand.NewPCG(3, 3))
	const v = 20
	g := New(v, 0.1, r)
	for a := 0; a < 10; a++ {
		for b := a + 1; b < 10; b++ {
			g.AddEdge(a, b)
			g.AddEdge(a+10, b+10)
		}
	}
	if got := g.Components(); got != 2 {
		t.Fatalf("components = %d, want 2", got)
	}
}

func TestDeletionDisconnects(t *testing.T) {
	// A bridge edge is inserted and then deleted: connectivity must flip.
	r := rand.New(rand.NewPCG(4, 4))
	const v = 16
	mk := func(withBridge bool) *Sketch {
		g := New(v, 0.05, r)
		// two paths 0..7 and 8..15
		for i := 1; i < 8; i++ {
			g.AddEdge(i-1, i)
			g.AddEdge(i+7, i+8)
		}
		g.AddEdge(3, 12) // bridge
		if !withBridge {
			g.RemoveEdge(3, 12)
		}
		return g
	}
	if !mk(true).Connected() {
		t.Fatal("bridged graph reported disconnected")
	}
	if mk(false).Connected() {
		t.Fatal("graph with deleted bridge reported connected")
	}
}

func TestSpanningForestSize(t *testing.T) {
	// A connected graph on v vertices yields exactly v-1 forest edges, and
	// every forest edge must be a real edge of the graph.
	r := rand.New(rand.NewPCG(5, 5))
	const v = 24
	g := New(v, 0.05, r)
	edges := map[[2]int]bool{}
	perm := r.Perm(v)
	for i := 1; i < v; i++ {
		a, b := perm[i-1], perm[i]
		g.AddEdge(a, b)
		if a > b {
			a, b = b, a
		}
		edges[[2]int{a, b}] = true
	}
	for k := 0; k < v; k++ { // random chords
		a, b := r.IntN(v), r.IntN(v)
		if a == b {
			continue
		}
		key := [2]int{min(a, b), max(a, b)}
		if edges[key] {
			continue
		}
		g.AddEdge(a, b)
		edges[key] = true
	}
	comp, forest := g.SpanningForest()
	c0 := comp[0]
	for _, c := range comp {
		if c != c0 {
			t.Fatal("connected graph split into components")
		}
	}
	if len(forest) != v-1 {
		t.Fatalf("forest has %d edges, want %d", len(forest), v-1)
	}
	for _, e := range forest {
		key := [2]int{min(e[0], e[1]), max(e[0], e[1])}
		if !edges[key] {
			t.Fatalf("forest edge %v is not a graph edge", e)
		}
	}
}

func TestChurnedChordsIrrelevant(t *testing.T) {
	// Insert many chords and delete them all: connectivity must rest only
	// on the surviving path.
	r := rand.New(rand.NewPCG(6, 6))
	const v = 24
	g := New(v, 0.05, r)
	for i := 1; i < v; i++ {
		g.AddEdge(i-1, i)
	}
	var chords [][2]int
	for k := 0; k < 4*v; k++ {
		a, b := r.IntN(v), r.IntN(v)
		if a != b {
			g.AddEdge(a, b)
			chords = append(chords, [2]int{a, b})
		}
	}
	for _, c := range chords {
		g.RemoveEdge(c[0], c[1])
	}
	if !g.Connected() {
		t.Fatal("post-churn path graph reported disconnected")
	}
}

func TestEmptyGraphAllSingletons(t *testing.T) {
	r := rand.New(rand.NewPCG(7, 7))
	g := New(8, 0.1, r)
	if got := g.Components(); got != 8 {
		t.Fatalf("empty graph components = %d, want 8", got)
	}
}

func TestSelfLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on self loop")
		}
	}()
	New(4, 0.1, rand.New(rand.NewPCG(8, 8))).AddEdge(2, 2)
}

func TestSpaceScalesWithVertices(t *testing.T) {
	r := rand.New(rand.NewPCG(9, 9))
	small := New(8, 0.2, r)
	big := New(64, 0.2, r)
	if big.SpaceBits() <= small.SpaceBits() {
		t.Error("space must grow with V")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// TestAddEdgesMatchesScalar pins the batched edge path to the scalar one
// bit-for-bit: same-seed sketches fed the same edges through AddEdges vs an
// AddEdge loop must hold identical linear state in every (round, vertex)
// sampler, and removals must cancel exactly.
func TestAddEdgesMatchesScalar(t *testing.T) {
	const v = 24
	mk := func() *Sketch { return New(v, 0.2, rand.New(rand.NewPCG(51, 52))) }
	scalar, batched := mk(), mk()
	r := rand.New(rand.NewPCG(53, 54))
	var edges [][2]int
	for i := 0; i < 200; i++ {
		u, w := r.IntN(v), r.IntN(v)
		if u == w {
			continue
		}
		edges = append(edges, [2]int{u, w})
	}
	for _, e := range edges {
		scalar.AddEdge(e[0], e[1])
	}
	batched.AddEdges(edges)
	for tr := 0; tr < scalar.rounds; tr++ {
		for vert := 0; vert < v; vert++ {
			a := scalar.sk[tr][vert].ExportState()
			b := batched.sk[tr][vert].ExportState()
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("round %d vertex %d: state differs at byte %d", tr, vert, i)
				}
			}
		}
	}
	// Batched removal of every edge must return the sketch to all-zero.
	batched.RemoveEdges(edges)
	for tr := 0; tr < batched.rounds; tr++ {
		for vert := 0; vert < v; vert++ {
			if _, ok := batched.sk[tr][vert].Sample(); ok {
				t.Fatalf("round %d vertex %d: state nonzero after removing all edges", tr, vert)
			}
		}
	}
}

// TestAddEdgesConnectivity runs the full Borůvka pipeline over a
// batch-ingested graph.
func TestAddEdgesConnectivity(t *testing.T) {
	const v = 32
	g := New(v, 0.1, rand.New(rand.NewPCG(55, 56)))
	edges := make([][2]int, 0, v-1)
	for i := 1; i < v; i++ {
		edges = append(edges, [2]int{i - 1, i})
	}
	g.AddEdges(edges)
	if !g.Connected() {
		t.Fatal("batch-ingested path graph must be connected")
	}
}

// BenchmarkGraphIngestBatched measures edge ingestion through AddEdges (the
// batched L0 path); BenchmarkGraphIngestScalar is the same workload through
// per-edge AddEdge calls. ns/op divided by the batch size is the per-edge
// cost across all rounds × 2 endpoint samplers.
func BenchmarkGraphIngestBatched(b *testing.B) {
	const v = 64
	g := New(v, 0.2, rand.New(rand.NewPCG(61, 62)))
	r := rand.New(rand.NewPCG(63, 64))
	edges := make([][2]int, 2048)
	for i := range edges {
		u := r.IntN(v)
		w := r.IntN(v - 1)
		if w >= u {
			w++
		}
		edges[i] = [2]int{u, w}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.AddEdges(edges)
	}
	b.ReportMetric(float64(b.N*len(edges))/b.Elapsed().Seconds(), "edges/s")
}

func BenchmarkGraphIngestScalar(b *testing.B) {
	const v = 64
	g := New(v, 0.2, rand.New(rand.NewPCG(61, 62)))
	r := rand.New(rand.NewPCG(63, 64))
	edges := make([][2]int, 2048)
	for i := range edges {
		u := r.IntN(v)
		w := r.IntN(v - 1)
		if w >= u {
			w++
		}
		edges[i] = [2]int{u, w}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, e := range edges {
			g.AddEdge(e[0], e[1])
		}
	}
	b.ReportMetric(float64(b.N*len(edges))/b.Elapsed().Seconds(), "edges/s")
}

// TestAddEdgesSelfLoopLeavesNoResidue: a batch containing a self loop must
// panic before any update is buffered or delivered, so a recovering caller
// can keep using the sketch.
func TestAddEdgesSelfLoopLeavesNoResidue(t *testing.T) {
	mk := func() *Sketch { return New(8, 0.2, rand.New(rand.NewPCG(65, 66))) }
	poisoned, clean := mk(), mk()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic on self loop in batch")
			}
		}()
		poisoned.AddEdges([][2]int{{0, 1}, {3, 3}})
	}()
	// The failed batch must not have touched any sampler or scratch state:
	// subsequent batched ingestion must match a never-poisoned sketch.
	edges := [][2]int{{0, 1}, {1, 2}, {4, 5}}
	poisoned.AddEdges(edges)
	clean.AddEdges(edges)
	for tr := 0; tr < clean.rounds; tr++ {
		for v := 0; v < 8; v++ {
			a := poisoned.sk[tr][v].ExportState()
			b := clean.sk[tr][v].ExportState()
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("round %d vertex %d: residue from failed batch at byte %d", tr, v, i)
				}
			}
		}
	}
}
