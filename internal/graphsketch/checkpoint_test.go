package graphsketch

import (
	"bytes"
	"math/rand/v2"
	"testing"

	"repro/internal/codec"
)

// TestCheckpointRoundTrip pins the graph summary's codec path: AppendState
// into a same-seed fresh instance reproduces every per-round, per-vertex
// sampler bit for bit, and the restored sketch answers connectivity
// queries like the original.
func TestCheckpointRoundTrip(t *testing.T) {
	const v = 24
	build := func() *Sketch { return New(v, 0.1, rand.New(rand.NewPCG(41, 42))) }
	edges := [][2]int{}
	for i := 0; i < v-1; i++ {
		edges = append(edges, [2]int{i, i + 1}) // a path: connected
	}
	orig := build()
	orig.AddEdges(edges)
	orig.RemoveEdge(0, 1) // a deletion, so the checkpoint carries churn
	orig.AddEdge(0, 1)

	e := codec.NewEncoder(codec.KindGraphSketch)
	orig.AppendState(e)

	restored := build()
	d, err := codec.NewDecoder(e.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	restored.RestoreState(d)
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}

	for tr := 0; tr < orig.rounds; tr++ {
		for vert := 0; vert < v; vert++ {
			a := orig.sk[tr][vert].ExportState()
			b := restored.sk[tr][vert].ExportState()
			if !bytes.Equal(a, b) {
				t.Fatalf("round %d vertex %d: restored sampler state differs", tr, vert)
			}
		}
	}
	if !restored.Connected() {
		t.Fatal("restored path graph must report connected")
	}
}
