// Package graphsketch builds dynamic graph connectivity on top of the
// paper's L0 sampler — the application that made Lp/L0 samplers a standard
// tool (Ahn, Guha, McGregor, SODA 2012, appeared one year after this
// paper's samplers).
//
// Each vertex v carries a signed incidence vector a_v over the
// (V choose 2) edge slots:
//
//	a_v[(u,w)] = +1 if v = u and edge {u,w} is present (u < w),
//	             -1 if v = w and edge {u,w} is present,
//	              0 otherwise.
//
// The single identity everything rests on: for any vertex set S,
// Σ_{v∈S} a_v has support exactly the cut edges of S, because an edge with
// both endpoints inside S contributes +1 and -1 to the same slot. Since the
// paper's L0 sampler is a linear sketch, merging the per-vertex sketches of
// S yields an L0 sample of the cut — a uniformly random edge leaving S —
// without storing adjacency. Borůvka's algorithm then builds a spanning
// forest in O(log V) rounds, each round consuming a fresh, independent batch
// of sketches (re-sampling the same sketch after conditioning on its answer
// would bias it, so the structure carries one batch per round).
//
// Edge insertions and deletions are ±1 updates to two sketches per batch,
// so fully dynamic streams (including deletions, where incremental
// union-find fails) are supported. Space is O(V log³ V · log(1/δ)) bits:
// V vertices × O(log V) rounds × the Theorem 2 sampler's O(log² V).
package graphsketch

import (
	"math"
	"math/rand/v2"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/stream"
)

// Sketch summarizes a dynamic graph on V vertices for connectivity queries.
type Sketch struct {
	v      int
	rounds int
	slots  int
	// sk[round][vertex]
	sk [][]*core.L0Sampler

	// Batched-ingestion scratch (AddEdges/RemoveEdges): per-vertex update
	// buffers — identical across rounds, so they are built once per edge
	// batch and replayed through every round's batched sampler path — and
	// the list of vertices touched by the current batch. Reused across
	// calls; steady state allocates nothing.
	vertBufs [][]stream.Update
	touched  []int
}

// New creates a sketch for graphs on v vertices with failure parameter
// delta per sampler. rounds = ceil(log2 v) + 1 batches are allocated.
func New(v int, delta float64, r *rand.Rand) *Sketch {
	if v < 2 {
		panic("graphsketch: need at least 2 vertices")
	}
	rounds := int(math.Ceil(math.Log2(float64(v)))) + 1
	slots := v * (v - 1) / 2
	g := &Sketch{v: v, rounds: rounds, slots: slots, sk: make([][]*core.L0Sampler, rounds)}
	for t := 0; t < rounds; t++ {
		// One shared seed per round so the round's sketches are mergeable;
		// independent seeds across rounds.
		seed := r.Uint64()
		g.sk[t] = make([]*core.L0Sampler, v)
		for vert := 0; vert < v; vert++ {
			g.sk[t][vert] = core.NewL0Sampler(core.L0Config{N: slots, Delta: delta},
				rand.New(rand.NewPCG(seed, seed^0x9E3779B97F4A7C15)))
		}
	}
	return g
}

// EdgeSlot numbers the undirected pair {u,w} in the triangular enumeration.
func (g *Sketch) EdgeSlot(u, w int) int {
	if u > w {
		u, w = w, u
	}
	return u*g.v - u*(u+1)/2 + (w - u - 1)
}

// SlotEdge inverts EdgeSlot.
func (g *Sketch) SlotEdge(slot int) (int, int) {
	u := 0
	for {
		rowLen := g.v - u - 1
		if slot < rowLen {
			return u, u + 1 + slot
		}
		slot -= rowLen
		u++
	}
}

// apply feeds ±1 for the edge into both endpoints' sketches in every round.
func (g *Sketch) apply(u, w int, sign int64) {
	if u == w {
		panic("graphsketch: self loop")
	}
	slot := g.EdgeSlot(u, w)
	lo, hi := u, w
	if lo > hi {
		lo, hi = hi, lo
	}
	for t := 0; t < g.rounds; t++ {
		g.sk[t][lo].Process(stream.Update{Index: slot, Delta: sign})
		g.sk[t][hi].Process(stream.Update{Index: slot, Delta: -sign})
	}
}

// applyBatch feeds a batch of edges through the samplers' batched hot path.
// Each edge contributes ±1 to one slot of both endpoints' vectors in every
// round; since the per-vertex update sequence is the same for all rounds,
// it is materialized once and delivered rounds times via ProcessBatch —
// turning 2·rounds scalar sampler updates per edge into per-vertex batches
// that amortize the PRG walks and syndrome passes. Update order per sampler
// matches the scalar loop, so the resulting state is bit-identical.
func (g *Sketch) applyBatch(edges [][2]int, sign int64) {
	if len(edges) == 0 {
		return
	}
	// Validate the whole batch before touching any scratch: a mid-batch
	// panic must not leave partially filled buffers behind (they would
	// silently leak into the next call).
	for _, e := range edges {
		if e[0] == e[1] {
			panic("graphsketch: self loop")
		}
	}
	if g.vertBufs == nil {
		g.vertBufs = make([][]stream.Update, g.v)
	}
	touched := g.touched[:0]
	for _, e := range edges {
		u, w := e[0], e[1]
		lo, hi := u, w
		if lo > hi {
			lo, hi = hi, lo
		}
		slot := g.EdgeSlot(lo, hi)
		if len(g.vertBufs[lo]) == 0 {
			touched = append(touched, lo)
		}
		g.vertBufs[lo] = append(g.vertBufs[lo], stream.Update{Index: slot, Delta: sign})
		if len(g.vertBufs[hi]) == 0 {
			touched = append(touched, hi)
		}
		g.vertBufs[hi] = append(g.vertBufs[hi], stream.Update{Index: slot, Delta: -sign})
	}
	for t := 0; t < g.rounds; t++ {
		row := g.sk[t]
		for _, v := range touched {
			row[v].ProcessBatch(g.vertBufs[v])
		}
	}
	for _, v := range touched {
		g.vertBufs[v] = g.vertBufs[v][:0]
	}
	g.touched = touched[:0]
}

// AddEdge inserts the undirected edge {u,w}.
func (g *Sketch) AddEdge(u, w int) { g.apply(u, w, 1) }

// AddEdges inserts a batch of undirected edges through the batched L0
// ingestion path — the fast way to load a graph or apply a burst of
// insertions.
func (g *Sketch) AddEdges(edges [][2]int) { g.applyBatch(edges, 1) }

// RemoveEdge deletes the undirected edge {u,w}. Deleting an absent edge
// corrupts the sketch (the model trusts the stream), as in any turnstile
// structure.
func (g *Sketch) RemoveEdge(u, w int) { g.apply(u, w, -1) }

// RemoveEdges deletes a batch of undirected edges through the batched path.
func (g *Sketch) RemoveEdges(edges [][2]int) { g.applyBatch(edges, -1) }

// SpanningForest runs Borůvka over the sketches and returns the component
// label of every vertex and the forest edges found. The sketches are
// consumed: each round's batch is merged along the current components.
func (g *Sketch) SpanningForest() (comp []int, forest [][2]int) {
	comp = make([]int, g.v)
	for i := range comp {
		comp[i] = i
	}
	find := func(x int) int {
		for comp[x] != x {
			comp[x] = comp[comp[x]]
			x = comp[x]
		}
		return x
	}
	for t := 0; t < g.rounds; t++ {
		merged := map[int]*core.L0Sampler{}
		for v := 0; v < g.v; v++ {
			c := find(v)
			if merged[c] == nil {
				merged[c] = g.sk[t][v]
			} else if err := merged[c].Merge(g.sk[t][v]); err != nil {
				// Same-round sketches share one seed by construction, so a
				// merge failure is a programming error, not an input error.
				panic(err)
			}
		}
		// Probe every component's merged sampler concurrently: the samples
		// are independent L0 decodes on disjoint sketches, so the round's
		// query cost is the slowest component rather than the sum. The
		// union-find merge below stays sequential.
		probes := make([]*core.L0Sampler, 0, len(merged))
		for _, m := range merged {
			probes = append(probes, m)
		}
		samples := make([]core.Sample, len(probes))
		oks := make([]bool, len(probes))
		engine.ParallelFor(len(probes), 0, func(i int) {
			samples[i], oks[i] = probes[i].Sample()
		})
		progress := false
		for i := range probes {
			if !oks[i] {
				continue
			}
			u, w := g.SlotEdge(samples[i].Index)
			cu, cw := find(u), find(w)
			if cu != cw {
				comp[cu] = cw
				forest = append(forest, [2]int{u, w})
				progress = true
			}
		}
		if !progress {
			break
		}
	}
	// Path-compress all labels for the caller.
	for v := 0; v < g.v; v++ {
		comp[v] = find(v)
	}
	return comp, forest
}

// Connected reports whether the graph is connected (single component over
// all v vertices). Like SpanningForest, it consumes the sketch.
func (g *Sketch) Connected() bool {
	comp, _ := g.SpanningForest()
	c0 := comp[0]
	for _, c := range comp {
		if c != c0 {
			return false
		}
	}
	return true
}

// Components returns the number of connected components among the vertices
// that could be resolved. It consumes the sketch.
func (g *Sketch) Components() int {
	comp, _ := g.SpanningForest()
	seen := map[int]bool{}
	for _, c := range comp {
		seen[c] = true
	}
	return len(seen)
}

// AppendState writes every per-round, per-vertex sampler's linear state
// into a codec encoder, round-major — a checkpoint of the whole dynamic
// graph summary. The sketch must not have been consumed by a query
// (SpanningForest merges rounds in place).
func (g *Sketch) AppendState(e *codec.Encoder) {
	for t := 0; t < g.rounds; t++ {
		for v := 0; v < g.v; v++ {
			g.sk[t][v].AppendState(e)
		}
	}
}

// RestoreState replaces every sampler's linear state from a codec decoder.
// The receiver must be a same-seed, same-shape instance (same v, delta and
// constructing randomness).
func (g *Sketch) RestoreState(d *codec.Decoder) {
	for t := 0; t < g.rounds; t++ {
		for v := 0; v < g.v; v++ {
			g.sk[t][v].RestoreState(d)
		}
	}
}

// SpaceBits totals all per-vertex, per-round sampler footprints.
func (g *Sketch) SpaceBits() int64 {
	var bits int64
	for t := 0; t < g.rounds; t++ {
		for v := 0; v < g.v; v++ {
			bits += g.sk[t][v].SpaceBits()
		}
	}
	return bits
}
