package benchgate

import (
	"math"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: some CPU @ 3.00GHz
BenchmarkIngestSerial-16         	       2	 612345678 ns/op	  16331225 updates/s
BenchmarkIngestSerial-16         	       2	 600000000 ns/op	  16666666 updates/s
BenchmarkIngestSerialBatched-16  	       4	 301234567 ns/op	  33196721 updates/s
BenchmarkQueryL0Sample-16        	64051958	        18.71 ns/op
--- BENCH: some stray line
PASS
ok  	repro	12.345s
`

func TestParseSamples(t *testing.T) {
	samples, err := ParseSamples(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(samples["BenchmarkIngestSerial"]); got != 2 {
		t.Fatalf("IngestSerial samples = %d, want 2 (count runs folded by name)", got)
	}
	best := Best(samples)
	if best["BenchmarkIngestSerial"] != 600000000 {
		t.Errorf("Best(IngestSerial) = %v, want min of both runs", best["BenchmarkIngestSerial"])
	}
	if best["BenchmarkQueryL0Sample"] != 18.71 {
		t.Errorf("fractional ns/op parsed as %v", best["BenchmarkQueryL0Sample"])
	}
	if _, ok := best["PASS"]; ok {
		t.Error("non-benchmark lines must be ignored")
	}
}

func TestCompareCleanRunPasses(t *testing.T) {
	base := map[string]float64{"A": 100, "B": 200, "C": 50}
	cur := map[string]float64{"A": 104, "B": 195, "C": 52, "D": 1}
	rep := Compare(base, cur, 0.10, 1.5)
	if !rep.Pass() {
		t.Fatalf("clean run failed: geomean %v, missing %v", rep.Geomean, rep.Missing)
	}
	if len(rep.Extra) != 1 || rep.Extra[0] != "D" {
		t.Errorf("Extra = %v, want [D]", rep.Extra)
	}
	if math.Abs(rep.Geomean-1.0) > 0.05 {
		t.Errorf("geomean %v implausible for ±4%% jitter", rep.Geomean)
	}
}

// TestCompareInjectedSlowdownFails is the gate's red-path acceptance test:
// a uniform 25% slowdown — the satellite's injected regression — must fail
// a 10% gate.
func TestCompareInjectedSlowdownFails(t *testing.T) {
	base := map[string]float64{"A": 100, "B": 200, "C": 50, "D": 1000}
	cur := map[string]float64{}
	for k, v := range base {
		cur[k] = v * 1.25
	}
	rep := Compare(base, cur, 0.10, 1.5)
	if rep.Pass() {
		t.Fatalf("25%% slowdown passed a 10%% gate: geomean %v", rep.Geomean)
	}
	if math.Abs(rep.Geomean-1.25) > 1e-9 {
		t.Errorf("geomean = %v, want exactly 1.25", rep.Geomean)
	}
	if rep.Deltas[0].Ratio < 1.2 {
		t.Errorf("worst delta should lead the report: %+v", rep.Deltas[0])
	}
}

// TestCompareSingleBenchRegressionWithinGeomean: one bench 30% slower while
// the rest hold → geomean over 4 benches stays under 10% and the blip is
// under the 1.5 per-benchmark cap, so the gate passes, but the offender is
// flagged first in the report.
func TestCompareSingleBenchRegressionWithinGeomean(t *testing.T) {
	base := map[string]float64{"A": 100, "B": 200, "C": 50, "D": 1000}
	cur := map[string]float64{"A": 130, "B": 200, "C": 50, "D": 1000}
	rep := Compare(base, cur, 0.10, 1.5)
	if !rep.Pass() {
		t.Fatalf("isolated 30%% single-bench blip failed the geomean gate: %v", rep.Geomean)
	}
	if rep.Deltas[0].Name != "A" || rep.Deltas[0].Ratio <= 1.25 {
		t.Errorf("offender not ranked first: %+v", rep.Deltas[0])
	}
}

// TestCompareSingleBenchRegressionTripsCap: a lone 2x hot-path regression
// among 8 benchmarks moves the geomean only to ~1.09 — under the 10%
// threshold — but the per-benchmark cap catches it. Disabling the cap
// (cap <= 0) restores the geomean-only verdict.
func TestCompareSingleBenchRegressionTripsCap(t *testing.T) {
	base := map[string]float64{}
	cur := map[string]float64{}
	for _, k := range []string{"A", "B", "C", "D", "E", "F", "G", "H"} {
		base[k] = 100
		cur[k] = 100
	}
	cur["A"] = 200 // 2x slower; geomean = 2^(1/8) ≈ 1.0905
	rep := Compare(base, cur, 0.10, 1.5)
	if rep.Geomean > 1.10 {
		t.Fatalf("geomean %v should be under the threshold — the cap is what must fail", rep.Geomean)
	}
	if rep.Pass() {
		t.Fatal("2x single-bench regression passed a 1.5 per-benchmark cap")
	}
	if Compare(base, cur, 0.10, 0).Pass() != true {
		t.Fatal("cap 0 must disable the per-benchmark check")
	}
	var sb strings.Builder
	rep.Render(&sb)
	if !strings.Contains(sb.String(), "exceeds per-benchmark cap") {
		t.Errorf("cap breach not flagged in render: %s", sb.String())
	}
}

func TestCompareMissingBenchmarkFails(t *testing.T) {
	base := map[string]float64{"A": 100, "B": 200}
	cur := map[string]float64{"A": 100}
	rep := Compare(base, cur, 0.10, 1.5)
	if rep.Pass() {
		t.Fatal("run missing a baseline benchmark must fail")
	}
	if len(rep.Missing) != 1 || rep.Missing[0] != "B" {
		t.Fatalf("Missing = %v, want [B]", rep.Missing)
	}
}

func TestCompareEmptyRunFails(t *testing.T) {
	rep := Compare(map[string]float64{}, map[string]float64{}, 0.10, 1.5)
	if rep.Pass() {
		t.Fatal("empty comparison must not pass")
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_BASELINE.json")
	want := Baseline{
		Version:    1,
		Go:         "go1.24.0",
		Note:       "test",
		Benchmarks: map[string]float64{"BenchmarkIngestSerial": 6e8, "BenchmarkQueryL0Sample": 18.7},
	}
	if err := WriteBaseline(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != 1 || got.Go != want.Go || len(got.Benchmarks) != 2 ||
		got.Benchmarks["BenchmarkQueryL0Sample"] != 18.7 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if _, err := LoadBaseline(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("loading a missing baseline must fail")
	}
}

// TestRenderVerdicts smoke-tests the human output for both verdicts.
func TestRenderVerdicts(t *testing.T) {
	base := map[string]float64{"A": 100}
	var sb strings.Builder
	Compare(base, map[string]float64{"A": 101}, 0.10, 1.5).Render(&sb)
	if !strings.Contains(sb.String(), "PASS") {
		t.Errorf("pass render: %s", sb.String())
	}
	sb.Reset()
	Compare(base, map[string]float64{"A": 150}, 0.10, 1.5).Render(&sb)
	out := sb.String()
	if !strings.Contains(out, "FAIL") || !strings.Contains(out, "exceeds threshold") {
		t.Errorf("fail render: %s", out)
	}
}
