// Package benchgate parses `go test -bench` output and compares it against
// a committed baseline, failing on geomean regressions — the library behind
// cmd/benchgate and the CI bench-gate job.
//
// The gate's contract: for every benchmark in the baseline, take the best
// (minimum) ns/op across the current run's -count repetitions — the least
// noisy statistic for regression detection, since noise on a quiet machine
// is one-sided — and form the ratio current/baseline. The run fails when
// the geometric mean of those ratios exceeds 1+threshold, when any single
// ratio exceeds the per-benchmark cap (so a targeted hot-path regression
// cannot hide behind seven flat benchmarks — a lone 2x slowdown among
// eight moves the geomean only to ~1.09), or when a baseline benchmark is
// missing from the run (suite drift hides regressions). Individual
// benchmarks may exceed the geomean threshold without failing the gate as
// long as they stay under the cap; they are still listed worst-first so
// the offender is visible in the log.
package benchgate

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Baseline is the committed benchmark reference (BENCH_BASELINE.json).
type Baseline struct {
	Version int    `json:"version"`
	Go      string `json:"go,omitempty"`
	Note    string `json:"note,omitempty"`
	// Benchmarks maps benchmark name (CPU suffix stripped) to the best
	// ns/op observed when the baseline was refreshed.
	Benchmarks map[string]float64 `json:"benchmarks"`
}

// LoadBaseline reads a Baseline from disk.
func LoadBaseline(path string) (Baseline, error) {
	var b Baseline
	data, err := os.ReadFile(path)
	if err != nil {
		return b, err
	}
	if err := json.Unmarshal(data, &b); err != nil {
		return b, fmt.Errorf("benchgate: parsing %s: %w", path, err)
	}
	if len(b.Benchmarks) == 0 {
		return b, fmt.Errorf("benchgate: %s holds no benchmarks", path)
	}
	return b, nil
}

// WriteBaseline writes a Baseline with stable formatting.
func WriteBaseline(path string, b Baseline) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ParseSamples extracts every benchmark result line from `go test -bench`
// output: name (with the -GOMAXPROCS suffix stripped) → all observed ns/op
// values, in order. Non-benchmark lines are ignored, so raw `go test`
// output can be piped in unfiltered.
func ParseSamples(r io.Reader) (map[string][]float64, error) {
	out := map[string][]float64{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// BenchmarkName-8  <iters>  <value> ns/op  [<value> <unit>]...
		if len(fields) < 4 {
			continue
		}
		name := fields[0]
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		for i := 2; i+1 < len(fields); i++ {
			if fields[i+1] != "ns/op" {
				continue
			}
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchgate: bad ns/op in %q: %w", line, err)
			}
			out[name] = append(out[name], v)
			break
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Best reduces multi-count samples to the minimum ns/op per benchmark.
func Best(samples map[string][]float64) map[string]float64 {
	out := make(map[string]float64, len(samples))
	for name, vals := range samples {
		best := math.Inf(1)
		for _, v := range vals {
			if v < best {
				best = v
			}
		}
		if !math.IsInf(best, 1) {
			out[name] = best
		}
	}
	return out
}

// Delta is one benchmark's baseline-vs-current comparison.
type Delta struct {
	Name  string
	Base  float64 // baseline ns/op
	Cur   float64 // current best ns/op
	Ratio float64 // Cur / Base; > 1 is a slowdown
}

// Report is the gate verdict over a full run.
type Report struct {
	Deltas    []Delta  // baseline ∩ current, sorted worst-ratio first
	Missing   []string // in baseline, absent from the run — fails the gate
	Extra     []string // in the run, not in the baseline — informational
	Geomean   float64  // geometric mean of all ratios
	Threshold float64  // allowed geomean regression, e.g. 0.10
	Cap       float64  // per-benchmark ratio ceiling, e.g. 1.5; <= 0 disables
}

// Compare builds the Report for current best-times against the baseline.
// capRatio is the per-benchmark ceiling any single current/baseline ratio
// must stay under (<= 0 disables that check).
func Compare(base, cur map[string]float64, threshold, capRatio float64) Report {
	rep := Report{Threshold: threshold, Cap: capRatio}
	logSum, nRatios := 0.0, 0
	for name, b := range base {
		c, ok := cur[name]
		if !ok {
			rep.Missing = append(rep.Missing, name)
			continue
		}
		ratio := math.Inf(1)
		if b > 0 {
			ratio = c / b
		}
		rep.Deltas = append(rep.Deltas, Delta{Name: name, Base: b, Cur: c, Ratio: ratio})
		logSum += math.Log(ratio)
		nRatios++
	}
	for name := range cur {
		if _, ok := base[name]; !ok {
			rep.Extra = append(rep.Extra, name)
		}
	}
	sort.Slice(rep.Deltas, func(a, b int) bool {
		if rep.Deltas[a].Ratio != rep.Deltas[b].Ratio {
			return rep.Deltas[a].Ratio > rep.Deltas[b].Ratio
		}
		return rep.Deltas[a].Name < rep.Deltas[b].Name
	})
	sort.Strings(rep.Missing)
	sort.Strings(rep.Extra)
	if nRatios > 0 {
		rep.Geomean = math.Exp(logSum / float64(nRatios))
	} else {
		rep.Geomean = math.Inf(1) // nothing measured: never a pass
	}
	return rep
}

// worstRatio is the largest single current/baseline ratio (Deltas are
// sorted worst-first), or 0 when nothing was compared.
func (r Report) worstRatio() float64 {
	if len(r.Deltas) == 0 {
		return 0
	}
	return r.Deltas[0].Ratio
}

// Pass reports the gate verdict: every baseline benchmark measured, the
// geomean within 1+threshold, and (when Cap > 0) no single benchmark's
// ratio above the cap.
func (r Report) Pass() bool {
	if len(r.Missing) > 0 || r.Geomean > 1+r.Threshold {
		return false
	}
	return r.Cap <= 0 || r.worstRatio() <= r.Cap
}

// Render writes the human-readable comparison table and verdict.
func (r Report) Render(w io.Writer) {
	fmt.Fprintf(w, "%-44s %14s %14s %8s\n", "benchmark", "baseline ns/op", "current ns/op", "ratio")
	for _, d := range r.Deltas {
		flag := ""
		switch {
		case r.Cap > 0 && d.Ratio > r.Cap:
			flag = "  <-- exceeds per-benchmark cap (gate fails)"
		case d.Ratio > 1+r.Threshold:
			flag = "  <-- exceeds threshold"
		}
		fmt.Fprintf(w, "%-44s %14.1f %14.1f %8.3f%s\n", d.Name, d.Base, d.Cur, d.Ratio, flag)
	}
	for _, name := range r.Missing {
		fmt.Fprintf(w, "%-44s MISSING from this run (gate fails)\n", name)
	}
	for _, name := range r.Extra {
		fmt.Fprintf(w, "%-44s not in baseline (ignored; refresh the baseline to track it)\n", name)
	}
	verdict := "PASS"
	if !r.Pass() {
		verdict = "FAIL"
	}
	if r.Cap > 0 {
		fmt.Fprintf(w, "geomean ratio %.4f (limit %.4f), worst ratio %.4f (cap %.4f): %s\n",
			r.Geomean, 1+r.Threshold, r.worstRatio(), r.Cap, verdict)
	} else {
		fmt.Fprintf(w, "geomean ratio %.4f (limit %.4f): %s\n", r.Geomean, 1+r.Threshold, verdict)
	}
}
