package baseline

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/core"
	"repro/internal/stream"
)

func TestAKOSamplerBasicOperation(t *testing.T) {
	// The baseline must still sample the dominant coordinate.
	r := rand.New(rand.NewPCG(1, 1))
	const n = 128
	hits, total := 0, 0
	for trial := 0; trial < 15; trial++ {
		s := NewAKO(1, n, 0.3, 12, r)
		for i := 0; i < n; i++ {
			s.Process(stream.Update{Index: i, Delta: 1})
		}
		s.Process(stream.Update{Index: 42, Delta: 999999})
		i, est, ok := s.Sample()
		if !ok {
			continue
		}
		total++
		if i == 42 {
			hits++
			if math.Abs(est-1e6) > 0.5e6 {
				t.Errorf("estimate %.0f far from 1e6", est)
			}
		}
	}
	if total < 8 {
		t.Fatalf("only %d/15 trials produced output", total)
	}
	if hits < total*7/10 {
		t.Errorf("dominant coordinate hit %d/%d", hits, total)
	}
}

func TestAKOSpaceHasExtraLogFactor(t *testing.T) {
	// The headline comparison (E2): the AKO count-sketch parameter carries a
	// log n factor that Theorem 1's sampler drops.
	r := rand.New(rand.NewPCG(2, 2))
	const eps = 0.3
	akoSmall := NewAKO(1.5, 1<<8, eps, 4, r)
	akoBig := NewAKO(1.5, 1<<16, eps, 4, r)
	oursSmall := core.NewLpSampler(core.LpConfig{P: 1.5, N: 1 << 8, Eps: eps, Delta: 0.2, Copies: 4}, r)
	oursBig := core.NewLpSampler(core.LpConfig{P: 1.5, N: 1 << 16, Eps: eps, Delta: 0.2, Copies: 4}, r)

	akoGrowth := float64(akoBig.SpaceBits()) / float64(akoSmall.SpaceBits())
	oursGrowth := float64(oursBig.SpaceBits()) / float64(oursSmall.SpaceBits())
	if akoGrowth <= oursGrowth*1.2 {
		t.Errorf("AKO growth %.2fx should exceed ours %.2fx by a log factor", akoGrowth, oursGrowth)
	}
	// And m itself: ours is O(1) in n, AKO's m' = Θ(log n).
	if akoBig.M() <= akoSmall.M() {
		t.Error("AKO m' must grow with log n")
	}
	if oursBig.M() != oursSmall.M() {
		t.Error("our m must not depend on n")
	}
}

func TestAKOPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for p out of range")
		}
	}()
	NewAKO(2.5, 100, 0.3, 4, rand.New(rand.NewPCG(3, 3)))
}

func TestFISL0SamplesSupport(t *testing.T) {
	r := rand.New(rand.NewPCG(4, 4))
	const n = 256
	okCount := 0
	for trial := 0; trial < 20; trial++ {
		f := NewFISL0(n, 12, r)
		st := stream.SparseVector(n, 30, 100, r)
		truth := st.Apply(n)
		st.Feed(f)
		i, v, ok := f.Sample()
		if !ok {
			continue
		}
		okCount++
		if truth.Get(i) == 0 {
			t.Fatalf("trial %d: sampled zero coordinate", trial)
		}
		if truth.Get(i) != v {
			t.Fatalf("trial %d: value %d != exact %d", trial, v, truth.Get(i))
		}
	}
	if okCount < 14 {
		t.Errorf("FIS succeeded only %d/20 times", okCount)
	}
}

func TestFISL0SpaceHasExtraLogFactor(t *testing.T) {
	// E3's shape comparison: FIS carries reps=Θ(log n) 1-sparse detectors
	// per level where Theorem 2 shares one s-sparse recoverer.
	r := rand.New(rand.NewPCG(5, 5))
	mk := func(n int) (int64, int64) {
		reps := int(math.Ceil(math.Log2(float64(n))))
		fis := NewFISL0(n, reps, r)
		ours := core.NewL0Sampler(core.L0Config{N: n, Delta: 0.25}, r)
		return fis.SpaceBits(), ours.SpaceBits()
	}
	fisS, oursS := mk(1 << 8)
	fisB, oursB := mk(1 << 16)
	fisGrowth := float64(fisB) / float64(fisS)
	oursGrowth := float64(oursB) / float64(oursS)
	if fisGrowth <= oursGrowth*1.2 {
		t.Errorf("FIS growth %.2fx should exceed ours %.2fx", fisGrowth, oursGrowth)
	}
}

func TestBitmapOracle(t *testing.T) {
	b := NewBitmap(10)
	for _, it := range []int{3, 1, 4, 1, 5} {
		b.ProcessItem(it)
	}
	d, ok := b.Duplicate()
	if !ok || d != 1 {
		t.Fatalf("bitmap found (%d,%v), want (1,true)", d, ok)
	}
	b2 := NewBitmap(5)
	for i := 0; i < 5; i++ {
		b2.ProcessItem(i)
	}
	if _, ok := b2.Duplicate(); ok {
		t.Fatal("bitmap false positive")
	}
	if b2.SpaceBits() != 5 {
		t.Errorf("bitmap space = %d bits, want 5", b2.SpaceBits())
	}
}

func BenchmarkAKOProcess(b *testing.B) {
	r := rand.New(rand.NewPCG(1, 1))
	s := NewAKO(1, 1<<12, 0.3, 8, r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Process(stream.Update{Index: i % (1 << 12), Delta: 1})
	}
}

func BenchmarkFISL0Process(b *testing.B) {
	r := rand.New(rand.NewPCG(1, 1))
	f := NewFISL0(1<<12, 12, r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Process(stream.Update{Index: i % (1 << 12), Delta: 1})
	}
}
