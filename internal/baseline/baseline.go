// Package baseline implements the prior-work algorithms the paper improves
// on, for the space-shape comparisons in EXPERIMENTS.md:
//
//   - AKOSampler: the Andoni-Krauthgamer-Onak precision sampler [1] with
//     pairwise-independent scaling factors and a count-sketch inflated by a
//     Θ(log n) factor (their analysis needs the heaviest coordinate of z to
//     carry an Ω(1/log n) fraction of ‖z‖, hence m' = Θ(ε^{-p} log n)) —
//     O(ε^{-p} log³ n) bits total versus this paper's O(ε^{-p} log² n).
//   - FISL0: the Frahling-Indyk-Sohler style L0 sampler [12]: Θ(log n)
//     subsampling levels, each carrying Θ(log n) independent 1-sparse
//     detectors — O(log³ n) bits versus Theorem 2's O(log² n).
//   - Bitmap: the deterministic n-bit duplicate finder, used as a
//     correctness oracle in the duplicates experiments.
//
// The AKO constants are reconstructed from the paper's description (the
// manuscript's own constants are not in our source text) — substitution #4
// in DESIGN.md; the log-factor shape is what E2/E3 measure.
package baseline

import (
	"math"
	"math/rand/v2"

	"repro/internal/countsketch"
	"repro/internal/hash"
	"repro/internal/norm"
	"repro/internal/sparse"
	"repro/internal/stream"
)

// AKOSampler is the [1]-style Lp sampler: structure of Figure 1, but
// pairwise t_i and a log n-factor-wider count-sketch, no s-test.
type AKOSampler struct {
	p      float64
	n      int
	eps    float64
	copies []*akoCopy
	rNorm  *norm.Stable
	tMin   float64
}

type akoCopy struct {
	t       *hash.KWise
	cs      *countsketch.Sketch
	guarded bool
}

// NewAKO constructs the baseline sampler with the given repetition count.
func NewAKO(p float64, n int, eps float64, copies int, r *rand.Rand) *AKOSampler {
	if p <= 0 || p >= 2 {
		panic("baseline: AKO sampler requires p in (0,2)")
	}
	if copies < 1 {
		copies = 1
	}
	logn := math.Log2(float64(n))
	if logn < 4 {
		logn = 4
	}
	// m' = Θ(ε^{-p} log n): the log-factor-wider sketch of [1].
	m := int(math.Ceil(2 * math.Pow(eps, -p) * logn))
	rows := int(math.Ceil(logn)) + 4
	s := &AKOSampler{
		p:      p,
		n:      n,
		eps:    eps,
		copies: make([]*akoCopy, copies),
		rNorm:  norm.NewStable(p, 80, r),
		tMin:   math.Pow(float64(n), -2) / 16,
	}
	for c := range s.copies {
		s.copies[c] = &akoCopy{
			t:  hash.NewKWise(2, r), // pairwise, per [1]
			cs: countsketch.New(m, rows, r),
		}
	}
	return s
}

// M returns the inflated count-sketch parameter m'.
func (s *AKOSampler) M() int { return s.copies[0].cs.M() }

// Process implements stream.Sink.
func (s *AKOSampler) Process(u stream.Update) {
	i := uint64(u.Index)
	d := float64(u.Delta)
	s.rNorm.Process(u)
	invP := 1 / s.p
	for _, c := range s.copies {
		ti := c.t.Float64(i)
		if ti < s.tMin {
			c.guarded = true
			continue
		}
		c.cs.Add(i, d*math.Pow(ti, -invP))
	}
}

// Sample returns the first repetition whose maximum scaled coordinate
// crosses the ε^{-1/p} r threshold.
func (s *AKOSampler) Sample() (int, float64, bool) {
	r := s.rNorm.UpperEstimate(nil)
	if r == 0 {
		return -1, 0, false
	}
	invP := 1 / s.p
	threshold := math.Pow(s.eps, -invP) * r
	for _, c := range s.copies {
		if c.guarded {
			continue
		}
		top := c.cs.Top(s.n, 1)
		if len(top) == 0 || math.Abs(top[0].Estimate) < threshold {
			continue
		}
		ti := c.t.Float64(uint64(top[0].Index))
		return top[0].Index, top[0].Estimate * math.Pow(ti, invP), true
	}
	return -1, 0, false
}

// SpaceBits reports the O(ε^{-p} log³ n)-bit footprint.
func (s *AKOSampler) SpaceBits() int64 {
	var bits int64
	for _, c := range s.copies {
		bits += c.cs.SpaceBits() + c.t.SpaceBits()
	}
	return bits + s.rNorm.SpaceBits()
}

// FISL0 is the [12]-style L0 sampler: per level, Θ(log n) independent
// 1-sparse detectors instead of one shared s-sparse recoverer.
type FISL0 struct {
	n         int
	levels    int
	reps      int
	detectors [][]*sparse.Recoverer // [level][rep], sparsity 1 each
	members   [][]*hash.KWise       // membership hash per (level, rep)
}

// NewFISL0 constructs the baseline with reps = Θ(log(n)·log(1/δ))-ish
// detectors per level (pass explicitly).
func NewFISL0(n, reps int, r *rand.Rand) *FISL0 {
	levels := 1
	for 1<<levels < n {
		levels++
	}
	levels++
	f := &FISL0{n: n, levels: levels, reps: reps}
	f.detectors = make([][]*sparse.Recoverer, levels)
	f.members = make([][]*hash.KWise, levels)
	for k := 0; k < levels; k++ {
		f.detectors[k] = make([]*sparse.Recoverer, reps)
		f.members[k] = make([]*hash.KWise, reps)
		for j := 0; j < reps; j++ {
			f.detectors[k][j] = sparse.New(n, 1, r)
			f.members[k][j] = hash.NewKWise(2, r)
		}
	}
	return f
}

// member: coordinate i survives to level k in repetition j with probability
// 2^{-k} (independent subsampling chains per repetition).
func (f *FISL0) member(k, j, i int) bool {
	if k == 0 {
		return true
	}
	q := math.Pow(2, -float64(k))
	return f.members[k][j].Float64(uint64(i)) < q
}

// Process implements stream.Sink.
func (f *FISL0) Process(u stream.Update) {
	for k := 0; k < f.levels; k++ {
		for j := 0; j < f.reps; j++ {
			if f.member(k, j, u.Index) {
				f.detectors[k][j].Process(u)
			}
		}
	}
}

// Sample scans levels bottom-up for a detector holding exactly one nonzero
// coordinate and returns it with its exact value.
func (f *FISL0) Sample() (int, int64, bool) {
	for k := 0; k < f.levels; k++ {
		for j := 0; j < f.reps; j++ {
			rec, ok := f.detectors[k][j].Recover()
			if ok && len(rec) == 1 {
				for i, v := range rec {
					return i, v, true
				}
			}
		}
	}
	return -1, 0, false
}

// SpaceBits reports the O(log³ n)-bit footprint: levels × reps × O(1) words.
func (f *FISL0) SpaceBits() int64 {
	var bits int64
	for k := 0; k < f.levels; k++ {
		for j := 0; j < f.reps; j++ {
			bits += f.detectors[k][j].SpaceBits() + f.members[k][j].SpaceBits()
		}
	}
	return bits
}

// Bitmap is the deterministic duplicate finder: one bit per letter. Linear
// space, zero error — the correctness oracle for the duplicates experiments.
type Bitmap struct {
	seen  []bool
	dup   int
	found bool
}

// NewBitmap creates the oracle for alphabet [n].
func NewBitmap(n int) *Bitmap { return &Bitmap{seen: make([]bool, n), dup: -1} }

// ProcessItem consumes one letter.
func (b *Bitmap) ProcessItem(letter int) {
	if b.seen[letter] && !b.found {
		b.dup = letter
		b.found = true
	}
	b.seen[letter] = true
}

// Duplicate reports the first repeated letter.
func (b *Bitmap) Duplicate() (int, bool) { return b.dup, b.found }

// SpaceBits is n bits.
func (b *Bitmap) SpaceBits() int64 { return int64(len(b.seen)) }
