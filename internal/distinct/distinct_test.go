package distinct

import (
	"math/rand/v2"
	"testing"

	"repro/internal/stream"
)

func TestZeroVector(t *testing.T) {
	e := New(256, 8, rand.New(rand.NewPCG(1, 1)))
	if got := e.Estimate(); got != 0 {
		t.Fatalf("zero vector estimate = %d, want 0", got)
	}
}

func TestCancellationToZero(t *testing.T) {
	e := New(256, 8, rand.New(rand.NewPCG(2, 2)))
	for i := 0; i < 256; i++ {
		e.Process(stream.Update{Index: i, Delta: 7})
	}
	for i := 0; i < 256; i++ {
		e.Process(stream.Update{Index: i, Delta: -7})
	}
	if got := e.Estimate(); got != 0 {
		t.Fatalf("cancelled vector estimate = %d, want 0", got)
	}
}

func TestConstantFactorAccuracy(t *testing.T) {
	r := rand.New(rand.NewPCG(3, 3))
	const n = 4096
	for _, l0 := range []int{1, 4, 16, 100, 1000, 4096} {
		good := 0
		const trials = 20
		for trial := 0; trial < trials; trial++ {
			e := New(n, 12, r)
			st := stream.SparseVector(n, l0, 50, r)
			st.Feed(e)
			est := e.Estimate()
			// Constant-factor window: [L0/8, 32*L0] is what the level
			// argument guarantees with comfortable slack.
			if est >= int64(l0)/8 && est <= 32*int64(l0) {
				good++
			}
		}
		if good < trials-2 {
			t.Errorf("L0=%d: constant-factor estimate only %d/%d times", l0, good, trials)
		}
	}
}

func TestSingleCoordinate(t *testing.T) {
	r := rand.New(rand.NewPCG(4, 4))
	for trial := 0; trial < 10; trial++ {
		e := New(1024, 12, r)
		e.Process(stream.Update{Index: trial * 100, Delta: -3})
		est := e.Estimate()
		if est < 1 || est > 16 {
			t.Fatalf("singleton estimate = %d, want small constant", est)
		}
	}
}

func TestNegativeValuesCount(t *testing.T) {
	// L0 counts support regardless of sign.
	r := rand.New(rand.NewPCG(5, 5))
	e := New(512, 12, r)
	for i := 0; i < 200; i++ {
		e.Process(stream.Update{Index: i, Delta: -int64(i + 1)})
	}
	est := e.Estimate()
	if est < 25 || est > 6400 {
		t.Fatalf("estimate %d far from 200", est)
	}
}

func TestSpaceBitsGrowth(t *testing.T) {
	r := rand.New(rand.NewPCG(6, 6))
	small := New(1<<8, 8, r)
	big := New(1<<16, 8, r)
	if big.SpaceBits() <= small.SpaceBits() {
		t.Error("space must grow with log n")
	}
	if big.SpaceBits() > 4*small.SpaceBits() {
		t.Error("space must stay logarithmic in n")
	}
	if small.StateBits() >= small.SpaceBits() {
		t.Error("StateBits must exclude seeds")
	}
}

func TestPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(0, 8, rand.New(rand.NewPCG(7, 7)))
}

func BenchmarkProcess(b *testing.B) {
	e := New(1<<16, 12, rand.New(rand.NewPCG(1, 1)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Process(stream.Update{Index: i % (1 << 16), Delta: 1})
	}
}

func TestMergeAndBatchMatchSerial(t *testing.T) {
	mk := func() *Estimator { return New(512, 12, rand.New(rand.NewPCG(51, 52))) }
	st := stream.SparseVector(512, 100, 30, rand.New(rand.NewPCG(53, 54)))
	whole, a, b := mk(), mk(), mk()
	st.FeedBatch(64, whole)
	half := len(st) / 2
	st[:half].Feed(a)
	st[half:].Feed(b)
	if err := a.Merge(b); err != nil {
		t.Fatalf("same-seed merge failed: %v", err)
	}
	if a.Estimate() != whole.Estimate() {
		t.Fatalf("merged estimate %d != serial %d", a.Estimate(), whole.Estimate())
	}
	if err := a.Merge(New(512, 12, rand.New(rand.NewPCG(55, 56)))); err == nil {
		t.Fatal("expected error merging differently seeded estimators")
	}
}
