// Package distinct implements a rough (constant-factor) L0 estimator for
// turnstile streams: the number of nonzero coordinates of x up to a
// multiplicative constant, with high probability.
//
// The paper uses L0 estimation in two places: the appendix remark after
// Proposition 5 ("one can find an O(log n log log n log 1/δ) space two-pass
// zero relative error L0-sampling algorithm, by estimating L0 of the vector
// ... in the first pass using [17]"), and implicitly in the two-round UR
// protocol, where the first round's job is to locate a subsampling level
// with 1..s surviving differences. This package provides that primitive.
//
// Construction (the standard nested level tester). Repetition j draws one
// pairwise hash h_j: [n] -> [0,1) and one fingerprint point ρ_j. Coordinate
// i survives to level k in repetition j when h_j(i) < 2^{-k} — so the level
// sets are nested and one hash evaluation per repetition serves all levels.
// Each (level, repetition) cell keeps the field fingerprint
// F_{k,j} = Σ_{i: h_j(i)<2^{-k}} x_i ρ_j^i, which is nonzero exactly when
// the restricted vector is nonzero (up to the ≤ n/2⁶¹ collision
// probability). A level is "live" when a majority of its R repetitions hold
// a nonzero fingerprint:
//
//	P[cell live] = 1 − (1 − 2^{-k})^{L0}  — ≥ 0.86 when 2^k ≤ L0/2,
//	                                        ≤ 1/8 when 2^k ≥ 8·L0,
//
// so with R = Θ(log(1/δ)) repetitions the deepest live level k* satisfies
// 2^{k*} ∈ [L0/2, 8·L0] with probability 1−δ: a constant-factor estimate.
//
// Space: levels × R fingerprint words plus only R seed pairs —
// O(log n · log(1/δ)) words. (The full [17] estimator squeezes the cells to
// O(log log n) bits each; we keep whole words and document the substitution
// in DESIGN.md — the constant-factor estimate is all the two-pass sampler
// and the two-round UR protocol consume.)
package distinct

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/codec"
	"repro/internal/field"
	"repro/internal/hash"
	"repro/internal/stream"
)

// Estimator is the rough L0 estimator. It is a linear sketch: interleaved
// insertions and deletions are fine.
type Estimator struct {
	n      int
	levels int
	reps   int
	member *hash.FlatFamily  // one membership hash row per repetition (nested levels)
	rho    []field.Elem      // one fingerprint point per repetition
	rhoPow []*field.PowCache // square tables making rho_j^i cost ~popcount(i) Muls
	fp     [][]field.Elem    // fp[k][j]: fingerprint of level k, repetition j

	// Batch scratch (key view of the batch, per-repetition membership
	// uniforms), grown on demand: steady-state ProcessBatch allocates nothing.
	scratchIdx []uint64
	scratchU   []float64
}

// New constructs an estimator for dimension n with the given repetition
// count (Θ(log 1/δ); 12 gives δ well under 5% in practice).
func New(n, reps int, r *rand.Rand) *Estimator {
	if n < 1 {
		panic("distinct: n must be positive")
	}
	if reps < 1 {
		reps = 1
	}
	levels := 1
	for 1<<levels < n {
		levels++
	}
	levels++
	e := &Estimator{
		n:      n,
		levels: levels,
		reps:   reps,
		member: hash.NewFlatFamily(reps, 2, r),
		rho:    make([]field.Elem, reps),
		rhoPow: make([]*field.PowCache, reps),
		fp:     make([][]field.Elem, levels),
	}
	for j := range e.rho {
		rho := field.New(r.Uint64())
		for rho == 0 {
			rho = field.New(r.Uint64())
		}
		e.rho[j] = rho
		e.rhoPow[j] = field.NewPowCache(rho)
	}
	for k := range e.fp {
		e.fp[k] = make([]field.Elem, reps)
	}
	return e
}

// Process implements stream.Sink. One hash evaluation per repetition
// determines the deepest level the coordinate survives to; the update then
// touches levels 0..deepest of that repetition.
func (e *Estimator) Process(u stream.Update) {
	d := field.FromInt64(u.Delta)
	for j := 0; j < e.reps; j++ {
		h := e.member.Float64(j, uint64(u.Index))
		contrib := field.Mul(d, e.rhoPow[j].Pow(uint64(u.Index)))
		q := 1.0
		for k := 0; k < e.levels; k++ {
			if h >= q {
				break
			}
			e.fp[k][j] = field.Add(e.fp[k][j], contrib)
			q /= 2
		}
	}
}

// ProcessBatch implements stream.BatchSink: repetition-major delivery. The
// batch's keys are extracted once; each repetition then evaluates its
// membership row through the flat Float64Batch kernel and folds the
// fingerprint contributions (rho_j^i via the repetition's PowCache) into its
// level cells. Equivalent to repeated Process calls; steady-state calls
// allocate nothing.
func (e *Estimator) ProcessBatch(batch []stream.Update) {
	n := len(batch)
	idx := stream.Keys(batch, &e.scratchIdx)
	if cap(e.scratchU) < n {
		e.scratchU = make([]float64, n)
	}
	us := e.scratchU[:n]
	for j := 0; j < e.reps; j++ {
		e.member.Float64Batch(j, idx, us)
		pw := e.rhoPow[j]
		for t, u := range batch {
			h := us[t]
			if h >= 1 {
				continue
			}
			contrib := field.Mul(field.FromInt64(u.Delta), pw.Pow(idx[t]))
			q := 1.0
			for k := 0; k < e.levels; k++ {
				if h >= q {
					break
				}
				e.fp[k][j] = field.Add(e.fp[k][j], contrib)
				q /= 2
			}
		}
	}
}

// Merge adds another estimator's fingerprints into this one (sketch
// linearity). Both must be same-seed replicas; a mismatch is reported as an
// error and leaves the receiver untouched.
func (e *Estimator) Merge(other *Estimator) error {
	if other == nil {
		return fmt.Errorf("distinct: %w", codec.ErrNilMerge)
	}
	if e.n != other.n || e.levels != other.levels || e.reps != other.reps {
		return fmt.Errorf("distinct: merging estimators of different shapes: %w", codec.ErrConfigMismatch)
	}
	if !e.member.Equal(other.member) {
		return fmt.Errorf("distinct: %w", codec.ErrSeedMismatch)
	}
	for j := range e.rho {
		if e.rho[j] != other.rho[j] {
			return fmt.Errorf("distinct: %w", codec.ErrSeedMismatch)
		}
	}
	for k := range e.fp {
		for j := range e.fp[k] {
			e.fp[k][j] = field.Add(e.fp[k][j], other.fp[k][j])
		}
	}
	return nil
}

// liveLevel reports whether a majority of repetitions at level k hold
// nonzero fingerprints.
func (e *Estimator) liveLevel(k int) bool {
	live := 0
	for j := 0; j < e.reps; j++ {
		if e.fp[k][j] != 0 {
			live++
		}
	}
	return 2*live > e.reps
}

// Estimate returns a constant-factor approximation of L0(x): 0 exactly when
// the sketch has seen a (net) zero vector, otherwise a value within a small
// constant factor of the true support size w.h.p.
func (e *Estimator) Estimate() int64 {
	if !e.liveLevel(0) {
		// Level 0 fingerprints all zero: the vector is zero (up to the
		// n/2^61 fingerprint collision probability).
		return 0
	}
	deepest := 0
	for k := 1; k < e.levels; k++ {
		if e.liveLevel(k) {
			deepest = k
		}
	}
	// 2^{k*} ∈ [L0/2, 8·L0] w.h.p.; report 2·2^{k*} to centre the band.
	return int64(2) << deepest
}

// SpaceBits reports fingerprints plus per-repetition seeds.
func (e *Estimator) SpaceBits() int64 {
	return int64(e.levels*e.reps)*64 + e.member.SpaceBits() + int64(e.reps)*64 // + rho per repetition
}

// StateBits reports the transmissible fingerprints only (public-coin model).
func (e *Estimator) StateBits() int64 { return int64(e.levels*e.reps) * 64 }

// AppendState writes the level fingerprints into a codec encoder.
func (e *Estimator) AppendState(enc *codec.Encoder) {
	for _, lvl := range e.fp {
		for _, v := range lvl {
			enc.U64(uint64(v))
		}
	}
}

// RestoreState replaces the level fingerprints from a codec decoder.
func (e *Estimator) RestoreState(d *codec.Decoder) {
	for _, lvl := range e.fp {
		for j := range lvl {
			lvl[j] = field.New(d.U64())
		}
	}
}
