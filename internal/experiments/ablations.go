package experiments

import (
	"math"

	"repro/internal/core"
	"repro/internal/stream"
	"repro/internal/vector"
)

// ablationRun measures TV distance and success rate of a sampler
// configuration against the exact Lp distribution of a fixed workload.
func ablationRun(mk func() *core.LpSampler, st stream.Stream, truth *vector.Dense, p float64, trials int) (tv float64, success string, relErrP95 float64) {
	target := truth.LpDistribution(p)
	counts := map[int]int{}
	var relErrs []float64
	got := 0
	for trial := 0; trial < trials; trial++ {
		s := mk()
		st.Feed(s)
		out, ok := s.Sample()
		if !ok {
			continue
		}
		got++
		counts[out.Index]++
		if tvv := truth.Get(out.Index); tvv != 0 {
			relErrs = append(relErrs, math.Abs(out.Estimate-float64(tvv))/math.Abs(float64(tvv)))
		}
	}
	return vector.EmpiricalTV(counts, target, got), pct(got, trials), quantile(relErrs, 0.95)
}

// ablationWorkload builds the shared small-support workload.
func ablationWorkload() (stream.Stream, *vector.Dense, int) {
	const n = 256
	values := map[int]int64{3: 100, 17: -200, 40: 50, 99: 400, 150: -100, 200: 25, 222: 300, 255: -50}
	var st stream.Stream
	for i, v := range values {
		st = append(st, stream.Update{Index: i, Delta: v})
	}
	return st, st.Apply(n), n
}

// A1ScalingIndependence ablates the k-wise independence of the scaling
// factors: the paper uses k = 10⌈1/|p-1|⌉ (and k = O(log 1/ε) at p = 1)
// where [1] used pairwise — one of the two ingredients that preserve the ε
// dependence (§1, "a slightly more powerful source of randomness").
func A1ScalingIndependence(cfg Config) Table {
	r := cfg.rng(0xA1)
	st, truth, n := ablationWorkload()
	t := Table{
		ID:     "A1",
		Title:  "Ablation: k-wise vs pairwise scaling factors (§1/§2)",
		Claim:  "k = 10⌈1/|p-1|⌉-wise independence backs the concentration in Lemma 3",
		Header: []string{"p", "k", "trials", "success", "TV(dist)", "relerr p95"},
	}
	const p = 1.5
	trials := cfg.trials(300)
	for _, k := range []int{2, 20} {
		tv, succ, re := ablationRun(func() *core.LpSampler {
			return core.NewLpSampler(core.LpConfig{P: p, N: n, Eps: 0.25, Delta: 0.15, KOverride: k}, r)
		}, st, truth, p, trials)
		t.Rows = append(t.Rows, []string{
			f("%.1f", p), f("%d", k), f("%d", trials), succ, f("%.3f", tv), f("%.3f", re),
		})
	}
	t.Notes = append(t.Notes,
		"k=20 is the paper's value for p=1.5; k=2 is the [1] baseline",
		"on benign workloads pairwise degrades mildly; the k-wise bound is what the proof needs")
	return t
}

// A2STest ablates the recovery-stage abort on s > βm^{1/2}r — the
// conditioning fix of Lemma 3 that the paper highlights as "subtle issues
// regarding the conditioning on the error terms which are not handled in the
// previous work".
func A2STest(cfg Config) Table {
	r := cfg.rng(0xA2)
	t := Table{
		ID:     "A2",
		Title:  "Ablation: the s > βm^{1/2}r abort (Lemma 3 conditioning fix)",
		Claim:  "aborting on heavy count-sketch tails keeps the conditional output clean (Lemma 4)",
		Header: []string{"p", "s-test", "m-factor", "trials", "success", "bad-estimates", "relerr p95"},
	}
	// Two measurements. First, Lemma 3 directly: the per-repetition abort
	// probability P[s > βm^{1/2}r] must be O(ε) — we count aborts across
	// all repetitions for a dense heavy-tailed workload and several ε.
	// Second, the off-mode comparison: disabling the test must not improve
	// estimate quality (it can only admit garbage rounds).
	const n = 256
	const p = 1.5
	st := stream.ZipfSigned(n, 0.6, 100000, r)
	truth := st.Apply(n)
	t.Header = []string{"p", "eps", "s-test", "trials", "reps", "s-aborts", "aborts/rep", "bad-estimates"}
	trials := cfg.trials(150)
	for _, eps := range []float64{0.5, 0.25, 0.1} {
		for _, disable := range []bool{false, true} {
			got, bad, reps, aborts := 0, 0, 0, 0
			for trial := 0; trial < trials; trial++ {
				s := core.NewLpSampler(core.LpConfig{
					P: p, N: n, Eps: eps, Delta: 0.15, MFactor: 3, DisableSTest: disable,
				}, r)
				st.Feed(s)
				out, ok := s.Sample()
				d := s.Diagnostics()
				reps += d.Emitted + d.STestAborts + d.ThresholdFails + d.Guarded
				aborts += d.STestAborts
				if !ok {
					continue
				}
				got++
				tv := truth.Get(out.Index)
				if tv == 0 {
					bad++
					continue
				}
				if math.Abs(out.Estimate-float64(tv)) > 2*eps*math.Abs(float64(tv)) {
					bad++
				}
			}
			mode := "on"
			if disable {
				mode = "off"
			}
			rate := "-"
			if !disable && reps > 0 {
				rate = f("%.3f", float64(aborts)/float64(reps))
			}
			t.Rows = append(t.Rows, []string{
				f("%.1f", p), f("%.2f", eps), mode, f("%d", trials), f("%d", reps),
				f("%d", aborts), rate, pct(bad, got),
			})
		}
	}
	t.Notes = append(t.Notes,
		"aborts/rep empirically bounds P[s > βm^{1/2}r]; Lemma 3 proves it is O(ε) — watch it shrink with ε",
		"bad-estimates = emitted samples whose value estimate misses by >2ε or hits a zero coordinate;",
		"on this workload the abort is rare (as Lemma 3 predicts), so on/off quality agrees — the test",
		"is the safety net for the adversarial tail event the analysis conditions away")
	return t
}

// A3SketchWidth ablates the count-sketch parameter m: the paper's
// m = O(ε^{-max(0,p-1)}) against the [1]-style m' = Θ(ε^{-p} log n) — the
// log n saving comes from bounding the count-sketch error by ‖x‖_p via the
// scaling distribution rather than by ‖z‖ directly (§1, "sharper analysis").
func A3SketchWidth(cfg Config) Table {
	r := cfg.rng(0xA3)
	st, truth, n := ablationWorkload()
	t := Table{
		ID:     "A3",
		Title:  "Ablation: count-sketch width m — paper's O(ε^{p-1}⁻) vs AKO's Θ(ε^{-p} log n)",
		Claim:  "the thin sketch suffices: same sampling quality, one log n factor less space",
		Header: []string{"p", "m-policy", "m", "trials", "success", "TV(dist)", "space(bits)"},
	}
	const p = 1.5
	const eps = 0.25
	trials := cfg.trials(300)
	type policy struct {
		name string
		mf   float64
	}
	// MFactor 16 reproduces the paper's m; the inflated factor mimics the
	// AKO width ε^{-p}·log n / ε^{-(p-1)} = ε^{-1} log n ≈ 32·
	inflate := 16 * math.Pow(eps, -1) * log2(n) / 2
	for _, pol := range []policy{{"paper", 16}, {"AKO-width", inflate}} {
		var m int
		var space int64
		tv, succ, _ := ablationRun(func() *core.LpSampler {
			s := core.NewLpSampler(core.LpConfig{P: p, N: n, Eps: eps, Delta: 0.15, MFactor: pol.mf}, r)
			m = s.M()
			space = s.SpaceBits()
			return s
		}, st, truth, p, trials)
		t.Rows = append(t.Rows, []string{
			f("%.1f", p), pol.name, f("%d", m), f("%d", trials), succ, f("%.3f", tv),
			f("%d", space),
		})
	}
	t.Notes = append(t.Notes,
		"both widths sample correctly; the wide sketch pays ~log n more space for nothing —",
		"exactly the paper's point: the tail bound through ‖x‖_p makes the thin sketch safe")
	return t
}
