package experiments

import (
	"repro/internal/baseline"
	"repro/internal/duplicates"
	"repro/internal/stream"
)

// E4Duplicates reproduces Theorem 3: duplicates in streams of length n+1
// over [n] in O(log² n log(1/δ)) bits, failure ≤ δ, wrong answers only with
// low probability. The bitmap oracle verifies every reported duplicate.
func E4Duplicates(cfg Config) Table {
	r := cfg.rng(0xE4)
	t := Table{
		ID:     "E4",
		Title:  "Finding duplicates, stream length n+1 (Theorem 3)",
		Claim:  "O(log² n log 1/δ) bits, FAIL ≤ δ, returned letter wrong only with low probability",
		Header: []string{"n", "workload", "trials", "found", "wrong", "space(bits)", "bits/log²n"},
	}
	for _, n := range []int{256, 1024, 4096} {
		for _, adversarial := range []bool{false, true} {
			trials := cfg.trials(25)
			found, wrong := 0, 0
			var space int64
			for trial := 0; trial < trials; trial++ {
				force := -1
				if adversarial {
					force = r.IntN(n)
				}
				items := stream.DuplicateItems(n, force, r)
				oracle := baseline.NewBitmap(n)
				fd := duplicates.NewFinder(n, 0.1, r)
				fd.ProcessItems(items)
				for _, it := range items {
					oracle.ProcessItem(it)
				}
				space = fd.SpaceBits()
				res := fd.Find()
				if res.Kind != duplicates.Duplicate {
					continue
				}
				found++
				// verify against exact occurrence counts
				cnt := 0
				for _, it := range items {
					if it == res.Index {
						cnt++
					}
				}
				if cnt < 2 {
					wrong++
				}
			}
			work := "random"
			if adversarial {
				work = "1-dup"
			}
			l := log2(n)
			t.Rows = append(t.Rows, []string{
				f("%d", n), work, f("%d", trials), pct(found, trials), f("%d", wrong),
				f("%d", space), f("%.0f", float64(space)/(l*l)),
			})
		}
	}
	t.Notes = append(t.Notes,
		"1-dup = exactly one repeated letter (minimal duplicate mass, the hard case)",
		"bits/log²n stays ~flat: measured space matches the O(log² n) claim")
	return t
}

// E5DuplicatesShort reproduces Theorem 4: streams of length n-s in
// O(s log n + log² n) bits, with certain NO-DUPLICATE on duplicate-free
// input.
func E5DuplicatesShort(cfg Config) Table {
	r := cfg.rng(0xE5)
	const n = 512
	t := Table{
		ID:     "E5",
		Title:  "Finding duplicates, stream length n-s (Theorem 4)",
		Claim:  "O(s log n + log² n log 1/δ) bits; NO-DUPLICATE certain on duplicate-free streams",
		Header: []string{"s", "workload", "trials", "no-dup ok", "found", "wrong", "space(bits)"},
	}
	for _, s := range []int{0, 8, 32, 96} {
		trials := cfg.trials(15)
		// duplicate-free: NO-DUPLICATE must fire every time
		noDupOK := 0
		var space int64
		for trial := 0; trial < trials; trial++ {
			items := stream.ShortItems(n, s, false, 0, r)
			sf := duplicates.NewShortFinder(n, s, 0.1, r)
			sf.ProcessItems(items)
			space = sf.SpaceBits()
			if sf.Find().Kind == duplicates.NoDuplicate {
				noDupOK++
			}
		}
		t.Rows = append(t.Rows, []string{
			f("%d", s), "distinct", f("%d", trials), pct(noDupOK, trials), "-", "-",
			f("%d", space),
		})
		// with duplicates: a few (sparse path) and many (sampler path)
		for _, dups := range []int{2, 120} {
			if n-s < 2*dups {
				continue
			}
			found, wrong := 0, 0
			for trial := 0; trial < trials; trial++ {
				items := stream.ShortItems(n, s, true, dups, r)
				sf := duplicates.NewShortFinder(n, s, 0.1, r)
				sf.ProcessItems(items)
				res := sf.Find()
				if res.Kind != duplicates.Duplicate {
					continue
				}
				found++
				cnt := 0
				for _, it := range items {
					if it == res.Index {
						cnt++
					}
				}
				if cnt < 2 {
					wrong++
				}
			}
			t.Rows = append(t.Rows, []string{
				f("%d", s), f("%d dups", dups), f("%d", trials), "-", pct(found, trials),
				f("%d", wrong), f("%d", space),
			})
		}
	}
	t.Notes = append(t.Notes,
		"few dups ⇒ x is 5s-sparse ⇒ exact recovery path (100% found, exact excess)",
		"many dups ⇒ dense path via the L1 sampler, constant success per Theorem 4")
	return t
}

// E6DuplicatesLong reproduces the §3 closing bound for streams of length
// n+s: O(min{log² n, (n/s) log n}) bits, with the crossover at n/s = log n.
func E6DuplicatesLong(cfg Config) Table {
	r := cfg.rng(0xE6)
	const n = 1024
	t := Table{
		ID:     "E6",
		Title:  "Finding duplicates, stream length n+s (§3 end): sampler vs position sampling",
		Claim:  "O(min{log² n, (n/s) log n}) bits; position sampling wins once n/s < log n",
		Header: []string{"s", "n/s", "auto-choice", "sampler bits", "possamp bits", "found(sampler)", "found(possamp)"},
	}
	for _, s := range []int{8, 32, 64, 128, 512} {
		trials := cfg.trials(15)
		foundS, foundP := 0, 0
		var bitsS, bitsP int64
		for trial := 0; trial < trials; trial++ {
			items := stream.LongItems(n, s, r)
			lfS := duplicates.NewLongFinder(n, s, 0.1, 1, r)
			lfP := duplicates.NewLongFinder(n, s, 0.1, 2, r)
			lfS.ProcessItems(items)
			lfP.ProcessItems(items)
			bitsS, bitsP = lfS.SpaceBits(), lfP.SpaceBits()
			if lfS.Find().Kind == duplicates.Duplicate {
				foundS++
			}
			if lfP.Find().Kind == duplicates.Duplicate {
				foundP++
			}
		}
		auto := duplicates.NewLongFinder(n, s, 0.1, 0, r)
		choice := "possamp"
		if auto.UsesSampler() {
			choice = "sampler"
		}
		t.Rows = append(t.Rows, []string{
			f("%d", s), f("%.0f", float64(n)/float64(s)), choice,
			f("%d", bitsS), f("%d", bitsP), pct(foundS, trials), pct(foundP, trials),
		})
	}
	t.Notes = append(t.Notes,
		"possamp = 4⌈n/s⌉ sampled positions checked for recurrence",
		"auto-choice flips to possamp once n/s < log₂ n = 10, tracking the min{} bound")
	return t
}
