// Package experiments regenerates every evaluation artifact of the
// reproduction. The paper is a theory paper without numbered tables or
// figures; its evaluation is Theorems 1-9, Lemmas 1-7 and Proposition 5.
// DESIGN.md maps each of those claims to one experiment (E1-E11) plus three
// ablations (A1-A3); this package implements them and renders one table per
// experiment. cmd/experiments prints the tables; the root bench_test.go
// exposes each as a testing.B benchmark.
package experiments

import (
	"fmt"
	"io"
	"math"
	"math/rand/v2"
	"sort"
	"strings"

	"repro/internal/vector"
)

// Config controls an experiment run.
type Config struct {
	// Seed makes runs reproducible.
	Seed uint64
	// Quick shrinks trial counts for use inside benchmarks and smoke tests.
	Quick bool
}

func (c Config) rng(salt uint64) *rand.Rand {
	return rand.New(rand.NewPCG(c.Seed^salt, c.Seed*0x9E3779B97F4A7C15+salt))
}

// trials scales a trial count down in Quick mode.
func (c Config) trials(full int) int {
	if c.Quick {
		q := full / 5
		if q < 3 {
			q = 3
		}
		return q
	}
	return full
}

// Table is one rendered experiment.
type Table struct {
	ID     string
	Title  string
	Claim  string // the paper claim being reproduced
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render pretty-prints the table.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title)
	fmt.Fprintf(w, "paper claim: %s\n", t.Claim)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Runner is one experiment entry point.
type Runner func(Config) Table

// Registry maps experiment IDs to runners, in presentation order.
func Registry() []struct {
	ID  string
	Run Runner
} {
	return []struct {
		ID  string
		Run Runner
	}{
		{"E1", E1LpSamplerAccuracy},
		{"E2", E2SpaceScaling},
		{"E3", E3L0Sampler},
		{"E4", E4Duplicates},
		{"E5", E5DuplicatesShort},
		{"E6", E6DuplicatesLong},
		{"E7", E7LowerBoundPipeline},
		{"E8", E8HeavyHitters},
		{"E9", E9CountSketchTail},
		{"E10", E10NormEstimation},
		{"E11", E11URAndSparse},
		{"E12", E12Extensions},
		{"A1", A1ScalingIndependence},
		{"A2", A2STest},
		{"A3", A3SketchWidth},
	}
}

// Run executes one experiment by ID.
func Run(id string, cfg Config) (Table, bool) {
	for _, e := range Registry() {
		if strings.EqualFold(e.ID, id) {
			return e.Run(cfg), true
		}
	}
	return Table{}, false
}

// All executes every experiment.
func All(cfg Config) []Table {
	var out []Table
	for _, e := range Registry() {
		out = append(out, e.Run(cfg))
	}
	return out
}

// ---------------------------------------------------------------------------
// small shared helpers
// ---------------------------------------------------------------------------

func f(format string, args ...any) string { return fmt.Sprintf(format, args...) }

func pct(num, den int) string {
	if den == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.0f%%", 100*float64(num)/float64(den))
}

// quantile returns the q-quantile of v (v is sorted in place).
func quantile(v []float64, q float64) float64 {
	if len(v) == 0 {
		return math.NaN()
	}
	sort.Float64s(v)
	idx := int(q * float64(len(v)-1))
	return v[idx]
}

func log2(n int) float64 { return math.Log2(float64(n)) }

// tvNoiseFloor estimates the total-variation distance a PERFECT sampler
// would show with the same number of samples: the finite-sample noise floor
// that empirical TV columns must be read against.
func tvNoiseFloor(r *rand.Rand, target []float64, samples int) float64 {
	if samples == 0 {
		return 1
	}
	counts := map[int]int{}
	for s := 0; s < samples; s++ {
		u := r.Float64()
		acc := 0.0
		idx := len(target) - 1
		for i, p := range target {
			acc += p
			if u < acc {
				idx = i
				break
			}
		}
		counts[idx]++
	}
	return vector.EmpiricalTV(counts, target, samples)
}
