package experiments

import (
	"math"

	"repro/internal/commlb"
	"repro/internal/heavyhitters"
	"repro/internal/stream"
)

// E7LowerBoundPipeline makes the §4 reductions executable: the Theorem 6
// (augmented indexing → universal relation) and Theorem 7 (UR → duplicates)
// pipelines must actually solve their source problems with the claimed
// probabilities while shipping only Θ(log² n)-bit messages, and Theorem 8's
// hard instances (0/±1 vectors) are exactly what the duplicates reduction
// produces.
func E7LowerBoundPipeline(cfg Config) Table {
	r := cfg.rng(0xE7)
	t := Table{
		ID:     "E7",
		Title:  "Lower-bound reductions, run end-to-end (Theorems 6, 7, 8; Prop. 5)",
		Claim:  "Ω(log² n) for sampling 0/±1 vectors & duplicates; reductions preserve correctness",
		Header: []string{"pipeline", "params", "trials", "answered", "correct", "msg(bits)", "msg/log²n"},
	}

	// Theorem 6: AI via one-round UR (which itself is Prop. 5's L0 message).
	for _, s := range []int{4, 5, 6} {
		trials := cfg.trials(50)
		answered, correct := 0, 0
		var msg int64
		n := ((1 << s) - 1) << s // t = s
		for trial := 0; trial < trials; trial++ {
			inst := commlb.RandomAI(s, s, r)
			res := commlb.AIviaUR(inst, 0.1, r)
			msg = res.MessageBits
			if !res.OK {
				continue
			}
			answered++
			if res.Output == inst.Z[inst.I] {
				correct++
			}
		}
		l := log2(n)
		t.Rows = append(t.Rows, []string{
			"AI→UR→L0msg", f("s=t=%d (n=%d)", s, n), f("%d", trials), pct(answered, trials),
			pct(correct, answered), f("%d", msg), f("%.0f", float64(msg)/(l*l)),
		})
	}

	// Theorem 7: UR via duplicates (messages are the Finder's counters).
	for _, n := range []int{64, 128} {
		trials := cfg.trials(40)
		answered, correct := 0, 0
		var msg int64
		for trial := 0; trial < trials; trial++ {
			inst := commlb.RandomUR(n, 1+r.IntN(n/2), r)
			res := commlb.URviaDuplicates(inst, 0.1, r)
			msg = res.MessageBits
			if !res.OK {
				continue
			}
			answered++
			if inst.Differs(res.Output) {
				correct++
			}
		}
		l := log2(n)
		t.Rows = append(t.Rows, []string{
			"UR→duplicates", f("n=%d", n), f("%d", trials), pct(answered, trials),
			pct(correct, answered), f("%d", msg), f("%.0f", float64(msg)/(l*l)),
		})
	}

	t.Notes = append(t.Notes,
		"AI correctness target: >1/2 of answers (block i holds a majority of differing indices)",
		"UR→duplicates answers at a constant rate (P[|S∩P|+|T∩P|≥n+1] > 1/8) and must never mis-answer",
		"msg/log²n roughly flat across n ⇒ the matching upper bounds are tight, as Theorem 8 proves")
	return t
}

// E8HeavyHitters reproduces §4.4: the count-sketch heavy hitters structure
// produces valid sets in Θ(φ^{-p} log² n) bits, and the Theorem 9 protocol
// decodes augmented indexing through it in the strict turnstile model.
func E8HeavyHitters(cfg Config) Table {
	r := cfg.rng(0xE8)
	t := Table{
		ID:     "E8",
		Title:  "Lp heavy hitters: validity and space (§4.4, Theorem 9)",
		Claim:  "count-sketch gives O(φ^{-p} log² n) bits for all p∈(0,2]; Ω(φ^{-p} log² n) necessary",
		Header: []string{"mode", "p", "phi", "trials", "valid/correct", "space(bits)", "bits/(φ^{-p}log²n)"},
	}
	const n = 1024
	for _, p := range []float64{0.5, 1, 2} {
		for _, phi := range []float64{0.3, 0.15} {
			trials := cfg.trials(15)
			valid := 0
			var space int64
			for trial := 0; trial < trials; trial++ {
				st := stream.StrictTurnstile(n, 4000, 10, r)
				st = append(st, stream.Update{Index: r.IntN(n), Delta: 60000})
				truth := st.Apply(n)
				hh := heavyhitters.New(heavyhitters.Config{P: p, Phi: phi, N: n}, r)
				st.Feed(hh)
				space = hh.SpaceBits()
				if ok, _, _ := heavyhitters.Valid(truth, p, phi, hh.HeavyHitters()); ok {
					valid++
				}
			}
			l := log2(n)
			norm := math.Pow(phi, -p) * l * l
			t.Rows = append(t.Rows, []string{
				"validity", f("%.1f", p), f("%.2f", phi), f("%d", trials), pct(valid, trials),
				f("%d", space), f("%.0f", float64(space)/norm),
			})
		}
	}
	// Theorem 9 protocol.
	for _, s := range []int{5, 7} {
		trials := cfg.trials(30)
		correct := 0
		var msg int64
		for trial := 0; trial < trials; trial++ {
			inst := commlb.RandomAI(s, 4, r)
			res := commlb.AIviaHeavyHitters(inst, 1, 0.25, r)
			msg = res.MessageBits
			if res.OK && res.Output == inst.Z[inst.I] {
				correct++
			}
		}
		t.Rows = append(t.Rows, []string{
			"AI→HH (Thm 9)", "1.0", "0.25", f("%d", trials), pct(correct, trials),
			f("%d", msg), "-",
		})
	}
	t.Notes = append(t.Notes,
		"valid = contains every |x_i| ≥ φ‖x‖_p, excludes every |x_i| ≤ (φ/2)‖x‖_p",
		"bits/(φ^{-p}log²n) roughly constant across p and φ ⇒ upper bound matches Theorem 9's lower bound")
	return t
}
