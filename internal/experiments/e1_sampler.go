package experiments

import (
	"math"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/stream"
	"repro/internal/vector"
)

// E1LpSamplerAccuracy reproduces Theorem 1's guarantee: for p in (0,2) the
// sampler's output distribution is within O(ε) of the Lp distribution, the
// returned estimate has relative error <= ε w.h.p., and failures stay below
// δ after repetition.
func E1LpSamplerAccuracy(cfg Config) Table {
	r := cfg.rng(0xE1)
	const n = 256
	// Small-support vector keeps the empirical-TV sampling noise low.
	values := map[int]int64{3: 100, 17: -200, 40: 50, 99: 400, 150: -100, 200: 25, 222: 300, 255: -50}
	var st stream.Stream
	for i, v := range values {
		st = append(st, stream.Update{Index: i, Delta: v})
	}
	truth := st.Apply(n)

	t := Table{
		ID:     "E1",
		Title:  "Lp sampler accuracy (Theorem 1 / Figure 1)",
		Claim:  "ε relative error Lp sampling for p∈(0,2) in O(ε^{-max(1,p)} log² n) space; failure ≤ δ",
		Header: []string{"p", "eps", "trials", "success", "TV(dist)", "TV(floor)", "relerr p95", "fail-rate", "space(bits)"},
	}
	for _, p := range []float64{0.5, 1, 1.5} {
		for _, eps := range []float64{0.5, 0.25} {
			target := truth.LpDistribution(p)
			trials := cfg.trials(300)
			counts := map[int]int{}
			var relErrs []float64
			got, fails := 0, 0
			var space int64
			for trial := 0; trial < trials; trial++ {
				s := core.NewLpSampler(core.LpConfig{P: p, N: n, Eps: eps, Delta: 0.15}, r)
				st.Feed(s)
				space = s.SpaceBits()
				out, ok := s.Sample()
				if !ok {
					fails++
					continue
				}
				got++
				counts[out.Index]++
				if tv := truth.Get(out.Index); tv != 0 {
					relErrs = append(relErrs, math.Abs(out.Estimate-float64(tv))/math.Abs(float64(tv)))
				}
			}
			tv := vector.EmpiricalTV(counts, target, got)
			floor := tvNoiseFloor(r, target, got)
			t.Rows = append(t.Rows, []string{
				f("%.1f", p), f("%.2f", eps), f("%d", trials), pct(got, trials),
				f("%.3f", tv), f("%.3f", floor), f("%.3f", quantile(relErrs, 0.95)), pct(fails, trials),
				f("%d", space),
			})
		}
	}
	t.Notes = append(t.Notes,
		"TV(floor) = empirical TV of a PERFECT sampler at the same sample count; compare columns",
		"success = any repetition produced output; per-round success is Θ(ε) as analyzed")
	return t
}

// E2SpaceScaling reproduces the headline space claim: the Theorem 1 sampler
// needs O(ε^{-p} log² n) bits where the AKO baseline [1] needs
// O(ε^{-p} log³ n): our bits/log²n stays flat as n grows while AKO's grows
// like log n.
func E2SpaceScaling(cfg Config) Table {
	r := cfg.rng(0xE2)
	const eps = 0.25
	const p = 1.5
	const copies = 4
	t := Table{
		ID:     "E2",
		Title:  "Sampler space vs n: this paper vs AKO baseline (Theorem 1 vs [1])",
		Claim:  "O(ε^{-p} log² n) here vs O(ε^{-p} log³ n) in [1] — one log factor saved",
		Header: []string{"n", "ours(bits)", "ours/log²n", "AKO(bits)", "AKO/log³n", "AKO/ours"},
	}
	for _, lg := range []int{8, 10, 12, 14, 16, 18} {
		n := 1 << lg
		ours := core.NewLpSampler(core.LpConfig{P: p, N: n, Eps: eps, Delta: 0.2, Copies: copies}, r)
		ako := baseline.NewAKO(p, n, eps, copies, r)
		l := float64(lg)
		t.Rows = append(t.Rows, []string{
			f("2^%d", lg),
			f("%d", ours.SpaceBits()),
			f("%.0f", float64(ours.SpaceBits())/(l*l)),
			f("%d", ako.SpaceBits()),
			f("%.0f", float64(ako.SpaceBits())/(l*l*l)),
			f("%.1fx", float64(ako.SpaceBits())/float64(ours.SpaceBits())),
		})
	}
	t.Notes = append(t.Notes,
		"ours/log²n and AKO/log³n flat ⇒ measured exponents match the claimed bounds",
		"the AKO/ours ratio grows ≈ linearly in log n: the saved log factor")
	return t
}

// E3L0Sampler reproduces Theorem 2: zero relative error L0 sampling with
// O(log² n) bits (vs the FIS baseline's O(log³ n)), uniform over the
// support, failing with probability ≤ δ.
func E3L0Sampler(cfg Config) Table {
	r := cfg.rng(0xE3)
	t := Table{
		ID:     "E3",
		Title:  "L0 sampler: uniformity, exactness, space (Theorem 2 vs [12])",
		Claim:  "zero relative error L0 sampling in O(log² n) bits; [12] needs O(log³ n)",
		Header: []string{"n", "support", "levels", "trials", "success", "TV(unif)", "TV(floor)", "value-exact", "ours(bits)", "FIS(bits)"},
	}
	for _, scen := range []struct {
		n, support int
		nested     bool
	}{
		{256, 6, false}, {1024, 100, false}, {1024, 1024, false},
		{256, 6, true}, {1024, 100, true}, {1024, 1024, true},
	} {
		trials := cfg.trials(300)
		st := stream.SparseVector(scen.n, scen.support, 1000, r)
		truth := st.Apply(scen.n)
		target := truth.LpDistribution(0)
		counts := map[int]int{}
		got, exact := 0, 0
		var oursBits, fisBits int64
		for trial := 0; trial < trials; trial++ {
			s := core.NewL0Sampler(core.L0Config{N: scen.n, Delta: 0.2, NestedLevels: scen.nested}, r)
			st.Feed(s)
			oursBits = s.SpaceBits()
			out, ok := s.Sample()
			if !ok {
				continue
			}
			got++
			counts[out.Index]++
			if float64(truth.Get(out.Index)) == out.Estimate {
				exact++
			}
		}
		reps := int(math.Ceil(log2(scen.n)))
		fis := baseline.NewFISL0(scen.n, reps, r)
		fisBits = fis.SpaceBits()
		tv := vector.EmpiricalTV(counts, target, got)
		floor := tvNoiseFloor(r, target, got)
		mode := "iid"
		if scen.nested {
			mode = "nested"
		}
		t.Rows = append(t.Rows, []string{
			f("%d", scen.n), f("%d", scen.support), mode, f("%d", trials), pct(got, trials),
			f("%.3f", tv), f("%.3f", floor), pct(exact, got), f("%d", oursBits), f("%d", fisBits),
		})
	}
	t.Notes = append(t.Notes,
		"value-exact = sampled value equals x_i exactly (the 'zero relative error' claim)",
		"levels = iid (independent per-level coins, DESIGN substitution #2) or nested (§2.1 dyadic I_1 ⊆ I_2 ⊆ ...)",
		"TV(floor) = empirical TV of perfect uniform sampling at the same sample count;",
		"matching TV and floor (e.g. support 1024 at 300 samples) means the sampler is as uniform as measurable")
	return t
}
