package experiments

import (
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "A1", "A2", "A3"}
	reg := Registry()
	if len(reg) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(reg), len(want))
	}
	for i, e := range reg {
		if e.ID != want[i] {
			t.Errorf("registry[%d] = %s, want %s", i, e.ID, want[i])
		}
	}
}

func TestRunUnknownID(t *testing.T) {
	if _, ok := Run("E99", Config{Seed: 1, Quick: true}); ok {
		t.Fatal("unknown ID must not resolve")
	}
}

func TestRunCaseInsensitive(t *testing.T) {
	tbl, ok := Run("e9", Config{Seed: 1, Quick: true})
	if !ok || tbl.ID != "E9" {
		t.Fatal("IDs must match case-insensitively")
	}
}

// TestEveryExperimentProducesWellFormedTable is the smoke test that each
// experiment runs end-to-end in quick mode and emits a consistent table.
func TestEveryExperimentProducesWellFormedTable(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	cfg := Config{Seed: 3, Quick: true}
	for _, e := range Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tbl := e.Run(cfg)
			if tbl.ID != e.ID {
				t.Errorf("table ID %q != registry ID %q", tbl.ID, e.ID)
			}
			if tbl.Title == "" || tbl.Claim == "" {
				t.Error("missing title or claim")
			}
			if len(tbl.Rows) == 0 {
				t.Fatal("no rows")
			}
			for ri, row := range tbl.Rows {
				if len(row) != len(tbl.Header) {
					t.Errorf("row %d has %d cells, header has %d", ri, len(row), len(tbl.Header))
				}
			}
			var sb strings.Builder
			tbl.Render(&sb)
			out := sb.String()
			if !strings.Contains(out, tbl.ID) || !strings.Contains(out, "paper claim:") {
				t.Error("render output malformed")
			}
		})
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	a, _ := Run("E2", Config{Seed: 5, Quick: true})
	b, _ := Run("E2", Config{Seed: 5, Quick: true})
	if len(a.Rows) != len(b.Rows) {
		t.Fatal("row counts differ across identical runs")
	}
	for i := range a.Rows {
		for j := range a.Rows[i] {
			if a.Rows[i][j] != b.Rows[i][j] {
				t.Fatalf("cell (%d,%d) differs: %q vs %q", i, j, a.Rows[i][j], b.Rows[i][j])
			}
		}
	}
}

func TestQuickReducesTrials(t *testing.T) {
	full := Config{Seed: 1}
	quick := Config{Seed: 1, Quick: true}
	if quick.trials(300) >= full.trials(300) {
		t.Error("quick mode must reduce trials")
	}
	if quick.trials(4) < 3 {
		t.Error("quick mode must keep a minimum of 3 trials")
	}
}
