package experiments

import (
	"math"

	"repro/internal/commlb"
	"repro/internal/core"
	"repro/internal/moments"
	"repro/internal/stream"
)

// E12Extensions measures the paper's secondary results implemented beyond
// the headline theorems: the two-pass L0 sampler of the appendix remark,
// the two-round UR protocol of Proposition 5, and the F_p (p > 2) moment
// estimation application inherited from [23].
func E12Extensions(cfg Config) Table {
	r := cfg.rng(0xE12)
	t := Table{
		ID:     "E12",
		Title:  "Secondary results: two-pass L0, two-round UR, F_p moments",
		Claim:  "appendix: 2-pass L0 beats O(log² n); Prop 5: R²(UR) drops a log factor; §1: samplers drive the [23] applications",
		Header: []string{"component", "params", "trials", "success", "quality", "space/msg(bits)", "1-pass/1-round(bits)"},
	}

	// Two-pass vs one-pass L0 sampler: exactness and space.
	for _, n := range []int{1 << 10, 1 << 14} {
		trials := cfg.trials(40)
		okCount, exact := 0, 0
		var twoBits, oneBits int64
		for trial := 0; trial < trials; trial++ {
			st := stream.SparseVector(n, 20+trial%200, 100, r)
			truth := st.Apply(n)
			tp := core.NewTwoPassL0Sampler(n, 0.2, r)
			st.Feed(tp)
			tp.EndPass1()
			st.Feed(tp)
			twoBits = tp.SpaceBits()
			one := core.NewL0Sampler(core.L0Config{N: n, Delta: 0.2}, r)
			oneBits = one.SpaceBits()
			out, ok := tp.Sample()
			if !ok {
				continue
			}
			okCount++
			if float64(truth.Get(out.Index)) == out.Estimate {
				exact++
			}
		}
		t.Rows = append(t.Rows, []string{
			"2-pass L0", f("n=%d", n), f("%d", trials), pct(okCount, trials),
			f("exact %s", pct(exact, okCount)), f("%d", twoBits), f("%d", oneBits),
		})
	}

	// Two-round vs one-round UR: message totals and the round-2 size.
	for _, n := range []int{1 << 10, 1 << 14} {
		trials := cfg.trials(25)
		okCount, wrong := 0, 0
		var twoMsg, rnd2, oneMsg int64
		for trial := 0; trial < trials; trial++ {
			inst := commlb.RandomUR(n, 1+trial%(n/2), r)
			res2 := commlb.TwoRoundUR(inst, 0.1, r)
			twoMsg, rnd2 = res2.MessageBits, res2.Round2Bits
			if trial == 0 {
				oneMsg = commlb.OneRoundUR(inst, 0.1, r).MessageBits
			}
			if !res2.OK {
				continue
			}
			okCount++
			if !inst.Differs(res2.Output) {
				wrong++
			}
		}
		t.Rows = append(t.Rows, []string{
			"2-round UR", f("n=%d rnd2=%db", n, rnd2), f("%d", trials), pct(okCount, trials),
			f("wrong %d", wrong), f("%d", twoMsg), f("%d", oneMsg),
		})
	}

	// F_p moments via L1 sampling.
	for _, p := range []float64{3, 4} {
		trials := cfg.trials(10)
		const n = 256
		st := stream.ZipfSigned(n, 1.2, 1000, r)
		truthVec := st.Apply(n)
		var truth float64
		for _, v := range truthVec.Coords() {
			truth += math.Pow(math.Abs(float64(v)), p)
		}
		okCount, good := 0, 0
		var space int64
		var ratios []float64
		for trial := 0; trial < trials; trial++ {
			e := moments.NewFp(p, n, 24, r)
			st.Feed(e)
			space = e.SpaceBits()
			got, ok := e.Estimate()
			if !ok {
				continue
			}
			okCount++
			ratios = append(ratios, got/truth)
			if got > truth/4 && got < truth*4 {
				good++
			}
		}
		t.Rows = append(t.Rows, []string{
			f("F_%g moments", p), f("n=%d, 24 samplers", n), f("%d", trials), pct(okCount, trials),
			f("within4x %s, med ratio %.2f", pct(good, okCount), quantile(ratios, 0.5)),
			f("%d", space), "-",
		})
	}

	t.Notes = append(t.Notes,
		"2-pass L0 space undercuts 1-pass by collapsing ⌊log n⌋ recovery levels into one committed level",
		"2-round UR: round 2 is a single s-sparse recoverer — orders of magnitude below the 1-round message",
		"F_p estimator consumes the sampler's x_i estimates (footnote 1 of the paper) via importance sampling")
	return t
}
