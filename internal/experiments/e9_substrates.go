package experiments

import (
	"math"

	"repro/internal/commlb"
	"repro/internal/countsketch"
	"repro/internal/norm"
	"repro/internal/sparse"
	"repro/internal/stream"
)

// E9CountSketchTail reproduces Lemma 1: the count-sketch pointwise error is
// bounded by Err^m_2(x)/√m w.h.p., and the best m-sparse approximation of
// the output has tail within a factor 10 of Err^m_2(x).
func E9CountSketchTail(cfg Config) Table {
	r := cfg.rng(0xE9)
	const n = 2048
	t := Table{
		ID:     "E9",
		Title:  "Count-sketch tail guarantee (Lemma 1)",
		Claim:  "|x_i - x*_i| ≤ Err^m_2(x)/√m for all i w.h.p.; Err ≤ ‖x-x̂‖₂ ≤ 10·Err",
		Header: []string{"m", "trials", "pointwise ok", "worst err·√m/Err", "tail ratio ‖x-x̂‖/Err", "space(bits)"},
	}
	st := stream.ZipfSigned(n, 0.9, 1_000_000, r)
	truth := st.Apply(n)
	for _, m := range []int{4, 16, 64} {
		trials := cfg.trials(10)
		rows := int(log2(n)) + 4
		errM2 := truth.ErrM2(m)
		okCount := 0
		worst := 0.0
		var tailRatio float64
		var space int64
		for trial := 0; trial < trials; trial++ {
			cs := countsketch.New(m, rows, r)
			st.Feed(cs)
			space = cs.SpaceBits()
			worstTrial := 0.0
			for i := 0; i < n; i++ {
				d := math.Abs(float64(truth.Get(i)) - cs.Estimate(uint64(i)))
				if d > worstTrial {
					worstTrial = d
				}
			}
			ratio := worstTrial * math.Sqrt(float64(m)) / errM2
			if ratio <= 1 {
				okCount++
			}
			if ratio > worst {
				worst = ratio
			}
			// tail of best m-sparse approximation of the output
			top := cs.Top(n, m)
			xhat := make([]float64, n)
			for _, e := range top {
				xhat[e.Index] = e.Estimate
			}
			var dist float64
			for i := 0; i < n; i++ {
				d := float64(truth.Get(i)) - xhat[i]
				dist += d * d
			}
			tailRatio = math.Sqrt(dist) / errM2
		}
		t.Rows = append(t.Rows, []string{
			f("%d", m), f("%d", trials), pct(okCount, trials), f("%.2f", worst),
			f("%.2f", tailRatio), f("%d", space),
		})
	}
	t.Notes = append(t.Notes,
		"worst err·√m/Err ≤ 1 certifies the Lemma 1 bound; tail ratio must sit in [1,10]")
	return t
}

// E10NormEstimation reproduces Lemma 2: a factor-2 Lp norm estimate
// (‖x‖_p ≤ r ≤ 2‖x‖_p) w.h.p. from O(log n) counters, for all p in (0,2].
func E10NormEstimation(cfg Config) Table {
	r := cfg.rng(0xEA)
	const n = 512
	t := Table{
		ID:     "E10",
		Title:  "Lp norm estimation, factor 2 w.h.p. (Lemma 2)",
		Claim:  "for p∈(0,2]: r computed from O(log n) counters with ‖x‖_p ≤ r ≤ 2‖x‖_p w.h.p.",
		Header: []string{"p", "estimator", "counters", "trials", "in [‖x‖,2‖x‖]", "median r/‖x‖"},
	}
	st := stream.ZipfSigned(n, 0.8, 10000, r)
	truth := st.Apply(n)
	cases := []struct {
		p        float64
		counters int
	}{
		{0.5, 200}, {1, 100}, {1.5, 100}, {2, 0},
	}
	for _, c := range cases {
		trials := cfg.trials(40)
		lp := truth.NormP(c.p)
		hits := 0
		var ratios []float64
		name := "p-stable"
		counters := c.counters
		for trial := 0; trial < trials; trial++ {
			var est norm.Estimator
			if c.p == 2 {
				est = norm.NewAMS(11, 6, r)
				name = "AMS"
				counters = 66
			} else {
				est = norm.NewStable(c.p, c.counters, r)
			}
			st.Feed(est)
			rEst := est.UpperEstimate(nil)
			if rEst >= lp && rEst <= 2*lp {
				hits++
			}
			ratios = append(ratios, rEst/lp)
		}
		t.Rows = append(t.Rows, []string{
			f("%.1f", c.p), name, f("%d", counters), f("%d", trials),
			pct(hits, trials), f("%.2f", quantile(ratios, 0.5)),
		})
	}
	t.Notes = append(t.Notes,
		"UpperEstimate = 4/3 × median estimator, centring the factor-2 window",
		"smaller p needs more counters: heavier-tailed stable laws disperse the sample median")
	return t
}

// E11URAndSparse reproduces Proposition 5 (one-round UR in O(log² n log 1/δ)
// bits) and Lemma 5 (exact s-sparse recovery, DENSE detection w.h.p.).
func E11URAndSparse(cfg Config) Table {
	r := cfg.rng(0xEB)
	t := Table{
		ID:     "E11",
		Title:  "Universal relation protocol (Prop. 5) and sparse recovery (Lemma 5)",
		Claim:  "R¹_δ(UR^n) = O(log² n log 1/δ); s-sparse recovery exact w.p. 1, DENSE w.h.p.",
		Header: []string{"component", "params", "trials", "success", "wrong", "msg/space(bits)"},
	}
	// One-round UR across n and Hamming distance.
	for _, n := range []int{256, 4096} {
		for _, d := range []int{1, n / 4} {
			trials := cfg.trials(25)
			okCount, wrong := 0, 0
			var msg int64
			for trial := 0; trial < trials; trial++ {
				inst := commlb.RandomUR(n, d, r)
				res := commlb.OneRoundUR(inst, 0.1, r)
				msg = res.MessageBits
				if !res.OK {
					continue
				}
				okCount++
				if !inst.Differs(res.Output) {
					wrong++
				}
			}
			t.Rows = append(t.Rows, []string{
				"UR 1-round", f("n=%d d=%d", n, d), f("%d", trials), pct(okCount, trials),
				f("%d", wrong), f("%d", msg),
			})
		}
	}
	// Two-round UR (Prop 5's second claim): total message drops, and the
	// second round alone is tiny.
	for _, n := range []int{256, 4096} {
		trials := cfg.trials(25)
		okCount, wrong := 0, 0
		var msg, msg2 int64
		for trial := 0; trial < trials; trial++ {
			inst := commlb.RandomUR(n, 1+trial%(n/4), r)
			res := commlb.TwoRoundUR(inst, 0.1, r)
			msg = res.MessageBits
			if res.Round2Bits > 0 {
				msg2 = res.Round2Bits
			}
			if !res.OK {
				continue
			}
			okCount++
			if !inst.Differs(res.Output) {
				wrong++
			}
		}
		t.Rows = append(t.Rows, []string{
			"UR 2-round", f("n=%d (rnd2 %db)", n, msg2), f("%d", trials), pct(okCount, trials),
			f("%d", wrong), f("%d", msg),
		})
	}
	// Sparse recovery: exactness at e <= s, DENSE above.
	const n = 1000
	for _, s := range []int{4, 16} {
		trials := cfg.trials(30)
		exact, denseOK := 0, 0
		var space int64
		for trial := 0; trial < trials; trial++ {
			rc := sparse.New(n, s, r)
			e := 1 + r.IntN(s)
			st := stream.SparseVector(n, e, 1000, r)
			truth := st.Apply(n)
			st.Feed(rc)
			space = rc.SpaceBits()
			rec, ok := rc.Recover()
			good := ok && len(rec) == truth.L0()
			if good {
				for i, v := range rec {
					if truth.Get(i) != v {
						good = false
					}
				}
			}
			if good {
				exact++
			}
			// dense case
			rc2 := sparse.New(n, s, r)
			stream.SparseVector(n, 3*s+r.IntN(n/4), 1000, r).Feed(rc2)
			if _, ok := rc2.Recover(); !ok {
				denseOK++
			}
		}
		t.Rows = append(t.Rows, []string{
			"sparse recovery", f("s=%d", s), f("%d", trials),
			f("exact %s / dense %s", pct(exact, trials), pct(denseOK, trials)), "0",
			f("%d", space),
		})
	}
	t.Notes = append(t.Notes,
		"UR message = L0-sampler counter state (public-coin model); wrong must be 0",
		"sparse recovery: exact must be 100% (probability-1 claim), DENSE detection is w.h.p.")
	return t
}
