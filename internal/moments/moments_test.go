package moments

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/stream"
)

func TestFpPanicsBelowTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for p <= 2")
		}
	}()
	NewFp(2, 100, 4, rand.New(rand.NewPCG(1, 1)))
}

func TestFpZeroVector(t *testing.T) {
	e := NewFp(3, 64, 4, rand.New(rand.NewPCG(2, 2)))
	if _, ok := e.Estimate(); ok {
		t.Fatal("zero vector must not produce an estimate")
	}
}

func TestFpSingleHeavyCoordinate(t *testing.T) {
	// One dominant coordinate: F_3 ≈ |x|^3; the estimator must land within
	// a small factor.
	r := rand.New(rand.NewPCG(3, 3))
	const n = 128
	good := 0
	const trials = 10
	for trial := 0; trial < trials; trial++ {
		e := NewFp(3, n, 8, r)
		for i := 0; i < n; i++ {
			e.Process(stream.Update{Index: i, Delta: 1})
		}
		e.Process(stream.Update{Index: 7, Delta: 999})
		truth := math.Pow(1000, 3) + float64(n-1)
		got, ok := e.Estimate()
		if !ok {
			continue
		}
		if got > truth/3 && got < truth*3 {
			good++
		}
	}
	if good < trials*7/10 {
		t.Errorf("F3 within 3x only %d/%d times", good, trials)
	}
}

func TestFpModerateSkew(t *testing.T) {
	// Zipf-ish magnitudes: the L1-importance estimator should track F_3
	// within a constant factor with a few dozen samples.
	if testing.Short() {
		t.Skip("statistical test")
	}
	r := rand.New(rand.NewPCG(4, 4))
	const n = 256
	st := stream.ZipfSigned(n, 1.2, 1000, r)
	truthVec := st.Apply(n)
	var truth float64
	for _, v := range truthVec.Coords() {
		truth += math.Pow(math.Abs(float64(v)), 3)
	}
	good := 0
	const trials = 8
	for trial := 0; trial < trials; trial++ {
		e := NewFp(3, n, 24, r)
		st.Feed(e)
		got, ok := e.Estimate()
		if !ok {
			continue
		}
		if got > truth/4 && got < truth*4 {
			good++
		}
	}
	if good < trials*2/3 {
		t.Errorf("F3 within 4x only %d/%d times (truth %.3g)", good, trials, truth)
	}
}

func TestFpSignInsensitive(t *testing.T) {
	// F_p uses |x_i|: flipping signs must not change the target, and the
	// estimator consumes |estimate| so it should behave identically.
	r := rand.New(rand.NewPCG(5, 5))
	const n = 64
	e := NewFp(4, n, 8, r)
	e.Process(stream.Update{Index: 3, Delta: -500})
	e.Process(stream.Update{Index: 9, Delta: 500})
	got, ok := e.Estimate()
	if !ok {
		t.Fatal("estimator failed on 2-sparse vector")
	}
	truth := 2 * math.Pow(500, 4)
	if got < truth/4 || got > truth*4 {
		t.Errorf("F4 = %.3g, truth %.3g", got, truth)
	}
}

func TestFpSpaceGrowsWithSamples(t *testing.T) {
	r := rand.New(rand.NewPCG(6, 6))
	a := NewFp(3, 128, 2, r)
	b := NewFp(3, 128, 16, r)
	if b.SpaceBits() <= a.SpaceBits() {
		t.Error("space must grow with the sample count")
	}
}
