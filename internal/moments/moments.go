// Package moments estimates frequency moments F_p = Σ|x_i|^p for p > 2 from
// Lp samples — one of the applications Monemizadeh and Woodruff [23]
// introduced Lp samplers for, which the paper inherits ("our Lp samplers
// work and often give better space performance for all applications listed
// in [23]", §1).
//
// The estimator is the classical importance-sampling identity: for a sample
// i drawn from the L1 distribution (P[i] = |x_i|/‖x‖₁),
//
//	E[|x_i|^{p-1}] = Σ_i (|x_i|/‖x‖₁)·|x_i|^{p-1} = F_p / ‖x‖₁,
//
// so F_p ≈ ‖x‖₁ · mean over samples of |x̂_i|^{p-1}, where both the sample
// i and the value estimate x̂_i come straight out of Theorem 1's sampler
// (footnote 1: the sampler yields an ε-relative-error estimate of x_i
// itself, which is exactly what this application consumes). ‖x‖₁ comes from
// the Lemma 2 p-stable estimator.
//
// The number of samples needed for a (1±ε) estimate grows with the skew
// (Θ(n^{1-2/p}) in the worst case, as for all sampling-based F_p
// algorithms); this package exposes the sample count as a knob and the
// experiments use planted workloads with moderate skew.
package moments

import (
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/norm"
	"repro/internal/stream"
)

// FpEstimator estimates F_p for p > 2 over a turnstile stream.
type FpEstimator struct {
	p        float64
	samplers []*core.LpSampler
	l1       *norm.Stable
}

// NewFp constructs an estimator with the given number of independent L1
// samplers (the accuracy knob). Panics unless p > 2.
func NewFp(p float64, n, samples int, r *rand.Rand) *FpEstimator {
	if p <= 2 {
		panic("moments: FpEstimator requires p > 2; use norm estimators below 2")
	}
	if samples < 1 {
		samples = 1
	}
	e := &FpEstimator{
		p:        p,
		samplers: make([]*core.LpSampler, samples),
		l1:       norm.NewStable(1, 120, r),
	}
	for i := range e.samplers {
		e.samplers[i] = core.NewLpSampler(core.LpConfig{
			P:     1,
			N:     n,
			Eps:   0.25,
			Delta: 0.25,
		}, r)
	}
	return e
}

// Process implements stream.Sink.
func (e *FpEstimator) Process(u stream.Update) {
	e.l1.Process(u)
	for _, s := range e.samplers {
		s.Process(u)
	}
}

// ProcessBatch implements stream.BatchSink: the L1 norm sketch and every
// sampler consume the batch through their batched hot paths.
func (e *FpEstimator) ProcessBatch(batch []stream.Update) {
	e.l1.ProcessBatch(batch)
	for _, s := range e.samplers {
		s.ProcessBatch(batch)
	}
}

// Merge adds another estimator's state so the result summarizes the sum of
// the two underlying vectors (sketch linearity). Both must be same-seed
// replicas with identical p and sampler counts; validation happens inside
// the component merges, before their mutations.
func (e *FpEstimator) Merge(other *FpEstimator) error {
	if other == nil {
		return fmt.Errorf("moments: %w", codec.ErrNilMerge)
	}
	if e.p != other.p || len(e.samplers) != len(other.samplers) {
		return fmt.Errorf("moments: merging Fp estimators of different configurations: %w", codec.ErrConfigMismatch)
	}
	for i, s := range e.samplers {
		if err := s.Merge(other.samplers[i]); err != nil {
			return err
		}
	}
	return e.l1.Merge(other.l1)
}

// AppendState writes every sampler's linear state and the L1 counters into
// a codec encoder.
func (e *FpEstimator) AppendState(enc *codec.Encoder) {
	for _, s := range e.samplers {
		s.AppendState(enc)
	}
	e.l1.AppendState(enc)
}

// RestoreState replaces every sampler's linear state and the L1 counters
// from a codec decoder.
func (e *FpEstimator) RestoreState(d *codec.Decoder) {
	for _, s := range e.samplers {
		s.RestoreState(d)
	}
	e.l1.RestoreState(d)
}

// Estimate returns the F_p estimate. ok is false when no sampler produced a
// sample (zero vector, or all repetitions failed).
func (e *FpEstimator) Estimate() (float64, bool) {
	l1 := e.l1.Estimate(nil)
	if l1 == 0 {
		return 0, false
	}
	var sum float64
	var count int
	for _, s := range e.samplers {
		out, ok := s.Sample()
		if !ok {
			continue
		}
		sum += math.Pow(math.Abs(out.Estimate), e.p-1)
		count++
	}
	if count == 0 {
		return 0, false
	}
	return l1 * sum / float64(count), true
}

// SpaceBits reports the combined sketch footprint.
func (e *FpEstimator) SpaceBits() int64 {
	bits := e.l1.SpaceBits()
	for _, s := range e.samplers {
		bits += s.SpaceBits()
	}
	return bits
}
