package prng

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// TestPropertyBlockStableUnderGrowth: generators for different output sizes
// but identical seed draws produce different parameters, but a SINGLE
// generator must return identical blocks on repeated queries in any order —
// random access is pure.
func TestPropertyRandomAccessPure(t *testing.T) {
	f := func(seed uint64, queries []uint16) bool {
		g := New(1<<14, rand.New(rand.NewPCG(seed, seed^0xABCD)))
		first := map[uint64]uint64{}
		for _, q := range queries {
			b := uint64(q) % g.Blocks()
			v := g.Block(b)
			if prev, seen := first[b]; seen && prev != v {
				return false
			}
			first[b] = v
		}
		// Re-query everything in reverse order.
		for _, q := range queries {
			b := uint64(q) % g.Blocks()
			if g.Block(b) != first[b] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestPropertyBlockInField: every block is a valid 61-bit field value.
func TestPropertyBlockInField(t *testing.T) {
	f := func(seed uint64, b uint32) bool {
		g := New(1<<20, rand.New(rand.NewPCG(seed, 3)))
		return g.Block(uint64(b)) < 1<<61
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPropertyBitConsistentWithBlock: Bit(i) must equal the corresponding
// bit of Block(i/61).
func TestPropertyBitConsistentWithBlock(t *testing.T) {
	f := func(seed uint64, i uint16) bool {
		g := New(1<<12, rand.New(rand.NewPCG(seed, 9)))
		idx := uint64(i)
		want := g.Block(idx/BlockBits)>>(idx%BlockBits)&1 == 1
		return g.Bit(idx) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPropertyBlockBatchMatchesBlock: the prefix-stack batch kernel must
// agree with scalar Block for every index sequence — sorted, reversed,
// duplicated or arbitrary — across generator depths (including depth 0 and
// indices beyond Blocks(), which wrap exactly like Block).
func TestPropertyBlockBatchMatchesBlock(t *testing.T) {
	f := func(seed uint64, bitsOut uint32, raw []uint16) bool {
		g := New(1+uint64(bitsOut%(1<<22)), rand.New(rand.NewPCG(seed, seed^0x5555)))
		idx := make([]uint64, len(raw))
		for i, q := range raw {
			idx[i] = uint64(q) * uint64(q) // spread beyond Blocks() to test wrap
		}
		dst := make([]uint64, len(idx))
		g.BlockBatch(dst, idx)
		for i, b := range idx {
			if dst[i] != g.Block(b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestPropertyFloat64BatchMatchesFloat64At: the batch uniform kernel must
// agree exactly with scalar Float64At for arbitrary index sequences.
func TestPropertyFloat64BatchMatchesFloat64At(t *testing.T) {
	f := func(seed uint64, raw []uint16) bool {
		g := New(1<<18, rand.New(rand.NewPCG(seed, 0xF10A)))
		idx := make([]uint64, len(raw))
		for i, q := range raw {
			idx[i] = uint64(q)
		}
		dst := make([]float64, len(idx))
		scratch := make([]uint64, len(idx))
		g.Float64Batch(dst, idx, scratch)
		for i, b := range idx {
			if dst[i] != g.Float64At(b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyThresholdMatchesFloat64At: for any block value, the integer
// threshold compare agrees with the float membership test except on the
// <= 1-in-2^53 boundary cases where float rounding flips the comparison —
// those may only disagree when the two sides are within one ULP.
func TestPropertyThresholdMatchesFloat64At(t *testing.T) {
	f := func(seed uint64, qRaw uint32, b uint32) bool {
		g := New(1<<16, rand.New(rand.NewPCG(seed, 0xBEEF)))
		q := float64(qRaw) / float64(1<<32)
		blk := g.Block(uint64(b))
		intIn := blk < Threshold(q)
		floatIn := g.Float64At(uint64(b)) < q
		if intIn == floatIn {
			return true
		}
		// Disagreements must sit on the rounding boundary.
		diff := (float64(blk)+1)/float64(1<<61-1) - q
		return diff < 1e-15 && diff > -1e-15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPropertySeedDeterminism: same seed, same construction -> identical
// generators.
func TestPropertySeedDeterminism(t *testing.T) {
	f := func(seed uint64) bool {
		g1 := New(1<<12, rand.New(rand.NewPCG(seed, 42)))
		g2 := New(1<<12, rand.New(rand.NewPCG(seed, 42)))
		for b := uint64(0); b < 16; b++ {
			if g1.Block(b) != g2.Block(b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
