package prng

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// TestPropertyBlockStableUnderGrowth: generators for different output sizes
// but identical seed draws produce different parameters, but a SINGLE
// generator must return identical blocks on repeated queries in any order —
// random access is pure.
func TestPropertyRandomAccessPure(t *testing.T) {
	f := func(seed uint64, queries []uint16) bool {
		g := New(1<<14, rand.New(rand.NewPCG(seed, seed^0xABCD)))
		first := map[uint64]uint64{}
		for _, q := range queries {
			b := uint64(q) % g.Blocks()
			v := g.Block(b)
			if prev, seen := first[b]; seen && prev != v {
				return false
			}
			first[b] = v
		}
		// Re-query everything in reverse order.
		for _, q := range queries {
			b := uint64(q) % g.Blocks()
			if g.Block(b) != first[b] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestPropertyBlockInField: every block is a valid 61-bit field value.
func TestPropertyBlockInField(t *testing.T) {
	f := func(seed uint64, b uint32) bool {
		g := New(1<<20, rand.New(rand.NewPCG(seed, 3)))
		return g.Block(uint64(b)) < 1<<61
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPropertyBitConsistentWithBlock: Bit(i) must equal the corresponding
// bit of Block(i/61).
func TestPropertyBitConsistentWithBlock(t *testing.T) {
	f := func(seed uint64, i uint16) bool {
		g := New(1<<12, rand.New(rand.NewPCG(seed, 9)))
		idx := uint64(i)
		want := g.Block(idx/BlockBits)>>(idx%BlockBits)&1 == 1
		return g.Bit(idx) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPropertySeedDeterminism: same seed, same construction -> identical
// generators.
func TestPropertySeedDeterminism(t *testing.T) {
	f := func(seed uint64) bool {
		g1 := New(1<<12, rand.New(rand.NewPCG(seed, 42)))
		g2 := New(1<<12, rand.New(rand.NewPCG(seed, 42)))
		for b := uint64(0); b < 16; b++ {
			if g1.Block(b) != g2.Block(b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
