// Package prng implements Nisan's pseudorandom generator for space-bounded
// computation (Nisan, STOC 1990), which Theorem 2 of the paper uses to
// derandomize the L0 sampler: the generator stretches an O(log^2 n)-bit seed
// into poly(n) bits that fool every logspace tester, including the one that
// checks which index the sampler would output for a fixed support J.
//
// Construction. Pick a block width w and a depth d. The seed is an initial
// block x0 plus d independent pairwise-independent hash functions
// h_1, ..., h_d : {0,1}^w -> {0,1}^w. The output is defined recursively by
//
//	G_0(x) = x
//	G_j(x) = G_{j-1}(x) || G_{j-1}(h_j(x))
//
// so G_d produces 2^d blocks of w bits from a seed of (2d+1)w bits. Crucially
// the construction supports random access: block b is obtained from x0 by
// applying h_j for every set bit j of b, top level first — O(d) field
// operations per block. The L0 sampler exploits this to query level-membership
// bits per update without materializing the stream of bits.
//
// We realize blocks as elements of GF(2^61-1) (w = 61) and the pairwise
// hashes as affine maps a*x+b over the field, the standard instantiation.
package prng

import (
	"math/bits"
	"math/rand/v2"

	"repro/internal/field"
	"repro/internal/kernel"
)

// BlockBits is the width w of one output block.
const BlockBits = 61

// Nisan is an instance of Nisan's generator with random block access.
//
// Block and Bit are pure and safe for concurrent use. BlockBatch and
// Float64Batch reuse a per-generator prefix stack and must not be called
// concurrently with each other (one goroutine per generator, the same
// discipline the sketches' scratch buffers already follow).
type Nisan struct {
	depth int
	x0    field.Elem
	ha    []field.Elem // multipliers of h_1..h_depth
	hb    []field.Elem // offsets of h_1..h_depth

	// stack[l] holds the partial walk state after consuming address bits
	// depth-1..l (stack[depth] = x0): the prefix stack of BlockBatch,
	// allocated lazily and reused across calls.
	stack []field.Elem
}

// New constructs a generator able to emit at least outputBits pseudorandom
// bits, drawing its seed from r. The depth (and hence the seed size) grows
// logarithmically with outputBits: seed = (2d+1) * 61 bits = O(log^2 n) when
// outputBits = poly(n) and w = Theta(log n).
func New(outputBits uint64, r *rand.Rand) *Nisan {
	blocks := (outputBits + BlockBits - 1) / BlockBits
	depth := 0
	for uint64(1)<<depth < blocks {
		depth++
	}
	g := &Nisan{
		depth: depth,
		x0:    field.New(r.Uint64()),
		ha:    make([]field.Elem, depth),
		hb:    make([]field.Elem, depth),
	}
	for j := 0; j < depth; j++ {
		// Multiplier must be nonzero for the map to be a bijection.
		a := field.New(r.Uint64())
		for a == 0 {
			a = field.New(r.Uint64())
		}
		g.ha[j] = a
		g.hb[j] = field.New(r.Uint64())
	}
	return g
}

// Blocks returns the number of addressable blocks, 2^depth.
func (g *Nisan) Blocks() uint64 { return 1 << g.depth }

// Block returns the b-th 61-bit output block. Blocks beyond Blocks()-1 wrap
// around (callers size the generator so this does not happen in practice).
func (g *Nisan) Block(b uint64) uint64 {
	if g.depth > 0 {
		b &= (1 << g.depth) - 1
	} else {
		b = 0
	}
	x := g.x0
	// Top level chooses first: bit depth-1 of b selects whether h_depth is
	// applied, then recursion continues on lower levels.
	for j := g.depth; j >= 1; j-- {
		if b&(1<<(j-1)) != 0 {
			x = field.Add(field.Mul(g.ha[j-1], x), g.hb[j-1])
		}
	}
	return uint64(x)
}

// BlockBatch writes Block(idx[t]) into dst[t] for every t, walking the
// generator tree once with an explicit prefix stack instead of re-deriving
// each block from x0.
//
// The walk keeps, for every tree level l, the state reached after applying
// the hash functions selected by the address bits above l. Consecutive
// addresses that share a high-bit prefix re-enter the walk at the first
// differing bit (found with one XOR + Len64), so only the suffix below that
// bit pays h_j applications.
//
// Long runs of consecutive addresses (16+ from a 16-aligned base — bulk
// range generation, not the L0 sampler's ~dozen blocks per update, which
// stay on the walk) take a subtree fast path: the run is decomposed greedily
// into aligned power-of-two subtrees, and each subtree of height h is
// expanded breadth-first in place inside dst by h doubling passes
// (kernel.AffineExpand: node x becomes the pair x, h_l(x)), one kernel
// dispatch per level instead of per address. Every output is the same exact
// field-arithmetic composition Block computes, so results stay bit-identical
// on all kernel backends; arbitrary orders remain correct, merely slower.
// dst and idx must have equal length. Nothing allocates after the first call.
func (g *Nisan) BlockBatch(dst []uint64, idx []uint64) {
	if len(dst) != len(idx) {
		panic("prng: BlockBatch dst/idx length mismatch")
	}
	if len(idx) == 0 {
		return
	}
	if g.stack == nil {
		g.stack = make([]field.Elem, g.depth+1)
	}
	var mask uint64
	if g.depth > 0 {
		mask = (1 << g.depth) - 1
	}
	stack := g.stack
	stack[g.depth] = g.x0
	// The first query pays the full walk: start above the top level.
	start := g.depth
	var prev uint64
	t := 0
	for t < len(idx) {
		b := idx[t] & mask
		if t > 0 {
			diff := prev ^ b
			if diff == 0 {
				dst[t] = dst[t-1]
				t++
				continue
			}
			// Bits depth-1..Len64(diff) agree with the previous address, so
			// the stack is valid down to that level; resume there.
			start = bits.Len64(diff)
		}
		// A subtree expansion only pays off from height 4 up, and an aligned
		// height-4 subtree needs a 16-aligned base with at least 16
		// consecutive addresses ahead — so the run scan probes exactly
		// there. Everything else (the L0 sampler's ~dozen consecutive
		// blocks per update included) takes the per-address re-entry walk
		// at zero extra bookkeeping; a long unaligned run walks at most 15
		// addresses before reaching an aligned probe point, and a failed
		// probe costs at most 15 wasted comparisons.
		run := 0
		if b&15 == 0 {
			run = 1
			for t+run < len(idx) && b+uint64(run) <= mask && idx[t+run]&mask == b+uint64(run) {
				run++
			}
			if run < 16 {
				run = 0
			}
		}
		if run == 0 {
			x := stack[start]
			for j := start; j >= 1; j-- {
				if b&(1<<(j-1)) != 0 {
					x = field.Add(field.Mul(g.ha[j-1], x), g.hb[j-1])
				}
				stack[j-1] = x
			}
			dst[t] = uint64(x)
			prev = b
			t++
			continue
		}
		for run > 0 {
			// Largest aligned subtree at b fitting in the run: height h with
			// 2^h | b and 2^h <= run (TrailingZeros64(0) = 64 caps at depth).
			h := bits.TrailingZeros64(b)
			if h > g.depth {
				h = g.depth
			}
			if lg := bits.Len64(uint64(run)) - 1; h > lg {
				h = lg
			}
			// Subtree root: bits above max(start, h) already match the stack;
			// walk the remaining bits start-1..h of b.
			lvl := start
			if h > lvl {
				lvl = h
			}
			x := stack[lvl]
			for j := lvl; j > h; j-- {
				if b&(1<<(j-1)) != 0 {
					x = field.Add(field.Mul(g.ha[j-1], x), g.hb[j-1])
				}
				stack[j-1] = x
			}
			// Breadth-first doubling, top level of the subtree first: after
			// the level-l pass, seg[:2m] holds the nodes at level l-1 in
			// address order, so h passes leave the 2^h block values in place.
			n := 1 << h
			seg := dst[t : t+n]
			seg[0] = uint64(x)
			for l := h; l >= 1; l-- {
				m := 1 << (h - l)
				if m < 8 {
					// Below a vector's worth of nodes the dispatch + call
					// overhead exceeds the handful of multiplies; inline the
					// identical doubling (same ops, same canonical results).
					a, hb := g.ha[l-1], g.hb[l-1]
					for i := m - 1; i >= 0; i-- {
						x := field.Elem(seg[i])
						seg[2*i] = uint64(x)
						seg[2*i+1] = uint64(field.Add(field.Mul(a, x), hb))
					}
					continue
				}
				kernel.AffineExpand(uint64(g.ha[l-1]), uint64(g.hb[l-1]), seg[:2*m], m)
			}
			// Leave the stack positioned at the subtree's last address (all
			// low h bits set) so the next re-entry resumes correctly.
			for j := h; j >= 1; j-- {
				x = field.Add(field.Mul(g.ha[j-1], x), g.hb[j-1])
				stack[j-1] = x
			}
			prev = b + uint64(n) - 1
			t += n
			run -= n
			b += uint64(n)
			start = bits.Len64(prev ^ b)
		}
	}
}

// Float64Batch writes Float64At(idx[t]) into dst[t] via BlockBatch. The
// membership hot paths avoid the float conversion entirely by comparing raw
// blocks against Threshold values; this variant serves callers that need
// uniforms in (0,1].
func (g *Nisan) Float64Batch(dst []float64, idx []uint64, scratch []uint64) {
	if len(dst) != len(idx) || len(scratch) < len(idx) {
		panic("prng: Float64Batch length mismatch")
	}
	scratch = scratch[:len(idx)]
	g.BlockBatch(scratch, idx)
	for t, v := range scratch {
		dst[t] = (float64(v) + 1) / float64(field.Modulus)
	}
}

// Threshold converts an inclusion probability q into an integer cutoff T
// such that a block value v is "in" iff v < T, with P(v < T) = T/Modulus for
// a uniform block — within 2^-53 relative of q, the float mantissa budget,
// and clamped so q >= 1 always includes (every block is < Modulus). The
// compare replaces the Float64At division of the membership tests with one
// integer comparison.
func Threshold(q float64) uint64 {
	if q >= 1 {
		return field.Modulus
	}
	if q <= 0 {
		return 0
	}
	return uint64(q * float64(field.Modulus))
}

// Bit returns the i-th pseudorandom bit of the output stream.
func (g *Nisan) Bit(i uint64) bool {
	return g.Block(i/BlockBits)>>(i%BlockBits)&1 == 1
}

// Float64At interprets block b as a uniform real in (0,1].
func (g *Nisan) Float64At(b uint64) float64 {
	return (float64(g.Block(b)) + 1) / float64(field.Modulus)
}

// Uint64At returns the block value (61 random bits) at index b.
func (g *Nisan) Uint64At(b uint64) uint64 { return g.Block(b) }

// SeedBits reports the true seed size: the initial block plus (a,b) per level.
func (g *Nisan) SeedBits() int64 {
	return int64(2*g.depth+1) * BlockBits
}

// SpaceBits reports storage rounded to 64-bit words, matching the space
// accounting used by the sketches.
func (g *Nisan) SpaceBits() int64 {
	return int64(2*g.depth+1) * 64
}
