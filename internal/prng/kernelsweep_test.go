package prng

import (
	"math/rand/v2"
	"testing"

	"repro/internal/kernel"
)

// sweepVariants runs fn once under every kernel variant selectable on this
// machine, restoring the startup selection afterwards. Block is not
// dispatched and serves as the scalar reference.
func sweepVariants(t *testing.T, fn func(t *testing.T)) {
	prev := kernel.Active()
	t.Cleanup(func() {
		if err := kernel.Select(prev); err != nil {
			t.Fatalf("restoring kernel variant %q: %v", prev, err)
		}
	})
	for _, name := range kernel.Variants() {
		if err := kernel.Select(name); err != nil {
			t.Fatalf("Select(%q): %v", name, err)
		}
		t.Run(name, fn)
	}
}

func TestBlockBatchVariantsMatchBlock(t *testing.T) {
	g := New(1<<16*BlockBits, rand.New(rand.NewPCG(61, 1)))
	r := rand.New(rand.NewPCG(62, 1))
	blocks := g.Blocks()

	var patterns [][]uint64
	// Consecutive runs at aligned and unaligned bases, crossing subtree
	// boundaries, including a run hitting the top of the address space.
	for _, base := range []uint64{0, 1, 5, 63, 64, 1000, blocks - 70} {
		for _, length := range []int{1, 2, 3, 8, 33, 64, 129} {
			run := make([]uint64, length)
			for i := range run {
				run[i] = base + uint64(i)
			}
			patterns = append(patterns, run)
		}
	}
	// Duplicates inside and between runs.
	patterns = append(patterns, []uint64{7, 7, 8, 9, 9, 9, 10, 64, 64, 65})
	// Descending, strided and random orders (no runs — the slow path).
	patterns = append(patterns, []uint64{100, 99, 98, 50, 3, 2, 1, 0})
	strided := make([]uint64, 50)
	for i := range strided {
		strided[i] = uint64(i) * 37
	}
	patterns = append(patterns, strided)
	random := make([]uint64, 200)
	for i := range random {
		random[i] = r.Uint64()
	}
	patterns = append(patterns, random)
	// A mix of runs and jumps in one batch.
	patterns = append(patterns, []uint64{0, 1, 2, 3, 900, 901, 902, 17, 16, 40, 41, 42, 43, 44, 45, 46, 47, 48})

	sweepVariants(t, func(t *testing.T) {
		for pi, idx := range patterns {
			dst := make([]uint64, len(idx))
			g.BlockBatch(dst, idx)
			for i, b := range idx {
				if want := g.Block(b); dst[i] != want {
					t.Fatalf("pattern %d: BlockBatch[%d] (block %d) = %#x, Block = %#x",
						pi, i, b, dst[i], want)
				}
			}
		}
	})
}
