package prng

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/field"
)

// expandReference materializes all blocks of the generator by the recursive
// definition G_j(x) = G_{j-1}(x) || G_{j-1}(h_j(x)), independently of the
// random-access implementation.
func expandReference(g *Nisan) []uint64 {
	var rec func(x field.Elem, level int) []uint64
	rec = func(x field.Elem, level int) []uint64 {
		if level == 0 {
			return []uint64{uint64(x)}
		}
		left := rec(x, level-1)
		hx := field.Add(field.Mul(g.ha[level-1], x), g.hb[level-1])
		right := rec(hx, level-1)
		return append(left, right...)
	}
	return rec(g.x0, g.depth)
}

func TestBlockMatchesRecursiveDefinition(t *testing.T) {
	r := rand.New(rand.NewPCG(1, 1))
	g := New(61*32, r) // depth 5
	want := expandReference(g)
	if uint64(len(want)) != g.Blocks() {
		t.Fatalf("reference produced %d blocks, generator says %d", len(want), g.Blocks())
	}
	for b := uint64(0); b < g.Blocks(); b++ {
		if got := g.Block(b); got != want[b] {
			t.Fatalf("Block(%d) = %d, reference %d", b, got, want[b])
		}
	}
}

func TestDeterminism(t *testing.T) {
	g := New(1<<12, rand.New(rand.NewPCG(2, 2)))
	for b := uint64(0); b < 16; b++ {
		if g.Block(b) != g.Block(b) {
			t.Fatal("Block must be deterministic")
		}
	}
}

func TestSeedGrowthIsLogarithmic(t *testing.T) {
	r := rand.New(rand.NewPCG(3, 3))
	small := New(1<<10, r)
	big := New(1<<30, r)
	// Output grew by 2^20x; depth (and seed) may only grow additively by ~20
	// levels, i.e. well under a 6x factor from the 2^10 baseline.
	if big.SeedBits() > 6*small.SeedBits() {
		t.Errorf("seed grew too fast: %d -> %d bits", small.SeedBits(), big.SeedBits())
	}
	// Seed of a generator for 2^30 bits must stay well under the output.
	if big.SeedBits() > 64*64 {
		t.Errorf("seed %d bits too large for O(log^2) scaling", big.SeedBits())
	}
}

func TestBitBalance(t *testing.T) {
	g := New(1<<16, rand.New(rand.NewPCG(4, 4)))
	ones := 0
	const total = 1 << 14
	for i := uint64(0); i < total; i++ {
		if g.Bit(i) {
			ones++
		}
	}
	if math.Abs(float64(ones)-total/2) > 6*math.Sqrt(total/4) {
		t.Errorf("bit balance off: %d ones of %d", ones, total)
	}
}

func TestBlocksLookRandomPairwise(t *testing.T) {
	// Adjacent blocks should not be correlated: compare XOR popcount stats.
	g := New(1<<16, rand.New(rand.NewPCG(5, 5)))
	var totalDiff int
	const pairs = 512
	for b := uint64(0); b < pairs; b++ {
		x := g.Block(2 * b)
		y := g.Block(2*b + 1)
		totalDiff += popcount(x ^ y)
	}
	mean := float64(pairs) * BlockBits / 2
	if math.Abs(float64(totalDiff)-mean) > 6*math.Sqrt(mean) {
		t.Errorf("adjacent blocks correlated: %d differing bits, want ~%.0f", totalDiff, mean)
	}
}

func popcount(x uint64) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}

func TestFloat64AtRange(t *testing.T) {
	g := New(1<<12, rand.New(rand.NewPCG(6, 6)))
	var sum float64
	const total = 1 << 10
	for b := uint64(0); b < total; b++ {
		f := g.Float64At(b)
		if f <= 0 || f > 1 {
			t.Fatalf("Float64At out of range: %g", f)
		}
		sum += f
	}
	if math.Abs(sum/total-0.5) > 0.05 {
		t.Errorf("Float64At mean %.3f far from 0.5", sum/total)
	}
}

func TestDepthZero(t *testing.T) {
	g := New(1, rand.New(rand.NewPCG(7, 7)))
	if g.Blocks() != 1 {
		t.Fatalf("Blocks() = %d, want 1", g.Blocks())
	}
	if g.Block(0) != g.Block(5) {
		t.Error("single-block generator must wrap all indices to block 0")
	}
}

func TestDistinctSeedsDistinctStreams(t *testing.T) {
	g1 := New(1<<12, rand.New(rand.NewPCG(8, 8)))
	g2 := New(1<<12, rand.New(rand.NewPCG(9, 9)))
	same := 0
	for b := uint64(0); b < 32; b++ {
		if g1.Block(b) == g2.Block(b) {
			same++
		}
	}
	if same > 2 {
		t.Errorf("independent generators agree on %d of 32 blocks", same)
	}
}

func TestBlockBatchZeroAlloc(t *testing.T) {
	g := New(1<<24, rand.New(rand.NewPCG(10, 10)))
	idx := make([]uint64, 64)
	dst := make([]uint64, 64)
	for i := range idx {
		idx[i] = uint64(i) * 37
	}
	g.BlockBatch(dst, idx) // warm up the prefix stack
	if got := testing.AllocsPerRun(10, func() { g.BlockBatch(dst, idx) }); got != 0 {
		t.Errorf("BlockBatch allocates %v times per call, want 0", got)
	}
}

func BenchmarkBlock(b *testing.B) {
	g := New(1<<30, rand.New(rand.NewPCG(1, 1)))
	for i := 0; i < b.N; i++ {
		g.Block(uint64(i))
	}
}

// BenchmarkBlockBatchRun measures the L0 fast path's access pattern: runs of
// 16 consecutive blocks at a random base per "update". Compare against
// BenchmarkBlockScalarRun, the same work through scalar Block calls.
func BenchmarkBlockBatchRun(b *testing.B) {
	g := New(1<<30, rand.New(rand.NewPCG(1, 1)))
	idx := make([]uint64, 16)
	dst := make([]uint64, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := uint64(i) * 0x9E3779B97F4A7C15 >> 34 << 4
		for t := range idx {
			idx[t] = base + uint64(t)
		}
		g.BlockBatch(dst, idx)
	}
	b.ReportMetric(float64(b.N*16)/b.Elapsed().Seconds(), "blocks/s")
}

func BenchmarkBlockScalarRun(b *testing.B) {
	g := New(1<<30, rand.New(rand.NewPCG(1, 1)))
	var sink uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := uint64(i) * 0x9E3779B97F4A7C15 >> 34 << 4
		for t := uint64(0); t < 16; t++ {
			sink += g.Block(base + t)
		}
	}
	_ = sink
	b.ReportMetric(float64(b.N*16)/b.Elapsed().Seconds(), "blocks/s")
}
