package heavyhitters

import (
	"math/rand/v2"
	"testing"

	"repro/internal/stream"
)

func TestValidityOnPlantedHeavies(t *testing.T) {
	r := rand.New(rand.NewPCG(1, 1))
	const n = 512
	for _, p := range []float64{0.5, 1, 1.5, 2} {
		okCount := 0
		const trials = 10
		for trial := 0; trial < trials; trial++ {
			var st stream.Stream
			// background noise + planted heavies
			for i := 0; i < n; i++ {
				st = append(st, stream.Update{Index: i, Delta: int64(1 + r.IntN(3))})
			}
			st = append(st,
				stream.Update{Index: 17, Delta: 4000},
				stream.Update{Index: 330, Delta: -3500},
			)
			truth := st.Apply(n)
			s := New(Config{P: p, Phi: 0.3, N: n}, r)
			st.Feed(s)
			set := s.HeavyHitters()
			if ok, missing, forbidden := Valid(truth, p, 0.3, set); ok {
				okCount++
			} else {
				t.Logf("p=%.1f trial %d: missing=%d forbidden=%d set=%v", p, trial, missing, forbidden, set)
			}
		}
		if okCount < trials-2 {
			t.Errorf("p=%.1f: valid set only %d/%d times", p, okCount, trials)
		}
	}
}

func TestStrictTurnstileWorkload(t *testing.T) {
	// The Theorem 9 regime: strict turnstile, inserts then deletes.
	r := rand.New(rand.NewPCG(2, 2))
	const n = 256
	okCount := 0
	const trials = 10
	for trial := 0; trial < trials; trial++ {
		st := stream.StrictTurnstile(n, 3000, 10, r)
		// Plant one unambiguous heavy hitter.
		st = append(st, stream.Update{Index: 99, Delta: 100000})
		truth := st.Apply(n)
		s := New(Config{P: 1, Phi: 0.25, N: n}, r)
		st.Feed(s)
		set := s.HeavyHitters()
		found := false
		for _, i := range set {
			if i == 99 {
				found = true
			}
		}
		if !found {
			t.Fatalf("trial %d: planted heavy hitter missing from %v", trial, set)
		}
		if ok, _, _ := Valid(truth, 1, 0.25, set); ok {
			okCount++
		}
	}
	if okCount < trials-2 {
		t.Errorf("valid only %d/%d times", okCount, trials)
	}
}

func TestNoHeaviesUniformVector(t *testing.T) {
	// Uniform vector with phi above 1/n^{1/p}-ish: the all-heavy band is
	// empty, and nothing with |x_i| <= phi/2 * norm may be reported. With
	// all coordinates equal and way below phi*norm, an empty (or tiny) set
	// is the only valid answer.
	r := rand.New(rand.NewPCG(3, 3))
	const n = 400
	var st stream.Stream
	for i := 0; i < n; i++ {
		st = append(st, stream.Update{Index: i, Delta: 5})
	}
	truth := st.Apply(n)
	s := New(Config{P: 1, Phi: 0.2, N: n}, r)
	st.Feed(s)
	set := s.HeavyHitters()
	if ok, missing, forbidden := Valid(truth, 1, 0.2, set); !ok {
		t.Errorf("uniform vector: invalid set (missing=%d forbidden=%d, |set|=%d)", missing, forbidden, len(set))
	}
}

func TestMScalesWithPhi(t *testing.T) {
	r := rand.New(rand.NewPCG(4, 4))
	coarse := New(Config{P: 1, Phi: 0.5, N: 64}, r)
	fine := New(Config{P: 1, Phi: 0.05, N: 64}, r)
	if fine.M() <= coarse.M() {
		t.Error("m must grow as phi shrinks")
	}
	// p=2 scaling is phi^{-2}.
	fine2 := New(Config{P: 2, Phi: 0.05, N: 64}, r)
	if fine2.M() <= fine.M() {
		t.Error("m must grow with p for fixed small phi")
	}
}

func TestConfigPanics(t *testing.T) {
	r := rand.New(rand.NewPCG(5, 5))
	for _, cfg := range []Config{
		{P: 0, Phi: 0.1, N: 10},
		{P: 2.5, Phi: 0.1, N: 10},
		{P: 1, Phi: 0, N: 10},
		{P: 1, Phi: 1, N: 10},
		{P: 1, Phi: 0.1, N: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v must panic", cfg)
				}
			}()
			New(cfg, r)
		}()
	}
}

func TestValidChecker(t *testing.T) {
	st := stream.Stream{{Index: 0, Delta: 100}, {Index: 1, Delta: 1}, {Index: 2, Delta: 1}}
	truth := st.Apply(3)
	// phi=0.5: only coordinate 0 is heavy (norm1=102, threshold 51).
	if ok, _, _ := Valid(truth, 1, 0.5, []int{0}); !ok {
		t.Error("correct set rejected")
	}
	if ok, missing, _ := Valid(truth, 1, 0.5, nil); ok || missing != 1 {
		t.Error("missing heavy not detected")
	}
	if ok, _, forbidden := Valid(truth, 1, 0.5, []int{0, 1}); ok || forbidden != 1 {
		t.Error("forbidden light element not detected")
	}
}

func TestSpaceBitsScaling(t *testing.T) {
	r := rand.New(rand.NewPCG(6, 6))
	coarse := New(Config{P: 1, Phi: 0.5, N: 1 << 10}, r)
	fine := New(Config{P: 1, Phi: 0.1, N: 1 << 10}, r)
	if fine.SpaceBits() <= coarse.SpaceBits() {
		t.Error("space must grow as phi^{-p}")
	}
}

func BenchmarkProcess(b *testing.B) {
	r := rand.New(rand.NewPCG(1, 1))
	s := New(Config{P: 1, Phi: 0.1, N: 1 << 16}, r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Process(stream.Update{Index: i % (1 << 16), Delta: 1})
	}
}

func TestMergeMatchesSerialAndRejectsMismatch(t *testing.T) {
	cfg := Config{P: 1, Phi: 0.25, N: 128}
	mk := func(seed uint64) *Sketch { return New(cfg, rand.New(rand.NewPCG(seed, seed+1))) }
	var st stream.Stream
	st = append(st, stream.Update{Index: 5, Delta: 5000})
	for i := 0; i < 128; i++ {
		st = append(st, stream.Update{Index: i, Delta: int64(1 + i%4)})
	}
	serial, a, b := mk(7), mk(7), mk(7)
	st.FeedBatch(32, serial)
	st[:64].Feed(a)
	st[64:].Feed(b)
	if err := a.Merge(b); err != nil {
		t.Fatalf("same-seed merge failed: %v", err)
	}
	got, want := a.HeavyHitters(), serial.HeavyHitters()
	if len(got) != len(want) {
		t.Fatalf("merged report %v != serial %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("merged report %v != serial %v", got, want)
		}
	}
	if err := a.Merge(mk(8)); err == nil {
		t.Fatal("expected error merging differently seeded sketches")
	}
	cfg2 := cfg
	cfg2.Phi = 0.5
	if err := a.Merge(New(cfg2, rand.New(rand.NewPCG(7, 8)))); err == nil {
		t.Fatal("expected error merging sketches of different configurations")
	}
}
