package heavyhitters

import (
	"math/rand/v2"
	"testing"

	"repro/internal/stream"
)

func TestZeroVectorEmptySet(t *testing.T) {
	r := rand.New(rand.NewPCG(1, 1))
	s := New(Config{P: 1, Phi: 0.2, N: 64}, r)
	if set := s.HeavyHitters(); len(set) != 0 {
		t.Fatalf("zero vector produced heavy hitters: %v", set)
	}
}

func TestFullCancellationEmptySet(t *testing.T) {
	r := rand.New(rand.NewPCG(2, 2))
	s := New(Config{P: 1, Phi: 0.2, N: 64}, r)
	for i := 0; i < 64; i++ {
		s.Process(stream.Update{Index: i, Delta: 100})
		s.Process(stream.Update{Index: i, Delta: -100})
	}
	if set := s.HeavyHitters(); len(set) != 0 {
		t.Fatalf("cancelled vector produced heavy hitters: %v", set)
	}
}

func TestSingleCoordinateAlwaysHeavy(t *testing.T) {
	// One nonzero coordinate is a 1-heavy hitter for every p and φ.
	r := rand.New(rand.NewPCG(3, 3))
	for _, p := range []float64{0.5, 1, 2} {
		for _, phi := range []float64{0.1, 0.45} {
			s := New(Config{P: p, Phi: phi, N: 128}, r)
			s.Process(stream.Update{Index: 77, Delta: -12345})
			set := s.HeavyHitters()
			if len(set) != 1 || set[0] != 77 {
				t.Fatalf("p=%.1f phi=%.2f: set %v, want [77]", p, phi, set)
			}
		}
	}
}

func TestNegativeHeavyHitterDetected(t *testing.T) {
	// Heaviness is by |x_i|; a large negative coordinate must be reported.
	r := rand.New(rand.NewPCG(4, 4))
	s := New(Config{P: 1, Phi: 0.3, N: 128}, r)
	for i := 0; i < 128; i++ {
		s.Process(stream.Update{Index: i, Delta: 1})
	}
	s.Process(stream.Update{Index: 9, Delta: -5000})
	found := false
	for _, i := range s.HeavyHitters() {
		if i == 9 {
			found = true
		}
	}
	if !found {
		t.Fatal("negative heavy hitter missed")
	}
}

func TestBoundaryBandFreedom(t *testing.T) {
	// Coordinates strictly inside (φ/2, φ)·||x||_p may be reported or not —
	// either is valid. The checker must accept both decisions.
	st := stream.Stream{
		{Index: 0, Delta: 100}, // heavy for phi=0.5 (norm1 = 170, thresh 85)
		{Index: 1, Delta: 60},  // in the free band (between 42.5 and 85)
		{Index: 2, Delta: 10},  // light
	}
	truth := st.Apply(3)
	if ok, _, _ := Valid(truth, 1, 0.5, []int{0}); !ok {
		t.Error("excluding the band coordinate must be valid")
	}
	if ok, _, _ := Valid(truth, 1, 0.5, []int{0, 1}); !ok {
		t.Error("including the band coordinate must be valid")
	}
	if ok, _, _ := Valid(truth, 1, 0.5, []int{0, 1, 2}); ok {
		t.Error("including the light coordinate must be invalid")
	}
}

func TestManyEqualHeavies(t *testing.T) {
	// Four coordinates sharing all the mass: with phi below 1/4 all four
	// must be reported.
	r := rand.New(rand.NewPCG(5, 5))
	s := New(Config{P: 1, Phi: 0.2, N: 256}, r)
	for _, i := range []int{10, 20, 30, 40} {
		s.Process(stream.Update{Index: i, Delta: 1000})
	}
	set := s.HeavyHitters()
	if len(set) != 4 {
		t.Fatalf("got %v, want all four equal heavies", set)
	}
}
