// Package heavyhitters implements the Lp heavy hitters upper bound the paper
// discusses in §4.4: a count-sketch with parameter m = Θ(φ^{-p}) plus a
// Θ(log n)-counter Lp norm estimator reports a valid heavy-hitter set — all
// i with |x_i| >= φ‖x‖_p included, no i with |x_i| <= (φ/2)‖x‖_p — in
// O(φ^{-p} log² n) bits, matching the Theorem 9 lower bound.
//
// The §4.4 argument this implements: the count-sketch point error is
// d = Err^m_2(x)/m^{1/2} <= ‖x‖_p / m^{1/p}, so m = (c/φ)^p-ish makes the
// error a small fraction of φ‖x‖_p, and thresholding the estimates at
// 0.75·φ·r̂ with an accurate norm estimate separates the two bands.
package heavyhitters

import (
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/codec"
	"repro/internal/countsketch"
	"repro/internal/norm"
	"repro/internal/stream"
	"repro/internal/vector"
)

// Config parameterizes the sketch.
type Config struct {
	// P is the norm exponent, in (0,2].
	P float64
	// Phi is the heaviness threshold φ ∈ (0,1).
	Phi float64
	// N is the dimension.
	N int
	// Rows overrides the count-sketch depth (default O(log n)).
	Rows int
	// MFactor scales m = ceil(MFactor/φ)^p-style sizing (default 12).
	MFactor float64
	// NormCounters sizes the norm estimator; the decision threshold needs a
	// (1±0.1)-accurate ‖x‖_p, tighter than Lemma 2's factor 2 (default 400).
	NormCounters int
}

// Sketch is the streaming Lp heavy hitters structure.
type Sketch struct {
	cfg Config
	m   int
	cs  *countsketch.Sketch
	nrm norm.Estimator
}

// New constructs the sketch.
func New(cfg Config, r *rand.Rand) *Sketch {
	if cfg.P <= 0 || cfg.P > 2 {
		panic("heavyhitters: p must be in (0,2]")
	}
	if cfg.Phi <= 0 || cfg.Phi >= 1 {
		panic("heavyhitters: phi must be in (0,1)")
	}
	if cfg.N < 1 {
		panic("heavyhitters: n must be positive")
	}
	mf := cfg.MFactor
	if mf <= 0 {
		mf = 12
	}
	m := int(math.Ceil(mf * math.Pow(cfg.Phi, -cfg.P)))
	rows := cfg.Rows
	if rows <= 0 {
		rows = int(math.Ceil(math.Log2(float64(cfg.N)))) + 4
		if rows < 7 {
			rows = 7
		}
	}
	nc := cfg.NormCounters
	if nc <= 0 {
		nc = 400
	}
	var est norm.Estimator
	if cfg.P == 2 {
		// AMS with many groups gives the tight L2 estimate cheaply.
		est = norm.NewAMS(25, 8, r)
	} else {
		est = norm.NewStable(cfg.P, nc, r)
	}
	return &Sketch{cfg: cfg, m: m, cs: countsketch.New(m, rows, r), nrm: est}
}

// M returns the count-sketch parameter in use.
func (s *Sketch) M() int { return s.m }

// Process implements stream.Sink.
func (s *Sketch) Process(u stream.Update) {
	s.cs.Process(u)
	s.nrm.Process(u)
}

// ProcessBatch implements stream.BatchSink, delegating to the batched count-
// sketch and norm-estimator hot paths.
func (s *Sketch) ProcessBatch(batch []stream.Update) {
	s.cs.ProcessBatch(batch)
	s.nrm.ProcessBatch(batch)
}

// Merge adds another sketch's state so the result summarizes the sum of the
// two underlying vectors. Both must be same-seed replicas with identical
// configuration.
func (s *Sketch) Merge(other *Sketch) error {
	if other == nil {
		return fmt.Errorf("heavyhitters: %w", codec.ErrNilMerge)
	}
	if s.cfg != other.cfg || s.m != other.m {
		return fmt.Errorf("heavyhitters: merging sketches of different configurations: %w", codec.ErrConfigMismatch)
	}
	if err := s.cs.Merge(other.cs); err != nil {
		return err
	}
	return s.nrm.Merge(other.nrm)
}

// HeavyHitters returns the reported set S: every coordinate whose count-
// sketch estimate reaches 0.75·φ·r̂ where r̂ ≈ ‖x‖_p.
func (s *Sketch) HeavyHitters() []int {
	// The norm estimator is centred (Estimate, not UpperEstimate): the
	// threshold argument needs r̂ within ±10% of ‖x‖_p, not a factor-2 band.
	rhat := s.nrm.Estimate(nil)
	if rhat <= 0 {
		// Zero vector (or a cancelled-to-zero sketch): nothing can be
		// heavy. Without this guard the threshold degenerates to 0 and
		// every zero estimate would pass the >= test.
		return nil
	}
	thresh := 0.75 * s.cfg.Phi * rhat
	var out []int
	for i := 0; i < s.cfg.N; i++ {
		est := s.cs.Estimate(uint64(i))
		if math.Abs(est) >= thresh {
			out = append(out, i)
		}
	}
	return out
}

// SpaceBits reports count-sketch plus norm estimator state — the
// O(φ^{-p} log² n) bits of §4.4.
func (s *Sketch) SpaceBits() int64 { return s.cs.SpaceBits() + s.nrm.SpaceBits() }

// StateBits reports counters only — the Theorem 9 protocol message.
func (s *Sketch) StateBits() int64 { return s.cs.StateBits() + s.nrm.StateBits() }

// AppendState writes the count-sketch cells and norm counters into a codec
// encoder.
func (s *Sketch) AppendState(e *codec.Encoder) {
	s.cs.AppendState(e)
	s.nrm.AppendState(e)
}

// RestoreState replaces the count-sketch cells and norm counters from a
// codec decoder.
func (s *Sketch) RestoreState(d *codec.Decoder) {
	s.cs.RestoreState(d)
	s.nrm.RestoreState(d)
}

// Valid checks the §4.4 validity definition of a heavy-hitter set S against
// the exact vector: S must contain every i with |x_i| >= φ‖x‖_p and no i
// with |x_i| <= (φ/2)‖x‖_p. It returns the verdict plus the counts of
// missing-heavy and forbidden-light elements for diagnostics.
func Valid(truth *vector.Dense, p, phi float64, set []int) (ok bool, missing, forbidden int) {
	normP := truth.NormP(p)
	inSet := make(map[int]bool, len(set))
	for _, i := range set {
		inSet[i] = true
	}
	for i := 0; i < truth.N(); i++ {
		a := math.Abs(float64(truth.Get(i)))
		if a >= phi*normP && !inSet[i] {
			missing++
		}
		if a <= phi/2*normP && inSet[i] {
			forbidden++
		}
	}
	return missing == 0 && forbidden == 0, missing, forbidden
}
