package heavyhitters

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// TestTrackerExactWhenWithinBudget: at most k distinct keys → every count is
// exact, no decrements ever fire.
func TestTrackerExactWhenWithinBudget(t *testing.T) {
	tr := NewTracker(8)
	for i := 0; i < 8; i++ {
		for j := 0; j <= i; j++ {
			tr.Offer(i)
		}
	}
	if tr.Len() != 8 {
		t.Fatalf("Len = %d, want 8", tr.Len())
	}
	for i := 0; i < 8; i++ {
		if got := tr.Count(i); got != int64(i+1) {
			t.Errorf("Count(%d) = %d, want %d", i, got, i+1)
		}
	}
	if tr.Total() != 36 {
		t.Errorf("Total = %d, want 36", tr.Total())
	}
}

// TestTrackerHeavyDetection: a key holding half the traffic must survive the
// summary and clear a φ-fraction threshold, across weights and noise keys.
func TestTrackerHeavyDetection(t *testing.T) {
	r := rand.New(rand.NewPCG(1, 2))
	tr := NewTracker(64)
	const rounds = 20000
	for i := 0; i < rounds; i++ {
		tr.Offer(42)
		tr.Offer(1000 + r.IntN(5000)) // noise: ~uniform over 5000 keys
	}
	heavy := tr.Heavy(tr.Total() / 4)
	if len(heavy) != 1 || heavy[0] != 42 {
		t.Fatalf("Heavy = %v, want [42]", heavy)
	}
	// Entries must lead with the hot key.
	if es := tr.Entries(); len(es) == 0 || es[0].Key != 42 {
		t.Fatalf("Entries[0] = %+v, want key 42", es)
	}
}

// TestPropertyTrackerUndercountBound pins the Misra-Gries guarantee under
// random weighted streams: stored count <= true count, undercount at most
// Total/(k+1), and any key with true weight > Total/(k+1) is present.
func TestPropertyTrackerUndercountBound(t *testing.T) {
	f := func(seed uint64, kRaw uint8, lenRaw uint16) bool {
		k := 4 + int(kRaw)%60
		length := 100 + int(lenRaw)%4000
		r := rand.New(rand.NewPCG(seed, 7))
		tr := NewTracker(k)
		truth := map[int]int64{}
		for i := 0; i < length; i++ {
			key := r.IntN(40) // dense key space forces decrements
			w := int64(1 + r.IntN(9))
			tr.OfferWeighted(key, w)
			truth[key] += w
		}
		slack := tr.Total()/int64(k+1) + 1
		for key, true_ := range truth {
			got := tr.Count(key)
			if got > true_ {
				t.Logf("seed %d: Count(%d)=%d overcounts true %d", seed, key, got, true_)
				return false
			}
			if true_-got > slack {
				t.Logf("seed %d: Count(%d)=%d undercounts true %d beyond W/(k+1)=%d", seed, key, got, true_, slack)
				return false
			}
			if true_ > slack && got == 0 {
				t.Logf("seed %d: heavy key %d (weight %d > %d) evicted", seed, key, true_, slack)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestTrackerReset: counters and totals clear; the tracker is reusable.
func TestTrackerReset(t *testing.T) {
	tr := NewTracker(4)
	tr.OfferWeighted(1, 10)
	tr.OfferWeighted(1, -5) // non-positive weights ignored
	if tr.Count(1) != 10 || tr.Total() != 10 {
		t.Fatalf("weighted offer: count %d total %d", tr.Count(1), tr.Total())
	}
	tr.Reset()
	if tr.Len() != 0 || tr.Total() != 0 || tr.Count(1) != 0 {
		t.Fatal("Reset left state behind")
	}
	tr.Offer(2)
	if tr.Count(2) != 1 {
		t.Fatal("tracker unusable after Reset")
	}
}

// TestTrackerBudgetNeverExceeded: the counter map stays at <= k entries
// whatever the stream.
func TestTrackerBudgetNeverExceeded(t *testing.T) {
	r := rand.New(rand.NewPCG(9, 9))
	tr := NewTracker(16)
	for i := 0; i < 50000; i++ {
		tr.OfferWeighted(r.IntN(1<<20), int64(1+r.IntN(3)))
		if tr.Len() > 16 {
			t.Fatalf("tracker holds %d > 16 counters after %d offers", tr.Len(), i+1)
		}
	}
}
