package heavyhitters

import "sort"

// Tracker is a weighted Misra-Gries summary over a stream of keys — the
// deterministic, insert-only counterpart of the §4.4 count-sketch heavy
// hitters. It maintains at most k counters; on an offered key already
// tracked the counter grows by the offered weight, otherwise the key is
// admitted and, when that overflows the budget, every counter shrinks by
// the minimum counter value (deleting the zeros).
//
// The classic guarantee carries over to weights: with W the total offered
// weight, each stored counter undercounts its key's true weight by at most
// W/(k+1), and any key whose true weight exceeds W/(k+1) is present. That
// makes the tracker a sufficient detector for "does this key receive at
// least a φ fraction of traffic" whenever k+1 >= 1/φ — the engine's
// skew-aware router sizes it with slack (k = 4/φ by default) so hot keys
// clear the threshold even after maximal undercount.
//
// The tracker is not a linear sketch and not mergeable across replicas; it
// summarizes whatever single stream it is offered (for the router: the
// update traffic seen by the producer goroutine). All methods are
// single-goroutine.
type Tracker struct {
	k      int
	counts map[int]int64
	total  int64
}

// NewTracker returns a tracker with at most k counters.
func NewTracker(k int) *Tracker {
	if k < 1 {
		k = 1
	}
	return &Tracker{k: k, counts: make(map[int]int64, k+1)}
}

// K reports the counter budget.
func (t *Tracker) K() int { return t.k }

// Offer records one occurrence of key.
func (t *Tracker) Offer(key int) { t.OfferWeighted(key, 1) }

// OfferWeighted records weight w of key; w <= 0 is ignored.
func (t *Tracker) OfferWeighted(key int, w int64) {
	if w <= 0 {
		return
	}
	t.total += w
	if c, ok := t.counts[key]; ok {
		t.counts[key] = c + w
		return
	}
	t.counts[key] = w
	if len(t.counts) <= t.k {
		return
	}
	// Budget overflow: the Misra-Gries decrement. Subtract the minimum
	// counter from every counter and drop the zeros — at least one entry
	// (the minimum itself) always leaves.
	low := int64(0)
	for _, c := range t.counts {
		if low == 0 || c < low {
			low = c
		}
	}
	for k2, c := range t.counts {
		if c <= low {
			delete(t.counts, k2)
		} else {
			t.counts[k2] = c - low
		}
	}
}

// Count reports the stored counter for key (an undercount of its true
// weight by at most Total()/(k+1); zero when untracked).
func (t *Tracker) Count(key int) int64 { return t.counts[key] }

// Total reports the total weight offered since the last Reset.
func (t *Tracker) Total() int64 { return t.total }

// Len reports the number of tracked keys.
func (t *Tracker) Len() int { return len(t.counts) }

// TrackerEntry is one tracked key with its stored (under)count.
type TrackerEntry struct {
	Key   int
	Count int64
}

// Entries returns the tracked keys by decreasing count (ties by key).
func (t *Tracker) Entries() []TrackerEntry {
	out := make([]TrackerEntry, 0, len(t.counts))
	for k, c := range t.counts {
		out = append(out, TrackerEntry{Key: k, Count: c})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Count != out[b].Count {
			return out[a].Count > out[b].Count
		}
		return out[a].Key < out[b].Key
	})
	return out
}

// Heavy returns the keys whose stored counter reaches threshold, by
// decreasing count.
func (t *Tracker) Heavy(threshold int64) []int {
	entries := t.Entries()
	out := make([]int, 0, len(entries))
	for _, e := range entries {
		if e.Count >= threshold {
			out = append(out, e.Key)
		}
	}
	return out
}

// Reset clears every counter and the offered-weight total.
func (t *Tracker) Reset() {
	clear(t.counts)
	t.total = 0
}
