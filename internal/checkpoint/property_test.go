package checkpoint

import (
	"encoding/binary"
	"errors"
	"math/rand/v2"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/retry"
	"repro/internal/stream"
)

// The store-level exactness property: whatever interleaving of appends,
// saves, crashes (close + reopen) and injected I/O faults happens, Latest
// must reconstruct exactly the accepted prefix — the state at the last
// successful Save plus every batch whose Append returned nil afterwards —
// or fail with a typed error. "Exactly" is checked by replaying the
// recovery onto a vector and comparing against the ground-truth vector of
// accepted updates.

const propDim = 64

// encodeVec / decodeVec are the test's stand-in for a marshaled shard
// replica: the dense vector as little-endian words.
func encodeVec(v []int64) []byte {
	out := make([]byte, 0, 8*len(v))
	for _, x := range v {
		out = binary.LittleEndian.AppendUint64(out, uint64(x))
	}
	return out
}

func applyBlob(dst []int64, blob []byte) {
	for i := 0; i+8 <= len(blob) && i/8 < len(dst); i += 8 {
		dst[i/8] += int64(binary.LittleEndian.Uint64(blob[i:]))
	}
}

func applyBatch(dst []int64, b stream.Stream) {
	for _, u := range b {
		dst[u.Index%len(dst)] += u.Delta
	}
}

func vecEqual(a, b []int64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestKillRestartExactness sweeps fault seeds; a failure prints the
// one-line repro the chaos CI leg asks for.
func TestKillRestartExactness(t *testing.T) {
	seeds := 12
	if testing.Short() {
		seeds = 4
	}
	for seed := uint64(1); seed <= uint64(seeds); seed++ {
		seed := seed
		if err := runKillRestart(t, seed); err != nil {
			t.Fatalf("seed %d: %v\nrepro: go test -race -run 'TestKillRestartExactness' ./internal/checkpoint (seed %d)",
				seed, err, seed)
		}
	}
}

func runKillRestart(t *testing.T, seed uint64) error {
	r := rand.New(rand.NewPCG(seed, seed^0x9E3779B97F4A7C15))
	dir := t.TempDir()
	inj := faultinject.New(seed, 0.05).Only(
		faultinject.CheckpointCorrupt, faultinject.CheckpointWrite,
		faultinject.CheckpointSync, faultinject.JournalAppend,
	)
	opts := Options{
		Keep:     2,
		Injector: inj,
		Retry:    retry.Policy{Attempts: 6, Sleep: noSleep},
	}
	s, err := Open(dir, opts)
	if err != nil {
		return err
	}
	defer func() { s.Close() }()

	// accepted is the ground truth: every update the store acknowledged.
	accepted := make([]int64, propDim)
	// saved mirrors what the last acknowledged Save contained.
	saved := make([]int64, propDim)

	steps := 60 + r.IntN(60)
	for i := 0; i < steps; i++ {
		switch op := r.IntN(10); {
		case op < 6: // append a small random batch
			b := make(stream.Stream, 1+r.IntN(8))
			for j := range b {
				b[j] = stream.Update{Index: r.IntN(propDim), Delta: int64(r.IntN(21) - 10)}
			}
			if err := s.Append(b); err == nil {
				applyBatch(accepted, b)
			}
		case op < 8: // checkpoint: the saved state absorbs everything accepted
			if _, err := s.Save([][]byte{encodeVec(accepted)}); err == nil {
				copy(saved, accepted)
			} else if errors.Is(err, ErrClosed) {
				return errors.New("store poisoned itself on a retryable save")
			}
		default: // crash: drop the handle, reopen cold
			s.Close()
			if s, err = Open(dir, opts); err != nil {
				return err
			}
		}
	}

	// Final crash + recovery.
	s.Close()
	s, err = Open(dir, opts)
	if err != nil {
		return err
	}
	s.opts.Injector = nil // recovery itself runs clean in this property
	rec, err := s.Latest()
	if err != nil {
		// Typed dead ends are legitimate outcomes under injected torn
		// writes — but only the typed ones.
		if errors.Is(err, ErrNoCheckpoint) || errors.Is(err, ErrGenerationGap) {
			return nil
		}
		return err
	}
	got := make([]int64, propDim)
	for _, blob := range rec.States {
		applyBlob(got, blob)
	}
	for _, b := range rec.Tail {
		applyBatch(got, b)
	}
	if !vecEqual(got, accepted) {
		return errors.New("recovered state differs from the accepted prefix")
	}
	return nil
}
