package checkpoint

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/retry"
	"repro/internal/stream"
)

// noSleep keeps test backoffs instant.
func noSleep(context.Context, time.Duration) error { return nil }

func openTest(t *testing.T, opts Options) *Store {
	t.Helper()
	if opts.Retry.Sleep == nil {
		opts.Retry.Sleep = noSleep
	}
	s, err := Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func reopen(t *testing.T, s *Store, opts Options) *Store {
	t.Helper()
	s.Close()
	if opts.Retry.Sleep == nil {
		opts.Retry.Sleep = noSleep
	}
	n, err := Open(s.dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	return n
}

func batch(vals ...int) stream.Stream {
	out := make(stream.Stream, len(vals))
	for i, v := range vals {
		out[i] = stream.Update{Index: v, Delta: int64(v) + 1}
	}
	return out
}

func TestSaveLatestRoundTrip(t *testing.T) {
	s := openTest(t, Options{})
	states := [][]byte{[]byte("shard zero"), {}, []byte("shard two, longer state")}
	gen, err := s.Save(states)
	if err != nil {
		t.Fatal(err)
	}
	if gen != 1 {
		t.Fatalf("first generation = %d, want 1", gen)
	}
	rec, err := s.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Generation != 1 || len(rec.States) != len(states) {
		t.Fatalf("recovery %+v, want generation 1 with %d states", rec, len(states))
	}
	for i := range states {
		if !bytes.Equal(rec.States[i], states[i]) {
			t.Fatalf("state %d corrupted in round trip", i)
		}
	}
	if len(rec.Tail) != 0 || len(rec.Torn) != 0 {
		t.Fatalf("fresh save has tail %d / torn %v", len(rec.Tail), rec.Torn)
	}
}

func TestEmptyStore(t *testing.T) {
	s := openTest(t, Options{})
	if _, err := s.Latest(); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("empty store Latest err = %v, want ErrNoCheckpoint", err)
	}
}

// TestJournalBeforeFirstSave: appends with no generation yet land in the
// generation-0 baseline segment and recover against zero state.
func TestJournalBeforeFirstSave(t *testing.T) {
	s := openTest(t, Options{})
	b1, b2 := batch(1, 2, 3), batch(4, 5)
	if err := s.Append(b1); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(b2); err != nil {
		t.Fatal(err)
	}
	rec, err := reopen(t, s, Options{}).Latest()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Generation != 0 || rec.States != nil {
		t.Fatalf("baseline recovery %+v, want generation 0 with nil states", rec)
	}
	if len(rec.Tail) != 2 || rec.TailUpdates != 5 {
		t.Fatalf("tail %d batches / %d updates, want 2 / 5", len(rec.Tail), rec.TailUpdates)
	}
	for i, want := range []stream.Stream{b1, b2} {
		for j, u := range want {
			if rec.Tail[i][j] != u {
				t.Fatalf("tail[%d][%d] = %+v, want %+v", i, j, rec.Tail[i][j], u)
			}
		}
	}
}

func TestSaveRotatesJournal(t *testing.T) {
	s := openTest(t, Options{})
	if err := s.Append(batch(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Save([][]byte{[]byte("st")}); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(batch(2)); err != nil {
		t.Fatal(err)
	}
	rec, err := s.Latest()
	if err != nil {
		t.Fatal(err)
	}
	// The pre-save batch is folded into the generation; only the post-save
	// batch replays.
	if rec.Generation != 1 || len(rec.Tail) != 1 || rec.Tail[0][0].Index != 2 {
		t.Fatalf("post-rotation recovery %+v", rec)
	}
}

// TestTornGenerationFallsBack corrupts the newest generation file on disk
// and checks recovery falls back to the previous one while replaying both
// segments of the journal chain.
func TestTornGenerationFallsBack(t *testing.T) {
	s := openTest(t, Options{Keep: 3})
	if _, err := s.Save([][]byte{[]byte("gen1")}); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(batch(10)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Save([][]byte{[]byte("gen2")}); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(batch(20)); err != nil {
		t.Fatal(err)
	}
	// Corrupt generation 2 in place (lying hardware).
	path := s.genPath(2)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-12] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	rec, err := s.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Generation != 1 || !bytes.Equal(rec.States[0], []byte("gen1")) {
		t.Fatalf("fallback recovery %+v, want generation 1", rec)
	}
	if len(rec.Torn) != 1 || rec.Torn[0] != 2 {
		t.Fatalf("torn list %v, want [2]", rec.Torn)
	}
	// Both the batch folded into torn gen 2 and the batch after it replay.
	if len(rec.Tail) != 2 || rec.Tail[0][0].Index != 10 || rec.Tail[1][0].Index != 20 {
		t.Fatalf("fallback tail %+v, want the full chain since generation 1", rec.Tail)
	}
}

// TestAllGenerationsTornReplaysBaseline: every generation corrupt but the
// journal chain reaches back to segment 0 — recovery replays everything
// from zero state.
func TestAllGenerationsTornReplaysBaseline(t *testing.T) {
	s := openTest(t, Options{Keep: 10})
	if err := s.Append(batch(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Save([][]byte{[]byte("g1")}); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(batch(2)); err != nil {
		t.Fatal(err)
	}
	for _, g := range s.Generations() {
		data, err := os.ReadFile(s.genPath(g))
		if err != nil {
			t.Fatal(err)
		}
		data[9] ^= 1
		if err := os.WriteFile(s.genPath(g), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	rec, err := s.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Generation != 0 || rec.States != nil || len(rec.Tail) != 2 {
		t.Fatalf("baseline fallback %+v, want generation 0 with both batches", rec)
	}
}

// TestNoCheckpointWhenBaselineGone: all generations torn and the baseline
// journal pruned — the typed dead end.
func TestNoCheckpointWhenBaselineGone(t *testing.T) {
	s := openTest(t, Options{})
	if _, err := s.Save([][]byte{[]byte("g1")}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(s.genPath(1))
	if err != nil {
		t.Fatal(err)
	}
	data[9] ^= 1
	if err := os.WriteFile(s.genPath(1), data, 0o644); err != nil {
		t.Fatal(err)
	}
	os.Remove(s.journalPath(0)) // prune the baseline by hand
	_, err = s.Latest()
	if !errors.Is(err, ErrNoCheckpoint) || !errors.Is(err, ErrTornWrite) {
		t.Fatalf("err = %v, want ErrNoCheckpoint joined with ErrTornWrite", err)
	}
}

// TestGenerationGapDetected: a missing mid-chain journal segment is a typed
// hard failure, never a silent partial recovery.
func TestGenerationGapDetected(t *testing.T) {
	s := openTest(t, Options{Keep: 5})
	for i := 0; i < 3; i++ {
		if err := s.Append(batch(i)); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Save([][]byte{[]byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	// Tear generations 2 and 3 so recovery needs journals 1..3, then remove
	// journal 2 from the middle of that chain.
	for _, g := range []uint64{2, 3} {
		data, err := os.ReadFile(s.genPath(g))
		if err != nil {
			t.Fatal(err)
		}
		data[9] ^= 1
		if err := os.WriteFile(s.genPath(g), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	os.Remove(s.journalPath(2))
	if _, err := s.Latest(); !errors.Is(err, ErrGenerationGap) {
		t.Fatalf("err = %v, want ErrGenerationGap", err)
	}
}

// TestTornJournalTailIsCrashFrontier: a half-written final record is
// silently dropped (it never finished being accepted) and everything before
// it replays.
func TestTornJournalTailIsCrashFrontier(t *testing.T) {
	s := openTest(t, Options{})
	if err := s.Append(batch(1, 2)); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(batch(3)); err != nil {
		t.Fatal(err)
	}
	s.Close()
	// Tear the last record: chop bytes off the file tail.
	path := filepath.Join(s.dir, "journal-0000000000000000.jnl")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	n, err := Open(s.dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	rec, err := n.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Tail) != 1 || len(rec.Tail[0]) != 2 {
		t.Fatalf("tail %+v, want only the first complete batch", rec.Tail)
	}
	// Resuming appends must first truncate the torn tail, keeping the file
	// a clean record sequence.
	if err := n.Append(batch(9)); err != nil {
		t.Fatal(err)
	}
	rec, err = n.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Tail) != 2 || rec.Tail[1][0].Index != 9 {
		t.Fatalf("post-resume tail %+v, want the torn record replaced", rec.Tail)
	}
}

func TestRetentionPrunes(t *testing.T) {
	s := openTest(t, Options{Keep: 2})
	for i := 0; i < 5; i++ {
		if err := s.Append(batch(i)); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Save([][]byte{[]byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	gens := s.Generations()
	if len(gens) != 2 || gens[0] != 4 || gens[1] != 5 {
		t.Fatalf("retained generations %v, want [4 5]", gens)
	}
	if _, err := os.Stat(s.journalPath(3)); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("journal below the retention window not pruned")
	}
	if _, err := os.Stat(s.journalPath(4)); err != nil {
		t.Fatal("journal needed by the oldest retained generation was pruned")
	}
}

func TestReopenNeverReusesGenerations(t *testing.T) {
	s := openTest(t, Options{})
	if _, err := s.Save([][]byte{[]byte("a")}); err != nil {
		t.Fatal(err)
	}
	n := reopen(t, s, Options{})
	gen, err := n.Save([][]byte{[]byte("b")})
	if err != nil {
		t.Fatal(err)
	}
	if gen != 2 {
		t.Fatalf("generation after reopen = %d, want 2", gen)
	}
}

// TestInjectedCorruptionFallsBack drives the store's own fault injector at
// rate 1 on the corrupt-write point: the save lands torn, recovery detects
// it and falls back with ErrTornWrite accounting.
func TestInjectedCorruptionFallsBack(t *testing.T) {
	s := openTest(t, Options{Keep: 3})
	if _, err := s.Save([][]byte{[]byte("good")}); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(batch(7)); err != nil {
		t.Fatal(err)
	}
	s.opts.Injector = faultinject.New(1, 1).Only(faultinject.CheckpointCorrupt)
	if _, err := s.Save([][]byte{[]byte("doomed")}); err != nil {
		t.Fatal(err) // the corruption lies: the save reports success
	}
	s.opts.Injector = nil
	rec, err := s.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Generation != 1 || !bytes.Equal(rec.States[0], []byte("good")) {
		t.Fatalf("recovery %+v, want fallback to generation 1", rec)
	}
	if len(rec.Torn) != 1 || rec.Torn[0] != 2 {
		t.Fatalf("torn accounting %v, want [2]", rec.Torn)
	}
	if len(rec.Tail) != 1 || rec.Tail[0][0].Index != 7 {
		t.Fatalf("tail %+v, want the journaled batch preserved", rec.Tail)
	}
}

// TestInjectedAppendFaultsRetried: transient journal-append failures are
// absorbed by the retry policy and never corrupt the record sequence.
func TestInjectedAppendFaultsRetried(t *testing.T) {
	s := openTest(t, Options{
		Injector: faultinject.New(3, 0.4).Only(faultinject.JournalAppend),
		Retry:    retry.Policy{Attempts: 8, Sleep: noSleep},
	})
	const batches = 50
	for i := 0; i < batches; i++ {
		if err := s.Append(batch(i)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	s.opts.Injector = nil
	rec, err := s.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Tail) != batches {
		t.Fatalf("recovered %d batches, want %d", len(rec.Tail), batches)
	}
	for i, b := range rec.Tail {
		if len(b) != 1 || b[0].Index != i {
			t.Fatalf("batch %d corrupted: %+v", i, b)
		}
	}
}

// TestInjectedSyncFailureSurfacesTyped: a persistently failing fsync makes
// Save return the injected error after exhausting retries, leaving the
// previous generation untouched.
func TestInjectedSyncFailureSurfacesTyped(t *testing.T) {
	s := openTest(t, Options{})
	if _, err := s.Save([][]byte{[]byte("stable")}); err != nil {
		t.Fatal(err)
	}
	s.opts.Injector = faultinject.New(1, 1).Only(faultinject.CheckpointSync)
	s.opts.Retry = retry.Policy{Attempts: 3, Sleep: noSleep}
	_, err := s.Save([][]byte{[]byte("doomed")})
	var ie *faultinject.InjectedErr
	if !errors.As(err, &ie) {
		t.Fatalf("err = %v, want the injected fsync failure", err)
	}
	s.opts.Injector = nil
	rec, lerr := s.Latest()
	if lerr != nil || rec.Generation != 1 || !bytes.Equal(rec.States[0], []byte("stable")) {
		t.Fatalf("previous generation damaged by failed save: %+v, %v", rec, lerr)
	}
}
