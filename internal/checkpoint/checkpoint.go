// Package checkpoint is the crash-safe durable checkpoint store under the
// ingestion engine. It persists two kinds of files in one directory:
//
//   - Generation files (gen-%016x.ckpt): an atomic, fingerprint-sealed
//     snapshot of every shard replica's marshaled state, written via
//     write-temp + fsync + rename (+ directory fsync). Generation numbers
//     are strictly monotonic.
//   - Journal segments (journal-%016x.jnl): the write-ahead record of every
//     update batch accepted since the generation of the same number was
//     written, framed with internal/codec's fingerprinted records.
//
// Recovery is restore-plus-replay: load the newest generation whose
// fingerprints verify, then replay every journal segment at or above it, in
// generation order, stopping only at a torn tail record of the final
// segment (the crash frontier). Because every sketch in this repository is
// linear, the recovered state is byte-identical to an uninterrupted run
// over the same accepted prefix — durability here is provably exact, not
// best-effort.
//
// # Generation file format
//
//	offset  size  field
//	0       4     magic "LPCK"
//	4       2     format version, little-endian uint16 (currently 1)
//	6       2     reserved (zero)
//	8       8     generation number
//	16      8     shard count S
//	24      8*S   per-shard payload lengths
//	24+8S   8     FNV-1a 64 fingerprint of every preceding byte
//	...     ...   the S shard payloads, concatenated
//	...     8     FNV-1a 64 fingerprint of every preceding byte (seals the
//	              payloads; a torn or bit-flipped file fails here)
//
// # Journal segment format
//
//	offset  size  field
//	0       4     magic "LPJN"
//	4       2     format version (currently 1)
//	6       2     reserved (zero)
//	8       8     generation this segment extends
//	16      8     FNV-1a 64 fingerprint of the 16 header bytes
//	24      ...   codec journal records (see codec.AppendRecord), each
//	              holding one update batch: pairs of little-endian
//	              (uint64 index, uint64 delta) words
//
// # Error taxonomy
//
// ErrTornWrite — a generation file or journal segment failed its
// fingerprint or arrived short: the write was torn or corrupted. Latest
// falls back to the previous generation when one verifies.
// ErrNoCheckpoint — the store holds no usable state at all.
// ErrGenerationGap — the journal chain needed to reach the newest usable
// generation is broken (a segment is missing or corrupt mid-chain), so
// exact recovery to the frontier is impossible. Callers can errors.Is
// against all three.
//
// A Store is used from one goroutine (the engine's producer goroutine); it
// is not internally locked.
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/codec"
	"repro/internal/faultinject"
	"repro/internal/retry"
	"repro/internal/stream"
)

// Typed failures of the durability layer.
var (
	// ErrTornWrite means a file failed its fingerprint or length checks:
	// the write that produced it was torn short or corrupted in place.
	ErrTornWrite = errors.New("checkpoint: torn or corrupt write detected")
	// ErrNoCheckpoint means the store holds no usable generation and no
	// journal baseline to replay from.
	ErrNoCheckpoint = errors.New("checkpoint: no usable checkpoint")
	// ErrGenerationGap means the journal segments needed to replay from the
	// newest usable generation to the frontier are missing or corrupt
	// mid-chain — exact recovery is impossible from this store.
	ErrGenerationGap = errors.New("checkpoint: journal chain is broken (generation gap)")
	// ErrClosed means the store was already closed.
	ErrClosed = errors.New("checkpoint: store is closed")
)

const (
	genVersion     = 1
	journalVersion = 1
)

var (
	genMagic     = [4]byte{'L', 'P', 'C', 'K'}
	journalMagic = [4]byte{'L', 'P', 'J', 'N'}
)

// Options tunes a Store. The zero value is the production default.
type Options struct {
	// Keep is how many generations (and the journal segments needed to
	// recover from the oldest of them) are retained; older files are pruned
	// after each successful Save (default 2, minimum 1).
	Keep int
	// SyncJournal fsyncs the journal after every Append. Off by default:
	// generation files are always fsynced, so the exposure is the OS page
	// cache between checkpoints — the usual write-ahead trade.
	SyncJournal bool
	// Retry is the backoff policy for transient I/O failures (fsync, append)
	// inside Save and Append. Zero value = retry defaults.
	Retry retry.Policy
	// Injector, when non-nil, drives deterministic fault injection in the
	// store's I/O paths (see internal/faultinject). Nil = disabled.
	Injector *faultinject.Injector
}

func (o Options) withDefaults() Options {
	if o.Keep < 1 {
		o.Keep = 2
	}
	return o
}

// Store is one on-disk checkpoint directory.
type Store struct {
	dir  string
	opts Options

	gen        uint64 // newest generation ever written (0 = none yet)
	journal    *os.File
	journalGen uint64
	journalOff int64 // bytes of the open journal known good (truncate target on a failed append)

	payload []byte // scratch for journal record payloads
	frame   []byte // scratch for framed journal records

	closed bool
}

// Recovery is what Latest reconstructs: the newest usable generation's shard
// states plus the journaled update batches to replay on top of them.
type Recovery struct {
	// Generation is the usable generation the states come from; 0 with nil
	// States means "start from zero-state replicas and replay everything"
	// (the store crashed before its first checkpoint).
	Generation uint64
	// States holds one marshaled blob per shard, in shard order, or nil for
	// the generation-0 baseline.
	States [][]byte
	// Tail is the journaled update batches accepted after Generation, in
	// acceptance order.
	Tail []stream.Stream
	// TailUpdates counts the updates across Tail.
	TailUpdates int
	// Torn lists generation numbers whose files were detected torn/corrupt
	// and skipped on the way to a usable generation (newest first).
	Torn []uint64
}

// Open opens (creating if needed) the checkpoint directory and scans it for
// the newest generation number in use, so the next Save never reuses one.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: open %s: %w", dir, err)
	}
	s := &Store{dir: dir, opts: opts.withDefaults()}
	gens, journals, err := s.scan()
	if err != nil {
		return nil, err
	}
	for _, g := range gens {
		if g > s.gen {
			s.gen = g
		}
	}
	for _, g := range journals {
		if g > s.gen {
			s.gen = g
		}
	}
	return s, nil
}

// Dir reports the store's directory.
func (s *Store) Dir() string { return s.dir }

// Generation reports the newest generation number written (0 = none yet).
func (s *Store) Generation() uint64 { return s.gen }

func (s *Store) genPath(g uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("gen-%016x.ckpt", g))
}

func (s *Store) journalPath(g uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("journal-%016x.jnl", g))
}

// scan lists the generation and journal numbers present in the directory.
func (s *Store) scan() (gens, journals []uint64, err error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, nil, fmt.Errorf("checkpoint: scan %s: %w", s.dir, err)
	}
	parse := func(name, prefix, suffix string) (uint64, bool) {
		if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
			return 0, false
		}
		g, err := strconv.ParseUint(name[len(prefix):len(name)-len(suffix)], 16, 64)
		return g, err == nil
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if g, ok := parse(e.Name(), "gen-", ".ckpt"); ok {
			gens = append(gens, g)
		}
		if g, ok := parse(e.Name(), "journal-", ".jnl"); ok {
			journals = append(journals, g)
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	sort.Slice(journals, func(i, j int) bool { return journals[i] < journals[j] })
	return gens, journals, nil
}

// ---------------------------------------------------------------------------
// Save: atomic generation write + journal rotation
// ---------------------------------------------------------------------------

// Save persists states as the next generation — write-temp, fsync, rename,
// directory fsync — then rotates the journal to the new generation and
// prunes files older than the retention window. On success the returned
// generation is durable and subsequent Appends extend it. Transient I/O
// failures are retried under the store's policy; the error of the final
// attempt is returned if all fail, and a failed Save never damages existing
// state: the previous generation, and the journal segment extending it,
// stay exactly as they were.
func (s *Store) Save(states [][]byte) (uint64, error) {
	if s.closed {
		return 0, ErrClosed
	}
	gen := s.gen + 1
	buf := encodeGeneration(gen, states)
	inj := s.opts.Injector

	// Fault injection models lying hardware: a bit flip or short write that
	// the write syscalls report as success. It must survive the atomic
	// rename, so it is applied to the buffer, not the I/O.
	inj.FlipBit(faultinject.CheckpointCorrupt, buf[8:]) // never the magic: torn, not foreign
	buf = buf[:inj.ShortLen(faultinject.CheckpointWrite, len(buf))]

	final := s.genPath(gen)
	tmp := final + ".tmp"
	err := retry.Do(nil, s.opts.Retry, func() error {
		if err := s.writeFileSync(tmp, buf); err != nil {
			os.Remove(tmp)
			return err
		}
		if err := os.Rename(tmp, final); err != nil {
			os.Remove(tmp)
			return retry.Permanent(fmt.Errorf("checkpoint: rename %s: %w", final, err))
		}
		return s.syncDir()
	})
	if err != nil {
		return 0, fmt.Errorf("checkpoint: saving generation %d: %w", gen, err)
	}
	if err := s.rotateJournal(gen); err != nil {
		// The generation file landed but its journal segment could not be
		// started. Leaving both would be a correctness trap: recovery would
		// pick generation `gen` and ignore the still-active previous
		// segment, silently dropping every update appended after this
		// point. Undo the generation instead — the previous one plus its
		// journal remain a complete, exact recovery line.
		if rmErr := os.Remove(final); rmErr != nil {
			// Cannot roll back either: the store is no longer trustworthy.
			s.closed = true
			return 0, fmt.Errorf("checkpoint: generation %d unrecoverable (journal rotation failed: %v; rollback failed: %v): %w",
				gen, err, rmErr, ErrClosed)
		}
		return 0, fmt.Errorf("checkpoint: saving generation %d: %w", gen, err)
	}
	s.gen = gen
	s.prune()
	return gen, nil
}

// writeFileSync writes data to path and fsyncs it.
func (s *Store) writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := s.opts.Injector.Err(faultinject.CheckpointSync); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs the store directory, making renames durable.
func (s *Store) syncDir() error {
	if err := s.opts.Injector.Err(faultinject.CheckpointSync); err != nil {
		return err
	}
	d, err := os.Open(s.dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// encodeGeneration builds the sealed generation file bytes.
func encodeGeneration(gen uint64, states [][]byte) []byte {
	size := 24 + 8*len(states) + 8 + 8
	for _, st := range states {
		size += len(st)
	}
	buf := make([]byte, 0, size)
	buf = append(buf, genMagic[:]...)
	buf = binary.LittleEndian.AppendUint16(buf, genVersion)
	buf = binary.LittleEndian.AppendUint16(buf, 0)
	buf = binary.LittleEndian.AppendUint64(buf, gen)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(states)))
	for _, st := range states {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(len(st)))
	}
	buf = binary.LittleEndian.AppendUint64(buf, codec.Fingerprint(buf))
	for _, st := range states {
		buf = append(buf, st...)
	}
	return binary.LittleEndian.AppendUint64(buf, codec.Fingerprint(buf))
}

// decodeGeneration verifies and splits a generation file. Every failure mode
// wraps ErrTornWrite: the caller's only move is falling back a generation.
func decodeGeneration(data []byte, wantGen uint64) ([][]byte, error) {
	torn := func(format string, args ...any) error {
		return fmt.Errorf("%w: "+format, append([]any{ErrTornWrite}, args...)...)
	}
	if len(data) < 40 || [4]byte(data[:4]) != genMagic {
		return nil, torn("generation file header (%d bytes)", len(data))
	}
	if v := binary.LittleEndian.Uint16(data[4:6]); v != genVersion {
		return nil, torn("generation file version %d", v)
	}
	gen := binary.LittleEndian.Uint64(data[8:16])
	shards := binary.LittleEndian.Uint64(data[16:24])
	headEnd := 24 + 8*int(shards)
	if shards > 1<<20 || len(data) < headEnd+8 {
		return nil, torn("generation header promises %d shards in %d bytes", shards, len(data))
	}
	if codec.Fingerprint(data[:headEnd]) != binary.LittleEndian.Uint64(data[headEnd:]) {
		return nil, torn("generation header fingerprint")
	}
	if gen != wantGen {
		return nil, torn("generation number %d in file named %d", gen, wantGen)
	}
	if codec.Fingerprint(data[:len(data)-8]) != binary.LittleEndian.Uint64(data[len(data)-8:]) {
		return nil, torn("generation payload fingerprint")
	}
	states := make([][]byte, shards)
	off := headEnd + 8
	for i := range states {
		n := int(binary.LittleEndian.Uint64(data[24+8*i:]))
		if n < 0 || n > len(data) || off+n > len(data)-8 {
			return nil, torn("shard %d payload overruns the file", i)
		}
		states[i] = data[off : off+n]
		off += n
	}
	if off != len(data)-8 {
		return nil, torn("%d stray bytes after the shard payloads", len(data)-8-off)
	}
	return states, nil
}

// ---------------------------------------------------------------------------
// Journal: write-ahead append + rotation
// ---------------------------------------------------------------------------

// rotateJournal starts the fresh segment extending gen, then retires the
// previously open one. The new segment is opened before the old handle is
// closed, so a rotation failure leaves the old segment live and appendable —
// no window where accepted updates have nowhere durable to go.
func (s *Store) rotateJournal(gen uint64) error {
	header := make([]byte, 0, 24)
	header = append(header, journalMagic[:]...)
	header = binary.LittleEndian.AppendUint16(header, journalVersion)
	header = binary.LittleEndian.AppendUint16(header, 0)
	header = binary.LittleEndian.AppendUint64(header, gen)
	header = binary.LittleEndian.AppendUint64(header, codec.Fingerprint(header))
	path := s.journalPath(gen)
	var next *os.File
	err := retry.Do(nil, s.opts.Retry, func() error {
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
		if err != nil {
			return err
		}
		if _, err := f.Write(header); err != nil {
			f.Close()
			return err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		next = f
		return nil
	})
	if err != nil {
		os.Remove(path)
		return fmt.Errorf("checkpoint: starting journal %d: %w", gen, err)
	}
	if s.journal != nil {
		s.journal.Close()
	}
	s.journal = next
	s.journalGen = gen
	s.journalOff = int64(len(header))
	return nil
}

// resumeJournal reopens the segment extending gen for appending, scanning it
// for a torn tail first and truncating back to the last whole record — a
// reported Append success must never be preceded by garbage. Used when a
// store is reopened and appended to without an intervening Save.
func (s *Store) resumeJournal(gen uint64) error {
	path := s.journalPath(gen)
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return s.rotateJournal(gen)
	}
	if err != nil {
		return fmt.Errorf("checkpoint: resuming journal %d: %w", gen, err)
	}
	if len(data) < 24 || [4]byte(data[:4]) != journalMagic ||
		codec.Fingerprint(data[:16]) != binary.LittleEndian.Uint64(data[16:24]) ||
		binary.LittleEndian.Uint64(data[8:16]) != gen {
		return fmt.Errorf("checkpoint: resuming journal %d: header unreadable: %w", gen, ErrTornWrite)
	}
	good := int64(24)
	rest := data[24:]
	for len(rest) > 0 {
		payload, tail, rerr := codec.NextRecord(rest)
		if rerr != nil {
			break // torn tail: truncate it away
		}
		good += int64(codec.RecordOverhead + len(payload))
		rest = tail
	}
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("checkpoint: resuming journal %d: %w", gen, err)
	}
	if err := f.Truncate(good); err != nil {
		f.Close()
		return fmt.Errorf("checkpoint: resuming journal %d: %w", gen, err)
	}
	if s.journal != nil {
		s.journal.Close()
	}
	s.journal = f
	s.journalGen = gen
	s.journalOff = good
	return nil
}

// Append journals one accepted update batch — the write-ahead half of the
// durability contract: a batch is recoverable the moment Append returns.
// The first Append of a fresh store (before any Save) starts the
// generation-0 baseline segment. A failed write is retried after truncating
// back to the last good record boundary, so a torn in-file record never
// survives a reported success.
func (s *Store) Append(batch []stream.Update) error {
	if s.closed {
		return ErrClosed
	}
	if len(batch) == 0 {
		return nil
	}
	if s.journal == nil {
		if err := s.resumeJournal(s.gen); err != nil {
			return err
		}
	}
	s.payload = appendUpdates(s.payload[:0], batch)
	s.frame = codec.AppendRecord(s.frame[:0], s.payload)
	err := retry.Do(nil, s.opts.Retry, func() error {
		if err := s.opts.Injector.Err(faultinject.JournalAppend); err != nil {
			return err
		}
		if _, err := s.journal.WriteAt(s.frame, s.journalOff); err != nil {
			return err
		}
		if s.opts.SyncJournal {
			if err := s.journal.Sync(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		// Leave the file truncated at the last good boundary: a half-written
		// record must not precede a later successful append.
		if terr := s.journal.Truncate(s.journalOff); terr == nil {
			return fmt.Errorf("checkpoint: journal append: %w", err)
		}
		// Truncate also failed: poison the handle so later Appends reopen.
		s.journal.Close()
		s.journal = nil
		return fmt.Errorf("checkpoint: journal append (segment abandoned): %w", err)
	}
	s.journalOff += int64(len(s.frame))
	return nil
}

// appendUpdates encodes a batch as (index, delta) word pairs.
func appendUpdates(dst []byte, batch []stream.Update) []byte {
	for _, u := range batch {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(u.Index))
		dst = binary.LittleEndian.AppendUint64(dst, uint64(u.Delta))
	}
	return dst
}

// decodeUpdates is the inverse of appendUpdates.
func decodeUpdates(payload []byte) (stream.Stream, error) {
	if len(payload)%16 != 0 {
		return nil, fmt.Errorf("%w: journal record payload of %d bytes", ErrTornWrite, len(payload))
	}
	out := make(stream.Stream, len(payload)/16)
	for i := range out {
		out[i] = stream.Update{
			Index: int(binary.LittleEndian.Uint64(payload[16*i:])),
			Delta: int64(binary.LittleEndian.Uint64(payload[16*i+8:])),
		}
	}
	return out, nil
}

// readJournal parses one segment: header, then records until the end or a
// torn tail. final selects the tolerance: the final (newest) segment may end
// mid-record — that is the crash frontier — while an older segment ending
// dirty means updates were lost mid-chain and recovery must fail.
func (s *Store) readJournal(gen uint64, final bool) ([]stream.Stream, error) {
	data, err := os.ReadFile(s.journalPath(gen))
	if err != nil {
		return nil, fmt.Errorf("%w: journal %d: %v", ErrGenerationGap, gen, err)
	}
	if len(data) < 24 || [4]byte(data[:4]) != journalMagic ||
		binary.LittleEndian.Uint16(data[4:6]) != journalVersion ||
		binary.LittleEndian.Uint64(data[8:16]) != gen ||
		codec.Fingerprint(data[:16]) != binary.LittleEndian.Uint64(data[16:24]) {
		if final {
			// A torn header on the newest segment means it never finished
			// being created: nothing after its generation was accepted.
			return nil, nil
		}
		return nil, fmt.Errorf("%w: journal %d header unreadable", ErrGenerationGap, gen)
	}
	var batches []stream.Stream
	rest := data[24:]
	for len(rest) > 0 {
		payload, tail, err := codec.NextRecord(rest)
		if err != nil {
			if final && errors.Is(err, codec.ErrTruncated) {
				return batches, nil // crash frontier
			}
			if final && errors.Is(err, codec.ErrBadRecord) {
				// In-place corruption of the newest segment's tail: the
				// records before it are intact and replayable, but flag the
				// tear for Latest's accounting.
				return batches, fmt.Errorf("%w: journal %d record corrupt", ErrTornWrite, gen)
			}
			return nil, fmt.Errorf("%w: journal %d: %v", ErrGenerationGap, gen, err)
		}
		batch, err := decodeUpdates(payload)
		if err != nil {
			if final {
				return batches, fmt.Errorf("%w: journal %d record malformed", ErrTornWrite, gen)
			}
			return nil, fmt.Errorf("%w: journal %d record malformed", ErrGenerationGap, gen)
		}
		batches = append(batches, batch)
		rest = tail
	}
	return batches, nil
}

// ---------------------------------------------------------------------------
// Latest: recovery
// ---------------------------------------------------------------------------

// Latest reconstructs the newest recoverable state: the newest generation
// whose fingerprints verify (falling back over torn ones), plus the journal
// tail to replay. ErrNoCheckpoint when the store is empty or nothing
// verifies; ErrGenerationGap when the needed journal chain is broken.
func (s *Store) Latest() (*Recovery, error) {
	if s.closed {
		return nil, ErrClosed
	}
	gens, journals, err := s.scan()
	if err != nil {
		return nil, err
	}
	if len(gens) == 0 && len(journals) == 0 {
		return nil, ErrNoCheckpoint
	}
	rec := &Recovery{}
	// Walk generations newest-first until one verifies.
	base := uint64(0)
	var states [][]byte
	found := false
	for i := len(gens) - 1; i >= 0; i-- {
		g := gens[i]
		data, rerr := s.readGenFile(g)
		if rerr == nil {
			if states, rerr = decodeGeneration(data, g); rerr == nil {
				base, found = g, true
				break
			}
		}
		rec.Torn = append(rec.Torn, g)
	}
	if !found {
		states = nil
		base = 0
		// With no usable generation, recovery must replay from the very
		// first segment: the baseline is the zero state.
		if len(journals) == 0 || journals[0] != 0 {
			err := fmt.Errorf("%w: no generation verifies and the journal baseline is missing", ErrNoCheckpoint)
			if len(rec.Torn) > 0 {
				err = errors.Join(err, ErrTornWrite)
			}
			return nil, err
		}
	}
	rec.Generation = base
	rec.States = states

	// Replay journals base..newest, requiring a contiguous chain. Segments
	// below base predate the usable generation and are ignored (their
	// updates are already folded into it).
	var chain []uint64
	for _, g := range journals {
		if g >= base {
			chain = append(chain, g)
		}
	}
	for i, g := range chain {
		if want := base + uint64(i); g != want {
			return nil, fmt.Errorf("%w: journal %d missing (found %d)", ErrGenerationGap, want, g)
		}
		batches, jerr := s.readJournal(g, i == len(chain)-1)
		if jerr != nil && !errors.Is(jerr, ErrTornWrite) {
			return nil, jerr
		}
		for _, b := range batches {
			rec.Tail = append(rec.Tail, b)
			rec.TailUpdates += len(b)
		}
		if jerr != nil {
			// Final-segment tail corruption: the records before it are
			// intact and already collected; record the tear and stop.
			rec.Torn = append(rec.Torn, g)
			break
		}
	}
	// len(chain) == 0 happens only with a verified generation whose journal
	// was never created (crash between rename and rotation): nothing was
	// accepted after it, so an empty tail is exactly right.
	return rec, nil
}

// readGenFile reads a generation file with read-fault injection.
func (s *Store) readGenFile(g uint64) ([]byte, error) {
	if err := s.opts.Injector.Err(faultinject.CheckpointRead); err != nil {
		return nil, err
	}
	data, err := os.ReadFile(s.genPath(g))
	if err != nil {
		return nil, err
	}
	s.opts.Injector.FlipBit(faultinject.CodecDecode, data)
	return data, nil
}

// ---------------------------------------------------------------------------
// Retention + lifecycle
// ---------------------------------------------------------------------------

// prune removes generations beyond the retention window and the journal
// segments nothing retained can need. Best-effort: a failed remove is
// retried on the next Save.
func (s *Store) prune() {
	gens, journals, err := s.scan()
	if err != nil {
		return
	}
	if len(gens) <= s.opts.Keep {
		return
	}
	oldestKept := gens[len(gens)-s.opts.Keep]
	for _, g := range gens {
		if g < oldestKept {
			os.Remove(s.genPath(g))
		}
	}
	// Recovering from oldestKept needs journals oldestKept..newest; anything
	// below is dead weight.
	for _, g := range journals {
		if g < oldestKept {
			os.Remove(s.journalPath(g))
		}
	}
}

// Generations lists the generation numbers currently on disk, oldest first
// (verified or not).
func (s *Store) Generations() []uint64 {
	gens, _, err := s.scan()
	if err != nil {
		return nil
	}
	return gens
}

// Close releases the journal handle. The store's files stay on disk; a new
// Open resumes from them.
func (s *Store) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	if s.journal != nil {
		err := s.journal.Close()
		s.journal = nil
		return err
	}
	return nil
}

// RemoveAll deletes the store's directory tree — test and tooling helper.
func (s *Store) RemoveAll() error {
	s.Close()
	if err := os.RemoveAll(s.dir); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return err
	}
	return nil
}
