package stream

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// TestPropertyApplyIsFold: Apply equals an explicit left fold of updates.
func TestPropertyApplyIsFold(t *testing.T) {
	f := func(raw []int16) bool {
		const n = 32
		var st Stream
		for k, v := range raw {
			if v != 0 {
				st = append(st, Update{Index: k % n, Delta: int64(v)})
			}
		}
		want := make([]int64, n)
		for _, u := range st {
			want[u.Index] += u.Delta
		}
		got := st.Apply(n)
		for i := 0; i < n; i++ {
			if got.Get(i) != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestPropertySparseVectorExactSupport: the generator delivers exactly the
// requested support for every (n, support) in range, under churn.
func TestPropertySparseVectorExactSupport(t *testing.T) {
	f := func(seed uint64, nRaw, supRaw uint16) bool {
		n := 8 + int(nRaw%500)
		sup := int(supRaw) % (n + 1)
		r := rand.New(rand.NewPCG(seed, 11))
		st := SparseVector(n, sup, 50, r)
		return st.Apply(n).L0() == sup
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyStrictTurnstileNonNegative: every generated strict-turnstile
// stream ends entry-wise non-negative, whatever the parameters.
func TestPropertyStrictTurnstileNonNegative(t *testing.T) {
	f := func(seed uint64, nRaw, lenRaw uint16) bool {
		n := 4 + int(nRaw%200)
		length := 10 + int(lenRaw%2000)
		r := rand.New(rand.NewPCG(seed, 13))
		st := StrictTurnstile(n, length, 9, r)
		for _, v := range st.Apply(n).Coords() {
			if v < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyDuplicateItemsAlwaysPigeonhole: streams of length n+1 over [n]
// always contain a duplicate, for every n and both generator modes.
func TestPropertyDuplicateItemsAlwaysPigeonhole(t *testing.T) {
	f := func(seed uint64, nRaw uint16, forced bool) bool {
		n := 2 + int(nRaw%300)
		r := rand.New(rand.NewPCG(seed, 17))
		force := -1
		if forced {
			force = r.IntN(n)
		}
		items := DuplicateItems(n, force, r)
		if len(items) != n+1 {
			return false
		}
		seen := map[int]bool{}
		dup := false
		for _, it := range items {
			if it < 0 || it >= n {
				return false
			}
			if seen[it] {
				dup = true
			}
			seen[it] = true
		}
		return dup
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyShortItemsLengthAndMultiplicity: ShortItems always emits n-s
// letters with per-letter multiplicity <= 2 and the requested duplicate
// count (when feasible).
func TestPropertyShortItemsLengthAndMultiplicity(t *testing.T) {
	f := func(seed uint64, nRaw, sRaw, dRaw uint8) bool {
		n := 16 + int(nRaw)%200
		s := int(sRaw) % (n / 2)
		dups := 1 + int(dRaw)%8
		r := rand.New(rand.NewPCG(seed, 19))
		items := ShortItems(n, s, true, dups, r)
		if len(items) != n-s {
			return false
		}
		counts := map[int]int{}
		for _, it := range items {
			counts[it]++
			if counts[it] > 2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyItemUpdateRoundTrip: converting items to updates preserves
// occurrence counts exactly.
func TestPropertyItemUpdateRoundTrip(t *testing.T) {
	f := func(raw []uint8) bool {
		const n = 64
		items := make(Items, len(raw))
		counts := make([]int64, n)
		for k, v := range raw {
			items[k] = int(v) % n
			counts[items[k]]++
		}
		got := items.Updates().Apply(n)
		for i := 0; i < n; i++ {
			if got.Get(i) != counts[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestPropertyZeroPlusMinusOneBudget: the generator never exceeds the
// requested counts and all coordinates stay in {-1,0,1}.
func TestPropertyZeroPlusMinusOneBudget(t *testing.T) {
	f := func(seed uint64, nRaw, onesRaw, minusRaw uint8) bool {
		n := 8 + int(nRaw)%200
		ones := int(onesRaw) % (n / 2)
		minus := int(minusRaw) % (n / 2)
		r := rand.New(rand.NewPCG(seed, 23))
		d := ZeroPlusMinusOne(n, ones, minus, r).Apply(n)
		gotOnes, gotMinus := 0, 0
		for _, v := range d.Coords() {
			switch v {
			case 1:
				gotOnes++
			case -1:
				gotMinus++
			case 0:
			default:
				return false
			}
		}
		return gotOnes == ones && gotMinus == minus
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
