// Package stream defines the turnstile update-stream model of the paper
// (Notation, §1): a sequence of tuples (i, u) with i in [n], u in Z that
// implicitly defines a vector x in Z^n, plus generators for every workload
// the experiments need — general and strict turnstile streams, 0/±1 vectors,
// and the duplicate-finding item streams of §3.
package stream

import (
	"math"
	"math/rand/v2"

	"repro/internal/vector"
)

// Update is one turnstile update: add Delta to coordinate Index of x.
type Update struct {
	Index int
	Delta int64
}

// Stream is an ordered sequence of updates.
type Stream []Update

// Apply replays the stream onto a fresh zero vector of dimension n and
// returns the exact resulting vector (the experiment ground truth).
func (s Stream) Apply(n int) *vector.Dense {
	d := vector.NewDense(n)
	for _, u := range s {
		d.Update(u.Index, u.Delta)
	}
	return d
}

// Sink consumes updates; every sketch in this repository implements it.
type Sink interface {
	Process(u Update)
}

// BatchSink is the contract of sketches with a tight batched ingestion path:
// ProcessBatch(batch) must leave the sketch in exactly the state that
// repeated Process calls over the same updates in the same order would.
// Batched paths amortize hash evaluations, bounds checks and interface
// dispatch across the batch, and are what the sharded ingestion engine
// (internal/engine) drives.
type BatchSink interface {
	Sink
	ProcessBatch(batch []Update)
}

// Keys writes the update indices of batch into *buf as uint64 hash keys,
// growing the buffer on demand (never shrinking it), and returns the filled
// view. The sketches' batched hot paths share these extraction helpers so
// the grow-and-split policy lives in one place and steady-state calls
// allocate nothing.
func Keys(batch []Update, buf *[]uint64) []uint64 {
	if cap(*buf) < len(batch) {
		*buf = make([]uint64, len(batch))
	}
	keys := (*buf)[:len(batch)]
	for t, u := range batch {
		keys[t] = uint64(u.Index)
	}
	return keys
}

// FloatDeltas writes the update deltas of batch into *buf as float64,
// growing the buffer on demand, and returns the filled view.
func FloatDeltas(batch []Update, buf *[]float64) []float64 {
	if cap(*buf) < len(batch) {
		*buf = make([]float64, len(batch))
	}
	del := (*buf)[:len(batch)]
	for t, u := range batch {
		del[t] = float64(u.Delta)
	}
	return del
}

// Int64Deltas writes the update deltas of batch into *buf, growing the
// buffer on demand, and returns the filled view — a flat 8-byte view that
// integer sketches fold from once per row instead of re-reading the 16-byte
// Update structs.
func Int64Deltas(batch []Update, buf *[]int64) []int64 {
	if cap(*buf) < len(batch) {
		*buf = make([]int64, len(batch))
	}
	del := (*buf)[:len(batch)]
	for t, u := range batch {
		del[t] = u.Delta
	}
	return del
}

// ProcessAll delivers a batch through the sink's ProcessBatch fast path when
// it has one, falling back to one Process call per update.
func ProcessAll(s Sink, batch []Update) {
	if bs, ok := s.(BatchSink); ok {
		bs.ProcessBatch(batch)
		return
	}
	for _, u := range batch {
		s.Process(u)
	}
}

// Feed replays the stream into one or more sketches.
func (s Stream) Feed(sinks ...Sink) {
	for _, u := range s {
		for _, sk := range sinks {
			sk.Process(u)
		}
	}
}

// FeedBatch replays the stream in contiguous batches of the given size,
// using each sink's ProcessBatch fast path where available.
func (s Stream) FeedBatch(batchSize int, sinks ...Sink) {
	if batchSize < 1 {
		batchSize = 1
	}
	for lo := 0; lo < len(s); lo += batchSize {
		hi := min(lo+batchSize, len(s))
		for _, sk := range sinks {
			ProcessAll(sk, s[lo:hi])
		}
	}
}

// RandomTurnstile returns a general-update stream of the given length over
// [n] with deltas uniform in [-maxAbs, maxAbs] \ {0}.
func RandomTurnstile(n, length int, maxAbs int64, r *rand.Rand) Stream {
	s := make(Stream, length)
	for i := range s {
		d := r.Int64N(2*maxAbs) - maxAbs
		if d >= 0 {
			d++
		}
		s[i] = Update{Index: r.IntN(n), Delta: d}
	}
	return s
}

// ZipfSigned returns a stream setting coordinate i (0-based) to a value of
// magnitude round(scale / (i+1)^alpha) with a random sign, delivered as a
// random-order sequence of partial updates so that sketches see genuine
// intermediate states. Coordinates whose magnitude rounds to zero are left
// untouched.
func ZipfSigned(n int, alpha float64, scale int64, r *rand.Rand) Stream {
	var s Stream
	for i := 0; i < n; i++ {
		mag := int64(math.Round(float64(scale) / math.Pow(float64(i+1), alpha)))
		if mag == 0 {
			continue
		}
		if r.IntN(2) == 0 {
			mag = -mag
		}
		// Split into two partial updates to exercise cancellation paths.
		half := mag / 2
		if half != 0 {
			s = append(s, Update{i, half})
		}
		s = append(s, Update{i, mag - half})
	}
	r.Shuffle(len(s), func(a, b int) { s[a], s[b] = s[b], s[a] })
	return s
}

// SparseVector returns a stream whose final vector has exactly `support`
// nonzero coordinates, each with magnitude in [1, maxAbs], with insert/delete
// churn: every chosen coordinate receives a spurious +delta followed later by
// its cancellation, so the final support is exact but the stream is longer.
func SparseVector(n, support int, maxAbs int64, r *rand.Rand) Stream {
	if support > n {
		support = n
	}
	perm := r.Perm(n)
	var s Stream
	for _, i := range perm[:support] {
		v := r.Int64N(maxAbs) + 1
		if r.IntN(2) == 0 {
			v = -v
		}
		s = append(s, Update{i, v})
	}
	// churn on coordinates outside the support: +v then -v
	churn := support
	if churn > n-support {
		churn = n - support
	}
	for _, i := range perm[support : support+churn] {
		v := r.Int64N(maxAbs) + 1
		s = append(s, Update{i, v})
		s = append(s, Update{i, -v})
	}
	r.Shuffle(len(s), func(a, b int) { s[a], s[b] = s[b], s[a] })
	// Shuffling may put a cancellation before its insert; that is fine, the
	// final vector is unchanged and intermediate negatives are legal in the
	// general model.
	return s
}

// ZeroPlusMinusOne returns a stream whose final vector has coordinates in
// {-1, 0, +1}: nOnes coordinates at +1, nMinus at -1, rest zero (after
// churn). This is the hard instance family of Theorem 8.
func ZeroPlusMinusOne(n, nOnes, nMinus int, r *rand.Rand) Stream {
	perm := r.Perm(n)
	var s Stream
	idx := 0
	for i := 0; i < nOnes; i++ {
		s = append(s, Update{perm[idx], 1})
		idx++
	}
	for i := 0; i < nMinus; i++ {
		s = append(s, Update{perm[idx], -1})
		idx++
	}
	r.Shuffle(len(s), func(a, b int) { s[a], s[b] = s[b], s[a] })
	return s
}

// StrictTurnstile returns a stream with interleaved inserts and deletes whose
// every prefix... (the model only constrains the final vector) — the final
// vector is guaranteed entry-wise non-negative, as required by the strict
// turnstile model of §4.4.
func StrictTurnstile(n, length int, maxAbs int64, r *rand.Rand) Stream {
	final := make([]int64, n)
	var s Stream
	// First phase: random inserts.
	for len(s) < length/2 {
		i := r.IntN(n)
		d := r.Int64N(maxAbs) + 1
		final[i] += d
		s = append(s, Update{i, d})
	}
	// Second phase: deletes never exceeding the running positive mass.
	for len(s) < length {
		i := r.IntN(n)
		if final[i] <= 0 {
			d := r.Int64N(maxAbs) + 1
			final[i] += d
			s = append(s, Update{i, d})
			continue
		}
		d := r.Int64N(final[i]) + 1
		final[i] -= d
		s = append(s, Update{i, -d})
	}
	return s
}

// Items is a stream of letters from the alphabet [n] (the duplicates-problem
// input of §3), 0-based.
type Items []int

// DuplicateItems returns a stream of n+1 items over alphabet [n] (0-based) in
// which, by pigeonhole, at least one letter repeats. The stream is a uniform
// random function image: each of the n+1 positions holds an independent
// uniform letter unless forceDup >= 0, in which case the stream is a random
// permutation of [n] plus one extra copy of forceDup (exactly one duplicate,
// the adversarial extreme where the duplicate mass is smallest).
func DuplicateItems(n int, forceDup int, r *rand.Rand) Items {
	if forceDup >= 0 {
		items := make(Items, 0, n+1)
		for _, v := range r.Perm(n) {
			items = append(items, v)
		}
		items = append(items, forceDup)
		r.Shuffle(len(items), func(a, b int) { items[a], items[b] = items[b], items[a] })
		return items
	}
	items := make(Items, n+1)
	for i := range items {
		items[i] = r.IntN(n)
	}
	return items
}

// ShortItems returns a stream of n-s items over [n]. If withDup is false the
// items are distinct (no duplicate exists and Theorem 4's algorithm must say
// NO-DUPLICATE); otherwise exactly dups letters appear twice.
func ShortItems(n, s int, withDup bool, dups int, r *rand.Rand) Items {
	length := n - s
	perm := r.Perm(n)
	if !withDup {
		return Items(perm[:length])
	}
	if dups < 1 {
		dups = 1
	}
	if dups > length/2 {
		dups = length / 2
	}
	items := make(Items, 0, length)
	distinct := length - dups
	items = append(items, perm[:distinct]...)
	for i := 0; i < dups; i++ {
		items = append(items, perm[i])
	}
	r.Shuffle(len(items), func(a, b int) { items[a], items[b] = items[b], items[a] })
	return items
}

// LongItems returns a stream of n+s items over [n] (the regime at the end of
// §3 where reservoir sampling of O(n/s) items beats the L1 sampler once
// n/s < log n).
func LongItems(n, s int, r *rand.Rand) Items {
	items := make(Items, n+s)
	for i := range items {
		items[i] = r.IntN(n)
	}
	return items
}

// Updates converts an item stream to turnstile updates (+1 per occurrence).
func (it Items) Updates() Stream {
	s := make(Stream, len(it))
	for i, v := range it {
		s[i] = Update{Index: v, Delta: 1}
	}
	return s
}

// DecrementAll returns the (i, -1) for i in [n] prefix that the duplicates
// reduction of Theorem 3 feeds before the items.
func DecrementAll(n int) Stream {
	s := make(Stream, n)
	for i := range s {
		s[i] = Update{Index: i, Delta: -1}
	}
	return s
}

// IncrementAll returns the (i, +1) for i in [n] stream — the negation of
// DecrementAll, used to compensate a doubly counted pigeonhole prefix when
// merging duplicate finders.
func IncrementAll(n int) Stream {
	s := make(Stream, n)
	for i := range s {
		s[i] = Update{Index: i, Delta: 1}
	}
	return s
}
