package stream

import (
	"math/rand/v2"
	"testing"
)

func TestApply(t *testing.T) {
	s := Stream{{0, 5}, {1, -2}, {0, -1}}
	d := s.Apply(3)
	if d.Get(0) != 4 || d.Get(1) != -2 || d.Get(2) != 0 {
		t.Fatalf("Apply wrong: %v", d.Coords())
	}
}

type countingSink struct{ n int }

func (c *countingSink) Process(Update) { c.n++ }

func TestFeed(t *testing.T) {
	s := Stream{{0, 1}, {1, 1}, {2, 1}}
	a, b := &countingSink{}, &countingSink{}
	s.Feed(a, b)
	if a.n != 3 || b.n != 3 {
		t.Fatalf("Feed delivered %d/%d, want 3/3", a.n, b.n)
	}
}

func TestRandomTurnstile(t *testing.T) {
	r := rand.New(rand.NewPCG(1, 1))
	s := RandomTurnstile(50, 1000, 10, r)
	if len(s) != 1000 {
		t.Fatalf("length %d", len(s))
	}
	for _, u := range s {
		if u.Index < 0 || u.Index >= 50 {
			t.Fatalf("index %d out of range", u.Index)
		}
		if u.Delta == 0 || u.Delta < -10 || u.Delta > 10 {
			t.Fatalf("delta %d out of range", u.Delta)
		}
	}
}

func TestZipfSigned(t *testing.T) {
	r := rand.New(rand.NewPCG(2, 2))
	s := ZipfSigned(100, 1.0, 1000, r)
	d := s.Apply(100)
	// Largest coordinate must be +-1000, coordinate magnitudes decay.
	if d.MaxAbs() != 1000 {
		t.Fatalf("MaxAbs = %d, want 1000", d.MaxAbs())
	}
	var zi0 int64
	if v := d.Get(0); v < 0 {
		zi0 = -v
	} else {
		zi0 = v
	}
	if zi0 != 1000 {
		t.Fatalf("|x_0| = %d, want 1000", zi0)
	}
}

func TestSparseVector(t *testing.T) {
	r := rand.New(rand.NewPCG(3, 3))
	for _, sup := range []int{0, 1, 5, 50, 100} {
		s := SparseVector(100, sup, 20, r)
		d := s.Apply(100)
		if got := d.L0(); got != sup {
			t.Fatalf("support %d, want %d", got, sup)
		}
		for _, v := range d.Coords() {
			if v > 20 || v < -20 {
				t.Fatalf("magnitude %d exceeds maxAbs", v)
			}
		}
	}
}

func TestZeroPlusMinusOne(t *testing.T) {
	r := rand.New(rand.NewPCG(4, 4))
	s := ZeroPlusMinusOne(100, 7, 5, r)
	d := s.Apply(100)
	var ones, minus int
	for _, v := range d.Coords() {
		switch v {
		case 1:
			ones++
		case -1:
			minus++
		case 0:
		default:
			t.Fatalf("coordinate %d not in {-1,0,1}", v)
		}
	}
	if ones != 7 || minus != 5 {
		t.Fatalf("ones=%d minus=%d, want 7/5", ones, minus)
	}
}

func TestStrictTurnstileFinalNonNegative(t *testing.T) {
	r := rand.New(rand.NewPCG(5, 5))
	s := StrictTurnstile(50, 2000, 10, r)
	if len(s) != 2000 {
		t.Fatalf("length %d", len(s))
	}
	d := s.Apply(50)
	for i, v := range d.Coords() {
		if v < 0 {
			t.Fatalf("final coordinate %d negative: %d", i, v)
		}
	}
	// The stream must actually contain deletions.
	hasNeg := false
	for _, u := range s {
		if u.Delta < 0 {
			hasNeg = true
			break
		}
	}
	if !hasNeg {
		t.Error("strict turnstile stream contains no deletions")
	}
}

func TestDuplicateItemsPigeonhole(t *testing.T) {
	r := rand.New(rand.NewPCG(6, 6))
	for trial := 0; trial < 20; trial++ {
		items := DuplicateItems(50, -1, r)
		if len(items) != 51 {
			t.Fatalf("length %d, want 51", len(items))
		}
		seen := map[int]int{}
		for _, it := range items {
			if it < 0 || it >= 50 {
				t.Fatalf("item %d out of alphabet", it)
			}
			seen[it]++
		}
		dup := false
		for _, c := range seen {
			if c >= 2 {
				dup = true
			}
		}
		if !dup {
			t.Fatal("pigeonhole violated")
		}
	}
}

func TestDuplicateItemsForced(t *testing.T) {
	r := rand.New(rand.NewPCG(7, 7))
	items := DuplicateItems(20, 13, r)
	count := 0
	for _, it := range items {
		if it == 13 {
			count++
		}
	}
	if count != 2 {
		t.Fatalf("forced duplicate appears %d times, want 2", count)
	}
	// all other letters exactly once
	seen := map[int]int{}
	for _, it := range items {
		seen[it]++
	}
	for l, c := range seen {
		if l != 13 && c != 1 {
			t.Fatalf("letter %d appears %d times", l, c)
		}
	}
}

func TestShortItems(t *testing.T) {
	r := rand.New(rand.NewPCG(8, 8))
	items := ShortItems(100, 10, false, 0, r)
	if len(items) != 90 {
		t.Fatalf("length %d, want 90", len(items))
	}
	seen := map[int]bool{}
	for _, it := range items {
		if seen[it] {
			t.Fatal("distinct stream has a duplicate")
		}
		seen[it] = true
	}
	withDup := ShortItems(100, 10, true, 3, r)
	counts := map[int]int{}
	for _, it := range withDup {
		counts[it]++
	}
	dups := 0
	for _, c := range counts {
		if c == 2 {
			dups++
		} else if c > 2 {
			t.Fatalf("letter appears %d times, want <= 2", c)
		}
	}
	if dups != 3 {
		t.Fatalf("found %d duplicated letters, want 3", dups)
	}
}

func TestLongItems(t *testing.T) {
	r := rand.New(rand.NewPCG(9, 9))
	items := LongItems(100, 30, r)
	if len(items) != 130 {
		t.Fatalf("length %d, want 130", len(items))
	}
}

func TestUpdatesAndDecrementAll(t *testing.T) {
	items := Items{2, 0, 2}
	ups := items.Updates()
	if len(ups) != 3 || ups[0] != (Update{2, 1}) {
		t.Fatalf("Updates wrong: %v", ups)
	}
	dec := DecrementAll(3)
	full := append(dec, ups...)
	d := full.Apply(3)
	// x_i = occurrences - 1
	if d.Get(0) != 0 || d.Get(1) != -1 || d.Get(2) != 1 {
		t.Fatalf("Theorem 3 vector wrong: %v", d.Coords())
	}
}
