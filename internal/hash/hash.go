// Package hash provides the k-wise independent hash families used throughout
// the sketches: polynomial hashing over GF(2^61-1).
//
// A degree-(k-1) polynomial with uniform random coefficients evaluated at
// distinct points yields a k-wise independent family over the field. From the
// field value we derive the three output types the paper's algorithms need:
//
//   - bucket indices h: [n] -> [m] (count-sketch rows, subsampling levels),
//   - signs g: [n] -> {-1,+1} (count-sketch, AMS tug-of-war),
//   - uniform reals t_i in (0,1] (the precision-sampling scaling factors of
//     Figure 1, which require k-wise independence with k = 10*ceil(1/|p-1|)).
//
// Buckets are derived by Lemire's multiply-shift range reduction (see Bucket)
// and signs/uniforms from the field value; each introduces bias at most 2^-61
// per evaluation, far below the paper's n^-c "low probability" budget — the
// standard discretization the paper itself omits.
//
// Two representations share one storage layout: FlatFamily (flat.go) packs
// all rows' coefficients contiguously and exposes the fused batch kernels the
// sketch hot paths drive; KWise is a scalar one-row view over the same
// coefficient slices, kept as the compatibility API for serial paths and
// same-seed Merge checks.
package hash

import (
	"math/rand/v2"

	"repro/internal/field"
)

// KWise is a k-wise independent hash function from uint64 keys to GF(2^61-1).
// It is a one-row view over flat coefficient storage: functions returned by
// Family share one contiguous allocation.
type KWise struct {
	coef []field.Elem // degree k-1 polynomial, coef[i] multiplies x^i
}

// NewKWise draws a fresh k-wise independent function using randomness from r.
// k must be >= 1; k=2 gives the pairwise families used by count-sketch, and
// the Lp sampler passes the paper's k = 10*ceil(1/|p-1|).
func NewKWise(k int, r *rand.Rand) *KWise {
	if k < 1 {
		panic("hash: k must be >= 1")
	}
	return NewFlatFamily(1, k, r).Row(0)
}

// K returns the independence parameter of the family.
func (h *KWise) K() int { return len(h.coef) }

// Eval returns the field value of the hash at key x.
func (h *KWise) Eval(x uint64) field.Elem { return evalPoly(h.coef, x) }

// Bucket maps key x to a bucket in [0, m) via the Lemire reduction of the
// field value — identical, key for key, to the batched BucketBatch kernel.
func (h *KWise) Bucket(x, m uint64) uint64 {
	return Bucket(h.Eval(x), m)
}

// Sign maps key x to +1 or -1 with (nearly) equal probability.
func (h *KWise) Sign(x uint64) int64 {
	if uint64(h.Eval(x))&1 == 1 {
		return 1
	}
	return -1
}

// Float64 maps key x to a uniform real in (0, 1]. The value is never zero, so
// it is safe to divide by powers of it (the scaling factors t_i^{-1/p} of
// Figure 1).
func (h *KWise) Float64(x uint64) float64 { return toUnit(h.Eval(x)) }

// EvalBatch writes the field value at each key of xs into out[:len(xs)].
func (h *KWise) EvalBatch(xs []uint64, out []field.Elem) { evalBatch(h.coef, xs, out) }

// BucketBatch writes the bucket of each key of xs into out[:len(xs)].
func (h *KWise) BucketBatch(m uint64, xs []uint64, out []uint64) {
	bucketBatch(h.coef, m, xs, out)
}

// SignBatch writes the sign (±1.0) of each key of xs into out[:len(xs)].
func (h *KWise) SignBatch(xs []uint64, out []float64) { signBatch(h.coef, xs, out) }

// Float64Batch writes the unit-interval value of each key of xs into
// out[:len(xs)], bit-identical to scalar Float64 per key.
func (h *KWise) Float64Batch(xs []uint64, out []float64) { float64Batch(h.coef, xs, out) }

// Equal reports whether two hash functions are the same polynomial, i.e.
// were drawn from identically positioned randomness. Merge paths use it to
// validate that two sketches are same-seed replicas before adding states.
func (h *KWise) Equal(other *KWise) bool {
	if other == nil || len(h.coef) != len(other.coef) {
		return false
	}
	for i := range h.coef {
		if h.coef[i] != other.coef[i] {
			return false
		}
	}
	return true
}

// SpaceBits reports the storage footprint of the seed: k field elements of 61
// bits, rounded to words, matching the paper's space accounting.
func (h *KWise) SpaceBits() int64 {
	return int64(len(h.coef)) * 64
}

// Family draws many independent KWise functions with a shared independence k,
// as count-sketch needs one (h_j, g_j) pair per row j in [l]. The returned
// functions are views over a single flat coefficient allocation, drawn in the
// same randomness order as NewFlatFamily(count, k, r).
func Family(count, k int, r *rand.Rand) []*KWise {
	return NewFlatFamily(count, k, r).Views()
}

// FamilyEqual reports whether two families are element-wise Equal.
func FamilyEqual(a, b []*KWise) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}
