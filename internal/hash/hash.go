// Package hash provides the k-wise independent hash families used throughout
// the sketches: polynomial hashing over GF(2^61-1).
//
// A degree-(k-1) polynomial with uniform random coefficients evaluated at
// distinct points yields a k-wise independent family over the field. From the
// field value we derive the three output types the paper's algorithms need:
//
//   - bucket indices h: [n] -> [m] (count-sketch rows, subsampling levels),
//   - signs g: [n] -> {-1,+1} (count-sketch, AMS tug-of-war),
//   - uniform reals t_i in (0,1] (the precision-sampling scaling factors of
//     Figure 1, which require k-wise independence with k = 10*ceil(1/|p-1|)).
//
// Deriving buckets by reduction mod m and signs/uniforms from the field value
// introduces bias at most 2^-61 per evaluation, far below the paper's n^-c
// "low probability" budget; this is the standard discretization the paper
// itself omits.
package hash

import (
	"math/rand/v2"

	"repro/internal/field"
)

// KWise is a k-wise independent hash function from uint64 keys to GF(2^61-1).
type KWise struct {
	coef []field.Elem // degree k-1 polynomial, coef[i] multiplies x^i
}

// NewKWise draws a fresh k-wise independent function using randomness from r.
// k must be >= 1; k=2 gives the pairwise families used by count-sketch, and
// the Lp sampler passes the paper's k = 10*ceil(1/|p-1|).
func NewKWise(k int, r *rand.Rand) *KWise {
	if k < 1 {
		panic("hash: k must be >= 1")
	}
	coef := make([]field.Elem, k)
	for i := range coef {
		coef[i] = field.New(r.Uint64())
	}
	return &KWise{coef: coef}
}

// K returns the independence parameter of the family.
func (h *KWise) K() int { return len(h.coef) }

// Eval returns the field value of the hash at key x.
func (h *KWise) Eval(x uint64) field.Elem {
	xe := field.New(x)
	var acc field.Elem
	for i := len(h.coef) - 1; i >= 0; i-- {
		acc = field.Add(field.Mul(acc, xe), h.coef[i])
	}
	return acc
}

// Bucket maps key x to a bucket in [0, m).
func (h *KWise) Bucket(x, m uint64) uint64 {
	return uint64(h.Eval(x)) % m
}

// Sign maps key x to +1 or -1 with (nearly) equal probability.
func (h *KWise) Sign(x uint64) int64 {
	if uint64(h.Eval(x))&1 == 1 {
		return 1
	}
	return -1
}

// Float64 maps key x to a uniform real in (0, 1]. The value is never zero, so
// it is safe to divide by powers of it (the scaling factors t_i^{-1/p} of
// Figure 1).
func (h *KWise) Float64(x uint64) float64 {
	return (float64(uint64(h.Eval(x))) + 1) / float64(field.Modulus)
}

// Equal reports whether two hash functions are the same polynomial, i.e.
// were drawn from identically positioned randomness. Merge paths use it to
// validate that two sketches are same-seed replicas before adding states.
func (h *KWise) Equal(other *KWise) bool {
	if other == nil || len(h.coef) != len(other.coef) {
		return false
	}
	for i := range h.coef {
		if h.coef[i] != other.coef[i] {
			return false
		}
	}
	return true
}

// SpaceBits reports the storage footprint of the seed: k field elements of 61
// bits, rounded to words, matching the paper's space accounting.
func (h *KWise) SpaceBits() int64 {
	return int64(len(h.coef)) * 64
}

// Family draws many independent KWise functions with a shared independence k,
// as count-sketch needs one (h_j, g_j) pair per row j in [l].
func Family(count, k int, r *rand.Rand) []*KWise {
	fs := make([]*KWise, count)
	for i := range fs {
		fs[i] = NewKWise(k, r)
	}
	return fs
}

// FamilyEqual reports whether two families are element-wise Equal.
func FamilyEqual(a, b []*KWise) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}
