package hash

import (
	"math/rand/v2"
	"testing"

	"repro/internal/field"
)

// TestFlatFamilyMatchesKWise: a FlatFamily and a Family drawn from
// identically positioned randomness are the same polynomials, and every batch
// kernel is bit-identical to the scalar KWise path, for the independence
// parameters the sketches actually use (pairwise, AMS's 4-wise, and a
// precision-sampling k=10).
func TestFlatFamilyMatchesKWise(t *testing.T) {
	const rows = 5
	keys := make([]uint64, 257) // odd length exercises kernel tails
	r := rand.New(rand.NewPCG(11, 13))
	for i := range keys {
		keys[i] = r.Uint64() >> (i % 33) // mix of huge and small keys
	}
	keys[0], keys[1] = 0, 1

	for _, k := range []int{2, 4, 10} {
		flat := NewFlatFamily(rows, k, rand.New(rand.NewPCG(3, 4)))
		fam := Family(rows, k, rand.New(rand.NewPCG(3, 4)))
		if flat.Rows() != rows || flat.K() != k {
			t.Fatalf("k=%d: FlatFamily shape (%d,%d)", k, flat.Rows(), flat.K())
		}
		evals := make([]field.Elem, len(keys))
		buckets := make([]uint64, len(keys))
		signs := make([]float64, len(keys))
		floats := make([]float64, len(keys))
		for j := 0; j < rows; j++ {
			if !flat.Row(j).Equal(fam[j]) {
				t.Fatalf("k=%d row %d: flat row differs from Family row", k, j)
			}
			const m = 6 * 64
			flat.EvalBatch(j, keys, evals)
			flat.BucketBatch(j, m, keys, buckets)
			flat.SignBatch(j, keys, signs)
			flat.Float64Batch(j, keys, floats)
			for t2, x := range keys {
				if want := fam[j].Eval(x); evals[t2] != want {
					t.Fatalf("k=%d row %d key %d: EvalBatch %d != scalar %d", k, j, x, evals[t2], want)
				}
				if want := fam[j].Bucket(x, m); buckets[t2] != want {
					t.Fatalf("k=%d row %d key %d: BucketBatch %d != scalar %d", k, j, x, buckets[t2], want)
				}
				if want := float64(fam[j].Sign(x)); signs[t2] != want {
					t.Fatalf("k=%d row %d key %d: SignBatch %v != scalar %v", k, j, x, signs[t2], want)
				}
				if want := fam[j].Float64(x); floats[t2] != want {
					t.Fatalf("k=%d row %d key %d: Float64Batch %v != scalar %v", k, j, x, floats[t2], want)
				}
				if got, want := flat.Eval(j, x), fam[j].Eval(x); got != want {
					t.Fatalf("k=%d row %d key %d: flat scalar Eval %d != KWise %d", k, j, x, got, want)
				}
			}
		}
	}
}

// TestBucketSignBatchMatchesScalar: the fused count-sketch kernel agrees with
// the scalar Bucket/Sign pair on both the k=2 fast path and the generic path.
func TestBucketSignBatchMatchesScalar(t *testing.T) {
	keys := make([]uint64, 100)
	r := rand.New(rand.NewPCG(21, 22))
	for i := range keys {
		keys[i] = r.Uint64()
	}
	for _, k := range []int{2, 4} {
		h := NewFlatFamily(3, k, rand.New(rand.NewPCG(5, 6)))
		g := NewFlatFamily(3, k, rand.New(rand.NewPCG(7, 8)))
		buckets := make([]uint64, len(keys))
		signs := make([]float64, len(keys))
		for j := 0; j < 3; j++ {
			const m = 384
			BucketSignBatch(h, g, j, m, keys, buckets, signs)
			for t2, x := range keys {
				if want := h.Bucket(j, x, m); buckets[t2] != want {
					t.Fatalf("k=%d row %d: fused bucket %d != scalar %d", k, j, buckets[t2], want)
				}
				if want := float64(g.Sign(j, x)); signs[t2] != want {
					t.Fatalf("k=%d row %d: fused sign %v != scalar %v", k, j, signs[t2], want)
				}
			}
		}
	}
}

// TestLemireBucketDeterministicInRange: the multiply-shift reduction is a
// deterministic function of (v, m) and always lands in [0, m), across bucket
// counts including non-powers of two and the sketch sizes in actual use.
func TestLemireBucketDeterministicInRange(t *testing.T) {
	ms := []uint64{1, 2, 3, 5, 6, 7, 13, 384, 1000, 1 << 16, 1000003, (1 << 20) + 7}
	r := rand.New(rand.NewPCG(31, 32))
	for trial := 0; trial < 20000; trial++ {
		v := field.New(r.Uint64())
		for _, m := range ms {
			b := Bucket(v, m)
			if b >= m {
				t.Fatalf("Bucket(%d, %d) = %d out of range", v, m, b)
			}
			if b2 := Bucket(v, m); b2 != b {
				t.Fatalf("Bucket(%d, %d) nondeterministic: %d then %d", v, m, b, b2)
			}
		}
	}
	// Boundary values map to the ends of the range.
	if got := Bucket(0, 13); got != 0 {
		t.Fatalf("Bucket(0, 13) = %d, want 0", got)
	}
	if got := Bucket(field.Elem(field.Modulus-1), 13); got != 12 {
		t.Fatalf("Bucket(max, 13) = %d, want 12", got)
	}
}

// TestLemireBucketUniformity: bucket frequencies of hashed keys stay near
// uniform for a non-power-of-two m (the reduction must not skew low or high
// buckets beyond the 2^-61 discretization budget).
func TestLemireBucketUniformity(t *testing.T) {
	h := NewKWise(2, rand.New(rand.NewPCG(41, 42)))
	const m, nkeys = 12, 1 << 16
	counts := make([]int, m)
	for x := uint64(0); x < nkeys; x++ {
		counts[h.Bucket(x, m)]++
	}
	mean := float64(nkeys) / m
	for b, c := range counts {
		if d := float64(c) - mean; d > 6*82 || d < -6*82 { // 6*sqrt(mean)≈6*74, slack
			t.Errorf("bucket %d count %d too far from mean %.0f", b, c, mean)
		}
	}
}

// TestViewsShareStorage: KWise views over a FlatFamily are equal to the rows
// they wrap and interoperate with FamilyEqual.
func TestViewsShareStorage(t *testing.T) {
	f := NewFlatFamily(4, 3, rand.New(rand.NewPCG(51, 52)))
	views := f.Views()
	fam := Family(4, 3, rand.New(rand.NewPCG(51, 52)))
	if !FamilyEqual(views, fam) {
		t.Fatal("FlatFamily views differ from Family drawn from the same seed")
	}
	g := NewFlatFamily(4, 3, rand.New(rand.NewPCG(53, 54)))
	if f.Equal(g) {
		t.Fatal("different seeds compare Equal")
	}
	if !f.Equal(f) {
		t.Fatal("family not Equal to itself")
	}
}

// ---------------------------------------------------------------------------
// Micro-benchmarks: scalar KWise chains vs the flat batch kernels.
// ---------------------------------------------------------------------------

func benchKeys(n int) []uint64 {
	r := rand.New(rand.NewPCG(61, 62))
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = r.Uint64() >> 16
	}
	return keys
}

// BenchmarkScalarBucketSignK2 is the pre-kernel count-sketch row cost: two
// scalar pairwise evaluations per key through the KWise API.
func BenchmarkScalarBucketSignK2(b *testing.B) {
	h := NewKWise(2, rand.New(rand.NewPCG(1, 1)))
	g := NewKWise(2, rand.New(rand.NewPCG(2, 2)))
	keys := benchKeys(4096)
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		x := keys[i&4095]
		sink += h.Bucket(x, 384) + uint64(g.Sign(x))
	}
	_ = sink
}

// BenchmarkBucketSignBatchK2 is the fused flat kernel over the same work,
// reported per key.
func BenchmarkBucketSignBatchK2(b *testing.B) {
	h := NewFlatFamily(1, 2, rand.New(rand.NewPCG(1, 1)))
	g := NewFlatFamily(1, 2, rand.New(rand.NewPCG(2, 2)))
	keys := benchKeys(4096)
	buckets := make([]uint64, len(keys))
	signs := make([]float64, len(keys))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BucketSignBatch(h, g, 0, 384, keys, buckets, signs)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(keys)), "ns/key")
}

// BenchmarkScalarFloat64K10 vs BenchmarkFloat64BatchK10: the Lp sampler's
// high-independence scaling-factor evaluation, scalar vs batched.
func BenchmarkScalarFloat64K10(b *testing.B) {
	h := NewKWise(10, rand.New(rand.NewPCG(1, 1)))
	keys := benchKeys(4096)
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += h.Float64(keys[i&4095])
	}
	_ = sink
}

func BenchmarkFloat64BatchK10(b *testing.B) {
	f := NewFlatFamily(1, 10, rand.New(rand.NewPCG(1, 1)))
	keys := benchKeys(4096)
	out := make([]float64, len(keys))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Float64Batch(0, keys, out)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(keys)), "ns/key")
}

func BenchmarkEvalBatchK2(b *testing.B) {
	f := NewFlatFamily(1, 2, rand.New(rand.NewPCG(1, 1)))
	keys := benchKeys(4096)
	out := make([]field.Elem, len(keys))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.EvalBatch(0, keys, out)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(keys)), "ns/key")
}
