package hash

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/field"
)

func TestEvalDeterministic(t *testing.T) {
	r := rand.New(rand.NewPCG(1, 1))
	h := NewKWise(4, r)
	a, b := h.Eval(42), h.Eval(42)
	if a != b {
		t.Fatal("hash must be deterministic per seed")
	}
}

func TestEvalMatchesPolynomial(t *testing.T) {
	h := &KWise{coef: []field.Elem{7, 3, 2}} // 7 + 3x + 2x^2
	if got := h.Eval(5); got != field.New(7+15+50) {
		t.Fatalf("Eval(5) = %d, want %d", got, 72)
	}
}

func TestBucketRange(t *testing.T) {
	r := rand.New(rand.NewPCG(2, 2))
	h := NewKWise(2, r)
	const m = 13
	for x := uint64(0); x < 10000; x++ {
		if b := h.Bucket(x, m); b >= m {
			t.Fatalf("bucket %d out of range", b)
		}
	}
}

func TestBucketUniformity(t *testing.T) {
	// chi-square-ish check: no bucket should deviate far from mean.
	r := rand.New(rand.NewPCG(3, 3))
	h := NewKWise(2, r)
	const m, nkeys = 16, 1 << 16
	counts := make([]int, m)
	for x := uint64(0); x < nkeys; x++ {
		counts[h.Bucket(x, m)]++
	}
	mean := float64(nkeys) / m
	for b, c := range counts {
		if math.Abs(float64(c)-mean) > 6*math.Sqrt(mean) {
			t.Errorf("bucket %d count %d too far from mean %.0f", b, c, mean)
		}
	}
}

func TestSignBalance(t *testing.T) {
	r := rand.New(rand.NewPCG(4, 4))
	h := NewKWise(4, r)
	var sum int64
	const nkeys = 1 << 16
	for x := uint64(0); x < nkeys; x++ {
		s := h.Sign(x)
		if s != 1 && s != -1 {
			t.Fatalf("sign %d not in {-1,1}", s)
		}
		sum += s
	}
	if math.Abs(float64(sum)) > 6*math.Sqrt(nkeys) {
		t.Errorf("sign sum %d too biased for %d keys", sum, nkeys)
	}
}

func TestPairwiseSignDecorrelation(t *testing.T) {
	// E[g(x)g(y)] should be ~0 for x != y under pairwise independence,
	// averaged over draws of the hash function.
	r := rand.New(rand.NewPCG(5, 5))
	const draws = 4000
	var corr int64
	for d := 0; d < draws; d++ {
		h := NewKWise(2, r)
		corr += h.Sign(1) * h.Sign(2)
	}
	if math.Abs(float64(corr)) > 6*math.Sqrt(draws) {
		t.Errorf("pairwise sign correlation %d too large over %d draws", corr, draws)
	}
}

func TestFloat64RangeAndMean(t *testing.T) {
	r := rand.New(rand.NewPCG(6, 6))
	h := NewKWise(4, r)
	var sum float64
	const nkeys = 1 << 16
	for x := uint64(0); x < nkeys; x++ {
		f := h.Float64(x)
		if f <= 0 || f > 1 {
			t.Fatalf("Float64 %g out of (0,1]", f)
		}
		sum += f
	}
	mean := sum / nkeys
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean %.4f far from 0.5", mean)
	}
}

func TestKWiseMomentIndependence(t *testing.T) {
	// For a 4-wise family, E over draws of prod_{j in S} f(x_j) for distinct
	// keys with f = Float64 - 1/2 should be ~0 for |S| <= 4.
	r := rand.New(rand.NewPCG(7, 7))
	const draws = 3000
	sums := make([]float64, 5)
	for d := 0; d < draws; d++ {
		h := NewKWise(4, r)
		prod := 1.0
		for j := 1; j <= 4; j++ {
			prod *= h.Float64(uint64(j)) - 0.5
			sums[j] += prod
		}
	}
	for j := 1; j <= 4; j++ {
		// centered uniform has var 1/12; product of j of them has std
		// (1/12)^{j/2} <= 0.3^j
		tol := 6 * math.Pow(0.3, float64(j)) / math.Sqrt(draws)
		if got := sums[j] / draws; math.Abs(got) > tol {
			t.Errorf("order-%d moment %.6f exceeds tolerance %.6f", j, got, tol)
		}
	}
}

func TestFamily(t *testing.T) {
	r := rand.New(rand.NewPCG(8, 8))
	fs := Family(5, 3, r)
	if len(fs) != 5 {
		t.Fatalf("Family returned %d functions", len(fs))
	}
	// Functions must be distinct (w.h.p.)
	if fs[0].Eval(1) == fs[1].Eval(1) && fs[0].Eval(2) == fs[1].Eval(2) && fs[0].Eval(3) == fs[1].Eval(3) {
		t.Error("family members look identical")
	}
	for _, f := range fs {
		if f.K() != 3 {
			t.Errorf("K() = %d, want 3", f.K())
		}
	}
}

func TestSpaceBits(t *testing.T) {
	r := rand.New(rand.NewPCG(9, 9))
	h := NewKWise(7, r)
	if h.SpaceBits() != 7*64 {
		t.Errorf("SpaceBits = %d, want %d", h.SpaceBits(), 7*64)
	}
}

func TestNewKWisePanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for k=0")
		}
	}()
	NewKWise(0, rand.New(rand.NewPCG(1, 1)))
}

func BenchmarkEvalK2(b *testing.B) {
	h := NewKWise(2, rand.New(rand.NewPCG(1, 1)))
	for i := 0; i < b.N; i++ {
		h.Eval(uint64(i))
	}
}

func BenchmarkEvalK20(b *testing.B) {
	h := NewKWise(20, rand.New(rand.NewPCG(1, 1)))
	for i := 0; i < b.N; i++ {
		h.Eval(uint64(i))
	}
}
