package hash

import (
	"math/bits"
	"math/rand/v2"
	"slices"

	"repro/internal/field"
	"repro/internal/kernel"
)

// invModulus converts a field element to a unit-interval real with one
// multiply instead of a divide. Every Float64 derivation in the package —
// scalar and batched — goes through toUnit, so the two paths are bit-identical.
var invModulus = 1 / float64(field.Modulus)

// toUnit maps a field value to (0, 1]: never zero, so callers may divide by
// powers of it (the t_i^{-1/p} scaling factors of Figure 1).
func toUnit(v field.Elem) float64 { return (float64(v) + 1) * invModulus }

// Bucket maps a field value v to a bucket in [0, m) by Lemire's multiply-shift
// range reduction: floor(v·m / 2^61), computed as the high word of the 128-bit
// product (v<<3)·m. It replaces the hardware-divide `v % m` on every sketch
// row. For v uniform over the field, each bucket's probability deviates from
// 1/m by at most 1/(2^61-1) — the same discretization bias budget as the mod
// reduction it replaces, so all pairwise-independence arguments go through
// unchanged. v < 2^61 always (canonical field form), so v<<3 cannot overflow,
// and the result is < m for every m >= 1.
func Bucket(v field.Elem, m uint64) uint64 {
	hi, _ := bits.Mul64(uint64(v)<<3, m)
	return hi
}

// signFloat maps a field value to ±1.0 from its low bit, branch-free.
func signFloat(v field.Elem) float64 {
	return float64(int64(uint64(v)&1)<<1 - 1)
}

// FlatFamily is a structure-of-arrays k-wise independent hash family: `rows`
// independent degree-(k-1) polynomials over GF(2^61-1) whose coefficients all
// live in one contiguous slice, row-major. The flat layout is what the fused
// batch kernels below iterate over — one row's two (or k) coefficients stay in
// registers for a whole batch, instead of being re-fetched through a *KWise
// pointer chain per key as the scalar API does.
//
// A FlatFamily drawn from r is coefficient-for-coefficient identical to
// Family(rows, k, r) drawn from an identically positioned r: the scalar KWise
// API is a thin row view over this storage (see Row/Views), so same-seed
// equality checks interoperate across both representations.
type FlatFamily struct {
	rows int
	k    int
	coef []field.Elem // len rows*k; coef[j*k+i] multiplies x^i in row j
}

// NewFlatFamily draws rows independent k-wise functions from r, in the same
// randomness order as Family(rows, k, r).
func NewFlatFamily(rows, k int, r *rand.Rand) *FlatFamily {
	if rows < 1 {
		panic("hash: rows must be >= 1")
	}
	if k < 1 {
		panic("hash: k must be >= 1")
	}
	coef := make([]field.Elem, rows*k)
	for i := range coef {
		coef[i] = field.New(r.Uint64())
	}
	return &FlatFamily{rows: rows, k: k, coef: coef}
}

// Rows returns the number of independent functions in the family.
func (f *FlatFamily) Rows() int { return f.rows }

// K returns the independence parameter shared by all rows.
func (f *FlatFamily) K() int { return f.k }

// rowCoef returns row j's coefficient slice (capacity-clamped so appends by a
// buggy caller cannot bleed into the next row).
func (f *FlatFamily) rowCoef(j int) []field.Elem {
	return f.coef[j*f.k : (j+1)*f.k : (j+1)*f.k]
}

// Row returns row j as a scalar KWise view sharing this family's storage.
// The view stays valid for the family's lifetime; mutating neither is
// possible through the public API.
func (f *FlatFamily) Row(j int) *KWise { return &KWise{coef: f.rowCoef(j)} }

// Views returns all rows as KWise views over the shared flat storage —
// the compatibility bridge for callers holding []*KWise.
func (f *FlatFamily) Views() []*KWise {
	out := make([]*KWise, f.rows)
	for j := range out {
		out[j] = f.Row(j)
	}
	return out
}

// Equal reports whether two families are the same polynomials — the same-seed
// replica check used by every Merge path.
func (f *FlatFamily) Equal(other *FlatFamily) bool {
	if other == nil || f.rows != other.rows || f.k != other.k {
		return false
	}
	return slices.Equal(f.coef, other.coef)
}

// SpaceBits reports the seed footprint: rows*k field elements at word size.
func (f *FlatFamily) SpaceBits() int64 { return int64(f.rows) * int64(f.k) * 64 }

// Eval returns row j's field value at key x.
func (f *FlatFamily) Eval(j int, x uint64) field.Elem { return evalPoly(f.rowCoef(j), x) }

// Bucket maps key x to a bucket in [0, m) through row j.
func (f *FlatFamily) Bucket(j int, x, m uint64) uint64 { return Bucket(f.Eval(j, x), m) }

// Sign maps key x to ±1 through row j.
func (f *FlatFamily) Sign(j int, x uint64) int64 {
	if uint64(f.Eval(j, x))&1 == 1 {
		return 1
	}
	return -1
}

// Float64 maps key x to a uniform real in (0, 1] through row j.
func (f *FlatFamily) Float64(j int, x uint64) float64 { return toUnit(f.Eval(j, x)) }

// EvalBatch writes row j's field value at each key of xs into out[:len(xs)].
func (f *FlatFamily) EvalBatch(j int, xs []uint64, out []field.Elem) {
	evalBatch(f.rowCoef(j), xs, out)
}

// BucketBatch writes row j's bucket (Lemire reduction to [0, m)) for each key
// of xs into out[:len(xs)].
func (f *FlatFamily) BucketBatch(j int, m uint64, xs []uint64, out []uint64) {
	bucketBatch(f.rowCoef(j), m, xs, out)
}

// SignBatch writes row j's sign (±1.0) for each key of xs into out[:len(xs)].
func (f *FlatFamily) SignBatch(j int, xs []uint64, out []float64) {
	signBatch(f.rowCoef(j), xs, out)
}

// Float64Batch writes row j's unit-interval value for each key of xs into
// out[:len(xs)], bit-identical to scalar Float64 per key.
func (f *FlatFamily) Float64Batch(j int, xs []uint64, out []float64) {
	float64Batch(f.rowCoef(j), xs, out)
}

// BucketSignBatch is the fused count-sketch row kernel: one pass over xs
// evaluating bucket row j of h and sign row j of g together. For the pairwise
// (k=2) families every sketch row uses, each key costs two a·x+b folds — the
// two Horner chains collapse to a single loop with all four coefficients in
// registers — plus one Lemire multiply, with no divide anywhere.
func BucketSignBatch(h, g *FlatFamily, j int, m uint64, xs []uint64, buckets []uint64, signs []float64) {
	hc, gc := h.rowCoef(j), g.rowCoef(j)
	buckets = buckets[:len(xs)]
	signs = signs[:len(xs)]
	if len(hc) == 2 && len(gc) == 2 {
		kernel.BucketSign2(uint64(hc[0]), uint64(hc[1]), uint64(gc[0]), uint64(gc[1]), m,
			xs, buckets, signs)
		return
	}
	for t, x := range xs {
		buckets[t] = Bucket(evalPoly(hc, x), m)
		signs[t] = signFloat(evalPoly(gc, x))
	}
}

// ---------------------------------------------------------------------------
// Coefficient-slice kernels (shared by FlatFamily rows and KWise views)
// ---------------------------------------------------------------------------

// evalPoly is Horner evaluation of the degree-(len(coef)-1) polynomial at x,
// with the pairwise case — every count-sketch/count-min row, also on the
// scalar Process paths — specialized to a single a·x+b fold.
func evalPoly(coef []field.Elem, x uint64) field.Elem {
	if len(coef) == 2 {
		return field.Add(field.Mul(coef[1], field.New(x)), coef[0])
	}
	xe := field.New(x)
	var acc field.Elem
	for i := len(coef) - 1; i >= 0; i-- {
		acc = field.Add(field.Mul(acc, xe), coef[i])
	}
	return acc
}

func evalBatch(coef []field.Elem, xs []uint64, out []field.Elem) {
	out = out[:len(xs)]
	kernel.PolyEvalBatch(field.Words(coef), xs, field.Words(out))
}

func bucketBatch(coef []field.Elem, m uint64, xs []uint64, out []uint64) {
	out = out[:len(xs)]
	if len(coef) == 2 {
		kernel.Bucket2(uint64(coef[0]), uint64(coef[1]), m, xs, out)
		return
	}
	for t, x := range xs {
		out[t] = Bucket(evalPoly(coef, x), m)
	}
}

func signBatch(coef []field.Elem, xs []uint64, out []float64) {
	out = out[:len(xs)]
	switch len(coef) {
	case 2:
		c0, c1 := coef[0], coef[1]
		for t, x := range xs {
			out[t] = signFloat(field.Add(field.Mul(c1, field.New(x)), c0))
		}
	case 4:
		c0, c1, c2, c3 := coef[0], coef[1], coef[2], coef[3]
		for t, x := range xs {
			xe := field.New(x)
			acc := field.Add(field.Mul(c3, xe), c2)
			acc = field.Add(field.Mul(acc, xe), c1)
			out[t] = signFloat(field.Add(field.Mul(acc, xe), c0))
		}
	default:
		for t, x := range xs {
			out[t] = signFloat(evalPoly(coef, x))
		}
	}
}

func float64Batch(coef []field.Elem, xs []uint64, out []float64) {
	out = out[:len(xs)]
	switch len(coef) {
	case 2:
		c0, c1 := coef[0], coef[1]
		for t, x := range xs {
			out[t] = toUnit(field.Add(field.Mul(c1, field.New(x)), c0))
		}
	case 4:
		c0, c1, c2, c3 := coef[0], coef[1], coef[2], coef[3]
		for t, x := range xs {
			xe := field.New(x)
			acc := field.Add(field.Mul(c3, xe), c2)
			acc = field.Add(field.Mul(acc, xe), c1)
			out[t] = toUnit(field.Add(field.Mul(acc, xe), c0))
		}
	default:
		for t, x := range xs {
			out[t] = toUnit(evalPoly(coef, x))
		}
	}
}
