package hash

import (
	"math/rand/v2"
	"testing"

	"repro/internal/field"
	"repro/internal/kernel"
)

// sweepVariants runs fn once under every kernel variant selectable on this
// machine, restoring the startup selection afterwards. The scalar per-key
// APIs (Eval, Bucket, Sign) are not dispatched and serve as the reference.
func sweepVariants(t *testing.T, fn func(t *testing.T)) {
	prev := kernel.Active()
	t.Cleanup(func() {
		if err := kernel.Select(prev); err != nil {
			t.Fatalf("restoring kernel variant %q: %v", prev, err)
		}
	})
	for _, name := range kernel.Variants() {
		if err := kernel.Select(name); err != nil {
			t.Fatalf("Select(%q): %v", name, err)
		}
		t.Run(name, fn)
	}
}

func TestBatchVariantsMatchScalar(t *testing.T) {
	r := rand.New(rand.NewPCG(51, 1))
	keys := make([]uint64, 133)
	for i := range keys {
		keys[i] = r.Uint64()
	}
	for _, k := range []int{2, 3, 4, 6} {
		h := NewFlatFamily(3, k, rand.New(rand.NewPCG(52, uint64(k))))
		g := NewFlatFamily(3, k, rand.New(rand.NewPCG(53, uint64(k))))
		sweepVariants(t, func(t *testing.T) {
			for j := 0; j < h.Rows(); j++ {
				out := make([]field.Elem, len(keys))
				h.EvalBatch(j, keys, out)
				buckets := make([]uint64, len(keys))
				h.BucketBatch(j, 4096, keys, buckets)
				fb := make([]uint64, len(keys))
				fs := make([]float64, len(keys))
				BucketSignBatch(h, g, j, 4096, keys, fb, fs)
				for i, x := range keys {
					if want := h.Eval(j, x); out[i] != want {
						t.Fatalf("k=%d row %d: EvalBatch[%d] = %#x, Eval = %#x", k, j, i, out[i], want)
					}
					if want := h.Bucket(j, x, 4096); buckets[i] != want || fb[i] != want {
						t.Fatalf("k=%d row %d: buckets[%d] = %d/%d, Bucket = %d", k, j, i, buckets[i], fb[i], want)
					}
					if want := float64(g.Sign(j, x)); fs[i] != want {
						t.Fatalf("k=%d row %d: signs[%d] = %v, Sign = %v", k, j, i, fs[i], want)
					}
				}
			}
		})
	}
}
