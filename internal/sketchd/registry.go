package sketchd

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"

	streamsample "repro"
	"repro/internal/checkpoint"
	"repro/internal/engine"
	"repro/internal/faultinject"
	"repro/internal/stream"
)

// Spec declares a registered sketch: the kind, its construction parameters
// and the shared seed. The spec is the whole distributed contract for one
// sketch — every edge exporter that builds a local sketch from the same
// spec produces a same-seed replica the tier can fold exactly.
//
// Spec is both the create-request JSON body and the on-disk meta.json, so a
// restarted server rebuilds byte-identical zero-state replicas from it
// (sketch construction is a deterministic function of the spec).
type Spec struct {
	// Kind is "l0", "lp" or "hh".
	Kind string `json:"kind"`
	// N is the vector dimension.
	N int `json:"n"`
	// P is the norm exponent (lp, hh).
	P float64 `json:"p,omitempty"`
	// Phi is the heavy-hitter threshold (hh).
	Phi float64 `json:"phi,omitempty"`
	// Eps, Delta tune accuracy/failure probability; zero picks the package
	// defaults.
	Eps   float64 `json:"eps,omitempty"`
	Delta float64 `json:"delta,omitempty"`
	// Seed is the shared construction seed; all exporters for this sketch
	// must use the same one.
	Seed uint64 `json:"seed"`
}

// Build constructs the zero-state sketch the spec describes.
func (sp Spec) Build() (streamsample.Sketch, error) {
	if sp.N < 1 {
		return nil, fmt.Errorf("%w: dimension n must be positive, got %d", errBadSpec, sp.N)
	}
	opts := []streamsample.Option{streamsample.WithSeed(sp.Seed)}
	if sp.Eps > 0 {
		opts = append(opts, streamsample.WithEps(sp.Eps))
	}
	if sp.Delta > 0 {
		opts = append(opts, streamsample.WithDelta(sp.Delta))
	}
	switch sp.Kind {
	case "l0":
		return streamsample.NewL0Sampler(sp.N, opts...), nil
	case "lp":
		p := sp.P
		if p == 0 {
			p = 1
		}
		if !(p > 0 && p < 2) {
			return nil, fmt.Errorf("%w: lp needs p in (0,2), got %g", errBadSpec, p)
		}
		return streamsample.NewLpSampler(p, sp.N, opts...), nil
	case "hh":
		p := sp.P
		if p == 0 {
			p = 1
		}
		phi := sp.Phi
		if phi == 0 {
			phi = 0.1
		}
		if !(p > 0 && p <= 2) || !(phi > 0 && phi < 1) {
			return nil, fmt.Errorf("%w: hh needs p in (0,2] and phi in (0,1), got p=%g phi=%g", errBadSpec, p, phi)
		}
		return streamsample.NewHeavyHitters(p, phi, sp.N, opts...), nil
	default:
		return nil, fmt.Errorf("%w: unknown kind %q (want l0, lp or hh)", errBadSpec, sp.Kind)
	}
}

// errBadSpec marks an unconstructible spec; it surfaces as CodeBadRequest.
var errBadSpec = errors.New("sketchd: invalid sketch spec")

// nameRe bounds tenant and sketch names to one path-safe segment.
var nameRe = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$`)

func validName(s string) bool {
	return nameRe.MatchString(s) && s != "." && s != ".."
}

// RegistryConfig tunes the registry and the per-sketch engines under it.
// The zero value selects production defaults.
type RegistryConfig struct {
	// Dir is the durable root; "" disables persistence entirely (tests,
	// ephemeral tiers): engines run without a checkpoint store and restarts
	// start empty.
	Dir string
	// Shards / BatchSize / QueueDepth configure every sketch's ingestion
	// engine (defaults 4 / 2048 / 8 — a serving tier hosts many sketches, so
	// per-sketch engines stay narrow by default; raise Shards for a
	// single-hot-sketch deployment).
	Shards     int
	BatchSize  int
	QueueDepth int
	// CheckpointEvery is the engine's periodic durable-generation interval
	// in accepted raw updates (default 1<<16).
	CheckpointEvery int
	// UploadCheckpointEvery seals the authoritative fold of pre-sketched
	// uploads into a durable generation every this many uploads (default
	// 64). Uploads between seals survive in memory but not a SIGKILL; the
	// ?durable=1 ingest form forces a seal before acknowledging.
	UploadCheckpointEvery int
	// Leaves / FanIn shape every sketch's hierarchical merge tree (defaults
	// 8 leaves, fan-in 64).
	Leaves int
	FanIn  int
	// Injector drives deterministic fault injection through the engines and
	// checkpoint stores (chaos tests). Nil disables.
	Injector *faultinject.Injector
}

func (c RegistryConfig) withDefaults() RegistryConfig {
	if c.Shards < 1 {
		c.Shards = 4
	}
	if c.BatchSize < 1 {
		c.BatchSize = 2048
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 8
	}
	if c.CheckpointEvery < 1 {
		c.CheckpointEvery = 1 << 16
	}
	if c.UploadCheckpointEvery < 1 {
		c.UploadCheckpointEvery = 64
	}
	if c.Leaves < 1 {
		c.Leaves = 8
	}
	if c.FanIn < 1 {
		c.FanIn = 64
	}
	return c
}

type key struct{ tenant, name string }

// Registry is the multi-tenant sketch registry: the serving tier's state.
// All methods are safe for concurrent use.
type Registry struct {
	cfg     RegistryConfig
	mu      sync.RWMutex
	entries map[key]*entry

	created       atomic.Int64
	deleted       atomic.Int64
	rawUpdates    atomic.Int64
	sketchUploads atomic.Int64
	queries       atomic.Int64
	recovered     atomic.Int64
	quarantined   atomic.Int64
}

// entry is one registered sketch: a sharded ingestion engine for raw
// updates (durably checkpointed), a hierarchical merge tree plus
// authoritative accumulator for pre-sketched uploads (sealed into its own
// generation store), and the spec that reconstructs zero-state replicas.
//
// Engine producer calls are serialized by mu (the engine's contract); the
// merge tree locks internally, so sketch uploads bypass mu entirely except
// at checkpoint seals.
type entry struct {
	tenant, name string
	spec         Spec
	specBytes    []byte // marshaled zero-state sketch: the same-seed replica template

	// delMu orders sketch uploads against deletion: IngestSketch holds it
	// shared across the deleted check, the tree fold and any durable seal,
	// while Delete and drain hold it exclusively to flip deleted — so an
	// upload that was ACKed is guaranteed to have landed before the tree
	// was discarded. Lock order is always delMu before mu.
	delMu   sync.RWMutex
	deleted atomic.Bool

	mu     sync.Mutex
	eng    *engine.Engine[streamsample.Sketch]
	engSt  *checkpoint.Store
	folded streamsample.Sketch // authoritative fold of sketch uploads
	foldSt *checkpoint.Store
	// foldedUploads counts uploads folded into `folded` over its lifetime;
	// foldedSealed is the count covered by the newest foldSt generation.
	foldedUploads int64
	foldedSealed  int64

	tree *MergeTree

	rawUpdates atomic.Int64
	queries    atomic.Int64
}

// tombstoneFile marks an entry directory whose delete was acknowledged but
// whose removal did not finish (crash or RemoveAll failure mid-delete).
// Recovery finishes the removal instead of resurrecting the sketch.
const tombstoneFile = "tombstone"

// OpenRegistry opens (and, when cfg.Dir is set, recovers) the registry.
// Recovery walks the data directory: every tenant/name with a readable
// meta.json is rebuilt — the engine adopts its checkpoint store's last good
// generation plus journal tail (exact, by linearity), and the authoritative
// upload fold reloads from its newest sealed generation. Tombstoned
// directories (interrupted deletes) are removed; an entry that fails to
// rebuild is quarantined under <Dir>/quarantine rather than allowed to keep
// the whole registry — every other tenant's sketches — from opening.
func OpenRegistry(cfg RegistryConfig) (*Registry, error) {
	r := &Registry{cfg: cfg.withDefaults(), entries: make(map[key]*entry)}
	if r.cfg.Dir == "" {
		return r, nil
	}
	if err := os.MkdirAll(r.tenantsDir(), 0o755); err != nil {
		return nil, fmt.Errorf("sketchd: opening registry dir: %w", err)
	}
	tenants, err := os.ReadDir(r.tenantsDir())
	if err != nil {
		return nil, fmt.Errorf("sketchd: scanning registry dir: %w", err)
	}
	for _, t := range tenants {
		if !t.IsDir() || !validName(t.Name()) {
			continue
		}
		names, err := os.ReadDir(filepath.Join(r.tenantsDir(), t.Name()))
		if err != nil {
			return nil, fmt.Errorf("sketchd: scanning tenant %s: %w", t.Name(), err)
		}
		for _, n := range names {
			if !n.IsDir() || !validName(n.Name()) {
				continue
			}
			dir := r.entryDir(t.Name(), n.Name())
			if _, serr := os.Stat(filepath.Join(dir, tombstoneFile)); serr == nil {
				if err := os.RemoveAll(dir); err != nil {
					return nil, fmt.Errorf("sketchd: finishing interrupted delete of %s/%s: %w", t.Name(), n.Name(), err)
				}
				continue
			}
			e, err := r.recoverEntry(t.Name(), n.Name())
			if err != nil {
				if qerr := r.quarantine(t.Name(), n.Name(), err); qerr != nil {
					return nil, fmt.Errorf("sketchd: recovering %s/%s: %v (quarantine also failed: %w)", t.Name(), n.Name(), err, qerr)
				}
				r.quarantined.Add(1)
				continue
			}
			r.entries[key{t.Name(), n.Name()}] = e
			r.recovered.Add(1)
		}
	}
	return r, nil
}

func (r *Registry) tenantsDir() string { return filepath.Join(r.cfg.Dir, "tenants") }

func (r *Registry) entryDir(tenant, name string) string {
	return filepath.Join(r.tenantsDir(), tenant, name)
}

// quarantine moves an unrecoverable entry directory out of the tenants tree
// (to <Dir>/quarantine/<tenant>/<name>, suffixed if occupied) so the rest
// of the registry still opens. The cause lands in a QUARANTINE file next to
// the moved state for the operator; nothing is deleted.
func (r *Registry) quarantine(tenant, name string, cause error) error {
	dst := filepath.Join(r.cfg.Dir, "quarantine", tenant)
	if err := os.MkdirAll(dst, 0o755); err != nil {
		return err
	}
	target := filepath.Join(dst, name)
	for i := 1; ; i++ {
		if _, err := os.Stat(target); errors.Is(err, fs.ErrNotExist) {
			break
		}
		target = filepath.Join(dst, fmt.Sprintf("%s.%d", name, i))
	}
	if err := os.Rename(r.entryDir(tenant, name), target); err != nil {
		return err
	}
	//nolint:errcheck // the reason file is best-effort operator breadcrumb
	_ = os.WriteFile(filepath.Join(target, "QUARANTINE"), []byte(cause.Error()+"\n"), 0o644)
	return nil
}

// newEntry wires one sketch's engine, merge tree and (when durable) stores.
// The spec must already be validated; adopt=true lets the engine take over
// pre-existing store state.
func (r *Registry) newEntry(tenant, name string, spec Spec) (*entry, error) {
	zero, err := spec.Build()
	if err != nil {
		return nil, err
	}
	specBytes, err := zero.MarshalBinary()
	if err != nil {
		return nil, fmt.Errorf("sketchd: marshaling spec template: %w", err)
	}
	// The factory reconstructs a zero-state same-seed replica from the spec
	// bytes alone. Load is pure, so it is safe for the engine's concurrent
	// respawn path; failure is impossible for bytes we produced ourselves,
	// and a panic here would be quarantined by the engine's supervisor.
	factory := func(int) streamsample.Sketch {
		s, err := streamsample.Load(specBytes)
		if err != nil {
			panic(fmt.Errorf("sketchd: spec template no longer loads: %w", err))
		}
		return s
	}
	e := &entry{
		tenant:    tenant,
		name:      name,
		spec:      spec,
		specBytes: specBytes,
		eng: engine.New(engine.Config{
			Shards:          r.cfg.Shards,
			BatchSize:       r.cfg.BatchSize,
			QueueDepth:      r.cfg.QueueDepth,
			CheckpointEvery: r.cfg.CheckpointEvery,
			Injector:        r.cfg.Injector,
		}, factory, mergeSketch),
	}
	e.tree = NewMergeTree(r.cfg.Leaves, r.cfg.FanIn, func() (streamsample.Sketch, error) {
		return streamsample.Load(specBytes)
	})
	if r.cfg.Dir == "" {
		e.folded = factory(0)
		return e, nil
	}
	dir := r.entryDir(tenant, name)
	engSt, err := checkpoint.Open(filepath.Join(dir, "engine"), checkpoint.Options{Injector: r.cfg.Injector})
	if err != nil {
		e.eng.Close()
		return nil, err
	}
	// CheckpointTo adopts any pre-existing store state (last good generation
	// + journal tail) before sealing a fresh generation — this is the whole
	// crash-recovery path for raw updates.
	if err := e.eng.CheckpointTo(engSt, marshalSketch, restoreSketch); err != nil {
		e.eng.Close()
		engSt.Close()
		return nil, err
	}
	foldSt, err := checkpoint.Open(filepath.Join(dir, "merged"), checkpoint.Options{Injector: r.cfg.Injector})
	if err != nil {
		e.eng.Close()
		engSt.Close()
		return nil, err
	}
	e.engSt, e.foldSt = engSt, foldSt
	rec, err := foldSt.Latest()
	switch {
	case err == nil && len(rec.States) >= 1:
		folded, lerr := streamsample.Load(rec.States[0])
		if lerr != nil {
			e.eng.Close()
			engSt.Close()
			foldSt.Close()
			return nil, fmt.Errorf("sketchd: reloading sealed upload fold: %w", lerr)
		}
		e.folded = folded
		if len(rec.States) >= 2 && len(rec.States[1]) == 8 {
			e.foldedUploads = int64(leU64(rec.States[1]))
			e.foldedSealed = e.foldedUploads
		}
	case err == nil, errors.Is(err, checkpoint.ErrNoCheckpoint):
		e.folded = factory(0)
	default:
		e.eng.Close()
		engSt.Close()
		foldSt.Close()
		return nil, fmt.Errorf("sketchd: recovering sealed upload fold: %w", err)
	}
	return e, nil
}

func (r *Registry) recoverEntry(tenant, name string) (*entry, error) {
	metaPath := filepath.Join(r.entryDir(tenant, name), "meta.json")
	data, err := os.ReadFile(metaPath)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, fmt.Errorf("sketchd: %s has no meta.json (half-created sketch?): %w", r.entryDir(tenant, name), err)
		}
		return nil, err
	}
	var spec Spec
	if err := json.Unmarshal(data, &spec); err != nil {
		return nil, fmt.Errorf("sketchd: parsing %s: %w", metaPath, err)
	}
	return r.newEntry(tenant, name, spec)
}

// Create registers a new sketch. The spec is validated by actually building
// the zero-state template BEFORE anything durable happens — a rejected
// create must leave zero trace on disk, or the dangling meta.json would
// poison every future recovery. The meta.json then lands via write-temp +
// rename so a crash mid-create never leaves a readable-but-wrong spec, and
// any later wiring failure removes the half-created directory again.
func (r *Registry) Create(tenant, name string, spec Spec) error {
	if !validName(tenant) || !validName(name) {
		return fmt.Errorf("%w: tenant and name must match %s", errBadSpec, nameRe)
	}
	if _, err := spec.Build(); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	k := key{tenant, name}
	if _, ok := r.entries[k]; ok {
		return fmt.Errorf("%w: %s/%s", ErrExists, tenant, name)
	}
	dir := ""
	if r.cfg.Dir != "" {
		dir = r.entryDir(tenant, name)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("sketchd: creating %s: %w", dir, err)
		}
		meta, err := json.Marshal(spec)
		if err != nil {
			return err
		}
		tmp := filepath.Join(dir, "meta.json.tmp")
		if err := os.WriteFile(tmp, meta, 0o644); err != nil {
			return err
		}
		if err := os.Rename(tmp, filepath.Join(dir, "meta.json")); err != nil {
			return err
		}
	}
	e, err := r.newEntry(tenant, name, spec)
	if err != nil {
		if dir != "" {
			//nolint:errcheck // best-effort cleanup; recovery quarantines leftovers
			_ = os.RemoveAll(dir)
		}
		return err
	}
	r.entries[k] = e
	r.created.Add(1)
	return nil
}

// Get resolves a registered sketch. An entry mid-delete (or stuck because
// its durable removal failed) is already unreachable: not found.
func (r *Registry) Get(tenant, name string) (*entry, error) {
	r.mu.RLock()
	e, ok := r.entries[key{tenant, name}]
	r.mu.RUnlock()
	if !ok || e.deleted.Load() {
		return nil, fmt.Errorf("%w: %s/%s", ErrNotFound, tenant, name)
	}
	return e, nil
}

// Delete unregisters a sketch, closes its engine and stores and removes its
// durable directory. Ordering matters: the durable state is tombstoned and
// removed BEFORE the key is unregistered, so a failed removal leaves the
// entry registered-but-dead (operations 404, Create refuses, a client retry
// reaches the removal again) instead of silently resurrecting the sketch
// from the orphaned directory at the next restart; a crash in between is
// finished by recovery via the tombstone.
func (r *Registry) Delete(tenant, name string) error {
	r.mu.RLock()
	k := key{tenant, name}
	e, ok := r.entries[k]
	r.mu.RUnlock()
	if !ok || e.deleted.Load() {
		return fmt.Errorf("%w: %s/%s", ErrNotFound, tenant, name)
	}
	// Flip the flag under delMu held exclusively: every in-flight upload
	// (holding it shared) lands or fails first, and every later one sees
	// deleted. Then close the engine and stores under mu.
	e.delMu.Lock()
	already := e.deleted.Swap(true)
	e.delMu.Unlock()
	if !already {
		e.mu.Lock()
		e.eng.Close()
		if e.engSt != nil {
			e.engSt.Close()
		}
		if e.foldSt != nil {
			e.foldSt.Close()
		}
		e.mu.Unlock()
	}
	if r.cfg.Dir != "" {
		dir := r.entryDir(tenant, name)
		if err := os.WriteFile(filepath.Join(dir, tombstoneFile), nil, 0o644); err != nil && !errors.Is(err, fs.ErrNotExist) {
			return fmt.Errorf("sketchd: tombstoning %s/%s: %w", tenant, name, err)
		}
		if err := os.RemoveAll(dir); err != nil {
			return fmt.Errorf("sketchd: removing %s/%s state: %w", tenant, name, err)
		}
	}
	r.mu.Lock()
	if cur, ok := r.entries[k]; ok && cur == e {
		delete(r.entries, k)
		r.deleted.Add(1)
	}
	r.mu.Unlock()
	return nil
}

// Drain checkpoints and closes every entry — the SIGTERM path. After a
// clean Drain, a restart recovers every sketch byte-identically.
func (r *Registry) Drain() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	var firstErr error
	for _, e := range r.entries {
		if err := e.drain(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// List snapshots the registered keys in stable order.
func (r *Registry) List() []SketchInfo {
	r.mu.RLock()
	infos := make([]SketchInfo, 0, len(r.entries))
	for _, e := range r.entries {
		if e.deleted.Load() {
			continue
		}
		infos = append(infos, e.info())
	}
	r.mu.RUnlock()
	sort.Slice(infos, func(i, j int) bool {
		if infos[i].Tenant != infos[j].Tenant {
			return infos[i].Tenant < infos[j].Tenant
		}
		return infos[i].Name < infos[j].Name
	})
	return infos
}

// ---------------------------------------------------------------------------
// entry operations
// ---------------------------------------------------------------------------

func mergeSketch(dst, src streamsample.Sketch) error { return dst.Merge(src) }
func marshalSketch(s streamsample.Sketch) ([]byte, error) {
	return s.MarshalBinary()
}
func restoreSketch(s streamsample.Sketch, b []byte) error { return s.UnmarshalBinary(b) }

func leU64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}

func appendLeU64(v uint64) []byte {
	b := make([]byte, 8)
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
	return b
}

// IngestRaw feeds one validated update batch through the sketch's sharded
// engine (journaled write-ahead when durable). If journaling broke, the
// entry tries to heal itself with an immediate checkpoint — a fresh sealed
// generation re-establishes durability — and reports ErrNotDurable only
// when that fails; the in-memory state is exact either way.
func (e *entry) IngestRaw(batch []stream.Update) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.deleted.Load() {
		return fmt.Errorf("%w: %s/%s", ErrNotFound, e.tenant, e.name)
	}
	e.eng.ProcessBatch(batch)
	e.rawUpdates.Add(int64(len(batch)))
	if e.engSt == nil {
		return nil
	}
	if derr := e.eng.DurabilityErr(); derr != nil {
		if ckErr := e.eng.CheckpointNow(); ckErr != nil {
			return fmt.Errorf("%w: %v (heal attempt: %v)", ErrNotDurable, derr, ckErr)
		}
	}
	return nil
}

// IngestSketch folds one uploaded serialized sketch through the merge tree.
// durable forces an immediate checkpoint seal before returning; otherwise
// uploads become durable at the next periodic seal (every
// UploadCheckpointEvery uploads, on /checkpoint, on drain). The returned
// sealed flag reports whether a DURABLE seal actually happened — false on a
// registry without a durable dir even when durable was requested, so the
// acknowledgement never falsely implies the upload survives SIGKILL.
//
// The whole call holds delMu shared: the deleted check, the tree fold and
// the seal form one unit that either completes before a concurrent Delete
// flips the flag, or observes it and refuses — an ACKed upload can never
// land in a discarded tree, and a durable upload can never be accepted and
// then 404 on its own seal.
func (e *entry) IngestSketch(data []byte, durable bool, every int) (sealed bool, err error) {
	s, err := streamsample.Load(data)
	if err != nil {
		return false, err
	}
	e.delMu.RLock()
	defer e.delMu.RUnlock()
	if e.deleted.Load() {
		return false, fmt.Errorf("%w: %s/%s", ErrNotFound, e.tenant, e.name)
	}
	if err := e.tree.Add(s); err != nil {
		return false, err
	}
	if durable || e.tree.Pending() >= int64(every) {
		if err := e.Checkpoint(); err != nil {
			return false, err
		}
		return e.durableBacked(), nil
	}
	return false, nil
}

// durableBacked reports whether the entry has durable stores behind it
// (set once at construction, so reading without e.mu is safe).
func (e *entry) durableBacked() bool { return e.foldSt != nil }

// Checkpoint seals everything the entry has accepted: the merge tree
// flushes into the authoritative fold, the fold is sealed into its
// generation store, and the engine writes a durable generation (rotating
// its journal).
func (e *entry) Checkpoint() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.deleted.Load() {
		return fmt.Errorf("%w: %s/%s", ErrNotFound, e.tenant, e.name)
	}
	return e.checkpointLocked()
}

func (e *entry) checkpointLocked() error {
	flushed, err := e.tree.FlushInto(e.folded)
	if err != nil {
		return err
	}
	e.foldedUploads += flushed
	if e.foldSt != nil && e.foldedUploads != e.foldedSealed {
		blob, err := e.folded.MarshalBinary()
		if err != nil {
			return fmt.Errorf("sketchd: marshaling upload fold: %w", err)
		}
		if _, err := e.foldSt.Save([][]byte{blob, appendLeU64(uint64(e.foldedUploads))}); err != nil {
			return fmt.Errorf("%w: sealing upload fold: %v", ErrNotDurable, err)
		}
		e.foldedSealed = e.foldedUploads
	}
	if e.engSt != nil {
		if err := e.eng.CheckpointNow(); err != nil {
			return err
		}
	}
	return nil
}

// drain checkpoints and closes the entry (registry shutdown). The flag
// flips under delMu like Delete, so in-flight uploads either make the final
// checkpoint or were refused.
func (e *entry) drain() error {
	e.delMu.Lock()
	already := e.deleted.Swap(true)
	e.delMu.Unlock()
	if already {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	err := e.checkpointLocked()
	e.eng.Close()
	if e.engSt != nil {
		e.engSt.Close()
	}
	if e.foldSt != nil {
		e.foldSt.Close()
	}
	return err
}

// Merged materializes the sketch of everything ingested so far: the
// engine's replicas are snapshotted (a quiesce barrier, ingestion
// continues afterwards), loaded and folded together with the authoritative
// upload fold. The result is a detached sketch the caller owns.
func (e *entry) Merged() (streamsample.Sketch, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.deleted.Load() {
		return nil, fmt.Errorf("%w: %s/%s", ErrNotFound, e.tenant, e.name)
	}
	blobs, err := e.eng.Snapshot(marshalSketch)
	if err != nil {
		return nil, err
	}
	merged, err := streamsample.Load(blobs[0])
	if err != nil {
		return nil, err
	}
	for _, blob := range blobs[1:] {
		s, err := streamsample.Load(blob)
		if err != nil {
			return nil, err
		}
		if err := merged.Merge(s); err != nil {
			return nil, err
		}
	}
	flushed, err := e.tree.FlushInto(e.folded)
	if err != nil {
		return nil, err
	}
	e.foldedUploads += flushed
	if err := merged.Merge(e.folded); err != nil {
		return nil, err
	}
	e.queries.Add(1)
	return merged, nil
}

// SketchInfo is the public description of one registered sketch.
type SketchInfo struct {
	Tenant    string `json:"tenant"`
	Name      string `json:"name"`
	Spec      Spec   `json:"spec"`
	SpecBytes int    `json:"spec_bytes"`
}

func (e *entry) info() SketchInfo {
	return SketchInfo{Tenant: e.tenant, Name: e.name, Spec: e.spec, SpecBytes: len(e.specBytes)}
}

// SketchStats is the per-sketch /statsz block: the engine's operational
// counters (routed/spilled/steals/panics/recoveries/checkpoints/generation),
// the merge tree's fold counters, and the durable-upload frontier.
type SketchStats struct {
	Tenant        string         `json:"tenant"`
	Name          string         `json:"name"`
	Kind          string         `json:"kind"`
	N             int            `json:"n"`
	Engine        engine.Stats   `json:"engine"`
	MergeTree     MergeTreeStats `json:"merge_tree"`
	RawUpdates    int64          `json:"raw_updates"`
	Queries       int64          `json:"queries"`
	SealedUploads int64          `json:"sealed_uploads"`
	FoldedUploads int64          `json:"folded_uploads"`
	Durability    string         `json:"durability_error,omitempty"`
}

func (e *entry) stats() SketchStats {
	st := SketchStats{
		Tenant:     e.tenant,
		Name:       e.name,
		Kind:       e.spec.Kind,
		N:          e.spec.N,
		MergeTree:  e.tree.Stats(),
		RawUpdates: e.rawUpdates.Load(),
		Queries:    e.queries.Load(),
	}
	e.mu.Lock()
	if !e.deleted.Load() {
		st.Engine = e.eng.Stats()
		if derr := e.eng.DurabilityErr(); derr != nil {
			st.Durability = derr.Error()
		}
	}
	st.SealedUploads = e.foldedSealed
	st.FoldedUploads = e.foldedUploads
	e.mu.Unlock()
	return st
}

// RegistryStats is the registry-level /statsz block.
type RegistryStats struct {
	Sketches      int   `json:"sketches"`
	Created       int64 `json:"created"`
	Deleted       int64 `json:"deleted"`
	Recovered     int64 `json:"recovered"`
	Quarantined   int64 `json:"quarantined"`
	RawUpdates    int64 `json:"raw_updates"`
	SketchUploads int64 `json:"sketch_uploads"`
	Queries       int64 `json:"queries"`
}

// Statsz snapshots the whole observability surface.
func (r *Registry) Statsz() (RegistryStats, []SketchStats) {
	r.mu.RLock()
	entries := make([]*entry, 0, len(r.entries))
	for _, e := range r.entries {
		entries = append(entries, e)
	}
	n := len(r.entries)
	r.mu.RUnlock()
	per := make([]SketchStats, 0, len(entries))
	for _, e := range entries {
		per = append(per, e.stats())
	}
	sort.Slice(per, func(i, j int) bool {
		if per[i].Tenant != per[j].Tenant {
			return per[i].Tenant < per[j].Tenant
		}
		return per[i].Name < per[j].Name
	})
	return RegistryStats{
		Sketches:      n,
		Created:       r.created.Load(),
		Deleted:       r.deleted.Load(),
		Recovered:     r.recovered.Load(),
		Quarantined:   r.quarantined.Load(),
		RawUpdates:    r.rawUpdates.Load(),
		SketchUploads: r.sketchUploads.Load(),
		Queries:       r.queries.Load(),
	}, per
}
