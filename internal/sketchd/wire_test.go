package sketchd

import (
	"bytes"
	"errors"
	"io"
	"math/rand/v2"
	"testing"

	"repro/internal/codec"
	"repro/internal/stream"
)

func TestNegotiateGreen(t *testing.T) {
	cases := []struct {
		offer string
		want  uint16
	}{
		{"1", 1},
		{"", 1},      // bare v1 client, no header
		{"  1  ", 1}, // whitespace tolerated
		{"1,2,3", 1}, // picks the highest COMMON, which is 1
		{"3, 1", 1},  // order irrelevant
		{"1,1,1", 1}, // duplicates tolerated
		{"65535,1", 1},
	}
	for _, c := range cases {
		got, err := Negotiate(c.offer)
		if err != nil {
			t.Errorf("Negotiate(%q) failed: %v", c.offer, err)
			continue
		}
		if got != c.want {
			t.Errorf("Negotiate(%q) = %d, want %d", c.offer, got, c.want)
		}
	}
}

func TestNegotiateRed(t *testing.T) {
	for _, offer := range []string{"2", "3,4", "0", "-1", "abc", "1x", "99999999", ","} {
		_, err := Negotiate(offer)
		if err == nil {
			t.Errorf("Negotiate(%q) succeeded, want rejection", offer)
			continue
		}
		if !errors.Is(err, ErrVersionNegotiation) {
			t.Errorf("Negotiate(%q) error %v is not ErrVersionNegotiation", offer, err)
		}
		// The typed chain must reach the codec taxonomy too.
		if !errors.Is(err, codec.ErrBadVersion) {
			t.Errorf("Negotiate(%q) error %v does not wrap codec.ErrBadVersion", offer, err)
		}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	r := rand.New(rand.NewPCG(7, 7))
	var wire []byte
	var want [][]stream.Update
	for f := 0; f < 20; f++ {
		batch := make([]stream.Update, r.IntN(100)+1)
		for i := range batch {
			batch[i] = stream.Update{Index: r.IntN(1 << 20), Delta: r.Int64N(2001) - 1000}
		}
		want = append(want, batch)
		wire = AppendFrame(wire, batch)
	}
	fr := NewFrameReader(bytes.NewReader(wire), 0)
	for f := 0; ; f++ {
		batch, err := fr.Next()
		if err == io.EOF {
			if f != len(want) {
				t.Fatalf("stream ended after %d frames, want %d", f, len(want))
			}
			break
		}
		if err != nil {
			t.Fatalf("frame %d: %v", f, err)
		}
		if len(batch) != len(want[f]) {
			t.Fatalf("frame %d: %d updates, want %d", f, len(batch), len(want[f]))
		}
		for i := range batch {
			if batch[i] != want[f][i] {
				t.Fatalf("frame %d update %d: %+v != %+v", f, i, batch[i], want[f][i])
			}
		}
	}
}

func TestFrameReaderTruncation(t *testing.T) {
	wire := AppendFrame(nil, []stream.Update{{Index: 1, Delta: 2}, {Index: 3, Delta: -4}})
	// Cutting the stream at every possible byte offset inside the frame must
	// yield a typed truncation error, never a panic or silent success.
	for cut := 1; cut < len(wire); cut++ {
		fr := NewFrameReader(bytes.NewReader(wire[:cut]), 0)
		_, err := fr.Next()
		if err == nil {
			t.Fatalf("cut at %d/%d accepted", cut, len(wire))
		}
		if !errors.Is(err, codec.ErrTruncated) {
			t.Fatalf("cut at %d: err %v is not codec.ErrTruncated", cut, err)
		}
	}
}

func TestFrameReaderCorruption(t *testing.T) {
	wire := AppendFrame(nil, []stream.Update{{Index: 1, Delta: 2}, {Index: 3, Delta: -4}})
	// Flip one payload byte: the fingerprint must catch it.
	corrupt := bytes.Clone(wire)
	corrupt[len(corrupt)-1] ^= 0xFF
	if _, err := NewFrameReader(bytes.NewReader(corrupt), 0).Next(); !errors.Is(err, codec.ErrBadRecord) {
		t.Fatalf("payload corruption err = %v, want codec.ErrBadRecord", err)
	}
	// An oversized length prefix must be refused before any allocation.
	huge := bytes.Clone(wire)
	huge[0], huge[1], huge[2], huge[3] = 0xFF, 0xFF, 0xFF, 0x7F
	if _, err := NewFrameReader(bytes.NewReader(huge), 0).Next(); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("oversized frame err = %v, want ErrBadFrame", err)
	}
}

func TestFrameIndexBound(t *testing.T) {
	wire := AppendFrame(nil, []stream.Update{{Index: 100, Delta: 1}})
	if _, err := NewFrameReader(bytes.NewReader(wire), 101).Next(); err != nil {
		t.Fatalf("in-bound index rejected: %v", err)
	}
	if _, err := NewFrameReader(bytes.NewReader(wire), 100).Next(); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("out-of-bound index err = %v, want ErrBadFrame", err)
	}
	neg := AppendFrame(nil, []stream.Update{{Index: -1, Delta: 1}})
	if _, err := NewFrameReader(bytes.NewReader(neg), 0).Next(); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("negative index err = %v, want ErrBadFrame", err)
	}
}

func TestDecodeFramePayloadRagged(t *testing.T) {
	if _, err := DecodeFramePayload(make([]byte, 17), 0); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("ragged payload err = %v, want ErrBadFrame", err)
	}
}
