package sketchd

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"repro/internal/codec"
	"repro/internal/engine"
)

// Registry-level sentinels. Together with the codec merge/decode sentinels
// and engine.PartialResultError these are the whole error vocabulary that
// crosses the wire.
var (
	// ErrNotFound means the {tenant, name} pair is not registered.
	ErrNotFound = errors.New("sketchd: sketch not found")
	// ErrExists means Create hit an already-registered {tenant, name}.
	ErrExists = errors.New("sketchd: sketch already exists")
	// ErrPartialResult is the client-side identity for a server answer
	// degraded by quarantined engine shards (the wire projection of
	// engine.PartialResultError). Retryable: the server heals itself from
	// its checkpoint store at the next quiesce barrier.
	ErrPartialResult = errors.New("sketchd: partial result (server lost replicas and has not yet recovered)")
	// ErrNotDurable means the server accepted the request but could not make
	// it durable (journal append or checkpoint failure) and self-heal
	// failed. The in-memory result is still exact.
	ErrNotDurable = errors.New("sketchd: accepted but not durable")
)

// Code is the stable machine-readable error code carried in the JSON error
// envelope. Codes are wire contract: never rename, only append.
type Code string

const (
	CodeBadRequest         Code = "bad_request"
	CodeBadFrame           Code = "bad_frame"
	CodeBadSketchBytes     Code = "bad_sketch_bytes"
	CodeNotFound           Code = "not_found"
	CodeAlreadyExists      Code = "already_exists"
	CodeSeedMismatch       Code = "seed_mismatch"
	CodeConfigMismatch     Code = "config_mismatch"
	CodeNilMerge           Code = "nil_merge"
	CodeUnsupportedVersion Code = "unsupported_wire_version"
	CodePartialResult      Code = "partial_result"
	CodeNotDurable         Code = "not_durable"
	CodeUnavailable        Code = "unavailable"
	CodeInternal           Code = "internal"
)

// Error is the typed, structured error of the serving tier: what the server
// serializes into the JSON envelope and what the client reconstructs from
// it. Unwrap maps the code back onto the repository's sentinel taxonomy, so
// errors.Is(err, streamsample.ErrSeedMismatch) holds on both sides of the
// wire.
type Error struct {
	Code      Code   `json:"code"`
	Message   string `json:"message"`
	Retryable bool   `json:"retryable"`
	status    int
}

func (e *Error) Error() string {
	return fmt.Sprintf("sketchd: %s: %s", e.Code, e.Message)
}

// HTTPStatus reports the status the envelope travels under.
func (e *Error) HTTPStatus() int {
	if e.status != 0 {
		return e.status
	}
	return statusFor(e.Code)
}

// Unwrap projects the wire code back onto the sentinel it encodes.
func (e *Error) Unwrap() error {
	switch e.Code {
	case CodeSeedMismatch:
		return codec.ErrSeedMismatch
	case CodeConfigMismatch:
		return codec.ErrConfigMismatch
	case CodeNilMerge:
		return codec.ErrNilMerge
	case CodeNotFound:
		return ErrNotFound
	case CodeAlreadyExists:
		return ErrExists
	case CodeUnsupportedVersion:
		return ErrVersionNegotiation
	case CodePartialResult:
		return ErrPartialResult
	case CodeNotDurable:
		return ErrNotDurable
	case CodeBadFrame:
		return ErrBadFrame
	default:
		return nil
	}
}

// statusFor is the canonical code → HTTP status mapping.
func statusFor(c Code) int {
	switch c {
	case CodeBadRequest, CodeBadFrame, CodeBadSketchBytes, CodeNilMerge:
		return http.StatusBadRequest
	case CodeNotFound:
		return http.StatusNotFound
	case CodeAlreadyExists, CodeSeedMismatch, CodeConfigMismatch:
		return http.StatusConflict
	case CodeUnsupportedVersion:
		return http.StatusUpgradeRequired
	case CodePartialResult, CodeUnavailable:
		return http.StatusServiceUnavailable
	case CodeNotDurable:
		return http.StatusInsufficientStorage
	default:
		return http.StatusInternalServerError
	}
}

// Classify folds any error of the serving paths onto its wire Error:
// the typed sentinel taxonomy of the codec, engine, and registry layers
// each get their stable code and status; anything unrecognized is an
// opaque 500 — but every KNOWN failure mode crosses the wire structured,
// never as an opaque string match.
func Classify(err error) *Error {
	var se *Error
	if errors.As(err, &se) {
		return se
	}
	code := CodeInternal
	retryable := false
	var pre *engine.PartialResultError
	switch {
	case errors.Is(err, ErrNotFound):
		code = CodeNotFound
	case errors.Is(err, ErrExists):
		code = CodeAlreadyExists
	case errors.Is(err, ErrVersionNegotiation):
		code = CodeUnsupportedVersion
	case errors.Is(err, codec.ErrSeedMismatch):
		code = CodeSeedMismatch
	case errors.Is(err, codec.ErrConfigMismatch):
		code = CodeConfigMismatch
	case errors.Is(err, codec.ErrNilMerge):
		code = CodeNilMerge
	case errors.As(err, &pre):
		code, retryable = CodePartialResult, true
	case errors.Is(err, ErrNotDurable):
		code = CodeNotDurable
	case errors.Is(err, ErrBadFrame):
		code = CodeBadFrame
	case errors.Is(err, codec.ErrBadMagic), errors.Is(err, codec.ErrBadVersion),
		errors.Is(err, codec.ErrBadKind), errors.Is(err, codec.ErrBadConfig),
		errors.Is(err, codec.ErrBadFingerprint), errors.Is(err, codec.ErrTruncated),
		errors.Is(err, codec.ErrTrailingData), errors.Is(err, codec.ErrBadRecord):
		code = CodeBadSketchBytes
	}
	return &Error{Code: code, Message: err.Error(), Retryable: retryable, status: statusFor(code)}
}

// envelope is the JSON error body: {"error": {code, message, retryable}}.
type envelope struct {
	Error *Error `json:"error"`
}

// writeError serializes err as the envelope under its mapped status.
func writeError(w http.ResponseWriter, err error) {
	se := Classify(err)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(se.HTTPStatus())
	//nolint:errcheck // the response write has no further error channel
	_ = json.NewEncoder(w).Encode(envelope{Error: se})
}

// decodeError rebuilds the typed error from a non-2xx response. A body that
// is not a valid envelope (a proxy error page, a crash) degrades to a
// generic Error whose retryability follows the status class, so the
// client's retry loop still behaves.
func decodeError(status int, body io.Reader) error {
	data, _ := io.ReadAll(io.LimitReader(body, 64<<10))
	var env envelope
	if err := json.Unmarshal(data, &env); err == nil && env.Error != nil && env.Error.Code != "" {
		env.Error.status = status
		return env.Error
	}
	return &Error{
		Code:      CodeInternal,
		Message:   fmt.Sprintf("HTTP %d: %s", status, truncate(string(data), 200)),
		Retryable: status >= 500,
		status:    status,
	}
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
