package sketchd

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	streamsample "repro"
)

// Server is the HTTP face of the registry. It is an http.Handler; wiring it
// to a listener, TLS, timeouts and shutdown is the caller's business
// (cmd/sketchd wires the production shape).
//
// Endpoint surface (all bodies JSON unless noted):
//
//	PUT    /v1/tenants/{tenant}/sketches/{name}             create (body: Spec)
//	GET    /v1/tenants/{tenant}/sketches/{name}             spec + info
//	DELETE /v1/tenants/{tenant}/sketches/{name}             delete + wipe state
//	POST   /v1/tenants/{tenant}/sketches/{name}/updates     raw-update frames (codec records, streamed)
//	POST   /v1/tenants/{tenant}/sketches/{name}/sketches    one serialized sketch (?durable=1 seals first)
//	GET    /v1/tenants/{tenant}/sketches/{name}/sample      draw the sample / heavy-hitter report
//	GET    /v1/tenants/{tenant}/sketches/{name}/bytes       merged sketch, wire format (octet-stream)
//	POST   /v1/tenants/{tenant}/sketches/{name}/checkpoint  force a durable seal
//	GET    /v1/sketches                                     list registered sketches
//	GET    /v1/negotiate                                    wire-version negotiation probe
//	GET    /statsz                                          registry + per-sketch engine stats
//	GET    /healthz                                         liveness
//
// The ingest and byte-shipping endpoints negotiate the wire format: the
// client's X-Sketch-Wire-Versions offer resolves against
// SupportedWireVersions and the chosen version is echoed in
// X-Sketch-Wire-Version, or the request dies with the typed 426 envelope.
type Server struct {
	reg *Registry
	mux *http.ServeMux
}

// NewServer wraps a registry in its HTTP surface.
func NewServer(reg *Registry) *Server {
	s := &Server{reg: reg, mux: http.NewServeMux()}
	s.mux.HandleFunc("PUT /v1/tenants/{tenant}/sketches/{name}", s.handleCreate)
	s.mux.HandleFunc("GET /v1/tenants/{tenant}/sketches/{name}", s.handleInfo)
	s.mux.HandleFunc("DELETE /v1/tenants/{tenant}/sketches/{name}", s.handleDelete)
	s.mux.HandleFunc("POST /v1/tenants/{tenant}/sketches/{name}/updates", s.handleUpdates)
	s.mux.HandleFunc("POST /v1/tenants/{tenant}/sketches/{name}/sketches", s.handleSketchUpload)
	s.mux.HandleFunc("GET /v1/tenants/{tenant}/sketches/{name}/sample", s.handleSample)
	s.mux.HandleFunc("GET /v1/tenants/{tenant}/sketches/{name}/bytes", s.handleBytes)
	s.mux.HandleFunc("POST /v1/tenants/{tenant}/sketches/{name}/checkpoint", s.handleCheckpoint)
	s.mux.HandleFunc("GET /v1/sketches", s.handleList)
	s.mux.HandleFunc("GET /v1/negotiate", s.handleNegotiate)
	s.mux.HandleFunc("GET /statsz", s.handleStatsz)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Registry exposes the underlying registry (cmd/sketchd drains it on
// SIGTERM).
func (s *Server) Registry() *Registry { return s.reg }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	//nolint:errcheck // the response write has no further error channel
	_ = json.NewEncoder(w).Encode(v)
}

// negotiate resolves the request's wire-version offer, stamps the chosen
// version on the response, and reports whether the request may proceed.
func (s *Server) negotiate(w http.ResponseWriter, r *http.Request) (uint16, bool) {
	v, err := Negotiate(r.Header.Get(HeaderWireVersions))
	if err != nil {
		writeError(w, err)
		return 0, false
	}
	w.Header().Set(HeaderWireVersion, strconv.Itoa(int(v)))
	return v, true
}

func (s *Server) entry(w http.ResponseWriter, r *http.Request) (*entry, bool) {
	e, err := s.reg.Get(r.PathValue("tenant"), r.PathValue("name"))
	if err != nil {
		writeError(w, err)
		return nil, false
	}
	return e, true
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&spec); err != nil {
		writeError(w, &Error{Code: CodeBadRequest, Message: fmt.Sprintf("parsing spec body: %v", err)})
		return
	}
	if err := s.reg.Create(r.PathValue("tenant"), r.PathValue("name"), spec); err != nil {
		if errors.Is(err, errBadSpec) {
			writeError(w, &Error{Code: CodeBadRequest, Message: err.Error()})
			return
		}
		writeError(w, err)
		return
	}
	w.WriteHeader(http.StatusCreated)
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	e, ok := s.entry(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, e.info())
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if err := s.reg.Delete(r.PathValue("tenant"), r.PathValue("name")); err != nil {
		writeError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleUpdates streams raw-update frames off the request body into the
// sketch's engine. The response reports how much was accepted; any frame
// error aborts the stream with a typed envelope — but frames already
// accepted stay accepted (and journaled), which the response's counters
// make visible so a retrying client can reason about what landed.
func (s *Server) handleUpdates(w http.ResponseWriter, r *http.Request) {
	if _, ok := s.negotiate(w, r); !ok {
		return
	}
	e, ok := s.entry(w, r)
	if !ok {
		return
	}
	fr := NewFrameReader(r.Body, e.spec.N)
	var frames, updates int64
	for {
		batch, err := fr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			writeError(w, err)
			return
		}
		if len(batch) == 0 {
			continue
		}
		if err := e.IngestRaw(batch); err != nil {
			writeError(w, err)
			return
		}
		frames++
		updates += int64(len(batch))
		// Per accepted batch, alongside the per-entry counter — a stream
		// that dies mid-request must leave registry and per-sketch
		// raw_updates in agreement on /statsz.
		s.reg.rawUpdates.Add(int64(len(batch)))
	}
	writeJSON(w, http.StatusOK, map[string]int64{"frames": frames, "updates": updates})
}

// handleSketchUpload folds one serialized sketch through the merge tree.
// ?durable=1 forces a checkpoint seal before the 200. The response's
// "sealed" field reports whether a durable seal actually happened: on a
// registry without a durable dir the seal is a no-op, and the ACK must not
// imply the upload survives SIGKILL when it doesn't.
func (s *Server) handleSketchUpload(w http.ResponseWriter, r *http.Request) {
	if _, ok := s.negotiate(w, r); !ok {
		return
	}
	e, ok := s.entry(w, r)
	if !ok {
		return
	}
	data, err := io.ReadAll(io.LimitReader(r.Body, 1<<30))
	if err != nil {
		writeError(w, &Error{Code: CodeBadRequest, Message: fmt.Sprintf("reading sketch body: %v", err)})
		return
	}
	durable := r.URL.Query().Get("durable") == "1"
	sealed, err := e.IngestSketch(data, durable, s.reg.cfg.UploadCheckpointEvery)
	if err != nil {
		writeError(w, err)
		return
	}
	s.reg.sketchUploads.Add(1)
	writeJSON(w, http.StatusOK, map[string]bool{"accepted": true, "sealed": sealed})
}

// SampleResult is the /sample response: the kind-appropriate projection of
// the merged sketch's query surface.
type SampleResult struct {
	Kind string `json:"kind"`
	Ok   bool   `json:"ok"`
	// Index/Value for l0, Index/Estimate for lp.
	Index    int     `json:"index,omitempty"`
	Value    int64   `json:"value,omitempty"`
	Estimate float64 `json:"estimate,omitempty"`
	// HeavyHitters for hh.
	HeavyHitters []int `json:"heavy_hitters,omitempty"`
}

func (s *Server) handleSample(w http.ResponseWriter, r *http.Request) {
	// Negotiated like the ingest paths even though the response is JSON:
	// the data plane speaks with one voice, so a client whose offer is
	// rejected on push cannot half-work by querying.
	if _, ok := s.negotiate(w, r); !ok {
		return
	}
	e, ok := s.entry(w, r)
	if !ok {
		return
	}
	merged, err := e.Merged()
	if err != nil {
		writeError(w, err)
		return
	}
	s.reg.queries.Add(1)
	res := SampleResult{Kind: e.spec.Kind}
	switch m := merged.(type) {
	case *streamsample.L0Sampler:
		res.Index, res.Value, res.Ok = m.Sample()
	case *streamsample.LpSampler:
		res.Index, res.Estimate, res.Ok = m.Sample()
	case *streamsample.HeavyHitters:
		res.HeavyHitters = m.Report()
		res.Ok = true
	default:
		writeError(w, fmt.Errorf("sketchd: kind %q has no sample projection", e.spec.Kind))
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// handleBytes ships the merged sketch in the wire format — the endpoint a
// higher aggregation tier (or a test asserting byte-identical recovery)
// pulls from. Negotiated like the ingest paths: the bytes ARE a codec
// version.
func (s *Server) handleBytes(w http.ResponseWriter, r *http.Request) {
	if _, ok := s.negotiate(w, r); !ok {
		return
	}
	e, ok := s.entry(w, r)
	if !ok {
		return
	}
	merged, err := e.Merged()
	if err != nil {
		writeError(w, err)
		return
	}
	s.reg.queries.Add(1)
	blob, err := merged.MarshalBinary()
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(blob)))
	//nolint:errcheck // the response write has no further error channel
	_, _ = w.Write(blob)
}

func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	e, ok := s.entry(w, r)
	if !ok {
		return
	}
	if err := e.Checkpoint(); err != nil {
		writeError(w, err)
		return
	}
	// sealed is honest: a non-durable registry's checkpoint is a no-op.
	writeJSON(w, http.StatusOK, map[string]bool{"sealed": e.durableBacked()})
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"sketches": s.reg.List()})
}

// handleNegotiate is the standalone negotiation probe: a client can resolve
// the wire version once, up front, instead of per request.
func (s *Server) handleNegotiate(w http.ResponseWriter, r *http.Request) {
	v, ok := s.negotiate(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"version":   v,
		"supported": SupportedWireVersions,
	})
}

// Statsz is the /statsz document.
type Statsz struct {
	Registry RegistryStats `json:"registry"`
	Sketches []SketchStats `json:"sketches"`
}

func (s *Server) handleStatsz(w http.ResponseWriter, _ *http.Request) {
	reg, per := s.reg.Statsz()
	writeJSON(w, http.StatusOK, Statsz{Registry: reg, Sketches: per})
}
