package sketchd

import (
	"fmt"
	"sync"
	"sync/atomic"

	streamsample "repro"
)

// MergeTree is the hierarchical fan-in stage between thousands of edge
// uploads and one authoritative sketch. Sketch merging is exact and
// associative (the structures are linear), so the fold ORDER is purely a
// concurrency decision — and a flat design, every upload merging into one
// accumulator under one mutex, would serialize the whole ingest tier on
// that lock for the full O(sketch size) merge.
//
// The tree instead splits the fold:
//
//	upload ──▶ leaf i (own lock): acc += upload          O(size), per-leaf lock
//	leaf full (fan-in reached) ──▶ detach, root: acc += leaf    one merge per FanIn uploads
//	Flush ──▶ fold remaining leaves + root into the authoritative sketch
//
// With L leaves, concurrent uploads contend 1/L as often, each leaf lock is
// held for exactly one merge, and the root lock is taken once per FanIn
// uploads — lock hold times and merge latency are bounded by design, not by
// luck. Every accumulator starts as a zero-state clone built by the
// factory, so a mismatched upload (wrong seed, wrong config) fails the
// leaf-level Merge with the typed sentinels and never poisons an
// accumulator.
//
// Add is safe for concurrent use; Flush and Stats may run concurrently
// with Adds.
type MergeTree struct {
	factory func() (streamsample.Sketch, error)
	fanIn   int
	rr      atomic.Uint64
	leaves  []*mergeLeaf

	root struct {
		mu    sync.Mutex
		acc   streamsample.Sketch
		count int64 // uploads represented in acc
	}

	uploads   atomic.Int64
	leafFolds atomic.Int64
	rejected  atomic.Int64
}

type mergeLeaf struct {
	mu    sync.Mutex
	acc   streamsample.Sketch
	count int
}

// MergeTreeStats is the observability snapshot surfaced per sketch by
// /statsz.
type MergeTreeStats struct {
	// Uploads counts sketches accepted into the tree since creation.
	Uploads int64 `json:"uploads"`
	// Rejected counts uploads refused by a leaf-level merge (seed or config
	// mismatch).
	Rejected int64 `json:"rejected"`
	// LeafFolds counts full leaves detached and folded into the root.
	LeafFolds int64 `json:"leaf_folds"`
	// Pending counts uploads absorbed into a leaf or the root but not yet
	// flushed into the authoritative sketch.
	Pending int64 `json:"pending"`
	// Leaves and FanIn echo the topology.
	Leaves int `json:"leaves"`
	FanIn  int `json:"fan_in"`
}

// NewMergeTree builds a tree of `leaves` leaf aggregators with the given
// fan-in. factory must return a fresh zero-state sketch that is same-seed
// mergeable with every legitimate upload (the registry passes a
// Load-from-spec closure). leaves and fanIn below 1 are clamped to 1.
func NewMergeTree(leaves, fanIn int, factory func() (streamsample.Sketch, error)) *MergeTree {
	leaves = max(leaves, 1)
	fanIn = max(fanIn, 1)
	t := &MergeTree{factory: factory, fanIn: fanIn, leaves: make([]*mergeLeaf, leaves)}
	for i := range t.leaves {
		t.leaves[i] = &mergeLeaf{}
	}
	return t
}

// Add folds one uploaded sketch into the tree. The leaf-level Merge is the
// compatibility gate: a foreign seed or config fails with the typed
// sentinels before the upload reaches anything shared, and the leaf
// accumulator is left exactly as it was.
func (t *MergeTree) Add(s streamsample.Sketch) error {
	leaf := t.leaves[t.rr.Add(1)%uint64(len(t.leaves))]
	var full streamsample.Sketch
	var fullCount int
	leaf.mu.Lock()
	if leaf.acc == nil {
		acc, err := t.factory()
		if err != nil {
			leaf.mu.Unlock()
			return fmt.Errorf("sketchd: building leaf accumulator: %w", err)
		}
		leaf.acc = acc
	}
	if err := leaf.acc.Merge(s); err != nil {
		leaf.mu.Unlock()
		t.rejected.Add(1)
		return err
	}
	leaf.count++
	if leaf.count >= t.fanIn {
		full, fullCount = leaf.acc, leaf.count
		leaf.acc, leaf.count = nil, 0
	}
	leaf.mu.Unlock()
	t.uploads.Add(1)
	if full != nil {
		t.leafFolds.Add(1)
		return t.foldRoot(full, fullCount)
	}
	return nil
}

// foldRoot merges one detached, pre-folded leaf accumulator into the root.
// The root lock is held for a single merge — the fan-in already amortized
// the per-upload cost away from it.
func (t *MergeTree) foldRoot(s streamsample.Sketch, count int) error {
	t.root.mu.Lock()
	defer t.root.mu.Unlock()
	if t.root.acc == nil {
		t.root.acc = s
		t.root.count = int64(count)
		return nil
	}
	if err := t.root.acc.Merge(s); err != nil {
		return err
	}
	t.root.count += int64(count)
	return nil
}

// FlushInto detaches every partial leaf and the root accumulator, folds
// them into dst (the authoritative sketch), and leaves the tree empty.
// Concurrent Adds continue against fresh accumulators. It reports exactly
// how many uploads the flush moved into dst — counted under the same locks
// that detach the accumulators, so the number is exact even mid-traffic.
func (t *MergeTree) FlushInto(dst streamsample.Sketch) (int64, error) {
	var parts []streamsample.Sketch
	var flushed int64
	for _, leaf := range t.leaves {
		leaf.mu.Lock()
		if leaf.acc != nil && leaf.count > 0 {
			parts = append(parts, leaf.acc)
			flushed += int64(leaf.count)
		}
		leaf.acc, leaf.count = nil, 0
		leaf.mu.Unlock()
	}
	t.root.mu.Lock()
	if t.root.acc != nil {
		parts = append(parts, t.root.acc)
		flushed += t.root.count
		t.root.acc, t.root.count = nil, 0
	}
	t.root.mu.Unlock()
	for _, p := range parts {
		if err := dst.Merge(p); err != nil {
			return flushed, fmt.Errorf("sketchd: flushing merge tree: %w", err)
		}
	}
	return flushed, nil
}

// Pending reports uploads buffered in the tree (not yet flushed).
func (t *MergeTree) Pending() int64 {
	var pending int64
	for _, leaf := range t.leaves {
		leaf.mu.Lock()
		pending += int64(leaf.count)
		leaf.mu.Unlock()
	}
	t.root.mu.Lock()
	pending += t.root.count
	t.root.mu.Unlock()
	return pending
}

// Stats snapshots the tree's counters.
func (t *MergeTree) Stats() MergeTreeStats {
	return MergeTreeStats{
		Uploads:   t.uploads.Load(),
		Rejected:  t.rejected.Load(),
		LeafFolds: t.leafFolds.Load(),
		Pending:   t.Pending(),
		Leaves:    len(t.leaves),
		FanIn:     t.fanIn,
	}
}
