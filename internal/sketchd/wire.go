// Package sketchd is the sketch-serving network tier: a stdlib-only HTTP
// server exposing a multi-tenant registry of the repository's linear
// sketches — create / ingest / merge / query / delete by {tenant, name} —
// where every registered sketch is backed by the sharded ingestion engine
// (internal/engine, so raw-update ingest rides the kernel-dispatched hot
// paths) and persisted through the durable checkpoint store
// (internal/checkpoint, so SIGTERM drains and SIGKILL restarts recover the
// registry byte-identically from the last sealed generation plus the
// write-ahead journal tail).
//
// The tier completes the distributed pattern the wire format (PR 5) set up:
// edge processes sketch locally, ship O(polylog) bytes, the serving tier
// folds them — exactly, by sketch linearity — and answers queries. Two
// ingest paths exist per registered sketch:
//
//   - Raw update batches: streamed, length-prefixed internal/codec frames
//     (POST .../updates). Each frame is one batch of (index, delta) pairs
//     fed straight into the sketch's sharded engine, journaled write-ahead.
//   - Pre-sketched bytes: a whole serialized sketch (POST .../sketches),
//     validated and folded through a hierarchical merge tree — leaf
//     aggregators absorb uploads under per-leaf locks and only detached,
//     pre-folded intermediates touch the authoritative accumulator, so
//     thousands of concurrent exporters never serialize on one mutex.
//
// Every ingest request carries wire-format version negotiation: the client
// lists the codec versions it speaks, the server picks the newest common
// one (echoed in the response) or rejects with a typed error. Errors cross
// the wire as a structured JSON envelope carrying a stable machine code, so
// the client package reconstructs errors.Is-able sentinels (seed mismatch,
// config mismatch, partial results) on the far side.
package sketchd

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/codec"
	"repro/internal/stream"
)

// Negotiation headers. The client lists every wire-format version it can
// encode/decode in HeaderWireVersions (comma-separated decimal); the server
// answers every ingest/query response with the single chosen version in
// HeaderWireVersion.
const (
	HeaderWireVersions = "X-Sketch-Wire-Versions"
	HeaderWireVersion  = "X-Sketch-Wire-Version"
)

// SupportedWireVersions lists the codec versions this server build speaks,
// ascending. Version values are the internal/codec format versions — the
// bytes on the wire ARE the serialized-sketch format, so negotiation is
// about exactly that version number.
var SupportedWireVersions = []uint16{codec.Version}

// ErrVersionNegotiation is the typed failure of wire-version negotiation:
// the client offered no version this server speaks (or an unparseable
// offer). It wraps codec.ErrBadVersion so existing errors.Is dispatch on
// the codec taxonomy keeps working.
var ErrVersionNegotiation = fmt.Errorf("sketchd: wire-version negotiation failed: %w", codec.ErrBadVersion)

// Negotiate picks the wire version for one request: the highest version
// present in both the client's comma-separated offer and
// SupportedWireVersions. An empty offer means a bare v1 client (the header
// predates nothing — version 1 is the only format that ever existed without
// the header), so it resolves to 1 only if the server still speaks it.
func Negotiate(offer string) (uint16, error) {
	if strings.TrimSpace(offer) == "" {
		offer = "1"
	}
	client := make(map[uint16]bool)
	for _, tok := range strings.Split(offer, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		v, err := strconv.ParseUint(tok, 10, 16)
		if err != nil || v == 0 {
			return 0, fmt.Errorf("%w: unparseable offered version %q", ErrVersionNegotiation, tok)
		}
		client[uint16(v)] = true
	}
	if len(client) == 0 {
		return 0, fmt.Errorf("%w: empty version offer", ErrVersionNegotiation)
	}
	best := uint16(0)
	for _, v := range SupportedWireVersions {
		if client[v] && v > best {
			best = v
		}
	}
	if best == 0 {
		offered := make([]int, 0, len(client))
		for v := range client {
			offered = append(offered, int(v))
		}
		sort.Ints(offered)
		return 0, fmt.Errorf("%w: client offers %v, server speaks %v",
			ErrVersionNegotiation, offered, SupportedWireVersions)
	}
	return best, nil
}

// ---------------------------------------------------------------------------
// Raw-update frames
// ---------------------------------------------------------------------------

// ErrBadFrame is the typed failure of the raw-update ingest framing: a
// frame decoded structurally (length and fingerprint verified) but its
// payload is not a whole number of (index, delta) pairs, or an index is
// outside the sketch's dimension.
var ErrBadFrame = errors.New("sketchd: malformed update frame")

// MaxFrameLen bounds one frame's payload on the network path — tighter than
// codec.MaxRecordLen because a single HTTP request should stream many small
// frames, not one giant one. 16 MiB is 1M updates per frame.
const MaxFrameLen = 1 << 24

// MaxFrameUpdates is the update count implied by MaxFrameLen.
const MaxFrameUpdates = MaxFrameLen / 16

// AppendFrame frames one update batch as a length-prefixed, fingerprinted
// codec record appended to dst: the exact record format the checkpoint
// journal uses, so one framing layer serves disk and wire.
func AppendFrame(dst []byte, batch []stream.Update) []byte {
	payload := make([]byte, 0, 16*len(batch))
	for _, u := range batch {
		payload = binary.LittleEndian.AppendUint64(payload, uint64(u.Index))
		payload = binary.LittleEndian.AppendUint64(payload, uint64(u.Delta))
	}
	return codec.AppendRecord(dst, payload)
}

// DecodeFramePayload decodes one frame payload into updates. n bounds the
// index range when positive: any index outside [0, n) rejects the whole
// frame — the server must never route a hostile coordinate into a sketch
// built for dimension n.
func DecodeFramePayload(payload []byte, n int) ([]stream.Update, error) {
	if len(payload)%16 != 0 {
		return nil, fmt.Errorf("%w: payload is %d bytes, not a multiple of 16", ErrBadFrame, len(payload))
	}
	batch := make([]stream.Update, len(payload)/16)
	for i := range batch {
		idx := int64(binary.LittleEndian.Uint64(payload[16*i:]))
		delta := int64(binary.LittleEndian.Uint64(payload[16*i+8:]))
		if idx < 0 || (n > 0 && idx >= int64(n)) {
			return nil, fmt.Errorf("%w: index %d outside sketch dimension %d", ErrBadFrame, idx, n)
		}
		batch[i] = stream.Update{Index: int(idx), Delta: delta}
	}
	return batch, nil
}

// FrameReader streams update frames off an ingest request body. Each Next
// call returns one decoded batch; a clean end of stream returns io.EOF.
type FrameReader struct {
	r   *bufio.Reader
	n   int // index bound, 0 disables
	hdr [codec.RecordOverhead]byte
	buf []byte
}

// NewFrameReader wraps r; n is the sketch dimension bound handed to
// DecodeFramePayload (0 disables the bound).
func NewFrameReader(r io.Reader, n int) *FrameReader {
	return &FrameReader{r: bufio.NewReaderSize(r, 64<<10), n: n}
}

// Next reads one frame. io.EOF means the stream ended cleanly on a frame
// boundary; a stream cut inside a frame fails with codec.ErrTruncated, a
// fingerprint failure with codec.ErrBadRecord, an oversized length with
// ErrBadFrame — all typed, none panic, whatever the bytes.
func (fr *FrameReader) Next() ([]stream.Update, error) {
	if _, err := io.ReadFull(fr.r, fr.hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("%w: stream ends inside a frame header", codec.ErrTruncated)
	}
	length := binary.LittleEndian.Uint32(fr.hdr[:4])
	want := binary.LittleEndian.Uint64(fr.hdr[4:12])
	if length > MaxFrameLen {
		return nil, fmt.Errorf("%w: frame promises %d bytes, limit %d", ErrBadFrame, length, MaxFrameLen)
	}
	if cap(fr.buf) < int(length) {
		fr.buf = make([]byte, length)
	}
	payload := fr.buf[:length]
	if _, err := io.ReadFull(fr.r, payload); err != nil {
		return nil, fmt.Errorf("%w: stream ends inside a %d-byte frame payload", codec.ErrTruncated, length)
	}
	if codec.Fingerprint(payload) != want {
		return nil, fmt.Errorf("%w: %d-byte frame", codec.ErrBadRecord, length)
	}
	return DecodeFramePayload(payload, fr.n)
}
