package sketchd

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"

	streamsample "repro"
	"repro/internal/stream"
)

// TestCreateRejectedLeavesNoDurableState: a rejected create must leave zero
// trace on disk — the historical bug wrote meta.json before validating the
// spec, so one bad PUT left a durable entry recovery could never rebuild
// and the server could never restart.
func TestCreateRejectedLeavesNoDurableState(t *testing.T) {
	dir := t.TempDir()
	cfg := RegistryConfig{Dir: dir}
	reg, err := OpenRegistry(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range []Spec{
		{Kind: "nope", N: 100},
		{Kind: "l0", N: 0},
		{Kind: "lp", N: 100, P: 7},
	} {
		if err := reg.Create("t", "bad", spec); err == nil {
			t.Fatalf("create %+v accepted, want rejection", spec)
		}
		if _, err := os.Stat(reg.entryDir("t", "bad")); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("rejected create %+v left durable state on disk (stat err = %v)", spec, err)
		}
	}
	// A good sketch still registers, drains, and the whole registry reopens.
	if err := reg.Create("t", "good", Spec{Kind: "l0", N: 64, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if err := reg.Drain(); err != nil {
		t.Fatal(err)
	}
	reg2, err := OpenRegistry(cfg)
	if err != nil {
		t.Fatalf("reopen after rejected creates: %v", err)
	}
	defer reg2.Drain() //nolint:errcheck // teardown
	if _, err := reg2.Get("t", "good"); err != nil {
		t.Fatalf("good sketch not recovered: %v", err)
	}
	if _, err := reg2.Get("t", "bad"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("rejected sketch resurrected: err = %v", err)
	}
}

// TestCreateLateFailureCleansUp: when the spec is valid but wiring the
// entry fails AFTER meta.json landed (here: a regular file squatting where
// the engine store directory must go), the half-created directory is
// removed again so recovery never meets it.
func TestCreateLateFailureCleansUp(t *testing.T) {
	dir := t.TempDir()
	cfg := RegistryConfig{Dir: dir}
	reg, err := OpenRegistry(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Drain() //nolint:errcheck // teardown
	entryDir := reg.entryDir("t", "s")
	if err := os.MkdirAll(entryDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(entryDir, "engine"), []byte("squatter"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := reg.Create("t", "s", Spec{Kind: "l0", N: 64, Seed: 1}); err == nil {
		t.Fatal("create over a squatted engine path succeeded, want failure")
	}
	if _, err := os.Stat(entryDir); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("failed create left %s behind (stat err = %v)", entryDir, err)
	}
}

// TestRecoveryQuarantinesCorruptEntry: one tenant's unrecoverable on-disk
// entry must not keep the whole registry (every other tenant) from opening
// — it is moved to the quarantine tree, visibly counted, never silent.
func TestRecoveryQuarantinesCorruptEntry(t *testing.T) {
	dir := t.TempDir()
	cfg := RegistryConfig{Dir: dir}
	reg, err := OpenRegistry(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Create("t", "good", Spec{Kind: "l0", N: 64, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if err := reg.Create("t", "bad", Spec{Kind: "l0", N: 64, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	if err := reg.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(reg.entryDir("t", "bad"), "meta.json"), []byte("{corrupt"), 0o644); err != nil {
		t.Fatal(err)
	}

	reg2, err := OpenRegistry(cfg)
	if err != nil {
		t.Fatalf("reopen with one corrupt entry failed for the whole registry: %v", err)
	}
	defer reg2.Drain() //nolint:errcheck // teardown
	if _, err := reg2.Get("t", "good"); err != nil {
		t.Fatalf("healthy sketch not recovered: %v", err)
	}
	if _, err := reg2.Get("t", "bad"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("corrupt sketch served: err = %v", err)
	}
	st, _ := reg2.Statsz()
	if st.Quarantined != 1 || st.Recovered != 1 {
		t.Fatalf("stats = %+v, want quarantined=1 recovered=1", st)
	}
	qdir := filepath.Join(dir, "quarantine", "t", "bad")
	if _, err := os.Stat(filepath.Join(qdir, "QUARANTINE")); err != nil {
		t.Fatalf("quarantined state missing its reason file: %v", err)
	}
}

// TestRecoveryFinishesTombstonedDelete: a tombstoned entry directory is an
// acknowledged delete whose removal was interrupted — recovery finishes the
// removal instead of resurrecting the sketch.
func TestRecoveryFinishesTombstonedDelete(t *testing.T) {
	dir := t.TempDir()
	cfg := RegistryConfig{Dir: dir}
	reg, err := OpenRegistry(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Create("t", "s", Spec{Kind: "l0", N: 64, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if err := reg.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(reg.entryDir("t", "s"), tombstoneFile), nil, 0o644); err != nil {
		t.Fatal(err)
	}

	reg2, err := OpenRegistry(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer reg2.Drain() //nolint:errcheck // teardown
	if _, err := reg2.Get("t", "s"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("tombstoned sketch resurrected: err = %v", err)
	}
	if _, err := os.Stat(reg2.entryDir("t", "s")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("tombstoned dir survived recovery (stat err = %v)", err)
	}
	// And a fresh create of the same name works on clean ground.
	if err := reg2.Create("t", "s", Spec{Kind: "l0", N: 64, Seed: 9}); err != nil {
		t.Fatalf("recreate after finished delete: %v", err)
	}
}

// TestDeleteRemovesDurableStateBeforeUnregistering: after a successful
// Delete nothing remains on disk, so a restart cannot resurrect the sketch.
func TestDeleteRemovesDurableStateBeforeUnregistering(t *testing.T) {
	dir := t.TempDir()
	cfg := RegistryConfig{Dir: dir}
	reg, err := OpenRegistry(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Drain() //nolint:errcheck // teardown
	if err := reg.Create("t", "s", Spec{Kind: "l0", N: 64, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	e, err := reg.Get("t", "s")
	if err != nil {
		t.Fatal(err)
	}
	if err := e.IngestRaw([]stream.Update{{Index: 1, Delta: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := reg.Delete("t", "s"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(reg.entryDir("t", "s")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("delete left durable state (stat err = %v)", err)
	}
	reg2, err := OpenRegistry(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer reg2.Drain() //nolint:errcheck // teardown
	if _, err := reg2.Get("t", "s"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted sketch resurrected at restart: err = %v", err)
	}
}

// TestIngestSketchDeleteRace drives concurrent uploads against a Delete
// (run under -race by CI): no upload may be acknowledged after the entry's
// tree was discarded — once Delete returns, every new upload is a clean
// typed ErrNotFound, never a silent fold into dead state.
func TestIngestSketchDeleteRace(t *testing.T) {
	reg, err := OpenRegistry(RegistryConfig{Leaves: 2, FanIn: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Drain() //nolint:errcheck // teardown
	const n = 64
	if err := reg.Create("t", "s", Spec{Kind: "l0", N: n, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	e, err := reg.Get("t", "s")
	if err != nil {
		t.Fatal(err)
	}
	local := streamsample.NewL0Sampler(n, streamsample.WithSeed(1))
	local.Update(3, 1)
	blob, err := local.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	start := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < 200; i++ {
				if _, err := e.IngestSketch(blob, false, 1<<30); err != nil && !errors.Is(err, ErrNotFound) {
					t.Errorf("upload err = %v, want nil or ErrNotFound", err)
					return
				}
			}
		}()
	}
	close(start)
	if err := reg.Delete("t", "s"); err != nil {
		t.Fatal(err)
	}
	// Delete has returned: the flag is set, so every subsequent upload must
	// see it.
	if _, err := e.IngestSketch(blob, false, 1<<30); !errors.Is(err, ErrNotFound) {
		t.Fatalf("post-delete upload err = %v, want ErrNotFound", err)
	}
	wg.Wait()
}

// TestUploadSealedReporting: the upload ACK's "sealed" field must reflect
// whether a durable seal actually happened — never true on a registry with
// no durable dir, where a checkpoint is a no-op and the upload dies with a
// SIGKILL regardless of ?durable=1.
func TestUploadSealedReporting(t *testing.T) {
	local := streamsample.NewL0Sampler(64, streamsample.WithSeed(1))
	local.Update(3, 1)
	blob, err := local.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	push := func(t *testing.T, ts *httptest.Server) (accepted, sealed bool) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/tenants/t/sketches/s/sketches?durable=1",
			"application/octet-stream", bytes.NewReader(blob))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("upload status = %d", resp.StatusCode)
		}
		var body struct {
			Accepted bool `json:"accepted"`
			Sealed   bool `json:"sealed"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return body.Accepted, body.Sealed
	}
	checkpointSealed := func(t *testing.T, ts *httptest.Server) bool {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/tenants/t/sketches/s/checkpoint", "", nil)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body struct {
			Sealed bool `json:"sealed"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return body.Sealed
	}

	t.Run("ephemeral", func(t *testing.T) {
		ts, c := newTestServer(t, RegistryConfig{})
		if err := c.Create(context.Background(), "t", "s", Spec{Kind: "l0", N: 64, Seed: 1}); err != nil {
			t.Fatal(err)
		}
		accepted, sealed := push(t, ts)
		if !accepted || sealed {
			t.Fatalf("ephemeral durable=1 ACK = (accepted=%v, sealed=%v), want (true, false)", accepted, sealed)
		}
		if checkpointSealed(t, ts) {
			t.Fatal("ephemeral checkpoint reported sealed=true")
		}
	})
	t.Run("durable", func(t *testing.T) {
		ts, c := newTestServer(t, RegistryConfig{Dir: t.TempDir()})
		if err := c.Create(context.Background(), "t", "s", Spec{Kind: "l0", N: 64, Seed: 1}); err != nil {
			t.Fatal(err)
		}
		accepted, sealed := push(t, ts)
		if !accepted || !sealed {
			t.Fatalf("durable durable=1 ACK = (accepted=%v, sealed=%v), want (true, true)", accepted, sealed)
		}
		if !checkpointSealed(t, ts) {
			t.Fatal("durable checkpoint reported sealed=false")
		}
	})
}

// TestStatszRawUpdatesConsistentOnFrameError: a stream that dies on a bad
// frame keeps its already-accepted batches — and the registry-level and
// per-sketch raw_updates counters must agree about them.
func TestStatszRawUpdatesConsistentOnFrameError(t *testing.T) {
	ts, c := newTestServer(t, RegistryConfig{})
	ctx := context.Background()
	const n = 64
	if err := c.Create(ctx, "t", "s", Spec{Kind: "l0", N: n, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	// One good 3-update frame, then a frame cut off mid-payload.
	body := AppendFrame(nil, []stream.Update{{Index: 1, Delta: 1}, {Index: 2, Delta: 1}, {Index: 3, Delta: -1}})
	bad := AppendFrame(nil, []stream.Update{{Index: 4, Delta: 1}})
	body = append(body, bad[:len(bad)-3]...)
	resp, err := http.Post(ts.URL+"/v1/tenants/t/sketches/s/updates", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("truncated stream accepted")
	}
	st, err := c.Statsz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var perSketch int64
	for _, s := range st.Sketches {
		perSketch += s.RawUpdates
	}
	if st.Registry.RawUpdates != perSketch {
		t.Fatalf("registry raw_updates = %d, per-sketch sum = %d — counters diverged on a mid-stream error",
			st.Registry.RawUpdates, perSketch)
	}
	if perSketch != 3 {
		t.Fatalf("accepted updates = %d, want the 3 from the good frame", perSketch)
	}
}
