package sketchd

import (
	"bytes"
	"context"
	"errors"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"testing"

	streamsample "repro"
	"repro/internal/codec"
	"repro/internal/stream"
)

func newTestServer(t *testing.T, cfg RegistryConfig) (*httptest.Server, *Client) {
	t.Helper()
	reg, err := OpenRegistry(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(reg))
	t.Cleanup(func() {
		ts.Close()
		reg.Drain() //nolint:errcheck // teardown
	})
	return ts, NewClient(ts.URL)
}

func testStream(n, length int, seed uint64) stream.Stream {
	r := rand.New(rand.NewPCG(seed, seed^0xD1B54A32D192ED03))
	return stream.RandomTurnstile(n, length, 100, r)
}

func TestServerCRUD(t *testing.T) {
	_, c := newTestServer(t, RegistryConfig{})
	ctx := context.Background()
	spec := Spec{Kind: "l0", N: 256, Seed: 4}

	if err := c.Create(ctx, "acme", "clicks", spec); err != nil {
		t.Fatalf("create: %v", err)
	}
	if err := c.Create(ctx, "acme", "clicks", spec); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate create err = %v, want ErrExists", err)
	}
	info, err := c.Info(ctx, "acme", "clicks")
	if err != nil {
		t.Fatalf("info: %v", err)
	}
	if info.Spec != spec {
		t.Fatalf("info spec = %+v, want %+v", info.Spec, spec)
	}
	if err := c.Delete(ctx, "acme", "clicks"); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if _, err := c.Info(ctx, "acme", "clicks"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("info after delete err = %v, want ErrNotFound", err)
	}
	if err := c.Delete(ctx, "acme", "clicks"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete err = %v, want ErrNotFound", err)
	}
}

func TestServerCreateValidation(t *testing.T) {
	_, c := newTestServer(t, RegistryConfig{})
	ctx := context.Background()
	for _, tc := range []struct {
		tenant, name string
		spec         Spec
	}{
		{"ok", "ok", Spec{Kind: "nope", N: 100}},
		{"ok", "ok", Spec{Kind: "l0", N: 0}},
		{"ok", "ok", Spec{Kind: "lp", N: 100, P: 2.5}},
		{"../evil", "ok", Spec{Kind: "l0", N: 100}},
		{"ok", "a b", Spec{Kind: "l0", N: 100}},
	} {
		err := c.Create(ctx, tc.tenant, tc.name, tc.spec)
		if err == nil {
			t.Errorf("create %q/%q %+v accepted, want rejection", tc.tenant, tc.name, tc.spec)
			continue
		}
		var se *Error
		if !errors.As(err, &se) || se.Code != CodeBadRequest {
			t.Errorf("create %q/%q err = %v, want bad_request envelope", tc.tenant, tc.name, err)
		}
	}
}

// TestServerIngestAgreement is the heart of the tier: raw frames, sketch
// uploads, and a mix of both must all merge to exactly the serial sketch.
func TestServerIngestAgreement(t *testing.T) {
	const n, seed, length = 1024, 11, 30000
	st := testStream(n, length, seed)
	serial := streamsample.NewL0Sampler(n, streamsample.WithSeed(seed))
	serial.ProcessBatch(st)
	want, err := serial.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	for _, mode := range []string{"raw", "sketch", "mixed"} {
		t.Run(mode, func(t *testing.T) {
			_, c := newTestServer(t, RegistryConfig{Shards: 3, Leaves: 2, FanIn: 4})
			ctx := context.Background()
			if err := c.Create(ctx, "t", "s", Spec{Kind: "l0", N: n, Seed: seed}); err != nil {
				t.Fatal(err)
			}
			const parts = 10
			for i := 0; i < parts; i++ {
				var slice stream.Stream
				for j := i; j < len(st); j += parts {
					slice = append(slice, st[j])
				}
				useRaw := mode == "raw" || (mode == "mixed" && i%2 == 0)
				if useRaw {
					res, err := c.PushUpdates(ctx, "t", "s", slice)
					if err != nil {
						t.Fatalf("part %d raw: %v", i, err)
					}
					if res.Updates != int64(len(slice)) {
						t.Fatalf("part %d: server accepted %d updates, sent %d", i, res.Updates, len(slice))
					}
				} else {
					local := streamsample.NewL0Sampler(n, streamsample.WithSeed(seed))
					local.ProcessBatch(slice)
					blob, err := local.MarshalBinary()
					if err != nil {
						t.Fatal(err)
					}
					if err := c.PushSketch(ctx, "t", "s", blob, false); err != nil {
						t.Fatalf("part %d sketch: %v", i, err)
					}
				}
			}
			got, err := c.Bytes(ctx, "t", "s")
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("mode %s: merged sketch differs from serial ingestion", mode)
			}
			// Sample determinism: same state, same seed, same draw.
			res, err := c.Sample(ctx, "t", "s")
			if err != nil {
				t.Fatal(err)
			}
			wi, wv, wok := serial.Sample()
			if res.Ok != wok || res.Index != wi || res.Value != wv {
				t.Fatalf("mode %s: server sample %+v, serial (%d,%d,%v)", mode, res, wi, wv, wok)
			}
		})
	}
}

func TestServerMismatchTypedOverWire(t *testing.T) {
	_, c := newTestServer(t, RegistryConfig{})
	ctx := context.Background()
	const n = 128
	if err := c.Create(ctx, "t", "s", Spec{Kind: "l0", N: n, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	foreign := streamsample.NewL0Sampler(n, streamsample.WithSeed(2))
	foreign.Update(3, 1)
	blob, _ := foreign.MarshalBinary()
	err := c.PushSketch(ctx, "t", "s", blob, false)
	if !errors.Is(err, codec.ErrSeedMismatch) {
		t.Fatalf("foreign-seed upload err = %v, want ErrSeedMismatch across the wire", err)
	}
	var se *Error
	if !errors.As(err, &se) || se.HTTPStatus() != http.StatusConflict {
		t.Fatalf("foreign-seed upload = %v, want 409 envelope", err)
	}

	misconfigured := streamsample.NewL0Sampler(n*2, streamsample.WithSeed(1))
	blob2, _ := misconfigured.MarshalBinary()
	if err := c.PushSketch(ctx, "t", "s", blob2, false); !errors.Is(err, codec.ErrConfigMismatch) {
		t.Fatalf("misconfigured upload err = %v, want ErrConfigMismatch across the wire", err)
	}

	if err := c.PushSketch(ctx, "t", "s", []byte("not a sketch"), false); err == nil {
		t.Fatal("garbage upload accepted")
	} else if se = nil; !errors.As(err, &se) || se.Code != CodeBadSketchBytes {
		t.Fatalf("garbage upload err = %v, want bad_sketch_bytes envelope", err)
	}
}

func TestServerNegotiationOverWire(t *testing.T) {
	ts, _ := newTestServer(t, RegistryConfig{})
	ctx := context.Background()

	// Green: a v1 client resolves 1 and the response echoes it.
	green := NewClient(ts.URL)
	v, err := green.Negotiate(ctx)
	if err != nil || v != codec.Version {
		t.Fatalf("green negotiate = (%d, %v), want (%d, nil)", v, err, codec.Version)
	}

	// Red: a future-only client is refused with the typed 426 envelope, on
	// the probe AND on every negotiated endpoint.
	red := NewClient(ts.URL, WithWireVersions(99))
	if _, err := red.Negotiate(ctx); !errors.Is(err, ErrVersionNegotiation) {
		t.Fatalf("red negotiate err = %v, want ErrVersionNegotiation", err)
	}
	if err := green.Create(ctx, "t", "s", Spec{Kind: "l0", N: 64, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	err = red.PushSketch(ctx, "t", "s", []byte("x"), false)
	if !errors.Is(err, ErrVersionNegotiation) {
		t.Fatalf("red ingest err = %v, want ErrVersionNegotiation", err)
	}
	var se *Error
	if !errors.As(err, &se) || se.HTTPStatus() != http.StatusUpgradeRequired {
		t.Fatalf("red ingest = %v, want 426 envelope", err)
	}
	// The negotiation failure must also be errors.Is-able as the codec
	// sentinel, keeping one taxonomy on both sides of the wire.
	if !errors.Is(err, codec.ErrBadVersion) {
		t.Fatalf("red ingest err %v does not wrap codec.ErrBadVersion", err)
	}
	// The query side of the data plane refuses the same offer: a rejected
	// client must not half-work by sampling what it cannot push.
	if _, err := red.Sample(ctx, "t", "s"); !errors.Is(err, ErrVersionNegotiation) {
		t.Fatalf("red sample err = %v, want ErrVersionNegotiation", err)
	}
	// And a bare HTTP client (no SDK) offering only a future version gets
	// the raw 426 + envelope.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/tenants/t/sketches/s/sample", nil)
	req.Header.Set(HeaderWireVersions, "99")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUpgradeRequired {
		t.Fatalf("bare red GET sample status = %d, want 426", resp.StatusCode)
	}
}

func TestServerRejectsHostileFrames(t *testing.T) {
	ts, c := newTestServer(t, RegistryConfig{})
	ctx := context.Background()
	const n = 64
	if err := c.Create(ctx, "t", "s", Spec{Kind: "l0", N: n, Seed: 1}); err != nil {
		t.Fatal(err)
	}

	post := func(body []byte) error {
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/tenants/t/sketches/s/updates", bytes.NewReader(body))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			return nil
		}
		return decodeError(resp.StatusCode, resp.Body)
	}

	// An out-of-dimension index must be rejected before it reaches the
	// engine (and before it is journaled).
	hostile := AppendFrame(nil, []stream.Update{{Index: n + 5, Delta: 1}})
	if err := post(hostile); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("hostile index err = %v, want ErrBadFrame", err)
	}
	// A truncated stream dies typed.
	good := AppendFrame(nil, []stream.Update{{Index: 1, Delta: 1}})
	if err := post(good[:len(good)-2]); err == nil {
		t.Fatal("truncated frame accepted")
	}
	// The sketch must still be usable and exactly empty-plus-nothing: the
	// hostile frames contributed zero updates.
	res, err := c.PushUpdates(ctx, "t", "s", stream.Stream{{Index: 1, Delta: 1}})
	if err != nil || res.Updates != 1 {
		t.Fatalf("ingest after hostile frames = (%+v, %v)", res, err)
	}
}

func TestServerStatsz(t *testing.T) {
	_, c := newTestServer(t, RegistryConfig{Shards: 2})
	ctx := context.Background()
	if err := c.Create(ctx, "t", "s", Spec{Kind: "l0", N: 64, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.PushUpdates(ctx, "t", "s", stream.Stream{{Index: 1, Delta: 1}, {Index: 2, Delta: -1}}); err != nil {
		t.Fatal(err)
	}
	local := streamsample.NewL0Sampler(64, streamsample.WithSeed(1))
	local.Update(5, 3)
	blob, _ := local.MarshalBinary()
	if err := c.PushSketch(ctx, "t", "s", blob, false); err != nil {
		t.Fatal(err)
	}
	st, err := c.Statsz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Registry.Sketches != 1 || st.Registry.RawUpdates != 2 || st.Registry.SketchUploads != 1 {
		t.Fatalf("registry stats = %+v", st.Registry)
	}
	if len(st.Sketches) != 1 {
		t.Fatalf("per-sketch stats count = %d", len(st.Sketches))
	}
	s := st.Sketches[0]
	if s.Engine.Routed != 2 || s.Engine.Shards != 2 || s.MergeTree.Uploads != 1 {
		t.Fatalf("sketch stats = %+v", s)
	}
}

// TestServerDurableRecovery: drain, reopen from the same directory, and the
// recovered registry must answer byte-identically — for raw updates (engine
// store) and sketch uploads (fold store) both.
func TestServerDurableRecovery(t *testing.T) {
	dir := t.TempDir()
	const n, seed = 512, 6
	st := testStream(n, 5000, seed)
	ctx := context.Background()
	cfg := RegistryConfig{Dir: dir, Shards: 2, UploadCheckpointEvery: 1 << 30}

	reg1, err := OpenRegistry(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(NewServer(reg1))
	c := NewClient(ts1.URL)
	if err := c.Create(ctx, "t", "s", Spec{Kind: "l0", N: n, Seed: seed}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.PushUpdates(ctx, "t", "s", st[:4000]); err != nil {
		t.Fatal(err)
	}
	local := streamsample.NewL0Sampler(n, streamsample.WithSeed(seed))
	local.ProcessBatch(st[4000:])
	blob, _ := local.MarshalBinary()
	if err := c.PushSketch(ctx, "t", "s", blob, false); err != nil {
		t.Fatal(err)
	}
	want, err := c.Bytes(ctx, "t", "s")
	if err != nil {
		t.Fatal(err)
	}

	// Drain seals everything — the SIGTERM path — then a brand-new registry
	// recovers from disk alone.
	ts1.Close()
	if err := reg1.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}

	reg2, err := OpenRegistry(cfg)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	ts2 := httptest.NewServer(NewServer(reg2))
	defer ts2.Close()
	c2 := NewClient(ts2.URL)
	got, err := c2.Bytes(ctx, "t", "s")
	if err != nil {
		t.Fatalf("recovered bytes: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("recovered registry differs from pre-restart state")
	}
	st2, err := c2.Statsz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Registry.Recovered != 1 {
		t.Fatalf("recovered counter = %d, want 1", st2.Registry.Recovered)
	}
	reg2.Drain() //nolint:errcheck // teardown
}
