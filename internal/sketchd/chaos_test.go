package sketchd

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	streamsample "repro"
	"repro/internal/faultinject"
	"repro/internal/retry"
	"repro/internal/stream"
)

// TestChaosServerFaultSeeds is the serving tier's chaos leg (run by `make
// chaos` under -race): a registry with a deterministic fault injector on
// its engine and checkpoint paths serves real HTTP traffic — raw frames and
// sketch uploads — while torn checkpoint writes, fsync errors, journal
// faults, merge failures and worker panics fire. The property:
//
//  1. no panic ever escapes to the client or the test,
//  2. every client-visible failure is the typed JSON envelope (never an
//     opaque crash or an untyped 500 string),
//  3. a schedule that happened to fire no faults on the request path must
//     leave the merged sketch byte-identical to serial ingestion,
//  4. after a drain, reopening the store either recovers a loadable sketch
//     or fails with a typed error — never silently serves garbage.
//
// REPRO_FAULTS=seed:rate replays one schedule.
func TestChaosServerFaultSeeds(t *testing.T) {
	type sched struct {
		seed uint64
		rate float64
	}
	var scheds []sched
	if env := os.Getenv(faultinject.EnvVar); env != "" {
		var seed uint64
		var rate float64
		if _, err := fmt.Sscanf(env, "%d:%g", &seed, &rate); err != nil {
			t.Fatalf("parsing %s=%q: %v", faultinject.EnvVar, env, err)
		}
		scheds = []sched{{seed, rate}}
	} else {
		count := 8
		if testing.Short() {
			count = 3
		}
		for s := 1; s <= count; s++ {
			scheds = append(scheds, sched{uint64(s), 0.02})
		}
	}
	for _, sc := range scheds {
		sc := sc
		t.Run(fmt.Sprintf("seed=%d", sc.seed), func(t *testing.T) {
			if msg := runServerChaos(t, sc.seed, sc.rate); msg != "" {
				t.Fatalf("%s\nreplay: %s=%d:%g", msg, faultinject.EnvVar, sc.seed, sc.rate)
			}
		})
	}
}

func runServerChaos(t *testing.T, seed uint64, rate float64) string {
	const n, parts = 256, 12
	st := testStream(n, 6000, seed)
	dir := filepath.Join(t.TempDir(), fmt.Sprintf("chaos-%d", seed))
	inj := faultinject.New(seed, rate)
	cfg := RegistryConfig{
		Dir:                   dir,
		Shards:                2,
		CheckpointEvery:       500, // force the periodic checkpoint path under fire
		UploadCheckpointEvery: 2,   // and the upload-seal path
		Leaves:                2,
		FanIn:                 2,
		Injector:              inj,
	}
	reg, err := OpenRegistry(cfg)
	if err != nil {
		return fmt.Sprintf("virgin OpenRegistry failed: %v", err)
	}
	ts := httptest.NewServer(NewServer(reg))
	defer ts.Close()
	c := NewClient(ts.URL, sketchRetry())

	ctx := context.Background()
	if err := c.Create(ctx, "chaos", "s", Spec{Kind: "l0", N: n, Seed: seed}); err != nil {
		// Create runs CheckpointTo against the injected store — a typed
		// failure here is a legitimate schedule outcome.
		if !typedEnvelope(err) {
			return fmt.Sprintf("create failed untyped: %v", err)
		}
		reg.Drain() //nolint:errcheck // chaos teardown
		return ""
	}

	anyErr := false
	for i := 0; i < parts; i++ {
		var slice stream.Stream
		for j := i; j < len(st); j += parts {
			slice = append(slice, st[j])
		}
		var err error
		if i%2 == 0 {
			_, err = c.PushUpdates(ctx, "chaos", "s", slice)
		} else {
			local := streamsample.NewL0Sampler(n, streamsample.WithSeed(seed))
			local.ProcessBatch(slice)
			blob, merr := local.MarshalBinary()
			if merr != nil {
				return fmt.Sprintf("local marshal: %v", merr)
			}
			err = c.PushSketch(ctx, "chaos", "s", blob, false)
		}
		if err != nil {
			anyErr = true
			if !typedEnvelope(err) {
				return fmt.Sprintf("part %d failed untyped: %v", i, err)
			}
		}
	}

	got, err := c.Bytes(ctx, "chaos", "s")
	switch {
	case err != nil:
		anyErr = true
		if !typedEnvelope(err) {
			return fmt.Sprintf("query failed untyped: %v", err)
		}
	case !anyErr:
		// A fault-free schedule (at this rate, many are) must be exact.
		serial := streamsample.NewL0Sampler(n, streamsample.WithSeed(seed))
		serial.ProcessBatch(st)
		want, merr := serial.MarshalBinary()
		if merr != nil {
			return fmt.Sprintf("serial marshal: %v", merr)
		}
		if !bytes.Equal(got, want) {
			return "fault-free schedule produced a merged sketch that differs from serial"
		}
	default:
		// Faults fired somewhere; the bytes must still LOAD — degraded,
		// never garbage.
		if _, lerr := streamsample.Load(got); lerr != nil {
			return fmt.Sprintf("served bytes do not load: %v", lerr)
		}
	}

	drainErr := reg.Drain()
	ts.Close()

	// Reopen without the injector: recovery from whatever the schedule left
	// on disk either works, refuses with a typed error, or quarantines the
	// damaged entry — but a clean run must recover, and damage must never
	// be silent.
	cfg.Injector = nil
	reg2, err := OpenRegistry(cfg)
	if err != nil {
		if drainErr == nil && !anyErr {
			return fmt.Sprintf("clean run but reopen failed: %v", err)
		}
		return "" // a faulted store may be legitimately unrecoverable, as long as it says so
	}
	defer reg2.Drain() //nolint:errcheck // chaos teardown
	e, err := reg2.Get("chaos", "s")
	if err != nil {
		st, _ := reg2.Statsz()
		if st.Quarantined > 0 && (drainErr != nil || anyErr) {
			return "" // unrecoverable entry was quarantined, visibly, after real faults
		}
		return fmt.Sprintf("recovered registry lost the sketch: %v", err)
	}
	merged, err := e.Merged()
	if err != nil {
		return fmt.Sprintf("recovered sketch does not merge: %v", err)
	}
	if _, err := merged.MarshalBinary(); err != nil {
		return fmt.Sprintf("recovered sketch does not marshal: %v", err)
	}
	return ""
}

func sketchRetry() ClientOption {
	return WithRetryPolicy(retry.Policy{Attempts: 2})
}

// typedEnvelope reports whether err carries the structured wire error —
// the chaos property that no failure reaches the client as a transport
// crash (a handler panic kills the connection and fails errors.As here).
func typedEnvelope(err error) bool {
	var se *Error
	if !errors.As(err, &se) {
		return false
	}
	return se.Code != "" && se.Message != ""
}
