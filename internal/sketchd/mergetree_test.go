package sketchd

import (
	"errors"
	"math/rand/v2"
	"sync"
	"testing"

	streamsample "repro"
	"repro/internal/codec"
	"repro/internal/stream"
)

func l0Factory(n int, seed uint64) func() (streamsample.Sketch, error) {
	return func() (streamsample.Sketch, error) {
		return streamsample.NewL0Sampler(n, streamsample.WithSeed(seed)), nil
	}
}

// TestMergeTreeExact is the core linearity property: any number of uploads
// through any tree topology folds to exactly the serial sketch.
func TestMergeTreeExact(t *testing.T) {
	const n, seed, uploads = 512, 9, 100
	r := rand.New(rand.NewPCG(seed, seed))
	st := stream.RandomTurnstile(n, 20000, 50, r)

	for _, topo := range []struct{ leaves, fanIn int }{
		{1, 1}, {1, 1000}, {4, 8}, {8, 3}, {16, 1},
	} {
		serial := streamsample.NewL0Sampler(n, streamsample.WithSeed(seed))
		serial.ProcessBatch(st)
		want, err := serial.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}

		tree := NewMergeTree(topo.leaves, topo.fanIn, l0Factory(n, seed))
		var wg sync.WaitGroup
		per := (len(st) + uploads - 1) / uploads
		for u := 0; u < uploads; u++ {
			lo := u * per
			hi := min(lo+per, len(st))
			if lo >= hi {
				continue
			}
			wg.Add(1)
			go func(slice stream.Stream) {
				defer wg.Done()
				local := streamsample.NewL0Sampler(n, streamsample.WithSeed(seed))
				local.ProcessBatch(slice)
				if err := tree.Add(local); err != nil {
					t.Errorf("Add: %v", err)
				}
			}(st[lo:hi])
		}
		wg.Wait()

		dst := streamsample.NewL0Sampler(n, streamsample.WithSeed(seed))
		flushed, err := tree.FlushInto(dst)
		if err != nil {
			t.Fatalf("FlushInto: %v", err)
		}
		if flushed != tree.Stats().Uploads {
			t.Fatalf("flushed %d != uploads %d", flushed, tree.Stats().Uploads)
		}
		got, err := dst.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Fatalf("leaves=%d fanIn=%d: tree fold differs from serial sketch", topo.leaves, topo.fanIn)
		}
		if p := tree.Pending(); p != 0 {
			t.Fatalf("pending after flush = %d, want 0", p)
		}
	}
}

// TestMergeTreeMismatchRejected: a wrong-seed upload fails with the typed
// sentinel and poisons nothing — subsequent good uploads still fold exactly.
func TestMergeTreeMismatchRejected(t *testing.T) {
	const n, seed = 128, 3
	tree := NewMergeTree(2, 4, l0Factory(n, seed))

	good := streamsample.NewL0Sampler(n, streamsample.WithSeed(seed))
	good.Update(7, 1)
	if err := tree.Add(good); err != nil {
		t.Fatalf("good upload rejected: %v", err)
	}

	foreign := streamsample.NewL0Sampler(n, streamsample.WithSeed(seed+1))
	foreign.Update(9, 1)
	err := tree.Add(foreign)
	if !errors.Is(err, codec.ErrSeedMismatch) {
		t.Fatalf("foreign-seed upload err = %v, want ErrSeedMismatch", err)
	}

	misconfigured := streamsample.NewL0Sampler(n*2, streamsample.WithSeed(seed))
	misconfigured.Update(9, 1)
	if err := tree.Add(misconfigured); !errors.Is(err, codec.ErrConfigMismatch) {
		t.Fatalf("misconfigured upload err = %v, want ErrConfigMismatch", err)
	}

	good2 := streamsample.NewL0Sampler(n, streamsample.WithSeed(seed))
	good2.Update(11, 2)
	if err := tree.Add(good2); err != nil {
		t.Fatalf("good upload after rejections: %v", err)
	}

	st := tree.Stats()
	if st.Uploads != 2 || st.Rejected != 2 {
		t.Fatalf("stats = %+v, want 2 uploads, 2 rejected", st)
	}

	// The fold must equal exactly the two accepted uploads.
	serial := streamsample.NewL0Sampler(n, streamsample.WithSeed(seed))
	serial.Update(7, 1)
	serial.Update(11, 2)
	want, _ := serial.MarshalBinary()
	dst := streamsample.NewL0Sampler(n, streamsample.WithSeed(seed))
	if _, err := tree.FlushInto(dst); err != nil {
		t.Fatal(err)
	}
	got, _ := dst.MarshalBinary()
	if string(got) != string(want) {
		t.Fatal("rejected uploads leaked into the fold")
	}
}

// TestMergeTreeFanInDetaches: crossing the fan-in threshold moves the leaf
// accumulator to the root, bounding what any later leaf lock holds.
func TestMergeTreeFanInDetaches(t *testing.T) {
	const n, seed, fanIn = 64, 5, 3
	tree := NewMergeTree(1, fanIn, l0Factory(n, seed))
	for i := 0; i < fanIn; i++ {
		s := streamsample.NewL0Sampler(n, streamsample.WithSeed(seed))
		s.Update(i, 1)
		if err := tree.Add(s); err != nil {
			t.Fatal(err)
		}
	}
	st := tree.Stats()
	if st.LeafFolds != 1 {
		t.Fatalf("leaf folds = %d, want 1 after %d uploads at fan-in %d", st.LeafFolds, fanIn, fanIn)
	}
	if st.Pending != fanIn {
		t.Fatalf("pending = %d, want %d (uploads moved to root, not lost)", st.Pending, fanIn)
	}
}
