package sketchd

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"repro/internal/retry"
	"repro/internal/stream"
)

// Client is the typed client of the serving tier — what cmd/sketchload and
// cmd/workload -push speak. It negotiates the wire version up front, turns
// error envelopes back into errors.Is-able sentinels, and transparently
// retries failures the envelope marks retryable (plus transport errors,
// which never carry an envelope). Safe for concurrent use.
type Client struct {
	base     string
	http     *http.Client
	retry    retry.Policy
	versions string // comma-joined offer sent on every negotiated request
}

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithHTTPClient substitutes the transport (tests, timeouts).
func WithHTTPClient(h *http.Client) ClientOption { return func(c *Client) { c.http = h } }

// WithRetryPolicy tunes the transparent retry loop.
func WithRetryPolicy(p retry.Policy) ClientOption { return func(c *Client) { c.retry = p } }

// WithWireVersions overrides the advertised version offer (tests drive the
// red path of negotiation with it).
func WithWireVersions(vs ...uint16) ClientOption {
	return func(c *Client) {
		toks := make([]string, len(vs))
		for i, v := range vs {
			toks[i] = strconv.Itoa(int(v))
		}
		c.versions = strings.Join(toks, ",")
	}
}

// NewClient builds a client for a sketchd at base ("http://host:port").
func NewClient(base string, opts ...ClientOption) *Client {
	c := &Client{
		base:  strings.TrimRight(base, "/"),
		http:  http.DefaultClient,
		retry: retry.Policy{},
	}
	WithWireVersions(SupportedWireVersions...)(c)
	for _, o := range opts {
		o(c)
	}
	return c
}

// Negotiate resolves the wire version against the server. Red negotiations
// surface as ErrVersionNegotiation through the envelope.
func (c *Client) Negotiate(ctx context.Context) (uint16, error) {
	var version uint16
	err := c.do(ctx, http.MethodGet, "/v1/negotiate", "", nil, func(resp *http.Response) error {
		var body struct {
			Version uint16 `json:"version"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			return err
		}
		version = body.Version
		return nil
	})
	return version, err
}

// Create registers {tenant, name} with the given spec.
func (c *Client) Create(ctx context.Context, tenant, name string, spec Spec) error {
	body, err := json.Marshal(spec)
	if err != nil {
		return err
	}
	return c.do(ctx, http.MethodPut, c.sketchPath(tenant, name), "application/json", body, nil)
}

// Delete unregisters {tenant, name} and wipes its durable state.
func (c *Client) Delete(ctx context.Context, tenant, name string) error {
	return c.do(ctx, http.MethodDelete, c.sketchPath(tenant, name), "", nil, nil)
}

// Info fetches the registered spec.
func (c *Client) Info(ctx context.Context, tenant, name string) (SketchInfo, error) {
	var info SketchInfo
	err := c.do(ctx, http.MethodGet, c.sketchPath(tenant, name), "", nil, func(resp *http.Response) error {
		return json.NewDecoder(resp.Body).Decode(&info)
	})
	return info, err
}

// IngestResult reports what one ingest request landed.
type IngestResult struct {
	Frames  int64 `json:"frames"`
	Updates int64 `json:"updates"`
}

// PushUpdates streams raw update batches as codec frames. All batches
// travel in one request; the server ACKs with the accepted counts.
//
// Raw-update pushes are NOT transparently retried: the server ingests
// frames as they arrive, so a request that dies mid-stream may have landed
// a prefix and a blind resend would double-count it. Callers that need
// at-least-once semantics should push idempotent units (one batch per
// request) and retry those explicitly.
func (c *Client) PushUpdates(ctx context.Context, tenant, name string, batches ...[]stream.Update) (IngestResult, error) {
	var buf []byte
	for _, b := range batches {
		buf = AppendFrame(buf, b)
	}
	var res IngestResult
	err := c.once(ctx, http.MethodPost, c.sketchPath(tenant, name)+"/updates", "application/octet-stream", buf,
		func(resp *http.Response) error {
			return json.NewDecoder(resp.Body).Decode(&res)
		})
	return res, err
}

// PushSketch uploads one serialized sketch to be folded in. durable forces
// a checkpoint seal before the ACK. Sketch uploads are idempotent at the
// transport level only if the caller treats them so; the retry loop here
// retries ONLY when no 2xx was received AND the failure is marked retryable
// — a folded-but-lost-ACK upload can still double-fold, which is harmless
// for agreement tests that compare against the sum of what was ACKed, but
// callers needing exactly-once must dedupe upstream.
func (c *Client) PushSketch(ctx context.Context, tenant, name string, data []byte, durable bool) error {
	p := c.sketchPath(tenant, name) + "/sketches"
	if durable {
		p += "?durable=1"
	}
	return c.do(ctx, http.MethodPost, p, "application/octet-stream", data, nil)
}

// Sample draws from the merged sketch.
func (c *Client) Sample(ctx context.Context, tenant, name string) (SampleResult, error) {
	var res SampleResult
	err := c.do(ctx, http.MethodGet, c.sketchPath(tenant, name)+"/sample", "", nil,
		func(resp *http.Response) error {
			return json.NewDecoder(resp.Body).Decode(&res)
		})
	return res, err
}

// Bytes fetches the merged sketch in the wire format — ready for
// streamsample.Load, another tier's PushSketch, or a byte-identity
// assertion.
func (c *Client) Bytes(ctx context.Context, tenant, name string) ([]byte, error) {
	var blob []byte
	err := c.do(ctx, http.MethodGet, c.sketchPath(tenant, name)+"/bytes", "", nil,
		func(resp *http.Response) error {
			b, err := io.ReadAll(resp.Body)
			if err != nil {
				return err
			}
			blob = b
			return nil
		})
	return blob, err
}

// Checkpoint forces a durable seal of everything the sketch has accepted.
func (c *Client) Checkpoint(ctx context.Context, tenant, name string) error {
	return c.do(ctx, http.MethodPost, c.sketchPath(tenant, name)+"/checkpoint", "", nil, nil)
}

// Statsz fetches the observability document.
func (c *Client) Statsz(ctx context.Context) (Statsz, error) {
	var st Statsz
	err := c.do(ctx, http.MethodGet, "/statsz", "", nil, func(resp *http.Response) error {
		return json.NewDecoder(resp.Body).Decode(&st)
	})
	return st, err
}

func (c *Client) sketchPath(tenant, name string) string {
	return "/v1/tenants/" + url.PathEscape(tenant) + "/sketches/" + url.PathEscape(name)
}

// do runs one request through the retry loop: transport errors and
// envelope errors marked retryable are retried with backoff; typed
// non-retryable envelopes (mismatch, not-found, negotiation) fail fast as
// retry.Permanent.
func (c *Client) do(ctx context.Context, method, path, contentType string, body []byte, onOK func(*http.Response) error) error {
	return retry.Do(ctx, c.retry, func() error {
		err := c.once(ctx, method, path, contentType, body, onOK)
		if err == nil {
			return nil
		}
		var se *Error
		if errors.As(err, &se) && !se.Retryable {
			return retry.Permanent(err)
		}
		return err
	})
}

// once runs exactly one request. Non-2xx responses decode into the typed
// envelope error.
func (c *Client) once(ctx context.Context, method, path, contentType string, body []byte, onOK func(*http.Response) error) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	req.Header.Set(HeaderWireVersions, c.versions)
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("sketchd client: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return decodeError(resp.StatusCode, resp.Body)
	}
	if onOK != nil {
		return onOK(resp)
	}
	return nil
}
