package sketchd

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"repro/internal/codec"
	"repro/internal/stream"
)

// FuzzIngestFrame throws arbitrary bytes at the raw-update frame reader —
// the server-side parser of hostile network input. The contract: never
// panic, never return an update with an out-of-range index, and terminate
// every stream with io.EOF or a typed error. Valid re-encoded frames must
// round-trip.
func FuzzIngestFrame(f *testing.F) {
	f.Add([]byte{}, 100)
	f.Add(AppendFrame(nil, []stream.Update{{Index: 1, Delta: -3}}), 100)
	f.Add(AppendFrame(nil, []stream.Update{{Index: 0, Delta: 1}, {Index: 99, Delta: 1 << 40}}), 100)
	two := AppendFrame(nil, []stream.Update{{Index: 5, Delta: 7}})
	f.Add(AppendFrame(two, []stream.Update{{Index: 6, Delta: 8}}), 100)
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0x7F, 0, 0, 0, 0, 0, 0, 0, 0}, 100)

	f.Fuzz(func(t *testing.T, data []byte, n int) {
		if n < 0 {
			n = -n
		}
		fr := NewFrameReader(bytes.NewReader(data), n)
		var decoded [][]stream.Update
		for i := 0; i < 1000; i++ {
			batch, err := fr.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				// Every failure must be one of the typed sentinels.
				if !errors.Is(err, ErrBadFrame) && !errors.Is(err, codec.ErrTruncated) &&
					!errors.Is(err, codec.ErrBadRecord) {
					t.Fatalf("untyped frame error: %v", err)
				}
				return
			}
			for _, u := range batch {
				if u.Index < 0 || (n > 0 && u.Index >= n) {
					t.Fatalf("out-of-range index %d escaped the bound %d", u.Index, n)
				}
			}
			decoded = append(decoded, batch)
		}
		// Whatever decoded must re-encode and decode identically.
		var wire []byte
		for _, b := range decoded {
			wire = AppendFrame(wire, b)
		}
		fr2 := NewFrameReader(bytes.NewReader(wire), n)
		for i, want := range decoded {
			got, err := fr2.Next()
			if err != nil {
				t.Fatalf("re-decode frame %d: %v", i, err)
			}
			if len(got) != len(want) {
				t.Fatalf("re-decode frame %d: %d updates, want %d", i, len(got), len(want))
			}
			for j := range got {
				if got[j] != want[j] {
					t.Fatalf("re-decode frame %d update %d: %+v != %+v", i, j, got[j], want[j])
				}
			}
		}
	})
}

// FuzzNegotiate throws arbitrary header strings at the version negotiator.
// The contract: never panic, fail only with the typed sentinel, and any
// success must name a version the server actually supports.
func FuzzNegotiate(f *testing.F) {
	f.Add("")
	f.Add("1")
	f.Add("1,2,3")
	f.Add("0")
	f.Add("-1")
	f.Add("65536")
	f.Add("999999999999999999999")
	f.Add(",,,")
	f.Add("1;2")
	f.Add("\x001")

	f.Fuzz(func(t *testing.T, offer string) {
		v, err := Negotiate(offer)
		if err != nil {
			if !errors.Is(err, ErrVersionNegotiation) {
				t.Fatalf("Negotiate(%q): untyped error %v", offer, err)
			}
			return
		}
		supported := false
		for _, s := range SupportedWireVersions {
			if v == s {
				supported = true
			}
		}
		if !supported {
			t.Fatalf("Negotiate(%q) picked unsupported version %d", offer, v)
		}
	})
}
