// Package reservoir implements the classical insertion-only samplers the
// paper uses as context and building blocks:
//
//   - the reservoir L1 sampler attributed to Alan G. Waterman (§1): for
//     positive updates (i, u), replace the current sample with i with
//     probability u/s where s is the running sum — a perfect L1 sampler in
//     O(1) words;
//   - a k-item position reservoir over item streams, used by the length-
//     (n+s) duplicates algorithm at the end of §3 (sample 4⌈n/s⌉ items and
//     check whether one of them appears again).
package reservoir

import (
	"errors"
	"math/rand/v2"

	"repro/internal/stream"
)

// ErrNegativeUpdate is returned when the insertion-only L1 sampler receives
// a negative update — exactly the regime where the paper's Lp samplers are
// needed instead.
var ErrNegativeUpdate = errors.New("reservoir: negative update in insertion-only sampler")

// L1 is the perfect L1 sampler for positive update streams.
type L1 struct {
	r      *rand.Rand
	sum    float64
	sample int
	seen   bool
}

// NewL1 creates the sampler.
func NewL1(r *rand.Rand) *L1 { return &L1{r: r, sample: -1} }

// Add processes an update (i, u) with u > 0.
func (l *L1) Add(i int, u float64) error {
	if u <= 0 {
		return ErrNegativeUpdate
	}
	l.sum += u
	if !l.seen || l.r.Float64() < u/l.sum {
		l.sample = i
		l.seen = true
	}
	return nil
}

// Process implements stream.Sink; negative updates poison the sampler (it
// keeps the error for Sample to report).
func (l *L1) Process(u stream.Update) {
	if err := l.Add(u.Index, float64(u.Delta)); err != nil {
		l.seen = false
		l.sum = -1 // poisoned
	}
}

// Sample returns the current L1 sample.
func (l *L1) Sample() (int, bool) {
	if !l.seen || l.sum < 0 {
		return -1, false
	}
	return l.sample, true
}

// SpaceBits is O(1) words — the paper's point of contrast with the
// general-update problem.
func (l *L1) SpaceBits() int64 { return 3 * 64 }

// Items is a k-item sampler over an item stream of known length: it fixes k
// uniformly random positions up front (with replacement), remembers the
// letters landing there, and reports any letter it has remembered that
// appears again afterwards. This is the algorithm of §3's closing paragraph
// for streams of length n+s: with k = 4⌈n/s⌉ samples a duplicate is caught
// with constant probability.
type Items struct {
	positions  map[int][]int // stream position -> slots
	remembered map[int]bool  // letters currently remembered
	pos        int
	dup        int
	found      bool
	k          int
}

// NewItems creates a sampler of k positions over a stream of the given
// length.
func NewItems(k, length int, r *rand.Rand) *Items {
	s := &Items{
		positions:  make(map[int][]int, k),
		remembered: make(map[int]bool, k),
		dup:        -1,
		k:          k,
	}
	for j := 0; j < k; j++ {
		p := r.IntN(length)
		s.positions[p] = append(s.positions[p], j)
	}
	return s
}

// ProcessItem consumes the next letter of the stream.
func (s *Items) ProcessItem(letter int) {
	// A remembered letter seen again is a duplicate. Check before
	// remembering so a letter sampled at this very position does not match
	// itself.
	if s.remembered[letter] && !s.found {
		s.dup = letter
		s.found = true
	}
	if _, sampled := s.positions[s.pos]; sampled {
		s.remembered[letter] = true
	}
	s.pos++
}

// Duplicate reports the first caught duplicate.
func (s *Items) Duplicate() (int, bool) { return s.dup, s.found }

// SpaceBits accounts k remembered letters plus k sampled positions at one
// word each — the O((n/s) log n) bits of the §3 algorithm.
func (s *Items) SpaceBits() int64 { return int64(2*s.k) * 64 }
