package reservoir

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/stream"
)

func TestL1PerfectSampling(t *testing.T) {
	// Weights 1,2,3,4: sampling frequencies must match u_i / sum.
	r := rand.New(rand.NewPCG(1, 1))
	weights := []float64{1, 2, 3, 4}
	counts := make([]int, 4)
	const trials = 20000
	for trial := 0; trial < trials; trial++ {
		l := NewL1(r)
		for i, w := range weights {
			if err := l.Add(i, w); err != nil {
				t.Fatal(err)
			}
		}
		i, ok := l.Sample()
		if !ok {
			t.Fatal("sampler with mass must not fail")
		}
		counts[i]++
	}
	for i, w := range weights {
		want := w / 10 * trials
		if math.Abs(float64(counts[i])-want) > 6*math.Sqrt(want) {
			t.Errorf("index %d sampled %d times, want ~%.0f", i, counts[i], want)
		}
	}
}

func TestL1SplitUpdatesEquivalent(t *testing.T) {
	// An item delivered as two partial updates keeps the right total mass.
	r := rand.New(rand.NewPCG(2, 2))
	counts := make([]int, 2)
	const trials = 20000
	for trial := 0; trial < trials; trial++ {
		l := NewL1(r)
		l.Add(0, 3)
		l.Add(1, 1)
		l.Add(1, 2) // index 1 also totals 3
		i, _ := l.Sample()
		counts[i]++
	}
	if math.Abs(float64(counts[0])-trials/2) > 6*math.Sqrt(trials/4) {
		t.Errorf("split updates biased: %v", counts)
	}
}

func TestL1RejectsNegative(t *testing.T) {
	l := NewL1(rand.New(rand.NewPCG(3, 3)))
	if err := l.Add(0, -1); err != ErrNegativeUpdate {
		t.Fatalf("err = %v, want ErrNegativeUpdate", err)
	}
	l2 := NewL1(rand.New(rand.NewPCG(3, 4)))
	l2.Process(stream.Update{Index: 0, Delta: 5})
	l2.Process(stream.Update{Index: 1, Delta: -2})
	if _, ok := l2.Sample(); ok {
		t.Fatal("poisoned sampler must fail")
	}
}

func TestL1Empty(t *testing.T) {
	l := NewL1(rand.New(rand.NewPCG(4, 4)))
	if _, ok := l.Sample(); ok {
		t.Fatal("empty sampler must fail")
	}
}

func TestItemsCatchesPlantedDuplicate(t *testing.T) {
	// A letter occupying a constant fraction of the stream is caught with
	// very high probability by O(1) samples.
	r := rand.New(rand.NewPCG(5, 5))
	const n, length = 100, 200
	caught := 0
	const trials = 50
	for trial := 0; trial < trials; trial++ {
		s := NewItems(40, length, r)
		for pos := 0; pos < length; pos++ {
			s.ProcessItem(pos % n) // every letter appears exactly twice
		}
		if d, ok := s.Duplicate(); ok {
			if d < 0 || d >= n {
				t.Fatalf("bogus duplicate %d", d)
			}
			caught++
		}
	}
	if caught < trials*8/10 {
		t.Errorf("caught only %d/%d", caught, trials)
	}
}

func TestItemsNoFalsePositive(t *testing.T) {
	// A duplicate-free stream must never report one.
	r := rand.New(rand.NewPCG(6, 6))
	s := NewItems(50, 100, r)
	for i := 0; i < 100; i++ {
		s.ProcessItem(i)
	}
	if d, ok := s.Duplicate(); ok {
		t.Fatalf("false duplicate %d on distinct stream", d)
	}
}

func TestItemsSelfMatchAvoided(t *testing.T) {
	// A letter sampled at its own position must not match itself; with every
	// position sampled, a distinct stream still reports nothing.
	r := rand.New(rand.NewPCG(7, 7))
	s := NewItems(500, 10, r) // k >> length: all positions sampled
	for i := 0; i < 10; i++ {
		s.ProcessItem(i)
	}
	if _, ok := s.Duplicate(); ok {
		t.Fatal("self-match bug")
	}
}

func TestItemsSectionThreeRegime(t *testing.T) {
	// The §3 regime: length n+s, k = 4*ceil(n/s) positions catches a
	// duplicate with constant probability.
	r := rand.New(rand.NewPCG(8, 8))
	const n = 400
	const s = 100
	caught := 0
	const trials = 60
	for trial := 0; trial < trials; trial++ {
		items := stream.LongItems(n, s, r)
		k := 4 * ((n + s - 1) / s)
		rs := NewItems(k, len(items), r)
		for _, it := range items {
			rs.ProcessItem(it)
		}
		if _, ok := rs.Duplicate(); ok {
			caught++
		}
	}
	// Theory: per sampled position, recurrence probability >= s/(n+s) = 0.2;
	// with 16 samples, catch rate ~ 1-(0.8)^16 ≈ 0.97 on random streams.
	if caught < trials/2 {
		t.Errorf("caught %d/%d, want constant rate", caught, trials)
	}
}

func TestSpaceBits(t *testing.T) {
	r := rand.New(rand.NewPCG(9, 9))
	if NewL1(r).SpaceBits() > 4*64 {
		t.Error("reservoir L1 must be O(1) words")
	}
	small := NewItems(10, 100, r)
	big := NewItems(100, 1000, r)
	if big.SpaceBits() <= small.SpaceBits() {
		t.Error("Items space must grow with k")
	}
}
