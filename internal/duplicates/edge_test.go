package duplicates

import (
	"math/rand/v2"
	"testing"

	"repro/internal/stream"
)

// TestFinderAllSameLetter: the extreme stream where one letter fills all
// n+1 positions — maximal duplicate mass, x has one coordinate at n and
// n-1 coordinates at -1.
func TestFinderAllSameLetter(t *testing.T) {
	r := rand.New(rand.NewPCG(1, 1))
	const n = 128
	for trial := 0; trial < 5; trial++ {
		f := NewFinder(n, 0.1, r)
		for i := 0; i <= n; i++ {
			f.ProcessItem(42)
		}
		res := f.Find()
		if res.Kind != Duplicate || res.Index != 42 {
			t.Fatalf("trial %d: got %+v, want duplicate 42", trial, res)
		}
	}
}

func TestFinderEmptyStream(t *testing.T) {
	// No items at all: x = (-1,...,-1), no positive coordinate exists; the
	// finder must FAIL, never invent a duplicate.
	r := rand.New(rand.NewPCG(2, 2))
	for trial := 0; trial < 10; trial++ {
		f := NewFinder(64, 0.1, r)
		if res := f.Find(); res.Kind == Duplicate {
			t.Fatalf("trial %d: duplicate %d invented on empty stream", trial, res.Index)
		}
	}
}

func TestFinderStreamWithoutDuplicates(t *testing.T) {
	// Length-n permutation stream (x = 0 everywhere): must not report.
	r := rand.New(rand.NewPCG(3, 3))
	const n = 128
	wrong := 0
	for trial := 0; trial < 10; trial++ {
		f := NewFinder(n, 0.1, r)
		for _, it := range r.Perm(n) {
			f.ProcessItem(it)
		}
		if res := f.Find(); res.Kind == Duplicate {
			wrong++
		}
	}
	// x is the zero vector; emitting anything requires the norm estimate to
	// misfire, a low-probability event.
	if wrong > 1 {
		t.Errorf("reported duplicates on %d/10 duplicate-free streams", wrong)
	}
}

func TestShortFinderSEqualsNMinusOne(t *testing.T) {
	// Degenerate short stream: length 1. Always duplicate-free.
	r := rand.New(rand.NewPCG(4, 4))
	const n = 64
	sf := NewShortFinder(n, n-1, 0.1, r)
	sf.ProcessItem(7)
	if res := sf.Find(); res.Kind != NoDuplicate {
		t.Fatalf("got %+v on a single-item stream", res)
	}
}

func TestShortFinderNegativeSClamped(t *testing.T) {
	r := rand.New(rand.NewPCG(5, 5))
	sf := NewShortFinder(64, -3, 0.1, r)
	sf.ProcessItem(1)
	sf.ProcessItem(1)
	// With s clamped to 0 the budget is 5*0 -> 1; x (one +1, rest -1 ...)
	// is dense, so the sampler path must engage and find letter 1 often.
	res := sf.Find()
	if res.Kind == NoDuplicate {
		t.Fatal("NoDuplicate on a stream with a duplicate")
	}
}

func TestLongFinderSClampedToOne(t *testing.T) {
	r := rand.New(rand.NewPCG(6, 6))
	lf := NewLongFinder(64, 0, 0.1, 0, r)
	items := stream.LongItems(64, 1, r)
	for _, it := range items {
		lf.ProcessItem(it)
	}
	lf.Find() // must not panic
}

func TestPositiveFinderAllNegative(t *testing.T) {
	// No positive coordinate exists: Find must FAIL (w.h.p.), not return a
	// negative coordinate.
	r := rand.New(rand.NewPCG(7, 7))
	wrong := 0
	for trial := 0; trial < 10; trial++ {
		pf := NewPositiveFinder(64, 0.1, r)
		for i := 0; i < 64; i++ {
			pf.Process(stream.Update{Index: i, Delta: -int64(1 + i%5)})
		}
		if res := pf.Find(); res.Kind == Duplicate {
			wrong++
		}
	}
	if wrong > 1 {
		t.Errorf("positive finder hallucinated on %d/10 all-negative vectors", wrong)
	}
}
