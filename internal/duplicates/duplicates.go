// Package duplicates implements §3 of the paper: finding a repeated letter
// in a stream over the alphabet [n].
//
// Three algorithms, one per stream-length regime:
//
//   - Finder (Theorem 3): length n+1 — a duplicate always exists by
//     pigeonhole. Feed x_i = (#occurrences of i) - 1 to an L1 sampler with
//     ε = δ = 1/2; since Σx_i = 1, a sample with positive estimate is a
//     duplicate with high probability. O(log² n · log(1/δ)) bits.
//   - ShortFinder (Theorem 4): length n-s — runs exact 5s-sparse recovery
//     (Lemma 5) in parallel with the L1 sampler. If recovery returns the
//     vector, the answer is exact (including NO-DUPLICATE with probability 1
//     on duplicate-free streams); otherwise ‖x‖⁺₁/‖x‖₁ > 2/5 and the sampler
//     finds a positive coordinate. O(s log n + log² n log(1/δ)) bits.
//   - LongFinder (§3 end): length n+s — samples 4⌈n/s⌉ positions and checks
//     recurrence, O((n/s) log n) bits; automatically switches to the
//     Theorem 3 sampler when n/s ≥ log n, realizing the
//     O(min{log² n, (n/s) log n}) bound.
//
// The generalized form (remark after Theorem 4) is exposed as
// PositiveFinder: given any update stream, find an index with x_i > 0.
package duplicates

import (
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/reservoir"
	"repro/internal/sparse"
	"repro/internal/stream"
)

// Kind classifies an outcome.
type Kind int

const (
	// Fail means the algorithm could not produce an answer (probability δ).
	Fail Kind = iota
	// Duplicate means Index is a letter that appears at least twice (or a
	// coordinate with x_i > 0 for PositiveFinder).
	Duplicate
	// NoDuplicate certifies the stream has no repeated letter (ShortFinder
	// only; exact, never wrong).
	NoDuplicate
)

// Result is the outcome of a finder.
type Result struct {
	Kind  Kind
	Index int
	// Value is the recovered/estimated multiplicity excess x_i where
	// available (exact for the sparse-recovery path of ShortFinder).
	Value float64
}

// PositiveFinder finds an index with x_i > 0 in a general update stream via
// L1 sampling — the engine behind both Theorem 3 and Theorem 4. The L1
// sampler runs with ε = 1/2 relative error per the theorems; samples with
// non-positive estimates are rejected, and the repetition count folds the
// rejection probability into δ.
type PositiveFinder struct {
	sampler *core.LpSampler
}

// NewPositiveFinder builds the engine for dimension n and overall failure
// probability delta.
func NewPositiveFinder(n int, delta float64, r *rand.Rand) *PositiveFinder {
	if delta <= 0 || delta >= 1 {
		delta = 0.25
	}
	// Theorem 3: per repetition, P(positive duplicate output) >= 1/4 for
	// streams with sum(x) = 1 — composed of the sampler's own success rate
	// and the >1/2 positive mass. Size the repetitions against that rate.
	copies := int(math.Ceil(math.Log(1/delta) * 8))
	if copies < 4 {
		copies = 4
	}
	return &PositiveFinder{
		sampler: core.NewLpSampler(core.LpConfig{
			P:      1,
			N:      n,
			Eps:    0.5,
			Delta:  0.5,
			Copies: copies,
		}, r),
	}
}

// Process implements stream.Sink.
func (f *PositiveFinder) Process(u stream.Update) { f.sampler.Process(u) }

// ProcessBatch implements stream.BatchSink via the sampler's batched path.
func (f *PositiveFinder) ProcessBatch(batch []stream.Update) { f.sampler.ProcessBatch(batch) }

// Merge adds another finder's sampler state (sketch linearity); both must be
// same-seed replicas.
func (f *PositiveFinder) Merge(other *PositiveFinder) error {
	if other == nil {
		return fmt.Errorf("duplicates: %w", codec.ErrNilMerge)
	}
	return f.sampler.Merge(other.sampler)
}

// AppendState writes the underlying sampler's linear state into a codec
// encoder.
func (f *PositiveFinder) AppendState(e *codec.Encoder) { f.sampler.AppendState(e) }

// RestoreState replaces the underlying sampler's linear state from a codec
// decoder.
func (f *PositiveFinder) RestoreState(d *codec.Decoder) { f.sampler.RestoreState(d) }

// Find returns the first sampled coordinate with positive estimate.
func (f *PositiveFinder) Find() Result {
	for _, s := range f.sampler.SampleAll() {
		if s.Estimate > 0 {
			return Result{Kind: Duplicate, Index: s.Index, Value: s.Estimate}
		}
	}
	return Result{Kind: Fail, Index: -1}
}

// SpaceBits reports the sampler state.
func (f *PositiveFinder) SpaceBits() int64 { return f.sampler.SpaceBits() }

// StateBits reports the transmissible counter state (public-coin message
// size for the Theorem 7 reduction).
func (f *PositiveFinder) StateBits() int64 { return f.sampler.StateBits() }

// itemsToUpdates converts letters to +1 updates in a reusable buffer — the
// shared shim between the item-stream APIs of §3 and the batched update
// sinks underneath.
func itemsToUpdates(letters []int, buf *[]stream.Update) []stream.Update {
	b := (*buf)[:0]
	if cap(b) < len(letters) {
		b = make([]stream.Update, 0, len(letters))
	}
	for _, it := range letters {
		b = append(b, stream.Update{Index: it, Delta: 1})
	}
	*buf = b
	return b
}

// Finder is the Theorem 3 algorithm for item streams of length n+1 over [n].
type Finder struct {
	n   int
	pf  *PositiveFinder
	buf []stream.Update
}

// NewFinder creates the finder. The constructor feeds the (i, -1) prefix for
// every letter, so x_i counts occurrences minus one from the start.
func NewFinder(n int, delta float64, r *rand.Rand) *Finder {
	f := NewFinderForRestore(n, delta, r)
	f.pf.ProcessBatch(stream.DecrementAll(n))
	return f
}

// NewFinderForRestore builds a same-seed Finder without feeding the O(n)
// pigeonhole prefix — for restore paths that immediately replace the
// sampler's linear state with serialized measurements, which already
// contain the prefix. Using it without a RestoreState is wrong: the
// invariant x_i = occurrences - 1 would not hold.
func NewFinderForRestore(n int, delta float64, r *rand.Rand) *Finder {
	return &Finder{n: n, pf: NewPositiveFinder(n, delta, r)}
}

// ProcessItem consumes one letter of the stream.
func (f *Finder) ProcessItem(letter int) {
	f.pf.Process(stream.Update{Index: letter, Delta: 1})
}

// ProcessItems consumes a batch of letters through the sampler's batched
// hot path, reusing an internal conversion buffer.
func (f *Finder) ProcessItems(letters []int) {
	f.pf.ProcessBatch(itemsToUpdates(letters, &f.buf))
}

// Process implements stream.Sink on the letters-as-updates encoding
// (stream.Items.Updates), so a Finder can sit behind the ingestion engine.
func (f *Finder) Process(u stream.Update) { f.pf.Process(u) }

// ProcessBatch implements stream.BatchSink.
func (f *Finder) ProcessBatch(batch []stream.Update) { f.pf.ProcessBatch(batch) }

// Merge combines another same-seed replica's observations. Each replica's
// constructor fed the (i, -1) pigeonhole prefix, so a plain linear merge
// would count that prefix twice; Merge compensates by re-adding +1 per
// letter, leaving x_i = (total occurrences across replicas) - 1 — exactly
// the state of one finder that saw the whole stream.
func (f *Finder) Merge(other *Finder) error {
	if other == nil {
		return fmt.Errorf("duplicates: %w", codec.ErrNilMerge)
	}
	if f.n != other.n {
		return fmt.Errorf("duplicates: merging finders of different alphabet sizes: %w", codec.ErrConfigMismatch)
	}
	if err := f.pf.Merge(other.pf); err != nil {
		return err
	}
	f.pf.ProcessBatch(stream.IncrementAll(f.n))
	return nil
}

// Find outputs a duplicate letter or Fail. A returned letter is a true
// duplicate except with low probability (the sampler's estimate would need
// the wrong sign).
func (f *Finder) Find() Result { return f.pf.Find() }

// AppendState writes the finder's sampler state into a codec encoder. The
// pigeonhole prefix the constructor fed is part of that linear state, so a
// restored finder continues exactly where the exporter stopped.
func (f *Finder) AppendState(e *codec.Encoder) { f.pf.AppendState(e) }

// RestoreState replaces the finder's sampler state from a codec decoder.
func (f *Finder) RestoreState(d *codec.Decoder) { f.pf.RestoreState(d) }

// SpaceBits reports the streaming state.
func (f *Finder) SpaceBits() int64 { return f.pf.SpaceBits() }

// StateBits reports the transmissible counter state.
func (f *Finder) StateBits() int64 { return f.pf.StateBits() }

// ShortFinder is the Theorem 4 algorithm for streams of length n-s.
type ShortFinder struct {
	n   int
	s   int
	rec *sparse.Recoverer
	pf  *PositiveFinder
	buf []stream.Update
}

// NewShortFinder creates the finder for streams of length n-s.
func NewShortFinder(n, s int, delta float64, r *rand.Rand) *ShortFinder {
	if s < 0 {
		s = 0
	}
	budget := 5 * s
	if budget < 1 {
		budget = 1
	}
	sf := &ShortFinder{
		n:   n,
		s:   s,
		rec: sparse.New(n, budget, r),
		pf:  NewPositiveFinder(n, delta, r),
	}
	prefix := stream.DecrementAll(n)
	sf.rec.ProcessBatch(prefix)
	sf.pf.ProcessBatch(prefix)
	return sf
}

// ProcessItem consumes one letter.
func (sf *ShortFinder) ProcessItem(letter int) {
	u := stream.Update{Index: letter, Delta: 1}
	sf.rec.Process(u)
	sf.pf.Process(u)
}

// Process implements stream.Sink on the letters-as-updates encoding, so a
// ShortFinder can sit behind the ingestion engine like the Theorem 3
// finder.
func (sf *ShortFinder) Process(u stream.Update) {
	sf.rec.Process(u)
	sf.pf.Process(u)
}

// ProcessBatch implements stream.BatchSink: both the 5s-sparse recoverer
// (transposed syndrome kernel) and the L1 sampler consume the batch through
// their batched paths.
func (sf *ShortFinder) ProcessBatch(batch []stream.Update) {
	sf.rec.ProcessBatch(batch)
	sf.pf.ProcessBatch(batch)
}

// ProcessItems consumes a batch of letters through both batched paths.
func (sf *ShortFinder) ProcessItems(letters []int) {
	sf.ProcessBatch(itemsToUpdates(letters, &sf.buf))
}

// Merge combines another same-seed replica's observations. Both replicas'
// constructors fed the (i, -1) pigeonhole prefix to the recoverer and the
// sampler, so a plain linear merge counts that prefix twice; Merge
// compensates with +1 per letter on both structures, exactly like
// Finder.Merge. Validation runs before any mutation.
func (sf *ShortFinder) Merge(other *ShortFinder) error {
	if other == nil {
		return fmt.Errorf("duplicates: %w", codec.ErrNilMerge)
	}
	if sf.n != other.n || sf.s != other.s {
		return fmt.Errorf("duplicates: merging short finders of different shapes: %w", codec.ErrConfigMismatch)
	}
	if !sf.rec.Compatible(other.rec) {
		return fmt.Errorf("duplicates: %w", codec.ErrSeedMismatch)
	}
	if err := sf.pf.Merge(other.pf); err != nil {
		return err
	}
	if err := sf.rec.Merge(other.rec); err != nil {
		return err
	}
	inc := stream.IncrementAll(sf.n)
	sf.rec.ProcessBatch(inc)
	sf.pf.ProcessBatch(inc)
	return nil
}

// Find resolves the stream: exact answer when x is 5s-sparse (including the
// certain NO-DUPLICATE on duplicate-free streams), else the sampler's
// positive coordinate, else Fail.
func (sf *ShortFinder) Find() Result {
	if rec, ok := sf.rec.Recover(); ok {
		for i, v := range rec {
			if v > 0 {
				return Result{Kind: Duplicate, Index: i, Value: float64(v)}
			}
		}
		return Result{Kind: NoDuplicate, Index: -1}
	}
	return sf.pf.Find()
}

// AppendState writes the recoverer and sampler state into a codec encoder.
func (sf *ShortFinder) AppendState(e *codec.Encoder) {
	sf.rec.AppendState(e)
	sf.pf.AppendState(e)
}

// RestoreState replaces the recoverer and sampler state from a codec
// decoder.
func (sf *ShortFinder) RestoreState(d *codec.Decoder) {
	sf.rec.RestoreState(d)
	sf.pf.RestoreState(d)
}

// SpaceBits reports recovery plus sampler state — the O(s log n + log² n)
// bits of Theorem 4.
func (sf *ShortFinder) SpaceBits() int64 {
	return sf.rec.SpaceBits() + sf.pf.SpaceBits()
}

// LongFinder handles streams of length n+s (§3 end).
type LongFinder struct {
	useSampler bool
	items      *reservoir.Items
	finder     *positiveItemFinder
	buf        []stream.Update
}

// positiveItemFinder adapts PositiveFinder to item streams without the
// pigeonhole prefix trick needing length exactly n+1: feeding occurrences-
// minus-one still leaves sum(x) = s >= 1 for length n+s, so positive
// coordinates exist and the sampler finds one.
type positiveItemFinder struct {
	pf *PositiveFinder
}

// NewLongFinder picks the cheaper algorithm: position sampling when
// n/s < log n, the L1 sampler otherwise. Force the choice with forceSampler
// (0 = auto, 1 = sampler, 2 = position sampling) for the E6 crossover
// experiment.
func NewLongFinder(n, s int, delta float64, force int, r *rand.Rand) *LongFinder {
	if s < 1 {
		s = 1
	}
	useSampler := float64(n)/float64(s) >= math.Log2(float64(n))
	switch force {
	case 1:
		useSampler = true
	case 2:
		useSampler = false
	}
	lf := &LongFinder{useSampler: useSampler}
	if useSampler {
		pf := NewPositiveFinder(n, delta, r)
		for _, u := range stream.DecrementAll(n) {
			pf.Process(u)
		}
		lf.finder = &positiveItemFinder{pf: pf}
	} else {
		k := 4 * int(math.Ceil(float64(n)/float64(s)))
		lf.items = reservoir.NewItems(k, n+s, r)
	}
	return lf
}

// UsesSampler reports which algorithm was selected.
func (lf *LongFinder) UsesSampler() bool { return lf.useSampler }

// ProcessItem consumes one letter.
func (lf *LongFinder) ProcessItem(letter int) {
	if lf.useSampler {
		lf.finder.pf.Process(stream.Update{Index: letter, Delta: 1})
		return
	}
	lf.items.ProcessItem(letter)
}

// ProcessItems consumes a batch of letters; in sampler mode the batch flows
// through the L1 sampler's batched path, in position-sampling mode the
// reservoir consumes items one by one (its per-item work is O(1) already).
func (lf *LongFinder) ProcessItems(letters []int) {
	if lf.useSampler {
		lf.finder.pf.ProcessBatch(itemsToUpdates(letters, &lf.buf))
		return
	}
	for _, it := range letters {
		lf.items.ProcessItem(it)
	}
}

// Find reports a duplicate or Fail.
func (lf *LongFinder) Find() Result {
	if lf.useSampler {
		return lf.finder.pf.Find()
	}
	if d, ok := lf.items.Duplicate(); ok {
		return Result{Kind: Duplicate, Index: d}
	}
	return Result{Kind: Fail, Index: -1}
}

// SpaceBits reports the state of whichever algorithm runs.
func (lf *LongFinder) SpaceBits() int64 {
	if lf.useSampler {
		return lf.finder.pf.SpaceBits()
	}
	return lf.items.SpaceBits()
}
