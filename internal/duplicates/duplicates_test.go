package duplicates

import (
	"math/rand/v2"
	"testing"

	"repro/internal/stream"
)

// isDuplicate checks an answer against the item stream.
func isDuplicate(items stream.Items, letter int) bool {
	c := 0
	for _, it := range items {
		if it == letter {
			c++
		}
	}
	return c >= 2
}

func TestFinderRandomStreams(t *testing.T) {
	r := rand.New(rand.NewPCG(1, 1))
	const n = 256
	fails, wrong := 0, 0
	const trials = 25
	for trial := 0; trial < trials; trial++ {
		items := stream.DuplicateItems(n, -1, r)
		f := NewFinder(n, 0.1, r)
		for _, it := range items {
			f.ProcessItem(it)
		}
		res := f.Find()
		switch res.Kind {
		case Fail:
			fails++
		case Duplicate:
			if !isDuplicate(items, res.Index) {
				wrong++
			}
		default:
			t.Fatalf("unexpected result kind %v", res.Kind)
		}
	}
	if wrong > 0 {
		t.Errorf("%d wrong duplicates (must be low probability)", wrong)
	}
	if fails > trials/4 {
		t.Errorf("%d/%d failures, want <= δ + slack", fails, trials)
	}
}

func TestFinderSingleDuplicateAdversarial(t *testing.T) {
	// Exactly one letter repeats: the hardest instance (duplicate mass is
	// minimal, every other letter has x_i = 0).
	r := rand.New(rand.NewPCG(2, 2))
	const n = 128
	fails, wrong := 0, 0
	const trials = 25
	for trial := 0; trial < trials; trial++ {
		target := r.IntN(n)
		items := stream.DuplicateItems(n, target, r)
		f := NewFinder(n, 0.1, r)
		for _, it := range items {
			f.ProcessItem(it)
		}
		res := f.Find()
		switch res.Kind {
		case Fail:
			fails++
		case Duplicate:
			if res.Index != target {
				wrong++
			}
		}
	}
	if wrong > 0 {
		t.Errorf("%d wrong answers on single-duplicate streams", wrong)
	}
	if fails > trials/3 {
		t.Errorf("%d/%d failures on adversarial streams", fails, trials)
	}
}

func TestShortFinderNoDuplicateExact(t *testing.T) {
	// Duplicate-free streams of length n-s: NO-DUPLICATE with probability 1.
	r := rand.New(rand.NewPCG(3, 3))
	const n = 200
	for _, s := range []int{0, 1, 5, 20} {
		for trial := 0; trial < 5; trial++ {
			items := stream.ShortItems(n, s, false, 0, r)
			sf := NewShortFinder(n, s, 0.1, r)
			for _, it := range items {
				sf.ProcessItem(it)
			}
			res := sf.Find()
			if res.Kind != NoDuplicate {
				t.Fatalf("s=%d: result %v on duplicate-free stream, want NoDuplicate", s, res.Kind)
			}
		}
	}
}

func TestShortFinderSparseCaseExact(t *testing.T) {
	// Few duplicates => x is 5s-sparse => sparse recovery answers exactly.
	r := rand.New(rand.NewPCG(4, 4))
	const n = 200
	const s = 10
	for trial := 0; trial < 10; trial++ {
		items := stream.ShortItems(n, s, true, 2, r)
		sf := NewShortFinder(n, s, 0.1, r)
		for _, it := range items {
			sf.ProcessItem(it)
		}
		res := sf.Find()
		if res.Kind != Duplicate {
			t.Fatalf("trial %d: kind %v, want Duplicate (sparse path never fails)", trial, res.Kind)
		}
		if !isDuplicate(items, res.Index) {
			t.Fatalf("trial %d: %d is not a duplicate", trial, res.Index)
		}
		if res.Value != 1 {
			t.Fatalf("trial %d: recovered excess %v, want exactly 1", trial, res.Value)
		}
	}
}

func TestShortFinderDensePath(t *testing.T) {
	// Many duplicates: x is not 5s-sparse, the sampler path must engage.
	r := rand.New(rand.NewPCG(5, 5))
	const n = 256
	const s = 2
	fails, wrong := 0, 0
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		// length n-2 with ~120 duplicated letters: ~120 positives, ~120+2
		// negatives — far beyond 5s = 10 sparse.
		items := stream.ShortItems(n, s, true, 120, r)
		sf := NewShortFinder(n, s, 0.1, r)
		for _, it := range items {
			sf.ProcessItem(it)
		}
		res := sf.Find()
		switch res.Kind {
		case NoDuplicate:
			t.Fatal("NoDuplicate on a stream full of duplicates")
		case Fail:
			fails++
		case Duplicate:
			if !isDuplicate(items, res.Index) {
				wrong++
			}
		}
	}
	if wrong > 0 {
		t.Errorf("%d wrong answers", wrong)
	}
	if fails > trials/3 {
		t.Errorf("%d/%d failures", fails, trials)
	}
}

func TestPositiveFinderGeneralStreams(t *testing.T) {
	// The remark after Theorem 4: any update stream with sum(x) < 0 has a
	// positive coordinate... only when one exists by construction; here we
	// plant positives among negatives.
	r := rand.New(rand.NewPCG(6, 6))
	const n = 128
	found, wrong := 0, 0
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		pf := NewPositiveFinder(n, 0.1, r)
		positives := map[int]bool{}
		for i := 0; i < n; i++ {
			if i%4 == 0 {
				pf.Process(stream.Update{Index: i, Delta: 3})
				positives[i] = true
			} else {
				pf.Process(stream.Update{Index: i, Delta: -2})
			}
		}
		res := pf.Find()
		if res.Kind == Duplicate {
			found++
			if !positives[res.Index] {
				wrong++
			}
		}
	}
	if wrong > 0 {
		t.Errorf("%d non-positive coordinates returned", wrong)
	}
	if found < trials*2/3 {
		t.Errorf("positive coordinate found only %d/%d times", found, trials)
	}
}

func TestLongFinderBothModes(t *testing.T) {
	r := rand.New(rand.NewPCG(7, 7))
	const n = 256
	for _, force := range []int{1, 2} {
		caught, fails := 0, 0
		const trials = 15
		for trial := 0; trial < trials; trial++ {
			const s = 64
			items := stream.LongItems(n, s, r)
			lf := NewLongFinder(n, s, 0.1, force, r)
			for _, it := range items {
				lf.ProcessItem(it)
			}
			res := lf.Find()
			switch res.Kind {
			case Duplicate:
				if !isDuplicate(items, res.Index) {
					t.Fatalf("force=%d: wrong duplicate", force)
				}
				caught++
			case Fail:
				fails++
			}
		}
		if caught < trials/2 {
			t.Errorf("force=%d: caught only %d/%d", force, caught, trials)
		}
	}
}

func TestLongFinderAutoSelection(t *testing.T) {
	r := rand.New(rand.NewPCG(8, 8))
	// n/s tiny => position sampling; n/s huge => sampler.
	lf := NewLongFinder(1024, 512, 0.1, 0, r)
	if lf.UsesSampler() {
		t.Error("n/s=2 < log n: should use position sampling")
	}
	lf = NewLongFinder(1024, 2, 0.1, 0, r)
	if !lf.UsesSampler() {
		t.Error("n/s=512 >= log n: should use the L1 sampler")
	}
}

func TestSpaceBitsRegimes(t *testing.T) {
	r := rand.New(rand.NewPCG(9, 9))
	// ShortFinder space grows with s (the 5s-sparse recovery part).
	a := NewShortFinder(256, 1, 0.2, r)
	b := NewShortFinder(256, 50, 0.2, r)
	if b.SpaceBits() <= a.SpaceBits() {
		t.Error("ShortFinder space must grow with s")
	}
	// LongFinder in position-sampling mode shrinks as s grows.
	c := NewLongFinder(1024, 256, 0.2, 2, r)
	d := NewLongFinder(1024, 512, 0.2, 2, r)
	if d.SpaceBits() > c.SpaceBits() {
		t.Error("position-sampling space must shrink with s")
	}
}

func BenchmarkFinderProcess(b *testing.B) {
	r := rand.New(rand.NewPCG(1, 1))
	const n = 1 << 12
	f := NewFinder(n, 0.2, r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.ProcessItem(i % n)
	}
}

func TestFinderMergeCompensatesPrefix(t *testing.T) {
	// Each replica's constructor feeds the (i, -1) pigeonhole prefix; Merge
	// must re-add it once so the combined finder behaves like one finder
	// that saw the whole stream. Verified against the serial finder's
	// outcome on split streams.
	const n = 128
	agree, ok := 0, 0
	const trials = 12
	for trial := 0; trial < trials; trial++ {
		r := rand.New(rand.NewPCG(uint64(80+trial), 81))
		items := stream.DuplicateItems(n, r.IntN(n), r)
		seed := uint64(90 + trial)
		mk := func() *Finder { return NewFinder(n, 0.2, rand.New(rand.NewPCG(seed, seed+1))) }
		serial, a, b := mk(), mk(), mk()
		for _, it := range items {
			serial.ProcessItem(it)
		}
		half := len(items) / 2
		for _, it := range items[:half] {
			a.ProcessItem(it)
		}
		for _, it := range items[half:] {
			b.ProcessItem(it)
		}
		if err := a.Merge(b); err != nil {
			t.Fatalf("same-seed merge failed: %v", err)
		}
		sr, mr := serial.Find(), a.Find()
		if sr == mr {
			agree++
		}
		if mr.Kind == Duplicate {
			ok++
			if !isDuplicate(items, mr.Index) {
				t.Fatalf("trial %d: merged finder returned non-duplicate %d", trial, mr.Index)
			}
		}
	}
	// The merged state equals the serial state up to float reordering, so
	// outcomes should agree essentially always; successes must be frequent.
	if agree < trials-1 {
		t.Errorf("merged and serial finders agreed only %d/%d times", agree, trials)
	}
	if ok < trials/2 {
		t.Errorf("merged finder succeeded only %d/%d times", ok, trials)
	}
}

func TestFinderMergeRejectsMismatch(t *testing.T) {
	a := NewFinder(64, 0.2, rand.New(rand.NewPCG(95, 96)))
	if err := a.Merge(NewFinder(64, 0.2, rand.New(rand.NewPCG(97, 98)))); err == nil {
		t.Fatal("expected error merging differently seeded finders")
	}
	if err := a.Merge(NewFinder(32, 0.2, rand.New(rand.NewPCG(95, 96)))); err == nil {
		t.Fatal("expected error merging finders of different alphabet sizes")
	}
}

// TestProcessItemsMatchesProcessItem: batched item ingestion must leave every
// finder in the same state as the one-letter-at-a-time loop (same-seed
// replicas, identical Find outcomes on a deterministic final query).
func TestProcessItemsMatchesProcessItem(t *testing.T) {
	const n = 256
	items := stream.DuplicateItems(n, 17, rand.New(rand.NewPCG(71, 72)))

	fa := NewFinder(n, 0.1, rand.New(rand.NewPCG(73, 74)))
	fb := NewFinder(n, 0.1, rand.New(rand.NewPCG(73, 74)))
	for _, it := range items {
		fa.ProcessItem(it)
	}
	fb.ProcessItems(items)
	if ra, rb := fa.Find(), fb.Find(); ra != rb {
		t.Fatalf("Finder: scalar %+v != batched %+v", ra, rb)
	}

	// ShortFinder: the recoverer state must match bit-for-bit (Find breaks
	// ties among multiple duplicates in map order, so compare state, not the
	// specific letter) and both paths must report a genuine duplicate.
	short := stream.ShortItems(n, 16, true, 3, rand.New(rand.NewPCG(75, 76)))
	sa := NewShortFinder(n, 16, 0.1, rand.New(rand.NewPCG(77, 78)))
	sb := NewShortFinder(n, 16, 0.1, rand.New(rand.NewPCG(77, 78)))
	for _, it := range short {
		sa.ProcessItem(it)
	}
	sb.ProcessItems(short)
	stateA, stateB := sa.rec.ExportState(), sb.rec.ExportState()
	for i := range stateA {
		if stateA[i] != stateB[i] {
			t.Fatalf("ShortFinder: recoverer state differs at byte %d", i)
		}
	}
	counts := map[int]int{}
	for _, it := range short {
		counts[it]++
	}
	for name, res := range map[string]Result{"scalar": sa.Find(), "batched": sb.Find()} {
		if res.Kind != Duplicate || counts[res.Index] < 2 {
			t.Fatalf("ShortFinder %s: %+v is not a genuine duplicate", name, res)
		}
	}

	long := stream.LongItems(n, 64, rand.New(rand.NewPCG(79, 80)))
	la := NewLongFinder(n, 64, 0.1, 1, rand.New(rand.NewPCG(81, 82)))
	lb := NewLongFinder(n, 64, 0.1, 1, rand.New(rand.NewPCG(81, 82)))
	for _, it := range long {
		la.ProcessItem(it)
	}
	lb.ProcessItems(long)
	if ra, rb := la.Find(), lb.Find(); ra != rb {
		t.Fatalf("LongFinder(sampler): scalar %+v != batched %+v", ra, rb)
	}
}

// TestShortFinderMergeEqualsWhole: two same-seed ShortFinder replicas fed
// halves of an item stream, merged, must hold exactly the state of one
// finder that saw the whole stream (the pigeonhole prefix is compensated,
// as in Finder.Merge).
func TestShortFinderMergeEqualsWhole(t *testing.T) {
	const n, s = 256, 16
	items := stream.ShortItems(n, s, true, 3, rand.New(rand.NewPCG(91, 92)))
	mk := func() *ShortFinder { return NewShortFinder(n, s, 0.1, rand.New(rand.NewPCG(93, 94))) }
	whole, a, b := mk(), mk(), mk()
	whole.ProcessItems(items)
	half := len(items) / 2
	a.ProcessItems(items[:half])
	b.ProcessItems(items[half:])
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	wa, ma := whole.rec.ExportState(), a.rec.ExportState()
	for i := range wa {
		if wa[i] != ma[i] {
			t.Fatalf("merged recoverer state differs from whole-stream state at byte %d", i)
		}
	}
	if wk, mk := whole.Find().Kind, a.Find().Kind; wk != mk {
		t.Fatalf("whole-stream Find kind %v != merged %v", wk, mk)
	}
}

// TestShortFinderMergeRejectsMismatch: differently seeded or differently
// shaped replicas must be rejected before any mutation.
func TestShortFinderMergeRejectsMismatch(t *testing.T) {
	a := NewShortFinder(256, 16, 0.1, rand.New(rand.NewPCG(95, 96)))
	if err := a.Merge(nil); err == nil {
		t.Error("nil merge must fail")
	}
	if err := a.Merge(NewShortFinder(128, 16, 0.1, rand.New(rand.NewPCG(95, 96)))); err == nil {
		t.Error("different-n merge must fail")
	}
	if err := a.Merge(NewShortFinder(256, 16, 0.1, rand.New(rand.NewPCG(97, 98)))); err == nil {
		t.Error("different-seed merge must fail")
	}
}
