package sparse

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/stream"
)

func TestRecoverZeroVector(t *testing.T) {
	rc := New(100, 5, rand.New(rand.NewPCG(1, 1)))
	got, ok := rc.Recover()
	if !ok || len(got) != 0 {
		t.Fatalf("zero vector: got %v ok=%v", got, ok)
	}
}

func TestRecoverExactForAllSparsities(t *testing.T) {
	r := rand.New(rand.NewPCG(2, 2))
	const n = 500
	const s = 8
	for e := 1; e <= s; e++ {
		for trial := 0; trial < 10; trial++ {
			rc := New(n, s, r)
			st := stream.SparseVector(n, e, 1000, r)
			truth := st.Apply(n)
			st.Feed(rc)
			got, ok := rc.Recover()
			if !ok {
				t.Fatalf("e=%d: recovery reported DENSE for sparse vector", e)
			}
			if len(got) != truth.L0() {
				t.Fatalf("e=%d: recovered %d coords, want %d", e, len(got), truth.L0())
			}
			for i, v := range got {
				if truth.Get(i) != v {
					t.Fatalf("e=%d: x_%d = %d, want %d", e, i, v, truth.Get(i))
				}
			}
		}
	}
}

func TestRecoverNegativeValues(t *testing.T) {
	rc := New(50, 4, rand.New(rand.NewPCG(3, 3)))
	rc.Add(7, -123)
	rc.Add(49, 1)
	rc.Add(0, -999999)
	got, ok := rc.Recover()
	if !ok {
		t.Fatal("DENSE on 3-sparse vector")
	}
	want := map[int]int64{7: -123, 49: 1, 0: -999999}
	for i, v := range want {
		if got[i] != v {
			t.Fatalf("x_%d = %d, want %d", i, got[i], v)
		}
	}
}

func TestDenseDetection(t *testing.T) {
	r := rand.New(rand.NewPCG(4, 4))
	const n = 400
	const s = 5
	for trial := 0; trial < 20; trial++ {
		rc := New(n, s, r)
		// support 3s..n/2, comfortably beyond the budget
		support := 3*s + r.IntN(n/2-3*s)
		st := stream.SparseVector(n, support, 100, r)
		st.Feed(rc)
		if got, ok := rc.Recover(); ok {
			t.Fatalf("trial %d: dense vector (support %d) decoded as %v", trial, support, got)
		}
	}
}

func TestDenseDetectionJustAboveBudget(t *testing.T) {
	// support = s+1 is the hardest DENSE case.
	r := rand.New(rand.NewPCG(5, 5))
	const n = 200
	const s = 6
	for trial := 0; trial < 20; trial++ {
		rc := New(n, s, r)
		st := stream.SparseVector(n, s+1, 50, r)
		st.Feed(rc)
		if _, ok := rc.Recover(); ok {
			t.Fatalf("trial %d: (s+1)-sparse vector accepted", trial)
		}
	}
}

func TestCancellationToSparse(t *testing.T) {
	// A long stream that cancels down to a 2-sparse vector must recover.
	r := rand.New(rand.NewPCG(6, 6))
	rc := New(300, 3, r)
	for i := 0; i < 300; i++ {
		rc.Add(i, 7)
	}
	for i := 0; i < 300; i++ {
		if i != 42 && i != 271 {
			rc.Add(i, -7)
		}
	}
	got, ok := rc.Recover()
	if !ok || got[42] != 7 || got[271] != 7 || len(got) != 2 {
		t.Fatalf("got %v ok=%v", got, ok)
	}
}

func TestCancellationToZero(t *testing.T) {
	r := rand.New(rand.NewPCG(7, 7))
	rc := New(100, 4, r)
	for i := 0; i < 100; i++ {
		rc.Add(i, int64(i+1))
		rc.Add(i, -int64(i+1))
	}
	if !rc.IsZero() {
		t.Fatal("IsZero false after full cancellation")
	}
	got, ok := rc.Recover()
	if !ok || len(got) != 0 {
		t.Fatalf("got %v ok=%v", got, ok)
	}
}

func TestMerge(t *testing.T) {
	// Two recoverers with identical randomness merge into the sum sketch.
	r1 := rand.New(rand.NewPCG(8, 8))
	r2 := rand.New(rand.NewPCG(8, 8))
	a := New(100, 4, r1)
	b := New(100, 4, r2)
	a.Add(3, 10)
	b.Add(3, -10)
	b.Add(60, 5)
	if err := a.Merge(b); err != nil {
		t.Fatalf("same-seed merge failed: %v", err)
	}
	got, ok := a.Recover()
	if !ok || len(got) != 1 || got[60] != 5 {
		t.Fatalf("merged recovery got %v ok=%v", got, ok)
	}
}

func TestMergeIncompatibleRejected(t *testing.T) {
	a := New(10, 2, rand.New(rand.NewPCG(9, 9)))
	b := New(10, 2, rand.New(rand.NewPCG(10, 10)))
	if err := a.Merge(b); err == nil {
		t.Error("expected error on differently seeded merge")
	}
}

func TestRecoverProperty(t *testing.T) {
	// Property: for random sparse assignments (any positions, any int32
	// values), recovery is exact.
	r := rand.New(rand.NewPCG(11, 11))
	f := func(seed uint64) bool {
		rr := rand.New(rand.NewPCG(seed, seed^0x9E3779B9))
		n := 50 + rr.IntN(200)
		s := 1 + rr.IntN(6)
		e := rr.IntN(s + 1)
		rc := New(n, s, r)
		truth := map[int]int64{}
		for len(truth) < e {
			pos := rr.IntN(n)
			if _, dup := truth[pos]; dup {
				continue
			}
			v := rr.Int64N(1<<32) - 1<<31
			if v == 0 {
				v = 1
			}
			truth[pos] = v
			rc.Add(pos, v)
		}
		got, ok := rc.Recover()
		if !ok || len(got) != len(truth) {
			return false
		}
		for i, v := range truth {
			if got[i] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSpaceBitsLinearInS(t *testing.T) {
	r := rand.New(rand.NewPCG(12, 12))
	s4 := New(1000, 4, r)
	s8 := New(1000, 8, r)
	if s8.SpaceBits() <= s4.SpaceBits() {
		t.Error("space must grow with s")
	}
	if s4.SpaceBits() != int64(2*4+2)*64 {
		t.Errorf("SpaceBits = %d, want %d", s4.SpaceBits(), (2*4+2)*64)
	}
}

func TestSparsityClamp(t *testing.T) {
	rc := New(10, 0, rand.New(rand.NewPCG(13, 13)))
	if rc.S() != 1 {
		t.Fatalf("S() = %d, want clamp to 1", rc.S())
	}
	rc.Add(5, 3)
	got, ok := rc.Recover()
	if !ok || got[5] != 3 {
		t.Fatalf("1-sparse recovery got %v ok=%v", got, ok)
	}
}

func BenchmarkAddS8(b *testing.B) {
	rc := New(1<<20, 8, rand.New(rand.NewPCG(1, 1)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rc.Add(i%(1<<20), 1)
	}
}

// BenchmarkProcessBatchS10 measures the transposed syndrome kernel at the L0
// sampler's default budget (s=10, 20 syndromes); BenchmarkProcessScalarS10 is
// the same work through one-at-a-time Process calls.
func BenchmarkProcessBatchS10(b *testing.B) {
	rc := New(1<<16, 10, rand.New(rand.NewPCG(1, 1)))
	batch := make([]stream.Update, 4096)
	r := rand.New(rand.NewPCG(2, 2))
	for i := range batch {
		batch[i] = stream.Update{Index: r.IntN(1 << 16), Delta: int64(r.IntN(199) - 99)}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rc.ProcessBatch(batch)
	}
	b.ReportMetric(float64(b.N*len(batch))/b.Elapsed().Seconds(), "updates/s")
}

func BenchmarkProcessScalarS10(b *testing.B) {
	rc := New(1<<16, 10, rand.New(rand.NewPCG(1, 1)))
	batch := make([]stream.Update, 4096)
	r := rand.New(rand.NewPCG(2, 2))
	for i := range batch {
		batch[i] = stream.Update{Index: r.IntN(1 << 16), Delta: int64(r.IntN(199) - 99)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, u := range batch {
			rc.Process(u)
		}
	}
	b.ReportMetric(float64(b.N*len(batch))/b.Elapsed().Seconds(), "updates/s")
}

// BenchmarkRecoverS8N4096 measures repeated Recover() calls on an unchanged
// sketch — the full decode before PR 4, the memoized cached result after it.
func BenchmarkRecoverS8N4096(b *testing.B) {
	r := rand.New(rand.NewPCG(1, 1))
	rc := New(4096, 8, r)
	for i := 0; i < 8; i++ {
		rc.Add(r.IntN(4096), int64(i+1))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rc.Recover()
	}
}

// BenchmarkRecoverScan measures one full decode per iteration —
// Berlekamp-Massey, the Chien scan over [n], the Vandermonde value solve and
// the 2s+1-point verification. A canceling update pair re-dirties the sketch
// each round without changing its state, so the memoized decoder cannot
// short-circuit and the number is comparable before and after PR 4.
func BenchmarkRecoverScan(b *testing.B) {
	r := rand.New(rand.NewPCG(1, 1))
	rc := New(4096, 8, r)
	for i := 0; i < 8; i++ {
		rc.Add(r.IntN(4096), int64(i+1))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rc.Add(0, 1)
		rc.Add(0, -1)
		if _, ok := rc.Recover(); !ok {
			b.Fatal("decode failed")
		}
	}
}
