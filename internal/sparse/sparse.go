// Package sparse implements the exact s-sparse recovery of Lemma 5: a random
// linear function L: R^n -> R^k with k = O(s), generated from O(k log n)
// random bits, together with a recovery procedure that outputs x' = x with
// probability 1 whenever x is s-sparse, and otherwise outputs DENSE with high
// probability.
//
// Construction (syndrome decoding, the classical realization of the lemma).
// Embed updates into GF(2^61-1) and maintain 2s power-sum syndromes
//
//	S_j = sum_i x_i * a_i^j,  a_i = i+1,  j = 0..2s-1,
//
// plus one verification syndrome at a uniformly random point: F = sum_i x_i
// * rho^i. If x is e-sparse with e <= s, the syndrome sequence obeys the
// linear recurrence whose connection polynomial is the locator
// prod (1 - a_i x); Berlekamp-Massey finds it from 2e <= 2s syndromes
// deterministically, a reversed-polynomial Chien scan over [n] locates the
// support without field inversions, and a transposed Vandermonde solve
// recovers the values — recovery is exact with probability 1, as Lemma 5
// demands. If x is not s-sparse, any spuriously decoded sparse candidate x”
// differs from x, so the random evaluation F catches it except with
// probability <= n/2^61 per query (a "low probability" event in the paper's
// sense); we then report DENSE.
//
// Query engine (PR 4). The decode is built on three structured kernels:
// the Chien scan walks its consecutive evaluation points a_i = 1..n with a
// forward finite-difference stepper (field.FDStepper — e field Adds per
// position instead of a degree-e Horner chain) and exits once all
// e = deg(locator) roots are found; the value solve uses the O(e²)
// transposed-Vandermonde algorithm (field.VandermondeSolver) in place of
// generic Gaussian elimination; and syndrome verification advances one
// shared power chain per support point rather than re-exponentiating. All
// three are exact field arithmetic on the unique candidate, so decodes stay
// bit-identical to the generic pipeline. Results are memoized behind a
// dirty bit, so repeated queries on an unchanged sketch are O(1) and
// allocation-free.
//
// Space: 2s+1 field elements plus the O(log n)-bit seed — the O(s log n) bits
// Lemma 5 promises.
package sparse

import (
	"encoding/binary"
	"fmt"
	"math/rand/v2"

	"repro/internal/codec"
	"repro/internal/field"
	"repro/internal/kernel"
	"repro/internal/stream"
)

// Recoverer maintains the linear measurements of one vector x in Z^n.
//
// The query side is memoized: Recover caches its decode and a dirty bit —
// set by Add/Process/ProcessBatch/Merge/ImportState, cleared on decode —
// short-circuits repeated queries on an unchanged sketch. All decode
// scratch (the reversed locator, the finite-difference table, the support
// and value buffers, the Vandermonde solver state) lives on the Recoverer
// and is reused, so steady-state Recover calls allocate nothing.
type Recoverer struct {
	n      int
	s      int
	synd   []field.Elem    // 2s power-sum syndromes
	rho    field.Elem      // random verification point
	rhoPow *field.PowCache // square table making rho^i cost ~popcount(i) Muls
	fp     field.Elem      // F = sum_i x_i rho^i

	// Query-side memoization and decode scratch.
	dirty     bool          // measurements changed since the last decode
	decoded   map[int]int64 // cached decode result (reused across decodes)
	decodeOK  bool          // cached DENSE/sparse verdict
	rev       field.Poly    // reversed locator buffer
	fd        field.FDStepper
	scan      []field.Elem // Chien-scan block buffer (see decode)
	positions []int        // decoded support positions
	pts       []field.Elem // evaluation points a_t = pos_t + 1
	vals      []field.Elem // recovered values
	pw        []field.Elem // shared per-position power chain (verification)
	solver    field.VandermondeSolver
}

// New creates a recoverer for vectors of dimension n with sparsity budget s.
// Randomness (the verification point) is drawn from r.
func New(n, s int, r *rand.Rand) *Recoverer {
	if s < 1 {
		s = 1
	}
	rc := &Recoverer{
		n:     n,
		s:     s,
		synd:  make([]field.Elem, 2*s),
		dirty: true,
	}
	rc.rho = field.New(r.Uint64())
	for rc.rho == 0 {
		rc.rho = field.New(r.Uint64())
	}
	rc.rhoPow = field.NewPowCache(rc.rho)
	return rc
}

// S returns the sparsity budget.
func (rc *Recoverer) S() int { return rc.s }

// N returns the vector dimension.
func (rc *Recoverer) N() int { return rc.n }

// Add applies x_i += delta. The even and odd syndrome powers advance on two
// independent chains stepping by a² (1, a², a⁴, … and a, a³, a⁵, …), so the
// multiplier pipeline overlaps what a single pw·a chain would serialize;
// len(synd) = 2s is always even, and the arithmetic is exactly that of the
// single-chain loop.
func (rc *Recoverer) Add(i int, delta int64) {
	rc.dirty = true
	d := field.FromInt64(delta)
	a := field.New(uint64(i) + 1)
	a2 := field.Mul(a, a)
	pe, po := field.Elem(1), a
	synd := rc.synd
	for j := 0; j+2 <= len(synd); j += 2 {
		synd[j] = field.Add(synd[j], field.Mul(d, pe))
		synd[j+1] = field.Add(synd[j+1], field.Mul(d, po))
		pe = field.Mul(pe, a2)
		po = field.Mul(po, a2)
	}
	rc.fp = field.Add(rc.fp, field.Mul(d, rc.rhoPow.Pow(uint64(i))))
}

// Process implements stream.Sink.
func (rc *Recoverer) Process(u stream.Update) { rc.Add(u.Index, u.Delta) }

// ProcessBatch implements stream.BatchSink through the transposed syndrome
// kernel: updates are taken in register-blocked groups of four and the
// syndromes are walked column-major — outer loop over syndrome index j,
// inner over the group's per-update power registers. A scalar update's
// dominant cost is the serial multiplicative chain pw_{j+1} = pw_j * a (2s
// dependent field multiplies, each waiting on the last); transposing keeps
// four independent chains in flight per j step, so the multiplier pipeline
// stays full instead of draining between syndromes. The four-wide groups
// dispatch through kernel.SyndromeAdd4 (one SIMD lane per update on the
// vector backends); group order and field arithmetic are exact, so the state
// is bit-identical to repeated Process calls (pinned by
// TestPropertyTransposedBatchMatchesScalar); the leftover tail (< 4 updates)
// runs the scalar loop. Nothing allocates.
func (rc *Recoverer) ProcessBatch(batch []stream.Update) {
	if len(batch) == 0 {
		return
	}
	rc.dirty = true
	synd := rc.synd
	sw := field.Words(synd)
	fp := rc.fp
	i := 0
	for ; i+4 <= len(batch); i += 4 {
		u0, u1, u2, u3 := batch[i], batch[i+1], batch[i+2], batch[i+3]
		d := [4]uint64{
			uint64(field.FromInt64(u0.Delta)),
			uint64(field.FromInt64(u1.Delta)),
			uint64(field.FromInt64(u2.Delta)),
			uint64(field.FromInt64(u3.Delta)),
		}
		a := [4]uint64{
			uint64(field.New(uint64(u0.Index) + 1)),
			uint64(field.New(uint64(u1.Index) + 1)),
			uint64(field.New(uint64(u2.Index) + 1)),
			uint64(field.New(uint64(u3.Index) + 1)),
		}
		kernel.SyndromeAdd4(sw, d, a)
		f := field.Add(
			field.Mul(field.Elem(d[0]), rc.rhoPow.Pow(uint64(u0.Index))),
			field.Mul(field.Elem(d[1]), rc.rhoPow.Pow(uint64(u1.Index))))
		f = field.Add(f, field.Mul(field.Elem(d[2]), rc.rhoPow.Pow(uint64(u2.Index))))
		f = field.Add(f, field.Mul(field.Elem(d[3]), rc.rhoPow.Pow(uint64(u3.Index))))
		fp = field.Add(fp, f)
	}
	for ; i < len(batch); i++ {
		u := batch[i]
		d := field.FromInt64(u.Delta)
		a := field.New(uint64(u.Index) + 1)
		pw := field.Elem(1)
		for j := range synd {
			synd[j] = field.Add(synd[j], field.Mul(d, pw))
			pw = field.Mul(pw, a)
		}
		fp = field.Add(fp, field.Mul(d, rc.rhoPow.Pow(uint64(u.Index))))
	}
	rc.fp = fp
}

// Compatible reports whether other is a same-seed replica: identical
// parameters and an identical verification point (the fingerprint of shared
// construction randomness).
func (rc *Recoverer) Compatible(other *Recoverer) bool {
	return other != nil && rc.n == other.n && len(rc.synd) == len(other.synd) && rc.rho == other.rho
}

// Merge adds the measurements of another recoverer built with identical
// parameters and randomness (sketch linearity). Mismatched shapes or
// differing verification points — the signature of replicas that do not
// share a seed — are reported as an error, leaving the receiver untouched.
func (rc *Recoverer) Merge(other *Recoverer) error {
	if other == nil {
		return fmt.Errorf("sparse: %w", codec.ErrNilMerge)
	}
	if rc.n != other.n || len(rc.synd) != len(other.synd) {
		return fmt.Errorf("sparse: merging recoverers of different shapes: %w", codec.ErrConfigMismatch)
	}
	if rc.rho != other.rho {
		return fmt.Errorf("sparse: %w", codec.ErrSeedMismatch)
	}
	rc.dirty = true
	for j := range rc.synd {
		rc.synd[j] = field.Add(rc.synd[j], other.synd[j])
	}
	rc.fp = field.Add(rc.fp, other.fp)
	return nil
}

// IsZero reports whether all measurements are zero — true with certainty for
// the zero vector, false positives only with low probability (a nonzero x
// must zero out 2s+1 independent evaluations).
func (rc *Recoverer) IsZero() bool {
	if rc.fp != 0 {
		return false
	}
	for _, v := range rc.synd {
		if v != 0 {
			return false
		}
	}
	return true
}

// Recover attempts exact recovery. It returns (support map i -> x_i, true)
// when the measurements decode to an s-sparse vector that passes
// verification, and (nil, false) — DENSE — otherwise. For any truly s-sparse
// x the first return is exactly x with probability 1 (Lemma 5).
//
// The decode is memoized: repeated calls on an unchanged sketch return the
// cached result without re-decoding (and without allocating). The returned
// map is owned by the Recoverer and valid until the next mutating call —
// callers must not modify it and should copy what they need to keep.
func (rc *Recoverer) Recover() (map[int]int64, bool) {
	if rc.dirty {
		rc.decodeOK = rc.decode()
		rc.dirty = false
	}
	if !rc.decodeOK {
		return nil, false
	}
	return rc.decoded, true
}

// decode runs one full recovery into rc.decoded. The pipeline is the
// classical syndrome decoder of Lemma 5, rebuilt on the PR-4 query kernels:
//
//  1. Berlekamp-Massey finds the locator polynomial from the 2s syndromes.
//  2. The Chien scan locates the support: position i is in it iff
//     rev(loc)(a_i) = 0 with a_i = i+1. The points are consecutive, so a
//     field.FDStepper walks them by forward differences — deg(loc) Adds per
//     position instead of a full Horner chain — and the scan exits as soon
//     as e = deg(loc) roots are found (a degree-e polynomial has no more).
//  3. The values come from the transposed Vandermonde solve
//     Σ_t v_t a_t^j = S_j (j < e) in O(e²) via field.VandermondeSolver.
//  4. Verification replays all 2s syndromes through one shared per-position
//     power chain (pw_t ← pw_t·a_t per syndrome step — two Muls per entry
//     instead of a fresh field.Pow ladder), then checks the rho fingerprint.
//
// Every step is exact field arithmetic producing the unique candidate, so
// decodes are bit-identical to the pre-PR-4 Horner-scan/Gaussian decoder.
func (rc *Recoverer) decode() bool {
	if rc.decoded == nil {
		rc.decoded = make(map[int]int64, rc.s)
	} else {
		clear(rc.decoded)
	}
	if rc.IsZero() {
		return true
	}
	loc := field.BerlekampMassey(rc.synd)
	e := loc.Degree()
	if e < 1 || e > rc.s {
		return false
	}
	// Reversed locator into reusable scratch.
	if cap(rc.rev) < e+1 {
		rc.rev = make(field.Poly, e+1)
	}
	rev := rc.rev[:e+1]
	for i := 0; i <= e; i++ {
		rev[i] = loc[e-i]
	}
	// Finite-difference Chien scan over the consecutive points 1..n in blocks
	// of chienBlock values per kernel dispatch (field.FDStepper.NextBlock),
	// early exit once all e roots are found. The block granularity computes at
	// most chienBlock-1 values past the last root — e extra Adds each — which
	// is noise next to the per-position dispatch the block form removes.
	const chienBlock = 256
	positions := rc.positions[:0]
	rc.fd.Reset(rev, 1)
	scan := growElems(&rc.scan, min(chienBlock, rc.n))
scanLoop:
	for base := 0; base < rc.n; base += len(scan) {
		blk := scan[:min(len(scan), rc.n-base)]
		rc.fd.NextBlock(blk)
		for t, v := range blk {
			if v == 0 {
				positions = append(positions, base+t)
				if len(positions) == e {
					break scanLoop
				}
			}
		}
	}
	rc.positions = positions
	if len(positions) != e {
		return false
	}
	// Structured transposed-Vandermonde value solve on S_0..S_{e-1}.
	pts := growElems(&rc.pts, e)
	vals := growElems(&rc.vals, e)
	for t, pos := range positions {
		pts[t] = field.New(uint64(pos) + 1)
	}
	if !rc.solver.Solve(pts, rc.synd[:e], vals) {
		return false
	}
	// Verify against all 2s syndromes through the shared power chain, then
	// the random fingerprint.
	pw := growElems(&rc.pw, e)
	for t := range pw {
		pw[t] = 1
	}
	for j := range rc.synd {
		var sj field.Elem
		for t := range pts {
			sj = field.Add(sj, field.Mul(vals[t], pw[t]))
			pw[t] = field.Mul(pw[t], pts[t])
		}
		if sj != rc.synd[j] {
			return false
		}
	}
	var f field.Elem
	for t, pos := range positions {
		f = field.Add(f, field.Mul(vals[t], rc.rhoPow.Pow(uint64(pos))))
	}
	if f != rc.fp {
		return false
	}
	for t, pos := range positions {
		v := vals[t].ToInt64()
		if v == 0 {
			// A zero value contradicts membership in the support; the
			// decoded candidate is inconsistent.
			return false
		}
		rc.decoded[pos] = v
	}
	return true
}

func growElems(buf *[]field.Elem, n int) []field.Elem {
	if cap(*buf) < n {
		*buf = make([]field.Elem, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// SpaceBits reports the measurement state: 2s syndromes, the fingerprint and
// the seed word, at 64 bits per word — O(s log n) as in Lemma 5.
func (rc *Recoverer) SpaceBits() int64 {
	return int64(len(rc.synd)+2) * 64
}

// StateBits reports only the linear-measurement contents (syndromes and
// fingerprint), excluding the seed. In the public-coin communication
// protocols of §4 this is what one player transmits — the randomness is
// shared for free.
func (rc *Recoverer) StateBits() int64 {
	return int64(len(rc.synd)+1) * 64
}

// ExportState serializes the linear measurements (syndromes then
// fingerprint) into little-endian bytes — the concrete wire format of the
// public-coin protocol message. len(result)*8 == StateBits().
func (rc *Recoverer) ExportState() []byte {
	out := make([]byte, 0, (len(rc.synd)+1)*8)
	for _, v := range rc.synd {
		out = binary.LittleEndian.AppendUint64(out, uint64(v))
	}
	return binary.LittleEndian.AppendUint64(out, uint64(rc.fp))
}

// ImportState replaces the linear measurements with previously exported
// ones. The receiver must have been constructed with the same parameters
// and randomness (same-seed source); importing into a fresh instance and
// continuing to Add realizes the linear-sketch handoff of the §4 protocols.
//
// The memoized decode is marked dirty on every path — including rejected
// imports — so a cached Recover can never survive an ImportState call and
// serve stale state for whatever bytes a retry ends up accepting.
func (rc *Recoverer) ImportState(data []byte) error {
	rc.dirty = true
	want := (len(rc.synd) + 1) * 8
	if len(data) != want {
		return fmt.Errorf("sparse: state is %d bytes, want %d", len(data), want)
	}
	for j := range rc.synd {
		rc.synd[j] = field.Elem(binary.LittleEndian.Uint64(data[j*8:]))
	}
	rc.fp = field.Elem(binary.LittleEndian.Uint64(data[len(rc.synd)*8:]))
	return nil
}

// AppendState writes the linear measurements (syndromes then fingerprint)
// into a codec encoder — the framed counterpart of ExportState, used by the
// public wire format and the engine checkpoints.
func (rc *Recoverer) AppendState(e *codec.Encoder) {
	for _, v := range rc.synd {
		e.U64(uint64(v))
	}
	e.U64(uint64(rc.fp))
}

// RestoreState replaces the linear measurements from a codec decoder,
// invalidating the memoized decode on every path (the decoder's sticky
// error surfaces at the caller's Finish check).
func (rc *Recoverer) RestoreState(d *codec.Decoder) {
	rc.dirty = true
	for j := range rc.synd {
		rc.synd[j] = field.New(d.U64())
	}
	rc.fp = field.New(d.U64())
}
