package sparse

import (
	"math/rand/v2"
	"testing"

	"repro/internal/codec"
)

// TestImportStateDirtyOnAllPaths is the regression test for the memoized
// decode surviving a restore: ImportState must mark the decode dirty on
// every path, including rejected imports, so no sequence of restore calls
// can leave a stale cached decode marked clean.
func TestImportStateDirtyOnAllPaths(t *testing.T) {
	r := rand.New(rand.NewPCG(21, 22))
	rc := New(128, 4, r)
	rc.Add(7, 3)
	if rec, ok := rc.Recover(); !ok || rec[7] != 3 {
		t.Fatalf("seed decode failed: %v %v", rec, ok)
	}
	if rc.dirty {
		t.Fatal("decode did not clear the dirty bit")
	}

	// A rejected import (wrong length) must still dirty the cache.
	if err := rc.ImportState(make([]byte, 3)); err == nil {
		t.Fatal("short import must be rejected")
	}
	if !rc.dirty {
		t.Fatal("rejected ImportState left the memoized decode marked clean")
	}
	// The re-decode over the untouched state still answers correctly.
	if rec, ok := rc.Recover(); !ok || rec[7] != 3 {
		t.Fatalf("decode after rejected import: %v %v", rec, ok)
	}

	// An accepted import must dirty the cache and the next Recover must
	// serve the imported state, not the stale cache.
	r2 := rand.New(rand.NewPCG(21, 22))
	donor := New(128, 4, r2)
	donor.Add(90, -4)
	if err := rc.ImportState(donor.ExportState()); err != nil {
		t.Fatal(err)
	}
	if rec, ok := rc.Recover(); !ok || rec[90] != -4 || rec[7] != 0 {
		t.Fatalf("restore-then-Recover served stale state: %v %v", rec, ok)
	}
}

// TestRestoreStateInvalidatesMemo covers the codec-framed restore path the
// public wire format uses: restore-then-Recover must re-decode.
func TestRestoreStateInvalidatesMemo(t *testing.T) {
	r1 := rand.New(rand.NewPCG(31, 32))
	r2 := rand.New(rand.NewPCG(31, 32))
	rc := New(128, 4, r1)
	donor := New(128, 4, r2)
	rc.Add(5, 11)
	donor.Add(60, 2)
	if rec, ok := rc.Recover(); !ok || rec[5] != 11 {
		t.Fatalf("seed decode failed: %v %v", rec, ok)
	}

	e := codec.NewEncoder(codec.KindL0Sampler)
	donor.AppendState(e)
	d, err := codec.NewDecoder(e.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	rc.RestoreState(d)
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
	if rec, ok := rc.Recover(); !ok || rec[60] != 2 || rec[5] != 0 {
		t.Fatalf("RestoreState-then-Recover served stale state: %v %v", rec, ok)
	}

	// Round-trip: the framed bytes carry exactly the raw ExportState words.
	e2 := codec.NewEncoder(codec.KindL0Sampler)
	rc.AppendState(e2)
	d2, err := codec.NewDecoder(e2.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	fresh := New(128, 4, rand.New(rand.NewPCG(31, 32)))
	fresh.RestoreState(d2)
	if err := d2.Finish(); err != nil {
		t.Fatal(err)
	}
	if rec, ok := fresh.Recover(); !ok || rec[60] != 2 {
		t.Fatalf("framed round-trip lost state: %v %v", rec, ok)
	}
}
