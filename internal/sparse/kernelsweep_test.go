package sparse

import (
	"math/rand/v2"
	"testing"

	"repro/internal/kernel"
	"repro/internal/stream"
)

// TestRecoverVariantsBitIdentical feeds the same update stream through
// ProcessBatch under every selectable kernel variant and pins the full
// measurement state and the decode byte-for-byte against the scalar Process
// path — syndrome accumulation, Chien scan and value solve all dispatch
// through internal/kernel, so this exercises the whole recovery pipeline per
// variant.
func TestRecoverVariantsBitIdentical(t *testing.T) {
	prev := kernel.Active()
	t.Cleanup(func() {
		if err := kernel.Select(prev); err != nil {
			t.Fatalf("restoring kernel variant %q: %v", prev, err)
		}
	})

	const n, s = 4096, 8
	updates := make([]stream.Update, 0, 64)
	r := rand.New(rand.NewPCG(71, 1))
	for i := 0; i < 6; i++ {
		idx := int(r.Uint64() % n)
		delta := int64(r.Uint64()%1000) + 1
		// Each support point gets an insert, churn, and partial cancel.
		updates = append(updates,
			stream.Update{Index: idx, Delta: delta},
			stream.Update{Index: idx, Delta: -delta},
			stream.Update{Index: idx, Delta: delta + 7},
		)
	}

	// Scalar per-update reference.
	ref := New(n, s, rand.New(rand.NewPCG(72, 1)))
	for _, u := range updates {
		ref.Process(u)
	}
	refState := ref.ExportState()
	refDec, refOK := ref.Recover()

	for _, name := range kernel.Variants() {
		if err := kernel.Select(name); err != nil {
			t.Fatalf("Select(%q): %v", name, err)
		}
		rc := New(n, s, rand.New(rand.NewPCG(72, 1)))
		rc.ProcessBatch(updates)
		state := rc.ExportState()
		for i := range refState {
			if state[i] != refState[i] {
				t.Fatalf("%s: state byte %d = %#x, scalar %#x", name, i, state[i], refState[i])
			}
		}
		dec, ok := rc.Recover()
		if ok != refOK || len(dec) != len(refDec) {
			t.Fatalf("%s: Recover = (%v, %v), scalar (%v, %v)", name, dec, ok, refDec, refOK)
		}
		for k, v := range refDec {
			if dec[k] != v {
				t.Fatalf("%s: decoded[%d] = %d, scalar %d", name, k, dec[k], v)
			}
		}
	}
}
