package sparse

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/field"
	"repro/internal/stream"
)

// referenceRecover is a verbatim copy of the pre-PR-4 decoder — full-scan
// Horner Chien search, Gaussian value solve, per-entry Pow verification —
// kept as the oracle pinning the rebuilt pipeline bit-identical on every
// corpus vector.
func referenceRecover(rc *Recoverer) (map[int]int64, bool) {
	if rc.IsZero() {
		return map[int]int64{}, true
	}
	loc := field.BerlekampMassey(rc.synd)
	e := loc.Degree()
	if e < 1 || e > rc.s {
		return nil, false
	}
	rev := loc.Reverse()
	positions := make([]int, 0, e)
	for i := 0; i < rc.n; i++ {
		if rev.Eval(field.New(uint64(i)+1)) == 0 {
			positions = append(positions, i)
			if len(positions) > e {
				break
			}
		}
	}
	if len(positions) != e {
		return nil, false
	}
	mat := make([][]field.Elem, e)
	y := make([]field.Elem, e)
	for j := 0; j < e; j++ {
		mat[j] = make([]field.Elem, e)
		for t, pos := range positions {
			mat[j][t] = field.Pow(field.New(uint64(pos)+1), uint64(j))
		}
		y[j] = rc.synd[j]
	}
	vals, ok := field.SolveLinear(mat, y)
	if !ok {
		return nil, false
	}
	for j := 0; j < len(rc.synd); j++ {
		var sj field.Elem
		for t, pos := range positions {
			sj = field.Add(sj, field.Mul(vals[t], field.Pow(field.New(uint64(pos)+1), uint64(j))))
		}
		if sj != rc.synd[j] {
			return nil, false
		}
	}
	var f field.Elem
	for t, pos := range positions {
		f = field.Add(f, field.Mul(vals[t], rc.rhoPow.Pow(uint64(pos))))
	}
	if f != rc.fp {
		return nil, false
	}
	out := make(map[int]int64, e)
	for t, pos := range positions {
		v := vals[t].ToInt64()
		if v == 0 {
			return nil, false
		}
		out[pos] = v
	}
	return out, true
}

func sameDecode(a map[int]int64, aok bool, b map[int]int64, bok bool) bool {
	if aok != bok {
		return false
	}
	if !aok {
		return true
	}
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if b[i] != v {
			return false
		}
	}
	return true
}

// TestPropertyRecoverMatchesReferenceDecoder: the rebuilt decode pipeline
// (finite-difference Chien scan with early exit, structured Vandermonde
// solve, shared-power-chain verification, memoization) must agree with the
// pre-PR-4 decoder — verdict and every recovered entry — across sparse,
// exactly-at-budget, over-budget and dense vectors.
func TestPropertyRecoverMatchesReferenceDecoder(t *testing.T) {
	f := func(seed uint64) bool {
		rr := rand.New(rand.NewPCG(seed, 0x5EC0))
		n := 32 + rr.IntN(800)
		s := 1 + rr.IntN(10)
		// Sweep the sparsity through and past the budget: e in [0, 3s].
		e := rr.IntN(3*s + 1)
		rc := New(n, s, rr)
		stream.SparseVector(n, e, 1<<20, rr).Feed(rc)
		got, gok := rc.Recover()
		want, wok := referenceRecover(rc)
		if !sameDecode(got, gok, want, wok) {
			t.Logf("n=%d s=%d e=%d: new (%v,%v) vs reference (%v,%v)", n, s, e, got, gok, want, wok)
			return false
		}
		// The memoized second query must return the identical result.
		again, aok := rc.Recover()
		return sameDecode(got, gok, again, aok)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestRecoverMemoization: repeated queries on an unchanged sketch reuse the
// cached decode (zero allocations); any mutation — Add, ProcessBatch, Merge,
// ImportState — invalidates it and the next query reflects the new state.
func TestRecoverMemoization(t *testing.T) {
	r := rand.New(rand.NewPCG(7, 8))
	rc := New(256, 4, r)
	rc.Add(10, 5)
	rc.Add(20, -3)
	rec, ok := rc.Recover()
	if !ok || len(rec) != 2 || rec[10] != 5 || rec[20] != -3 {
		t.Fatalf("decode failed: %v %v", rec, ok)
	}
	if allocs := testing.AllocsPerRun(10, func() {
		if _, ok := rc.Recover(); !ok {
			t.Error("cached decode lost")
		}
	}); allocs != 0 {
		t.Errorf("cached Recover allocates %v times per call, want 0", allocs)
	}
	// Add invalidates: the next decode must see the new coordinate.
	rc.Add(30, 7)
	rec, ok = rc.Recover()
	if !ok || len(rec) != 3 || rec[30] != 7 {
		t.Fatalf("post-Add decode stale: %v %v", rec, ok)
	}
	// Removing a coordinate via a canceling update also re-decodes.
	rc.Add(10, -5)
	rec, ok = rc.Recover()
	if !ok || len(rec) != 2 || rec[10] != 0 {
		t.Fatalf("post-cancel decode stale: %v %v", rec, ok)
	}
	// ProcessBatch invalidates.
	rc.ProcessBatch([]stream.Update{{Index: 40, Delta: 1}})
	if rec, ok = rc.Recover(); !ok || rec[40] != 1 {
		t.Fatalf("post-batch decode stale: %v %v", rec, ok)
	}
	// Merge invalidates the receiver.
	r2 := rand.New(rand.NewPCG(7, 8))
	other := New(256, 4, r2)
	other.Add(50, 2)
	other.Recover()
	if err := rc.Merge(other); err != nil {
		t.Fatal(err)
	}
	if rec, ok = rc.Recover(); !ok || rec[50] != 2 {
		t.Fatalf("post-merge decode stale: %v %v", rec, ok)
	}
	// ImportState invalidates: a same-seed replica importing this state must
	// decode it, not its own stale cache.
	r3 := rand.New(rand.NewPCG(7, 8))
	replica := New(256, 4, r3)
	replica.Add(99, 1)
	if rec, ok = replica.Recover(); !ok || rec[99] != 1 {
		t.Fatal("replica decode failed")
	}
	if err := replica.ImportState(rc.ExportState()); err != nil {
		t.Fatal(err)
	}
	if rec, ok = replica.Recover(); !ok || rec[99] != 0 || rec[50] != 2 {
		t.Fatalf("post-import decode stale: %v %v", rec, ok)
	}
}

// TestChienScanEarlyExit pins the satellite bug fix: with every root below
// n/2, the scan must stop at the last root instead of walking all n
// positions. Observed through the decode still being exact (the early exit
// cannot change the result — a degree-e locator has at most e roots) and
// through the dense path still reporting DENSE after a full scan.
func TestChienScanEarlyExit(t *testing.T) {
	r := rand.New(rand.NewPCG(17, 18))
	const n, s = 1 << 14, 6
	rc := New(n, s, r)
	// All support in the low 100 positions of a 16K-coordinate vector.
	want := map[int]int64{3: 9, 40: -2, 99: 123}
	for i, v := range want {
		rc.Add(i, v)
	}
	rec, ok := rc.Recover()
	if !ok || len(rec) != len(want) {
		t.Fatalf("decode failed: %v %v", rec, ok)
	}
	for i, v := range want {
		if rec[i] != v {
			t.Errorf("rec[%d] = %d, want %d", i, rec[i], v)
		}
	}
}
