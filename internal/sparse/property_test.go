package sparse

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/stream"
)

// TestPropertyLinearityOfMeasurements: feeding A then B equals feeding the
// coordinate-wise sum; recovery sees only the net vector.
func TestPropertyLinearityOfMeasurements(t *testing.T) {
	f := func(seed uint64, raw []int16) bool {
		const n = 64
		mk := func() *Recoverer { return New(n, 6, rand.New(rand.NewPCG(seed, 5))) }
		split, direct := mk(), mk()
		net := map[int]int64{}
		for k, v := range raw {
			if v == 0 {
				continue
			}
			i := k % n
			// split: two half updates; direct: one.
			split.Add(i, int64(v)/2)
			split.Add(i, int64(v)-int64(v)/2)
			direct.Add(i, int64(v))
			net[i] += int64(v)
		}
		for i, v := range net {
			if v == 0 {
				delete(net, i)
			}
		}
		recS, okS := split.Recover()
		recD, okD := direct.Recover()
		if okS != okD {
			return false
		}
		if !okS {
			return true // both DENSE: consistent
		}
		if len(recS) != len(recD) {
			return false
		}
		for i, v := range recS {
			if recD[i] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyRecoverInverseOfSparseStreams: recovery is a left inverse of
// measurement on every <= s-sparse integer vector.
func TestPropertyRecoverInverseOfSparseStreams(t *testing.T) {
	f := func(seed uint64) bool {
		rr := rand.New(rand.NewPCG(seed, seed|1))
		n := 32 + rr.IntN(400)
		s := 1 + rr.IntN(8)
		e := rr.IntN(s + 1)
		rc := New(n, s, rr)
		st := stream.SparseVector(n, e, 1<<30, rr)
		truth := st.Apply(n)
		st.Feed(rc)
		rec, ok := rc.Recover()
		if !ok || len(rec) != truth.L0() {
			return false
		}
		for i, v := range rec {
			if truth.Get(i) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyTransposedBatchMatchesScalar: the register-blocked column-major
// ProcessBatch kernel must leave bit-identical state (all syndromes AND the
// fingerprint, via ExportState) to one-at-a-time Process calls, for every
// batch length — exercising both the 4-wide groups and the scalar tail —
// and every index/delta mix, including negative deltas and repeats.
func TestPropertyTransposedBatchMatchesScalar(t *testing.T) {
	f := func(seed uint64, raw []int16, sRaw uint8) bool {
		n := 64 + int(seed%1000)
		s := 1 + int(sRaw)%12
		mk := func() *Recoverer { return New(n, s, rand.New(rand.NewPCG(seed, 23))) }
		batched, scalar := mk(), mk()
		var batch []stream.Update
		for k, v := range raw {
			if v != 0 {
				batch = append(batch, stream.Update{Index: k % n, Delta: int64(v)})
			}
		}
		batched.ProcessBatch(batch)
		for _, u := range batch {
			scalar.Process(u)
		}
		a, b := batched.ExportState(), scalar.ExportState()
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyExportImportIdentity: importing an exported state reproduces
// identical recovery on a fresh same-seed instance.
func TestPropertyExportImportIdentity(t *testing.T) {
	f := func(seed uint64, raw []int16) bool {
		const n = 64
		mk := func() *Recoverer { return New(n, 5, rand.New(rand.NewPCG(seed, 77))) }
		src := mk()
		for k, v := range raw {
			if v != 0 {
				src.Add(k%n, int64(v))
			}
		}
		dst := mk()
		if err := dst.ImportState(src.ExportState()); err != nil {
			return false
		}
		recA, okA := src.Recover()
		recB, okB := dst.Recover()
		if okA != okB || len(recA) != len(recB) {
			return false
		}
		for i, v := range recA {
			if recB[i] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyAliasResistance: an adversary trying to alias a dense vector
// into a sparse-looking one is caught: we build a vector as (s-sparse
// candidate) + (random dense perturbation) and recovery must never return a
// wrong vector — either the true net vector (if it happens to be <= s
// sparse) or DENSE.
func TestPropertyAliasResistance(t *testing.T) {
	f := func(seed uint64) bool {
		rr := rand.New(rand.NewPCG(seed, 0xFEED))
		const n = 128
		const s = 4
		rc := New(n, s, rr)
		truth := make(map[int]int64)
		// sparse part
		for j := 0; j < s; j++ {
			i := rr.IntN(n)
			d := rr.Int64N(100) + 1
			rc.Add(i, d)
			truth[i] += d
		}
		// dense perturbation
		spread := 2*s + rr.IntN(20)
		for j := 0; j < spread; j++ {
			i := rr.IntN(n)
			d := rr.Int64N(9) - 4
			if d == 0 {
				d = 5
			}
			rc.Add(i, d)
			truth[i] += d
		}
		for i, v := range truth {
			if v == 0 {
				delete(truth, i)
			}
		}
		rec, ok := rc.Recover()
		if !ok {
			return len(truth) > s || len(truth) == 0 || true // DENSE is always safe
		}
		// If it answered, the answer must be exactly the net vector.
		if len(rec) != len(truth) {
			return false
		}
		for i, v := range truth {
			if rec[i] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
