// Package countsketch implements the count-sketch of Charikar, Chen and
// Farach-Colton exactly as defined in §2 of the paper: for parameter m it
// keeps l = O(log n) rows of 6m buckets; row j stores
//
//	y_{k,j} = sum_{i: h_j(i)=k} g_j(i) * x_i
//
// with pairwise independent h_j: [n] -> [6m] and g_j: [n] -> {-1,+1}, and the
// estimate of x_i is the median over rows of g_j(i) * y_{h_j(i),j}.
//
// Lemma 1 (the guarantee the Lp sampler of Figure 1 builds on): with high
// probability |x_i - x*_i| <= Err^m_2(x)/sqrt(m) for all i, and the best
// m-sparse approximation xhat of the output satisfies
// Err^m_2(x) <= ||x - xhat||_2 <= 10*Err^m_2(x).
//
// The sketch stores float64 cells because the Lp sampler feeds it the
// randomly scaled vector z (z_i = x_i / t_i^{1/p}); for space accounting each
// cell counts as one O(log n)-bit word, the paper's convention after its
// (omitted) discretization step.
package countsketch

import (
	"errors"
	"math/rand/v2"
	"sort"

	"repro/internal/hash"
	"repro/internal/stream"
)

// BucketFactor is the paper's constant: a sketch of parameter m uses 6m
// buckets per row.
const BucketFactor = 6

// Sketch is a count-sketch instance.
type Sketch struct {
	m       int
	rows    int
	buckets uint64
	h       []*hash.KWise
	g       []*hash.KWise
	cells   [][]float64
}

// New creates a count-sketch with parameter m and the given number of rows
// (the paper's l = O(log n); callers pass c*log2(n)).
func New(m, rows int, r *rand.Rand) *Sketch {
	if m < 1 {
		m = 1
	}
	if rows < 1 {
		rows = 1
	}
	s := &Sketch{
		m:       m,
		rows:    rows,
		buckets: uint64(BucketFactor * m),
		h:       hash.Family(rows, 2, r),
		g:       hash.Family(rows, 2, r),
		cells:   make([][]float64, rows),
	}
	for j := range s.cells {
		s.cells[j] = make([]float64, s.buckets)
	}
	return s
}

// M returns the sketch parameter m.
func (s *Sketch) M() int { return s.m }

// Rows returns the number of rows l.
func (s *Sketch) Rows() int { return s.rows }

// Add applies the update x_i += delta for real-valued delta.
func (s *Sketch) Add(i uint64, delta float64) {
	for j := 0; j < s.rows; j++ {
		k := s.h[j].Bucket(i, s.buckets)
		s.cells[j][k] += float64(s.g[j].Sign(i)) * delta
	}
}

// Process implements stream.Sink for integer turnstile updates.
func (s *Sketch) Process(u stream.Update) {
	s.Add(uint64(u.Index), float64(u.Delta))
}

// ProcessBatch implements stream.BatchSink: row-major delivery keeps one
// row's cells and hash pair hot across the whole batch instead of cycling
// through all rows per update. State after the call is identical to feeding
// the updates one Process call at a time.
func (s *Sketch) ProcessBatch(batch []stream.Update) {
	for j := 0; j < s.rows; j++ {
		cells := s.cells[j]
		hj, gj := s.h[j], s.g[j]
		for _, u := range batch {
			i := uint64(u.Index)
			cells[hj.Bucket(i, s.buckets)] += float64(gj.Sign(i)) * float64(u.Delta)
		}
	}
}

// AddBatch is the real-valued batched hot path (the Lp sampler feeds the
// scaled vector z through it): indices[t] receives deltas[t], row-major.
func (s *Sketch) AddBatch(indices []uint64, deltas []float64) {
	for j := 0; j < s.rows; j++ {
		cells := s.cells[j]
		hj, gj := s.h[j], s.g[j]
		for t, i := range indices {
			cells[hj.Bucket(i, s.buckets)] += float64(gj.Sign(i)) * deltas[t]
		}
	}
}

// Merge adds another sketch's cells into this one. By linearity the result
// summarizes the sum of the two underlying vectors. Both sketches must be
// same-seed replicas (identical shape and hash functions); a mismatch is
// reported as an error and leaves the receiver untouched.
func (s *Sketch) Merge(other *Sketch) error {
	if other == nil || s.m != other.m || s.rows != other.rows || s.buckets != other.buckets {
		return errors.New("countsketch: merging sketches of different shapes")
	}
	if !hash.FamilyEqual(s.h, other.h) || !hash.FamilyEqual(s.g, other.g) {
		return errors.New("countsketch: merging sketches with different seeds (same-seed replicas required)")
	}
	for j := range s.cells {
		row, orow := s.cells[j], other.cells[j]
		for k := range row {
			row[k] += orow[k]
		}
	}
	return nil
}

// Estimate returns x*_i, the median-of-rows estimate of coordinate i.
func (s *Sketch) Estimate(i uint64) float64 {
	ests := make([]float64, s.rows)
	for j := 0; j < s.rows; j++ {
		k := s.h[j].Bucket(i, s.buckets)
		ests[j] = float64(s.g[j].Sign(i)) * s.cells[j][k]
	}
	return median(ests)
}

// Decode returns the full estimate vector x* for coordinates [0, n).
func (s *Sketch) Decode(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = s.Estimate(uint64(i))
	}
	return out
}

// TopEntry is one coordinate of a sparse approximation.
type TopEntry struct {
	Index    int
	Estimate float64
}

// Top returns the entries of the best m-sparse approximation xhat of the
// decoded vector: the m coordinates of largest |x*_i| (all of them if fewer
// than m are nonzero), sorted by decreasing magnitude.
func (s *Sketch) Top(n, m int) []TopEntry {
	ests := s.Decode(n)
	entries := make([]TopEntry, 0, n)
	for i, e := range ests {
		if e != 0 {
			entries = append(entries, TopEntry{i, e})
		}
	}
	sort.Slice(entries, func(a, b int) bool {
		ea, eb := entries[a].Estimate, entries[b].Estimate
		if ea < 0 {
			ea = -ea
		}
		if eb < 0 {
			eb = -eb
		}
		if ea != eb {
			return ea > eb
		}
		return entries[a].Index < entries[b].Index
	})
	if len(entries) > m {
		entries = entries[:m]
	}
	return entries
}

// SpaceBits reports cells plus hash seeds at 64 bits per word, matching the
// paper's O(m log n)-counters => O(m log^2 n)-bits accounting.
func (s *Sketch) SpaceBits() int64 {
	bits := int64(s.rows) * int64(s.buckets) * 64
	for j := 0; j < s.rows; j++ {
		bits += s.h[j].SpaceBits() + s.g[j].SpaceBits()
	}
	return bits
}

// StateBits reports only the cell contents — the transmissible part in a
// public-coin communication protocol.
func (s *Sketch) StateBits() int64 {
	return int64(s.rows) * int64(s.buckets) * 64
}

func median(v []float64) float64 {
	sort.Float64s(v)
	n := len(v)
	if n%2 == 1 {
		return v[n/2]
	}
	return (v[n/2-1] + v[n/2]) / 2
}
