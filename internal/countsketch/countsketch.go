// Package countsketch implements the count-sketch of Charikar, Chen and
// Farach-Colton exactly as defined in §2 of the paper: for parameter m it
// keeps l = O(log n) rows of 6m buckets; row j stores
//
//	y_{k,j} = sum_{i: h_j(i)=k} g_j(i) * x_i
//
// with pairwise independent h_j: [n] -> [6m] and g_j: [n] -> {-1,+1}, and the
// estimate of x_i is the median over rows of g_j(i) * y_{h_j(i),j}.
//
// Lemma 1 (the guarantee the Lp sampler of Figure 1 builds on): with high
// probability |x_i - x*_i| <= Err^m_2(x)/sqrt(m) for all i, and the best
// m-sparse approximation xhat of the output satisfies
// Err^m_2(x) <= ||x - xhat||_2 <= 10*Err^m_2(x).
//
// The sketch stores float64 cells because the Lp sampler feeds it the
// randomly scaled vector z (z_i = x_i / t_i^{1/p}); for space accounting each
// cell counts as one O(log n)-bit word, the paper's convention after its
// (omitted) discretization step.
//
// The (h_j, g_j) pairs live in two flat hash.FlatFamily structures, and the
// batched hot paths drive the fused hash.BucketSignBatch kernel row-major
// with per-sketch scratch buffers: steady-state ProcessBatch/AddBatch calls
// allocate nothing.
package countsketch

import (
	"fmt"
	"math/rand/v2"
	"sort"

	"repro/internal/codec"
	"repro/internal/hash"
	"repro/internal/kernel"
	"repro/internal/stream"
)

// BucketFactor is the paper's constant: a sketch of parameter m uses 6m
// buckets per row.
const BucketFactor = 6

// Sketch is a count-sketch instance.
type Sketch struct {
	m       int
	rows    int
	buckets uint64
	h       *hash.FlatFamily
	g       *hash.FlatFamily
	cells   [][]float64

	// Batch scratch, grown on demand and reused forever after: key and delta
	// views of the incoming batch, the per-row bucket/sign kernel outputs,
	// and the signed deltas fed to the scatter fold. Not goroutine-safe —
	// same contract as the cells themselves.
	scratchIdx []uint64
	scratchDel []float64
	scratchBkt []uint64
	scratchSgn []float64
	scratchSD  []float64
	scatter    kernel.ScatterScratch
}

// New creates a count-sketch with parameter m and the given number of rows
// (the paper's l = O(log n); callers pass c*log2(n)).
func New(m, rows int, r *rand.Rand) *Sketch {
	if m < 1 {
		m = 1
	}
	if rows < 1 {
		rows = 1
	}
	s := &Sketch{
		m:       m,
		rows:    rows,
		buckets: uint64(BucketFactor * m),
		h:       hash.NewFlatFamily(rows, 2, r),
		g:       hash.NewFlatFamily(rows, 2, r),
		cells:   make([][]float64, rows),
	}
	for j := range s.cells {
		s.cells[j] = make([]float64, s.buckets)
	}
	return s
}

// M returns the sketch parameter m.
func (s *Sketch) M() int { return s.m }

// Rows returns the number of rows l.
func (s *Sketch) Rows() int { return s.rows }

// Add applies the update x_i += delta for real-valued delta.
func (s *Sketch) Add(i uint64, delta float64) {
	for j := 0; j < s.rows; j++ {
		k := s.h.Bucket(j, i, s.buckets)
		s.cells[j][k] += float64(s.g.Sign(j, i)) * delta
	}
}

// Process implements stream.Sink for integer turnstile updates.
func (s *Sketch) Process(u stream.Update) {
	s.Add(uint64(u.Index), float64(u.Delta))
}

// growKernel ensures the per-row kernel outputs can hold n entries.
func (s *Sketch) growKernel(n int) {
	if cap(s.scratchBkt) < n {
		s.scratchBkt = make([]uint64, n)
		s.scratchSgn = make([]float64, n)
		s.scratchSD = make([]float64, n)
	}
}

// ProcessBatch implements stream.BatchSink: the batch is split once into key
// and delta views, then delivered row-major through the fused kernel. State
// after the call is identical to feeding the updates one Process call at a
// time (per-cell accumulation order is preserved).
func (s *Sketch) ProcessBatch(batch []stream.Update) {
	idx := stream.Keys(batch, &s.scratchIdx)
	del := stream.FloatDeltas(batch, &s.scratchDel)
	s.growKernel(len(batch))
	s.addBatch(idx, del)
}

// AddBatch is the real-valued batched hot path (the Lp sampler feeds the
// scaled vector z through it): indices[t] receives deltas[t], row-major.
func (s *Sketch) AddBatch(indices []uint64, deltas []float64) {
	s.growKernel(len(indices))
	s.addBatch(indices, deltas)
}

// addBatch runs the fused bucket+sign kernel once per row, pre-multiplies the
// signed deltas (a dense vectorizable pass), and folds them through the
// kernel.ScatterAdd primitive: all hash coefficients stay in registers across
// the batch, the kernel outputs stay L1-resident, the scatter fold prefetches
// the random cell lines ahead of the adds, and nothing allocates. Per-cell
// accumulation order is batch order (the ScatterAdd contract), so the state
// is bit-identical to the serial Add path.
func (s *Sketch) addBatch(idx []uint64, del []float64) {
	n := len(idx)
	bkt, sgn, sd := s.scratchBkt[:n], s.scratchSgn[:n], s.scratchSD[:n]
	for j := 0; j < s.rows; j++ {
		hash.BucketSignBatch(s.h, s.g, j, s.buckets, idx, bkt, sgn)
		for t := range sgn {
			sd[t] = sgn[t] * del[t]
		}
		kernel.ScatterAddF64(&s.scatter, s.cells[j], bkt, sd)
	}
}

// Merge adds another sketch's cells into this one. By linearity the result
// summarizes the sum of the two underlying vectors. Both sketches must be
// same-seed replicas (identical shape and hash functions); a mismatch is
// reported as an error and leaves the receiver untouched.
func (s *Sketch) Merge(other *Sketch) error {
	if other == nil {
		return fmt.Errorf("countsketch: %w", codec.ErrNilMerge)
	}
	if s.m != other.m || s.rows != other.rows || s.buckets != other.buckets {
		return fmt.Errorf("countsketch: merging sketches of different shapes: %w", codec.ErrConfigMismatch)
	}
	if !s.h.Equal(other.h) || !s.g.Equal(other.g) {
		return fmt.Errorf("countsketch: %w", codec.ErrSeedMismatch)
	}
	for j := range s.cells {
		row, orow := s.cells[j], other.cells[j]
		for k := range row {
			row[k] += orow[k]
		}
	}
	return nil
}

// Estimate returns x*_i, the median-of-rows estimate of coordinate i. It is
// allocation-free for sketches up to estimateStackRows rows (every practical
// l = O(log n)), and touches no shared mutable state, so concurrent Estimate
// calls against a quiescent sketch remain safe.
func (s *Sketch) Estimate(i uint64) float64 {
	var buf [estimateStackRows]float64
	ests := buf[:0]
	if s.rows > len(buf) {
		ests = make([]float64, 0, s.rows)
	}
	for j := 0; j < s.rows; j++ {
		k := s.h.Bucket(j, i, s.buckets)
		ests = append(ests, float64(s.g.Sign(j, i))*s.cells[j][k])
	}
	return median(ests)
}

// estimateStackRows bounds the stack-resident estimate buffer; rows is
// l = O(log n), so 64 covers any input a 64-bit index can address.
const estimateStackRows = 64

// Decode returns the full estimate vector x* for coordinates [0, n).
func (s *Sketch) Decode(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = s.Estimate(uint64(i))
	}
	return out
}

// TopEntry is one coordinate of a sparse approximation.
type TopEntry struct {
	Index    int
	Estimate float64
}

// Top returns the entries of the best m-sparse approximation xhat of the
// decoded vector: the m coordinates of largest |x*_i| (all of them if fewer
// than m are nonzero), sorted by decreasing magnitude.
func (s *Sketch) Top(n, m int) []TopEntry {
	ests := s.Decode(n)
	entries := make([]TopEntry, 0, n)
	for i, e := range ests {
		if e != 0 {
			entries = append(entries, TopEntry{i, e})
		}
	}
	sort.Slice(entries, func(a, b int) bool {
		ea, eb := entries[a].Estimate, entries[b].Estimate
		if ea < 0 {
			ea = -ea
		}
		if eb < 0 {
			eb = -eb
		}
		if ea != eb {
			return ea > eb
		}
		return entries[a].Index < entries[b].Index
	})
	if len(entries) > m {
		entries = entries[:m]
	}
	return entries
}

// SpaceBits reports cells plus hash seeds at 64 bits per word, matching the
// paper's O(m log n)-counters => O(m log^2 n)-bits accounting.
func (s *Sketch) SpaceBits() int64 {
	return int64(s.rows)*int64(s.buckets)*64 + s.h.SpaceBits() + s.g.SpaceBits()
}

// StateBits reports only the cell contents — the transmissible part in a
// public-coin communication protocol.
func (s *Sketch) StateBits() int64 {
	return int64(s.rows) * int64(s.buckets) * 64
}

// AppendState writes the cell contents row-major into a codec encoder.
func (s *Sketch) AppendState(e *codec.Encoder) {
	for _, row := range s.cells {
		for _, c := range row {
			e.F64(c)
		}
	}
}

// RestoreState replaces the cell contents from a codec decoder. The
// receiver keeps its shape and hash functions; only the linear state moves.
func (s *Sketch) RestoreState(d *codec.Decoder) {
	for _, row := range s.cells {
		for k := range row {
			row[k] = d.F64()
		}
	}
}

// median sorts v in place (insertion sort: v is O(log n) long and must not
// escape — sort.Float64s would box it) and returns the median.
func median(v []float64) float64 {
	for i := 1; i < len(v); i++ {
		x := v[i]
		j := i - 1
		for j >= 0 && v[j] > x {
			v[j+1] = v[j]
			j--
		}
		v[j+1] = x
	}
	n := len(v)
	if n%2 == 1 {
		return v[n/2]
	}
	return (v[n/2-1] + v[n/2]) / 2
}
