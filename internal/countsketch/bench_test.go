package countsketch

import (
	"math/rand/v2"
	"testing"

	"repro/internal/stream"
)

func benchSketchAndBatch() (*Sketch, stream.Stream) {
	s := New(64, 12, rand.New(rand.NewPCG(3, 5)))
	return s, stream.RandomTurnstile(1<<16, 8192, 100, rand.New(rand.NewPCG(17, 29)))
}

// BenchmarkProcessBatch is the engine-worker hot path: the fused
// bucket+sign kernel over every row of the PR-1 acceptance sketch shape
// (m=64, 12 rows). ReportAllocs documents the zero-allocation contract.
func BenchmarkProcessBatch(b *testing.B) {
	s, st := benchSketchAndBatch()
	s.ProcessBatch(st) // warm the scratch so steady state is measured
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ProcessBatch(st)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(st)), "ns/update")
}

// BenchmarkAddBatch is the Lp sampler's real-valued path (pre-scaled batch).
func BenchmarkAddBatch(b *testing.B) {
	s, st := benchSketchAndBatch()
	idx := make([]uint64, len(st))
	del := make([]float64, len(st))
	for t, u := range st {
		idx[t] = uint64(u.Index)
		del[t] = float64(u.Delta)
	}
	s.AddBatch(idx, del)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.AddBatch(idx, del)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(idx)), "ns/update")
}

// BenchmarkProcessSerial is the scalar Process path over the same updates,
// for the serial-vs-batched comparison in the README.
func BenchmarkProcessSerial(b *testing.B) {
	s, st := benchSketchAndBatch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, u := range st {
			s.Process(u)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(st)), "ns/update")
}

// BenchmarkAddBatchWide is the counter-scatter acceptance regime: m = 2^14
// gives 98304 buckets per row (~768 KiB of float64), past L2 on the gate
// hardware, so the fold is bound on the random cell-line fetch the
// prefetched kernel.ScatterAdd path hides.
func BenchmarkAddBatchWide(b *testing.B) {
	s := New(1<<14, 4, rand.New(rand.NewPCG(3, 5)))
	r := rand.New(rand.NewPCG(17, 29))
	idx := make([]uint64, 8192)
	del := make([]float64, 8192)
	for t := range idx {
		idx[t] = r.Uint64N(1 << 20)
		del[t] = float64(1 + t%7)
	}
	s.AddBatch(idx, del)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.AddBatch(idx, del)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(idx)), "ns/update")
}

// TestProcessBatchZeroAlloc pins the acceptance criterion: once the scratch
// is warm, ProcessBatch, AddBatch, and the Estimate query path allocate zero
// bytes per call.
func TestProcessBatchZeroAlloc(t *testing.T) {
	s, st := benchSketchAndBatch()
	s.ProcessBatch(st)
	if n := testing.AllocsPerRun(10, func() { s.ProcessBatch(st) }); n != 0 {
		t.Errorf("ProcessBatch allocates %v times per call, want 0", n)
	}
	idx := make([]uint64, len(st))
	del := make([]float64, len(st))
	for i, u := range st {
		idx[i] = uint64(u.Index)
		del[i] = float64(u.Delta)
	}
	s.AddBatch(idx, del)
	if n := testing.AllocsPerRun(10, func() { s.AddBatch(idx, del) }); n != 0 {
		t.Errorf("AddBatch allocates %v times per call, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() { s.Estimate(42) }); n != 0 {
		t.Errorf("Estimate allocates %v times per call, want 0", n)
	}
}
