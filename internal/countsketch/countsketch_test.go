package countsketch

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/stream"
	"repro/internal/vector"
)

func TestExactOnVerySparse(t *testing.T) {
	// With a single nonzero coordinate there is no collision noise in any
	// row, so the estimate must be exact.
	r := rand.New(rand.NewPCG(1, 1))
	s := New(4, 5, r)
	s.Add(17, 42.5)
	if got := s.Estimate(17); got != 42.5 {
		t.Fatalf("Estimate = %g, want 42.5", got)
	}
}

func TestLinearity(t *testing.T) {
	// Sketch(x) + Sketch(y) cell-wise equals Sketch(x+y) when built with the
	// same hashes; equivalently, interleaved updates of +d and -d cancel.
	r := rand.New(rand.NewPCG(2, 2))
	s := New(8, 7, r)
	for i := uint64(0); i < 100; i++ {
		s.Add(i, float64(i))
	}
	for i := uint64(0); i < 100; i++ {
		s.Add(i, -float64(i))
	}
	for j := range s.cells {
		for k, c := range s.cells[j] {
			if c != 0 {
				t.Fatalf("cell (%d,%d) = %g after cancellation", j, k, c)
			}
		}
	}
}

func TestLemma1PointwiseError(t *testing.T) {
	// |x_i - x*_i| <= Err^m_2(x)/sqrt(m) for all i, w.h.p.
	r := rand.New(rand.NewPCG(3, 3))
	const n = 2048
	const m = 16
	st := stream.ZipfSigned(n, 0.9, 1_000_000, r)
	truth := st.Apply(n)
	bound := truth.ErrM2(m) / math.Sqrt(m)

	failures := 0
	const trials = 8
	for trial := 0; trial < trials; trial++ {
		s := New(m, 15, r)
		st.Feed(s)
		worst := 0.0
		for i := 0; i < n; i++ {
			diff := math.Abs(float64(truth.Get(i)) - s.Estimate(uint64(i)))
			if diff > worst {
				worst = diff
			}
		}
		if worst > bound {
			failures++
		}
	}
	if failures > 1 {
		t.Errorf("Lemma 1 bound violated in %d/%d trials (bound %.1f)", failures, trials, bound)
	}
}

func TestLemma1TailApproximation(t *testing.T) {
	// Err^m_2(x) <= ||x - xhat||_2 <= 10*Err^m_2(x) for the best m-sparse
	// approximation xhat of the sketch output.
	r := rand.New(rand.NewPCG(4, 4))
	const n = 1024
	const m = 8
	st := stream.ZipfSigned(n, 1.1, 100_000, r)
	truth := st.Apply(n)
	errM2 := truth.ErrM2(m)
	s := New(m, 15, r)
	st.Feed(s)
	top := s.Top(n, m)
	xhat := make([]float64, n)
	for _, e := range top {
		xhat[e.Index] = e.Estimate
	}
	var dist float64
	for i := 0; i < n; i++ {
		d := float64(truth.Get(i)) - xhat[i]
		dist += d * d
	}
	dist = math.Sqrt(dist)
	if dist < errM2-1e-9 {
		t.Errorf("||x - xhat|| = %.2f below Err^m_2 = %.2f (impossible)", dist, errM2)
	}
	if dist > 10*errM2 {
		t.Errorf("||x - xhat|| = %.2f exceeds 10*Err^m_2 = %.2f", dist, 10*errM2)
	}
}

func TestHeavyCoordinateAlwaysFound(t *testing.T) {
	// A coordinate holding most of the L2 mass must surface as Top(n,1).
	r := rand.New(rand.NewPCG(5, 5))
	const n = 512
	for trial := 0; trial < 10; trial++ {
		s := New(8, 13, r)
		heavy := r.IntN(n)
		for i := 0; i < n; i++ {
			s.Add(uint64(i), float64(r.IntN(21)-10))
		}
		s.Add(uint64(heavy), 1e6)
		top := s.Top(n, 1)
		if len(top) != 1 || top[0].Index != heavy {
			t.Fatalf("trial %d: heavy coordinate %d not found: %+v", trial, heavy, top)
		}
	}
}

func TestTopOrderingAndTruncation(t *testing.T) {
	r := rand.New(rand.NewPCG(6, 6))
	s := New(16, 9, r)
	s.Add(1, 100)
	s.Add(2, -200)
	s.Add(3, 50)
	top := s.Top(10, 2)
	if len(top) != 2 {
		t.Fatalf("Top returned %d entries, want 2", len(top))
	}
	if top[0].Index != 2 || top[1].Index != 1 {
		t.Fatalf("Top order wrong: %+v", top)
	}
	all := s.Top(10, 100)
	if len(all) != 3 {
		t.Fatalf("Top(100) returned %d entries, want 3", len(all))
	}
}

func TestProcessMatchesAdd(t *testing.T) {
	r1 := rand.New(rand.NewPCG(7, 7))
	r2 := rand.New(rand.NewPCG(7, 7))
	a := New(4, 5, r1)
	b := New(4, 5, r2)
	a.Process(stream.Update{Index: 9, Delta: -3})
	b.Add(9, -3)
	if a.Estimate(9) != b.Estimate(9) {
		t.Fatal("Process and Add disagree")
	}
}

func TestEstimateUnbiasedOverDraws(t *testing.T) {
	// Averaged over independent sketch draws, a single-row estimate of x_i is
	// unbiased; the median keeps the estimate centred. Check the empirical
	// mean stays near truth.
	r := rand.New(rand.NewPCG(8, 8))
	const n = 256
	x := make([]int64, n)
	for i := range x {
		x[i] = int64(r.IntN(41) - 20)
	}
	x[7] = 500
	var sum float64
	const draws = 60
	for d := 0; d < draws; d++ {
		s := New(4, 7, r)
		for i, v := range x {
			s.Add(uint64(i), float64(v))
		}
		sum += s.Estimate(7)
	}
	mean := sum / draws
	truth := vector.FromSlice(x)
	tail := truth.ErrM2(4) / 2 // sqrt(m)=2
	if math.Abs(mean-500) > tail {
		t.Errorf("mean estimate %.1f drifted from 500 by more than %.1f", mean, tail)
	}
}

func TestSpaceBitsScalesWithM(t *testing.T) {
	r := rand.New(rand.NewPCG(9, 9))
	small := New(4, 10, r)
	big := New(8, 10, r)
	if big.SpaceBits() <= small.SpaceBits() {
		t.Error("space must grow with m")
	}
	if small.SpaceBits() < int64(10*6*4*64) {
		t.Error("space accounting forgot the cells")
	}
}

func TestMedianHelper(t *testing.T) {
	if got := median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("median odd = %g", got)
	}
	if got := median([]float64{4, 1, 2, 3}); got != 2.5 {
		t.Errorf("median even = %g", got)
	}
}

func TestDegenerateParamsClamped(t *testing.T) {
	r := rand.New(rand.NewPCG(10, 10))
	s := New(0, 0, r)
	s.Add(1, 5)
	if s.M() != 1 || s.Rows() != 1 {
		t.Fatalf("params not clamped: m=%d rows=%d", s.M(), s.Rows())
	}
	if got := s.Estimate(1); got != 5 {
		t.Fatalf("degenerate sketch estimate = %g", got)
	}
}

func BenchmarkAdd(b *testing.B) {
	s := New(64, 15, rand.New(rand.NewPCG(1, 1)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(uint64(i), 1)
	}
}

func BenchmarkEstimate(b *testing.B) {
	s := New(64, 15, rand.New(rand.NewPCG(1, 1)))
	for i := 0; i < 10000; i++ {
		s.Add(uint64(i), float64(i))
	}
	b.ReportAllocs() // documents the stack-resident median buffer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Estimate(uint64(i % 10000))
	}
}

func TestMergeSameSeed(t *testing.T) {
	// Same-seed sketches of x and y merge into the sketch of x+y: feeding
	// the halves separately and merging equals feeding everything serially.
	mk := func() *Sketch { return New(8, 7, rand.New(rand.NewPCG(21, 22))) }
	st := stream.RandomTurnstile(200, 2000, 50, rand.New(rand.NewPCG(23, 24)))
	whole, a, b := mk(), mk(), mk()
	st.Feed(whole)
	st[:1000].Feed(a)
	st[1000:].Feed(b)
	if err := a.Merge(b); err != nil {
		t.Fatalf("same-seed merge failed: %v", err)
	}
	for i := 0; i < 200; i++ {
		if got, want := a.Estimate(uint64(i)), whole.Estimate(uint64(i)); got != want {
			t.Fatalf("coordinate %d: merged %v != serial %v", i, got, want)
		}
	}
}

func TestMergeRejectsDifferentSeeds(t *testing.T) {
	a := New(8, 7, rand.New(rand.NewPCG(25, 26)))
	b := New(8, 7, rand.New(rand.NewPCG(27, 28)))
	if err := a.Merge(b); err == nil {
		t.Fatal("expected error merging differently seeded sketches")
	}
	if err := a.Merge(New(4, 7, rand.New(rand.NewPCG(25, 26)))); err == nil {
		t.Fatal("expected error merging sketches of different shapes")
	}
}

func TestProcessBatchEqualsProcess(t *testing.T) {
	mk := func() *Sketch { return New(8, 7, rand.New(rand.NewPCG(31, 32))) }
	st := stream.RandomTurnstile(100, 1500, 40, rand.New(rand.NewPCG(33, 34)))
	serial, batched := mk(), mk()
	st.Feed(serial)
	st.FeedBatch(64, batched)
	for i := 0; i < 100; i++ {
		if serial.Estimate(uint64(i)) != batched.Estimate(uint64(i)) {
			t.Fatalf("coordinate %d: batched state diverged", i)
		}
	}
}

// TestAddBatchWideBitIdentical pins the scatter-fold contract at sketch
// level: on a wide (m = 2^14, DRAM-sized rows) sketch, batched ingestion with
// real-valued mixed-magnitude deltas must leave every cell bit-identical to
// the serial Add path — per-cell accumulation order is batch order.
func TestAddBatchWideBitIdentical(t *testing.T) {
	mk := func() *Sketch { return New(1<<14, 3, rand.New(rand.NewPCG(41, 42))) }
	r := rand.New(rand.NewPCG(43, 44))
	const n = 6000
	idx := make([]uint64, n)
	del := make([]float64, n)
	for i := range idx {
		idx[i] = r.Uint64N(1 << 20)
		del[i] = r.NormFloat64() * math.Ldexp(1, r.IntN(60)-30)
	}
	serial, batched := mk(), mk()
	for i := range idx {
		serial.Add(idx[i], del[i])
	}
	batched.AddBatch(idx[:n/2], del[:n/2]) // two chunks: exercise scratch reuse
	batched.AddBatch(idx[n/2:], del[n/2:])
	for j := range serial.cells {
		for k := range serial.cells[j] {
			sv, bv := serial.cells[j][k], batched.cells[j][k]
			if math.Float64bits(sv) != math.Float64bits(bv) {
				t.Fatalf("row %d cell %d: batched %x, serial %x", j, k,
					math.Float64bits(bv), math.Float64bits(sv))
			}
		}
	}
}
