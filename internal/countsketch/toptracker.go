package countsketch

import (
	"sort"

	"repro/internal/stream"
)

// TopTracker maintains, alongside a count-sketch, a small candidate set of
// likely-heavy coordinates so that Top queries need no Θ(n·rows) decode —
// the classical Charikar-Chen-Farach-Colton "heap of heavy hitters"
// companion structure.
//
// On every update the freshly touched coordinate is (re-)estimated and kept
// if it ranks among the largest candidates; the set is pruned lazily to
// bound memory at O(m) extra words. For insert-dominated streams the
// tracker returns the same top set as the full decode. Under heavy
// deletions a coordinate can become relatively heavy without being touched
// (everything else shrank); such coordinates are found by the scan decoder
// but can be missed here — callers that delete aggressively should fall
// back to Sketch.Top. The Lp sampler keeps using the exact scan (its
// guarantees quantify over all n coordinates); the tracker exists for
// latency-sensitive heavy-hitters deployments.
type TopTracker struct {
	sk         *Sketch
	m          int
	candidates map[uint64]struct{}
}

// NewTopTracker wraps an existing sketch, tracking roughly the top m.
func NewTopTracker(sk *Sketch, m int) *TopTracker {
	if m < 1 {
		m = 1
	}
	return &TopTracker{
		sk:         sk,
		m:          m,
		candidates: make(map[uint64]struct{}, 4*m),
	}
}

// Add forwards the update to the sketch and refreshes the candidate set.
func (t *TopTracker) Add(i uint64, delta float64) {
	t.sk.Add(i, delta)
	t.candidates[i] = struct{}{}
	if len(t.candidates) > 8*t.m {
		t.prune()
	}
}

// Process implements stream.Sink.
func (t *TopTracker) Process(u stream.Update) {
	t.Add(uint64(u.Index), float64(u.Delta))
}

// prune re-estimates all candidates and keeps the 2m largest magnitudes.
func (t *TopTracker) prune() {
	entries := t.estimateCandidates()
	keep := 2 * t.m
	if keep > len(entries) {
		keep = len(entries)
	}
	next := make(map[uint64]struct{}, 4*t.m)
	for _, e := range entries[:keep] {
		next[uint64(e.Index)] = struct{}{}
	}
	t.candidates = next
}

// estimateCandidates returns current candidates sorted by decreasing
// estimated magnitude, dropping zero estimates.
func (t *TopTracker) estimateCandidates() []TopEntry {
	entries := make([]TopEntry, 0, len(t.candidates))
	for i := range t.candidates {
		est := t.sk.Estimate(i)
		if est != 0 {
			entries = append(entries, TopEntry{Index: int(i), Estimate: est})
		}
	}
	sort.Slice(entries, func(a, b int) bool {
		ea, eb := entries[a].Estimate, entries[b].Estimate
		if ea < 0 {
			ea = -ea
		}
		if eb < 0 {
			eb = -eb
		}
		if ea != eb {
			return ea > eb
		}
		return entries[a].Index < entries[b].Index
	})
	return entries
}

// Top returns up to m tracked entries by decreasing magnitude, re-estimated
// against the current sketch state. Cost is O(m·rows), independent of n.
func (t *TopTracker) Top() []TopEntry {
	entries := t.estimateCandidates()
	if len(entries) > t.m {
		entries = entries[:t.m]
	}
	return entries
}

// SpaceBits adds the candidate set (≤ 8m words) to the sketch footprint.
func (t *TopTracker) SpaceBits() int64 {
	return t.sk.SpaceBits() + int64(8*t.m)*64
}
