package countsketch

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/stream"
)

// TestPropertyCellLinearity: the sketch cells are a linear map — the cells
// of Sketch(A;B) equal the cell-wise sum of same-seed Sketch(A) and
// Sketch(B). (The median ESTIMATOR on top is deliberately nonlinear; only
// the measurement is linear, which is what streaming composition uses.)
func TestPropertyCellLinearity(t *testing.T) {
	f := func(seed uint64, rawA, rawB []int16) bool {
		const n = 64
		mkUpdates := func(raw []int16) stream.Stream {
			var st stream.Stream
			for k, v := range raw {
				if v == 0 {
					continue
				}
				st = append(st, stream.Update{Index: k % n, Delta: int64(v)})
			}
			return st
		}
		a, b := mkUpdates(rawA), mkUpdates(rawB)
		mk := func() *Sketch {
			return New(8, 7, rand.New(rand.NewPCG(seed, seed^1)))
		}
		combined := mk()
		a.Feed(combined)
		b.Feed(combined)
		separateA, separateB := mk(), mk()
		a.Feed(separateA)
		b.Feed(separateB)
		for j := range combined.cells {
			for k := range combined.cells[j] {
				if combined.cells[j][k] != separateA.cells[j][k]+separateB.cells[j][k] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestPropertyPermutationInvariance: estimates do not depend on the order
// updates arrive in.
func TestPropertyPermutationInvariance(t *testing.T) {
	f := func(seed uint64, raw []int16) bool {
		const n = 32
		var st stream.Stream
		for k, v := range raw {
			if v != 0 {
				st = append(st, stream.Update{Index: k % n, Delta: int64(v)})
			}
		}
		mk := func() *Sketch { return New(4, 5, rand.New(rand.NewPCG(seed, 7))) }
		fwd, rev := mk(), mk()
		st.Feed(fwd)
		for i := len(st) - 1; i >= 0; i-- {
			rev.Process(st[i])
		}
		for i := uint64(0); i < n; i++ {
			if fwd.Estimate(i) != rev.Estimate(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestPropertySparseExactness: when at most one coordinate per row-bucket is
// occupied (n distinct coordinates <= buckets and no collision), estimates
// are exact. We use the weaker but testable form: a single occupied
// coordinate is always estimated exactly, whatever its value.
func TestPropertySparseExactness(t *testing.T) {
	f := func(seed uint64, idx uint16, val int32) bool {
		if val == 0 {
			return true
		}
		s := New(4, 6, rand.New(rand.NewPCG(seed, 13)))
		s.Add(uint64(idx), float64(val))
		return s.Estimate(uint64(idx)) == float64(val)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPropertyDecodeMatchesEstimate: Decode is exactly per-coordinate
// Estimate.
func TestPropertyDecodeMatchesEstimate(t *testing.T) {
	f := func(seed uint64, raw []int16) bool {
		const n = 48
		s := New(4, 5, rand.New(rand.NewPCG(seed, 17)))
		for k, v := range raw {
			if v != 0 {
				s.Add(uint64(k%n), float64(v))
			}
		}
		dec := s.Decode(n)
		for i := 0; i < n; i++ {
			if dec[i] != s.Estimate(uint64(i)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestPropertyTopMagnitudeSorted: Top always returns entries by
// non-increasing magnitude and never more than requested.
func TestPropertyTopMagnitudeSorted(t *testing.T) {
	f := func(seed uint64, raw []int16, mRaw uint8) bool {
		const n = 48
		m := int(mRaw%16) + 1
		s := New(8, 5, rand.New(rand.NewPCG(seed, 23)))
		for k, v := range raw {
			if v != 0 {
				s.Add(uint64(k%n), float64(v))
			}
		}
		top := s.Top(n, m)
		if len(top) > m {
			return false
		}
		for i := 1; i < len(top); i++ {
			a, b := top[i-1].Estimate, top[i].Estimate
			if a < 0 {
				a = -a
			}
			if b < 0 {
				b = -b
			}
			if a < b {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
