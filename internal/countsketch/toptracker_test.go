package countsketch

import (
	"math/rand/v2"
	"testing"

	"repro/internal/stream"
)

func TestTrackerFindsPlantedHeavies(t *testing.T) {
	r := rand.New(rand.NewPCG(1, 1))
	const n = 4096
	sk := New(16, 11, r)
	tr := NewTopTracker(sk, 4)
	heavies := map[int]float64{100: 50000, 2000: -40000, 3999: 30000}
	for i := 0; i < n; i++ {
		tr.Add(uint64(i), float64(r.IntN(21)-10))
	}
	for i, v := range heavies {
		tr.Add(uint64(i), v)
	}
	top := tr.Top()
	found := map[int]bool{}
	for _, e := range top {
		found[e.Index] = true
	}
	for i := range heavies {
		if !found[i] {
			t.Fatalf("tracker missed planted heavy %d: %+v", i, top)
		}
	}
}

func TestTrackerMatchesScanOnInsertOnly(t *testing.T) {
	// Insert-dominated zipf stream: tracker and scan decoder must agree on
	// the top set.
	r := rand.New(rand.NewPCG(2, 2))
	const n = 1024
	const m = 8
	sk := New(32, 11, r)
	tr := NewTopTracker(sk, m)
	st := stream.ZipfSigned(n, 1.2, 100000, r)
	for _, u := range st {
		tr.Process(u)
	}
	scan := sk.Top(n, m)
	tracked := tr.Top()
	scanSet := map[int]bool{}
	for _, e := range scan {
		scanSet[e.Index] = true
	}
	misses := 0
	for _, e := range tracked {
		if !scanSet[e.Index] {
			misses++
		}
	}
	if len(tracked) < m/2 {
		t.Fatalf("tracker returned only %d entries", len(tracked))
	}
	if misses > m/4 {
		t.Errorf("tracker disagrees with scan on %d of %d entries", misses, len(tracked))
	}
}

func TestTrackerSurvivesChurnOnTouchedCoordinates(t *testing.T) {
	// Deletions that touch the heavy coordinate keep it tracked; its
	// estimate follows the net value.
	r := rand.New(rand.NewPCG(3, 3))
	sk := New(8, 9, r)
	tr := NewTopTracker(sk, 2)
	tr.Add(7, 1000)
	tr.Add(7, -400)
	top := tr.Top()
	if len(top) == 0 || top[0].Index != 7 || top[0].Estimate != 600 {
		t.Fatalf("tracker lost churned coordinate: %+v", top)
	}
	// Full cancellation drops it from the set (estimate 0).
	tr.Add(7, -600)
	for _, e := range tr.Top() {
		if e.Index == 7 {
			t.Fatalf("cancelled coordinate still reported: %+v", e)
		}
	}
}

func TestTrackerPruneBoundsCandidates(t *testing.T) {
	r := rand.New(rand.NewPCG(4, 4))
	sk := New(4, 7, r)
	tr := NewTopTracker(sk, 4)
	for i := 0; i < 100000; i++ {
		tr.Add(uint64(i%50000), 1)
	}
	if len(tr.candidates) > 8*4 {
		t.Fatalf("candidate set grew to %d, bound is %d", len(tr.candidates), 8*4)
	}
}

func TestTrackerQueryCostIndependentOfN(t *testing.T) {
	// Structural check: Top never touches coordinates outside the candidate
	// set, so its output size is bounded by m regardless of n.
	r := rand.New(rand.NewPCG(5, 5))
	sk := New(4, 7, r)
	tr := NewTopTracker(sk, 3)
	for i := 0; i < 1000; i++ {
		tr.Add(uint64(i), float64(i))
	}
	if got := len(tr.Top()); got > 3 {
		t.Fatalf("Top returned %d entries, cap is 3", got)
	}
}

func BenchmarkTrackerAdd(b *testing.B) {
	sk := New(64, 15, rand.New(rand.NewPCG(1, 1)))
	tr := NewTopTracker(sk, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Add(uint64(i%100000), 1)
	}
}

func BenchmarkTrackerTopVsScanN65536(b *testing.B) {
	r := rand.New(rand.NewPCG(1, 1))
	const n = 1 << 16
	sk := New(32, 13, r)
	tr := NewTopTracker(sk, 8)
	for i := 0; i < n; i++ {
		tr.Add(uint64(i), float64(r.IntN(100)))
	}
	b.Run("tracker", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tr.Top()
		}
	})
	b.Run("scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sk.Top(n, 8)
		}
	})
}
