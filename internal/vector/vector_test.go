package vector

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestBasicAccessors(t *testing.T) {
	d := NewDense(5)
	if d.N() != 5 || d.L0() != 0 {
		t.Fatal("fresh vector not zero")
	}
	d.Update(2, 7)
	d.Update(2, -3)
	d.Update(4, -1)
	if d.Get(2) != 4 || d.Get(4) != -1 {
		t.Fatalf("coords wrong: %v", d.Coords())
	}
	if d.L0() != 2 {
		t.Fatalf("L0 = %d, want 2", d.L0())
	}
	sup := d.Support()
	if len(sup) != 2 || sup[0] != 2 || sup[1] != 4 {
		t.Fatalf("Support = %v", sup)
	}
	if d.MaxAbs() != 4 {
		t.Fatalf("MaxAbs = %d", d.MaxAbs())
	}
}

func TestNorms(t *testing.T) {
	d := FromSlice([]int64{3, -4, 0})
	if !almostEq(d.NormP(2), 5) {
		t.Errorf("L2 = %g, want 5", d.NormP(2))
	}
	if !almostEq(d.NormP(1), 7) {
		t.Errorf("L1 = %g, want 7", d.NormP(1))
	}
	if !almostEq(d.SumAbsP(0.5), math.Sqrt(3)+2) {
		t.Errorf("SumAbsP(0.5) = %g", d.SumAbsP(0.5))
	}
}

func TestLpDistribution(t *testing.T) {
	d := FromSlice([]int64{1, -3, 0, 4})
	p1 := d.LpDistribution(1)
	want := []float64{1.0 / 8, 3.0 / 8, 0, 4.0 / 8}
	for i := range want {
		if !almostEq(p1[i], want[i]) {
			t.Fatalf("L1 dist[%d] = %g, want %g", i, p1[i], want[i])
		}
	}
	p0 := d.LpDistribution(0)
	for i, v := range d.Coords() {
		wantP := 0.0
		if v != 0 {
			wantP = 1.0 / 3
		}
		if !almostEq(p0[i], wantP) {
			t.Fatalf("L0 dist[%d] = %g, want %g", i, p0[i], wantP)
		}
	}
	if FromSlice([]int64{0, 0}).LpDistribution(1) != nil {
		t.Error("zero vector must yield nil distribution")
	}
	if FromSlice([]int64{0, 0}).LpDistribution(0) != nil {
		t.Error("zero vector must yield nil L0 distribution")
	}
}

func TestLpDistributionSumsToOne(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		x := make([]int64, len(raw))
		nz := false
		for i, v := range raw {
			x[i] = int64(v)
			if v != 0 {
				nz = true
			}
		}
		if !nz {
			return true
		}
		d := FromSlice(x)
		for _, p := range []float64{0, 0.5, 1, 1.5, 2} {
			var s float64
			for _, q := range d.LpDistribution(p) {
				s += q
			}
			if math.Abs(s-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestErrM2(t *testing.T) {
	d := FromSlice([]int64{10, -7, 3, 1, 0})
	// m=2 removes 10 and -7: tail = sqrt(9+1)
	if !almostEq(d.ErrM2(2), math.Sqrt(10)) {
		t.Errorf("ErrM2(2) = %g, want sqrt(10)", d.ErrM2(2))
	}
	if !almostEq(d.ErrM2(0), d.NormP(2)) {
		t.Errorf("ErrM2(0) must be the L2 norm")
	}
	if d.ErrM2(4) != 0 || d.ErrM2(100) != 0 {
		t.Error("ErrM2 at support size must be 0")
	}
}

func TestErrM2Monotone(t *testing.T) {
	r := rand.New(rand.NewPCG(1, 1))
	x := make([]int64, 100)
	for i := range x {
		x[i] = r.Int64N(2001) - 1000
	}
	d := FromSlice(x)
	prev := math.Inf(1)
	for m := 0; m <= 100; m += 5 {
		e := d.ErrM2(m)
		if e > prev+1e-9 {
			t.Fatalf("ErrM2 not monotone at m=%d", m)
		}
		prev = e
	}
}

func TestTV(t *testing.T) {
	p := []float64{0.5, 0.5, 0}
	q := []float64{0.25, 0.25, 0.5}
	if !almostEq(TV(p, q), 0.5) {
		t.Errorf("TV = %g, want 0.5", TV(p, q))
	}
	if TV(p, p) != 0 {
		t.Error("TV(p,p) must be 0")
	}
}

func TestEmpiricalTV(t *testing.T) {
	target := []float64{0.5, 0.5}
	counts := map[int]int{0: 50, 1: 50}
	if !almostEq(EmpiricalTV(counts, target, 100), 0) {
		t.Error("perfect sample must have TV 0")
	}
	counts = map[int]int{0: 100}
	if !almostEq(EmpiricalTV(counts, target, 100), 0.5) {
		t.Error("one-sided sample must have TV 0.5")
	}
	if EmpiricalTV(nil, target, 0) != 1 {
		t.Error("empty sample must report TV 1")
	}
}

func TestTopM(t *testing.T) {
	d := FromSlice([]int64{5, -9, 0, 2, 9})
	top2 := d.TopM(2)
	if len(top2) != 2 || top2[0] != 1 || top2[1] != 4 {
		t.Fatalf("TopM(2) = %v, want [1 4]", top2)
	}
	if got := d.TopM(10); len(got) != 4 {
		t.Fatalf("TopM(10) = %v, want all 4 nonzeros", got)
	}
}

func TestTopMConsistentWithErrM2(t *testing.T) {
	r := rand.New(rand.NewPCG(2, 2))
	x := make([]int64, 64)
	for i := range x {
		x[i] = r.Int64N(199) - 99
	}
	d := FromSlice(x)
	for _, m := range []int{1, 3, 8, 20} {
		top := d.TopM(m)
		keep := map[int]bool{}
		for _, i := range top {
			keep[i] = true
		}
		var tail float64
		for i, v := range x {
			if !keep[i] {
				tail += float64(v) * float64(v)
			}
		}
		if !almostEq(math.Sqrt(tail), d.ErrM2(m)) {
			t.Fatalf("TopM/ErrM2 mismatch at m=%d: %g vs %g", m, math.Sqrt(tail), d.ErrM2(m))
		}
	}
}
