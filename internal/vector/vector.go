// Package vector provides the exact (non-streaming) ground truth that every
// experiment measures against: the underlying vector x defined by an update
// stream, its Lp norms and Lp distributions (Definition 1 of the paper), the
// count-sketch tail error Err^m_2(x), and total-variation distance between
// output histograms and target distributions.
package vector

import (
	"math"
	"sort"
)

// Dense is the exact integer vector x in Z^n maintained outside the streaming
// model. The paper assumes integer updates with |x_i| <= M = poly(n)
// throughout the stream; int64 easily covers that regime.
type Dense struct {
	x []int64
}

// NewDense returns the zero vector of dimension n.
func NewDense(n int) *Dense { return &Dense{x: make([]int64, n)} }

// FromSlice wraps an existing coordinate slice (not copied).
func FromSlice(x []int64) *Dense { return &Dense{x: x} }

// N returns the dimension.
func (d *Dense) N() int { return len(d.x) }

// Update adds delta to coordinate i.
func (d *Dense) Update(i int, delta int64) { d.x[i] += delta }

// Get returns coordinate i.
func (d *Dense) Get(i int) int64 { return d.x[i] }

// Coords returns the underlying coordinates (shared, do not mutate).
func (d *Dense) Coords() []int64 { return d.x }

// Support returns the indices of nonzero coordinates in increasing order.
func (d *Dense) Support() []int {
	var s []int
	for i, v := range d.x {
		if v != 0 {
			s = append(s, i)
		}
	}
	return s
}

// L0 returns the number of nonzero coordinates.
func (d *Dense) L0() int {
	c := 0
	for _, v := range d.x {
		if v != 0 {
			c++
		}
	}
	return c
}

// SumAbsP returns sum_i |x_i|^p = ||x||_p^p for p > 0.
func (d *Dense) SumAbsP(p float64) float64 {
	var s float64
	for _, v := range d.x {
		if v != 0 {
			s += math.Pow(math.Abs(float64(v)), p)
		}
	}
	return s
}

// NormP returns ||x||_p for p > 0.
func (d *Dense) NormP(p float64) float64 {
	return math.Pow(d.SumAbsP(p), 1/p)
}

// LpDistribution returns the Lp distribution of Definition 1: index i has
// probability |x_i|^p / ||x||_p^p. For p = 0 it returns the uniform
// distribution over the support. The zero vector yields a nil slice (the
// distribution is undefined; a perfect sampler may only fail there).
func (d *Dense) LpDistribution(p float64) []float64 {
	out := make([]float64, len(d.x))
	if p == 0 {
		k := d.L0()
		if k == 0 {
			return nil
		}
		for i, v := range d.x {
			if v != 0 {
				out[i] = 1 / float64(k)
			}
		}
		return out
	}
	total := d.SumAbsP(p)
	if total == 0 {
		return nil
	}
	for i, v := range d.x {
		if v != 0 {
			out[i] = math.Pow(math.Abs(float64(v)), p) / total
		}
	}
	return out
}

// ErrM2 returns Err^m_2(x) = min over m-sparse xhat of ||x - xhat||_2, i.e.
// the L2 norm of x with its m largest-magnitude coordinates removed — the
// tail quantity that controls the count-sketch guarantee of Lemma 1.
func (d *Dense) ErrM2(m int) float64 {
	if m <= 0 {
		var s float64
		for _, v := range d.x {
			f := float64(v)
			s += f * f
		}
		return math.Sqrt(s)
	}
	mags := make([]float64, 0, len(d.x))
	for _, v := range d.x {
		if v != 0 {
			mags = append(mags, math.Abs(float64(v)))
		}
	}
	if len(mags) <= m {
		return 0
	}
	sort.Float64s(mags)
	var s float64
	for _, f := range mags[:len(mags)-m] {
		s += f * f
	}
	return math.Sqrt(s)
}

// TV returns the total-variation distance (1/2)*sum_i |p_i - q_i| between two
// distributions given as same-length probability slices.
func TV(p, q []float64) float64 {
	var s float64
	for i := range p {
		s += math.Abs(p[i] - q[i])
	}
	return s / 2
}

// EmpiricalTV compares an observed sample histogram against a target
// distribution over [n] and returns the total-variation distance of the
// empirical distribution from the target. total must be the sample count.
func EmpiricalTV(counts map[int]int, target []float64, total int) float64 {
	if total == 0 {
		return 1
	}
	var s float64
	seen := make([]bool, len(target))
	for i, c := range counts {
		emp := float64(c) / float64(total)
		var tgt float64
		if i >= 0 && i < len(target) {
			tgt = target[i]
			seen[i] = true
		}
		s += math.Abs(emp - tgt)
	}
	for i, t := range target {
		if !seen[i] {
			s += t
		}
	}
	return s / 2
}

// MaxAbs returns max_i |x_i|.
func (d *Dense) MaxAbs() int64 {
	var m int64
	for _, v := range d.x {
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	return m
}

// TopM returns the indices of the m largest-magnitude coordinates (ties broken
// by lower index), used to build best m-sparse approximations in tests.
func (d *Dense) TopM(m int) []int {
	type pair struct {
		i int
		a int64
	}
	ps := make([]pair, 0, len(d.x))
	for i, v := range d.x {
		a := v
		if a < 0 {
			a = -a
		}
		if a != 0 {
			ps = append(ps, pair{i, a})
		}
	}
	sort.Slice(ps, func(a, b int) bool {
		if ps[a].a != ps[b].a {
			return ps[a].a > ps[b].a
		}
		return ps[a].i < ps[b].i
	})
	if m > len(ps) {
		m = len(ps)
	}
	out := make([]int, m)
	for i := 0; i < m; i++ {
		out[i] = ps[i].i
	}
	sort.Ints(out)
	return out
}
