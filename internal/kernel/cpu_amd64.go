package kernel

// AVX2 detection and the amd64 vector table. Detection follows the standard
// protocol: leaf 1 must report AVX and OSXSAVE, XGETBV must confirm the OS
// saves XMM+YMM state on context switch, and leaf 7 must report AVX2 —
// skipping the XGETBV check would SIGILL on kernels with AVX state disabled.

//go:noescape
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

//go:noescape
func xgetbv0() (eax, edx uint32)

//go:noescape
func polyEvalBatchAVX2(coef []uint64, xs []uint64, out []uint64)

//go:noescape
func bucketSign2AVX2(h0, h1, g0, g1, m uint64, xs []uint64, buckets []uint64, signs []float64)

//go:noescape
func bucket2AVX2(c0, c1, m uint64, xs []uint64, out []uint64)

//go:noescape
func fdScanAVX2(d []uint64, out []uint64)

//go:noescape
func fdScan12AVX2(d *[12]uint64, out []uint64)

//go:noescape
func syndromeAdd4AVX2(synd []uint64, d, a *[4]uint64)

//go:noescape
func affineExpandAVX2(a, b uint64, buf []uint64, lo, m int)

func detect() {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return
	}
	_, _, c1, _ := cpuid(1, 0)
	const osxsaveAVX = 1<<27 | 1<<28
	if c1&osxsaveAVX != osxsaveAVX {
		return
	}
	if eax, _ := xgetbv0(); eax&6 != 6 { // XMM and YMM state enabled by the OS
		return
	}
	if _, b7, _, _ := cpuid(7, 0); b7&(1<<5) == 0 { // AVX2
		return
	}
	vectorTable = &avx2Table
}

// avx2Table vectorizes every primitive. The Go wrappers route 4-lane blocks
// to assembly and delegate tails and degenerate shapes to the scalar
// reference, so the assembly only ever sees its documented preconditions.
var avx2Table = table{
	name:          AVX2,
	polyEvalBatch: avx2PolyEvalBatch,
	bucketSign2:   avx2BucketSign2,
	bucket2:       avx2Bucket2,
	fdScan:        avx2FDScan,
	syndromeAdd4:  avx2SyndromeAdd4,
	affineExpand:  avx2AffineExpand,
}

func avx2PolyEvalBatch(coef, xs, out []uint64) {
	out = out[:len(xs)]
	if len(coef) == 0 {
		clear(out)
		return
	}
	n := len(xs) &^ 3
	if n > 0 {
		polyEvalBatchAVX2(coef, xs[:n], out[:n])
	}
	if n < len(xs) {
		scalarPolyEvalBatch(coef, xs[n:], out[n:])
	}
}

func avx2BucketSign2(h0, h1, g0, g1, m uint64, xs, buckets []uint64, signs []float64) {
	buckets = buckets[:len(xs)]
	signs = signs[:len(xs)]
	n := len(xs) &^ 3
	if n > 0 {
		bucketSign2AVX2(h0, h1, g0, g1, m, xs[:n], buckets[:n], signs[:n])
	}
	if n < len(xs) {
		scalarBucketSign2(h0, h1, g0, g1, m, xs[n:], buckets[n:], signs[n:])
	}
}

func avx2Bucket2(c0, c1, m uint64, xs, out []uint64) {
	out = out[:len(xs)]
	n := len(xs) &^ 3
	if n > 0 {
		bucket2AVX2(c0, c1, m, xs[:n], out[:n])
	}
	if n < len(xs) {
		scalarBucket2(c0, c1, m, xs[n:], out[n:])
	}
}

func avx2FDScan(d, out []uint64) {
	// Below 4 vector lanes of difference entries the per-step loop overhead
	// outweighs the SIMD add; the scalar path is faster and bit-identical.
	if len(out) == 0 || len(d) < 5 {
		scalarFDScan(d, out)
		return
	}
	if len(d) <= 12 {
		// Common case (Chien scan: deg(locator)+1 <= s+1 entries): run the
		// whole scan out of registers on a zero-padded copy. The pad lanes
		// stay zero under d[k] += d[k+1], so the copy-back is exact.
		var buf [12]uint64
		copy(buf[:], d)
		fdScan12AVX2(&buf, out)
		copy(d, buf[:len(d)])
		return
	}
	fdScanAVX2(d, out)
}

func avx2SyndromeAdd4(synd []uint64, d, a [4]uint64) {
	if len(synd) == 0 {
		return
	}
	syndromeAdd4AVX2(synd, &d, &a)
}

func avx2AffineExpand(a, b uint64, buf []uint64, m int) {
	lo := m
	if m >= 4 {
		// The assembly walks blocks of four descending to index lo = m%4;
		// the sub-block tail below it follows, still in descending order.
		lo = m & 3
		affineExpandAVX2(a, b, buf, lo, m)
	}
	for i := lo - 1; i >= 0; i-- {
		x := buf[i]
		buf[2*i] = x
		buf[2*i+1] = modAdd(modMul(a, x), b)
	}
}
