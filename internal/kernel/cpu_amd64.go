package kernel

// AVX2 / AVX-512 detection and the amd64 vector tables. Detection follows
// the standard protocol: leaf 1 must report AVX and OSXSAVE, XGETBV must
// confirm the OS saves the relevant register state on context switch, and
// leaf 7 must report the ISA bits — skipping the XGETBV check would SIGILL
// on kernels with AVX (or AVX-512) state disabled. The AVX-512 tier
// additionally requires opmask/ZMM/Hi16-ZMM XSAVE state and the F/CD/DQ/VL
// feature quartet (CD for VPCONFLICTQ, DQ for the KMOVB mask moves); when
// AVX512_IFMA is also present, the three modmul-bound primitives switch to
// the 52-bit VPMADD52 limb kernels.

//go:noescape
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

//go:noescape
func xgetbv0() (eax, edx uint32)

//go:noescape
func polyEvalBatchAVX2(coef []uint64, xs []uint64, out []uint64)

//go:noescape
func bucketSign2AVX2(h0, h1, g0, g1, m uint64, xs []uint64, buckets []uint64, signs []float64)

//go:noescape
func bucket2AVX2(c0, c1, m uint64, xs []uint64, out []uint64)

//go:noescape
func fdScanAVX2(d []uint64, out []uint64)

//go:noescape
func fdScan12AVX2(d *[12]uint64, out []uint64)

//go:noescape
func syndromeAdd4AVX2(synd []uint64, d, a *[4]uint64)

//go:noescape
func affineExpandAVX2(a, b uint64, buf []uint64, lo, m int)

//go:noescape
func polyEvalBatchAVX512(coef []uint64, xs []uint64, out []uint64)

//go:noescape
func bucketSign2AVX512(h0, h1, g0, g1, m uint64, xs []uint64, buckets []uint64, signs []float64)

//go:noescape
func bucket2AVX512(c0, c1, m uint64, xs []uint64, out []uint64)

//go:noescape
func polyEvalBatchIFMA(coef []uint64, xs []uint64, out []uint64)

//go:noescape
func bucketSign2IFMA(h0, h1, g0, g1, m uint64, xs []uint64, buckets []uint64, signs []float64)

//go:noescape
func bucket2IFMA(c0, c1, m uint64, xs []uint64, out []uint64)

//go:noescape
func scatterAddF64PF(cells []float64, idx []uint64, del []float64)

//go:noescape
func scatterAddI64PF(cells []int64, idx []uint64, del []int64)

//go:noescape
func scatterAddF64NP(cells []float64, idx []uint64, del []float64)

//go:noescape
func scatterAddI64NP(cells []int64, idx []uint64, del []int64)

//go:noescape
func scatterAddF64AVX512(cells []float64, idx []uint64, del []float64)

//go:noescape
func scatterAddI64AVX512(cells []int64, idx []uint64, del []int64)

func detect() {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return
	}
	_, _, c1, _ := cpuid(1, 0)
	const osxsaveAVX = 1<<27 | 1<<28
	if c1&osxsaveAVX != osxsaveAVX {
		return
	}
	xcr0, _ := xgetbv0()
	if xcr0&6 != 6 { // XMM and YMM state enabled by the OS
		return
	}
	_, b7, _, _ := cpuid(7, 0)
	if b7&(1<<5) == 0 { // AVX2
		return
	}
	available = append(available, &avx2Table)

	// AVX-512: leaf-7 EBX F(16), DQ(17), CD(28), VL(31), plus XCR0
	// opmask(5)/ZMM_Hi256(6)/Hi16_ZMM(7) state on top of the XMM/YMM bits
	// already checked — 0xE6 altogether.
	const avx512Feat = 1<<16 | 1<<17 | 1<<28 | 1<<31
	if b7&avx512Feat != avx512Feat || xcr0&0xE6 != 0xE6 {
		return
	}
	if b7&(1<<21) != 0 { // AVX512_IFMA: 52-bit multiply-add limb kernels
		avx512Table.polyEvalBatch = avx512PolyEvalBatchIFMA
		avx512Table.bucketSign2 = avx512BucketSign2IFMA
		avx512Table.bucket2 = avx512Bucket2IFMA
		// Keep the VPMULUDQ flavor reachable for the differential tests:
		// an IFMA machine can run both, so both get pinned against scalar.
		alt := avx512Table
		alt.polyEvalBatch = avx512PolyEvalBatch
		alt.bucketSign2 = avx512BucketSign2
		alt.bucket2 = avx512Bucket2
		testAltTables = append(testAltTables, &alt)
	}
	// The VPCONFLICTQ-guarded gather/add/scatter fold is never the dispatch
	// default (the prefetched scalar loop measures faster at every width on
	// the gate hardware — see kernel_scatter_amd64.s), but it must stay
	// pinned bit-identical, so the sweep gets a flavor table carrying it.
	altSc := avx512Table
	altSc.scatterAddF64 = avx512ScatterAddF64
	altSc.scatterAddI64 = avx512ScatterAddI64
	testAltTables = append(testAltTables, &altSc)
	available = append(available, &avx512Table)
}

// avx2Table vectorizes the six PR-7 primitives at 4 lanes. The Go wrappers
// route 4-lane blocks to assembly and delegate tails and degenerate shapes
// to the scalar reference, so the assembly only ever sees its documented
// preconditions. The counter scatter is the prefetched scalar-order loop —
// baseline amd64 instructions, no AVX needed (AVX2 has gathers but no
// scatter stores, so there is no 4-lane vector fold to have).
var avx2Table = table{
	name:          AVX2,
	polyEvalBatch: avx2PolyEvalBatch,
	bucketSign2:   avx2BucketSign2,
	bucket2:       avx2Bucket2,
	fdScan:        avx2FDScan,
	syndromeAdd4:  avx2SyndromeAdd4,
	affineExpand:  avx2AffineExpand,
	scatterAddF64: amd64ScatterAddF64,
	scatterAddI64: amd64ScatterAddI64,
}

// avx512Table widens the modmul-bound primitives to 8 lanes. The
// add-dominated primitives (fdScan, syndromeAdd4, affineExpand) inherit the
// AVX2 kernels: they are latency- or store-forwarding-bound, so doubling
// lane width buys nothing, and the 256-bit forms avoid license-based
// frequency dips. The counter scatter keeps the prefetched scalar-order
// loop as well: the VPCONFLICTQ-guarded VSCATTERQPD fold (also in this
// file) measures 8-20% behind it at every row width on Skylake-SP — a
// zmm gather+scatter pair costs the same store-port budget as eight scalar
// read-modify-writes and cannot prefetch ahead — so it lives in
// testAltTables, pinned but not selected. detect() swaps the modmul trio
// to the IFMA52 flavor when the CPU has it.
var avx512Table = table{
	name:          AVX512,
	polyEvalBatch: avx512PolyEvalBatch,
	bucketSign2:   avx512BucketSign2,
	bucket2:       avx512Bucket2,
	fdScan:        avx2FDScan,
	syndromeAdd4:  avx2SyndromeAdd4,
	affineExpand:  avx2AffineExpand,
	scatterAddF64: amd64ScatterAddF64,
	scatterAddI64: amd64ScatterAddI64,
}

func avx2PolyEvalBatch(coef, xs, out []uint64) {
	out = out[:len(xs)]
	if len(coef) == 0 {
		clear(out)
		return
	}
	n := len(xs) &^ 3
	if n > 0 {
		polyEvalBatchAVX2(coef, xs[:n], out[:n])
	}
	if n < len(xs) {
		scalarPolyEvalBatch(coef, xs[n:], out[n:])
	}
}

func avx2BucketSign2(h0, h1, g0, g1, m uint64, xs, buckets []uint64, signs []float64) {
	buckets = buckets[:len(xs)]
	signs = signs[:len(xs)]
	n := len(xs) &^ 3
	if n > 0 {
		bucketSign2AVX2(h0, h1, g0, g1, m, xs[:n], buckets[:n], signs[:n])
	}
	if n < len(xs) {
		scalarBucketSign2(h0, h1, g0, g1, m, xs[n:], buckets[n:], signs[n:])
	}
}

func avx2Bucket2(c0, c1, m uint64, xs, out []uint64) {
	out = out[:len(xs)]
	n := len(xs) &^ 3
	if n > 0 {
		bucket2AVX2(c0, c1, m, xs[:n], out[:n])
	}
	if n < len(xs) {
		scalarBucket2(c0, c1, m, xs[n:], out[n:])
	}
}

func avx2FDScan(d, out []uint64) {
	// Below 4 vector lanes of difference entries the per-step loop overhead
	// outweighs the SIMD add; the scalar path is faster and bit-identical.
	if len(out) == 0 || len(d) < 5 {
		scalarFDScan(d, out)
		return
	}
	if len(d) <= 12 {
		// Common case (Chien scan: deg(locator)+1 <= s+1 entries): run the
		// whole scan out of registers on a zero-padded copy. The pad lanes
		// stay zero under d[k] += d[k+1], so the copy-back is exact.
		var buf [12]uint64
		copy(buf[:], d)
		fdScan12AVX2(&buf, out)
		copy(d, buf[:len(d)])
		return
	}
	fdScanAVX2(d, out)
}

func avx2SyndromeAdd4(synd []uint64, d, a [4]uint64) {
	if len(synd) == 0 {
		return
	}
	syndromeAdd4AVX2(synd, &d, &a)
}

func avx2AffineExpand(a, b uint64, buf []uint64, m int) {
	lo := m
	if m >= 4 {
		// The assembly walks blocks of four descending to index lo = m%4;
		// the sub-block tail below it follows, still in descending order.
		lo = m & 3
		affineExpandAVX2(a, b, buf, lo, m)
	}
	for i := lo - 1; i >= 0; i-- {
		x := buf[i]
		buf[2*i] = x
		buf[2*i+1] = modAdd(modMul(a, x), b)
	}
}

func avx512PolyEvalBatch(coef, xs, out []uint64) {
	out = out[:len(xs)]
	if len(coef) == 0 {
		clear(out)
		return
	}
	n := len(xs) &^ 7
	if n > 0 {
		polyEvalBatchAVX512(coef, xs[:n], out[:n])
	}
	if n < len(xs) {
		scalarPolyEvalBatch(coef, xs[n:], out[n:])
	}
}

func avx512BucketSign2(h0, h1, g0, g1, m uint64, xs, buckets []uint64, signs []float64) {
	buckets = buckets[:len(xs)]
	signs = signs[:len(xs)]
	n := len(xs) &^ 7
	if n > 0 {
		bucketSign2AVX512(h0, h1, g0, g1, m, xs[:n], buckets[:n], signs[:n])
	}
	if n < len(xs) {
		scalarBucketSign2(h0, h1, g0, g1, m, xs[n:], buckets[n:], signs[n:])
	}
}

func avx512Bucket2(c0, c1, m uint64, xs, out []uint64) {
	out = out[:len(xs)]
	n := len(xs) &^ 7
	if n > 0 {
		bucket2AVX512(c0, c1, m, xs[:n], out[:n])
	}
	if n < len(xs) {
		scalarBucket2(c0, c1, m, xs[n:], out[n:])
	}
}

func avx512PolyEvalBatchIFMA(coef, xs, out []uint64) {
	out = out[:len(xs)]
	if len(coef) == 0 {
		clear(out)
		return
	}
	n := len(xs) &^ 7
	if n > 0 {
		polyEvalBatchIFMA(coef, xs[:n], out[:n])
	}
	if n < len(xs) {
		scalarPolyEvalBatch(coef, xs[n:], out[n:])
	}
}

func avx512BucketSign2IFMA(h0, h1, g0, g1, m uint64, xs, buckets []uint64, signs []float64) {
	buckets = buckets[:len(xs)]
	signs = signs[:len(xs)]
	n := len(xs) &^ 7
	if n > 0 {
		bucketSign2IFMA(h0, h1, g0, g1, m, xs[:n], buckets[:n], signs[:n])
	}
	if n < len(xs) {
		scalarBucketSign2(h0, h1, g0, g1, m, xs[n:], buckets[n:], signs[n:])
	}
}

func avx512Bucket2IFMA(c0, c1, m uint64, xs, out []uint64) {
	out = out[:len(xs)]
	n := len(xs) &^ 7
	if n > 0 {
		bucket2IFMA(c0, c1, m, xs[:n], out[:n])
	}
	if n < len(xs) {
		scalarBucket2(c0, c1, m, xs[n:], out[n:])
	}
}

// The amd64 scatter fold has two assembly flavors, picked by row width:
//
//   - NP (no prefetch): tight unrolled read-modify-write loop for rows up to
//     scatterNPMaxCells. Those rows live in L1/L2, where a prefetch hits
//     cache anyway and its address load + PREFETCHT0 are pure port pressure.
//   - PF (prefetched): issues PREFETCHT0 for the cell line scatterPFDist
//     elements ahead, for rows that spill L2 and bind on the line fetch.
//
// scatterPFMinBatch gates the PF loop: the assembly reads idx up to
// scatterPFDist+2 elements ahead of the fold cursor inside its main loop, so
// it needs the batch comfortably longer than the prefetch distance; tiny
// batches take the compiled reference, which is fine because they are
// call-overhead-bound anyway.
const (
	scatterPFDist     = 40 // must match the offsets in kernel_scatter_amd64.s
	scatterPFMinBatch = scatterPFDist + 8

	// scatterNPMaxCells = 512 KiB of float64: comfortably inside the >= 1 MiB
	// L2 of every amd64 target we tune for.
	scatterNPMaxCells = 64 * 1024
)

func amd64ScatterAddF64(cells []float64, idx []uint64, del []float64) {
	del = del[:len(idx)]
	switch {
	case len(cells) <= scatterNPMaxCells:
		if len(idx) < 4 { // NP main loop folds 4 at a time
			scalarScatterAddF64(cells, idx, del)
			return
		}
		scatterAddF64NP(cells, idx, del)
	case len(idx) < scatterPFMinBatch:
		scalarScatterAddF64(cells, idx, del)
	default:
		scatterAddF64PF(cells, idx, del)
	}
}

func amd64ScatterAddI64(cells []int64, idx []uint64, del []int64) {
	del = del[:len(idx)]
	switch {
	case len(cells) <= scatterNPMaxCells:
		if len(idx) < 4 {
			scalarScatterAddI64(cells, idx, del)
			return
		}
		scatterAddI64NP(cells, idx, del)
	case len(idx) < scatterPFMinBatch:
		scalarScatterAddI64(cells, idx, del)
	default:
		scatterAddI64PF(cells, idx, del)
	}
}

// avx512ScatterMinCells gates the vector scatter flavor by row width: on
// narrow (L1-resident) rows the scalar read-modify-write loop wins — the
// gather/scatter pair costs ~20 cycles per group regardless of locality —
// and narrow rows also raise the in-group duplicate-bucket rate that forces
// the ordered in-asm fallback.
const avx512ScatterMinCells = 1024

func avx512ScatterAddF64(cells []float64, idx []uint64, del []float64) {
	del = del[:len(idx)]
	n := len(idx) &^ 7
	if n == 0 || len(cells) < avx512ScatterMinCells {
		scalarScatterAddF64(cells, idx, del)
		return
	}
	scatterAddF64AVX512(cells, idx[:n], del[:n])
	if n < len(idx) {
		scalarScatterAddF64(cells, idx[n:], del[n:])
	}
}

func avx512ScatterAddI64(cells []int64, idx []uint64, del []int64) {
	del = del[:len(idx)]
	n := len(idx) &^ 7
	if n == 0 || len(cells) < avx512ScatterMinCells {
		scalarScatterAddI64(cells, idx, del)
		return
	}
	scatterAddI64AVX512(cells, idx[:n], del[:n])
	if n < len(idx) {
		scalarScatterAddI64(cells, idx[n:], del[n:])
	}
}
