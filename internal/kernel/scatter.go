package kernel

// Counter scatter: cells[idx[t]] += del[t] over a batch of uniformly random
// buckets — the count-sketch/count-min fold under every ingest path. Two
// strategies live here, with one hard contract shared by both: per-cell
// accumulation order is exactly batch order, so float64 results are
// bit-identical across every variant and path (pinned by the differential
// and property tests).
//
// Direct: one pass through the dispatch table. On amd64 the table entry is
// a bounds-check-free assembly loop, width-gated between a tight unrolled
// fold for cache-resident rows and a software-prefetching fold for rows
// that spill L2 (see kernel_scatter_amd64.s) — the prefetched flavor keeps
// the random cell-line fetch in flight before its add needs it.
//
// Blocked: stably radix-bin the batch's (bucket, delta) pairs into
// cache-sized bucket ranges first (counting sort, two sequential passes),
// then fold one L1-resident bin at a time. The counting sort is stable and
// bins cover disjoint cell ranges, so every cell still sees its additions
// in batch order — bit-identity is structural, not accidental. Measured on
// the benchmark gate hardware (Skylake-SP: 1 MiB L2, transparent huge
// pages), the blocked path loses to the prefetched direct fold at every
// (width, batch) point — uniform batches touch each line about once, so
// binning cannot reduce line fetches, prefetch already hides their latency,
// and THP mutes the TLB penalty binning would dodge. It therefore runs only
// on explicit opt-in (ScatterScratch.Blocked) as the escape hatch for
// cache-poor or non-THP targets, and the property tests keep it honest.

const (
	// scatterBlockShift sizes one bin of the blocked path: 2^13 cells =
	// 64 KiB of float64, half of L1's worth of cells plus batch scratch.
	scatterBlockShift = 13
	scatterBlockCells = 1 << scatterBlockShift

	// scatterMaxBins caps the bin count by coarsening the shift for very
	// wide rows: the permute pass keeps one open cache line per bin in each
	// scratch array, and past ~256 write streams those lines thrash L1 and
	// the permute costs more than the fold it feeds.
	scatterMaxBins = 256

	// scatterWideCells is the minimum row width for the blocked path: rows
	// narrower than four bins are cache-resident anyway.
	scatterWideCells = 4 * scatterBlockCells

	// scatterMinBatch is the minimum batch worth binning: below it the
	// per-bin fold calls and the prefix-sum walk dominate.
	scatterMinBatch = 256
)

// ScatterScratch holds the reusable binning state of one scatter call site.
// Steady-state ScatterAdd calls through a warm scratch allocate nothing.
// Not goroutine-safe — same contract as the sketch cells it feeds.
type ScatterScratch struct {
	// Blocked opts this call site into the cache-blocked fold for rows
	// wider than scatterWideCells. Off by default: on the gate hardware the
	// prefetched direct fold measures faster at every width (see the
	// package comment above), but the blocked path stays selectable for
	// machines where random scatters are TLB- or latency-bound.
	Blocked bool

	starts []int32 // bin boundaries: starts[b]..starts[b+1] after prefix sum
	cur    []int32 // per-bin write cursors during the permute pass
	idx    []uint64
	f64    []float64
	i64    []int64
}

// grow ensures capacity for an n-pair batch over nbins bins. The delta
// scratch grows lazily per element type in the typed entry points.
func (sc *ScatterScratch) grow(n, nbins int) {
	if cap(sc.starts) < nbins+1 {
		sc.starts = make([]int32, nbins+1)
		sc.cur = make([]int32, nbins)
	}
	if cap(sc.idx) < n {
		sc.idx = make([]uint64, n)
	}
}

// blockShift returns the bin shift for a row of the given width: the base
// L1-sized bin, coarsened until at most scatterMaxBins bins cover the row.
func blockShift(width int) uint {
	shift := uint(scatterBlockShift)
	for (width+(1<<shift)-1)>>shift > scatterMaxBins {
		shift++
	}
	return shift
}

// bin counts idx per bucket range and prefix-sums the counts, returning the
// bin boundary table (starts[b]..starts[b+1]) with the write cursors in
// sc.cur primed for the caller's stable permute pass.
func (sc *ScatterScratch) bin(idx []uint64, nbins int, shift uint) (starts []int32) {
	starts = sc.starts[:nbins+1]
	cur := sc.cur[:nbins]
	for i := range starts {
		starts[i] = 0
	}
	for _, b := range idx {
		starts[(b>>shift)+1]++
	}
	for i := 1; i <= nbins; i++ {
		starts[i] += starts[i-1]
	}
	copy(cur, starts[:nbins])
	return starts
}

// ScatterAddF64 folds cells[idx[t]] += del[t] for t = 0..len(idx)-1 in batch
// order. A nil scratch (or one without Blocked set, or a narrow row, or a
// batch too small to bin) takes the direct dispatched fold; the result is
// bit-identical either way. idx values must be < len(cells).
func ScatterAddF64(sc *ScatterScratch, cells []float64, idx []uint64, del []float64) {
	tab := active.Load()
	if sc == nil || !sc.Blocked || len(cells) < scatterWideCells || len(idx) < scatterMinBatch {
		tab.scatterAddF64(cells, idx, del)
		return
	}
	n := len(idx)
	del = del[:n]
	shift := blockShift(len(cells))
	nbins := (len(cells) + (1 << shift) - 1) >> shift
	sc.grow(n, nbins)
	if cap(sc.f64) < n {
		sc.f64 = make([]float64, n)
	}
	starts := sc.bin(idx, nbins, shift)
	cur, bIdx, bDel := sc.cur[:nbins], sc.idx[:n], sc.f64[:n]
	for t, b := range idx {
		p := cur[b>>shift]
		cur[b>>shift] = p + 1
		bIdx[p] = b
		bDel[p] = del[t]
	}
	for b := 0; b < nbins; b++ {
		lo, hi := starts[b], starts[b+1]
		if lo < hi {
			tab.scatterAddF64(cells, bIdx[lo:hi], bDel[lo:hi])
		}
	}
}

// ScatterAddI64 is the integer twin of ScatterAddF64 (the count-min fold);
// blocking and stability behave identically.
func ScatterAddI64(sc *ScatterScratch, cells []int64, idx []uint64, del []int64) {
	tab := active.Load()
	if sc == nil || !sc.Blocked || len(cells) < scatterWideCells || len(idx) < scatterMinBatch {
		tab.scatterAddI64(cells, idx, del)
		return
	}
	n := len(idx)
	del = del[:n]
	shift := blockShift(len(cells))
	nbins := (len(cells) + (1 << shift) - 1) >> shift
	sc.grow(n, nbins)
	if cap(sc.i64) < n {
		sc.i64 = make([]int64, n)
	}
	starts := sc.bin(idx, nbins, shift)
	cur, bIdx, bDel := sc.cur[:nbins], sc.idx[:n], sc.i64[:n]
	for t, b := range idx {
		p := cur[b>>shift]
		cur[b>>shift] = p + 1
		bIdx[p] = b
		bDel[p] = del[t]
	}
	for b := 0; b < nbins; b++ {
		lo, hi := starts[b], starts[b+1]
		if lo < hi {
			tab.scatterAddI64(cells, bIdx[lo:hi], bDel[lo:hi])
		}
	}
}
