package kernel

import (
	"math/rand"
	"testing"
)

// Per-primitive microbenchmarks, runnable per variant with
// REPRO_KERNEL=scalar|avx2|neon (the numbers land in BENCH_PR7.json).

func benchKeys(n int) []uint64 {
	r := rand.New(rand.NewSource(99))
	xs := make([]uint64, n)
	for i := range xs {
		xs[i] = r.Uint64()
	}
	return xs
}

func BenchmarkKernelBucketSign2(b *testing.B) {
	xs := benchKeys(1024)
	buckets := make([]uint64, len(xs))
	signs := make([]float64, len(xs))
	b.SetBytes(int64(len(xs)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		BucketSign2(12345, 678910, 111213, 141516, 4096, xs, buckets, signs)
	}
}

// BenchmarkKernelBucketSign2N4 is the dispatch fixed-cost canary: a 4-key
// batch is one vector iteration, so ns/op here is almost entirely call
// overhead. The AVX2 prologue once hid a legacy-SSE/AVX transition stall
// worth ~1µs per call on Xeon-class parts; this stays to catch any relapse.
func BenchmarkKernelBucketSign2N4(b *testing.B) {
	xs := []uint64{1, 2, 3, 4}
	buckets := make([]uint64, 4)
	signs := make([]float64, 4)
	for i := 0; i < b.N; i++ {
		BucketSign2(12345, 678910, 111213, 141516, 64, xs, buckets, signs)
	}
}

func BenchmarkKernelPolyEvalBatchK2(b *testing.B) {
	xs := benchKeys(1024)
	out := make([]uint64, len(xs))
	coef := []uint64{12345, 678910}
	b.SetBytes(int64(len(xs)))
	for i := 0; i < b.N; i++ {
		PolyEvalBatch(coef, xs, out)
	}
}

func BenchmarkKernelPolyEvalBatchK4(b *testing.B) {
	xs := benchKeys(1024)
	out := make([]uint64, len(xs))
	coef := []uint64{12345, 678910, 111213, 141516}
	b.SetBytes(int64(len(xs)))
	for i := 0; i < b.N; i++ {
		PolyEvalBatch(coef, xs, out)
	}
}

func BenchmarkKernelFDScan9(b *testing.B) {
	d := make([]uint64, 9)
	copy(d, benchKeys(9))
	for i := range d {
		d[i] %= modulus
	}
	out := make([]uint64, 4096)
	b.SetBytes(int64(len(out)))
	for i := 0; i < b.N; i++ {
		FDScan(d, out)
	}
}

func BenchmarkKernelSyndromeAdd4(b *testing.B) {
	synd := make([]uint64, 16)
	d := [4]uint64{1, 2, 3, 4}
	a := [4]uint64{5, 6, 7, 8}
	for i := 0; i < b.N; i++ {
		SyndromeAdd4(synd, d, a)
	}
}

func BenchmarkKernelAffineExpand(b *testing.B) {
	buf := make([]uint64, 128)
	buf[0] = 123456789
	for i := 0; i < b.N; i++ {
		// Expand one value to 128 (seven doubling levels).
		for m := 1; m < 128; m *= 2 {
			AffineExpand(987654321, 1122334455, buf[:2*m], m)
		}
	}
}
