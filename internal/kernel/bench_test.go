package kernel

import (
	"math/rand"
	"testing"
)

// Per-primitive microbenchmarks, runnable per variant with
// REPRO_KERNEL=scalar|avx2|avx512|neon.

func benchKeys(n int) []uint64 {
	r := rand.New(rand.NewSource(99))
	xs := make([]uint64, n)
	for i := range xs {
		xs[i] = r.Uint64()
	}
	return xs
}

func BenchmarkKernelBucketSign2(b *testing.B) {
	xs := benchKeys(1024)
	buckets := make([]uint64, len(xs))
	signs := make([]float64, len(xs))
	b.SetBytes(int64(len(xs)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		BucketSign2(12345, 678910, 111213, 141516, 4096, xs, buckets, signs)
	}
}

// BenchmarkKernelBucketSign2N4 is the dispatch fixed-cost canary: a 4-key
// batch is one vector iteration, so ns/op here is almost entirely call
// overhead. The AVX2 prologue once hid a legacy-SSE/AVX transition stall
// worth ~1µs per call on Xeon-class parts; this stays to catch any relapse.
func BenchmarkKernelBucketSign2N4(b *testing.B) {
	xs := []uint64{1, 2, 3, 4}
	buckets := make([]uint64, 4)
	signs := make([]float64, 4)
	for i := 0; i < b.N; i++ {
		BucketSign2(12345, 678910, 111213, 141516, 64, xs, buckets, signs)
	}
}

func BenchmarkKernelPolyEvalBatchK2(b *testing.B) {
	xs := benchKeys(1024)
	out := make([]uint64, len(xs))
	coef := []uint64{12345, 678910}
	b.SetBytes(int64(len(xs)))
	for i := 0; i < b.N; i++ {
		PolyEvalBatch(coef, xs, out)
	}
}

func BenchmarkKernelPolyEvalBatchK4(b *testing.B) {
	xs := benchKeys(1024)
	out := make([]uint64, len(xs))
	coef := []uint64{12345, 678910, 111213, 141516}
	b.SetBytes(int64(len(xs)))
	for i := 0; i < b.N; i++ {
		PolyEvalBatch(coef, xs, out)
	}
}

func BenchmarkKernelFDScan9(b *testing.B) {
	d := make([]uint64, 9)
	copy(d, benchKeys(9))
	for i := range d {
		d[i] %= modulus
	}
	out := make([]uint64, 4096)
	b.SetBytes(int64(len(out)))
	for i := 0; i < b.N; i++ {
		FDScan(d, out)
	}
}

func BenchmarkKernelSyndromeAdd4(b *testing.B) {
	synd := make([]uint64, 16)
	d := [4]uint64{1, 2, 3, 4}
	a := [4]uint64{5, 6, 7, 8}
	for i := 0; i < b.N; i++ {
		SyndromeAdd4(synd, d, a)
	}
}

func BenchmarkKernelAffineExpand(b *testing.B) {
	buf := make([]uint64, 128)
	buf[0] = 123456789
	for i := 0; i < b.N; i++ {
		// Expand one value to 128 (seven doubling levels).
		for m := 1; m < 128; m *= 2 {
			AffineExpand(987654321, 1122334455, buf[:2*m], m)
		}
	}
}

// benchScatter measures cells[idx] += del over a batch of uniform buckets;
// width picks the cache regime, blocked opts into the binned fold.
func benchScatter(b *testing.B, width, batch int, blocked bool) {
	r := rand.New(rand.NewSource(77))
	cells := make([]float64, width)
	idx := make([]uint64, batch)
	del := make([]float64, batch)
	for i := range idx {
		idx[i] = uint64(r.Intn(width))
		del[i] = float64(2*(i&1) - 1)
	}
	sc := &ScatterScratch{Blocked: blocked}
	b.SetBytes(int64(batch))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ScatterAddF64(sc, cells, idx, del)
	}
}

// Narrow = L1-resident row; Wide/Huge = past-L2 regimes. The *Blocked pairs
// keep the opt-in binned path honest against the direct prefetched fold.
func BenchmarkKernelScatterAddF64Narrow(b *testing.B)      { benchScatter(b, 1<<10, 8192, false) }
func BenchmarkKernelScatterAddF64Wide(b *testing.B)        { benchScatter(b, 1<<17, 8192, false) }
func BenchmarkKernelScatterAddF64WideBlocked(b *testing.B) { benchScatter(b, 1<<17, 8192, true) }
func BenchmarkKernelScatterAddF64Huge(b *testing.B)        { benchScatter(b, 1<<21, 8192, false) }
func BenchmarkKernelScatterAddF64HugeBlocked(b *testing.B) { benchScatter(b, 1<<21, 8192, true) }
