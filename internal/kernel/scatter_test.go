package kernel

import (
	"math"
	"math/rand"
	"testing"
)

// randDeltas returns float64 deltas with wildly mixed magnitudes and signs,
// so any reordering of per-cell additions changes the rounded result — the
// sharpest probe for the stability contract.
func randDeltas(r *rand.Rand, n int) []float64 {
	del := make([]float64, n)
	for i := range del {
		del[i] = r.NormFloat64() * math.Ldexp(1, r.Intn(80)-40)
	}
	return del
}

// randBuckets returns n indices < width, skewed so that small widths force
// frequent in-group duplicates (the AVX-512 conflict path) and large widths
// exercise the spread-out gather/scatter path.
func randBuckets(r *rand.Rand, n, width int) []uint64 {
	idx := make([]uint64, n)
	for i := range idx {
		if r.Intn(4) == 0 {
			idx[i] = uint64(r.Intn(1 + width/64)) // hot head: duplicates
		} else {
			idx[i] = uint64(r.Intn(width))
		}
	}
	return idx
}

// TestScatterAddDifferential pins every table's raw scatter fold against the
// scalar reference, bit for bit, across widths straddling the AVX-512 width
// gate and batch shapes straddling the 8-lane groups.
func TestScatterAddDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(8001))
	for _, vt := range vectorTables() {
		// 65536/65537 straddle the amd64 NP/PF width gate (scatterNPMaxCells).
		for _, width := range []int{1, 7, 1023, 1024, 4096, 65536, 65537, 1 << 17} {
			for _, n := range []int{0, 1, 7, 8, 9, 16, 255, 1024} {
				idx := randBuckets(r, n, width)
				del := randDeltas(r, n)
				want := make([]float64, width)
				got := make([]float64, width)
				for i := range want {
					want[i] = r.NormFloat64()
					got[i] = want[i]
				}
				scalarTable.scatterAddF64(want, idx, del)
				vt.scatterAddF64(got, idx, del)
				for i := range want {
					if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
						t.Fatalf("%s scatterAddF64 width=%d n=%d: cells[%d] = %x, scalar %x",
							vt.name, width, n, i, math.Float64bits(got[i]), math.Float64bits(want[i]))
					}
				}

				deli := make([]int64, n)
				for i := range deli {
					deli[i] = int64(r.Uint64())
				}
				wantI := make([]int64, width)
				gotI := make([]int64, width)
				for i := range wantI {
					wantI[i] = int64(r.Uint64())
					gotI[i] = wantI[i]
				}
				scalarTable.scatterAddI64(wantI, idx, deli)
				vt.scatterAddI64(gotI, idx, deli)
				for i := range wantI {
					if wantI[i] != gotI[i] {
						t.Fatalf("%s scatterAddI64 width=%d n=%d: cells[%d] = %d, scalar %d",
							vt.name, width, n, i, gotI[i], wantI[i])
					}
				}
			}
		}
	}
}

// TestScatterAddBlockedProperty is the stability property test: the blocked
// ScatterAdd entry points must be bit-identical to the direct scalar fold
// for every variant, across random widths and batch sizes either side of
// the blocking thresholds (including the exact boundary).
func TestScatterAddBlockedProperty(t *testing.T) {
	restoreSelection(t)
	r := rand.New(rand.NewSource(8002))
	widths := []int{
		scatterWideCells - 1, scatterWideCells, scatterWideCells + 1,
		scatterBlockCells, 3 * scatterBlockCells,
		scatterWideCells + scatterBlockCells/2, 8 * scatterBlockCells,
		// Wide enough that blockShift coarsens past scatterMaxBins bins.
		(scatterMaxBins + 3) * scatterBlockCells,
	}
	for i := 0; i < 8; i++ {
		widths = append(widths, 1+r.Intn(8*scatterBlockCells))
	}
	batches := []int{scatterMinBatch - 1, scatterMinBatch, scatterMinBatch + 1, 1, 13, 8192}
	sc := ScatterScratch{Blocked: true}
	for _, name := range Variants() {
		if err := Select(name); err != nil {
			t.Fatalf("Select(%q): %v", name, err)
		}
		for _, width := range widths {
			for _, n := range batches {
				idx := randBuckets(r, n, width)
				del := randDeltas(r, n)
				want := make([]float64, width)
				got := make([]float64, width)
				scalarScatterAddF64(want, idx, del)
				ScatterAddF64(&sc, got, idx, del)
				for i := range want {
					if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
						t.Fatalf("%s blocked ScatterAddF64 width=%d n=%d: cells[%d] = %x, want %x",
							name, width, n, i, math.Float64bits(got[i]), math.Float64bits(want[i]))
					}
				}

				deli := make([]int64, n)
				for i := range deli {
					deli[i] = int64(r.Uint64())
				}
				wantI := make([]int64, width)
				gotI := make([]int64, width)
				scalarScatterAddI64(wantI, idx, deli)
				ScatterAddI64(&sc, gotI, idx, deli)
				for i := range wantI {
					if wantI[i] != gotI[i] {
						t.Fatalf("%s blocked ScatterAddI64 width=%d n=%d: cells[%d] = %d, want %d",
							name, width, n, i, gotI[i], wantI[i])
					}
				}
			}
		}
	}
}

// TestScatterAddNilScratch checks the documented nil-scratch path:
// a nil scratch must still fold correctly (direct, unblocked).
func TestScatterAddNilScratch(t *testing.T) {
	r := rand.New(rand.NewSource(8003))
	width := scatterWideCells + 5
	idx := randBuckets(r, 1024, width)
	del := randDeltas(r, 1024)
	want := make([]float64, width)
	got := make([]float64, width)
	scalarScatterAddF64(want, idx, del)
	ScatterAddF64(nil, got, idx, del)
	for i := range want {
		if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
			t.Fatalf("nil-scratch ScatterAddF64: cells[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	wantI := make([]int64, width)
	gotI := make([]int64, width)
	deli := make([]int64, 1024)
	for i := range deli {
		deli[i] = int64(r.Uint64())
	}
	scalarScatterAddI64(wantI, idx, deli)
	ScatterAddI64(nil, gotI, idx, deli)
	for i := range wantI {
		if wantI[i] != gotI[i] {
			t.Fatalf("nil-scratch ScatterAddI64: cells[%d] = %d, want %d", i, gotI[i], wantI[i])
		}
	}
}

// TestScatterScratchZeroAlloc: a warm scratch makes blocked scatters
// allocation-free in steady state.
func TestScatterScratchZeroAlloc(t *testing.T) {
	r := rand.New(rand.NewSource(8004))
	width := 8 * scatterBlockCells
	cells := make([]float64, width)
	cellsI := make([]int64, width)
	idx := randBuckets(r, 4096, width)
	del := randDeltas(r, 4096)
	deli := make([]int64, 4096)
	sc := ScatterScratch{Blocked: true}
	ScatterAddF64(&sc, cells, idx, del) // warm
	ScatterAddI64(&sc, cellsI, idx, deli)
	if n := testing.AllocsPerRun(10, func() {
		ScatterAddF64(&sc, cells, idx, del)
		ScatterAddI64(&sc, cellsI, idx, deli)
	}); n != 0 {
		t.Fatalf("blocked ScatterAdd with warm scratch allocates %v per run, want 0", n)
	}
}
