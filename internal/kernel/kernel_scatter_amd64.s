// Counter-scatter folds (baseline amd64, SSE2 only), two flavors per type:
//
// cells[idx[t]] += del[t], strictly in batch order — bit-identical to the
// pure-Go reference by construction. Both flavors drop the compiled loop's
// bounds checks; they differ on prefetch:
//
//   - *PF issues PREFETCHT0 for the cell line scatterPFDist elements ahead,
//     so on rows that spill L2 the random line is (mostly) in flight by the
//     time its add retires.
//   - *NP skips prefetching for cache-resident rows, where the prefetch's
//     address load + PREFETCHT0 are pure load-port overhead, and unrolls
//     deeper instead.
//
// The width gate picking between them lives in cpu_amd64.go; the prefetch
// distance here must match scatterPFDist there (the wrappers require
// len(idx) > that distance before calling into a *PF routine).

#include "textflag.h"

// func scatterAddF64PF(cells []float64, idx []uint64, del []float64)
// Requires len(idx) >= scatterPFMinBatch (see cpu_amd64.go).
TEXT ·scatterAddF64PF(SB), NOSPLIT, $0-72
	MOVQ cells_base+0(FP), SI
	MOVQ idx_base+24(FP), DI
	MOVQ idx_len+32(FP), CX
	MOVQ del_base+48(FP), R8
	MOVQ CX, R9
	SUBQ $42, R9                 // main-loop bound: reads idx[t+41] at most
	XORQ R10, R10

mainloop:
	MOVQ       320(DI)(R10*8), R12
	PREFETCHT0 (SI)(R12*8)
	MOVQ       328(DI)(R10*8), R12
	PREFETCHT0 (SI)(R12*8)
	MOVQ       (DI)(R10*8), R11
	MOVSD      (SI)(R11*8), X0
	ADDSD      (R8)(R10*8), X0
	MOVSD      X0, (SI)(R11*8)
	MOVQ       8(DI)(R10*8), R11
	MOVSD      (SI)(R11*8), X1
	ADDSD      8(R8)(R10*8), X1
	MOVSD      X1, (SI)(R11*8)
	ADDQ       $2, R10
	CMPQ       R10, R9
	JLT        mainloop

tailloop:
	MOVQ  (DI)(R10*8), R11
	MOVSD (SI)(R11*8), X0
	ADDSD (R8)(R10*8), X0
	MOVSD X0, (SI)(R11*8)
	INCQ  R10
	CMPQ  R10, CX
	JLT   tailloop
	RET

// func scatterAddI64PF(cells []int64, idx []uint64, del []int64)
// Integer twin of scatterAddF64PF, same contract.
TEXT ·scatterAddI64PF(SB), NOSPLIT, $0-72
	MOVQ cells_base+0(FP), SI
	MOVQ idx_base+24(FP), DI
	MOVQ idx_len+32(FP), CX
	MOVQ del_base+48(FP), R8
	MOVQ CX, R9
	SUBQ $42, R9                 // main-loop bound: reads idx[t+41] at most
	XORQ R10, R10

mainloop:
	MOVQ       320(DI)(R10*8), R12
	PREFETCHT0 (SI)(R12*8)
	MOVQ       328(DI)(R10*8), R12
	PREFETCHT0 (SI)(R12*8)
	MOVQ       (DI)(R10*8), R11
	MOVQ       (R8)(R10*8), R13
	ADDQ       R13, (SI)(R11*8)
	MOVQ       8(DI)(R10*8), R11
	MOVQ       8(R8)(R10*8), R13
	ADDQ       R13, (SI)(R11*8)
	ADDQ       $2, R10
	CMPQ       R10, R9
	JLT        mainloop

tailloop:
	MOVQ (DI)(R10*8), R11
	MOVQ (R8)(R10*8), R13
	ADDQ R13, (SI)(R11*8)
	INCQ R10
	CMPQ R10, CX
	JLT  tailloop
	RET

// func scatterAddF64NP(cells []float64, idx []uint64, del []float64)
// Tight no-prefetch fold for cache-resident rows: same in-order contract,
// no bounds checks, unrolled x4. Requires len(idx) >= 4.
TEXT ·scatterAddF64NP(SB), NOSPLIT, $0-72
	MOVQ cells_base+0(FP), SI
	MOVQ idx_base+24(FP), DI
	MOVQ idx_len+32(FP), CX
	MOVQ del_base+48(FP), R8
	MOVQ CX, R9
	ANDQ $-4, R9
	XORQ R10, R10

mainloop:
	MOVQ  (DI)(R10*8), R11
	MOVSD (SI)(R11*8), X0
	ADDSD (R8)(R10*8), X0
	MOVSD X0, (SI)(R11*8)
	MOVQ  8(DI)(R10*8), R11
	MOVSD (SI)(R11*8), X1
	ADDSD 8(R8)(R10*8), X1
	MOVSD X1, (SI)(R11*8)
	MOVQ  16(DI)(R10*8), R11
	MOVSD (SI)(R11*8), X2
	ADDSD 16(R8)(R10*8), X2
	MOVSD X2, (SI)(R11*8)
	MOVQ  24(DI)(R10*8), R11
	MOVSD (SI)(R11*8), X3
	ADDSD 24(R8)(R10*8), X3
	MOVSD X3, (SI)(R11*8)
	ADDQ  $4, R10
	CMPQ  R10, R9
	JLT   mainloop
	CMPQ  R10, CX
	JGE   done

tailloop:
	MOVQ  (DI)(R10*8), R11
	MOVSD (SI)(R11*8), X0
	ADDSD (R8)(R10*8), X0
	MOVSD X0, (SI)(R11*8)
	INCQ  R10
	CMPQ  R10, CX
	JLT   tailloop

done:
	RET

// func scatterAddI64NP(cells []int64, idx []uint64, del []int64)
// Integer twin of scatterAddF64NP, same contract.
TEXT ·scatterAddI64NP(SB), NOSPLIT, $0-72
	MOVQ cells_base+0(FP), SI
	MOVQ idx_base+24(FP), DI
	MOVQ idx_len+32(FP), CX
	MOVQ del_base+48(FP), R8
	MOVQ CX, R9
	ANDQ $-4, R9
	XORQ R10, R10

mainloop:
	MOVQ (DI)(R10*8), R11
	MOVQ (R8)(R10*8), R13
	ADDQ R13, (SI)(R11*8)
	MOVQ 8(DI)(R10*8), R11
	MOVQ 8(R8)(R10*8), R13
	ADDQ R13, (SI)(R11*8)
	MOVQ 16(DI)(R10*8), R11
	MOVQ 16(R8)(R10*8), R13
	ADDQ R13, (SI)(R11*8)
	MOVQ 24(DI)(R10*8), R11
	MOVQ 24(R8)(R10*8), R13
	ADDQ R13, (SI)(R11*8)
	ADDQ $4, R10
	CMPQ R10, R9
	JLT  mainloop
	CMPQ R10, CX
	JGE  done

tailloop:
	MOVQ (DI)(R10*8), R11
	MOVQ (R8)(R10*8), R13
	ADDQ R13, (SI)(R11*8)
	INCQ R10
	CMPQ R10, CX
	JLT  tailloop

done:
	RET
