package kernel

import "math/bits"

// Scalar reference implementations: the bit-identity baseline every vector
// variant is pinned against. The Mersenne-prime arithmetic restates
// internal/field (kernel sits below field in the import graph); both work on
// canonical representatives of GF(2^61-1) in [0, modulus), so equal values
// always have equal bits and "bit-identical" reduces to exact mod-p algebra.

// modulus is the field characteristic 2^61 - 1 (= field.Modulus).
const modulus uint64 = (1 << 61) - 1

var scalarTable = table{
	name:          Scalar,
	polyEvalBatch: scalarPolyEvalBatch,
	bucketSign2:   scalarBucketSign2,
	bucket2:       scalarBucket2,
	fdScan:        scalarFDScan,
	syndromeAdd4:  scalarSyndromeAdd4,
	affineExpand:  scalarAffineExpand,
	scatterAddF64: scalarScatterAddF64,
	scatterAddI64: scalarScatterAddI64,
}

// reduce maps any uint64 into canonical form (two Mersenne folds).
func reduce(x uint64) uint64 {
	x = (x & modulus) + (x >> 61)
	if x >= modulus {
		x -= modulus
	}
	return x
}

// modAdd adds two canonical elements.
func modAdd(a, b uint64) uint64 {
	s := a + b
	if s >= modulus {
		s -= modulus
	}
	return s
}

// modMul multiplies two canonical elements via the 128-bit product and
// 2^64 ≡ 8 (mod 2^61-1).
func modMul(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	return reduce((lo & modulus) + (lo >> 61) + hi<<3)
}

// lemire maps a canonical element v to [0, m): floor(v·m / 2^61) as the high
// word of the 128-bit product (v<<3)·m — identical to hash.Bucket.
func lemire(v, m uint64) uint64 {
	hi, _ := bits.Mul64(v<<3, m)
	return hi
}

// signFloat maps a canonical element to ±1.0 from its low bit, branch-free —
// identical to hash.signFloat.
func signFloat(v uint64) float64 {
	return float64(int64(v&1)<<1 - 1)
}

func scalarPolyEvalBatch(coef, xs, out []uint64) {
	out = out[:len(xs)]
	switch len(coef) {
	case 0:
		for t := range out {
			out[t] = 0
		}
	case 2:
		c0, c1 := coef[0], coef[1]
		for t, x := range xs {
			out[t] = modAdd(modMul(c1, reduce(x)), c0)
		}
	case 4:
		c0, c1, c2, c3 := coef[0], coef[1], coef[2], coef[3]
		for t, x := range xs {
			xe := reduce(x)
			acc := modAdd(modMul(c3, xe), c2)
			acc = modAdd(modMul(acc, xe), c1)
			out[t] = modAdd(modMul(acc, xe), c0)
		}
	default:
		for t, x := range xs {
			xe := reduce(x)
			var acc uint64
			for i := len(coef) - 1; i >= 0; i-- {
				acc = modAdd(modMul(acc, xe), coef[i])
			}
			out[t] = acc
		}
	}
}

func scalarBucketSign2(h0, h1, g0, g1, m uint64, xs, buckets []uint64, signs []float64) {
	buckets = buckets[:len(xs)]
	signs = signs[:len(xs)]
	for t, x := range xs {
		xe := reduce(x)
		buckets[t] = lemire(modAdd(modMul(h1, xe), h0), m)
		signs[t] = signFloat(modAdd(modMul(g1, xe), g0))
	}
}

func scalarBucket2(c0, c1, m uint64, xs, out []uint64) {
	out = out[:len(xs)]
	for t, x := range xs {
		out[t] = lemire(modAdd(modMul(c1, reduce(x)), c0), m)
	}
}

func scalarFDScan(d, out []uint64) {
	// One step: emit d[0], then d[k] += d[k+1] left to right — each d[k]
	// reads the not-yet-updated d[k+1], exactly field.FDStepper.Next.
	for t := range out {
		out[t] = d[0]
		for k := 0; k+1 < len(d); k++ {
			d[k] = modAdd(d[k], d[k+1])
		}
	}
}

func scalarSyndromeAdd4(synd []uint64, d, a [4]uint64) {
	d0, d1, d2, d3 := d[0], d[1], d[2], d[3]
	a0, a1, a2, a3 := a[0], a[1], a[2], a[3]
	p0, p1, p2, p3 := uint64(1), uint64(1), uint64(1), uint64(1)
	for j := range synd {
		s := synd[j]
		s = modAdd(s, modMul(d0, p0))
		s = modAdd(s, modMul(d1, p1))
		s = modAdd(s, modMul(d2, p2))
		s = modAdd(s, modMul(d3, p3))
		synd[j] = s
		p0 = modMul(p0, a0)
		p1 = modMul(p1, a1)
		p2 = modMul(p2, a2)
		p3 = modMul(p3, a3)
	}
}

func scalarScatterAddF64(cells []float64, idx []uint64, del []float64) {
	del = del[:len(idx)]
	for t, b := range idx {
		cells[b] += del[t]
	}
}

func scalarScatterAddI64(cells []int64, idx []uint64, del []int64) {
	del = del[:len(idx)]
	for t, b := range idx {
		cells[b] += del[t]
	}
}

func scalarAffineExpand(a, b uint64, buf []uint64, m int) {
	// Descending order makes the doubling safe in place: writes at 2i and
	// 2i+1 never land on a not-yet-read buf[k], k < i.
	for i := m - 1; i >= 0; i-- {
		x := buf[i]
		buf[2*i] = x
		buf[2*i+1] = modAdd(modMul(a, x), b)
	}
}
