package kernel

import (
	"math/rand"
	"os"
	"testing"
)

// vectorTables returns every non-scalar table this CPU can execute: the
// selectable variants (available) plus the test-only alternates (flavors
// detection skipped in favor of a better one, like the VPMULUDQ AVX-512
// modmul on an IFMA machine). All of them get pinned against scalar.
func vectorTables() []*table {
	return append(append([]*table{}, available...), testAltTables...)
}

// restoreSelection re-applies the process's startup kernel selection after a
// test has called Select or initFromEnv.
func restoreSelection(t *testing.T) {
	t.Cleanup(func() {
		if err := initFromEnv(os.Getenv(EnvVar)); err != nil {
			t.Fatalf("restoring kernel selection: %v", err)
		}
	})
}

func TestSelectUnknownVariant(t *testing.T) {
	restoreSelection(t)
	before := Active()
	if err := Select("bogus"); err == nil {
		t.Fatal("Select(\"bogus\") succeeded, want error")
	}
	if got := Active(); got != before {
		t.Fatalf("failed Select changed active variant: %q -> %q", before, got)
	}
}

func TestSelectUnavailableFallsBackToScalar(t *testing.T) {
	restoreSelection(t)
	available := map[string]bool{}
	for _, v := range Variants() {
		available[v] = true
	}
	for _, name := range []string{AVX2, AVX512, NEON} {
		if available[name] {
			continue
		}
		if err := Select(name); err != nil {
			t.Fatalf("Select(%q) on a machine without it: %v, want clean scalar fallback", name, err)
		}
		if got := Active(); got != Scalar {
			t.Fatalf("Select(%q) fallback selected %q, want %q", name, got, Scalar)
		}
	}
}

func TestSelectRoundTrip(t *testing.T) {
	restoreSelection(t)
	for _, name := range Variants() {
		if err := Select(name); err != nil {
			t.Fatalf("Select(%q): %v", name, err)
		}
		if got := Active(); got != name {
			t.Fatalf("after Select(%q), Active() = %q", name, got)
		}
	}
}

func TestInitFromEnv(t *testing.T) {
	restoreSelection(t)
	if err := initFromEnv("bogus"); err == nil {
		t.Fatal("initFromEnv(\"bogus\") succeeded, want error")
	}
	if err := initFromEnv(Scalar); err != nil {
		t.Fatalf("initFromEnv(scalar): %v", err)
	}
	if got := Active(); got != Scalar {
		t.Fatalf("after initFromEnv(scalar), Active() = %q", got)
	}
	if err := initFromEnv(""); err != nil {
		t.Fatalf("initFromEnv(\"\"): %v", err)
	}
	want := Scalar
	if len(available) > 0 {
		want = available[len(available)-1].name
	}
	if got := Active(); got != want {
		t.Fatalf("initFromEnv(\"\") selected %q, want best available %q", got, want)
	}
}

func TestVariantsListsScalarFirst(t *testing.T) {
	vs := Variants()
	if len(vs) == 0 || vs[0] != Scalar {
		t.Fatalf("Variants() = %v, want scalar first", vs)
	}
}

// randCanonical returns a uniform canonical field element.
func randCanonical(r *rand.Rand) uint64 { return r.Uint64() % modulus }

// randPoints mixes raw uint64 points (the hash path feeds unreduced keys)
// with boundary values around the modulus.
func randPoints(r *rand.Rand, n int) []uint64 {
	xs := make([]uint64, n)
	for i := range xs {
		switch r.Intn(8) {
		case 0:
			xs[i] = 0
		case 1:
			xs[i] = modulus - 1
		case 2:
			xs[i] = modulus
		case 3:
			xs[i] = ^uint64(0)
		default:
			xs[i] = r.Uint64()
		}
	}
	return xs
}

func TestPolyEvalBatchDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(7001))
	for _, vt := range vectorTables() {
		for _, k := range []int{0, 1, 2, 3, 4, 5, 7, 12} {
			for _, n := range []int{0, 1, 3, 4, 5, 8, 31, 64} {
				coef := make([]uint64, k)
				for i := range coef {
					coef[i] = randCanonical(r)
				}
				xs := randPoints(r, n)
				want := make([]uint64, n)
				got := make([]uint64, n)
				scalarTable.polyEvalBatch(coef, xs, want)
				vt.polyEvalBatch(coef, xs, got)
				for i := range want {
					if want[i] != got[i] {
						t.Fatalf("%s polyEvalBatch k=%d n=%d: out[%d] = %#x, scalar %#x (x=%#x)",
							vt.name, k, n, i, got[i], want[i], xs[i])
					}
				}
			}
		}
	}
}

func TestBucketSign2Differential(t *testing.T) {
	r := rand.New(rand.NewSource(7002))
	for _, vt := range vectorTables() {
		for _, m := range []uint64{1, 2, 3, 64, 4096, 123457, 1 << 40} {
			for _, n := range []int{0, 1, 4, 5, 37, 128} {
				h0, h1 := randCanonical(r), randCanonical(r)
				g0, g1 := randCanonical(r), randCanonical(r)
				xs := randPoints(r, n)
				wantB := make([]uint64, n)
				gotB := make([]uint64, n)
				wantS := make([]float64, n)
				gotS := make([]float64, n)
				scalarTable.bucketSign2(h0, h1, g0, g1, m, xs, wantB, wantS)
				vt.bucketSign2(h0, h1, g0, g1, m, xs, gotB, gotS)
				for i := range wantB {
					if wantB[i] != gotB[i] || wantS[i] != gotS[i] {
						t.Fatalf("%s bucketSign2 m=%d n=%d: (%d,%v), scalar (%d,%v) at i=%d x=%#x",
							vt.name, m, n, gotB[i], gotS[i], wantB[i], wantS[i], i, xs[i])
					}
				}
			}
		}
	}
}

func TestBucket2Differential(t *testing.T) {
	r := rand.New(rand.NewSource(7003))
	for _, vt := range vectorTables() {
		for _, m := range []uint64{1, 3, 64, 4096, 1 << 50} {
			for _, n := range []int{0, 1, 4, 5, 37, 128} {
				c0, c1 := randCanonical(r), randCanonical(r)
				xs := randPoints(r, n)
				want := make([]uint64, n)
				got := make([]uint64, n)
				scalarTable.bucket2(c0, c1, m, xs, want)
				vt.bucket2(c0, c1, m, xs, got)
				for i := range want {
					if want[i] != got[i] {
						t.Fatalf("%s bucket2 m=%d n=%d: out[%d] = %d, scalar %d (x=%#x)",
							vt.name, m, n, i, got[i], want[i], xs[i])
					}
				}
			}
		}
	}
}

func TestFDScanDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(7004))
	for _, vt := range vectorTables() {
		for _, dn := range []int{1, 2, 3, 4, 5, 6, 9, 11, 12, 13, 17, 33} {
			for _, steps := range []int{0, 1, 2, 7, 50} {
				d := make([]uint64, dn)
				for i := range d {
					d[i] = randCanonical(r)
				}
				dRef := append([]uint64(nil), d...)
				want := make([]uint64, steps)
				got := make([]uint64, steps)
				scalarTable.fdScan(dRef, want)
				vt.fdScan(d, got)
				for i := range want {
					if want[i] != got[i] {
						t.Fatalf("%s fdScan |d|=%d steps=%d: out[%d] = %#x, scalar %#x",
							vt.name, dn, steps, i, got[i], want[i])
					}
				}
				for i := range d {
					if d[i] != dRef[i] {
						t.Fatalf("%s fdScan |d|=%d steps=%d: d[%d] = %#x, scalar %#x",
							vt.name, dn, steps, i, d[i], dRef[i])
					}
				}
			}
		}
	}
}

func TestSyndromeAdd4Differential(t *testing.T) {
	r := rand.New(rand.NewSource(7005))
	for _, vt := range vectorTables() {
		for _, sn := range []int{0, 1, 2, 3, 4, 8, 17} {
			var d, a [4]uint64
			for i := range d {
				d[i] = randCanonical(r)
				a[i] = randCanonical(r)
			}
			want := make([]uint64, sn)
			for i := range want {
				want[i] = randCanonical(r)
			}
			got := append([]uint64(nil), want...)
			scalarTable.syndromeAdd4(want, d, a)
			vt.syndromeAdd4(got, d, a)
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("%s syndromeAdd4 |synd|=%d: synd[%d] = %#x, scalar %#x",
						vt.name, sn, i, got[i], want[i])
				}
			}
		}
	}
}

func TestAffineExpandDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(7006))
	for _, vt := range vectorTables() {
		for _, m := range []int{1, 2, 3, 4, 5, 6, 8, 16, 33} {
			a, b := randCanonical(r), randCanonical(r)
			buf := make([]uint64, 2*m)
			for i := 0; i < m; i++ {
				buf[i] = randCanonical(r)
			}
			ref := append([]uint64(nil), buf...)
			scalarTable.affineExpand(a, b, ref, m)
			vt.affineExpand(a, b, buf, m)
			for i := range ref {
				if ref[i] != buf[i] {
					t.Fatalf("%s affineExpand m=%d: buf[%d] = %#x, scalar %#x",
						vt.name, m, i, buf[i], ref[i])
				}
			}
		}
	}
}

// TestDispatchEntryPoints drives every exported wrapper under each selectable
// variant, checking the dispatch plumbing end to end.
func TestDispatchEntryPoints(t *testing.T) {
	restoreSelection(t)
	r := rand.New(rand.NewSource(7007))
	xs := randPoints(r, 21)
	coef := []uint64{randCanonical(r), randCanonical(r), randCanonical(r)}
	var results [][]uint64
	for _, name := range Variants() {
		if err := Select(name); err != nil {
			t.Fatalf("Select(%q): %v", name, err)
		}
		out := make([]uint64, len(xs))
		PolyEvalBatch(coef, xs, out)
		buckets := make([]uint64, len(xs))
		signs := make([]float64, len(xs))
		BucketSign2(coef[0], coef[1], coef[2], coef[0], 97, xs, buckets, signs)
		Bucket2(coef[0], coef[1], 97, xs, out[:0])
		d := append([]uint64(nil), coef...)
		scan := make([]uint64, 5)
		FDScan(d, scan)
		var du, au [4]uint64
		for i := range du {
			du[i], au[i] = randCanonical(rand.New(rand.NewSource(int64(i)))), uint64(i+2)
		}
		synd := make([]uint64, 6)
		SyndromeAdd4(synd, du, au)
		buf := make([]uint64, 8)
		copy(buf, coef)
		buf[3] = 1
		AffineExpand(coef[0], coef[1], buf, 4)
		flat := append(append(append(append([]uint64(nil), out...), buckets...), scan...), synd...)
		flat = append(flat, buf...)
		results = append(results, flat)
	}
	for i := 1; i < len(results); i++ {
		for j := range results[0] {
			if results[i][j] != results[0][j] {
				t.Fatalf("variant %q disagrees with %q at flat index %d",
					Variants()[i], Variants()[0], j)
			}
		}
	}
}
