// Package kernel is the runtime-dispatched vector-kernel layer under the
// ingest/query hot paths. The primitives that dominate every sketch's
// cycle budget — k-wise hash evaluation (internal/hash), mod-p polynomial
// arithmetic (internal/field, internal/sparse), PRG block generation
// (internal/prng) and the counter scatter under the count-sketch/count-min
// folds — call through a per-primitive function table selected once at
// init: the pure-Go scalar reference always exists, and SIMD variants
// (AVX2 and AVX-512 on amd64, NEON on arm64) replace individual entries
// when the CPU supports them.
//
// All kernels operate on raw uint64 values carrying elements of GF(2^61-1)
// in canonical form [0, Modulus) — the same representation as
// internal/field.Elem. kernel cannot import field (field's own batch entry
// points dispatch through this package), so the few lines of Mersenne
// arithmetic are restated in scalar.go; the differential tests in
// kernel_test.go and the per-package variant sweeps pin every variant
// bit-identical to the scalar reference.
//
// Selection order is AVX-512 > AVX2 > NEON > scalar, overridable for
// testing with the environment variable REPRO_KERNEL=scalar|avx2|avx512|neon:
// a known but unavailable variant falls back cleanly to scalar (so one CI
// matrix axis can force REPRO_KERNEL=scalar everywhere without per-arch
// conditionals), while an unknown value fails loudly at process start —
// silently ignoring a typo would un-force the very path the override was
// meant to test.
package kernel

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
)

// Variant names accepted by Select and the REPRO_KERNEL environment variable.
const (
	Scalar = "scalar"
	AVX2   = "avx2"
	AVX512 = "avx512"
	NEON   = "neon"
)

// EnvVar is the environment variable consulted once at package init.
const EnvVar = "REPRO_KERNEL"

// table is the per-primitive function-pointer set of one variant. Every
// entry is always non-nil; variants that vectorize only some primitives
// inherit another variant's implementation for the rest.
type table struct {
	name string

	// polyEvalBatch writes the Horner evaluation of the polynomial with
	// ascending coefficients coef at each point of xs into out[:len(xs)].
	// Points are arbitrary uint64s, reduced to canonical form first (a
	// no-op for already-canonical field elements).
	polyEvalBatch func(coef, xs, out []uint64)

	// bucketSign2 is the fused count-sketch row kernel for pairwise (k=2)
	// families: buckets[t] = Lemire(h1·x+h0, m), signs[t] = ±1.0 from the
	// low bit of g1·x+g0.
	bucketSign2 func(h0, h1, g0, g1, m uint64, xs, buckets []uint64, signs []float64)

	// bucket2 is the count-min row kernel: out[t] = Lemire(c1·x+c0, m).
	bucket2 func(c0, c1, m uint64, xs, out []uint64)

	// fdScan advances a forward-finite-difference table len(out) steps,
	// writing the value before each step into out: the Chien-scan inner
	// loop of sparse recovery.
	fdScan func(d, out []uint64)

	// syndromeAdd4 folds four updates (deltas d, evaluation points a) into
	// the power-sum syndromes: synd[j] += Σ_i d[i]·a[i]^j for all j. The
	// groups pass by value so the indirect dispatch call cannot force a
	// caller's group registers to escape to the heap.
	syndromeAdd4 func(synd []uint64, d, a [4]uint64)

	// affineExpand doubles a Nisan subtree level in place: for i = m-1..0,
	// buf[2i] = buf[i], buf[2i+1] = a·buf[i]+b. len(buf) must be ≥ 2m.
	affineExpand func(a, b uint64, buf []uint64, m int)

	// scatterAddF64 folds cells[idx[t]] += del[t] for t ascending — the
	// count-sketch counter scatter. Per-cell accumulation order is batch
	// order, so float64 results are bit-identical across variants.
	scatterAddF64 func(cells []float64, idx []uint64, del []float64)

	// scatterAddI64 is the integer twin (the count-min fold).
	scatterAddI64 func(cells []int64, idx []uint64, del []int64)
}

var (
	selectMu sync.Mutex
	active   atomic.Pointer[table]

	// available lists the vector tables compiled in and supported by this
	// CPU, in ascending preference order (the last entry is the best);
	// wired by the per-arch init in cpu_*.go. Empty means scalar only.
	available []*table

	// testAltTables lists extra tables reachable only from the differential
	// tests: flavors detection skipped in favor of a better one but that
	// this CPU can still execute (the VPMULUDQ AVX-512 modmul on an IFMA
	// machine). Never selectable; swept by kernel_test.go.
	testAltTables []*table
)

func init() {
	detect() // per-arch: may append to available
	if err := initFromEnv(os.Getenv(EnvVar)); err != nil {
		panic(err)
	}
}

// initFromEnv applies one REPRO_KERNEL value: empty selects the best
// available variant, a known name forces it (falling back to scalar when the
// CPU lacks it), and an unknown name is an error. Split from init so tests
// can exercise the error path without a subprocess.
func initFromEnv(v string) error {
	if v == "" {
		if len(available) > 0 {
			active.Store(available[len(available)-1])
		} else {
			active.Store(&scalarTable)
		}
		return nil
	}
	if err := Select(v); err != nil {
		return fmt.Errorf("kernel: invalid %s=%q: %w", EnvVar, v, err)
	}
	return nil
}

// Active returns the name of the currently selected variant.
func Active() string { return active.Load().name }

// Variants returns the names selectable on this machine: always "scalar",
// plus every vector variant compiled in and supported by the CPU, best last
// (on an AVX-512 machine that is scalar, avx2, avx512).
func Variants() []string {
	vs := []string{Scalar}
	for _, t := range available {
		vs = append(vs, t.name)
	}
	return vs
}

// Select switches the dispatch table. "scalar" always succeeds; a known
// vector variant that is unavailable here (wrong architecture or missing CPU
// feature) falls back cleanly to scalar and reports no error, so forced
// configurations stay portable; an unknown name is an error and leaves the
// selection unchanged. Safe for concurrent use with kernel calls (the table
// pointer is swapped atomically), though tests that force variants should
// not run in parallel with each other.
func Select(name string) error {
	selectMu.Lock()
	defer selectMu.Unlock()
	switch name {
	case Scalar:
		active.Store(&scalarTable)
	case AVX2, AVX512, NEON:
		active.Store(&scalarTable)
		for _, t := range available {
			if t.name == name {
				active.Store(t)
				break
			}
		}
	default:
		return fmt.Errorf("unknown kernel variant %q (want %s, %s, %s or %s)",
			name, Scalar, AVX2, AVX512, NEON)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Dispatched entry points (one atomic load + indirect call per batch).
// ---------------------------------------------------------------------------

// PolyEvalBatch evaluates the polynomial Σ coef[i]·x^i at each (raw uint64)
// point of xs into out[:len(xs)], Horner order, over GF(2^61-1). A nil/empty
// coef writes zeros.
func PolyEvalBatch(coef, xs, out []uint64) { active.Load().polyEvalBatch(coef, xs, out) }

// BucketSign2 is the fused pairwise count-sketch row kernel; see table.
// h0,h1,g0,g1 must be canonical field elements and m ≥ 1.
func BucketSign2(h0, h1, g0, g1, m uint64, xs, buckets []uint64, signs []float64) {
	active.Load().bucketSign2(h0, h1, g0, g1, m, xs, buckets, signs)
}

// Bucket2 is the pairwise count-min row kernel; see table.
func Bucket2(c0, c1, m uint64, xs, out []uint64) { active.Load().bucket2(c0, c1, m, xs, out) }

// FDScan writes len(out) consecutive finite-difference values and advances
// the table d in place; out[t] is the polynomial value at the t-th point.
func FDScan(d, out []uint64) { active.Load().fdScan(d, out) }

// SyndromeAdd4 folds four updates into the power-sum syndromes; see table.
func SyndromeAdd4(synd []uint64, d, a [4]uint64) { active.Load().syndromeAdd4(synd, d, a) }

// AffineExpand doubles one Nisan subtree level in place; see table.
func AffineExpand(a, b uint64, buf []uint64, m int) { active.Load().affineExpand(a, b, buf, m) }
