// AVX2 kernels over GF(2^61-1), four 64-bit lanes per ymm register.
//
// Every routine here is pinned bit-identical to its pure-Go reference in
// scalar.go by TestDifferential* (and transitively to internal/field by the
// per-package variant sweeps): all lane values are canonical representatives
// in [0, 2^61-1), so exact mod-p algebra implies exact bit equality.
//
// Arithmetic building blocks (AVX2 has no 64x64 multiply, so products are
// assembled from four 32x32 VPMULUDQ limb products):
//
//   CONDSUB    r ∈ [0, 2p) -> canonical: t = r-p, keep r where t is negative
//              (VBLENDVPD selects by sign bit; all operands are < 2^62, so
//              the float-domain blend never sees a spurious sign).
//   REDUCE     arbitrary uint64 -> canonical: one Mersenne fold + CONDSUB.
//   MODADD     canonical a+b -> canonical.
//   MODMUL     full 61-bit modular product a*b:
//                lo  = aLo*bLo            (< 2^64)
//                mid = aHi*bLo + aLo*bHi  (< 2^62)
//                hi  = aHi*bHi            (< 2^58)
//              value = lo + mid*2^32 + hi*2^64, and with 2^61 = 1 (mod p):
//                r = (lo&p) + (lo>>61) + ((mid<<35)>>3) + (mid>>29) + (hi<<3)
//              ((mid<<35)>>3 is (mid & (2^29-1))<<32 without a mask
//              constant), r < 2^63, then one fold + CONDSUB.
//   MODMULC    MODMUL against a pre-split broadcast constant (cLo, cHi).
//   MULHIC     plain 64x64 high word against a pre-split constant — the
//              Lemire bucket reduction floor(v*m/2^64).

#include "textflag.h"

DATA modP<>+0x00(SB)/8, $0x1FFFFFFFFFFFFFFF
GLOBL modP<>(SB), RODATA|NOPTR, $8

DATA ones256<>+0x00(SB)/8, $1
DATA ones256<>+0x08(SB)/8, $1
DATA ones256<>+0x10(SB)/8, $1
DATA ones256<>+0x18(SB)/8, $1
GLOBL ones256<>(SB), RODATA|NOPTR, $32

DATA plus1d256<>+0x00(SB)/8, $0x3FF0000000000000
DATA plus1d256<>+0x08(SB)/8, $0x3FF0000000000000
DATA plus1d256<>+0x10(SB)/8, $0x3FF0000000000000
DATA plus1d256<>+0x18(SB)/8, $0x3FF0000000000000
GLOBL plus1d256<>(SB), RODATA|NOPTR, $32

// YP holds the modulus in all four lanes throughout every routine.
#define YP Y15

// CONDSUB(r, t): r = r >= p ? r-p : r, for r < 2^62. Clobbers t.
#define CONDSUB(r, t) \
	VPSUBQ    YP, r, t \
	VBLENDVPD t, r, t, r

// REDUCE(x, r, t): canonicalize arbitrary uint64 lanes x into r. Clobbers t.
#define REDUCE(x, r, t) \
	VPAND  YP, x, r  \
	VPSRLQ $61, x, t \
	VPADDQ t, r, r   \
	CONDSUB(r, t)

// MODADD(a, b, r, t): r = a+b mod p for canonical a, b. r may alias a or b.
#define MODADD(a, b, r, t) \
	VPADDQ a, b, r \
	CONDSUB(r, t)

// MODMUL_TAIL(r, t0, t1, t2): shared reduction epilogue. On entry r = mid,
// t0 = hi, t1 = lo; on exit r is the canonical product.
#define MODMUL_TAIL(r, t0, t1, t2) \
	VPSLLQ $3, t0, t0  \
	VPAND  YP, t1, t2  \
	VPADDQ t0, t2, t2  \
	VPSRLQ $61, t1, t1 \
	VPADDQ t1, t2, t2  \
	VPSLLQ $35, r, t0  \
	VPSRLQ $3, t0, t0  \
	VPADDQ t0, t2, t2  \
	VPSRLQ $29, r, r   \
	VPADDQ t2, r, r    \
	VPAND  YP, r, t0   \
	VPSRLQ $61, r, r   \
	VPADDQ t0, r, r    \
	CONDSUB(r, t0)

// MODMUL(a, b, r, t0, t1, t2): r = a*b mod p, canonical a and b preserved.
#define MODMUL(a, b, r, t0, t1, t2) \
	VPSRLQ   $32, a, t0 \
	VPSRLQ   $32, b, t1 \
	VPMULUDQ t1, a, r   \
	VPMULUDQ b, t0, t2  \
	VPADDQ   t2, r, r   \
	VPMULUDQ t1, t0, t0 \
	VPMULUDQ b, a, t1   \
	MODMUL_TAIL(r, t0, t1, t2)

// MODMULC(a, cLo, cHi, r, t0, t1, t2): r = a*c mod p for a canonical and a
// constant pre-split into broadcast low/high 32-bit halves.
#define MODMULC(a, cLo, cHi, r, t0, t1, t2) \
	VPSRLQ   $32, a, t0  \
	VPMULUDQ cHi, a, r   \
	VPMULUDQ cLo, t0, t2 \
	VPADDQ   t2, r, r    \
	VPMULUDQ cHi, t0, t0 \
	VPMULUDQ cLo, a, t1  \
	MODMUL_TAIL(r, t0, t1, t2)

// MULHIC(v, mLo, mHi, r, t0, t1, t2): r = high 64 bits of v*m (full 64x64
// product with carry propagation between 32-bit limb columns).
#define MULHIC(v, mLo, mHi, r, t0, t1, t2) \
	VPSRLQ   $32, v, t0  \
	VPMULUDQ mLo, v, t1  \
	VPMULUDQ mLo, t0, t2 \
	VPSRLQ   $32, t1, t1 \
	VPADDQ   t1, t2, t2  \
	VPMULUDQ mHi, v, r   \
	VPSLLQ   $32, t2, t1 \
	VPSRLQ   $32, t1, t1 \
	VPADDQ   t1, r, r    \
	VPSRLQ   $32, r, r   \
	VPMULUDQ mHi, t0, t0 \
	VPSRLQ   $32, t2, t2 \
	VPADDQ   t2, t0, t0  \
	VPADDQ   t0, r, r

// BROADCAST_SPLIT(arg, lo, hi): broadcast the low and high 32-bit halves of
// a uint64 stack argument into two ymm registers. The split stays entirely
// in the vector domain: routing the halves through a GPR would need the
// legacy-SSE MOVQ GPR->XMM form (the Go assembler has no VEX spelling of
// it), and a legacy SSE write with dirty YMM uppers stalls for hundreds of
// cycles per transition on the Xeon classes this targets.
#define BROADCAST_SPLIT(arg, lo, hi) \
	VPBROADCASTQ arg, hi \
	VPSLLQ       $32, hi, lo \
	VPSRLQ       $32, lo, lo \
	VPSRLQ       $32, hi, hi

// func polyEvalBatchAVX2(coef []uint64, xs []uint64, out []uint64)
// Requires len(coef) >= 1, len(xs) > 0 and len(xs)%4 == 0 (the Go wrapper
// guarantees both). Transposed Horner: four independent accumulator chains
// walk the coefficients high to low, seeded with coef[k-1] (bit-identical to
// starting from 0: 0*x + c = c exactly).
TEXT ·polyEvalBatchAVX2(SB), NOSPLIT, $0-72
	MOVQ         coef_base+0(FP), SI
	MOVQ         coef_len+8(FP), DX
	MOVQ         xs_base+24(FP), DI
	MOVQ         xs_len+32(FP), CX
	MOVQ         out_base+48(FP), R8
	VPBROADCASTQ modP<>(SB), YP

pointloop:
	VMOVDQU (DI), Y0
	REDUCE(Y0, Y1, Y2)                // Y1 = canonical points

	VPBROADCASTQ -8(SI)(DX*8), Y3     // acc = coef[k-1]
	MOVQ         DX, R10
	DECQ         R10
	JZ           store
	LEAQ         -16(SI)(DX*8), R9    // &coef[k-2]

coefloop:
	MODMUL(Y3, Y1, Y5, Y6, Y7, Y8)    // Y5 = acc*x
	VPBROADCASTQ (R9), Y4
	MODADD(Y5, Y4, Y3, Y6)            // acc = acc*x + coef[j]
	SUBQ         $8, R9
	DECQ         R10
	JNZ          coefloop

store:
	VMOVDQU Y3, (R8)
	ADDQ    $32, DI
	ADDQ    $32, R8
	SUBQ    $4, CX
	JNZ     pointloop
	VZEROUPPER
	RET

// func bucketSign2AVX2(h0, h1, g0, g1, m uint64, xs []uint64, buckets []uint64, signs []float64)
// Fused pairwise count-sketch row kernel; len(xs) > 0 and %4 == 0.
TEXT ·bucketSign2AVX2(SB), NOSPLIT, $0-112
	MOVQ         xs_base+40(FP), DI
	MOVQ         xs_len+48(FP), CX
	MOVQ         buckets_base+64(FP), R8
	MOVQ         signs_base+88(FP), R9
	VPBROADCASTQ modP<>(SB), YP
	BROADCAST_SPLIT(h1+8(FP), Y14, Y13)
	BROADCAST_SPLIT(g1+24(FP), Y12, Y11)
	BROADCAST_SPLIT(m+32(FP), Y10, Y9)

keyloop:
	VMOVDQU (DI), Y0
	REDUCE(Y0, Y1, Y2)                       // Y1 = xe

	// Bucket chain: Lemire(h1*xe + h0, m).
	MODMULC(Y1, Y14, Y13, Y2, Y3, Y4, Y5)
	VPBROADCASTQ h0+0(FP), Y3
	MODADD(Y2, Y3, Y2, Y4)
	VPSLLQ       $3, Y2, Y2                  // v<<3: Lemire on a 61-bit value
	MULHIC(Y2, Y10, Y9, Y6, Y3, Y4, Y5)
	VMOVDQU      Y6, (R8)

	// Sign chain: ±1.0 from the low bit of g1*xe + g0. The float bits are
	// built directly: (bit-1)<<63 is the sign mask for bit==0, XORed onto
	// the bit pattern of +1.0.
	MODMULC(Y1, Y12, Y11, Y2, Y3, Y4, Y5)
	VPBROADCASTQ g0+16(FP), Y3
	MODADD(Y2, Y3, Y2, Y4)
	VPAND        ones256<>(SB), Y2, Y3
	VPSUBQ       ones256<>(SB), Y3, Y3
	VPSLLQ       $63, Y3, Y3
	VPXOR        plus1d256<>(SB), Y3, Y3
	VMOVDQU      Y3, (R9)

	ADDQ $32, DI
	ADDQ $32, R8
	ADDQ $32, R9
	SUBQ $4, CX
	JNZ  keyloop
	VZEROUPPER
	RET

// func bucket2AVX2(c0, c1, m uint64, xs []uint64, out []uint64)
// Pairwise count-min row kernel; len(xs) > 0 and %4 == 0.
TEXT ·bucket2AVX2(SB), NOSPLIT, $0-72
	MOVQ         xs_base+24(FP), DI
	MOVQ         xs_len+32(FP), CX
	MOVQ         out_base+48(FP), R8
	VPBROADCASTQ modP<>(SB), YP
	BROADCAST_SPLIT(c1+8(FP), Y14, Y13)
	BROADCAST_SPLIT(m+16(FP), Y10, Y9)

keyloop:
	VMOVDQU (DI), Y0
	REDUCE(Y0, Y1, Y2)
	MODMULC(Y1, Y14, Y13, Y2, Y3, Y4, Y5)
	VPBROADCASTQ c0+0(FP), Y3
	MODADD(Y2, Y3, Y2, Y4)
	VPSLLQ       $3, Y2, Y2
	MULHIC(Y2, Y10, Y9, Y6, Y3, Y4, Y5)
	VMOVDQU      Y6, (R8)

	ADDQ $32, DI
	ADDQ $32, R8
	SUBQ $4, CX
	JNZ  keyloop
	VZEROUPPER
	RET

// func fdScanAVX2(d []uint64, out []uint64)
// Forward-finite-difference scan: per step emit d[0] then d[k] += d[k+1]
// (old values — the overlapped loads of each 4-lane chunk happen before its
// store, and chunks advance left to right). len(d) >= 5, len(out) >= 1.
TEXT ·fdScanAVX2(SB), NOSPLIT, $0-48
	MOVQ         d_base+0(FP), SI
	MOVQ         d_len+8(FP), DX
	MOVQ         out_base+24(FP), DI
	MOVQ         out_len+32(FP), CX
	VPBROADCASTQ modP<>(SB), YP
	MOVQ         $0x1FFFFFFFFFFFFFFF, R15
	DECQ         DX             // DX = len(d)-1 entries updated per step
	MOVQ         DX, R12
	ANDQ         $-4, R12       // R12 = vectorized prefix length

steploop:
	MOVQ (SI), AX
	MOVQ AX, (DI)

	XORQ R11, R11
vecloop:
	VMOVDQU (SI)(R11*8), Y0
	VMOVDQU 8(SI)(R11*8), Y1
	MODADD(Y0, Y1, Y0, Y2)
	VMOVDQU Y0, (SI)(R11*8)
	ADDQ    $4, R11
	CMPQ    R11, R12
	JLT     vecloop

	CMPQ R11, DX
	JGE  stepdone
tailloop:
	MOVQ     (SI)(R11*8), AX
	ADDQ     8(SI)(R11*8), AX
	MOVQ     AX, BX
	SUBQ     R15, BX
	CMOVQCC  BX, AX
	MOVQ     AX, (SI)(R11*8)
	INCQ     R11
	CMPQ     R11, DX
	JLT      tailloop

stepdone:
	ADDQ $8, DI
	DECQ CX
	JNZ  steploop
	VZEROUPPER
	RET

// func fdScan12AVX2(d *[12]uint64, out []uint64)
// Register-resident finite-difference scan for tables of up to 12 entries
// (zero-padded by the wrapper; pad lanes stay zero under d[k] += d[k+1]).
// The whole table lives in Y0..Y2 across all steps — the memory-walking
// variant above is store-forward-latency-bound at these sizes, which is
// exactly the shape the Chien scan runs (deg(locator) <= sparsity budget).
// The shift-by-one-lane uses VPERM2I128 to fetch the cross-lane neighbor and
// VPALIGNR to splice: S = [d1..d4] from Y = [d0..d3], carry from the next
// register (zero for the last). len(out) >= 1.
TEXT ·fdScan12AVX2(SB), NOSPLIT, $0-32
	MOVQ         d+0(FP), SI
	MOVQ         out_base+8(FP), DI
	MOVQ         out_len+16(FP), CX
	VPBROADCASTQ modP<>(SB), YP
	VMOVDQU      (SI), Y0
	VMOVDQU      32(SI), Y1
	VMOVDQU      64(SI), Y2

steploop:
	VMOVQ      X0, (DI)            // out[t] = d[0]
	VPERM2I128 $0x21, Y1, Y0, Y3   // [d2 d3 | d4 d5]
	VPALIGNR   $8, Y0, Y3, Y3      // [d1 d2 d3 d4]
	VPERM2I128 $0x21, Y2, Y1, Y4
	VPALIGNR   $8, Y1, Y4, Y4      // [d5 d6 d7 d8]
	VPERM2I128 $0x81, Y2, Y2, Y5   // [d10 d11 | 0 0]
	VPALIGNR   $8, Y2, Y5, Y5      // [d9 d10 d11 0]
	MODADD(Y0, Y3, Y0, Y6)
	MODADD(Y1, Y4, Y1, Y7)
	MODADD(Y2, Y5, Y2, Y8)
	ADDQ       $8, DI
	DECQ       CX
	JNZ        steploop

	VMOVDQU Y0, (SI)
	VMOVDQU Y1, 32(SI)
	VMOVDQU Y2, 64(SI)
	VZEROUPPER
	RET

// func syndromeAdd4AVX2(synd []uint64, d, a *[4]uint64)
// synd[j] += d0*a0^j + d1*a1^j + d2*a2^j + d3*a3^j for every j, four power
// chains in four lanes. The horizontal mod-sum associates as
// (x0+x2)+(x1+x3) instead of the scalar left fold — every partial sum is an
// exact canonical mod-p add, so the final value is bit-identical.
// len(synd) >= 1.
TEXT ·syndromeAdd4AVX2(SB), NOSPLIT, $0-40
	MOVQ         synd_base+0(FP), SI
	MOVQ         synd_len+8(FP), CX
	MOVQ         d+24(FP), R8
	MOVQ         a+32(FP), R9
	VPBROADCASTQ modP<>(SB), YP
	MOVQ         $0x1FFFFFFFFFFFFFFF, R15
	VMOVDQU      (R8), Y1            // deltas
	VMOVDQU      (R9), Y2            // points
	VMOVDQU      ones256<>(SB), Y3   // power chains, all at a^0 = 1

syndloop:
	MODMUL(Y1, Y3, Y4, Y5, Y6, Y7)   // Y4 = d_i * p_i per lane

	// Horizontal mod-sum of the four lanes into AX.
	VEXTRACTI128 $1, Y4, X5
	VPADDQ       X5, X4, X4
	VPSUBQ       X15, X4, X5
	VBLENDVPD    X5, X4, X5, X4
	VPSHUFD      $0x4E, X4, X5
	VPADDQ       X5, X4, X4
	VPSUBQ       X15, X4, X5
	VBLENDVPD    X5, X4, X5, X4
	VMOVQ        X4, AX

	MOVQ    (SI), BX
	ADDQ    BX, AX
	MOVQ    AX, BX
	SUBQ    R15, BX
	CMOVQCC BX, AX
	MOVQ    AX, (SI)

	MODMUL(Y3, Y2, Y4, Y5, Y6, Y7)   // advance power chains
	VMOVDQA Y4, Y3

	ADDQ $8, SI
	DECQ CX
	JNZ  syndloop
	VZEROUPPER
	RET

// func affineExpandAVX2(a, b uint64, buf []uint64, lo, m int)
// One Nisan subtree doubling level, indices i in [lo, m) with (m-lo)%4 == 0
// and m-lo >= 4, descending so the in-place writes at 2i/2i+1 never clobber
// unread state: buf[2i] = buf[i], buf[2i+1] = a*buf[i] + b.
TEXT ·affineExpandAVX2(SB), NOSPLIT, $0-56
	MOVQ         buf_base+16(FP), SI
	MOVQ         lo+40(FP), R9
	MOVQ         m+48(FP), R10
	VPBROADCASTQ modP<>(SB), YP
	BROADCAST_SPLIT(a+0(FP), Y14, Y13)
	VPBROADCASTQ b+8(FP), Y12
	SUBQ         $4, R10             // i = m-4

blkloop:
	VMOVDQU (SI)(R10*8), Y0          // x
	MODMULC(Y0, Y14, Y13, Y1, Y2, Y3, Y4)
	MODADD(Y1, Y12, Y1, Y2)          // y = a*x+b

	// Interleave to (x0,y0,x1,y1 | x2,y2,x3,y3) and store at buf[2i].
	VPUNPCKLQDQ Y1, Y0, Y2           // x0 y0 x2 y2
	VPUNPCKHQDQ Y1, Y0, Y3           // x1 y1 x3 y3
	VPERM2I128  $0x20, Y3, Y2, Y4    // x0 y0 x1 y1
	VPERM2I128  $0x31, Y3, Y2, Y5    // x2 y2 x3 y3
	LEAQ        (R10)(R10*1), R11
	VMOVDQU     Y4, (SI)(R11*8)
	VMOVDQU     Y5, 32(SI)(R11*8)

	SUBQ $4, R10
	CMPQ R10, R9
	JGE  blkloop
	VZEROUPPER
	RET
