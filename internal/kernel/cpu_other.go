//go:build !amd64 && !arm64

package kernel

// No vector backend on this architecture: every primitive runs the scalar
// reference, and Select("avx2"/"avx512"/"neon") falls back cleanly to it.
func detect() {}
