package kernel

// NEON is a mandatory part of AArch64, so detection is unconditional.
//
// AdvSIMD has no 64-bit lane multiply, so the modmul-bound primitives
// (polyEvalBatch, bucketSign2, bucket2) are not vector code: they are
// hand-scheduled scalar assembly that interleaves two independent
// MUL/UMULH limb chains per iteration, hiding the multiplier latency the
// compiled one-key-at-a-time reference cannot (see kernel_arm64.s). The
// add-dominated finite-difference scan is genuinely vectorized at two
// lanes. syndromeAdd4 and affineExpand stay on the scalar reference: their
// loop bodies already expose two-plus independent chains to the OoO core.

//go:noescape
func fdScanNEON(d []uint64, out []uint64)

//go:noescape
func polyEvalBatchNEON(coef []uint64, xs []uint64, out []uint64)

//go:noescape
func bucketSign2NEON(h0, h1, g0, g1, m uint64, xs []uint64, buckets []uint64, signs []float64)

//go:noescape
func bucket2NEON(c0, c1, m uint64, xs []uint64, out []uint64)

func detect() {
	available = append(available, &neonTable)
}

var neonTable = table{
	name:          NEON,
	polyEvalBatch: neonPolyEvalBatch,
	bucketSign2:   neonBucketSign2,
	bucket2:       neonBucket2,
	fdScan:        neonFDScan,
	syndromeAdd4:  scalarSyndromeAdd4,
	affineExpand:  scalarAffineExpand,
	scatterAddF64: scalarScatterAddF64,
	scatterAddI64: scalarScatterAddI64,
}

func neonFDScan(d, out []uint64) {
	if len(out) == 0 || len(d) < 4 {
		scalarFDScan(d, out)
		return
	}
	fdScanNEON(d, out)
}

func neonPolyEvalBatch(coef, xs, out []uint64) {
	out = out[:len(xs)]
	if len(coef) == 0 {
		clear(out)
		return
	}
	n := len(xs) &^ 1
	if n > 0 {
		polyEvalBatchNEON(coef, xs[:n], out[:n])
	}
	if n < len(xs) {
		scalarPolyEvalBatch(coef, xs[n:], out[n:])
	}
}

func neonBucketSign2(h0, h1, g0, g1, m uint64, xs, buckets []uint64, signs []float64) {
	buckets = buckets[:len(xs)]
	signs = signs[:len(xs)]
	n := len(xs) &^ 1
	if n > 0 {
		bucketSign2NEON(h0, h1, g0, g1, m, xs[:n], buckets[:n], signs[:n])
	}
	if n < len(xs) {
		scalarBucketSign2(h0, h1, g0, g1, m, xs[n:], buckets[n:], signs[n:])
	}
}

func neonBucket2(c0, c1, m uint64, xs, out []uint64) {
	out = out[:len(xs)]
	n := len(xs) &^ 1
	if n > 0 {
		bucket2NEON(c0, c1, m, xs[:n], out[:n])
	}
	if n < len(xs) {
		scalarBucket2(c0, c1, m, xs[n:], out[n:])
	}
}
