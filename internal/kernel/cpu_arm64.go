package kernel

// NEON is a mandatory part of AArch64, so detection is unconditional. The
// table vectorizes only the finite-difference scan — NEON has no 64-bit
// lane multiply, and the scalar mod-p product already compiles to MUL+UMULH
// on arm64, so limb-decomposed vector multiplies would be a loss (see the
// header of kernel_arm64.s).

//go:noescape
func fdScanNEON(d []uint64, out []uint64)

func detect() {
	vectorTable = &neonTable
}

var neonTable = table{
	name:          NEON,
	polyEvalBatch: scalarPolyEvalBatch,
	bucketSign2:   scalarBucketSign2,
	bucket2:       scalarBucket2,
	fdScan:        neonFDScan,
	syndromeAdd4:  scalarSyndromeAdd4,
	affineExpand:  scalarAffineExpand,
}

func neonFDScan(d, out []uint64) {
	if len(out) == 0 || len(d) < 4 {
		scalarFDScan(d, out)
		return
	}
	fdScanNEON(d, out)
}
