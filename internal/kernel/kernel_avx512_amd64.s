// AVX-512 kernels over GF(2^61-1), eight 64-bit lanes per zmm register.
//
// Same contract as kernel_amd64.s: every routine is pinned bit-identical to
// its pure-Go reference in scalar.go by the differential tests — all lane
// values are canonical representatives in [0, 2^61-1), so exact mod-p
// algebra implies exact bit equality.
//
// Two modmul flavors exist:
//
//   MODMULC512 / MODMUL512   four 32x32 VPMULUDQ limb products, the AVX2
//                            scheme widened to 8 lanes (AVX-512F only).
//   MODMULC512I / MODMUL512I AVX512_IFMA: split operands into 52+9-bit
//                            limbs (a = aL + 2^52·aH) and assemble the
//                            122-bit product from seven VPMADD52{L,H}UQ
//                            accumulations:
//                              r = lo52(aL·bL)                      < 2^52
//                              m = hi52(aL·bL)+lo52(aL·bH)+lo52(aH·bL) < 2^54
//                              h = hi52(aL·bH)+hi52(aH·bL)+aH·bH    < 2^19
//                            value = r + 2^52·m + 2^104·h, and with
//                            2^61 ≡ 1: 2^52·m ≡ 2^52·(m mod 2^9) + (m>>9),
//                            2^104·h ≡ 2^43·h; the recombined sum is
//                            < 2^63, one Mersenne fold away from [0, 2p).
//
// The conditional subtract uses an opmask compare instead of AVX2's
// float-domain blend: VPCMPUQ sets K where r >= p, and a merge-masked
// VPSUBQ subtracts p in exactly those lanes.
//
// The counter-scatter kernels fold cells[idx[i]] += del[i] eight pairs at a
// time with VGATHERQPD / VADDPD / VSCATTERQPD. Duplicate indices inside one
// group would make the gather read stale values (dropping all but the last
// lane's add) — VPCONFLICTQ detects them and routes the whole group through
// an in-order scalar fallback, so per-cell accumulation order is always
// exactly batch order and float64 results stay bit-identical.

#include "textflag.h"

DATA modP512<>+0x00(SB)/8, $0x1FFFFFFFFFFFFFFF
GLOBL modP512<>(SB), RODATA|NOPTR, $8

DATA one512<>+0x00(SB)/8, $1
GLOBL one512<>(SB), RODATA|NOPTR, $8

DATA plus1d512<>+0x00(SB)/8, $0x3FF0000000000000
GLOBL plus1d512<>(SB), RODATA|NOPTR, $8

DATA mask52v<>+0x00(SB)/8, $0x000FFFFFFFFFFFFF
GLOBL mask52v<>(SB), RODATA|NOPTR, $8

// ZP holds the modulus in all eight lanes throughout every routine.
#define ZP Z31

// CONDSUB512(r, k): r ∈ [0, 2p) -> canonical, via opmask. Clobbers k.
#define CONDSUB512(r, k) \
	VPCMPUQ $5, ZP, r, k \
	VPSUBQ  ZP, r, k, r

// REDUCE512(x, r, t, k): canonicalize arbitrary uint64 lanes x into r.
#define REDUCE512(x, r, t, k) \
	VPANDQ ZP, x, r  \
	VPSRLQ $61, x, t \
	VPADDQ t, r, r   \
	CONDSUB512(r, k)

// MODADD512(a, b, r, k): r = a+b mod p for canonical a, b. r may alias.
#define MODADD512(a, b, r, k) \
	VPADDQ a, b, r \
	CONDSUB512(r, k)

// MODMUL_TAIL512(r, t0, t1, t2, k): shared VPMULUDQ reduction epilogue.
// On entry r = mid, t0 = hi, t1 = lo; on exit r is the canonical product.
#define MODMUL_TAIL512(r, t0, t1, t2, k) \
	VPSLLQ $3, t0, t0  \
	VPANDQ ZP, t1, t2  \
	VPADDQ t0, t2, t2  \
	VPSRLQ $61, t1, t1 \
	VPADDQ t1, t2, t2  \
	VPSLLQ $35, r, t0  \
	VPSRLQ $3, t0, t0  \
	VPADDQ t0, t2, t2  \
	VPSRLQ $29, r, r   \
	VPADDQ t2, r, r    \
	VPANDQ ZP, r, t0   \
	VPSRLQ $61, r, r   \
	VPADDQ t0, r, r    \
	CONDSUB512(r, k)

// MODMUL512(a, b, r, t0, t1, t2, k): r = a*b mod p, a and b preserved.
#define MODMUL512(a, b, r, t0, t1, t2, k) \
	VPSRLQ   $32, a, t0 \
	VPSRLQ   $32, b, t1 \
	VPMULUDQ t1, a, r   \
	VPMULUDQ b, t0, t2  \
	VPADDQ   t2, r, r   \
	VPMULUDQ t1, t0, t0 \
	VPMULUDQ b, a, t1   \
	MODMUL_TAIL512(r, t0, t1, t2, k)

// MODMULC512(a, cLo, cHi, r, t0, t1, t2, k): r = a*c mod p for a constant
// pre-split into broadcast low/high 32-bit halves.
#define MODMULC512(a, cLo, cHi, r, t0, t1, t2, k) \
	VPSRLQ   $32, a, t0  \
	VPMULUDQ cHi, a, r   \
	VPMULUDQ cLo, t0, t2 \
	VPADDQ   t2, r, r    \
	VPMULUDQ cHi, t0, t0 \
	VPMULUDQ cLo, a, t1  \
	MODMUL_TAIL512(r, t0, t1, t2, k)

// MULHIC512(v, mLo, mHi, r, t0, t1, t2): r = high 64 bits of v*m (full
// 64x64 product with carry propagation between 32-bit limb columns) — the
// Lemire bucket reduction.
#define MULHIC512(v, mLo, mHi, r, t0, t1, t2) \
	VPSRLQ   $32, v, t0  \
	VPMULUDQ mLo, v, t1  \
	VPMULUDQ mLo, t0, t2 \
	VPSRLQ   $32, t1, t1 \
	VPADDQ   t1, t2, t2  \
	VPMULUDQ mHi, v, r   \
	VPSLLQ   $32, t2, t1 \
	VPSRLQ   $32, t1, t1 \
	VPADDQ   t1, r, r    \
	VPSRLQ   $32, r, r   \
	VPMULUDQ mHi, t0, t0 \
	VPSRLQ   $32, t2, t2 \
	VPADDQ   t2, t0, t0  \
	VPADDQ   t0, r, r

// BROADCAST_SPLIT512(arg, lo, hi): broadcast the low and high 32-bit halves
// of a uint64 stack argument (pure vector domain, as in the AVX2 file).
#define BROADCAST_SPLIT512(arg, lo, hi) \
	VPBROADCASTQ arg, hi \
	VPSLLQ       $32, hi, lo \
	VPSRLQ       $32, lo, lo \
	VPSRLQ       $32, hi, hi

// BROADCAST_SPLIT52(arg, lo, hi, mask): broadcast a uint64 stack argument
// split into its 52-bit low and 9-bit high IFMA limbs.
#define BROADCAST_SPLIT52(arg, lo, hi, mask) \
	VPBROADCASTQ arg, hi \
	VPANDQ       mask, hi, lo \
	VPSRLQ       $52, hi, hi

// MODMUL512I(aL, aH, bL, bH, r, mm, hh, t, k): IFMA52 modular product of
// pre-split operands; aL/aH/bL/bH preserved. See file header for limb
// algebra and bounds.
#define MODMUL512I(aL, aH, bL, bH, r, mm, hh, t, k) \
	VPXORQ      r, r, r       \
	VPXORQ      mm, mm, mm    \
	VPXORQ      hh, hh, hh    \
	VPMADD52LUQ bL, aL, r     \
	VPMADD52HUQ bL, aL, mm    \
	VPMADD52LUQ bH, aL, mm    \
	VPMADD52LUQ bL, aH, mm    \
	VPMADD52HUQ bH, aL, hh    \
	VPMADD52HUQ bL, aH, hh    \
	VPMADD52LUQ bH, aH, hh    \
	VPSLLQ      $55, mm, t    \
	VPSRLQ      $3, t, t      \
	VPADDQ      t, r, r       \
	VPSRLQ      $9, mm, mm    \
	VPADDQ      mm, r, r      \
	VPSLLQ      $43, hh, hh   \
	VPADDQ      hh, r, r      \
	VPANDQ      ZP, r, t      \
	VPSRLQ      $61, r, r     \
	VPADDQ      t, r, r       \
	CONDSUB512(r, k)

// func polyEvalBatchAVX512(coef []uint64, xs []uint64, out []uint64)
// Requires len(coef) >= 1, len(xs) > 0 and len(xs)%8 == 0. Transposed
// Horner, eight independent accumulator chains, VPMULUDQ flavor.
TEXT ·polyEvalBatchAVX512(SB), NOSPLIT, $0-72
	MOVQ         coef_base+0(FP), SI
	MOVQ         coef_len+8(FP), DX
	MOVQ         xs_base+24(FP), DI
	MOVQ         xs_len+32(FP), CX
	MOVQ         out_base+48(FP), R8
	VPBROADCASTQ modP512<>(SB), ZP

pointloop:
	VMOVDQU64 (DI), Z0
	REDUCE512(Z0, Z1, Z2, K1)         // Z1 = canonical points

	VPBROADCASTQ -8(SI)(DX*8), Z3     // acc = coef[k-1]
	MOVQ         DX, R10
	DECQ         R10
	JZ           store
	LEAQ         -16(SI)(DX*8), R9    // &coef[k-2]

coefloop:
	MODMUL512(Z3, Z1, Z5, Z6, Z7, Z8, K1)
	VPBROADCASTQ (R9), Z4
	MODADD512(Z5, Z4, Z3, K1)         // acc = acc*x + coef[j]
	SUBQ         $8, R9
	DECQ         R10
	JNZ          coefloop

store:
	VMOVDQU64 Z3, (R8)
	ADDQ      $64, DI
	ADDQ      $64, R8
	SUBQ      $8, CX
	JNZ       pointloop
	VZEROUPPER
	RET

// func polyEvalBatchIFMA(coef []uint64, xs []uint64, out []uint64)
// Same contract as polyEvalBatchAVX512; IFMA52 flavor. The point limbs are
// split once per 8-point block, the accumulator limbs once per step.
TEXT ·polyEvalBatchIFMA(SB), NOSPLIT, $0-72
	MOVQ         coef_base+0(FP), SI
	MOVQ         coef_len+8(FP), DX
	MOVQ         xs_base+24(FP), DI
	MOVQ         xs_len+32(FP), CX
	MOVQ         out_base+48(FP), R8
	VPBROADCASTQ modP512<>(SB), ZP
	VPBROADCASTQ mask52v<>(SB), Z30

pointloop:
	VMOVDQU64 (DI), Z0
	REDUCE512(Z0, Z1, Z2, K1)         // Z1 = canonical points
	VPANDQ    Z30, Z1, Z9             // xL
	VPSRLQ    $52, Z1, Z10            // xH

	VPBROADCASTQ -8(SI)(DX*8), Z3     // acc = coef[k-1]
	MOVQ         DX, R10
	DECQ         R10
	JZ           store
	LEAQ         -16(SI)(DX*8), R9    // &coef[k-2]

coefloop:
	VPANDQ       Z30, Z3, Z0          // accL
	VPSRLQ       $52, Z3, Z1          // accH
	MODMUL512I(Z0, Z1, Z9, Z10, Z5, Z6, Z7, Z8, K1)
	VPBROADCASTQ (R9), Z4
	MODADD512(Z5, Z4, Z3, K1)         // acc = acc*x + coef[j]
	SUBQ         $8, R9
	DECQ         R10
	JNZ          coefloop

store:
	VMOVDQU64 Z3, (R8)
	ADDQ      $64, DI
	ADDQ      $64, R8
	SUBQ      $8, CX
	JNZ       pointloop
	VZEROUPPER
	RET

// func bucketSign2AVX512(h0, h1, g0, g1, m uint64, xs []uint64, buckets []uint64, signs []float64)
// Fused pairwise count-sketch row kernel; len(xs) > 0 and %8 == 0.
// VPMULUDQ flavor.
TEXT ·bucketSign2AVX512(SB), NOSPLIT, $0-112
	MOVQ         xs_base+40(FP), DI
	MOVQ         xs_len+48(FP), CX
	MOVQ         buckets_base+64(FP), R8
	MOVQ         signs_base+88(FP), R9
	VPBROADCASTQ modP512<>(SB), ZP
	BROADCAST_SPLIT512(h1+8(FP), Z30, Z29)
	BROADCAST_SPLIT512(g1+24(FP), Z28, Z27)
	BROADCAST_SPLIT512(m+32(FP), Z26, Z25)
	VPBROADCASTQ h0+0(FP), Z24
	VPBROADCASTQ g0+16(FP), Z23
	VPBROADCASTQ one512<>(SB), Z22
	VPBROADCASTQ plus1d512<>(SB), Z21

keyloop:
	VMOVDQU64 (DI), Z0
	REDUCE512(Z0, Z1, Z2, K1)                     // Z1 = xe

	// Bucket chain: Lemire(h1*xe + h0, m).
	MODMULC512(Z1, Z30, Z29, Z2, Z3, Z4, Z5, K1)
	MODADD512(Z2, Z24, Z2, K1)
	VPSLLQ    $3, Z2, Z2                          // v<<3: Lemire on 61 bits
	MULHIC512(Z2, Z26, Z25, Z6, Z3, Z4, Z5)
	VMOVDQU64 Z6, (R8)

	// Sign chain: ±1.0 from the low bit of g1*xe + g0 (bit trick as AVX2).
	MODMULC512(Z1, Z28, Z27, Z2, Z3, Z4, Z5, K1)
	MODADD512(Z2, Z23, Z2, K1)
	VPANDQ    Z22, Z2, Z3
	VPSUBQ    Z22, Z3, Z3
	VPSLLQ    $63, Z3, Z3
	VPXORQ    Z21, Z3, Z3
	VMOVDQU64 Z3, (R9)

	ADDQ $64, DI
	ADDQ $64, R8
	ADDQ $64, R9
	SUBQ $8, CX
	JNZ  keyloop
	VZEROUPPER
	RET

// func bucketSign2IFMA(h0, h1, g0, g1, m uint64, xs []uint64, buckets []uint64, signs []float64)
// Same contract as bucketSign2AVX512; IFMA52 flavor.
TEXT ·bucketSign2IFMA(SB), NOSPLIT, $0-112
	MOVQ         xs_base+40(FP), DI
	MOVQ         xs_len+48(FP), CX
	MOVQ         buckets_base+64(FP), R8
	MOVQ         signs_base+88(FP), R9
	VPBROADCASTQ modP512<>(SB), ZP
	VPBROADCASTQ mask52v<>(SB), Z30
	BROADCAST_SPLIT52(h1+8(FP), Z29, Z28, Z30)
	BROADCAST_SPLIT52(g1+24(FP), Z27, Z26, Z30)
	BROADCAST_SPLIT512(m+32(FP), Z25, Z24)
	VPBROADCASTQ h0+0(FP), Z23
	VPBROADCASTQ g0+16(FP), Z22
	VPBROADCASTQ one512<>(SB), Z20
	VPBROADCASTQ plus1d512<>(SB), Z19

keyloop:
	VMOVDQU64 (DI), Z0
	REDUCE512(Z0, Z1, Z2, K1)                       // Z1 = xe
	VPANDQ    Z30, Z1, Z9                           // xeL
	VPSRLQ    $52, Z1, Z10                          // xeH

	// Bucket chain: Lemire(h1*xe + h0, m).
	MODMUL512I(Z9, Z10, Z29, Z28, Z4, Z5, Z6, Z7, K1)
	MODADD512(Z4, Z23, Z4, K1)
	VPSLLQ    $3, Z4, Z4
	MULHIC512(Z4, Z25, Z24, Z8, Z5, Z6, Z7)
	VMOVDQU64 Z8, (R8)

	// Sign chain: ±1.0 from the low bit of g1*xe + g0.
	MODMUL512I(Z9, Z10, Z27, Z26, Z4, Z5, Z6, Z7, K1)
	MODADD512(Z4, Z22, Z4, K1)
	VPANDQ    Z20, Z4, Z5
	VPSUBQ    Z20, Z5, Z5
	VPSLLQ    $63, Z5, Z5
	VPXORQ    Z19, Z5, Z5
	VMOVDQU64 Z5, (R9)

	ADDQ $64, DI
	ADDQ $64, R8
	ADDQ $64, R9
	SUBQ $8, CX
	JNZ  keyloop
	VZEROUPPER
	RET

// func bucket2AVX512(c0, c1, m uint64, xs []uint64, out []uint64)
// Pairwise count-min row kernel; len(xs) > 0 and %8 == 0. VPMULUDQ flavor.
TEXT ·bucket2AVX512(SB), NOSPLIT, $0-72
	MOVQ         xs_base+24(FP), DI
	MOVQ         xs_len+32(FP), CX
	MOVQ         out_base+48(FP), R8
	VPBROADCASTQ modP512<>(SB), ZP
	BROADCAST_SPLIT512(c1+8(FP), Z30, Z29)
	BROADCAST_SPLIT512(m+16(FP), Z26, Z25)
	VPBROADCASTQ c0+0(FP), Z24

keyloop:
	VMOVDQU64 (DI), Z0
	REDUCE512(Z0, Z1, Z2, K1)
	MODMULC512(Z1, Z30, Z29, Z2, Z3, Z4, Z5, K1)
	MODADD512(Z2, Z24, Z2, K1)
	VPSLLQ    $3, Z2, Z2
	MULHIC512(Z2, Z26, Z25, Z6, Z3, Z4, Z5)
	VMOVDQU64 Z6, (R8)

	ADDQ $64, DI
	ADDQ $64, R8
	SUBQ $8, CX
	JNZ  keyloop
	VZEROUPPER
	RET

// func bucket2IFMA(c0, c1, m uint64, xs []uint64, out []uint64)
// Same contract as bucket2AVX512; IFMA52 flavor.
TEXT ·bucket2IFMA(SB), NOSPLIT, $0-72
	MOVQ         xs_base+24(FP), DI
	MOVQ         xs_len+32(FP), CX
	MOVQ         out_base+48(FP), R8
	VPBROADCASTQ modP512<>(SB), ZP
	VPBROADCASTQ mask52v<>(SB), Z30
	BROADCAST_SPLIT52(c1+8(FP), Z29, Z28, Z30)
	BROADCAST_SPLIT512(m+16(FP), Z25, Z24)
	VPBROADCASTQ c0+0(FP), Z23

keyloop:
	VMOVDQU64 (DI), Z0
	REDUCE512(Z0, Z1, Z2, K1)
	VPANDQ    Z30, Z1, Z9
	VPSRLQ    $52, Z1, Z10
	MODMUL512I(Z9, Z10, Z29, Z28, Z4, Z5, Z6, Z7, K1)
	MODADD512(Z4, Z23, Z4, K1)
	VPSLLQ    $3, Z4, Z4
	MULHIC512(Z4, Z25, Z24, Z8, Z5, Z6, Z7)
	VMOVDQU64 Z8, (R8)

	ADDQ $64, DI
	ADDQ $64, R8
	SUBQ $8, CX
	JNZ  keyloop
	VZEROUPPER
	RET

// func scatterAddF64AVX512(cells []float64, idx []uint64, del []float64)
// cells[idx[i]] += del[i] for i ascending; len(idx) > 0 and %8 == 0, every
// idx < len(cells). Groups of eight run gather/add/scatter; VPCONFLICTQ
// routes any group with an intra-group duplicate through the in-order
// scalar lanes, so per-cell addition order is exactly batch order.
TEXT ·scatterAddF64AVX512(SB), NOSPLIT, $0-72
	MOVQ cells_base+0(FP), SI
	MOVQ idx_base+24(FP), DI
	MOVQ idx_len+32(FP), CX
	MOVQ del_base+48(FP), R8

grouploop:
	VMOVDQU64   (DI), Z0
	VPCONFLICTQ Z0, Z1
	VPTESTMQ    Z1, Z1, K1
	KMOVB       K1, AX
	TESTB       AX, AX
	JNZ         conflict

	KXNORB      K0, K0, K1               // K1 = all lanes
	VGATHERQPD  (SI)(Z0*8), K1, Z2
	VMOVDQU64   (R8), Z3
	VADDPD      Z3, Z2, Z2               // old + del, old first (NaN order)
	KXNORB      K0, K0, K1
	VSCATTERQPD Z2, K1, (SI)(Z0*8)
	JMP         next

conflict:
	// In-order scalar fold of the eight lanes (duplicates stay ordered).
	XORQ R10, R10

scalarlane:
	MOVQ   (DI)(R10*8), R11
	VMOVSD (SI)(R11*8), X2
	VADDSD (R8)(R10*8), X2, X2
	VMOVSD X2, (SI)(R11*8)
	INCQ   R10
	CMPQ   R10, $8
	JLT    scalarlane

next:
	ADDQ $64, DI
	ADDQ $64, R8
	SUBQ $8, CX
	JNZ  grouploop
	VZEROUPPER
	RET

// func scatterAddI64AVX512(cells []int64, idx []uint64, del []int64)
// Integer twin of scatterAddF64AVX512, same contract.
TEXT ·scatterAddI64AVX512(SB), NOSPLIT, $0-72
	MOVQ cells_base+0(FP), SI
	MOVQ idx_base+24(FP), DI
	MOVQ idx_len+32(FP), CX
	MOVQ del_base+48(FP), R8

grouploop:
	VMOVDQU64   (DI), Z0
	VPCONFLICTQ Z0, Z1
	VPTESTMQ    Z1, Z1, K1
	KMOVB       K1, AX
	TESTB       AX, AX
	JNZ         conflict

	KXNORB      K0, K0, K1
	VPGATHERQQ  (SI)(Z0*8), K1, Z2
	VMOVDQU64   (R8), Z3
	VPADDQ      Z3, Z2, Z2
	KXNORB      K0, K0, K1
	VPSCATTERQQ Z2, K1, (SI)(Z0*8)
	JMP         next

conflict:
	XORQ R10, R10

scalarlane:
	MOVQ (DI)(R10*8), R11
	MOVQ (SI)(R11*8), R12
	ADDQ (R8)(R10*8), R12
	MOVQ R12, (SI)(R11*8)
	INCQ R10
	CMPQ R10, $8
	JLT  scalarlane

next:
	ADDQ $64, DI
	ADDQ $64, R8
	SUBQ $8, CX
	JNZ  grouploop
	VZEROUPPER
	RET
