// NEON kernel over GF(2^61-1), two 64-bit lanes per vector register.
//
// Only the add-dominated finite-difference scan is genuinely vectorized on
// arm64: AdvSIMD has no 64-bit lane multiply, and assembling 61-bit modular
// products from 32x32 UMULL limbs loses to MUL+UMULH. The multiply-heavy
// primitives (polyEvalBatch, bucketSign2, bucket2) are instead
// hand-scheduled scalar assembly that processes two keys per iteration as
// two fully independent MUL/UMULH limb chains, instruction-interleaved so
// the second chain's multiplies issue in the first chain's latency shadow —
// parallelism the compiled one-key-at-a-time reference never exposes. Same
// bit-identity contract as every other variant: all arithmetic is exact
// mod-p algebra on canonical representatives.
//
// Modular add without a 64-bit unsigned lane compare (VCMHS is not in the
// Go assembler): s = a+b < 2^62, t = s-p wraps negative exactly when s < p,
// so the lane's top bit selects — mask = 0-(t>>>63) is all-ones where s < p,
// and the result is t + (mask & p).
//
// Scalar-chain building blocks (p = 2^61-1 in a register):
//   reduce:  e = (x&p) + (x>>61); if e >= p { e -= p }      (ADD x>>61 fused)
//   modmul:  lo,hi = MUL,UMULH; v = (lo&p) + (lo>>61) + hi<<3 < 2^62,
//            then one more fold + conditional subtract -> canonical
//   condsub: SUBS sets carry exactly when the subtraction does not borrow,
//            CSEL CS picks the reduced value

#include "textflag.h"

// func fdScanNEON(d []uint64, out []uint64)
// Per step: emit d[0], then d[k] += d[k+1] over old values, 2-lane chunks
// left to right (each chunk's overlapped loads happen before its store).
// len(d) >= 3, len(out) >= 1.
TEXT ·fdScanNEON(SB), NOSPLIT, $0-48
	MOVD d_base+0(FP), R0
	MOVD d_len+8(FP), R1
	MOVD out_base+24(FP), R2
	MOVD out_len+32(FP), R3
	MOVD $0x1FFFFFFFFFFFFFFF, R4
	VDUP R4, V30.D2
	VEOR V31.B16, V31.B16, V31.B16
	SUB  $1, R1, R1              // entries updated per step
	AND  $-2, R1, R5             // vectorized prefix length (>= 2 here)

steploop:
	MOVD (R0), R6
	MOVD R6, (R2)

	MOVD $0, R7                  // k
vecloop:
	ADD   R7<<3, R0, R8          // &d[k]
	ADD   $8, R8, R9             // &d[k+1]
	VLD1  (R8), [V0.D2]
	VLD1  (R9), [V1.D2]
	VADD  V1.D2, V0.D2, V2.D2    // s
	VSUB  V30.D2, V2.D2, V3.D2   // t = s - p
	VUSHR $63, V3.D2, V4.D2
	VSUB  V4.D2, V31.D2, V4.D2   // all-ones where s < p
	VAND  V30.B16, V4.B16, V4.B16
	VADD  V4.D2, V3.D2, V2.D2    // s < p ? s : s-p
	VST1  [V2.D2], (R8)
	ADD   $2, R7
	CMP   R5, R7
	BLT   vecloop

	CMP R1, R7
	BGE stepdone
tailloop:
	ADD  R7<<3, R0, R8
	MOVD (R8), R9
	MOVD 8(R8), R10
	ADD  R10, R9, R9
	SUBS R4, R9, R10
	CSEL CS, R10, R9, R9
	MOVD R9, (R8)
	ADD  $1, R7
	CMP  R1, R7
	BLT  tailloop

stepdone:
	ADD  $8, R2
	SUB  $1, R3
	CBNZ R3, steploop
	RET

// func polyEvalBatchNEON(coef []uint64, xs []uint64, out []uint64)
// Transposed Horner, two independent accumulator chains per iteration.
// len(coef) >= 1, len(xs) > 0 and len(xs)%2 == 0.
TEXT ·polyEvalBatchNEON(SB), NOSPLIT, $0-72
	MOVD coef_base+0(FP), R0
	MOVD coef_len+8(FP), R1
	MOVD xs_base+24(FP), R2
	MOVD xs_len+32(FP), R3
	MOVD out_base+48(FP), R5
	MOVD $0x1FFFFFFFFFFFFFFF, R4

pairloop:
	LDP (R2), (R11, R16)
	// eA/eB = reduce(x)
	AND  R4, R11, R12
	AND  R4, R16, R17
	ADD  R11>>61, R12, R12
	ADD  R16>>61, R17, R17
	SUBS R4, R12, R13
	CSEL CS, R13, R12, R12
	SUBS R4, R17, R19
	CSEL CS, R19, R17, R17
	// acc = coef[k-1], both chains
	SUB  $1, R1, R6
	MOVD (R0)(R6<<3), R15
	MOVD R15, R21
	CBZ  R6, store

coefloop:
	SUB   $1, R6, R6
	MOVD  (R0)(R6<<3), R10
	// acc = acc*e mod p, chains interleaved
	MUL   R12, R15, R13
	MUL   R17, R21, R19
	UMULH R12, R15, R14
	UMULH R17, R21, R20
	AND   R4, R13, R15
	AND   R4, R19, R21
	ADD   R13>>61, R15, R15
	ADD   R19>>61, R21, R21
	ADD   R14<<3, R15, R15
	ADD   R20<<3, R21, R21
	AND   R4, R15, R13
	AND   R4, R21, R19
	ADD   R15>>61, R13, R13
	ADD   R21>>61, R19, R19
	SUBS  R4, R13, R14
	CSEL  CS, R14, R13, R15
	SUBS  R4, R19, R20
	CSEL  CS, R20, R19, R21
	// acc += coef[j] mod p
	ADD   R10, R15, R15
	ADD   R10, R21, R21
	SUBS  R4, R15, R13
	CSEL  CS, R13, R15, R15
	SUBS  R4, R21, R19
	CSEL  CS, R19, R21, R21
	CBNZ  R6, coefloop

store:
	STP  (R15, R21), (R5)
	ADD  $16, R2
	ADD  $16, R5
	SUBS $2, R3, R3
	BNE  pairloop
	RET

// func bucketSign2NEON(h0, h1, g0, g1, m uint64, xs []uint64, buckets []uint64, signs []float64)
// Fused pairwise count-sketch row kernel, two keys per iteration.
// len(xs) > 0 and len(xs)%2 == 0.
TEXT ·bucketSign2NEON(SB), NOSPLIT, $0-112
	MOVD h0+0(FP), R5
	MOVD h1+8(FP), R6
	MOVD g0+16(FP), R7
	MOVD g1+24(FP), R8
	MOVD m+32(FP), R9
	MOVD xs_base+40(FP), R0
	MOVD xs_len+48(FP), R1
	MOVD buckets_base+64(FP), R2
	MOVD signs_base+88(FP), R3
	MOVD $0x1FFFFFFFFFFFFFFF, R4
	MOVD $0x3FF0000000000000, R10

pairloop:
	LDP (R0), (R11, R16)
	// eA/eB = reduce(x)
	AND  R4, R11, R12
	AND  R4, R16, R17
	ADD  R11>>61, R12, R12
	ADD  R16>>61, R17, R17
	SUBS R4, R12, R13
	CSEL CS, R13, R12, R12
	SUBS R4, R17, R19
	CSEL CS, R19, R17, R17

	// Bucket chain: Lemire(h1*e + h0, m).
	MUL   R6, R12, R13
	MUL   R6, R17, R19
	UMULH R6, R12, R14
	UMULH R6, R17, R20
	AND   R4, R13, R15
	AND   R4, R19, R21
	ADD   R13>>61, R15, R15
	ADD   R19>>61, R21, R21
	ADD   R14<<3, R15, R15
	ADD   R20<<3, R21, R21
	AND   R4, R15, R13
	AND   R4, R21, R19
	ADD   R15>>61, R13, R13
	ADD   R21>>61, R19, R19
	SUBS  R4, R13, R14
	CSEL  CS, R14, R13, R15
	SUBS  R4, R19, R20
	CSEL  CS, R20, R19, R21
	ADD   R5, R15, R15
	ADD   R5, R21, R21
	SUBS  R4, R15, R13
	CSEL  CS, R13, R15, R15
	SUBS  R4, R21, R19
	CSEL  CS, R19, R21, R21
	LSL   $3, R15, R13
	LSL   $3, R21, R19
	UMULH R9, R13, R14
	UMULH R9, R19, R20
	STP   (R14, R20), (R2)

	// Sign chain: ±1.0 from the low bit of g1*e + g0.
	MUL   R8, R12, R13
	MUL   R8, R17, R19
	UMULH R8, R12, R14
	UMULH R8, R17, R20
	AND   R4, R13, R15
	AND   R4, R19, R21
	ADD   R13>>61, R15, R15
	ADD   R19>>61, R21, R21
	ADD   R14<<3, R15, R15
	ADD   R20<<3, R21, R21
	AND   R4, R15, R13
	AND   R4, R21, R19
	ADD   R15>>61, R13, R13
	ADD   R21>>61, R19, R19
	SUBS  R4, R13, R14
	CSEL  CS, R14, R13, R15
	SUBS  R4, R19, R20
	CSEL  CS, R20, R19, R21
	ADD   R7, R15, R15
	ADD   R7, R21, R21
	SUBS  R4, R15, R13
	CSEL  CS, R13, R15, R15
	SUBS  R4, R21, R19
	CSEL  CS, R19, R21, R21
	AND   $1, R15, R13
	AND   $1, R21, R19
	SUB   $1, R13, R13
	SUB   $1, R19, R19
	EOR   R13<<63, R10, R13
	EOR   R19<<63, R10, R19
	STP   (R13, R19), (R3)

	ADD  $16, R0
	ADD  $16, R2
	ADD  $16, R3
	SUBS $2, R1, R1
	BNE  pairloop
	RET

// func bucket2NEON(c0, c1, m uint64, xs []uint64, out []uint64)
// Pairwise count-min row kernel, two keys per iteration.
// len(xs) > 0 and len(xs)%2 == 0.
TEXT ·bucket2NEON(SB), NOSPLIT, $0-72
	MOVD c0+0(FP), R5
	MOVD c1+8(FP), R6
	MOVD m+16(FP), R9
	MOVD xs_base+24(FP), R0
	MOVD xs_len+32(FP), R1
	MOVD out_base+48(FP), R2
	MOVD $0x1FFFFFFFFFFFFFFF, R4

pairloop:
	LDP (R0), (R11, R16)
	// eA/eB = reduce(x)
	AND  R4, R11, R12
	AND  R4, R16, R17
	ADD  R11>>61, R12, R12
	ADD  R16>>61, R17, R17
	SUBS R4, R12, R13
	CSEL CS, R13, R12, R12
	SUBS R4, R17, R19
	CSEL CS, R19, R17, R17

	// Lemire(c1*e + c0, m), chains interleaved.
	MUL   R6, R12, R13
	MUL   R6, R17, R19
	UMULH R6, R12, R14
	UMULH R6, R17, R20
	AND   R4, R13, R15
	AND   R4, R19, R21
	ADD   R13>>61, R15, R15
	ADD   R19>>61, R21, R21
	ADD   R14<<3, R15, R15
	ADD   R20<<3, R21, R21
	AND   R4, R15, R13
	AND   R4, R21, R19
	ADD   R15>>61, R13, R13
	ADD   R21>>61, R19, R19
	SUBS  R4, R13, R14
	CSEL  CS, R14, R13, R15
	SUBS  R4, R19, R20
	CSEL  CS, R20, R19, R21
	ADD   R5, R15, R15
	ADD   R5, R21, R21
	SUBS  R4, R15, R13
	CSEL  CS, R13, R15, R15
	SUBS  R4, R21, R19
	CSEL  CS, R19, R21, R21
	LSL   $3, R15, R13
	LSL   $3, R21, R19
	UMULH R9, R13, R14
	UMULH R9, R19, R20
	STP   (R14, R20), (R2)

	ADD  $16, R0
	ADD  $16, R2
	SUBS $2, R1, R1
	BNE  pairloop
	RET
