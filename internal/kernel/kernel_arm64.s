// NEON kernel over GF(2^61-1), two 64-bit lanes per vector register.
//
// Only the add-dominated finite-difference scan is vectorized on arm64:
// AdvSIMD has no 64-bit lane multiply, and assembling 61-bit modular
// products from 32x32 UMULL limbs loses to the scalar path, which already
// compiles to MUL+UMULH. The multiply-heavy primitives therefore stay on
// the scalar reference (see neonTable in cpu_arm64.go).
//
// Modular add without a 64-bit unsigned lane compare (VCMHS is not in the
// Go assembler): s = a+b < 2^62, t = s-p wraps negative exactly when s < p,
// so the lane's top bit selects — mask = 0-(t>>>63) is all-ones where s < p,
// and the result is t + (mask & p).

#include "textflag.h"

// func fdScanNEON(d []uint64, out []uint64)
// Per step: emit d[0], then d[k] += d[k+1] over old values, 2-lane chunks
// left to right (each chunk's overlapped loads happen before its store).
// len(d) >= 3, len(out) >= 1.
TEXT ·fdScanNEON(SB), NOSPLIT, $0-48
	MOVD d_base+0(FP), R0
	MOVD d_len+8(FP), R1
	MOVD out_base+24(FP), R2
	MOVD out_len+32(FP), R3
	MOVD $0x1FFFFFFFFFFFFFFF, R4
	VDUP R4, V30.D2
	VEOR V31.B16, V31.B16, V31.B16
	SUB  $1, R1, R1              // entries updated per step
	AND  $-2, R1, R5             // vectorized prefix length (>= 2 here)

steploop:
	MOVD (R0), R6
	MOVD R6, (R2)

	MOVD $0, R7                  // k
vecloop:
	ADD   R7<<3, R0, R8          // &d[k]
	ADD   $8, R8, R9             // &d[k+1]
	VLD1  (R8), [V0.D2]
	VLD1  (R9), [V1.D2]
	VADD  V1.D2, V0.D2, V2.D2    // s
	VSUB  V30.D2, V2.D2, V3.D2   // t = s - p
	VUSHR $63, V3.D2, V4.D2
	VSUB  V4.D2, V31.D2, V4.D2   // all-ones where s < p
	VAND  V30.B16, V4.B16, V4.B16
	VADD  V4.D2, V3.D2, V2.D2    // s < p ? s : s-p
	VST1  [V2.D2], (R8)
	ADD   $2, R7
	CMP   R5, R7
	BLT   vecloop

	CMP R1, R7
	BGE stepdone
tailloop:
	ADD  R7<<3, R0, R8
	MOVD (R8), R9
	MOVD 8(R8), R10
	ADD  R10, R9, R9
	SUBS R4, R9, R10
	CSEL CS, R10, R9, R9
	MOVD R9, (R8)
	ADD  $1, R7
	CMP  R1, R7
	BLT  tailloop

stepdone:
	ADD  $8, R2
	SUB  $1, R3
	CBNZ R3, steploop
	RET
