// Package norm implements the streaming Lp norm estimators of Lemma 2: for
// any p in (0,2] a linear sketch with l = O(log n) counters from which a
// value r with ||x||_p <= r <= 2||x||_p can be computed with high
// probability.
//
// Two estimators are provided:
//
//   - AMS (tug-of-war, Alon-Matias-Szegedy) for p = 2: counters
//     c_j = sum_i s_j(i) x_i with 4-wise independent signs; median-of-means
//     of c_j^2 concentrates to ||x||_2^2.
//   - Indyk's p-stable sketch for p in (0,2]: counters y_j = sum_i a_ji x_i
//     with p-stable a_ji; median_j |y_j| / median(|Stable_p|) concentrates to
//     ||x||_p.
//
// The p-stable variates are produced by the Chambers-Mallows-Stuck transform
// from two uniforms derived k-wise independently from (row, index) — the
// standard realization of the sketch Lemma 2 cites (Kane-Nelson-Woodruff).
// The scale constant median(|Stable_p|) has no closed form for general p; we
// calibrate it once per p by a fixed-seed Monte-Carlo quantile (documented
// substitution #3 in DESIGN.md).
//
// Both sketches are linear, so callers may estimate ||x - v||, for a sparse v
// they know explicitly, by subtracting the sketch of v — exactly how the
// recovery stage of Figure 1 estimates s ~ ||z - zhat||_2 from L'(z)-L'(zhat).
package norm

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
	"sync"

	"repro/internal/codec"
	"repro/internal/hash"
	"repro/internal/stream"
)

// Estimator is the common interface of the two norm sketches.
type Estimator interface {
	stream.BatchSink
	AddFloat(i uint64, delta float64)
	// AddFloatBatch applies indices[t] += deltas[t] for all t through the
	// counter-major fast path; equivalent to repeated AddFloat calls.
	AddFloatBatch(indices []uint64, deltas []float64)
	// Estimate returns the norm estimate after subtracting the explicit
	// sparse vector `subtract` (pass nil to estimate ||x|| itself).
	Estimate(subtract map[uint64]float64) float64
	// UpperEstimate returns r calibrated so that ||x||_p <= r <= 2||x||_p
	// holds with high probability (Lemma 2's interface).
	UpperEstimate(subtract map[uint64]float64) float64
	// Merge adds another estimator's counters (sketch linearity); it errors
	// unless other is a same-seed replica of the same concrete type.
	Merge(other Estimator) error
	SpaceBits() int64
	// StateBits counts only the counters, excluding seeds — the message
	// size in a public-coin protocol.
	StateBits() int64
	// AppendState writes the counters into a codec encoder; RestoreState
	// replaces them from one (shape and seeds stay with the receiver).
	AppendState(e *codec.Encoder)
	RestoreState(d *codec.Decoder)
}

// ---------------------------------------------------------------------------
// AMS / tug-of-war L2 sketch
// ---------------------------------------------------------------------------

// AMS is the L2 estimator. Counters are split into groups; the estimate is
// the median over groups of the mean of squared counters in the group.
type AMS struct {
	groups   int
	perGroup int
	signs    *hash.FlatFamily // one 4-wise sign row per counter
	counters []float64

	// Batch scratch (key/delta views of the batch, per-counter kernel signs),
	// grown on demand: steady-state batched calls allocate nothing.
	scratchIdx []uint64
	scratchDel []float64
	scratchSgn []float64
}

// NewAMS creates an AMS sketch with the given number of groups (median width,
// Theta(log n) for high probability) and counters per group (mean width;
// 6 per group already gives variance comfortably below the factor-2 band).
func NewAMS(groups, perGroup int, r *rand.Rand) *AMS {
	if groups < 1 {
		groups = 1
	}
	if perGroup < 1 {
		perGroup = 1
	}
	n := groups * perGroup
	return &AMS{
		groups:   groups,
		perGroup: perGroup,
		signs:    hash.NewFlatFamily(n, 4, r),
		counters: make([]float64, n),
	}
}

// AddFloat applies x_i += delta.
func (a *AMS) AddFloat(i uint64, delta float64) {
	for j := range a.counters {
		a.counters[j] += float64(a.signs.Sign(j, i)) * delta
	}
}

// growSigns ensures the per-counter kernel output can hold n entries.
func (a *AMS) growSigns(n int) {
	if cap(a.scratchSgn) < n {
		a.scratchSgn = make([]float64, n)
	}
}

// AddFloatBatch applies the batch counter-major: each counter's 4-wise sign
// row runs once through the flat SignBatch kernel, then the deltas fold in.
// Per-counter accumulation order matches repeated AddFloat calls, so the
// resulting state is bit-identical; steady-state calls allocate nothing.
func (a *AMS) AddFloatBatch(indices []uint64, deltas []float64) {
	a.growSigns(len(indices))
	sgn := a.scratchSgn[:len(indices)]
	for j := range a.counters {
		a.signs.SignBatch(j, indices, sgn)
		cj := a.counters[j]
		for t, g := range sgn {
			cj += g * deltas[t]
		}
		a.counters[j] = cj
	}
}

// Process implements stream.Sink.
func (a *AMS) Process(u stream.Update) { a.AddFloat(uint64(u.Index), float64(u.Delta)) }

// ProcessBatch implements stream.BatchSink.
func (a *AMS) ProcessBatch(batch []stream.Update) {
	a.AddFloatBatch(stream.Keys(batch, &a.scratchIdx), stream.FloatDeltas(batch, &a.scratchDel))
}

// Merge adds another AMS sketch's counters; other must be a same-seed *AMS
// replica of identical shape.
func (a *AMS) Merge(other Estimator) error {
	if other == nil {
		return fmt.Errorf("norm: %w", codec.ErrNilMerge)
	}
	o, ok := other.(*AMS)
	if !ok {
		return fmt.Errorf("norm: merging AMS with %T: %w", other, codec.ErrConfigMismatch)
	}
	if o == nil {
		return fmt.Errorf("norm: %w", codec.ErrNilMerge)
	}
	if a.groups != o.groups || a.perGroup != o.perGroup {
		return fmt.Errorf("norm: merging AMS sketches of different shapes: %w", codec.ErrConfigMismatch)
	}
	if !a.signs.Equal(o.signs) {
		return fmt.Errorf("norm: %w", codec.ErrSeedMismatch)
	}
	for j := range a.counters {
		a.counters[j] += o.counters[j]
	}
	return nil
}

// Estimate returns the median-of-means estimate of ||x - subtract||_2.
func (a *AMS) Estimate(subtract map[uint64]float64) float64 {
	means := make([]float64, a.groups)
	for gi := 0; gi < a.groups; gi++ {
		var sum float64
		for k := 0; k < a.perGroup; k++ {
			j := gi*a.perGroup + k
			c := a.counters[j]
			for i, v := range subtract {
				c -= float64(a.signs.Sign(j, i)) * v
			}
			sum += c * c
		}
		means[gi] = sum / float64(a.perGroup)
	}
	sort.Float64s(means)
	var med float64
	if a.groups%2 == 1 {
		med = means[a.groups/2]
	} else {
		med = (means[a.groups/2-1] + means[a.groups/2]) / 2
	}
	return math.Sqrt(med)
}

// UpperEstimate returns 4/3 * Estimate: the median-of-means concentrates
// within ±25% of the truth w.h.p., so the scaled value lands in
// [||x||, 2||x||] w.h.p.
func (a *AMS) UpperEstimate(subtract map[uint64]float64) float64 {
	return a.Estimate(subtract) * 4 / 3
}

// SpaceBits reports counters plus 4-wise seeds.
func (a *AMS) SpaceBits() int64 {
	return int64(len(a.counters))*64 + a.signs.SpaceBits()
}

// StateBits reports counters only.
func (a *AMS) StateBits() int64 { return int64(len(a.counters)) * 64 }

// AppendState writes the counters into a codec encoder.
func (a *AMS) AppendState(e *codec.Encoder) {
	for _, c := range a.counters {
		e.F64(c)
	}
}

// RestoreState replaces the counters from a codec decoder.
func (a *AMS) RestoreState(d *codec.Decoder) {
	for j := range a.counters {
		a.counters[j] = d.F64()
	}
}

// ---------------------------------------------------------------------------
// Indyk p-stable sketch
// ---------------------------------------------------------------------------

// Stable is the Lp estimator for p in (0,2].
type Stable struct {
	p        float64
	counters []float64
	seeds    *hash.FlatFamily // one k-wise hash row per counter, yields 2 uniforms per key
	scale    float64          // median of |Stable_p|

	// Batch scratch (index/delta views of the batch, doubled key views
	// 2i/2i+1, per-counter uniforms), grown on demand: steady-state batched
	// calls allocate nothing.
	scratchIdx []uint64
	scratchDel []float64
	scratchK1  []uint64
	scratchK2  []uint64
	scratchU1  []float64
	scratchU2  []float64
}

// NewStable creates a p-stable sketch with the given number of counters
// (Theta(log n) for the high-probability factor-2 guarantee of Lemma 2).
func NewStable(p float64, counters int, r *rand.Rand) *Stable {
	if p <= 0 || p > 2 {
		panic("norm: stable sketch requires p in (0,2]")
	}
	if counters < 1 {
		counters = 1
	}
	return &Stable{
		p:        p,
		counters: make([]float64, counters),
		seeds:    hash.NewFlatFamily(counters, 8, r),
		scale:    MedianAbsStable(p),
	}
}

// stableAt deterministically produces the p-stable coefficient a_ji for
// counter j and coordinate i via the CMS transform of two uniforms derived
// from the row's hash.
func (s *Stable) stableAt(j int, i uint64) float64 {
	// Two (almost-)uniforms from disjoint key spaces of the same hash.
	u1 := s.seeds.Float64(j, 2*i)
	u2 := s.seeds.Float64(j, 2*i+1)
	return cmsStable(s.p, u1, u2)
}

// cmsStable maps two independent uniforms in (0,1] to a standard symmetric
// p-stable variate by the Chambers-Mallows-Stuck transform.
func cmsStable(p, u1, u2 float64) float64 {
	theta := math.Pi * (u1 - 0.5) // uniform in (-pi/2, pi/2)
	w := -math.Log(u2)            // exponential(1), u2 in (0,1] so w >= 0
	if w == 0 {
		w = 1e-300
	}
	if p == 1 {
		return math.Tan(theta)
	}
	return math.Sin(p*theta) / math.Pow(math.Cos(theta), 1/p) *
		math.Pow(math.Cos(theta*(1-p))/w, (1-p)/p)
}

// AddFloat applies x_i += delta.
func (s *Stable) AddFloat(i uint64, delta float64) {
	for j := range s.counters {
		s.counters[j] += s.stableAt(j, i) * delta
	}
}

// growKeys ensures the doubled-key and uniform scratch can hold n entries and
// fills the key views from indices (2i and 2i+1 — the disjoint key spaces of
// stableAt).
func (s *Stable) growKeys(indices []uint64) {
	n := len(indices)
	if cap(s.scratchK1) < n {
		s.scratchK1 = make([]uint64, n)
		s.scratchK2 = make([]uint64, n)
		s.scratchU1 = make([]float64, n)
		s.scratchU2 = make([]float64, n)
	}
	k1, k2 := s.scratchK1[:n], s.scratchK2[:n]
	for t, i := range indices {
		k1[t] = 2 * i
		k2[t] = 2*i + 1
	}
}

// AddFloatBatch applies the batch counter-major: each counter's 8-wise row
// produces both CMS uniforms for the whole batch through the flat
// Float64Batch kernel, then the transform and deltas fold in. State is
// bit-identical to repeated AddFloat calls; steady-state calls allocate
// nothing.
func (s *Stable) AddFloatBatch(indices []uint64, deltas []float64) {
	s.growKeys(indices)
	n := len(indices)
	k1, k2 := s.scratchK1[:n], s.scratchK2[:n]
	u1, u2 := s.scratchU1[:n], s.scratchU2[:n]
	for j := range s.counters {
		s.seeds.Float64Batch(j, k1, u1)
		s.seeds.Float64Batch(j, k2, u2)
		cj := s.counters[j]
		for t := range u1 {
			cj += cmsStable(s.p, u1[t], u2[t]) * deltas[t]
		}
		s.counters[j] = cj
	}
}

// Process implements stream.Sink.
func (s *Stable) Process(u stream.Update) { s.AddFloat(uint64(u.Index), float64(u.Delta)) }

// ProcessBatch implements stream.BatchSink.
func (s *Stable) ProcessBatch(batch []stream.Update) {
	s.AddFloatBatch(stream.Keys(batch, &s.scratchIdx), stream.FloatDeltas(batch, &s.scratchDel))
}

// Merge adds another p-stable sketch's counters; other must be a same-seed
// *Stable replica with the same p and shape.
func (s *Stable) Merge(other Estimator) error {
	if other == nil {
		return fmt.Errorf("norm: %w", codec.ErrNilMerge)
	}
	o, ok := other.(*Stable)
	if !ok {
		return fmt.Errorf("norm: merging Stable with %T: %w", other, codec.ErrConfigMismatch)
	}
	if o == nil {
		return fmt.Errorf("norm: %w", codec.ErrNilMerge)
	}
	if s.p != o.p || len(s.counters) != len(o.counters) {
		return fmt.Errorf("norm: merging Stable sketches of different shapes: %w", codec.ErrConfigMismatch)
	}
	if !s.seeds.Equal(o.seeds) {
		return fmt.Errorf("norm: %w", codec.ErrSeedMismatch)
	}
	for j := range s.counters {
		s.counters[j] += o.counters[j]
	}
	return nil
}

// Estimate returns median_j |y_j| / median(|Stable_p|), the classical Indyk
// estimator of ||x - subtract||_p.
func (s *Stable) Estimate(subtract map[uint64]float64) float64 {
	abs := make([]float64, len(s.counters))
	for j := range s.counters {
		c := s.counters[j]
		for i, v := range subtract {
			c -= s.stableAt(j, i) * v
		}
		abs[j] = math.Abs(c)
	}
	sort.Float64s(abs)
	n := len(abs)
	var med float64
	if n%2 == 1 {
		med = abs[n/2]
	} else {
		med = (abs[n/2-1] + abs[n/2]) / 2
	}
	return med / s.scale
}

// UpperEstimate returns 4/3 * Estimate, landing in [||x||_p, 2||x||_p] w.h.p.
// for Theta(log n) counters.
func (s *Stable) UpperEstimate(subtract map[uint64]float64) float64 {
	return s.Estimate(subtract) * 4 / 3
}

// SpaceBits reports counters plus seeds.
func (s *Stable) SpaceBits() int64 {
	return int64(len(s.counters))*64 + s.seeds.SpaceBits()
}

// StateBits reports counters only.
func (s *Stable) StateBits() int64 { return int64(len(s.counters)) * 64 }

// AppendState writes the counters into a codec encoder.
func (s *Stable) AppendState(e *codec.Encoder) {
	for _, c := range s.counters {
		e.F64(c)
	}
}

// RestoreState replaces the counters from a codec decoder.
func (s *Stable) RestoreState(d *codec.Decoder) {
	for j := range s.counters {
		s.counters[j] = d.F64()
	}
}

// ---------------------------------------------------------------------------
// Scale calibration
// ---------------------------------------------------------------------------

var (
	// medianMu guards medianCache: sketches may be constructed from many
	// goroutines at once (the sharded ingestion engine builds replicas
	// concurrently with live workers).
	medianMu    sync.Mutex
	medianCache = map[float64]float64{}
)

// MedianAbsStable returns the median of |X| for X standard symmetric
// p-stable, computed by a deterministic fixed-seed Monte-Carlo quantile and
// cached per p. For p = 1 (Cauchy) the exact value is tan(pi/4) = 1; for
// p = 2 the CMS output is N(0, 2), so the value is sqrt(2)*Phi^-1(3/4).
func MedianAbsStable(p float64) float64 {
	medianMu.Lock()
	defer medianMu.Unlock()
	if v, ok := medianCache[p]; ok {
		return v
	}
	if p == 1 {
		medianCache[p] = 1
		return 1
	}
	const samples = 1 << 18
	r := rand.New(rand.NewPCG(0xC0FFEE, uint64(math.Float64bits(p))))
	abs := make([]float64, samples)
	for i := range abs {
		a := r.Float64()
		b := r.Float64()
		if a == 0 {
			a = 0.5 / samples
		}
		if b == 0 {
			b = 0.5 / samples
		}
		abs[i] = math.Abs(cmsStable(p, a, b))
	}
	sort.Float64s(abs)
	v := abs[samples/2]
	medianCache[p] = v
	return v
}
