package norm

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/stream"
)

func TestAMSEstimateAccuracy(t *testing.T) {
	r := rand.New(rand.NewPCG(1, 1))
	const n = 500
	st := stream.RandomTurnstile(n, 3000, 20, r)
	truth := st.Apply(n)
	l2 := truth.NormP(2)
	ok := 0
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		a := NewAMS(9, 6, r)
		st.Feed(a)
		est := a.Estimate(nil)
		if est >= 0.75*l2 && est <= 1.33*l2 {
			ok++
		}
	}
	if ok < trials-3 {
		t.Errorf("AMS within ±25%% only %d/%d times (truth %.1f)", ok, trials, l2)
	}
}

func TestAMSUpperEstimateLemma2(t *testing.T) {
	// Lemma 2 interface: ||x||_2 <= r <= 2||x||_2 w.h.p.
	r := rand.New(rand.NewPCG(2, 2))
	const n = 300
	st := stream.ZipfSigned(n, 1.0, 10000, r)
	truth := st.Apply(n)
	l2 := truth.NormP(2)
	ok := 0
	const trials = 30
	for trial := 0; trial < trials; trial++ {
		a := NewAMS(11, 6, r)
		st.Feed(a)
		rEst := a.UpperEstimate(nil)
		if rEst >= l2 && rEst <= 2*l2 {
			ok++
		}
	}
	if ok < trials-4 {
		t.Errorf("Lemma 2 band hit only %d/%d times", ok, trials)
	}
}

func TestAMSSubtraction(t *testing.T) {
	// Estimating ||x - v||_2 by sketch linearity: plant a huge coordinate,
	// subtract it, the residual estimate must drop accordingly.
	r := rand.New(rand.NewPCG(3, 3))
	a := NewAMS(9, 6, r)
	for i := uint64(0); i < 100; i++ {
		a.AddFloat(i, 1)
	}
	a.AddFloat(7, 999)
	withHeavy := a.Estimate(nil)
	residual := a.Estimate(map[uint64]float64{7: 1000})
	if withHeavy < 500 {
		t.Fatalf("estimate with heavy coordinate too small: %g", withHeavy)
	}
	if residual > 30 {
		t.Fatalf("residual after subtraction too large: %g (want ~10)", residual)
	}
}

func TestAMSZeroVector(t *testing.T) {
	a := NewAMS(5, 4, rand.New(rand.NewPCG(4, 4)))
	if got := a.Estimate(nil); got != 0 {
		t.Fatalf("zero vector estimate = %g", got)
	}
}

func TestStableEstimateAcrossP(t *testing.T) {
	r := rand.New(rand.NewPCG(5, 5))
	const n = 400
	st := stream.ZipfSigned(n, 0.8, 1000, r)
	truth := st.Apply(n)
	// Smaller p needs more counters: the sample median of a very
	// heavy-tailed stable law disperses more (the paper's "large enough
	// constant factor" in l = O(log n) is p-dependent).
	counters := map[float64]int{0.5: 200, 1: 100, 1.5: 100, 2: 60}
	for _, p := range []float64{0.5, 1, 1.5, 2} {
		lp := truth.NormP(p)
		ok := 0
		const trials = 15
		for trial := 0; trial < trials; trial++ {
			s := NewStable(p, counters[p], r)
			st.Feed(s)
			est := s.Estimate(nil)
			if est >= 0.7*lp && est <= 1.4*lp {
				ok++
			}
		}
		if ok < trials-3 {
			t.Errorf("p=%.1f: estimate within ±~35%% only %d/%d times (truth %.1f)", p, ok, trials, lp)
		}
	}
}

func TestStableUpperEstimateLemma2(t *testing.T) {
	r := rand.New(rand.NewPCG(6, 6))
	const n = 300
	st := stream.RandomTurnstile(n, 1500, 10, r)
	truth := st.Apply(n)
	counters := map[float64]int{0.5: 200, 1: 100, 1.5: 100}
	for _, p := range []float64{0.5, 1, 1.5} {
		lp := truth.NormP(p)
		ok := 0
		const trials = 20
		for trial := 0; trial < trials; trial++ {
			s := NewStable(p, counters[p], r)
			st.Feed(s)
			rEst := s.UpperEstimate(nil)
			if rEst >= lp && rEst <= 2*lp {
				ok++
			}
		}
		if ok < trials-4 {
			t.Errorf("p=%.1f: Lemma 2 band hit only %d/%d times", p, ok, trials)
		}
	}
}

func TestStableSingleCoordinate(t *testing.T) {
	// For a single nonzero coordinate ||x||_p = |x| for every p; the
	// estimator must land near it.
	r := rand.New(rand.NewPCG(7, 7))
	for _, p := range []float64{0.5, 1, 2} {
		s := NewStable(p, 60, r)
		s.AddFloat(42, 1000)
		est := s.Estimate(nil)
		if est < 600 || est > 1600 {
			t.Errorf("p=%.1f: single-coordinate estimate %g far from 1000", p, est)
		}
	}
}

func TestStablePanicsOnBadP(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for p=0")
		}
	}()
	NewStable(0, 10, rand.New(rand.NewPCG(8, 8)))
}

func TestMedianAbsStableKnownValues(t *testing.T) {
	// p=1: Cauchy, median|X| = tan(pi/4) = 1 exactly.
	if got := MedianAbsStable(1); got != 1 {
		t.Errorf("median |Cauchy| = %g, want 1", got)
	}
	// p=2: CMS yields N(0,2); median |X| = sqrt(2) * 0.67449.
	want := math.Sqrt2 * 0.6744897501
	if got := MedianAbsStable(2); math.Abs(got-want) > 0.02 {
		t.Errorf("median |stable_2| = %g, want %.4f", got, want)
	}
	// Cache must return identical values.
	if MedianAbsStable(1.37) != MedianAbsStable(1.37) {
		t.Error("calibration not cached deterministically")
	}
}

func TestCMSStableCauchyShape(t *testing.T) {
	// For p=1 the transform reduces to tan(theta): check quartiles.
	if got := cmsStable(1, 0.75, 0.3); math.Abs(got-1) > 1e-9 {
		t.Errorf("cmsStable(1, .75, _) = %g, want tan(pi/4)=1", got)
	}
	if got := cmsStable(1, 0.5, 0.3); math.Abs(got) > 1e-9 {
		t.Errorf("cmsStable(1, .5, _) = %g, want 0", got)
	}
}

func TestEstimatorInterfaceCompliance(t *testing.T) {
	var _ Estimator = NewAMS(2, 2, rand.New(rand.NewPCG(9, 9)))
	var _ Estimator = NewStable(1, 2, rand.New(rand.NewPCG(9, 9)))
}

func TestSpaceBitsGrowth(t *testing.T) {
	r := rand.New(rand.NewPCG(10, 10))
	small := NewStable(1, 10, r)
	big := NewStable(1, 40, r)
	if big.SpaceBits() <= small.SpaceBits() {
		t.Error("space must grow with counter count")
	}
	a := NewAMS(4, 4, r)
	if a.SpaceBits() < 16*64 {
		t.Error("AMS space accounting too small")
	}
}

func BenchmarkStableAdd(b *testing.B) {
	s := NewStable(1, 30, rand.New(rand.NewPCG(1, 1)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.AddFloat(uint64(i), 1)
	}
}

func BenchmarkAMSAdd(b *testing.B) {
	a := NewAMS(9, 6, rand.New(rand.NewPCG(1, 1)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.AddFloat(uint64(i), 1)
	}
}

func TestMergeSameSeedMatchesSerial(t *testing.T) {
	st := stream.RandomTurnstile(200, 2000, 30, rand.New(rand.NewPCG(61, 62)))
	for _, tc := range []struct {
		name string
		mk   func(seed uint64) Estimator
	}{
		{"ams", func(seed uint64) Estimator { return NewAMS(7, 5, rand.New(rand.NewPCG(seed, seed+1))) }},
		{"stable", func(seed uint64) Estimator { return NewStable(1.2, 40, rand.New(rand.NewPCG(seed, seed+1))) }},
	} {
		a, b := tc.mk(63), tc.mk(63)
		st[:1000].Feed(a)
		st[1000:].Feed(b)
		if err := a.Merge(b); err != nil {
			t.Fatalf("%s: same-seed merge failed: %v", tc.name, err)
		}
		// The merged estimate must agree with a serial estimator up to float
		// addition reordering (counters are sums of the same terms).
		serial := tc.mk(63)
		st.Feed(serial)
		got, want := a.Estimate(nil), serial.Estimate(nil)
		if math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
			t.Fatalf("%s: merged estimate %v != serial %v", tc.name, got, want)
		}
		if err := a.Merge(tc.mk(64)); err == nil {
			t.Fatalf("%s: expected error merging differently seeded sketches", tc.name)
		}
	}
	// Cross-type merges are rejected.
	ams := NewAMS(7, 5, rand.New(rand.NewPCG(65, 66)))
	stb := NewStable(1.2, 40, rand.New(rand.NewPCG(65, 66)))
	if err := ams.Merge(stb); err == nil {
		t.Fatal("expected error merging AMS with Stable")
	}
}
