package norm

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// TestPropertyScaleEquivariance: norms are absolutely homogeneous; scaling
// every update by c scales the estimate by |c| exactly (the estimators are
// deterministic given their randomness).
func TestPropertyScaleEquivariance(t *testing.T) {
	f := func(seed uint64, raw []int16, cRaw int8) bool {
		c := float64(cRaw)
		if c == 0 {
			return true
		}
		const n = 32
		mkA := NewStable(1, 20, rand.New(rand.NewPCG(seed, 3)))
		mkB := NewStable(1, 20, rand.New(rand.NewPCG(seed, 3)))
		for k, v := range raw {
			if v == 0 {
				continue
			}
			mkA.AddFloat(uint64(k%n), float64(v))
			mkB.AddFloat(uint64(k%n), float64(v)*c)
		}
		a := mkA.Estimate(nil) * math.Abs(c)
		b := mkB.Estimate(nil)
		return math.Abs(a-b) <= 1e-6*(math.Abs(a)+math.Abs(b)+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyAMSSubtractionExact: subtracting the full explicit vector from
// the sketch estimate yields (near) zero — counter-level linearity.
func TestPropertyAMSSubtractionExact(t *testing.T) {
	f := func(seed uint64, raw []int16) bool {
		const n = 32
		a := NewAMS(5, 4, rand.New(rand.NewPCG(seed, 7)))
		total := map[uint64]float64{}
		for k, v := range raw {
			if v == 0 {
				continue
			}
			i := uint64(k % n)
			a.AddFloat(i, float64(v))
			total[i] += float64(v)
		}
		res := a.Estimate(total)
		return res < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyStableSubtractionExact: same for the p-stable sketch.
func TestPropertyStableSubtractionExact(t *testing.T) {
	f := func(seed uint64, raw []int16) bool {
		const n = 32
		s := NewStable(1.3, 15, rand.New(rand.NewPCG(seed, 11)))
		total := map[uint64]float64{}
		for k, v := range raw {
			if v == 0 {
				continue
			}
			i := uint64(k % n)
			s.AddFloat(i, float64(v))
			total[i] += float64(v)
		}
		return s.Estimate(total) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyUpperDominatesEstimate: UpperEstimate is always exactly 4/3 of
// Estimate, whatever the state.
func TestPropertyUpperDominatesEstimate(t *testing.T) {
	f := func(seed uint64, raw []int16) bool {
		const n = 16
		s := NewStable(0.7, 12, rand.New(rand.NewPCG(seed, 13)))
		for k, v := range raw {
			if v != 0 {
				s.AddFloat(uint64(k%n), float64(v))
			}
		}
		e, u := s.Estimate(nil), s.UpperEstimate(nil)
		return math.Abs(u-e*4/3) <= 1e-9*(u+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyCMSStableSymmetric: the CMS transform is symmetric in theta
// around u1 = 0.5 — cmsStable(p, 0.5+d, w) = -cmsStable(p, 0.5-d, w).
func TestPropertyCMSStableSymmetric(t *testing.T) {
	f := func(pRaw, dRaw, wRaw uint8) bool {
		p := 0.2 + 1.8*float64(pRaw)/256
		d := 0.49 * float64(dRaw) / 256
		w := (float64(wRaw) + 1) / 257
		a := cmsStable(p, 0.5+d, w)
		b := cmsStable(p, 0.5-d, w)
		return math.Abs(a+b) <= 1e-9*(math.Abs(a)+math.Abs(b))+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
