package retry

import (
	"context"
	"errors"
	"testing"
	"time"
)

// fast is a policy that never actually sleeps and jitters deterministically.
func fast(slept *[]time.Duration) Policy {
	return Policy{
		Rand: func() float64 { return 0.5 }, // jitter factor exactly 1.0
		Sleep: func(_ context.Context, d time.Duration) error {
			if slept != nil {
				*slept = append(*slept, d)
			}
			return nil
		},
	}
}

func TestDoSucceedsFirstTry(t *testing.T) {
	calls := 0
	if err := Do(context.Background(), fast(nil), func() error { calls++; return nil }); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
}

func TestDoRetriesThenSucceeds(t *testing.T) {
	var slept []time.Duration
	calls := 0
	err := Do(context.Background(), fast(&slept), func() error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
	// Defaults with unit jitter factor: 1ms then 2ms.
	want := []time.Duration{time.Millisecond, 2 * time.Millisecond}
	if len(slept) != len(want) || slept[0] != want[0] || slept[1] != want[1] {
		t.Fatalf("backoff schedule %v, want %v", slept, want)
	}
}

func TestDoExhaustsAttemptsAndWrapsLastError(t *testing.T) {
	sentinel := errors.New("still broken")
	calls := 0
	err := Do(context.Background(), fast(nil), func() error { calls++; return sentinel })
	if calls != 4 {
		t.Fatalf("calls = %d, want default 4 attempts", calls)
	}
	if !errors.Is(err, sentinel) {
		t.Fatalf("error %v does not wrap the last failure", err)
	}
}

func TestDoStopsOnPermanent(t *testing.T) {
	sentinel := errors.New("corrupt")
	calls := 0
	err := Do(context.Background(), fast(nil), func() error {
		calls++
		return Permanent(sentinel)
	})
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (permanent errors must not retry)", calls)
	}
	if !errors.Is(err, sentinel) {
		t.Fatalf("error %v lost the permanent cause", err)
	}
	var perm *permanentError
	if errors.As(err, &perm) {
		t.Fatal("the permanent marker must be unwrapped before returning")
	}
}

func TestPermanentNil(t *testing.T) {
	if Permanent(nil) != nil {
		t.Fatal("Permanent(nil) must stay nil")
	}
}

func TestDoStopsOnContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	sentinel := errors.New("transient")
	calls := 0
	err := Do(ctx, Policy{Sleep: sleepCtx}, func() error {
		calls++
		cancel()
		return sentinel
	})
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (cancel must stop the loop)", calls)
	}
	if !errors.Is(err, sentinel) {
		t.Fatalf("error %v does not wrap the last failure", err)
	}
}

func TestDelayCapped(t *testing.T) {
	p := Policy{Base: time.Millisecond, Cap: 4 * time.Millisecond, Jitter: -1}.withDefaults()
	if d := p.delay(10); d != 4*time.Millisecond {
		t.Fatalf("delay(10) = %v, want the 4ms cap", d)
	}
}
