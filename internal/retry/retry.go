// Package retry implements capped, jittered exponential backoff for the
// transient failures of the durability layer: checkpoint-store I/O
// (internal/checkpoint) and the file imports of cmd/workload. The policy is
// deliberately small — attempts, base, cap, jitter — because every caller in
// this repository wants the same shape: try a handful of times with growing
// pauses, stop immediately on context cancellation or a permanent error, and
// report the last failure with the attempt count attached.
package retry

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"time"
)

// Policy tunes one retry loop. The zero value selects the defaults: 4
// attempts, 1ms base delay doubling per attempt, capped at 250ms, with 50%
// jitter.
type Policy struct {
	// Attempts is the total number of tries, including the first (default 4;
	// values below 1 mean the default).
	Attempts int
	// Base is the delay before the second attempt; it doubles per attempt
	// (default 1ms).
	Base time.Duration
	// Cap bounds the grown delay (default 250ms).
	Cap time.Duration
	// Jitter is the fraction of each delay that is randomized — delay is
	// drawn uniformly from [d·(1−Jitter/2), d·(1+Jitter/2)] — so a fleet of
	// retriers does not thundering-herd a recovering disk or peer (default
	// 0.5; set negative for none).
	Jitter float64
	// Rand supplies the jitter draw in [0,1); nil uses math/rand/v2. Tests
	// inject a deterministic source here.
	Rand func() float64
	// Sleep replaces the inter-attempt wait; nil uses a context-aware timer
	// sleep. Tests inject a recorder here.
	Sleep func(context.Context, time.Duration) error
}

func (p Policy) withDefaults() Policy {
	if p.Attempts < 1 {
		p.Attempts = 4
	}
	if p.Base <= 0 {
		p.Base = time.Millisecond
	}
	if p.Cap <= 0 {
		p.Cap = 250 * time.Millisecond
	}
	if p.Jitter == 0 {
		p.Jitter = 0.5
	}
	if p.Rand == nil {
		p.Rand = rand.Float64
	}
	if p.Sleep == nil {
		p.Sleep = sleepCtx
	}
	return p
}

// permanentError marks a failure that retrying cannot fix.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent wraps err so Do stops immediately instead of burning the
// remaining attempts — for failures retrying cannot fix (corrupt bytes, a
// closed store, invalid arguments). Do unwraps the marker before returning,
// so callers never see it.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// Do runs op up to p.Attempts times, sleeping the backoff schedule between
// failures. It stops early when op succeeds, returns a Permanent-wrapped
// error, or ctx is done (the context error is attached). The returned error
// wraps op's last failure, so errors.Is/As dispatch through it.
func Do(ctx context.Context, p Policy, op func() error) error {
	p = p.withDefaults()
	var last error
	for attempt := 0; attempt < p.Attempts; attempt++ {
		if attempt > 0 {
			if err := p.Sleep(ctx, p.delay(attempt)); err != nil {
				return fmt.Errorf("retry: giving up after %d attempts: %w (wait: %v)", attempt, last, err)
			}
		}
		err := op()
		if err == nil {
			return nil
		}
		var perm *permanentError
		if errors.As(err, &perm) {
			return perm.err
		}
		last = err
		if ctx != nil && ctx.Err() != nil {
			return fmt.Errorf("retry: giving up after %d attempts: %w (context: %v)", attempt+1, last, ctx.Err())
		}
	}
	if p.Attempts == 1 {
		return last
	}
	return fmt.Errorf("retry: giving up after %d attempts: %w", p.Attempts, last)
}

// delay is the backoff before the given attempt (attempt ≥ 1): Base·2^(a−1)
// capped at Cap, jittered.
func (p Policy) delay(attempt int) time.Duration {
	d := p.Base
	for i := 1; i < attempt && d < p.Cap; i++ {
		d *= 2
	}
	if d > p.Cap {
		d = p.Cap
	}
	if p.Jitter > 0 {
		f := 1 - p.Jitter/2 + p.Jitter*p.Rand()
		d = time.Duration(float64(d) * f)
	}
	if d < 0 {
		d = 0
	}
	return d
}

// sleepCtx waits d or until ctx is done, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if ctx == nil {
		time.Sleep(d)
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
