// Package commlb makes the paper's §4 lower-bound machinery executable. A
// lower bound cannot be "run", but each reduction can: we implement the
// two-player protocols whose messages are the counter states of this
// repository's own sketches, verify end-to-end that the reductions solve
// augmented indexing / universal relation / duplicates exactly as the proofs
// claim, and measure message sizes against the Θ(log² n)-type bounds.
//
// Conventions. All protocols run in the joint-random-source (public-coin)
// model of Lemma 6: both players construct the same sketch object (shared
// randomness is free), Alice feeds her input and "sends" the linear counter
// state — counted by StateBits() — and Bob continues feeding his input into
// the same linear sketch, exploiting linearity, then queries.
package commlb

import (
	"math"
	"math/rand/v2"
	"sort"

	"repro/internal/core"
	"repro/internal/distinct"
	"repro/internal/duplicates"
	"repro/internal/hash"
	"repro/internal/heavyhitters"
	"repro/internal/sparse"
	"repro/internal/stream"
)

// Result is the outcome of one protocol run.
type Result struct {
	// OK reports whether the protocol produced an output (not whether it is
	// correct — the caller checks correctness against the instance).
	OK bool
	// Output is the protocol's answer: a differing index for UR, the digit
	// z_i for augmented indexing, a duplicate letter for Theorem 7.
	Output int
	// MessageBits is the total communication: sketch counter state plus
	// explicit bookkeeping words, summed over all rounds.
	MessageBits int64
	// Round2Bits is the second message's share of MessageBits for
	// multi-round protocols (zero for one-round protocols).
	Round2Bits int64
}

// ---------------------------------------------------------------------------
// Problem instances
// ---------------------------------------------------------------------------

// AIInstance is an augmented-indexing instance (Lemma 6): Alice holds
// Z ∈ [2^T]^S; Bob holds the index I (0-based) and Z[0..I-1], and must output
// Z[I].
type AIInstance struct {
	S, T int
	Z    []int
	I    int
}

// RandomAI draws a uniform instance.
func RandomAI(s, t int, r *rand.Rand) AIInstance {
	z := make([]int, s)
	for j := range z {
		z[j] = r.IntN(1 << t)
	}
	return AIInstance{S: s, T: t, Z: z, I: r.IntN(s)}
}

// URInstance is a universal-relation instance (§4.1): binary strings X ≠ Y;
// the receiver must output an index where they differ.
type URInstance struct {
	X, Y []int // entries in {0,1}
}

// RandomUR draws strings of length n at Hamming distance exactly d >= 1.
func RandomUR(n, d int, r *rand.Rand) URInstance {
	x := make([]int, n)
	y := make([]int, n)
	for i := range x {
		x[i] = r.IntN(2)
		y[i] = x[i]
	}
	for _, i := range r.Perm(n)[:d] {
		y[i] = 1 - x[i]
	}
	return URInstance{X: x, Y: y}
}

// Differs reports whether index i is a valid answer.
func (u URInstance) Differs(i int) bool {
	return i >= 0 && i < len(u.X) && u.X[i] != u.Y[i]
}

// RandomizeUR applies the Lemma 7 symmetrization: a shared uniform
// permutation π of the coordinates and a shared random bit-flip mask. The
// transformed instance has the same set of differing indices up to π, so a
// protocol solving it yields a uniformly distributed differing index of the
// original after mapping back through perm.
func RandomizeUR(u URInstance, r *rand.Rand) (transformed URInstance, perm []int) {
	n := len(u.X)
	perm = r.Perm(n)
	x := make([]int, n)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		flip := r.IntN(2)
		x[perm[i]] = u.X[i] ^ flip
		y[perm[i]] = u.Y[i] ^ flip
	}
	return URInstance{X: x, Y: y}, perm
}

// ---------------------------------------------------------------------------
// Proposition 5: one-round UR protocol via the L0 sampler
// ---------------------------------------------------------------------------

// OneRoundUR solves UR^n with a single message: Alice feeds x into a shared
// L0 sampler, ships the counter state, Bob subtracts y and samples a support
// element of x - y — an index where the strings differ (Proposition 5,
// R¹_δ(UR^n) = O(log² n log 1/δ)).
func OneRoundUR(inst URInstance, delta float64, r *rand.Rand) Result {
	n := len(inst.X)
	sampler := core.NewL0Sampler(core.L0Config{N: n, Delta: delta}, r)
	// Alice's phase.
	for i, v := range inst.X {
		if v != 0 {
			sampler.Process(stream.Update{Index: i, Delta: int64(v)})
		}
	}
	msg := sampler.StateBits()
	// Bob's phase on the same linear sketch.
	for i, v := range inst.Y {
		if v != 0 {
			sampler.Process(stream.Update{Index: i, Delta: -int64(v)})
		}
	}
	out, ok := sampler.Sample()
	if !ok {
		return Result{OK: false, Output: -1, MessageBits: msg}
	}
	return Result{OK: true, Output: out.Index, MessageBits: msg}
}

// TwoRoundUR solves UR^n in two rounds (the R²_δ(UR^n) = O(log n log 1/δ)
// half of Proposition 5): the first round "finds such a set" — Alice ships a
// rough L0 estimator of x, Bob subtracts y and learns the Hamming distance
// d up to a constant factor — and the second round "concentrates on a single
// such set": Bob subsamples coordinates at rate Θ(s/d) so that 1..s
// differences survive, ships one s-sparse recoverer of his restricted y,
// and Alice (the last receiver) adds her restricted x and reads off a
// differing index exactly.
//
// Message sizes: round 1 is the estimator's fingerprints, round 2 is one
// sparse recoverer — the second round is O(log(1/δ)) words, realizing the
// one-log-factor drop from the one-round protocol. (Compressing round 1 to
// the full O(log n log log n) bits of [17] would need the loglog-bit cells
// of that estimator; substitution note in DESIGN.md.)
func TwoRoundUR(inst URInstance, delta float64, r *rand.Rand) Result {
	n := len(inst.X)
	est := distinct.New(n, 12, r)
	// Alice's phase: feed x, ship the fingerprints.
	for i, v := range inst.X {
		if v != 0 {
			est.Process(stream.Update{Index: i, Delta: int64(v)})
		}
	}
	msg1 := est.StateBits()
	// Bob: subtract y on the shared linear sketch, estimate d = |x-y|_0.
	for i, v := range inst.Y {
		if v != 0 {
			est.Process(stream.Update{Index: i, Delta: -int64(v)})
		}
	}
	dhat := est.Estimate()
	if dhat == 0 {
		// Estimator says x = y; under the UR promise this is a (low
		// probability) estimator failure.
		return Result{OK: false, Output: -1, MessageBits: msg1}
	}
	s := int(math.Ceil(4 * math.Log2(1/delta)))
	if s < 4 {
		s = 4
	}
	q := 1.0
	if dhat > int64(s)/2 {
		q = float64(s) / (2 * float64(dhat))
	}
	// Shared randomness for the level: both players derive the same
	// membership hash and recoverer seeds from the joint source.
	member := hash.NewKWise(2, r)
	rec := sparse.New(n, s, r)
	for i, v := range inst.Y {
		if v != 0 && member.Float64(uint64(i)) < q {
			rec.Add(i, -int64(v))
		}
	}
	msg2 := rec.StateBits() + 64 // counters + the level q
	// Alice: add her restricted x and decode.
	for i, v := range inst.X {
		if v != 0 && member.Float64(uint64(i)) < q {
			rec.Add(i, int64(v))
		}
	}
	recovered, ok := rec.Recover()
	if !ok || len(recovered) == 0 {
		return Result{OK: false, Output: -1, MessageBits: msg1 + msg2, Round2Bits: msg2}
	}
	support := make([]int, 0, len(recovered))
	for i := range recovered {
		support = append(support, i)
	}
	sort.Ints(support)
	out := support[r.IntN(len(support))]
	return Result{OK: true, Output: out, MessageBits: msg1 + msg2, Round2Bits: msg2}
}

// ---------------------------------------------------------------------------
// Theorem 6: augmented indexing reduces to UR
// ---------------------------------------------------------------------------

// aiURDimension returns n = (2^s - 1) * 2^t.
func aiURDimension(s, t int) int { return ((1 << s) - 1) << t }

// aiVectors builds Alice's u (all blocks) and Bob's v (blocks j < i, zeros
// after): block j in [0,s) consists of 2^{s-1-j} copies of e_{z_j} ∈ R^{2^t}.
func aiVectors(inst AIInstance) (u, v []int) {
	n := aiURDimension(inst.S, inst.T)
	u = make([]int, n)
	v = make([]int, n)
	off := 0
	for j := 0; j < inst.S; j++ {
		copies := 1 << (inst.S - 1 - j)
		for c := 0; c < copies; c++ {
			pos := off + c<<inst.T + inst.Z[j]
			u[pos] = 1
			if j < inst.I {
				v[pos] = 1
			}
		}
		off += copies << inst.T
	}
	return u, v
}

// decodeAIIndex maps a differing index of (u, v) back to the digit it
// reveals and the block j it belongs to.
func decodeAIIndex(inst AIInstance, idx int) (j, z int) {
	off := 0
	for j = 0; j < inst.S; j++ {
		blockLen := (1 << (inst.S - 1 - j)) << inst.T
		if idx < off+blockLen {
			return j, (idx - off) & ((1 << inst.T) - 1)
		}
		off += blockLen
	}
	return -1, -1
}

// AIviaUR runs the Theorem 6 reduction end-to-end: build u and v, solve UR
// with the one-round L0 protocol (uniform over differing indices by
// Lemma 7), decode the digit. Since block I holds more than half of the
// differing indices, the decoded digit equals Z[I] with probability > 1/2
// conditioned on the UR protocol succeeding.
func AIviaUR(inst AIInstance, delta float64, r *rand.Rand) Result {
	u, v := aiVectors(inst)
	raw := URInstance{X: u, Y: v}
	transformed, perm := RandomizeUR(raw, r)
	res := OneRoundUR(transformed, delta, r)
	if !res.OK {
		return Result{OK: false, Output: -1, MessageBits: res.MessageBits}
	}
	// Map the sampled index back through the permutation.
	inv := make([]int, len(perm))
	for i, p := range perm {
		inv[p] = i
	}
	origIdx := inv[res.Output]
	_, z := decodeAIIndex(inst, origIdx)
	return Result{OK: true, Output: z, MessageBits: res.MessageBits}
}

// ---------------------------------------------------------------------------
// Theorem 7: UR reduces to finding duplicates
// ---------------------------------------------------------------------------

// URviaDuplicates runs the Theorem 7 reduction: Alice builds
// S = {2i-1+x_i}, Bob T = {2i-y_i} (1-based letters in [2n]), a shared
// random P ⊂ [2n] of size n renames letters to ranks in [n]; Alice feeds
// S∩P into the duplicates finder, Bob completes to n+1 letters from T∩P. A
// found duplicate a ∈ S∩T reveals i = ⌈a/2⌉ - 1 (0-based) with x_i ≠ y_i.
func URviaDuplicates(inst URInstance, delta float64, r *rand.Rand) Result {
	n := len(inst.X)
	// 1-based letters over [2n].
	sSet := make([]int, n)
	tSet := make([]int, n)
	for i := 0; i < n; i++ {
		sSet[i] = 2*(i+1) - 1 + inst.X[i]
		tSet[i] = 2*(i+1) - inst.Y[i]
	}
	// Shared random P ⊂ [2n], |P| = n, with rank renaming.
	perm := r.Perm(2 * n)
	rank := make(map[int]int, n) // letter (1-based) -> rank in [0,n)
	inP := make([]bool, 2*n+1)
	pSorted := append([]int(nil), perm[:n]...)
	for _, p := range pSorted {
		inP[p+1] = true
	}
	// ranks by increasing letter value
	cnt := 0
	for letter := 1; letter <= 2*n; letter++ {
		if inP[letter] {
			rank[letter] = cnt
			cnt++
		}
	}
	finder := duplicates.NewFinder(n, delta, r)
	fed := 0
	for _, a := range sSet {
		if inP[a] {
			finder.ProcessItem(rank[a])
			fed++
		}
	}
	msg := finder.StateBits() + 64 // counter state + |S∩P|
	// Bob: feed n+1-fed elements of T∩P.
	need := n + 1 - fed
	var bobLetters []int
	for _, a := range tSet {
		if inP[a] {
			bobLetters = append(bobLetters, a)
		}
	}
	if need < 0 || len(bobLetters) < need {
		return Result{OK: false, Output: -1, MessageBits: msg}
	}
	for _, a := range bobLetters[:need] {
		finder.ProcessItem(rank[a])
	}
	res := finder.Find()
	if res.Kind != duplicates.Duplicate {
		return Result{OK: false, Output: -1, MessageBits: msg}
	}
	// Translate rank back to the letter, then to the index i.
	letter := -1
	for l := 1; l <= 2*n; l++ {
		if inP[l] && rank[l] == res.Index {
			letter = l
			break
		}
	}
	if letter < 0 {
		return Result{OK: false, Output: -1, MessageBits: msg}
	}
	i := (letter+1)/2 - 1 // 0-based index of the revealed coordinate
	return Result{OK: true, Output: i, MessageBits: msg}
}

// ---------------------------------------------------------------------------
// Theorem 9: augmented indexing reduces to heavy hitters (strict turnstile)
// ---------------------------------------------------------------------------

// AIviaHeavyHitters runs the Theorem 9 reduction with parameters p and φ:
// Alice encodes digit j at magnitude ⌈b^{s-j}⌉ with b = (1-(2φ)^p)^{-1/p};
// Bob deletes the prefix he knows and reads z_i off the smallest reported
// heavy hitter. The protocol errs only if the heavy-hitters sketch errs.
func AIviaHeavyHitters(inst AIInstance, p, phi float64, r *rand.Rand) Result {
	if phi >= 0.5 {
		panic("commlb: Theorem 9 reduction requires phi < 1/2")
	}
	b := math.Pow(1-math.Pow(2*phi, p), -1/p)
	nPrime := inst.S << inst.T
	hh := heavyhitters.New(heavyhitters.Config{P: p, Phi: phi, N: nPrime}, r)
	// Alice: x := u.
	for j := 0; j < inst.S; j++ {
		mag := int64(math.Ceil(math.Pow(b, float64(inst.S-1-j))))
		pos := j<<inst.T + inst.Z[j]
		hh.Process(stream.Update{Index: pos, Delta: mag})
	}
	msg := hh.StateBits()
	// Bob: x := u - v (delete the digits he already knows).
	for j := 0; j < inst.I; j++ {
		mag := int64(math.Ceil(math.Pow(b, float64(inst.S-1-j))))
		pos := j<<inst.T + inst.Z[j]
		hh.Process(stream.Update{Index: pos, Delta: -mag})
	}
	set := hh.HeavyHitters()
	if len(set) == 0 {
		return Result{OK: false, Output: -1, MessageBits: msg}
	}
	min := set[0]
	for _, v := range set {
		if v < min {
			min = v
		}
	}
	// Bob reads z off the smallest index; when the sketch errs and that
	// index falls outside block I, the digit is simply wrong — the protocol
	// cannot detect it, exactly as in the proof ("the protocol errs only if
	// the streaming algorithm makes an error").
	return Result{OK: true, Output: min & ((1 << inst.T) - 1), MessageBits: msg}
}
