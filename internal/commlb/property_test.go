package commlb

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// TestPropertyAIVectorsDifferExactlyOnSuffixBlocks: u and v agree on blocks
// j < I and differ exactly on the unit positions of blocks j >= I —
// the structural invariant Theorem 6's counting argument rests on.
func TestPropertyAIVectorsDifferExactlyOnSuffixBlocks(t *testing.T) {
	f := func(seed uint64, sRaw, tRaw uint8) bool {
		s := 2 + int(sRaw)%5
		tt := 1 + int(tRaw)%5
		r := rand.New(rand.NewPCG(seed, 3))
		inst := RandomAI(s, tt, r)
		u, v := aiVectors(inst)
		diffs := 0
		for idx := range u {
			if u[idx] != v[idx] {
				j, z := decodeAIIndex(inst, idx)
				if j < inst.I {
					return false // prefix blocks must agree
				}
				if z != inst.Z[j] {
					return false // differing index must decode the digit
				}
				diffs++
			}
		}
		// Total differing positions: sum over j >= I of 2^{s-1-j} copies.
		want := 0
		for j := inst.I; j < s; j++ {
			want += 1 << (s - 1 - j)
		}
		return diffs == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestPropertyMajorityOfDiffsInBlockI: more than half of the differing
// indices decode block I's digit — the exact fact that lets Bob answer by
// trusting a uniform differing index.
func TestPropertyMajorityOfDiffsInBlockI(t *testing.T) {
	f := func(seed uint64, sRaw uint8) bool {
		s := 2 + int(sRaw)%6
		r := rand.New(rand.NewPCG(seed, 5))
		inst := RandomAI(s, 3, r)
		u, v := aiVectors(inst)
		inBlockI, total := 0, 0
		for idx := range u {
			if u[idx] != v[idx] {
				total++
				if j, _ := decodeAIIndex(inst, idx); j == inst.I {
					inBlockI++
				}
			}
		}
		return 2*inBlockI > total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestPropertyTheorem7SetEncoding: the S and T sets of the Theorem 7
// reduction intersect exactly at the positions where x and y differ.
func TestPropertyTheorem7SetEncoding(t *testing.T) {
	f := func(seed uint64, nRaw uint8, dRaw uint8) bool {
		n := 4 + int(nRaw)%120
		d := 1 + int(dRaw)%n
		r := rand.New(rand.NewPCG(seed, 7))
		inst := RandomUR(n, d, r)
		sSet := map[int]bool{}
		for i := 0; i < n; i++ {
			sSet[2*(i+1)-1+inst.X[i]] = true
		}
		inter := 0
		for i := 0; i < n; i++ {
			a := 2*(i+1) - inst.Y[i]
			if sSet[a] {
				// a in S∩T must mean x_i != y_i
				if inst.X[i] == inst.Y[i] {
					return false
				}
				inter++
			}
		}
		return inter == d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestPropertyRandomizeURRoundTrip: mapping an index of the transformed
// instance back through the permutation always lands on an original
// differing index iff it was a differing index of the transform.
func TestPropertyRandomizeURRoundTrip(t *testing.T) {
	f := func(seed uint64, nRaw, dRaw uint8) bool {
		n := 4 + int(nRaw)%100
		d := 1 + int(dRaw)%n
		r := rand.New(rand.NewPCG(seed, 9))
		inst := RandomUR(n, d, r)
		tr, perm := RandomizeUR(inst, r)
		inv := make([]int, n)
		for i, p := range perm {
			inv[p] = i
		}
		for i := 0; i < n; i++ {
			if tr.Differs(i) != inst.Differs(inv[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestPropertyTheorem9MagnitudesAreHeavy: the geometric magnitudes of the
// Theorem 9 reduction make the first live digit a φ-heavy hitter of
// x = u - v — the inequality chain in the proof, checked numerically.
func TestPropertyTheorem9MagnitudesAreHeavy(t *testing.T) {
	f := func(seed uint64, sRaw, iRaw uint8) bool {
		s := 2 + int(sRaw)%8
		r := rand.New(rand.NewPCG(seed, 11))
		inst := RandomAI(s, 3, r)
		inst.I = int(iRaw) % s
		const p = 1.0
		const phi = 0.25
		b := 1 / (1 - pow(2*phi, p))
		// ||x||_p^p over the surviving blocks j >= I and the first value.
		var normP float64
		var first float64
		for j := inst.I; j < s; j++ {
			mag := ceilPow(b, s-1-j)
			normP += pow(mag, p)
			if j == inst.I {
				first = mag
			}
		}
		return pow(first, p) >= pow(phi, p)*normP
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func pow(x, p float64) float64 {
	if p == 1 {
		return x
	}
	res := 1.0
	for i := 0; i < int(p); i++ {
		res *= x
	}
	return res
}

func ceilPow(b float64, e int) float64 {
	v := 1.0
	for i := 0; i < e; i++ {
		v *= b
	}
	// ceil
	iv := float64(int64(v))
	if iv < v {
		iv++
	}
	return iv
}
