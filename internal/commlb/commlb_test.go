package commlb

import (
	"math/rand/v2"
	"testing"
)

func TestRandomURInstance(t *testing.T) {
	r := rand.New(rand.NewPCG(1, 1))
	inst := RandomUR(100, 7, r)
	d := 0
	for i := range inst.X {
		if inst.X[i] != inst.Y[i] {
			d++
		}
	}
	if d != 7 {
		t.Fatalf("Hamming distance %d, want 7", d)
	}
}

func TestRandomizeURPreservesDifferences(t *testing.T) {
	r := rand.New(rand.NewPCG(2, 2))
	inst := RandomUR(64, 5, r)
	tr, perm := RandomizeUR(inst, r)
	for i := range inst.X {
		origDiff := inst.X[i] != inst.Y[i]
		trDiff := tr.X[perm[i]] != tr.Y[perm[i]]
		if origDiff != trDiff {
			t.Fatalf("difference structure broken at %d", i)
		}
	}
}

func TestOneRoundURCorrectness(t *testing.T) {
	// Proposition 5: one message of O(log² n) bits solves UR with
	// probability >= 1 - δ; the output must be a genuine differing index.
	r := rand.New(rand.NewPCG(3, 3))
	const n = 256
	for _, dist := range []int{1, 2, 16, 128, 256} {
		okCount, wrong := 0, 0
		const trials = 20
		for trial := 0; trial < trials; trial++ {
			inst := RandomUR(n, dist, r)
			res := OneRoundUR(inst, 0.1, r)
			if !res.OK {
				continue
			}
			okCount++
			if !inst.Differs(res.Output) {
				wrong++
			}
		}
		if wrong > 0 {
			t.Errorf("dist=%d: %d wrong outputs (low probability event)", dist, wrong)
		}
		if okCount < trials*3/4 {
			t.Errorf("dist=%d: only %d/%d successes", dist, okCount, trials)
		}
	}
}

func TestOneRoundURMessageGrowsPolylog(t *testing.T) {
	r := rand.New(rand.NewPCG(4, 4))
	small := OneRoundUR(RandomUR(1<<8, 4, r), 0.2, r)
	big := OneRoundUR(RandomUR(1<<14, 4, r), 0.2, r)
	if big.MessageBits <= small.MessageBits {
		t.Error("message must grow with log n")
	}
	// 64x dimension growth, message should grow well under 8x (log factor).
	if big.MessageBits > 8*small.MessageBits {
		t.Errorf("message not polylog: %d -> %d bits", small.MessageBits, big.MessageBits)
	}
}

func TestAIVectorsStructure(t *testing.T) {
	inst := AIInstance{S: 3, T: 2, Z: []int{1, 3, 0}, I: 1}
	u, v := aiVectors(inst)
	if len(u) != ((1<<3)-1)<<2 {
		t.Fatalf("dimension %d, want 28", len(u))
	}
	// Block 0: 4 copies of e_1, positions 0*4+1, 1*4+1, 2*4+1, 3*4+1.
	for c := 0; c < 4; c++ {
		if u[c*4+1] != 1 {
			t.Fatalf("u missing copy %d of block 0", c)
		}
		if v[c*4+1] != 1 {
			t.Fatalf("v must contain block 0 (j < I)")
		}
	}
	// Block 1 (2 copies of e_3 at offset 16): in u, not in v (j >= I).
	for c := 0; c < 2; c++ {
		pos := 16 + c*4 + 3
		if u[pos] != 1 || v[pos] != 0 {
			t.Fatalf("block 1 copy %d wrong: u=%d v=%d", c, u[pos], v[pos])
		}
	}
	// Decode: index in block 1 reveals digit 3.
	if j, z := decodeAIIndex(inst, 16+3); j != 1 || z != 3 {
		t.Fatalf("decode = (%d,%d), want (1,3)", j, z)
	}
	if j, z := decodeAIIndex(inst, 24+0); j != 2 || z != 0 {
		t.Fatalf("decode = (%d,%d), want (2,0)", j, z)
	}
}

func TestAIviaURBeatsChance(t *testing.T) {
	// Theorem 6 pipeline: success must be well above the 2^-t guessing rate
	// (the proof promises > 1/2 conditioned on UR success).
	r := rand.New(rand.NewPCG(5, 5))
	const s, tt = 5, 5
	correct, produced := 0, 0
	const trials = 60
	for trial := 0; trial < trials; trial++ {
		inst := RandomAI(s, tt, r)
		res := AIviaUR(inst, 0.1, r)
		if !res.OK {
			continue
		}
		produced++
		if res.Output == inst.Z[inst.I] {
			correct++
		}
	}
	if produced < trials*3/4 {
		t.Fatalf("UR layer failed too often: %d/%d", produced, trials)
	}
	// Chance would be 1/32; the reduction gives > 1/2 of produced.
	if correct < produced*2/5 {
		t.Errorf("AI decoded correctly %d/%d (chance=1/32)", correct, produced)
	}
}

func TestAIviaURLastIndexDeterministicBlock(t *testing.T) {
	// With I = s-1 only block s-1 differs, so every successful UR sample
	// decodes the right digit.
	r := rand.New(rand.NewPCG(6, 6))
	const s, tt = 4, 4
	correct, produced := 0, 0
	for trial := 0; trial < 30; trial++ {
		inst := RandomAI(s, tt, r)
		inst.I = s - 1
		res := AIviaUR(inst, 0.1, r)
		if !res.OK {
			continue
		}
		produced++
		if res.Output == inst.Z[inst.I] {
			correct++
		}
	}
	if produced < 20 {
		t.Fatalf("only %d/30 produced output", produced)
	}
	if correct < produced*9/10 {
		t.Errorf("last-block AI: %d/%d correct, want ~all", correct, produced)
	}
}

func TestURviaDuplicatesCorrectness(t *testing.T) {
	// Theorem 7 pipeline: when it answers, the index must differ; the
	// success rate must be a positive constant.
	r := rand.New(rand.NewPCG(7, 7))
	const n = 128
	okCount, wrong := 0, 0
	const trials = 40
	for trial := 0; trial < trials; trial++ {
		inst := RandomUR(n, 1+r.IntN(n/2), r)
		res := URviaDuplicates(inst, 0.1, r)
		if !res.OK {
			continue
		}
		okCount++
		if !inst.Differs(res.Output) {
			wrong++
		}
	}
	if wrong > okCount/10 {
		t.Errorf("%d/%d wrong outputs", wrong, okCount)
	}
	// Theory promises >= 1/8 * (1-δ)-ish; empirically much better because
	// random instances have many duplicates.
	if okCount < trials/6 {
		t.Errorf("success %d/%d below constant rate", okCount, trials)
	}
}

func TestAIviaHeavyHittersHighAccuracy(t *testing.T) {
	// Theorem 9: the protocol errs only if the heavy hitters sketch errs.
	r := rand.New(rand.NewPCG(8, 8))
	const s, tt = 6, 4
	correct := 0
	const trials = 30
	for trial := 0; trial < trials; trial++ {
		inst := RandomAI(s, tt, r)
		res := AIviaHeavyHitters(inst, 1, 0.25, r)
		if res.OK && res.Output == inst.Z[inst.I] {
			correct++
		}
	}
	if correct < trials*8/10 {
		t.Errorf("AI via heavy hitters correct %d/%d", correct, trials)
	}
}

func TestAIviaHeavyHittersPhiRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for phi >= 1/2")
		}
	}()
	r := rand.New(rand.NewPCG(9, 9))
	AIviaHeavyHitters(RandomAI(3, 3, r), 1, 0.5, r)
}

func TestMessageBitsTrackLog2N(t *testing.T) {
	// The headline Θ(log² n) shape of Theorem 6/8: message bits per log²n
	// should stay within a narrow constant band as n grows.
	r := rand.New(rand.NewPCG(10, 10))
	ratios := make([]float64, 0, 3)
	for _, n := range []int{1 << 8, 1 << 11, 1 << 14} {
		res := OneRoundUR(RandomUR(n, 3, r), 0.2, r)
		logn := float64(0)
		for m := n; m > 1; m >>= 1 {
			logn++
		}
		ratios = append(ratios, float64(res.MessageBits)/(logn*logn))
	}
	for i := 1; i < len(ratios); i++ {
		if ratios[i] > 4*ratios[0] || ratios[i] < ratios[0]/4 {
			t.Errorf("message/log²n ratios drift: %v", ratios)
		}
	}
}

func BenchmarkOneRoundUR(b *testing.B) {
	r := rand.New(rand.NewPCG(1, 1))
	inst := RandomUR(1<<10, 5, r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		OneRoundUR(inst, 0.2, r)
	}
}

func TestTwoRoundURCorrectness(t *testing.T) {
	// Proposition 5, second claim: two rounds suffice with a much smaller
	// second message; outputs must be genuine differing indices.
	r := rand.New(rand.NewPCG(20, 20))
	const n = 1024
	for _, dist := range []int{1, 8, 64, 512} {
		okCount, wrong := 0, 0
		const trials = 20
		for trial := 0; trial < trials; trial++ {
			inst := RandomUR(n, dist, r)
			res := TwoRoundUR(inst, 0.1, r)
			if !res.OK {
				continue
			}
			okCount++
			if !inst.Differs(res.Output) {
				wrong++
			}
		}
		if wrong > 0 {
			t.Errorf("dist=%d: %d wrong outputs", dist, wrong)
		}
		if okCount < trials*3/4 {
			t.Errorf("dist=%d: only %d/%d successes", dist, okCount, trials)
		}
	}
}

func TestTwoRoundSecondMessageSmall(t *testing.T) {
	// The second round must be far below the one-round message: it carries
	// only one O(log 1/δ)-sparse recoverer instead of log n levels of them.
	r := rand.New(rand.NewPCG(21, 21))
	const n = 4096
	inst := RandomUR(n, 100, r)
	one := OneRoundUR(inst, 0.1, r)
	two := TwoRoundUR(inst, 0.1, r)
	if !two.OK || two.Round2Bits == 0 {
		t.Fatal("two-round protocol did not complete")
	}
	if two.Round2Bits*4 > one.MessageBits {
		t.Errorf("round-2 message %d bits not far below one-round %d bits",
			two.Round2Bits, one.MessageBits)
	}
}

func TestTwoRoundURIdenticalStringsFail(t *testing.T) {
	// Violating the x != y promise must yield a clean failure, not a bogus
	// index.
	r := rand.New(rand.NewPCG(22, 22))
	x := make([]int, 128)
	for i := range x {
		x[i] = i % 2
	}
	inst := URInstance{X: x, Y: append([]int(nil), x...)}
	if res := TwoRoundUR(inst, 0.1, r); res.OK {
		t.Fatalf("equal strings produced output %d", res.Output)
	}
}
