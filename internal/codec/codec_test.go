package codec

import (
	"errors"
	"math"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	e := NewEncoder(KindL0Sampler)
	e.U64(42)
	e.F64(0.25)
	e.I64(-7)
	e.Bool(true)
	e.SealHeader()
	e.U64(99)

	d, err := NewDecoder(e.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if d.Kind() != KindL0Sampler {
		t.Fatalf("kind = %v, want KindL0Sampler", d.Kind())
	}
	if got := d.U64(); got != 42 {
		t.Fatalf("U64 = %d, want 42", got)
	}
	if got := d.F64(); got != 0.25 {
		t.Fatalf("F64 = %v, want 0.25", got)
	}
	if got := d.I64(); got != -7 {
		t.Fatalf("I64 = %d, want -7", got)
	}
	if !d.Bool() {
		t.Fatal("Bool = false, want true")
	}
	if err := d.VerifyHeader(); err != nil {
		t.Fatalf("VerifyHeader: %v", err)
	}
	if got := d.U64(); got != 99 {
		t.Fatalf("payload U64 = %d, want 99", got)
	}
	if err := d.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
}

func TestFloatBitsExact(t *testing.T) {
	for _, v := range []float64{0, 1, -1, 0.1, math.Inf(1), math.SmallestNonzeroFloat64, math.MaxFloat64} {
		e := NewEncoder(KindLpSampler)
		e.F64(v)
		d, err := NewDecoder(e.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		if got := d.F64(); math.Float64bits(got) != math.Float64bits(v) {
			t.Fatalf("F64 round-trip %v -> %v", v, got)
		}
	}
	// NaN must round-trip its payload bits too.
	e := NewEncoder(KindLpSampler)
	e.F64(math.NaN())
	d, _ := NewDecoder(e.Bytes())
	if got := d.F64(); !math.IsNaN(got) {
		t.Fatalf("NaN round-tripped to %v", got)
	}
}

func TestBadMagic(t *testing.T) {
	b := NewEncoder(KindL0Sampler).Bytes()
	b[0] ^= 0xFF
	if _, err := NewDecoder(b); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestBadVersion(t *testing.T) {
	b := NewEncoder(KindL0Sampler).Bytes()
	b[4] = 0xFF
	if _, err := NewDecoder(b); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("err = %v, want ErrBadVersion", err)
	}
}

func TestTruncatedHeader(t *testing.T) {
	if _, err := NewDecoder([]byte("LPS")); !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
}

func TestTruncatedBodySticks(t *testing.T) {
	e := NewEncoder(KindL0Sampler)
	e.U64(1)
	b := e.Bytes()
	d, err := NewDecoder(b[:len(b)-1])
	if err != nil {
		t.Fatal(err)
	}
	if got := d.U64(); got != 0 {
		t.Fatalf("truncated U64 = %d, want 0", got)
	}
	if !errors.Is(d.Err(), ErrTruncated) {
		t.Fatalf("Err = %v, want ErrTruncated", d.Err())
	}
	// Sticky: further reads stay zero and keep the first error.
	if got := d.F64(); got != 0 {
		t.Fatalf("post-error F64 = %v, want 0", got)
	}
	if !errors.Is(d.Finish(), ErrTruncated) {
		t.Fatalf("Finish = %v, want ErrTruncated", d.Finish())
	}
}

func TestFingerprintCatchesCorruption(t *testing.T) {
	e := NewEncoder(KindHeavyHitters)
	e.U64(1234)
	e.F64(0.5)
	e.SealHeader()
	good := e.Bytes()

	d, _ := NewDecoder(good)
	d.U64()
	d.F64()
	if err := d.VerifyHeader(); err != nil {
		t.Fatalf("clean header rejected: %v", err)
	}

	// Corrupt every header byte in turn: each flip must be caught.
	for i := 0; i < len(good)-8; i++ {
		bad := append([]byte(nil), good...)
		bad[i] ^= 0x01
		d, err := NewDecoder(bad)
		if err != nil {
			continue // magic/version corruption caught even earlier
		}
		d.U64()
		d.F64()
		if err := d.VerifyHeader(); !errors.Is(err, ErrBadFingerprint) {
			t.Fatalf("flip at %d: VerifyHeader = %v, want ErrBadFingerprint", i, err)
		}
	}
}

func TestTrailingData(t *testing.T) {
	e := NewEncoder(KindL0Sampler)
	e.U64(5)
	b := append(e.Bytes(), 0xAB)
	d, err := NewDecoder(b)
	if err != nil {
		t.Fatal(err)
	}
	d.U64()
	if err := d.Finish(); !errors.Is(err, ErrTrailingData) {
		t.Fatalf("Finish = %v, want ErrTrailingData", err)
	}
}

func TestKindString(t *testing.T) {
	kinds := []Kind{KindLpSampler, KindL0Sampler, KindDuplicateFinder,
		KindHeavyHitters, KindTwoPassL0Sampler, KindFpEstimator, KindGraphSketch}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Fatalf("kind %d has empty/duplicate name %q", k, s)
		}
		seen[s] = true
	}
	if Kind(999).String() != "Kind(999)" {
		t.Fatalf("unknown kind name = %q", Kind(999).String())
	}
}

func TestFailInjectsStickyError(t *testing.T) {
	e := NewEncoder(KindTwoPassL0Sampler)
	e.U64(1)
	e.U64(2)
	d, err := NewDecoder(e.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	d.U64()
	d.Fail(ErrBadConfig)
	if got := d.U64(); got != 0 {
		t.Fatalf("post-Fail read = %d, want 0", got)
	}
	if !errors.Is(d.Finish(), ErrBadConfig) {
		t.Fatalf("Finish = %v, want the injected ErrBadConfig", d.Finish())
	}
	// First failure wins.
	d.Fail(ErrTruncated)
	if !errors.Is(d.Err(), ErrBadConfig) {
		t.Fatalf("second Fail overwrote the first: %v", d.Err())
	}
}

func TestMergeSentinelsDistinct(t *testing.T) {
	sentinels := []error{ErrNilMerge, ErrSeedMismatch, ErrConfigMismatch}
	for i, a := range sentinels {
		for j, b := range sentinels {
			if (i == j) != errors.Is(a, b) {
				t.Fatalf("sentinel identity broken between %v and %v", a, b)
			}
		}
	}
}
