package codec

import (
	"errors"
	"testing"
)

// FuzzDecoder drives arbitrary bytes through the full decoder surface: it
// must never panic, and every failure must map onto one of the package's
// typed sentinels.
func FuzzDecoder(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("LPSK"))
	e := NewEncoder(KindL0Sampler)
	e.U64(64)
	e.F64(0.2)
	e.SealHeader()
	e.U64(7)
	f.Add(e.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := NewDecoder(data)
		if err != nil {
			if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrBadMagic) && !errors.Is(err, ErrBadVersion) {
				t.Fatalf("NewDecoder returned untyped error %v", err)
			}
			return
		}
		_ = d.Kind()
		d.U64()
		d.F64()
		_ = d.VerifyHeader()
		d.I64()
		d.Bool()
		err = d.Finish()
		if err != nil && !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrBadFingerprint) && !errors.Is(err, ErrTrailingData) {
			t.Fatalf("Finish returned untyped error %v", err)
		}
	})
}
