package codec

import "testing"

// BenchmarkCodecEncode measures the raw framing cost per 64-bit word on a
// payload the size of a typical L0 sampler (8 levels x 33 words).
func BenchmarkCodecEncode(b *testing.B) {
	const words = 8 * 33
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEncoder(KindL0Sampler)
		e.U64(64)
		e.F64(0.2)
		e.SealHeader()
		for w := 0; w < words; w++ {
			e.U64(uint64(w))
		}
		if e.Len() == 0 {
			b.Fatal("empty encoding")
		}
	}
	b.SetBytes(int64(8 * words))
}

// BenchmarkCodecDecode measures the matching read path.
func BenchmarkCodecDecode(b *testing.B) {
	const words = 8 * 33
	e := NewEncoder(KindL0Sampler)
	e.U64(64)
	e.F64(0.2)
	e.SealHeader()
	for w := 0; w < words; w++ {
		e.U64(uint64(w))
	}
	data := e.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := NewDecoder(data)
		if err != nil {
			b.Fatal(err)
		}
		d.U64()
		d.F64()
		if err := d.VerifyHeader(); err != nil {
			b.Fatal(err)
		}
		var sum uint64
		for w := 0; w < words; w++ {
			sum += d.U64()
		}
		if err := d.Finish(); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(8 * words))
}
