package codec

import (
	"bytes"
	"errors"
	"testing"
)

func TestRecordRoundTrip(t *testing.T) {
	payloads := [][]byte{[]byte("first"), {}, []byte("a much longer third record payload")}
	var buf []byte
	for _, p := range payloads {
		buf = AppendRecord(buf, p)
	}
	rest := buf
	for i, want := range payloads {
		var got []byte
		var err error
		got, rest, err = NextRecord(rest)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("record %d: got %q want %q", i, got, want)
		}
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes after the last record", len(rest))
	}
	if _, _, err := NextRecord(rest); !errors.Is(err, ErrTruncated) {
		t.Fatalf("empty tail: err = %v, want ErrTruncated", err)
	}
}

// TestRecordTornTail: every strict prefix of a record sequence decodes its
// complete records and then reports ErrTruncated, never ErrBadRecord — the
// crash-frontier contract journal recovery relies on.
func TestRecordTornTail(t *testing.T) {
	var buf []byte
	buf = AppendRecord(buf, []byte("complete record"))
	whole := len(buf)
	buf = AppendRecord(buf, []byte("torn record"))
	for cut := whole; cut < len(buf); cut++ {
		first, rest, err := NextRecord(buf[:cut])
		if err != nil || !bytes.Equal(first, []byte("complete record")) {
			t.Fatalf("cut %d: first record unreadable: %v", cut, err)
		}
		if _, _, err := NextRecord(rest); !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut %d: torn tail err = %v, want ErrTruncated", cut, err)
		}
	}
}

func TestRecordCorruptPayload(t *testing.T) {
	buf := AppendRecord(nil, []byte("payload under test"))
	for bit := 0; bit < 8; bit++ {
		c := bytes.Clone(buf)
		c[RecordOverhead+3] ^= 1 << bit // flip payload bits
		if _, _, err := NextRecord(c); !errors.Is(err, ErrBadRecord) {
			t.Fatalf("bit %d: err = %v, want ErrBadRecord", bit, err)
		}
	}
}

func TestRecordInsaneLength(t *testing.T) {
	buf := AppendRecord(nil, []byte("x"))
	buf[0], buf[1], buf[2], buf[3] = 0xFF, 0xFF, 0xFF, 0xFF
	if _, _, err := NextRecord(buf); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("err = %v, want ErrBadConfig for an insane length", err)
	}
}
