package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Journal record framing. The checkpoint store's segment journal
// (internal/checkpoint) is a sequence of self-delimiting records appended to
// a file; each record carries its own length and an FNV-1a fingerprint of
// its payload, so a reader can walk the file record by record, detect a torn
// tail (the crash frontier — the write the process died inside), and
// distinguish it from mid-file corruption:
//
//	offset  size  field
//	0       4     payload length, little-endian uint32
//	4       8     FNV-1a 64 fingerprint of the payload
//	12      ...   payload
//
// NextRecord reports a clean ErrTruncated for an incomplete header or
// payload (torn tail: everything before it is intact) and ErrBadRecord for a
// complete record whose fingerprint does not match (corruption: the file
// cannot be trusted past this point).

// ErrBadRecord means a complete journal record failed its payload
// fingerprint: the bytes were corrupted in place, not merely cut short.
var ErrBadRecord = errors.New("codec: journal record fingerprint mismatch")

// Fingerprint is the FNV-1a 64 hash the wire format and the framing layers
// seal bytes with, exported for the checkpoint store's file headers.
func Fingerprint(b []byte) uint64 { return fnv1a(b) }

// recordHeaderSize is length + fingerprint.
const recordHeaderSize = 4 + 8

// MaxRecordLen bounds a single record's payload — a sanity valve so a
// corrupt length field cannot drive a multi-gigabyte allocation before the
// fingerprint check.
const MaxRecordLen = 1 << 30

// AppendRecord frames payload as one journal record appended to dst.
func AppendRecord(dst, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint64(dst, fnv1a(payload))
	return append(dst, payload...)
}

// RecordOverhead is the framing cost per record in bytes.
const RecordOverhead = recordHeaderSize

// NextRecord splits the first framed record off data, returning its payload
// (aliasing data, not copied) and the remaining bytes. Errors: ErrTruncated
// when data ends inside the header or payload (a torn tail — len(data) may
// be zero to mean "no more records", which also reports ErrTruncated with
// rest empty), ErrBadRecord when the fingerprint check fails, ErrBadConfig
// when the length field exceeds MaxRecordLen.
func NextRecord(data []byte) (payload, rest []byte, err error) {
	if len(data) < recordHeaderSize {
		return nil, nil, fmt.Errorf("%w: %d bytes of record header, want %d",
			ErrTruncated, len(data), recordHeaderSize)
	}
	n := binary.LittleEndian.Uint32(data)
	if n > MaxRecordLen {
		return nil, nil, fmt.Errorf("%w: record length %d exceeds %d", ErrBadConfig, n, MaxRecordLen)
	}
	want := binary.LittleEndian.Uint64(data[4:])
	end := recordHeaderSize + int(n)
	if len(data) < end {
		return nil, nil, fmt.Errorf("%w: record promises %d payload bytes, %d remain",
			ErrTruncated, n, len(data)-recordHeaderSize)
	}
	payload = data[recordHeaderSize:end]
	if fnv1a(payload) != want {
		return nil, nil, fmt.Errorf("%w: %d-byte record", ErrBadRecord, n)
	}
	return payload, data[end:], nil
}
