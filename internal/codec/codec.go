// Package codec defines the versioned wire format that every serializable
// sketch in this repository speaks, plus the error taxonomy shared by the
// merge and restore paths.
//
// # Wire format (version 1)
//
// A serialized sketch is one self-describing byte string:
//
//	offset  size  field
//	0       4     magic "LPSK"
//	4       2     format version, little-endian uint16 (currently 1)
//	6       2     sketch kind, little-endian uint16 (Kind)
//	8       ...   config block: kind-specific fixed sequence of 64-bit words
//	              (dimension, p, ε, δ, copies, sparsity, nested, seed, ...)
//	...     8     fingerprint: FNV-1a 64 over every preceding byte
//	...     ...   payload: the sketch's linear measurements, 64-bit words
//
// The config block plus the construction seed fully determine the sketch's
// shape and randomness, so a reader reconstructs a ready-to-merge instance
// from the bytes alone and then overwrites its linear state with the
// payload. The fingerprint seals the header: a corrupted config block is
// rejected with ErrBadFingerprint before any allocation-driving field is
// trusted. Everything is little-endian; floats travel as IEEE-754 bits.
//
// The Encoder/Decoder pair below is deliberately minimal — append-only
// writing, sticky-error reading — so the per-substrate AppendState /
// RestoreState methods threaded through the sketch packages stay free of
// error plumbing until the single Err check at the end.
//
// # Error taxonomy
//
// Decode failures surface as wrapped ErrBadMagic / ErrBadVersion /
// ErrBadKind / ErrBadConfig / ErrBadFingerprint / ErrTruncated /
// ErrTrailingData. Merge failures across every sketch package wrap
// ErrNilMerge / ErrSeedMismatch / ErrConfigMismatch, so callers dispatch
// with errors.Is instead of matching strings. The public streamsample
// package re-exports the merge sentinels.
package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Version is the current wire-format version.
const Version = 1

// magic identifies a serialized sketch of this repository.
var magic = [4]byte{'L', 'P', 'S', 'K'}

// headerSize is magic + version + kind.
const headerSize = 8

// Kind identifies which sketch a byte string holds.
type Kind uint16

// The sketch kinds of the public API plus the internal checkpointable
// composites. Values are part of the wire format: never reorder, only
// append.
const (
	KindInvalid Kind = iota
	KindLpSampler
	KindL0Sampler
	KindDuplicateFinder
	KindHeavyHitters
	KindTwoPassL0Sampler
	KindFpEstimator
	KindGraphSketch
)

// String names the kind for error messages.
func (k Kind) String() string {
	switch k {
	case KindLpSampler:
		return "LpSampler"
	case KindL0Sampler:
		return "L0Sampler"
	case KindDuplicateFinder:
		return "DuplicateFinder"
	case KindHeavyHitters:
		return "HeavyHitters"
	case KindTwoPassL0Sampler:
		return "TwoPassL0Sampler"
	case KindFpEstimator:
		return "FpEstimator"
	case KindGraphSketch:
		return "GraphSketch"
	default:
		return fmt.Sprintf("Kind(%d)", uint16(k))
	}
}

// Merge sentinels: every Merge path in the repository wraps one of these.
var (
	// ErrNilMerge is wrapped when Merge is handed a nil sketch.
	ErrNilMerge = errors.New("merging a nil sketch")
	// ErrSeedMismatch is wrapped when two sketches were built from different
	// randomness (same-seed replicas are required for linear merging).
	ErrSeedMismatch = errors.New("merging sketches with different seeds (same-seed replicas required)")
	// ErrConfigMismatch is wrapped when two sketches differ in type, shape
	// or construction parameters.
	ErrConfigMismatch = errors.New("merging sketches of different configurations")
)

// Decode sentinels.
var (
	// ErrBadMagic means the bytes do not start with the sketch magic.
	ErrBadMagic = errors.New("codec: bad magic (not a serialized sketch)")
	// ErrBadVersion means the format version is not supported.
	ErrBadVersion = errors.New("codec: unsupported format version")
	// ErrBadKind means the sketch kind is unknown to this reader, or does
	// not match the receiver the bytes were decoded into.
	ErrBadKind = errors.New("codec: sketch kind mismatch")
	// ErrBadConfig means the config block decoded to parameters outside the
	// constructible range.
	ErrBadConfig = errors.New("codec: invalid config block")
	// ErrBadFingerprint means the header fingerprint check failed: the
	// config block was corrupted in flight.
	ErrBadFingerprint = errors.New("codec: header fingerprint mismatch (corrupt config block)")
	// ErrTruncated means the bytes end before the structure they promise.
	ErrTruncated = errors.New("codec: truncated input")
	// ErrTrailingData means bytes remain after a complete decode.
	ErrTrailingData = errors.New("codec: trailing data after payload")
)

// fnv1a is the 64-bit FNV-1a hash sealing the header.
func fnv1a(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// ---------------------------------------------------------------------------
// Encoder
// ---------------------------------------------------------------------------

// Encoder builds one serialized sketch, append-only.
type Encoder struct {
	buf []byte
}

// NewEncoder starts a serialized sketch of the given kind: magic, version
// and kind are written immediately.
func NewEncoder(kind Kind) *Encoder {
	e := &Encoder{buf: make([]byte, 0, 256)}
	e.buf = append(e.buf, magic[:]...)
	e.buf = binary.LittleEndian.AppendUint16(e.buf, Version)
	e.buf = binary.LittleEndian.AppendUint16(e.buf, uint16(kind))
	return e
}

// U64 appends one little-endian 64-bit word.
func (e *Encoder) U64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }

// I64 appends a signed word (two's complement).
func (e *Encoder) I64(v int64) { e.U64(uint64(v)) }

// F64 appends a float as its IEEE-754 bits.
func (e *Encoder) F64(v float64) { e.U64(math.Float64bits(v)) }

// Bool appends a flag as a full word (keeps every field 8-byte aligned).
func (e *Encoder) Bool(v bool) {
	var w uint64
	if v {
		w = 1
	}
	e.U64(w)
}

// SealHeader appends the FNV-1a fingerprint of everything written so far —
// call it once, after the config block and before the payload.
func (e *Encoder) SealHeader() { e.U64(fnv1a(e.buf)) }

// Bytes returns the serialized sketch. The encoder may not be reused.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len reports the bytes written so far.
func (e *Encoder) Len() int { return len(e.buf) }

// ---------------------------------------------------------------------------
// Decoder
// ---------------------------------------------------------------------------

// Decoder reads one serialized sketch with sticky errors: after the first
// failure every read returns zero and Err reports the cause, so restore
// paths can decode a whole structure and check once at the end.
type Decoder struct {
	data []byte
	off  int
	kind Kind
	err  error
}

// NewDecoder validates magic and version and positions the decoder at the
// config block. The kind is available via Kind.
func NewDecoder(data []byte) (*Decoder, error) {
	if len(data) < headerSize {
		return nil, fmt.Errorf("%w: %d bytes, want at least %d", ErrTruncated, len(data), headerSize)
	}
	if [4]byte(data[:4]) != magic {
		return nil, ErrBadMagic
	}
	if v := binary.LittleEndian.Uint16(data[4:6]); v != Version {
		return nil, fmt.Errorf("%w: got %d, support %d", ErrBadVersion, v, Version)
	}
	return &Decoder{
		data: data,
		off:  headerSize,
		kind: Kind(binary.LittleEndian.Uint16(data[6:8])),
	}, nil
}

// Kind reports the sketch kind declared in the header.
func (d *Decoder) Kind() Kind { return d.kind }

// U64 reads one little-endian word (zero after a failure).
func (d *Decoder) U64() uint64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.data) {
		d.err = fmt.Errorf("%w: want 8 bytes at offset %d of %d", ErrTruncated, d.off, len(d.data))
		return 0
	}
	v := binary.LittleEndian.Uint64(d.data[d.off:])
	d.off += 8
	return v
}

// I64 reads a signed word.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// F64 reads a float from its IEEE-754 bits.
func (d *Decoder) F64() float64 { return math.Float64frombits(d.U64()) }

// Bool reads a flag word.
func (d *Decoder) Bool() bool { return d.U64() != 0 }

// VerifyHeader checks the fingerprint sealing the header: the FNV-1a of
// every byte before the current offset must equal the next word. Call it
// exactly where the encoder called SealHeader.
func (d *Decoder) VerifyHeader() error {
	if d.err != nil {
		return d.err
	}
	want := fnv1a(d.data[:d.off])
	if got := d.U64(); d.err == nil && got != want {
		d.err = ErrBadFingerprint
	}
	return d.err
}

// Err reports the first failure, if any.
func (d *Decoder) Err() error { return d.err }

// Fail injects a failure into the decoder from a caller that discovered the
// decoded values are semantically invalid (e.g. an out-of-range payload
// marker). The first failure wins; subsequent reads return zero and Finish
// reports it.
func (d *Decoder) Fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

// Remaining reports the unread byte count.
func (d *Decoder) Remaining() int { return len(d.data) - d.off }

// Finish reports the first failure, or ErrTrailingData when unread bytes
// remain after a complete decode.
func (d *Decoder) Finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.data) {
		return fmt.Errorf("%w: %d bytes", ErrTrailingData, len(d.data)-d.off)
	}
	return nil
}
