package core

import (
	"math/rand/v2"
	"testing"

	"repro/internal/stream"
	"repro/internal/vector"
)

// runTwoPass replays the stream through both passes and samples.
func runTwoPass(tp *TwoPassL0Sampler, st stream.Stream) (Sample, bool) {
	st.Feed(tp)
	tp.EndPass1()
	st.Feed(tp)
	return tp.Sample()
}

func TestTwoPassZeroVector(t *testing.T) {
	r := rand.New(rand.NewPCG(1, 1))
	tp := NewTwoPassL0Sampler(128, 0.2, r)
	if _, ok := runTwoPass(tp, nil); ok {
		t.Fatal("two-pass sampler must fail on the zero vector")
	}
}

func TestTwoPassSmallSupport(t *testing.T) {
	r := rand.New(rand.NewPCG(2, 2))
	for trial := 0; trial < 20; trial++ {
		tp := NewTwoPassL0Sampler(512, 0.2, r)
		st := stream.SparseVector(512, 1+trial%8, 1000, r)
		truth := st.Apply(512)
		out, ok := runTwoPass(tp, st)
		if !ok {
			t.Fatalf("trial %d: failed on small support", trial)
		}
		if truth.Get(out.Index) == 0 || out.Estimate != float64(truth.Get(out.Index)) {
			t.Fatalf("trial %d: sample (%d,%v) not exact", trial, out.Index, out.Estimate)
		}
	}
}

func TestTwoPassLargeSupport(t *testing.T) {
	r := rand.New(rand.NewPCG(3, 3))
	const n = 1024
	fails := 0
	const trials = 30
	for trial := 0; trial < trials; trial++ {
		tp := NewTwoPassL0Sampler(n, 0.15, r)
		st := stream.SparseVector(n, 300+trial*10, 100, r)
		truth := st.Apply(n)
		out, ok := runTwoPass(tp, st)
		if !ok {
			fails++
			continue
		}
		if truth.Get(out.Index) == 0 {
			t.Fatalf("trial %d: sampled zero coordinate", trial)
		}
		if out.Estimate != float64(truth.Get(out.Index)) {
			t.Fatalf("trial %d: value not exact", trial)
		}
	}
	if fails > trials/4 {
		t.Errorf("failed %d/%d times", fails, trials)
	}
}

func TestTwoPassUniformity(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	r := rand.New(rand.NewPCG(4, 4))
	const n = 256
	values := map[int]int64{5: 1, 50: -9999, 100: 3, 150: 77, 200: -2, 250: 999}
	var st stream.Stream
	for i, v := range values {
		st = append(st, stream.Update{Index: i, Delta: v})
	}
	truth := st.Apply(n)
	target := truth.LpDistribution(0)
	counts := map[int]int{}
	got := 0
	const trials = 300
	for trial := 0; trial < trials; trial++ {
		tp := NewTwoPassL0Sampler(n, 0.2, r)
		out, ok := runTwoPass(tp, st)
		if !ok {
			continue
		}
		got++
		counts[out.Index]++
	}
	if got < trials*8/10 {
		t.Fatalf("only %d/%d succeeded", got, trials)
	}
	if tv := vector.EmpiricalTV(counts, target, got); tv > 0.12 {
		t.Errorf("TV from uniform = %.3f too large", tv)
	}
}

func TestTwoPassSpaceBelowOnePass(t *testing.T) {
	// The point of the remark: for large n the two-pass sampler undercuts
	// the one-pass O(log² n) structure.
	r := rand.New(rand.NewPCG(5, 5))
	const n = 1 << 16
	two := NewTwoPassL0Sampler(n, 0.2, r)
	one := NewL0Sampler(L0Config{N: n, Delta: 0.2}, r)
	if two.SpaceBits() >= one.SpaceBits() {
		t.Errorf("two-pass (%d bits) should undercut one-pass (%d bits) at n=2^16",
			two.SpaceBits(), one.SpaceBits())
	}
}

func TestTwoPassMisuse(t *testing.T) {
	r := rand.New(rand.NewPCG(6, 6))
	tp := NewTwoPassL0Sampler(64, 0.2, r)
	tp.Process(stream.Update{Index: 1, Delta: 5})
	// Sampling before EndPass1 must fail cleanly, not panic.
	if _, ok := tp.Sample(); ok {
		t.Fatal("Sample before pass 2 must report failure")
	}
}

func TestTwoPassPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewTwoPassL0Sampler(0, 0.2, rand.New(rand.NewPCG(7, 7)))
}
