package core

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/stream"
	"repro/internal/vector"
)

func TestL0SamplerZeroVector(t *testing.T) {
	r := rand.New(rand.NewPCG(1, 1))
	s := NewL0Sampler(L0Config{N: 128, Delta: 0.2}, r)
	if _, ok := s.Sample(); ok {
		t.Fatal("L0 sampler must fail on the zero vector")
	}
}

func TestL0SamplerSmallSupportNeverFails(t *testing.T) {
	// |J| <= s: level 0 recovers x exactly, failure is impossible
	// (Theorem 2 proof: "for |J| <= s failure is not possible").
	r := rand.New(rand.NewPCG(2, 2))
	for trial := 0; trial < 30; trial++ {
		s := NewL0Sampler(L0Config{N: 512, Delta: 0.25}, r)
		support := 1 + trial%s.S()
		st := stream.SparseVector(512, support, 1000, r)
		truth := st.Apply(512)
		st.Feed(s)
		out, ok := s.Sample()
		if !ok {
			t.Fatalf("trial %d: failed on %d-sparse vector (s=%d)", trial, support, s.S())
		}
		if truth.Get(out.Index) == 0 {
			t.Fatalf("trial %d: sampled zero coordinate %d", trial, out.Index)
		}
		if out.Estimate != float64(truth.Get(out.Index)) {
			t.Fatalf("trial %d: value %v != exact %d (zero relative error violated)",
				trial, out.Estimate, truth.Get(out.Index))
		}
	}
}

func TestL0SamplerLargeSupportSuccessRate(t *testing.T) {
	r := rand.New(rand.NewPCG(3, 3))
	const n = 512
	fails := 0
	const trials = 40
	for trial := 0; trial < trials; trial++ {
		s := NewL0Sampler(L0Config{N: n, Delta: 0.1}, r)
		// Dense support: every coordinate nonzero.
		for i := 0; i < n; i++ {
			s.Process(stream.Update{Index: i, Delta: int64(1 + i%7)})
		}
		out, ok := s.Sample()
		if !ok {
			fails++
			continue
		}
		if out.Index < 0 || out.Index >= n {
			t.Fatalf("index %d out of range", out.Index)
		}
	}
	if fails > trials/5 {
		t.Errorf("failed %d/%d times, want <= δ=0.1 + slack", fails, trials)
	}
}

func TestL0SamplerUniformity(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	r := rand.New(rand.NewPCG(4, 4))
	const n = 256
	// Support of 6 coordinates with very different magnitudes: the L0
	// distribution ignores magnitudes entirely.
	values := map[int]int64{5: 1, 50: -1000000, 100: 3, 150: 77, 200: -2, 250: 999}
	var st stream.Stream
	for i, v := range values {
		st = append(st, stream.Update{Index: i, Delta: v})
	}
	truth := st.Apply(n)
	target := truth.LpDistribution(0)

	counts := map[int]int{}
	got := 0
	const trials = 400
	for trial := 0; trial < trials; trial++ {
		s := NewL0Sampler(L0Config{N: n, Delta: 0.2}, r)
		st.Feed(s)
		out, ok := s.Sample()
		if !ok {
			continue
		}
		counts[out.Index]++
		got++
	}
	if got < trials*9/10 {
		t.Fatalf("only %d/%d trials succeeded on 6-sparse input", got, trials)
	}
	tv := vector.EmpiricalTV(counts, target, got)
	// 6 atoms at ~400 samples: sampling noise ~ 0.07; uniformity error must
	// not push beyond this by much (zero relative error claim).
	if tv > 0.12 {
		t.Errorf("TV from uniform = %.3f too large", tv)
	}
}

func TestL0SamplerMidSupportValuesExact(t *testing.T) {
	// Support > s: recovery happens at a subsampled level; returned values
	// must still be exactly x_i.
	r := rand.New(rand.NewPCG(5, 5))
	const n = 1024
	st := stream.SparseVector(n, 100, 500, r)
	truth := st.Apply(n)
	okCount := 0
	for trial := 0; trial < 20; trial++ {
		s := NewL0Sampler(L0Config{N: n, Delta: 0.2}, r)
		st.Feed(s)
		out, ok := s.Sample()
		if !ok {
			continue
		}
		okCount++
		if float64(truth.Get(out.Index)) != out.Estimate {
			t.Fatalf("value %v != exact %d", out.Estimate, truth.Get(out.Index))
		}
	}
	if okCount < 14 {
		t.Errorf("only %d/20 trials succeeded", okCount)
	}
}

func TestL0SamplerAfterChurn(t *testing.T) {
	// Insert everything, delete all but 3: sampler must land on survivors.
	r := rand.New(rand.NewPCG(6, 6))
	const n = 300
	s := NewL0Sampler(L0Config{N: n, Delta: 0.1}, r)
	for i := 0; i < n; i++ {
		s.Process(stream.Update{Index: i, Delta: 9})
	}
	survivors := map[int]bool{10: true, 150: true, 299: true}
	for i := 0; i < n; i++ {
		if !survivors[i] {
			s.Process(stream.Update{Index: i, Delta: -9})
		}
	}
	out, ok := s.Sample()
	if !ok {
		t.Fatal("sampler failed on 3-sparse post-churn vector")
	}
	if !survivors[out.Index] || out.Estimate != 9 {
		t.Fatalf("sampled (%d, %v), want a survivor with value 9", out.Index, out.Estimate)
	}
}

func TestL0SamplerSpacePolylog(t *testing.T) {
	r := rand.New(rand.NewPCG(7, 7))
	small := NewL0Sampler(L0Config{N: 1 << 8, Delta: 0.2}, r)
	big := NewL0Sampler(L0Config{N: 1 << 16, Delta: 0.2}, r)
	if big.SpaceBits() <= small.SpaceBits() {
		t.Error("space must grow with log n")
	}
	if big.SpaceBits() > 8*small.SpaceBits() {
		t.Errorf("space not polylog: %d -> %d for 256x dimension", small.SpaceBits(), big.SpaceBits())
	}
	// s grows with log(1/δ).
	loose := NewL0Sampler(L0Config{N: 1 << 10, Delta: 0.4}, r)
	tight := NewL0Sampler(L0Config{N: 1 << 10, Delta: 0.01}, r)
	if tight.S() <= loose.S() {
		t.Error("s must grow with log(1/δ)")
	}
}

func TestL0SamplerConfigValidation(t *testing.T) {
	r := rand.New(rand.NewPCG(8, 8))
	defer func() {
		if recover() == nil {
			t.Error("expected panic for N=0")
		}
	}()
	NewL0Sampler(L0Config{N: 0, Delta: 0.2}, r)
}

func TestL0SamplerSOverride(t *testing.T) {
	r := rand.New(rand.NewPCG(9, 9))
	s := NewL0Sampler(L0Config{N: 128, Delta: 0.2, SOverride: 17}, r)
	if s.S() != 17 {
		t.Errorf("SOverride ignored: s=%d", s.S())
	}
}

// TestL0ProcessBatchMatchesProcess pins the update-major batched path to the
// scalar path bit-for-bit (ExportState compares every syndrome and
// fingerprint of every level), in both level-assignment modes and across
// batch sizes that exercise the transposed kernel's groups and tails.
func TestL0ProcessBatchMatchesProcess(t *testing.T) {
	for _, nested := range []bool{false, true} {
		for _, length := range []int{1, 3, 64, 1000} {
			r := rand.New(rand.NewPCG(11, uint64(length)))
			st := stream.RandomTurnstile(777, length, 50, r)
			mk := func() *L0Sampler {
				return NewL0Sampler(L0Config{N: 777, Delta: 0.2, NestedLevels: nested},
					rand.New(rand.NewPCG(21, 22)))
			}
			scalar, batched := mk(), mk()
			for _, u := range st {
				scalar.Process(u)
			}
			batched.ProcessBatch(st)
			a, b := scalar.ExportState(), batched.ExportState()
			if len(a) != len(b) {
				t.Fatalf("nested=%v len=%d: state sizes differ", nested, length)
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("nested=%v len=%d: state byte %d differs", nested, length, i)
				}
			}
		}
	}
}

// TestL0NestedMembershipIsNested: with NestedLevels the subsets must satisfy
// I_1 ⊆ I_2 ⊆ ... — the §2.1 dyadic reading — while the default mode has no
// such constraint.
func TestL0NestedMembershipIsNested(t *testing.T) {
	r := rand.New(rand.NewPCG(31, 32))
	s := NewL0Sampler(L0Config{N: 4096, Delta: 0.2, NestedLevels: true}, r)
	for i := 0; i < 4096; i += 7 {
		for k := 1; k < s.Levels()-1; k++ {
			if s.member(k, i) && !s.member(k+1, i) {
				t.Fatalf("coordinate %d in I_%d but not I_%d", i, k, k+1)
			}
		}
	}
}

// TestL0NestedLevelSizes: E|I_k| = 2^k must hold under the dyadic threshold
// assignment; check each tested level's size within 6 standard deviations.
func TestL0NestedLevelSizes(t *testing.T) {
	r := rand.New(rand.NewPCG(33, 34))
	const n = 1 << 14
	s := NewL0Sampler(L0Config{N: n, Delta: 0.2, NestedLevels: true}, r)
	for k := 1; k < s.Levels(); k++ {
		count := 0
		for i := 0; i < n; i++ {
			if s.member(k, i) {
				count++
			}
		}
		mean := float64(uint64(1) << k)
		sd := math.Sqrt(mean * (1 - mean/n))
		if math.Abs(float64(count)-mean) > 6*sd+1 {
			t.Errorf("level %d: |I_k| = %d, want %.0f ± %.0f", k, count, mean, 6*sd)
		}
	}
}

// TestL0NestedSmallSupportNeverFails mirrors the default-mode guarantee in
// nested mode: |J| <= s is recovered exactly by level 0 with probability 1.
func TestL0NestedSmallSupportNeverFails(t *testing.T) {
	r := rand.New(rand.NewPCG(35, 36))
	for trial := 0; trial < 30; trial++ {
		s := NewL0Sampler(L0Config{N: 512, Delta: 0.25, NestedLevels: true}, r)
		support := 1 + trial%s.S()
		st := stream.SparseVector(512, support, 1000, r)
		truth := st.Apply(512)
		st.Feed(s)
		out, ok := s.Sample()
		if !ok {
			t.Fatalf("trial %d: failed on %d-sparse vector", trial, support)
		}
		if truth.Get(out.Index) == 0 || out.Estimate != float64(truth.Get(out.Index)) {
			t.Fatalf("trial %d: sampled (%d, %v), want exact support element",
				trial, out.Index, out.Estimate)
		}
	}
}

// TestL0NestedUniformity: the sampling distribution under NestedLevels must
// be as uniform over the support as the default mode's (Theorem 2's
// guarantee does not depend on which of the two level constructions is
// used).
func TestL0NestedUniformity(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	r := rand.New(rand.NewPCG(37, 38))
	const n = 256
	values := map[int]int64{5: 1, 50: -1000000, 100: 3, 150: 77, 200: -2, 250: 999}
	var st stream.Stream
	for i, v := range values {
		st = append(st, stream.Update{Index: i, Delta: v})
	}
	truth := st.Apply(n)
	target := truth.LpDistribution(0)
	counts := map[int]int{}
	got := 0
	const trials = 400
	for trial := 0; trial < trials; trial++ {
		s := NewL0Sampler(L0Config{N: n, Delta: 0.2, NestedLevels: true}, r)
		st.Feed(s)
		out, ok := s.Sample()
		if !ok {
			continue
		}
		counts[out.Index]++
		got++
	}
	if got < trials*9/10 {
		t.Fatalf("only %d/%d trials succeeded on 6-sparse input", got, trials)
	}
	tv := vector.EmpiricalTV(counts, target, got)
	if tv > 0.12 {
		t.Errorf("TV from uniform = %.3f too large", tv)
	}
}

// TestL0NestedMidSupportValuesExact: supports above s recover at subsampled
// levels; values must stay exact in nested mode too.
func TestL0NestedMidSupportValuesExact(t *testing.T) {
	r := rand.New(rand.NewPCG(39, 40))
	const n = 1024
	st := stream.SparseVector(n, 100, 500, r)
	truth := st.Apply(n)
	okCount := 0
	for trial := 0; trial < 20; trial++ {
		s := NewL0Sampler(L0Config{N: n, Delta: 0.2, NestedLevels: true}, r)
		st.Feed(s)
		out, ok := s.Sample()
		if !ok {
			continue
		}
		okCount++
		if float64(truth.Get(out.Index)) != out.Estimate {
			t.Fatalf("value %v != exact %d", out.Estimate, truth.Get(out.Index))
		}
	}
	if okCount < 14 {
		t.Errorf("only %d/20 trials succeeded", okCount)
	}
}

// TestL0MergeRejectsModeMismatch: nested and i.i.d. samplers must not merge
// even when their recoverers happen to share seeds.
func TestL0MergeRejectsModeMismatch(t *testing.T) {
	a := NewL0Sampler(L0Config{N: 128, Delta: 0.2}, rand.New(rand.NewPCG(41, 42)))
	b := NewL0Sampler(L0Config{N: 128, Delta: 0.2, NestedLevels: true}, rand.New(rand.NewPCG(41, 42)))
	if err := a.Merge(b); err == nil {
		t.Fatal("merging different level-assignment modes must fail")
	}
}

// TestL0SampleLevelRandomness pins the Sample randomness fix: the uniform
// support choice at recovery level k reads the PRG block reserved for THAT
// level (sampleBase+k) and reduces it with the width-based integer map
// ⌊block·m/2^61⌋ — so the drawn rank differs across levels instead of
// repeating one reserved block everywhere.
func TestL0SampleLevelRandomness(t *testing.T) {
	r := rand.New(rand.NewPCG(43, 44))
	s := NewL0Sampler(L0Config{N: 512, Delta: 0.2}, r)
	// 4-sparse vector: level 0 recovers; Sample must pick
	// support[⌊Block(sampleBase+0)·4/2^61⌋].
	support := []int{7, 100, 200, 300}
	for _, i := range support {
		s.Process(stream.Update{Index: i, Delta: int64(i)})
	}
	out, ok := s.Sample()
	if !ok {
		t.Fatal("sampler failed on 4-sparse vector")
	}
	blk := s.gen.Block(s.sampleBase)
	want := support[blk*4>>61] // floor(blk·4 / 2^61); blk < 2^61 so blk·4 cannot overflow
	if out.Index != want {
		t.Fatalf("Sample picked %d, want %d from level-0 reserved block", out.Index, want)
	}
	// Distinct levels read distinct reserved blocks (the pre-fix code read
	// one shared block for every level and every call).
	seen := map[uint64]bool{}
	for k := 0; k < s.Levels(); k++ {
		seen[s.gen.Block(s.sampleBase+uint64(k))] = true
	}
	if len(seen) < 2 {
		t.Fatal("per-level sample blocks collapse to one value")
	}
}

func BenchmarkL0SamplerProcess(b *testing.B) {
	r := rand.New(rand.NewPCG(1, 1))
	s := NewL0Sampler(L0Config{N: 1 << 16, Delta: 0.2}, r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Process(stream.Update{Index: i % (1 << 16), Delta: 1})
	}
}

// BenchmarkL0SamplerSample measures repeated Sample() calls on an unchanged
// sketch — a fresh multi-level decode per call before PR 4, the memoized
// cached sample after it.
func BenchmarkL0SamplerSample(b *testing.B) {
	r := rand.New(rand.NewPCG(1, 1))
	const n = 1 << 12
	s := NewL0Sampler(L0Config{N: n, Delta: 0.2}, r)
	st := stream.SparseVector(n, 64, 100, r)
	st.Feed(s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Sample()
	}
}

// BenchmarkL0SamplerSampleDirty measures the real multi-level decode: a
// canceling update pair re-dirties the sampler each iteration (leaving its
// state unchanged), so Sample must re-run recovery on every level the
// touched coordinate reaches — comparable before and after the memoization.
func BenchmarkL0SamplerSampleDirty(b *testing.B) {
	r := rand.New(rand.NewPCG(1, 1))
	const n = 1 << 12
	s := NewL0Sampler(L0Config{N: n, Delta: 0.2}, r)
	st := stream.SparseVector(n, 64, 100, r)
	st.Feed(s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Process(stream.Update{Index: 0, Delta: 1})
		s.Process(stream.Update{Index: 0, Delta: -1})
		s.Sample()
	}
}
