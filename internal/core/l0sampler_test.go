package core

import (
	"math/rand/v2"
	"testing"

	"repro/internal/stream"
	"repro/internal/vector"
)

func TestL0SamplerZeroVector(t *testing.T) {
	r := rand.New(rand.NewPCG(1, 1))
	s := NewL0Sampler(L0Config{N: 128, Delta: 0.2}, r)
	if _, ok := s.Sample(); ok {
		t.Fatal("L0 sampler must fail on the zero vector")
	}
}

func TestL0SamplerSmallSupportNeverFails(t *testing.T) {
	// |J| <= s: level 0 recovers x exactly, failure is impossible
	// (Theorem 2 proof: "for |J| <= s failure is not possible").
	r := rand.New(rand.NewPCG(2, 2))
	for trial := 0; trial < 30; trial++ {
		s := NewL0Sampler(L0Config{N: 512, Delta: 0.25}, r)
		support := 1 + trial%s.S()
		st := stream.SparseVector(512, support, 1000, r)
		truth := st.Apply(512)
		st.Feed(s)
		out, ok := s.Sample()
		if !ok {
			t.Fatalf("trial %d: failed on %d-sparse vector (s=%d)", trial, support, s.S())
		}
		if truth.Get(out.Index) == 0 {
			t.Fatalf("trial %d: sampled zero coordinate %d", trial, out.Index)
		}
		if out.Estimate != float64(truth.Get(out.Index)) {
			t.Fatalf("trial %d: value %v != exact %d (zero relative error violated)",
				trial, out.Estimate, truth.Get(out.Index))
		}
	}
}

func TestL0SamplerLargeSupportSuccessRate(t *testing.T) {
	r := rand.New(rand.NewPCG(3, 3))
	const n = 512
	fails := 0
	const trials = 40
	for trial := 0; trial < trials; trial++ {
		s := NewL0Sampler(L0Config{N: n, Delta: 0.1}, r)
		// Dense support: every coordinate nonzero.
		for i := 0; i < n; i++ {
			s.Process(stream.Update{Index: i, Delta: int64(1 + i%7)})
		}
		out, ok := s.Sample()
		if !ok {
			fails++
			continue
		}
		if out.Index < 0 || out.Index >= n {
			t.Fatalf("index %d out of range", out.Index)
		}
	}
	if fails > trials/5 {
		t.Errorf("failed %d/%d times, want <= δ=0.1 + slack", fails, trials)
	}
}

func TestL0SamplerUniformity(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	r := rand.New(rand.NewPCG(4, 4))
	const n = 256
	// Support of 6 coordinates with very different magnitudes: the L0
	// distribution ignores magnitudes entirely.
	values := map[int]int64{5: 1, 50: -1000000, 100: 3, 150: 77, 200: -2, 250: 999}
	var st stream.Stream
	for i, v := range values {
		st = append(st, stream.Update{Index: i, Delta: v})
	}
	truth := st.Apply(n)
	target := truth.LpDistribution(0)

	counts := map[int]int{}
	got := 0
	const trials = 400
	for trial := 0; trial < trials; trial++ {
		s := NewL0Sampler(L0Config{N: n, Delta: 0.2}, r)
		st.Feed(s)
		out, ok := s.Sample()
		if !ok {
			continue
		}
		counts[out.Index]++
		got++
	}
	if got < trials*9/10 {
		t.Fatalf("only %d/%d trials succeeded on 6-sparse input", got, trials)
	}
	tv := vector.EmpiricalTV(counts, target, got)
	// 6 atoms at ~400 samples: sampling noise ~ 0.07; uniformity error must
	// not push beyond this by much (zero relative error claim).
	if tv > 0.12 {
		t.Errorf("TV from uniform = %.3f too large", tv)
	}
}

func TestL0SamplerMidSupportValuesExact(t *testing.T) {
	// Support > s: recovery happens at a subsampled level; returned values
	// must still be exactly x_i.
	r := rand.New(rand.NewPCG(5, 5))
	const n = 1024
	st := stream.SparseVector(n, 100, 500, r)
	truth := st.Apply(n)
	okCount := 0
	for trial := 0; trial < 20; trial++ {
		s := NewL0Sampler(L0Config{N: n, Delta: 0.2}, r)
		st.Feed(s)
		out, ok := s.Sample()
		if !ok {
			continue
		}
		okCount++
		if float64(truth.Get(out.Index)) != out.Estimate {
			t.Fatalf("value %v != exact %d", out.Estimate, truth.Get(out.Index))
		}
	}
	if okCount < 14 {
		t.Errorf("only %d/20 trials succeeded", okCount)
	}
}

func TestL0SamplerAfterChurn(t *testing.T) {
	// Insert everything, delete all but 3: sampler must land on survivors.
	r := rand.New(rand.NewPCG(6, 6))
	const n = 300
	s := NewL0Sampler(L0Config{N: n, Delta: 0.1}, r)
	for i := 0; i < n; i++ {
		s.Process(stream.Update{Index: i, Delta: 9})
	}
	survivors := map[int]bool{10: true, 150: true, 299: true}
	for i := 0; i < n; i++ {
		if !survivors[i] {
			s.Process(stream.Update{Index: i, Delta: -9})
		}
	}
	out, ok := s.Sample()
	if !ok {
		t.Fatal("sampler failed on 3-sparse post-churn vector")
	}
	if !survivors[out.Index] || out.Estimate != 9 {
		t.Fatalf("sampled (%d, %v), want a survivor with value 9", out.Index, out.Estimate)
	}
}

func TestL0SamplerSpacePolylog(t *testing.T) {
	r := rand.New(rand.NewPCG(7, 7))
	small := NewL0Sampler(L0Config{N: 1 << 8, Delta: 0.2}, r)
	big := NewL0Sampler(L0Config{N: 1 << 16, Delta: 0.2}, r)
	if big.SpaceBits() <= small.SpaceBits() {
		t.Error("space must grow with log n")
	}
	if big.SpaceBits() > 8*small.SpaceBits() {
		t.Errorf("space not polylog: %d -> %d for 256x dimension", small.SpaceBits(), big.SpaceBits())
	}
	// s grows with log(1/δ).
	loose := NewL0Sampler(L0Config{N: 1 << 10, Delta: 0.4}, r)
	tight := NewL0Sampler(L0Config{N: 1 << 10, Delta: 0.01}, r)
	if tight.S() <= loose.S() {
		t.Error("s must grow with log(1/δ)")
	}
}

func TestL0SamplerConfigValidation(t *testing.T) {
	r := rand.New(rand.NewPCG(8, 8))
	defer func() {
		if recover() == nil {
			t.Error("expected panic for N=0")
		}
	}()
	NewL0Sampler(L0Config{N: 0, Delta: 0.2}, r)
}

func TestL0SamplerSOverride(t *testing.T) {
	r := rand.New(rand.NewPCG(9, 9))
	s := NewL0Sampler(L0Config{N: 128, Delta: 0.2, SOverride: 17}, r)
	if s.S() != 17 {
		t.Errorf("SOverride ignored: s=%d", s.S())
	}
}

func BenchmarkL0SamplerProcess(b *testing.B) {
	r := rand.New(rand.NewPCG(1, 1))
	s := NewL0Sampler(L0Config{N: 1 << 16, Delta: 0.2}, r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Process(stream.Update{Index: i % (1 << 16), Delta: 1})
	}
}

func BenchmarkL0SamplerSample(b *testing.B) {
	r := rand.New(rand.NewPCG(1, 1))
	const n = 1 << 12
	s := NewL0Sampler(L0Config{N: n, Delta: 0.2}, r)
	st := stream.SparseVector(n, 64, 100, r)
	st.Feed(s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Sample()
	}
}
