package core

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/stream"
)

// TestPropertyL0SamplerNeverLeavesSupport: whatever sparse stream arrives,
// an emitted L0 sample is a support element with its exact value — the
// "never returns an index outside J" half of Theorem 2, which holds with
// probability 1 up to the fingerprint collision event.
func TestPropertyL0SamplerNeverLeavesSupport(t *testing.T) {
	f := func(seed uint64, supRaw uint8) bool {
		rr := rand.New(rand.NewPCG(seed, 31))
		n := 64 + rr.IntN(400)
		sup := int(supRaw) % (n / 2)
		st := stream.SparseVector(n, sup, 1000, rr)
		truth := st.Apply(n)
		s := NewL0Sampler(L0Config{N: n, Delta: 0.25}, rr)
		st.Feed(s)
		out, ok := s.Sample()
		if !ok {
			return true // failure is allowed; wrong output is not
		}
		return truth.Get(out.Index) != 0 && float64(truth.Get(out.Index)) == out.Estimate
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyL0MergeEqualsConcatenation: merging same-seed sketches of two
// streams samples identically to one sketch fed both streams.
func TestPropertyL0MergeEqualsConcatenation(t *testing.T) {
	f := func(seed uint64, rawA, rawB []int16) bool {
		const n = 128
		mk := func() *L0Sampler {
			return NewL0Sampler(L0Config{N: n, Delta: 0.25}, rand.New(rand.NewPCG(seed, 37)))
		}
		toStream := func(raw []int16) stream.Stream {
			var st stream.Stream
			for k, v := range raw {
				if v != 0 {
					st = append(st, stream.Update{Index: k % n, Delta: int64(v)})
				}
			}
			return st
		}
		a, b := toStream(rawA), toStream(rawB)
		whole := mk()
		a.Feed(whole)
		b.Feed(whole)
		pa, pb := mk(), mk()
		a.Feed(pa)
		b.Feed(pb)
		if err := pa.Merge(pb); err != nil {
			return false
		}
		wOut, wOK := whole.Sample()
		mOut, mOK := pa.Sample()
		return wOK == mOK && wOut == mOut
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestPropertyLpSamplerEmitsNonzeroEstimates: an emitted sample always
// carries a nonzero estimate whose magnitude cleared the ε^{-1/p}·r
// threshold — by construction, never 0 or NaN.
func TestPropertyLpSamplerEmitsNonzeroEstimates(t *testing.T) {
	f := func(seed uint64) bool {
		rr := rand.New(rand.NewPCG(seed, 41))
		const n = 128
		st := stream.ZipfSigned(n, 0.9, 1000, rr)
		s := NewLpSampler(LpConfig{P: 1, N: n, Eps: 0.3, Delta: 0.3}, rr)
		st.Feed(s)
		for _, out := range s.SampleAll() {
			if out.Estimate == 0 || out.Estimate != out.Estimate /* NaN */ {
				return false
			}
			if out.Index < 0 || out.Index >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestPropertySampleConsistentWithSampleAll: Sample() is exactly the head of
// SampleAll(). (Sample re-runs the recovery stage; with identical sketch
// state the result must agree.)
func TestPropertySampleConsistentWithSampleAll(t *testing.T) {
	f := func(seed uint64) bool {
		rr := rand.New(rand.NewPCG(seed, 43))
		const n = 64
		st := stream.RandomTurnstile(n, 256, 20, rr)
		s := NewLpSampler(LpConfig{P: 1.5, N: n, Eps: 0.4, Delta: 0.3}, rr)
		st.Feed(s)
		all := s.SampleAll()
		one, ok := s.Sample()
		if len(all) == 0 {
			return !ok
		}
		return ok && one == all[0]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestPropertyDiagnosticsAccountForAllCopies: emitted + aborted + threshold-
// failed + guarded must equal the repetition count after every SampleAll.
func TestPropertyDiagnosticsAccountForAllCopies(t *testing.T) {
	f := func(seed uint64, dense bool) bool {
		rr := rand.New(rand.NewPCG(seed, 47))
		const n = 64
		var st stream.Stream
		if dense {
			st = stream.RandomTurnstile(n, 512, 20, rr)
		} else {
			st = stream.SparseVector(n, 3, 100, rr)
		}
		s := NewLpSampler(LpConfig{P: 1, N: n, Eps: 0.3, Delta: 0.3}, rr)
		st.Feed(s)
		s.SampleAll()
		d := s.Diagnostics()
		if st.Apply(n).L0() == 0 {
			return true // zero vector: SampleAll returns before triage
		}
		return d.Emitted+d.STestAborts+d.ThresholdFails+d.Guarded == s.Copies()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
