package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"sort"

	"repro/internal/prng"
	"repro/internal/sparse"
	"repro/internal/stream"
)

// L0Config configures the zero relative error L0 sampler of Theorem 2.
type L0Config struct {
	// N is the dimension of the underlying vector.
	N int
	// Delta is the failure probability bound.
	Delta float64
	// SOverride forces the per-level sparse-recovery budget s
	// (default ⌈4 log₂(1/δ)⌉ as in the proof of Theorem 2).
	SOverride int
}

// L0Sampler samples a uniformly random element of the support of x, together
// with the exact value x_i (sparse recovery is exact, hence "zero relative
// error"). Structure, following §2.1:
//
//   - subsets I_k ⊆ [n] for k = 1..⌊log n⌋ with E|I_k| = 2^k, plus I_0 = [n];
//   - an exact s-sparse recoverer (Lemma 5) on x restricted to each I_k;
//   - the sample is a uniformly random nonzero coordinate of the first level
//     that recovers a nonzero s-sparse vector.
//
// All membership bits and the final uniform choice are drawn from Nisan's
// PRG with an O(log² n)-bit seed, exactly as the derandomization step of
// Theorem 2 prescribes (membership is i.i.d. per (level, coordinate) —
// substitution #2 in DESIGN.md).
type L0Sampler struct {
	n      int
	s      int
	levels []*sparse.Recoverer
	gen    *prng.Nisan

	// scratch holds the per-level membership-filtered sub-batch during
	// ProcessBatch, reused across calls.
	scratch []stream.Update
}

// NewL0Sampler constructs the sampler, drawing the PRG seed and the
// sparse-recovery verification points from r.
func NewL0Sampler(cfg L0Config, r *rand.Rand) *L0Sampler {
	if cfg.N < 1 {
		panic("core: n must be positive")
	}
	if cfg.Delta <= 0 || cfg.Delta >= 1 {
		cfg.Delta = 0.25
	}
	s := cfg.SOverride
	if s <= 0 {
		s = int(math.Ceil(4 * math.Log2(1/cfg.Delta)))
		if s < 4 {
			s = 4
		}
	}
	numLevels := 1
	for 1<<numLevels < cfg.N {
		numLevels++
	}
	numLevels++ // levels 0..⌊log n⌋
	l := &L0Sampler{
		n:      cfg.N,
		s:      s,
		levels: make([]*sparse.Recoverer, numLevels),
		// One membership block per (level, coordinate) pair for levels
		// >= 1, plus one block for the final uniform choice.
		gen: prng.New(uint64(numLevels)*uint64(cfg.N)*prng.BlockBits+prng.BlockBits, r),
	}
	for k := range l.levels {
		l.levels[k] = sparse.New(cfg.N, s, r)
	}
	return l
}

// S returns the per-level sparsity budget.
func (l *L0Sampler) S() int { return l.s }

// Levels returns the number of subsampling levels (⌊log n⌋ + 1).
func (l *L0Sampler) Levels() int { return len(l.levels) }

// member reports whether coordinate i belongs to I_k. Level 0 is all of [n];
// level k >= 1 includes i with probability 2^k/n, decided by one PRG block.
func (l *L0Sampler) member(k, i int) bool {
	if k == 0 {
		return true
	}
	q := float64(uint64(1)<<k) / float64(l.n)
	if q >= 1 {
		return true
	}
	return l.gen.Float64At(uint64(k-1)*uint64(l.n)+uint64(i)) < q
}

// Process implements stream.Sink: the update reaches the recoverer of every
// level whose subset contains the coordinate.
func (l *L0Sampler) Process(u stream.Update) {
	for k := range l.levels {
		if l.member(k, u.Index) {
			l.levels[k].Process(u)
		}
	}
}

// ProcessBatch implements stream.BatchSink: level-major delivery. For each
// level the membership probability and PRG block base are computed once, the
// batch is filtered into a reusable scratch buffer, and the survivors go
// through the recoverer's batched path. State matches repeated Process calls.
func (l *L0Sampler) ProcessBatch(batch []stream.Update) {
	if cap(l.scratch) < len(batch) {
		l.scratch = make([]stream.Update, 0, len(batch))
	}
	for k := range l.levels {
		if k == 0 {
			l.levels[0].ProcessBatch(batch)
			continue
		}
		q := float64(uint64(1)<<k) / float64(l.n)
		if q >= 1 {
			l.levels[k].ProcessBatch(batch)
			continue
		}
		base := uint64(k-1) * uint64(l.n)
		sub := l.scratch[:0]
		for _, u := range batch {
			if l.gen.Float64At(base+uint64(u.Index)) < q {
				sub = append(sub, u)
			}
		}
		l.levels[k].ProcessBatch(sub)
	}
}

// Sample returns a uniform sample from the support of x together with the
// exact value x_i. ok is false when every level fails — probability at most
// δ + O(n^{-c}) (Theorem 2), and always for the zero vector.
func (l *L0Sampler) Sample() (Sample, bool) {
	for k := range l.levels {
		rec, ok := l.levels[k].Recover()
		if !ok || len(rec) == 0 || len(rec) > l.s {
			continue
		}
		// Uniform choice among the recovered support, randomness from the
		// PRG's reserved final block.
		support := make([]int, 0, len(rec))
		for i := range rec {
			support = append(support, i)
		}
		sort.Ints(support)
		u := l.gen.Float64At(uint64(len(l.levels)-1) * uint64(l.n))
		idx := support[int(u*float64(len(support)))%len(support)]
		return Sample{Index: idx, Estimate: float64(rec[idx])}, true
	}
	return Sample{}, false
}

// Merge adds the linear state of another sampler built with the same
// dimension and the same randomness source position (i.e. constructed from
// an identically seeded *rand.Rand), so that the merged sampler summarizes
// the sum of the two underlying vectors. Linearity is what downstream
// applications like graph connectivity sketches and the sharded ingestion
// engine rely on. Incompatible shapes or mismatched per-level verification
// points (the fingerprint of differently seeded replicas) are reported as an
// error; validation runs before any mutation, so a failed merge leaves the
// receiver untouched.
func (l *L0Sampler) Merge(other *L0Sampler) error {
	if other == nil || l.n != other.n || l.s != other.s || len(l.levels) != len(other.levels) {
		return errors.New("core: merging incompatible L0 samplers")
	}
	for k := range l.levels {
		if !l.levels[k].Compatible(other.levels[k]) {
			return errors.New("core: merging L0 samplers with different seeds (same-seed replicas required)")
		}
	}
	for k := range l.levels {
		if err := l.levels[k].Merge(other.levels[k]); err != nil {
			return err
		}
	}
	return nil
}

// SpaceBits reports the streaming state: per-level syndromes plus the PRG
// seed — the O(log² n log(1/δ)) bits of Theorem 2. (The PRG output is
// recomputed on demand and is not stored.)
func (l *L0Sampler) SpaceBits() int64 {
	var bits int64
	for _, lv := range l.levels {
		bits += lv.SpaceBits()
	}
	return bits + l.gen.SpaceBits()
}

// StateBits reports the linear-measurement contents only — the message a
// player sends in the public-coin protocols of §4.1 (Proposition 5), where
// the PRG seed and verification points are shared randomness.
func (l *L0Sampler) StateBits() int64 {
	var bits int64
	for _, lv := range l.levels {
		bits += lv.StateBits()
	}
	return bits
}

// ExportState serializes all levels' linear measurements — the concrete
// one-round message of Proposition 5. len(result)*8 == StateBits().
func (l *L0Sampler) ExportState() []byte {
	var out []byte
	for _, lv := range l.levels {
		out = append(out, lv.ExportState()...)
	}
	return out
}

// ImportState replaces the sampler's measurements with exported ones. The
// receiver must be a same-seed, same-configuration instance.
func (l *L0Sampler) ImportState(data []byte) error {
	per := int(l.levels[0].StateBits() / 8)
	if len(data) != per*len(l.levels) {
		return fmt.Errorf("core: state is %d bytes, want %d", len(data), per*len(l.levels))
	}
	for k, lv := range l.levels {
		if err := lv.ImportState(data[k*per : (k+1)*per]); err != nil {
			return err
		}
	}
	return nil
}
