package core

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand/v2"
	"sort"

	"repro/internal/codec"
	"repro/internal/field"
	"repro/internal/prng"
	"repro/internal/sparse"
	"repro/internal/stream"
)

// L0Config configures the zero relative error L0 sampler of Theorem 2.
type L0Config struct {
	// N is the dimension of the underlying vector.
	N int
	// Delta is the failure probability bound.
	Delta float64
	// SOverride forces the per-level sparse-recovery budget s
	// (default ⌈4 log₂(1/δ)⌉ as in the proof of Theorem 2).
	SOverride int
	// NestedLevels switches level membership from independent per-(level,
	// coordinate) coins (substitution #2: i.i.d. I_k) to the paper's §2.1
	// nested reading I_1 ⊆ I_2 ⊆ ... ⊆ I_K: one PRG block u_i per
	// coordinate decides every level at once via the dyadic thresholds
	// "i ∈ I_k iff u_i < 2^k/n · Modulus". Membership still holds
	// per-coordinate with probability ~2^k/n at every level, but one tree
	// walk replaces ⌊log n⌋ of them per update, and the PRG only has to
	// stretch to n blocks instead of n log n.
	NestedLevels bool
}

// L0Sampler samples a uniformly random element of the support of x, together
// with the exact value x_i (sparse recovery is exact, hence "zero relative
// error"). Structure, following §2.1:
//
//   - subsets I_k ⊆ [n] for k = 1..K with E|I_k| = 2^k, where K is the last
//     level with 2^K < n, plus I_0 = [n] (levels whose inclusion probability
//     reaches 1 duplicate I_0 and are not materialized);
//   - an exact s-sparse recoverer (Lemma 5) on x restricted to each I_k;
//   - the sample is a uniformly random nonzero coordinate of the first level
//     that recovers a nonzero s-sparse vector.
//
// All membership bits and the final uniform choice are drawn from Nisan's
// PRG with an O(log² n)-bit seed, exactly as the derandomization step of
// Theorem 2 prescribes. Membership is decided per (level, coordinate) by
// comparing a raw 61-bit PRG block against a precomputed integer threshold
// T_k with T_k/Modulus ~ 2^k/n — no float division on the update path — and
// the per-update blocks are fetched through the generator's prefix-sharing
// batch kernel: the blocks of one update live at consecutive addresses
// i·stride + (k-1), so one partial tree walk serves all levels.
//
// With NestedLevels the sets are nested as in the paper's original
// formulation (one block per coordinate, dyadic thresholds); the default
// remains independent per-level coins (substitution #2 in DESIGN.md).
type L0Sampler struct {
	n      int
	s      int
	nested bool
	levels []*sparse.Recoverer
	gen    *prng.Nisan

	// thresholds[k]: coordinate i belongs to I_k iff its membership block
	// is < thresholds[k]; thresholds[0] = Modulus (I_0 = [n]).
	thresholds []uint64
	// stride is the number of PRG blocks reserved per coordinate in the
	// default i.i.d. mode: the next power of two above the number of
	// PRG-tested levels, so one update's blocks share their high address
	// bits (and hence their h_j prefix applications) maximally.
	stride uint64
	// sampleBase is the first PRG block reserved for Sample's uniform
	// support choices — block sampleBase+k serves recovery level k.
	sampleBase uint64

	// Reusable scratch for the batched paths (grown once, then steady
	// state allocates nothing): per-update block addresses and values,
	// and one membership-filtered sub-batch per tested level.
	idxScratch []uint64
	blkScratch []uint64
	lvlBufs    [][]stream.Update

	// Query-side memoization: Sample's outcome is cached until the next
	// mutation (Process/ProcessBatch/Merge/ImportState). Per-level decodes
	// are additionally memoized inside each sparse.Recoverer, so after a
	// mutation only the levels it actually touched re-decode.
	queryValid     bool
	cachedSample   Sample
	cachedOK       bool
	supportScratch []int
}

// NewL0Sampler constructs the sampler, drawing the PRG seed and the
// sparse-recovery verification points from r.
func NewL0Sampler(cfg L0Config, r *rand.Rand) *L0Sampler {
	if cfg.N < 1 {
		panic("core: n must be positive")
	}
	if cfg.Delta <= 0 || cfg.Delta >= 1 {
		cfg.Delta = 0.25
	}
	s := cfg.SOverride
	if s <= 0 {
		s = int(math.Ceil(4 * math.Log2(1/cfg.Delta)))
		if s < 4 {
			s = 4
		}
	}
	// K = last level whose inclusion probability 2^K/n is below 1. Levels
	// at probability >= 1 would be copies of I_0 = [n]; the sampler keeps
	// exactly one full level.
	K := 0
	for uint64(1)<<(K+1) < uint64(cfg.N) {
		K++
	}
	numLevels := K + 1
	stride := uint64(1)
	for stride < uint64(K) {
		stride <<= 1
	}
	l := &L0Sampler{
		n:          cfg.N,
		s:          s,
		nested:     cfg.NestedLevels,
		levels:     make([]*sparse.Recoverer, numLevels),
		thresholds: make([]uint64, numLevels),
		stride:     stride,
	}
	// Membership blocks per coordinate (stride in i.i.d. mode, one in
	// nested mode) plus one reserved block per level for Sample.
	if l.nested {
		l.sampleBase = uint64(cfg.N)
	} else {
		l.sampleBase = uint64(cfg.N) * stride
	}
	l.gen = prng.New((l.sampleBase+uint64(numLevels))*prng.BlockBits, r)
	l.thresholds[0] = field.Modulus
	for k := 1; k < numLevels; k++ {
		l.thresholds[k] = prng.Threshold(float64(uint64(1)<<k) / float64(cfg.N))
	}
	for k := range l.levels {
		l.levels[k] = sparse.New(cfg.N, s, r)
	}
	if K > 0 {
		l.idxScratch = make([]uint64, K)
		l.blkScratch = make([]uint64, K)
	}
	l.lvlBufs = make([][]stream.Update, numLevels)
	return l
}

// S returns the per-level sparsity budget.
func (l *L0Sampler) S() int { return l.s }

// Levels returns the number of subsampling levels (level 0 plus every level
// with inclusion probability below 1).
func (l *L0Sampler) Levels() int { return len(l.levels) }

// NestedLevels reports whether the sampler uses the nested dyadic level
// assignment.
func (l *L0Sampler) NestedLevels() bool { return l.nested }

// memberBlocks fills l.blkScratch with the membership blocks governing
// coordinate i at tested levels 1..K (blkScratch[k-1] decides level k) and
// returns the slice. In i.i.d. mode these are the K consecutive blocks at
// i·stride, one fresh draw per level; in nested mode the single block at
// address i is replicated, realizing the nested sets.
func (l *L0Sampler) memberBlocks(i int) []uint64 {
	K := len(l.levels) - 1
	blks := l.blkScratch[:K]
	if l.nested {
		idx := l.idxScratch[:1]
		idx[0] = uint64(i)
		l.gen.BlockBatch(blks[:1], idx)
		for t := 1; t < K; t++ {
			blks[t] = blks[0]
		}
		return blks
	}
	idx := l.idxScratch[:K]
	base := uint64(i) * l.stride
	for t := range idx {
		idx[t] = base + uint64(t)
	}
	l.gen.BlockBatch(blks, idx)
	return blks
}

// member reports whether coordinate i belongs to I_k. Level 0 is all of [n].
func (l *L0Sampler) member(k, i int) bool {
	if k == 0 {
		return true
	}
	return l.memberBlocks(i)[k-1] < l.thresholds[k]
}

// Process implements stream.Sink: the update reaches the recoverer of every
// level whose subset contains the coordinate. One prefix-stack walk fetches
// all membership blocks; levels are then integer-threshold compares.
func (l *L0Sampler) Process(u stream.Update) {
	l.queryValid = false
	l.levels[0].Process(u)
	if len(l.levels) == 1 {
		return
	}
	blks := l.memberBlocks(u.Index)
	for t, blk := range blks {
		if blk < l.thresholds[t+1] {
			l.levels[t+1].Process(u)
		}
	}
}

// ProcessBatch implements stream.BatchSink: update-major delivery. Level 0
// consumes the whole batch directly; for the tested levels, each update's
// membership blocks come from one batched PRG walk and the update is routed
// into per-level sub-batches, which then flow through the recoverers'
// transposed batch kernel. State matches repeated Process calls exactly
// (field arithmetic is exact and per-level orders are preserved); nothing
// allocates at steady state.
func (l *L0Sampler) ProcessBatch(batch []stream.Update) {
	if len(batch) == 0 {
		return
	}
	l.queryValid = false
	l.levels[0].ProcessBatch(batch)
	K := len(l.levels) - 1
	if K == 0 {
		return
	}
	bufs := l.lvlBufs
	for k := 1; k <= K; k++ {
		bufs[k] = bufs[k][:0]
	}
	thresholds := l.thresholds
	for _, u := range batch {
		blks := l.memberBlocks(u.Index)
		for t, blk := range blks {
			if blk < thresholds[t+1] {
				bufs[t+1] = append(bufs[t+1], u)
			}
		}
	}
	for k := 1; k <= K; k++ {
		if len(bufs[k]) > 0 {
			l.levels[k].ProcessBatch(bufs[k])
		}
	}
}

// Sample returns a uniform sample from the support of x together with the
// exact value x_i. ok is false when every level fails — probability at most
// δ + O(n^{-c}) (Theorem 2), and always for the zero vector.
//
// Queries are memoized: on an unchanged sketch, repeated calls return the
// cached outcome without touching the levels (and without allocating).
// After a mutation, only the levels the mutation reached re-decode — the
// others answer from their own caches.
func (l *L0Sampler) Sample() (Sample, bool) {
	if l.queryValid {
		return l.cachedSample, l.cachedOK
	}
	l.cachedSample, l.cachedOK = l.resample()
	l.queryValid = true
	return l.cachedSample, l.cachedOK
}

// resample runs the actual level probe (the pre-memoization Sample).
func (l *L0Sampler) resample() (Sample, bool) {
	for k := range l.levels {
		rec, ok := l.levels[k].Recover()
		if !ok || len(rec) == 0 || len(rec) > l.s {
			continue
		}
		// Uniform choice among the recovered support. The randomness is the
		// PRG block reserved for THIS level (block sampleBase+k), so samples
		// resolved at different levels draw distinct pseudorandom values,
		// and the index comes from a width-based integer reduction
		// ⌊block·|support|/2^61⌋ — unbiased to within 2^-61 per element,
		// with no float conversion.
		support := l.supportScratch[:0]
		for i := range rec {
			support = append(support, i)
		}
		sort.Ints(support)
		l.supportScratch = support
		blk := l.gen.Block(l.sampleBase + uint64(k))
		hi, lo := bits.Mul64(blk, uint64(len(support)))
		idx := support[hi<<3|lo>>61]
		return Sample{Index: idx, Estimate: float64(rec[idx])}, true
	}
	return Sample{}, false
}

// RecoverLevel decodes the level-k restriction of x exactly (Lemma 5),
// memoized per level. The returned map is owned by the level's recoverer
// and valid until the next mutating call. Distinct levels share no decode
// state, so concurrent RecoverLevel calls on different k are safe — the
// parallel level-probe path (engine.RecoverAll) relies on exactly that.
func (l *L0Sampler) RecoverLevel(k int) (map[int]int64, bool) {
	return l.levels[k].Recover()
}

// Merge adds the linear state of another sampler built with the same
// dimension and the same randomness source position (i.e. constructed from
// an identically seeded *rand.Rand), so that the merged sampler summarizes
// the sum of the two underlying vectors. Linearity is what downstream
// applications like graph connectivity sketches and the sharded ingestion
// engine rely on. Incompatible shapes, differing level-assignment modes, or
// mismatched per-level verification points (the fingerprint of differently
// seeded replicas) are reported as an error; validation runs before any
// mutation, so a failed merge leaves the receiver untouched.
func (l *L0Sampler) Merge(other *L0Sampler) error {
	if other == nil {
		return fmt.Errorf("core: %w", codec.ErrNilMerge)
	}
	if l.n != other.n || l.s != other.s ||
		len(l.levels) != len(other.levels) || l.nested != other.nested {
		return fmt.Errorf("core: merging incompatible L0 samplers: %w", codec.ErrConfigMismatch)
	}
	for k := range l.levels {
		if !l.levels[k].Compatible(other.levels[k]) {
			return fmt.Errorf("core: %w", codec.ErrSeedMismatch)
		}
	}
	l.queryValid = false
	for k := range l.levels {
		if err := l.levels[k].Merge(other.levels[k]); err != nil {
			return err
		}
	}
	return nil
}

// SpaceBits reports the streaming state: per-level syndromes plus the PRG
// seed — the O(log² n log(1/δ)) bits of Theorem 2. (The PRG output is
// recomputed on demand and is not stored.)
func (l *L0Sampler) SpaceBits() int64 {
	var bits int64
	for _, lv := range l.levels {
		bits += lv.SpaceBits()
	}
	return bits + l.gen.SpaceBits()
}

// StateBits reports the linear-measurement contents only — the message a
// player sends in the public-coin protocols of §4.1 (Proposition 5), where
// the PRG seed and verification points are shared randomness.
func (l *L0Sampler) StateBits() int64 {
	var bits int64
	for _, lv := range l.levels {
		bits += lv.StateBits()
	}
	return bits
}

// ExportState serializes all levels' linear measurements — the concrete
// one-round message of Proposition 5. len(result)*8 == StateBits().
func (l *L0Sampler) ExportState() []byte {
	var out []byte
	for _, lv := range l.levels {
		out = append(out, lv.ExportState()...)
	}
	return out
}

// ImportState replaces the sampler's measurements with exported ones. The
// receiver must be a same-seed, same-configuration instance. The memoized
// sample is invalidated on every path, accepted or rejected.
func (l *L0Sampler) ImportState(data []byte) error {
	l.queryValid = false
	per := int(l.levels[0].StateBits() / 8)
	if len(data) != per*len(l.levels) {
		return fmt.Errorf("core: state is %d bytes, want %d", len(data), per*len(l.levels))
	}
	for k, lv := range l.levels {
		if err := lv.ImportState(data[k*per : (k+1)*per]); err != nil {
			return err
		}
	}
	return nil
}

// AppendState writes every level's linear measurements into a codec encoder
// — the framed counterpart of ExportState used by the public wire format,
// the engine checkpoints and the graph sketches.
func (l *L0Sampler) AppendState(e *codec.Encoder) {
	for _, lv := range l.levels {
		lv.AppendState(e)
	}
}

// RestoreState replaces every level's measurements from a codec decoder,
// invalidating the memoized sample and each level's memoized decode.
func (l *L0Sampler) RestoreState(d *codec.Decoder) {
	l.queryValid = false
	for _, lv := range l.levels {
		lv.RestoreState(d)
	}
}
