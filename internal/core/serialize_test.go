package core

import (
	"math/rand/v2"
	"testing"

	"repro/internal/stream"
)

func TestL0ExportImportRoundTrip(t *testing.T) {
	r1 := rand.New(rand.NewPCG(1, 2))
	r2 := rand.New(rand.NewPCG(1, 2))
	alice := NewL0Sampler(L0Config{N: 256, Delta: 0.2}, r1)
	bob := NewL0Sampler(L0Config{N: 256, Delta: 0.2}, r2)

	// Alice feeds x.
	for i := 0; i < 50; i++ {
		alice.Process(stream.Update{Index: i, Delta: int64(i + 1)})
	}
	msg := alice.ExportState()
	if int64(len(msg))*8 != alice.StateBits() {
		t.Fatalf("exported %d bytes, StateBits says %d bits", len(msg), alice.StateBits())
	}
	// Bob imports and subtracts y (= x except coordinate 7): the handoff of
	// Proposition 5's one-round protocol, over real bytes.
	if err := bob.ImportState(msg); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if i == 7 {
			continue
		}
		bob.Process(stream.Update{Index: i, Delta: -int64(i + 1)})
	}
	out, ok := bob.Sample()
	if !ok {
		t.Fatal("handoff sampler failed")
	}
	if out.Index != 7 || out.Estimate != 8 {
		t.Fatalf("sampled (%d,%v), want (7,8)", out.Index, out.Estimate)
	}
}

func TestL0ImportRejectsWrongSize(t *testing.T) {
	r := rand.New(rand.NewPCG(3, 3))
	s := NewL0Sampler(L0Config{N: 128, Delta: 0.2}, r)
	if err := s.ImportState(make([]byte, 7)); err == nil {
		t.Fatal("short state must be rejected")
	}
}

// TestL0RestoreInvalidatesPrimedSampleCache is the regression test for the
// restore-then-Sample path: a sampler whose memoized Sample is primed must
// re-decode after ImportState instead of serving the stale cache.
func TestL0RestoreInvalidatesPrimedSampleCache(t *testing.T) {
	r1 := rand.New(rand.NewPCG(6, 6))
	r2 := rand.New(rand.NewPCG(6, 6))
	a := NewL0Sampler(L0Config{N: 64, Delta: 0.2}, r1)
	b := NewL0Sampler(L0Config{N: 64, Delta: 0.2}, r2)
	a.Process(stream.Update{Index: 5, Delta: 9})
	b.Process(stream.Update{Index: 33, Delta: 1})
	// Prime b's memoized sample before the restore.
	if out, ok := b.Sample(); !ok || out.Index != 33 {
		t.Fatalf("priming sample: %+v ok=%v", out, ok)
	}
	if err := b.ImportState(a.ExportState()); err != nil {
		t.Fatal(err)
	}
	out, ok := b.Sample()
	if !ok || out.Index != 5 || out.Estimate != 9 {
		t.Fatalf("restore-then-Sample served stale cache: %+v ok=%v", out, ok)
	}
	// A rejected import must also leave the cache invalidated (the next
	// Sample re-decodes the unchanged state and still answers correctly).
	if err := b.ImportState(make([]byte, 7)); err == nil {
		t.Fatal("short state must be rejected")
	}
	out, ok = b.Sample()
	if !ok || out.Index != 5 {
		t.Fatalf("sample after rejected import: %+v ok=%v", out, ok)
	}
}

func TestL0ImportOverwrites(t *testing.T) {
	r1 := rand.New(rand.NewPCG(4, 4))
	r2 := rand.New(rand.NewPCG(4, 4))
	a := NewL0Sampler(L0Config{N: 64, Delta: 0.2}, r1)
	b := NewL0Sampler(L0Config{N: 64, Delta: 0.2}, r2)
	a.Process(stream.Update{Index: 5, Delta: 9})
	b.Process(stream.Update{Index: 33, Delta: 1}) // will be overwritten
	if err := b.ImportState(a.ExportState()); err != nil {
		t.Fatal(err)
	}
	out, ok := b.Sample()
	if !ok || out.Index != 5 || out.Estimate != 9 {
		t.Fatalf("import did not replace state: %+v ok=%v", out, ok)
	}
}
