package core

import (
	"math/rand/v2"
	"testing"

	"repro/internal/stream"
)

// TestL0SampleDirtyTracking pins the query memoization contract: repeated
// Sample calls on an unchanged sketch return the identical cached result;
// any mutation invalidates the cache and the next query reflects the new
// vector.
func TestL0SampleDirtyTracking(t *testing.T) {
	r := rand.New(rand.NewPCG(41, 42))
	const n = 1 << 10
	s := NewL0Sampler(L0Config{N: n, Delta: 0.2}, r)
	st := stream.SparseVector(n, 32, 100, r)
	st.Feed(s)

	first, ok := s.Sample()
	if !ok {
		t.Fatal("sample failed on 32-sparse vector")
	}
	// Sample → Sample: cache hit, bit-identical result.
	for i := 0; i < 5; i++ {
		again, ok2 := s.Sample()
		if !ok2 || again != first {
			t.Fatalf("repeated Sample diverged: %+v vs %+v (ok=%v)", again, first, ok2)
		}
	}
	// Sample → Add → Sample: the mutation must be visible. Deleting the
	// sampled coordinate forces a re-decode whose result cannot contain it.
	s.Process(stream.Update{Index: first.Index, Delta: -int64(first.Estimate)})
	second, ok := s.Sample()
	if !ok {
		t.Fatal("sample failed after deletion")
	}
	if second.Index == first.Index {
		t.Fatalf("Sample returned deleted coordinate %d — stale cache", first.Index)
	}
	// Re-inserting restores the original vector, and the fresh decode must
	// reproduce the original sample (the PRG choice is deterministic).
	s.Process(stream.Update{Index: first.Index, Delta: int64(first.Estimate)})
	third, ok := s.Sample()
	if !ok || third != first {
		t.Fatalf("restored vector sampled %+v, want %+v", third, first)
	}
}

// TestL0SampleCacheInvalidatedByBatchAndMerge: ProcessBatch and Merge are
// mutations too — each must drop the cached sample.
func TestL0SampleCacheInvalidatedByBatchAndMerge(t *testing.T) {
	const n = 1 << 9
	mk := func() *L0Sampler {
		return NewL0Sampler(L0Config{N: n, Delta: 0.2}, rand.New(rand.NewPCG(51, 52)))
	}
	a := mk()
	a.ProcessBatch([]stream.Update{{Index: 7, Delta: 3}})
	out, ok := a.Sample()
	if !ok || out.Index != 7 {
		t.Fatalf("1-sparse sample got %+v ok=%v", out, ok)
	}
	// Batch-deleting the only coordinate must flip the outcome to failure.
	a.ProcessBatch([]stream.Update{{Index: 7, Delta: -3}})
	if _, ok := a.Sample(); ok {
		t.Fatal("Sample succeeded on the zero vector — stale cache after ProcessBatch")
	}
	// Merging new mass in must also invalidate.
	b := mk()
	b.ProcessBatch([]stream.Update{{Index: 11, Delta: 2}})
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	out, ok = a.Sample()
	if !ok || out.Index != 11 || out.Estimate != 2 {
		t.Fatalf("post-merge sample got %+v ok=%v, want index 11 value 2", out, ok)
	}
}

// TestLpSampleAllMemoized: repeated SampleAll on an unchanged Lp sampler
// returns identical outputs and diagnostics; a mutation invalidates.
func TestLpSampleAllMemoized(t *testing.T) {
	r := rand.New(rand.NewPCG(61, 62))
	const n = 1 << 10
	s := NewLpSampler(LpConfig{P: 1, N: n, Eps: 0.3, Delta: 0.3}, r)
	st := stream.RandomTurnstile(n, 5000, 50, rand.New(rand.NewPCG(63, 64)))
	st.FeedBatch(512, s)

	first := s.SampleAll()
	diag := s.Diagnostics()
	for i := 0; i < 3; i++ {
		again := s.SampleAll()
		if len(again) != len(first) {
			t.Fatalf("repeated SampleAll diverged: %d vs %d outputs", len(again), len(first))
		}
		for j := range again {
			if again[j] != first[j] {
				t.Fatalf("output %d diverged: %+v vs %+v", j, again[j], first[j])
			}
		}
		if s.Diagnostics() != diag {
			t.Fatalf("diagnostics diverged: %+v vs %+v", s.Diagnostics(), diag)
		}
	}
	// A mutation drops the cache; the sampler must re-run recovery (observed
	// through the diagnostics being recomputed rather than replayed).
	s.Process(stream.Update{Index: 1, Delta: 1})
	_ = s.SampleAll()
	d2 := s.Diagnostics()
	if d2.Emitted+d2.STestAborts+d2.ThresholdFails+d2.Guarded != s.Copies() {
		t.Fatalf("post-mutation diagnostics inconsistent: %+v over %d copies", d2, s.Copies())
	}
}

// TestRecoverLevelMatchesSampleLevels: RecoverLevel exposes exactly the
// per-level decodes Sample consumes — level 0 is the full vector.
func TestRecoverLevelMatchesSampleLevels(t *testing.T) {
	r := rand.New(rand.NewPCG(71, 72))
	const n = 1 << 10
	s := NewL0Sampler(L0Config{N: n, Delta: 0.2}, r)
	want := map[int]int64{3: 5, 100: -2, 999: 40}
	for i, v := range want {
		s.Process(stream.Update{Index: i, Delta: v})
	}
	rec, ok := s.RecoverLevel(0)
	if !ok || len(rec) != len(want) {
		t.Fatalf("level-0 decode got %v ok=%v", rec, ok)
	}
	for i, v := range want {
		if rec[i] != v {
			t.Errorf("rec[%d] = %d, want %d", i, rec[i], v)
		}
	}
}
