package core

import (
	"fmt"
	"math/rand/v2"
	"sort"

	"repro/internal/codec"
	"repro/internal/distinct"
	"repro/internal/prng"
	"repro/internal/sparse"
	"repro/internal/stream"
)

// TwoPassL0Sampler implements the paper's appendix remark after
// Proposition 5: "along similar lines one can find an
// O(log n log log n log 1/δ) space two-pass zero relative error L0-sampling
// algorithm, by estimating L0 of the vector defined by the stream in the
// first pass".
//
// Pass 1 runs the rough L0 estimator (internal/distinct, the [17]-style
// level tester). Between passes, the sampler commits to a single
// subsampling probability q ≈ s/(2·L̂0), sized so the expected number of
// surviving support elements is s/2 ∈ [1, s]. Pass 2 maintains one exact
// s-sparse recoverer (Lemma 5) over that single level — instead of the
// ⌊log n⌋ levels the one-pass Theorem 2 sampler must carry, because it
// cannot know L0 in advance. The sample is a uniformly random element of
// the recovered support with its exact value.
//
// Space: O(log n log(1/δ)) words for pass 1 plus O(log(1/δ)) words for
// pass 2 — asymptotically below the one-pass sampler's O(log² n) bits,
// which is the point of the remark.
type TwoPassL0Sampler struct {
	n    int
	s    int
	est  *distinct.Estimator
	gen  *prng.Nisan
	rec  *sparse.Recoverer
	q    float64 // pass-2 subsampling probability
	pass int     // 1 or 2

	// Batch scratch for the pass-2 membership filter; steady-state
	// ProcessBatch calls allocate nothing.
	batchBuf []stream.Update
}

// NewTwoPassL0Sampler constructs the sampler for dimension n and failure
// probability delta.
func NewTwoPassL0Sampler(n int, delta float64, r *rand.Rand) *TwoPassL0Sampler {
	if n < 1 {
		panic("core: n must be positive")
	}
	if delta <= 0 || delta >= 1 {
		delta = 0.25
	}
	s := 4
	for 1<<s < int(4/delta) { // s = Θ(log 1/δ) with the Theorem 2 constant
		s++
	}
	s = 4 * s
	return &TwoPassL0Sampler{
		n:    n,
		s:    s,
		est:  distinct.New(n, 12, r),
		gen:  prng.New(uint64(n)*prng.BlockBits+prng.BlockBits, r),
		rec:  sparse.New(n, s, r),
		pass: 1,
	}
}

// S returns the pass-2 sparse recovery budget.
func (tp *TwoPassL0Sampler) S() int { return tp.s }

// Process implements stream.Sink for the current pass.
func (tp *TwoPassL0Sampler) Process(u stream.Update) {
	if tp.pass == 1 {
		tp.est.Process(u)
		return
	}
	if tp.member(u.Index) {
		tp.rec.Process(u)
	}
}

// ProcessBatch implements stream.BatchSink for the current pass: pass 1
// flows through the estimator's batched path; pass 2 filters the batch down
// to the committed subsampling level and feeds the recoverer's transposed
// kernel. State matches repeated Process calls exactly.
func (tp *TwoPassL0Sampler) ProcessBatch(batch []stream.Update) {
	if tp.pass == 1 {
		tp.est.ProcessBatch(batch)
		return
	}
	kept := tp.batchBuf[:0]
	for _, u := range batch {
		if tp.member(u.Index) {
			kept = append(kept, u)
		}
	}
	tp.batchBuf = kept
	if len(kept) > 0 {
		tp.rec.ProcessBatch(kept)
	}
}

// Merge adds another sampler's state for the current pass (sketch
// linearity), so that a sharded first or second pass can be folded into one
// sampler. Both must be same-seed replicas in the same pass; pass-2 merges
// additionally require an identical committed level q — replicas that
// called EndPass1 on different estimates subsample different sets and are
// rejected. Validation runs before any mutation.
func (tp *TwoPassL0Sampler) Merge(other *TwoPassL0Sampler) error {
	if other == nil {
		return fmt.Errorf("core: %w", codec.ErrNilMerge)
	}
	if tp.n != other.n || tp.s != other.s {
		return fmt.Errorf("core: merging two-pass samplers of different shapes: %w", codec.ErrConfigMismatch)
	}
	if tp.pass != other.pass || tp.q != other.q {
		return fmt.Errorf("core: merging two-pass samplers in different passes: %w", codec.ErrConfigMismatch)
	}
	if !tp.rec.Compatible(other.rec) {
		return fmt.Errorf("core: %w", codec.ErrSeedMismatch)
	}
	if err := tp.est.Merge(other.est); err != nil {
		return err
	}
	return tp.rec.Merge(other.rec)
}

// AppendState writes the sampler's dynamic state into a codec encoder: the
// pass marker and committed level first, then the pass-1 estimator
// fingerprints and the pass-2 recoverer measurements.
func (tp *TwoPassL0Sampler) AppendState(e *codec.Encoder) {
	e.U64(uint64(tp.pass))
	e.F64(tp.q)
	tp.est.AppendState(e)
	tp.rec.AppendState(e)
}

// RestoreState replaces the sampler's dynamic state from a codec decoder.
// A pass marker outside {1, 2} marks the decoder failed (the payload is not
// covered by the header fingerprint, so corruption must surface here rather
// than leave the sampler routing updates against inconsistent state).
func (tp *TwoPassL0Sampler) RestoreState(d *codec.Decoder) {
	pass := int(d.U64())
	if pass != 1 && pass != 2 {
		d.Fail(fmt.Errorf("core: two-pass restore with pass marker %d: %w", pass, codec.ErrBadConfig))
		return
	}
	tp.pass = pass
	tp.q = d.F64()
	tp.est.RestoreState(d)
	tp.rec.RestoreState(d)
}

// member decides pass-2 membership from the PRG (consistent per index).
func (tp *TwoPassL0Sampler) member(i int) bool {
	if tp.q >= 1 {
		return true
	}
	return tp.gen.Float64At(uint64(i)) < tp.q
}

// EndPass1 commits the subsampling level from the pass-1 estimate. It must
// be called exactly once, after the full stream has been processed in pass 1
// and before any pass-2 update.
func (tp *TwoPassL0Sampler) EndPass1() {
	l0 := tp.est.Estimate()
	if l0 <= int64(tp.s)/2 {
		tp.q = 1 // small support: recover the whole vector
	} else {
		tp.q = float64(tp.s) / (2 * float64(l0))
	}
	tp.pass = 2
}

// Sample returns a uniform support element with its exact value. ok is
// false when the pass-2 recovery fails (probability ≤ δ) or the vector is
// zero. It must be called after the stream was replayed through pass 2.
func (tp *TwoPassL0Sampler) Sample() (Sample, bool) {
	if tp.pass != 2 {
		return Sample{}, false
	}
	rec, ok := tp.rec.Recover()
	if !ok || len(rec) == 0 {
		return Sample{}, false
	}
	support := make([]int, 0, len(rec))
	for i := range rec {
		support = append(support, i)
	}
	sort.Ints(support)
	u := tp.gen.Float64At(uint64(tp.n)) // reserved final block
	idx := support[int(u*float64(len(support)))%len(support)]
	return Sample{Index: idx, Estimate: float64(rec[idx])}, true
}

// SpaceBits reports pass-1 estimator plus pass-2 recoverer plus PRG seed.
// Only one pass is active at a time, but we report the sum (the conservative
// accounting; the estimator could be freed before pass 2).
func (tp *TwoPassL0Sampler) SpaceBits() int64 {
	return tp.est.SpaceBits() + tp.rec.SpaceBits() + tp.gen.SpaceBits()
}
