package core

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/stream"
	"repro/internal/vector"
)

func TestLpSamplerPanics(t *testing.T) {
	r := rand.New(rand.NewPCG(1, 1))
	for _, cfg := range []LpConfig{
		{P: 0, N: 10, Eps: 0.5},
		{P: 2, N: 10, Eps: 0.5},
		{P: -1, N: 10, Eps: 0.5},
		{P: 1, N: 10, Eps: 0},
		{P: 1, N: 10, Eps: 1.5},
		{P: 1, N: 0, Eps: 0.5},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v must panic", cfg)
				}
			}()
			NewLpSampler(cfg, r)
		}()
	}
}

func TestLpSamplerZeroVector(t *testing.T) {
	r := rand.New(rand.NewPCG(2, 2))
	s := NewLpSampler(LpConfig{P: 1, N: 64, Eps: 0.3, Delta: 0.2}, r)
	if _, ok := s.Sample(); ok {
		t.Fatal("sampler must fail on the zero vector")
	}
	// Cancelled stream is the zero vector too.
	s2 := NewLpSampler(LpConfig{P: 1, N: 64, Eps: 0.3, Delta: 0.2}, r)
	s2.Process(stream.Update{Index: 3, Delta: 100})
	s2.Process(stream.Update{Index: 3, Delta: -100})
	if _, ok := s2.Sample(); ok {
		t.Fatal("sampler should fail on a cancelled-to-zero vector (w.h.p.)")
	}
}

func TestLpSamplerDominantCoordinate(t *testing.T) {
	// One coordinate carries ~all Lp mass: the sampler must return it nearly
	// always and the estimate must be within eps.
	r := rand.New(rand.NewPCG(3, 3))
	for _, p := range []float64{0.5, 1, 1.5} {
		hits, total := 0, 0
		for trial := 0; trial < 25; trial++ {
			s := NewLpSampler(LpConfig{P: p, N: 128, Eps: 0.3, Delta: 0.1}, r)
			for i := 0; i < 128; i++ {
				s.Process(stream.Update{Index: i, Delta: 1})
			}
			s.Process(stream.Update{Index: 77, Delta: 1_000_000 - 1})
			out, ok := s.Sample()
			if !ok {
				continue
			}
			total++
			if out.Index == 77 {
				hits++
				if math.Abs(out.Estimate-1_000_000) > 0.3*1_000_000 {
					t.Errorf("p=%.1f: estimate %.0f outside ±30%% of 1e6", p, out.Estimate)
				}
			}
		}
		if total < 15 {
			t.Errorf("p=%.1f: only %d/25 trials produced output", p, total)
		}
		if hits < total*8/10 {
			t.Errorf("p=%.1f: dominant coordinate sampled %d/%d", p, hits, total)
		}
	}
}

func TestLpSamplerDistribution(t *testing.T) {
	// Empirical output distribution vs the exact Lp distribution on a
	// small-support vector (support 8 in n=256).
	if testing.Short() {
		t.Skip("statistical test")
	}
	r := rand.New(rand.NewPCG(4, 4))
	const n = 256
	values := map[int]int64{3: 100, 17: -200, 40: 50, 99: 400, 150: -100, 200: 25, 222: 300, 255: -50}
	var st stream.Stream
	for i, v := range values {
		st = append(st, stream.Update{Index: i, Delta: v})
	}
	truth := st.Apply(n)

	for _, p := range []float64{0.5, 1, 1.5} {
		target := truth.LpDistribution(p)
		counts := map[int]int{}
		got := 0
		const trials = 300
		for trial := 0; trial < trials; trial++ {
			s := NewLpSampler(LpConfig{P: p, N: n, Eps: 0.25, Delta: 0.15}, r)
			st.Feed(s)
			out, ok := s.Sample()
			if !ok {
				continue
			}
			counts[out.Index]++
			got++
		}
		if got < trials*6/10 {
			t.Errorf("p=%.1f: only %d/%d trials succeeded", p, got, trials)
			continue
		}
		tv := vector.EmpiricalTV(counts, target, got)
		// Budget: O(eps) distribution error + sampling noise
		// (~sum_i sqrt(p_i/got) ≈ 0.11 for 8 atoms at ~300 samples).
		if tv > 0.25 {
			t.Errorf("p=%.1f: TV distance %.3f too large (%d samples)", p, tv, got)
		}
	}
}

func TestLpSamplerEstimateAccuracy(t *testing.T) {
	// Whatever index comes out, the estimate must be within eps of x_i w.h.p.
	r := rand.New(rand.NewPCG(5, 5))
	const n = 256
	st := stream.ZipfSigned(n, 1.0, 10000, r)
	truth := st.Apply(n)
	bad, total := 0, 0
	for trial := 0; trial < 40; trial++ {
		s := NewLpSampler(LpConfig{P: 1, N: n, Eps: 0.25, Delta: 0.2}, r)
		st.Feed(s)
		out, ok := s.Sample()
		if !ok {
			continue
		}
		total++
		truthV := float64(truth.Get(out.Index))
		if truthV == 0 {
			bad++ // sampled a zero coordinate: distribution error
			continue
		}
		if math.Abs(out.Estimate-truthV) > 0.25*math.Abs(truthV)+1e-9 {
			bad++
		}
	}
	if total < 20 {
		t.Fatalf("only %d/40 trials succeeded", total)
	}
	if bad > total/5 {
		t.Errorf("%d/%d samples had bad estimates", bad, total)
	}
}

func TestLpSamplerFailureRate(t *testing.T) {
	r := rand.New(rand.NewPCG(6, 6))
	const n = 128
	st := stream.ZipfSigned(n, 0.8, 1000, r)
	fails := 0
	const trials = 30
	for trial := 0; trial < trials; trial++ {
		s := NewLpSampler(LpConfig{P: 1, N: n, Eps: 0.3, Delta: 0.1}, r)
		st.Feed(s)
		if _, ok := s.Sample(); !ok {
			fails++
		}
	}
	// δ = 0.1; allow generous slack for constant-factor calibration.
	if fails > trials/4 {
		t.Errorf("failure rate %d/%d far above δ=0.1", fails, trials)
	}
}

func TestLpSamplerParameterFormulas(t *testing.T) {
	r := rand.New(rand.NewPCG(7, 7))
	// k = 10*ceil(1/|p-1|) for p != 1.
	s := NewLpSampler(LpConfig{P: 1.5, N: 64, Eps: 0.5, Delta: 0.2}, r)
	if s.K() != 20 {
		t.Errorf("p=1.5: k = %d, want 20", s.K())
	}
	s = NewLpSampler(LpConfig{P: 0.75, N: 64, Eps: 0.5, Delta: 0.2}, r)
	if s.K() != 40 {
		t.Errorf("p=0.75: k = %d, want 40", s.K())
	}
	// m grows as eps^{-(p-1)} for p > 1...
	mLarge := NewLpSampler(LpConfig{P: 1.5, N: 64, Eps: 0.1, Delta: 0.2}, r).M()
	mSmall := NewLpSampler(LpConfig{P: 1.5, N: 64, Eps: 0.5, Delta: 0.2}, r).M()
	if mLarge <= mSmall {
		t.Errorf("m must grow as eps shrinks for p>1: %d vs %d", mLarge, mSmall)
	}
	// ...but stays O(1) in eps for p < 1.
	mA := NewLpSampler(LpConfig{P: 0.5, N: 64, Eps: 0.1, Delta: 0.2}, r).M()
	mB := NewLpSampler(LpConfig{P: 0.5, N: 64, Eps: 0.5, Delta: 0.2}, r).M()
	if mA != mB {
		t.Errorf("m must not depend on eps for p<1: %d vs %d", mA, mB)
	}
	// Repetitions shrink with eps and grow with log(1/δ).
	v1 := NewLpSampler(LpConfig{P: 1, N: 64, Eps: 0.5, Delta: 0.2}, r).Copies()
	v2 := NewLpSampler(LpConfig{P: 1, N: 64, Eps: 0.5, Delta: 0.01}, r).Copies()
	if v2 <= v1 {
		t.Errorf("copies must grow with log(1/δ): %d vs %d", v1, v2)
	}
}

func TestLpSamplerSpaceAccounting(t *testing.T) {
	r := rand.New(rand.NewPCG(8, 8))
	small := NewLpSampler(LpConfig{P: 1.5, N: 1 << 8, Eps: 0.5, Delta: 0.2, Copies: 4}, r)
	big := NewLpSampler(LpConfig{P: 1.5, N: 1 << 16, Eps: 0.5, Delta: 0.2, Copies: 4}, r)
	if big.SpaceBits() <= small.SpaceBits() {
		t.Error("space must grow with log n (rows)")
	}
	// Growth from n=2^8 to n=2^16 should be roughly the rows ratio (~2x),
	// nowhere near the 256x dimension ratio: the sketch is polylog.
	if big.SpaceBits() > 6*small.SpaceBits() {
		t.Errorf("space grew too fast: %d -> %d", small.SpaceBits(), big.SpaceBits())
	}
}

func TestLpSamplerAblationHooks(t *testing.T) {
	// A1/A2 configurations must run end-to-end.
	r := rand.New(rand.NewPCG(9, 9))
	st := stream.ZipfSigned(128, 1.0, 1000, r)
	a1 := NewLpSampler(LpConfig{P: 1.5, N: 128, Eps: 0.3, Delta: 0.2, KOverride: 2}, r)
	if a1.K() != 2 {
		t.Fatalf("KOverride ignored: k=%d", a1.K())
	}
	st.Feed(a1)
	a1.Sample() // must not panic

	a2 := NewLpSampler(LpConfig{P: 1.5, N: 128, Eps: 0.3, Delta: 0.2, DisableSTest: true}, r)
	st.Feed(a2)
	a2.Sample()
}

func BenchmarkLpSamplerProcess(b *testing.B) {
	r := rand.New(rand.NewPCG(1, 1))
	s := NewLpSampler(LpConfig{P: 1, N: 1 << 16, Eps: 0.3, Delta: 0.2, Copies: 8}, r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Process(stream.Update{Index: i % (1 << 16), Delta: 1})
	}
}

func BenchmarkLpSamplerSample(b *testing.B) {
	r := rand.New(rand.NewPCG(1, 1))
	const n = 1 << 12
	s := NewLpSampler(LpConfig{P: 1, N: n, Eps: 0.3, Delta: 0.2, Copies: 8}, r)
	st := stream.ZipfSigned(n, 1.0, 100000, r)
	st.Feed(s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Sample()
	}
}

func TestLpSamplerMergeMatchesSerial(t *testing.T) {
	// Same-seed Lp samplers over two stream halves merge into a sampler
	// whose recovery output matches the serial one: identical sampled
	// indices, estimates equal up to float addition reordering.
	const n = 256
	cfg := LpConfig{P: 1, N: n, Eps: 0.25, Delta: 0.25, Copies: 8}
	mk := func() *LpSampler { return NewLpSampler(cfg, rand.New(rand.NewPCG(71, 72))) }
	st := stream.RandomTurnstile(n, 4000, 50, rand.New(rand.NewPCG(73, 74)))
	whole, a, b := mk(), mk(), mk()
	st.Feed(whole)
	st[:2000].Feed(a)
	st[2000:].Feed(b)
	if err := a.Merge(b); err != nil {
		t.Fatalf("same-seed merge failed: %v", err)
	}
	wAll, mAll := whole.SampleAll(), a.SampleAll()
	if len(wAll) != len(mAll) {
		t.Fatalf("merged emitted %d samples, serial %d", len(mAll), len(wAll))
	}
	for i := range wAll {
		if wAll[i].Index != mAll[i].Index {
			t.Fatalf("sample %d: merged index %d != serial %d", i, mAll[i].Index, wAll[i].Index)
		}
		if diff := math.Abs(wAll[i].Estimate - mAll[i].Estimate); diff > 1e-6*math.Abs(wAll[i].Estimate) {
			t.Fatalf("sample %d: merged estimate %v != serial %v", i, mAll[i].Estimate, wAll[i].Estimate)
		}
	}
}

func TestLpSamplerMergeRejectsMismatch(t *testing.T) {
	cfg := LpConfig{P: 1, N: 64, Eps: 0.25, Delta: 0.25, Copies: 4}
	a := NewLpSampler(cfg, rand.New(rand.NewPCG(75, 76)))
	b := NewLpSampler(cfg, rand.New(rand.NewPCG(77, 78)))
	if err := a.Merge(b); err == nil {
		t.Fatal("expected error merging differently seeded samplers")
	}
	cfg2 := cfg
	cfg2.Copies = 6
	if err := a.Merge(NewLpSampler(cfg2, rand.New(rand.NewPCG(75, 76)))); err == nil {
		t.Fatal("expected error merging samplers of different configurations")
	}
}
