// Package core implements the paper's primary contributions: the
// O(ε^{-max(1,p)} log² n)-space approximate Lp sampler for p in (0,2)
// (Figure 1 / Theorem 1) and the O(log² n)-bit zero relative error L0
// sampler (Theorem 2).
//
// # Level assignment in the L0 sampler
//
// §2.1 defines subsampling sets I_k ⊆ [n] with E|I_k| = 2^k. Two readings
// are implemented, selected by L0Config.NestedLevels:
//
//   - Default (i.i.d., DESIGN.md substitution #2): membership is an
//     independent Bernoulli(2^k/n) coin per (level, coordinate), each drawn
//     from its own Nisan PRG block. The analysis of Theorem 2 only uses
//     per-level marginals, so independence across levels is admissible and
//     keeps levels statistically decoupled.
//   - NestedLevels (the paper's nested reading): one PRG block u_i per
//     coordinate and dyadic thresholds, i ∈ I_k iff u_i < 2^k/n · Modulus,
//     giving I_1 ⊆ I_2 ⊆ ... exactly as in §2.1. Same per-level marginals,
//     one PRG tree walk per update instead of ⌊log n⌋, and a PRG stretched
//     to n instead of n·log n blocks (smaller seed). Validated by the E3
//     uniformity experiment and the nested-mode distribution tests.
//
// In both modes membership is decided by integer threshold compares on raw
// 61-bit blocks fetched through the PRG's prefix-sharing batch kernel — the
// L0 ingestion fast path.
package core

import (
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/codec"
	"repro/internal/countsketch"
	"repro/internal/hash"
	"repro/internal/norm"
	"repro/internal/stream"
)

// LpConfig configures an Lp sampler. Zero values select the paper's
// parameters (with empirically calibrated constants).
type LpConfig struct {
	// P is the sampling exponent, in (0,2). (p = 0 is L0Sampler; p = 2 is
	// not achievable by this method in O(log² n) space, see §2.)
	P float64
	// N is the dimension of the underlying vector.
	N int
	// Eps is the relative-error / success-rate parameter ε of Figure 1.
	Eps float64
	// Delta is the failure probability after repetition (Theorem 1).
	Delta float64

	// Rows overrides the count-sketch depth l = O(log n).
	Rows int
	// MFactor scales the count-sketch parameter m ("large enough constant").
	MFactor float64
	// Copies overrides the repetition count v = O(log(1/δ)/ε).
	Copies int
	// NormCounters overrides the size of the shared ||x||_p estimator.
	NormCounters int

	// KOverride forces the independence of the scaling factors t_i
	// (ablation A1; the paper uses k = 10⌈1/|p-1|⌉, and k = O(log 1/ε)
	// for p = 1).
	KOverride int
	// DisableSTest turns off the recovery-stage abort on s > βm^{1/2}r
	// (ablation A2 — the conditioning fix of Lemma 3).
	DisableSTest bool
}

// Sample is a successful Lp-sampler output: the sampled index and the
// (1±ε)-relative-error estimate of x_i (footnote 1 of the paper: the
// algorithm approximates x_i itself, not |x_i|^p/||x||_p^p).
type Sample struct {
	Index    int
	Estimate float64
}

// Diagnostics reports, per SampleAll call, how each repetition resolved —
// the empirical counterpart of the event probabilities in Lemmas 3 and 4.
type Diagnostics struct {
	// Emitted repetitions produced a sample.
	Emitted int
	// STestAborts failed on s > βm^{1/2}r (the Lemma 3 event).
	STestAborts int
	// ThresholdFails had no coordinate reaching ε^{-1/p} r (the common,
	// by-design outcome: per-round success is only Θ(ε)).
	ThresholdFails int
	// Guarded tripped the t_i < n^{-c} guard during processing.
	Guarded int
}

// LpSampler is a one-pass streaming Lp sampler: v parallel repetitions of the
// Figure 1 round, sharing a single ||x||_p estimator (Lemma 4 conditions on a
// fixed r, so sharing r across repetitions is faithful to the analysis).
type LpSampler struct {
	cfg    LpConfig
	k      int     // independence of the scaling factors
	m      int     // count-sketch parameter
	beta   float64 // β = ε^{1-1/p}
	tMin   float64 // abort guard: fail a copy if some t_i < tMin (= n^{-c})
	copies []*lpCopy
	rNorm  *norm.Stable // shared sketch estimating ||x||_p
	diag   Diagnostics

	// Scratch buffers for ProcessBatch, grown on demand and reused forever:
	// the batch's key view, the per-copy scaling factors t_i from the k-wise
	// Float64Batch kernel, and the guard-filtered scaled batch (z-space)
	// shared by count-sketch and AMS. Steady-state calls allocate nothing.
	scratchKey []uint64
	scratchT   []float64
	scratchIdx []uint64
	scratchZ   []float64

	// Query-side memoization: SampleAll's outputs (and the diagnostics they
	// produced) are cached until the next mutation, so repeated queries on an
	// unchanged sketch skip the per-repetition recovery stage entirely.
	queryValid bool
	cachedAll  []Sample
	cachedDiag Diagnostics
}

// Diagnostics returns the per-repetition outcome counts of the most recent
// SampleAll (or Sample) call.
func (s *LpSampler) Diagnostics() Diagnostics { return s.diag }

// lpCopy is one independent repetition of the Figure 1 round.
type lpCopy struct {
	t       *hash.KWise         // k-wise scaling factors t_i ∈ (0,1]
	cs      *countsketch.Sketch // count-sketch of z, z_i = x_i t_i^{-1/p}
	ams     *norm.AMS           // L2 sketch of z for s ≈ ||z - ẑ||₂
	guarded bool                // true once some t_i fell below tMin
}

// NewLpSampler constructs the sampler. It panics if p is outside (0,2) or
// eps/delta are not in (0,1).
func NewLpSampler(cfg LpConfig, r *rand.Rand) *LpSampler {
	if cfg.P <= 0 || cfg.P >= 2 {
		panic("core: LpSampler requires p in (0,2); use L0Sampler for p=0")
	}
	if cfg.Eps <= 0 || cfg.Eps >= 1 {
		panic("core: eps must be in (0,1)")
	}
	if cfg.Delta <= 0 || cfg.Delta >= 1 {
		cfg.Delta = 0.25
	}
	if cfg.N < 1 {
		panic("core: n must be positive")
	}
	p, eps := cfg.P, cfg.Eps

	// Initialization stage of Figure 1.
	k := cfg.KOverride
	if k <= 0 {
		if p == 1 {
			k = int(math.Ceil(4 * math.Log2(1/eps)))
		} else {
			k = 10 * int(math.Ceil(1/math.Abs(p-1)))
		}
		if k < 2 {
			k = 2
		}
	}
	mf := cfg.MFactor
	if mf <= 0 {
		mf = 16
	}
	var m int
	if p == 1 {
		m = int(math.Ceil(mf * math.Max(1, math.Log2(1/eps))))
	} else {
		m = int(math.Ceil(mf * math.Pow(eps, -math.Max(0, p-1))))
	}
	if m < 2 {
		m = 2
	}
	rows := cfg.Rows
	if rows <= 0 {
		rows = int(math.Ceil(math.Log2(float64(cfg.N)))) + 4
		if rows < 7 {
			rows = 7
		}
	}
	normCounters := cfg.NormCounters
	if normCounters <= 0 {
		normCounters = 80
		if p < 0.75 {
			normCounters = 140
		}
	}
	copies := cfg.Copies
	if copies <= 0 {
		// Per-round success is at least ~ε/2^p (Theorem 1 proof).
		perRound := eps / math.Pow(2, p)
		copies = int(math.Ceil(math.Log(1/cfg.Delta) / perRound))
		if copies < 1 {
			copies = 1
		}
	}

	s := &LpSampler{
		cfg:    cfg,
		k:      k,
		m:      m,
		beta:   math.Pow(eps, 1-1/p),
		tMin:   math.Pow(float64(cfg.N), -2) / 16,
		copies: make([]*lpCopy, copies),
		rNorm:  norm.NewStable(p, normCounters, r),
	}
	for c := range s.copies {
		s.copies[c] = &lpCopy{
			t:   hash.NewKWise(k, r),
			cs:  countsketch.New(m, rows, r),
			ams: norm.NewAMS(9, 6, r),
		}
	}
	return s
}

// K returns the independence parameter in use for the scaling factors.
func (s *LpSampler) K() int { return s.k }

// M returns the count-sketch parameter m in use.
func (s *LpSampler) M() int { return s.m }

// Copies returns the number of parallel repetitions v.
func (s *LpSampler) Copies() int { return len(s.copies) }

// Process implements stream.Sink: it feeds the update to every repetition
// (scaled by t_i^{-1/p}) and to the shared norm sketch.
func (s *LpSampler) Process(u stream.Update) {
	s.queryValid = false
	i := uint64(u.Index)
	d := float64(u.Delta)
	s.rNorm.Process(u)
	invP := 1 / s.cfg.P
	for _, c := range s.copies {
		ti := c.t.Float64(i)
		if ti < s.tMin {
			// Paper, Theorem 1 proof: "we can safely declare failure if
			// t_i^{-1} > n^c for some i" — a low-probability event.
			c.guarded = true
			continue
		}
		scale := math.Pow(ti, -invP)
		zd := d * scale
		c.cs.Add(i, zd)
		c.ams.AddFloat(i, zd)
	}
}

// ProcessBatch implements stream.BatchSink. The batch's keys are extracted
// once; each repetition then evaluates its k-wise scaling row through the
// flat Float64Batch kernel (all k coefficients stay hot for the whole batch),
// builds the guard-filtered scaled z-batch, and feeds it through the batched
// count-sketch and AMS hot paths. The resulting state matches repeated
// Process calls; steady-state calls allocate nothing.
func (s *LpSampler) ProcessBatch(batch []stream.Update) {
	if len(batch) == 0 {
		return
	}
	s.queryValid = false
	s.rNorm.ProcessBatch(batch)
	invP := 1 / s.cfg.P
	n := len(batch)
	keys := stream.Keys(batch, &s.scratchKey)
	if cap(s.scratchT) < n {
		s.scratchT = make([]float64, n)
		s.scratchIdx = make([]uint64, n)
		s.scratchZ = make([]float64, n)
	}
	ts := s.scratchT[:n]
	for _, c := range s.copies {
		c.t.Float64Batch(keys, ts)
		idx, zd := s.scratchIdx[:0], s.scratchZ[:0]
		for t, u := range batch {
			ti := ts[t]
			if ti < s.tMin {
				c.guarded = true
				continue
			}
			idx = append(idx, keys[t])
			zd = append(zd, float64(u.Delta)*math.Pow(ti, -invP))
		}
		c.cs.AddBatch(idx, zd)
		c.ams.AddFloatBatch(idx, zd)
	}
}

// Merge adds the linear state of another sampler so the result summarizes
// the sum of the two underlying vectors. Both samplers must be same-seed
// replicas: identical configuration and identical randomness in every
// repetition and the shared norm sketch. Guard trips are OR-ed, matching
// the "declare failure if any t_i fell below n^{-c}" semantics.
func (s *LpSampler) Merge(other *LpSampler) error {
	if other == nil {
		return fmt.Errorf("core: %w", codec.ErrNilMerge)
	}
	if s.cfg.P != other.cfg.P || s.cfg.N != other.cfg.N ||
		s.k != other.k || s.m != other.m || len(s.copies) != len(other.copies) {
		return fmt.Errorf("core: merging Lp samplers of different configurations: %w", codec.ErrConfigMismatch)
	}
	for ci, c := range s.copies {
		if !c.t.Equal(other.copies[ci].t) {
			return fmt.Errorf("core: %w", codec.ErrSeedMismatch)
		}
	}
	s.queryValid = false
	for ci, c := range s.copies {
		oc := other.copies[ci]
		if err := c.cs.Merge(oc.cs); err != nil {
			return err
		}
		if err := c.ams.Merge(oc.ams); err != nil {
			return err
		}
		c.guarded = c.guarded || oc.guarded
	}
	return s.rNorm.Merge(other.rNorm)
}

// Sample runs the recovery stage of Figure 1 on each repetition in turn and
// returns the first non-FAIL output. ok is false when every repetition fails
// (probability at most δ, plus the always-fail case of the zero vector).
func (s *LpSampler) Sample() (Sample, bool) {
	all := s.SampleAll()
	if len(all) == 0 {
		return Sample{}, false
	}
	return all[0], true
}

// SampleAll runs the recovery stage on every repetition and returns each
// non-FAIL output in repetition order. Consumers that filter outputs further
// — e.g. the duplicates reduction of Theorem 3, which accepts the first
// sample whose estimate is positive — need the full list rather than just
// the first success.
//
// Results are memoized: repeated calls on an unchanged sketch return the
// cached outputs (and restore the matching Diagnostics) without re-running
// recovery. The returned slice is owned by the sampler and valid until the
// next mutating call — callers must not modify it.
func (s *LpSampler) SampleAll() []Sample {
	if s.queryValid {
		s.diag = s.cachedDiag
		return s.cachedAll
	}
	s.cachedAll = s.sampleAll()
	s.cachedDiag = s.diag
	s.queryValid = true
	return s.cachedAll
}

// sampleAll runs the actual recovery stage (the pre-memoization SampleAll).
func (s *LpSampler) sampleAll() []Sample {
	s.diag = Diagnostics{}
	r := s.rNorm.UpperEstimate(nil)
	if r == 0 {
		return nil
	}
	p := s.cfg.P
	invP := 1 / p
	threshold := math.Pow(s.cfg.Eps, -invP) * r
	sBound := s.beta * math.Sqrt(float64(s.m)) * r
	var out []Sample
	for _, c := range s.copies {
		if c.guarded {
			s.diag.Guarded++
			continue
		}
		// z* and its best m-sparse approximation ẑ.
		top := c.cs.Top(s.cfg.N, s.m)
		if len(top) == 0 {
			s.diag.ThresholdFails++
			continue
		}
		zhat := make(map[uint64]float64, len(top))
		for _, e := range top {
			zhat[uint64(e.Index)] = e.Estimate
		}
		if !s.cfg.DisableSTest {
			sEst := c.ams.UpperEstimate(zhat)
			if sEst > sBound {
				s.diag.STestAborts++
				continue // FAIL: tail too heavy (Lemma 3 event)
			}
		}
		best := top[0] // Top sorts by decreasing |z*_i|
		if math.Abs(best.Estimate) < threshold {
			s.diag.ThresholdFails++
			continue // FAIL: no coordinate passed the ε^{-1/p} r limit
		}
		s.diag.Emitted++
		ti := c.t.Float64(uint64(best.Index))
		out = append(out, Sample{
			Index:    best.Index,
			Estimate: best.Estimate * math.Pow(ti, invP),
		})
	}
	return out
}

// SpaceBits accounts one repetition as count-sketch + AMS + scaling seed,
// plus the shared norm sketch — the O(vm log² n) bits of Theorem 1.
func (s *LpSampler) SpaceBits() int64 {
	var bits int64
	for _, c := range s.copies {
		bits += c.cs.SpaceBits() + c.ams.SpaceBits() + c.t.SpaceBits()
	}
	return bits + s.rNorm.SpaceBits()
}

// StateBits reports the linear-measurement contents only (counters, no
// seeds) — the message size when the sampler state is shipped in a
// public-coin protocol, as in the reductions of §4.
func (s *LpSampler) StateBits() int64 {
	var bits int64
	for _, c := range s.copies {
		bits += c.cs.StateBits() + c.ams.StateBits()
	}
	return bits + s.rNorm.StateBits()
}

// AppendState writes the sampler's linear state into a codec encoder: per
// repetition the count-sketch cells, AMS counters and guard flag, then the
// shared norm sketch. Seeds and scaling factors are construction randomness
// and stay with the receiver.
func (s *LpSampler) AppendState(e *codec.Encoder) {
	for _, c := range s.copies {
		c.cs.AppendState(e)
		c.ams.AppendState(e)
		e.Bool(c.guarded)
	}
	s.rNorm.AppendState(e)
}

// RestoreState replaces the sampler's linear state from a codec decoder and
// invalidates the memoized recovery outputs.
func (s *LpSampler) RestoreState(d *codec.Decoder) {
	s.queryValid = false
	for _, c := range s.copies {
		c.cs.RestoreState(d)
		c.ams.RestoreState(d)
		c.guarded = d.Bool()
	}
	s.rNorm.RestoreState(d)
}
