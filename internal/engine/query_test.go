package engine

import (
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/sparse"
	"repro/internal/stream"
)

// TestParallelForCoversEachIndexOnce: every index runs exactly once for
// every worker-count shape (serial fallback, fewer workers than items, more
// workers than items, default).
func TestParallelForCoversEachIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 64} {
		const n = 37
		var counts [n]atomic.Int32
		ParallelFor(n, workers, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Errorf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
	ParallelFor(0, 4, func(int) { t.Error("fn called for n=0") })
}

// TestRecoverAllMatchesSerialSample: the parallel level probe must produce
// exactly the per-level decodes of the serial path, and warming the caches
// through it must leave Sample bit-identical to a never-parallelized
// same-seed replica.
func TestRecoverAllMatchesSerialSample(t *testing.T) {
	const n = 1 << 10
	st := stream.SparseVector(n, 24, 100, seeded(31))
	mk := func() *core.L0Sampler {
		return core.NewL0Sampler(core.L0Config{N: n, Delta: 0.2}, seeded(32))
	}
	parallel, serial := mk(), mk()
	st.Feed(parallel)
	st.Feed(serial)

	decodes := RecoverAll(parallel, 4)
	if len(decodes) != parallel.Levels() {
		t.Fatalf("RecoverAll returned %d levels, want %d", len(decodes), parallel.Levels())
	}
	for k, d := range decodes {
		if d.Level != k {
			t.Fatalf("decode %d labeled level %d", k, d.Level)
		}
		rec, ok := serial.RecoverLevel(k)
		if d.OK != ok || len(d.Support) != len(rec) {
			t.Fatalf("level %d: parallel (%v,%v) vs serial (%v,%v)", k, d.Support, d.OK, rec, ok)
		}
		for i, v := range rec {
			if d.Support[i] != v {
				t.Fatalf("level %d coord %d: parallel %d vs serial %d", k, d.Support[i], i, v)
			}
		}
	}
	ps, pok := parallel.Sample()
	ss, sok := serial.Sample()
	if pok != sok || ps != ss {
		t.Fatalf("post-RecoverAll Sample (%+v,%v) differs from serial (%+v,%v)", ps, pok, ss, sok)
	}
}

// TestQueryPathZeroAlloc extends the zero-allocation contract to the query
// side: after the first decode warms each memoized cache, steady-state
// repeated queries on an unchanged sketch — sparse Recover, L0 Sample, Lp
// SampleAll — allocate nothing.
func TestQueryPathZeroAlloc(t *testing.T) {
	const n = 1 << 10
	st := stream.SparseVector(n, 16, 50, seeded(21))

	rc := sparse.New(n, 20, seeded(22))
	st.Feed(rc)
	if _, ok := rc.Recover(); !ok {
		t.Fatal("sparse decode failed")
	}
	if got := testing.AllocsPerRun(10, func() { rc.Recover() }); got != 0 {
		t.Errorf("sparse.Recover allocates %v times per call on a clean sketch, want 0", got)
	}

	l0 := core.NewL0Sampler(core.L0Config{N: n, Delta: 0.2}, seeded(23))
	st.Feed(l0)
	if _, ok := l0.Sample(); !ok {
		t.Fatal("L0 sample failed")
	}
	if got := testing.AllocsPerRun(10, func() { l0.Sample() }); got != 0 {
		t.Errorf("L0Sampler.Sample allocates %v times per call on a clean sketch, want 0", got)
	}

	lp := core.NewLpSampler(core.LpConfig{P: 1.2, N: n, Eps: 0.3, Delta: 0.3, Copies: 3}, seeded(24))
	st.FeedBatch(256, lp)
	lp.SampleAll()
	if got := testing.AllocsPerRun(10, func() { lp.SampleAll() }); got != 0 {
		t.Errorf("LpSampler.SampleAll allocates %v times per call on a clean sketch, want 0", got)
	}
}
