package engine

import (
	"bytes"
	"context"
	"errors"
	"math/rand/v2"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/countmin"
	"repro/internal/faultinject"
	"repro/internal/retry"
	"repro/internal/stream"
)

// l0Factory builds the same-seed L0 replica the supervision and durability
// tests shard over.
func l0Factory(n int) func(int) *core.L0Sampler {
	return func(int) *core.L0Sampler {
		return core.NewL0Sampler(core.L0Config{N: n, Delta: 0.2},
			rand.New(rand.NewPCG(99, 98)))
	}
}

func l0Merge(dst, src *core.L0Sampler) error { return dst.Merge(src) }

// TestWorkerPanicQuarantinedWithoutStore: injected replica panics must never
// crash the process or wedge the producer; with no checkpoint store bound
// the taint is permanent and Results returns the degraded merge together
// with a typed *PartialResultError naming the quarantined shards.
func TestWorkerPanicQuarantinedWithoutStore(t *testing.T) {
	const n, length = 256, 8000
	st := stream.RandomTurnstile(n, length, 40, seeded(31))
	eng := New(Config{
		Shards: 4, BatchSize: 16, QueueDepth: 2,
		Injector: faultinject.New(7, 0.05).Only(faultinject.WorkerPanic),
	},
		func(int) *countmin.Sketch { return countmin.New(32, 4, seeded(32)) },
		func(dst, src *countmin.Sketch) error { return dst.Merge(src) })
	eng.ProcessBatch(st)
	merged, err := eng.Results()
	var pe *PartialResultError
	if !errors.As(err, &pe) {
		t.Fatalf("Results err = %v, want *PartialResultError", err)
	}
	if len(pe.Shards) == 0 || pe.Panics == 0 || pe.Lost == 0 {
		t.Fatalf("partial error carries no taint detail: %+v", pe)
	}
	if st := eng.Stats(); st.Panics == 0 {
		t.Fatalf("Stats.Panics = 0 after injected panics")
	}
	// The degraded result is still a usable sketch of the surviving shards.
	if merged == nil {
		t.Fatal("degraded merge is nil")
	}
	// Terminal semantics are unchanged: Results again returns the same pair.
	if _, err2 := eng.Results(); !errors.As(err2, &pe) {
		t.Fatalf("second Results err = %v", err2)
	}
}

// TestWorkerPanicExactWithStore is the supervision headline: with a
// checkpoint store bound, injected worker panics are healed by rolling the
// whole replica set back to the last durable generation plus the journal
// tail, and the final result is byte-identical to an uninterrupted serial
// ingest — panics cost latency, never answers.
func TestWorkerPanicExactWithStore(t *testing.T) {
	const n, length = 256, 6000
	st := stream.RandomTurnstile(n, length, 40, seeded(41))
	factory := l0Factory(n)

	serial := factory(0)
	st.Feed(serial)

	store, err := checkpoint.Open(t.TempDir(), checkpoint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	eng := New(Config{
		Shards: 4, BatchSize: 16, QueueDepth: 2,
		CheckpointEvery: 1500,
		Injector:        faultinject.New(11, 0.1).Only(faultinject.WorkerPanic),
	}, factory, l0Merge)
	if err := eng.CheckpointTo(store, l0Marshal, l0Restore); err != nil {
		t.Fatal(err)
	}
	eng.ProcessBatch(st)
	merged, err := eng.Results()
	if err != nil {
		t.Fatalf("Results after supervised panics: %v", err)
	}
	stats := eng.Stats()
	if stats.Panics == 0 {
		t.Fatal("no panics were injected; the test exercised nothing")
	}
	if stats.Recoveries == 0 {
		t.Fatal("panics occurred but no rollback recovery was counted")
	}
	if !bytes.Equal(merged.ExportState(), serial.ExportState()) {
		t.Fatal("supervised result differs from uninterrupted serial state")
	}
}

// TestSnapshotRefusesTaintedState: a tainted engine with no store to roll
// back from must not emit snapshot blobs that encode the hole.
func TestSnapshotRefusesTaintedState(t *testing.T) {
	const n = 64
	factory := l0Factory(n)
	eng := New(Config{
		Shards: 2, BatchSize: 4,
		Injector: faultinject.New(3, 1).Only(faultinject.WorkerPanic),
	}, factory, l0Merge)
	defer eng.Close()
	eng.ProcessBatch(stream.RandomTurnstile(n, 64, 8, seeded(51)))
	_, err := eng.Snapshot(l0Marshal)
	var pe *PartialResultError
	if !errors.As(err, &pe) {
		t.Fatalf("Snapshot on tainted engine: err = %v, want *PartialResultError", err)
	}
}

// TestTerminalGuardsAreTyped pins the ErrEngineClosed sentinel across every
// producer entry point: the hot-path guard panics with an error wrapping
// it, the cold paths return errors wrapping it.
func TestTerminalGuardsAreTyped(t *testing.T) {
	factory := l0Factory(64)
	eng := New(Config{Shards: 2}, factory, l0Merge)
	if _, err := eng.Results(); err != nil {
		t.Fatal(err)
	}

	func() {
		defer func() {
			r := recover()
			err, ok := r.(error)
			if !ok || !errors.Is(err, ErrEngineClosed) {
				t.Fatalf("Process panic value = %v, want error wrapping ErrEngineClosed", r)
			}
		}()
		eng.Process(stream.Update{Index: 1, Delta: 1})
	}()

	if err := eng.Resize(3); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("Resize: %v, want ErrEngineClosed", err)
	}
	if _, err := eng.Snapshot(l0Marshal); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("Snapshot: %v, want ErrEngineClosed", err)
	}
	if err := eng.Restore(make([][]byte, 2), l0Restore); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("Restore: %v, want ErrEngineClosed", err)
	}
	if err := eng.CheckpointNow(); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("CheckpointNow: %v, want ErrEngineClosed", err)
	}
	if err := eng.CheckpointTo(nil, nil, nil); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("CheckpointTo: %v, want ErrEngineClosed", err)
	}

	closed := New(Config{Shards: 1}, factory, l0Merge)
	closed.Close()
	if _, err := closed.Results(); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("Results after Close: %v, want ErrEngineClosed", err)
	}
}

// noSleep makes the store's retry loops instantaneous in tests.
func noSleep(context.Context, time.Duration) error { return nil }

// TestRollbackRefusedOnJournalHole: when the write-ahead journal itself
// failed (sticky append error), a rollback would silently under-count, so
// the engine must refuse it and surface the taint as a PartialResultError
// whose RecoveryErr explains the hole.
func TestRollbackRefusedOnJournalHole(t *testing.T) {
	const n = 64
	factory := l0Factory(n)
	inj := faultinject.New(5, 1).Only(faultinject.JournalAppend, faultinject.WorkerPanic)
	store, err := checkpoint.Open(t.TempDir(), checkpoint.Options{
		Injector: inj,
		Retry:    retry.Policy{Attempts: 2, Sleep: noSleep},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	eng := New(Config{Shards: 2, BatchSize: 4, Injector: inj}, factory, l0Merge)
	if err := eng.CheckpointTo(store, l0Marshal, l0Restore); err != nil {
		t.Fatal(err)
	}
	eng.ProcessBatch(stream.RandomTurnstile(n, 64, 8, seeded(52)))
	if err := eng.DurabilityErr(); err == nil {
		t.Fatal("journal appends were injected to fail, DurabilityErr is nil")
	}
	_, err = eng.Results()
	var pe *PartialResultError
	if !errors.As(err, &pe) {
		t.Fatalf("Results err = %v, want *PartialResultError", err)
	}
	if pe.RecoveryErr == nil {
		t.Fatal("PartialResultError.RecoveryErr must explain the refused rollback")
	}
	var ie *faultinject.InjectedErr
	if !errors.As(pe.RecoveryErr, &ie) {
		t.Fatalf("RecoveryErr = %v, want the injected journal fault as its cause", pe.RecoveryErr)
	}
}
