package engine

import (
	"bytes"
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/countmin"
	"repro/internal/countsketch"
	"repro/internal/distinct"
	"repro/internal/duplicates"
	"repro/internal/heavyhitters"
	"repro/internal/norm"
	"repro/internal/stream"
)

// TestPropertyBatchEqualsProcess: for every sketch implementing
// stream.BatchSink, feeding a stream through FeedBatch leaves exactly the
// state of feeding it one Process call at a time. The batched hot paths
// preserve per-cell accumulation order, so the comparison is exact even for
// float-valued sketches.
func TestPropertyBatchEqualsProcess(t *testing.T) {
	type pair struct {
		name    string
		serial  stream.Sink
		batched stream.Sink
		equal   func() bool
	}
	mkPairs := func(n int, seed uint64) []pair {
		rng := func() *rand.Rand { return seeded(seed) }
		cs1, cs2 := countsketch.New(6, 5, rng()), countsketch.New(6, 5, rng())
		cm1, cm2 := countmin.New(32, 4, rng()), countmin.New(32, 4, rng())
		sp1, sp2 := core.NewL0Sampler(core.L0Config{N: n, Delta: 0.25}, rng()),
			core.NewL0Sampler(core.L0Config{N: n, Delta: 0.25}, rng())
		de1, de2 := distinct.New(n, 8, rng()), distinct.New(n, 8, rng())
		lp1, lp2 := core.NewLpSampler(core.LpConfig{P: 1, N: n, Eps: 0.25, Delta: 0.25, Copies: 6}, rng()),
			core.NewLpSampler(core.LpConfig{P: 1, N: n, Eps: 0.25, Delta: 0.25, Copies: 6}, rng())
		am1, am2 := norm.NewAMS(5, 4, rng()), norm.NewAMS(5, 4, rng())
		st1, st2 := norm.NewStable(1.3, 30, rng()), norm.NewStable(1.3, 30, rng())
		hh1, hh2 := heavyhitters.New(heavyhitters.Config{P: 1, Phi: 0.3, N: n}, rng()),
			heavyhitters.New(heavyhitters.Config{P: 1, Phi: 0.3, N: n}, rng())
		estEq := func(a, b interface {
			Estimate(uint64) float64
		}) func() bool {
			return func() bool {
				for i := 0; i < n; i++ {
					if a.Estimate(uint64(i)) != b.Estimate(uint64(i)) {
						return false
					}
				}
				return true
			}
		}
		return []pair{
			{"countsketch", cs1, cs2, estEq(cs1, cs2)},
			{"countmin", cm1, cm2, func() bool {
				for i := 0; i < n; i++ {
					if cm1.QueryMedian(uint64(i)) != cm2.QueryMedian(uint64(i)) {
						return false
					}
				}
				return true
			}},
			{"l0sampler", sp1, sp2, func() bool { return bytes.Equal(sp1.ExportState(), sp2.ExportState()) }},
			{"distinct", de1, de2, func() bool { return de1.Estimate() == de2.Estimate() }},
			{"lpsampler", lp1, lp2, func() bool {
				a, b := lp1.SampleAll(), lp2.SampleAll()
				if len(a) != len(b) {
					return false
				}
				for i := range a {
					if a[i] != b[i] {
						return false
					}
				}
				return true
			}},
			{"ams", am1, am2, func() bool { return am1.Estimate(nil) == am2.Estimate(nil) }},
			{"stable", st1, st2, func() bool { return st1.Estimate(nil) == st2.Estimate(nil) }},
			{"heavyhitters", hh1, hh2, func() bool {
				a, b := hh1.HeavyHitters(), hh2.HeavyHitters()
				if len(a) != len(b) {
					return false
				}
				for i := range a {
					if a[i] != b[i] {
						return false
					}
				}
				return true
			}},
		}
	}

	f := func(seed uint64, batchRaw uint8) bool {
		rr := seeded(seed)
		n := 64 + rr.IntN(100)
		batchSize := 1 + int(batchRaw)%200
		st := stream.RandomTurnstile(n, 500+rr.IntN(1500), 30, rr)
		for _, p := range mkPairs(n, seed^0xABCD) {
			st.Feed(p.serial)
			st.FeedBatch(batchSize, p.batched)
			if !p.equal() {
				t.Logf("seed %d batch %d: %s state diverged", seed, batchSize, p.name)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

// TestPropertyFinderBatchEqualsProcess covers the letters-as-updates path of
// the duplicates finder separately (its constructor feeds a prefix).
func TestPropertyFinderBatchEqualsProcess(t *testing.T) {
	f := func(seed uint64, batchRaw uint8) bool {
		const n = 150
		batchSize := 1 + int(batchRaw)%64
		items := stream.DuplicateItems(n, -1, seeded(seed))
		a := duplicates.NewFinder(n, 0.2, seeded(seed^1))
		b := duplicates.NewFinder(n, 0.2, seeded(seed^1))
		items.Updates().Feed(a)
		items.Updates().FeedBatch(batchSize, b)
		return a.Find() == b.Find()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// TestPropertyL0EngineSampleDistribution: sharded+merged L0 sampling is
// distributionally indistinguishable from serial sampling — here, exactly
// equal per trial, because merged linear state is bit-identical; the test
// additionally checks the aggregate frequencies stay near uniform over the
// support, the Theorem 2 guarantee.
func TestPropertyL0EngineSampleDistribution(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	const n = 128
	support := map[int]int64{7: 5, 30: -2, 77: 1000, 120: -1}
	var st stream.Stream
	for i, v := range support {
		st = append(st, stream.Update{Index: i, Delta: v})
	}

	const trials = 150
	counts := map[int]int{}
	emitted := 0
	for trial := 0; trial < trials; trial++ {
		seed := uint64(1000 + trial)
		serial := core.NewL0Sampler(core.L0Config{N: n, Delta: 0.2}, seeded(seed))
		st.Feed(serial)

		eng := New(Config{Shards: 3, BatchSize: 16},
			func(int) *core.L0Sampler { return core.NewL0Sampler(core.L0Config{N: n, Delta: 0.2}, seeded(seed)) },
			func(dst, src *core.L0Sampler) error { return dst.Merge(src) })
		eng.Feed(st)
		merged, err := eng.Results()
		if err != nil {
			t.Fatalf("Results: %v", err)
		}

		wOut, wOK := serial.Sample()
		mOut, mOK := merged.Sample()
		if wOK != mOK || wOut != mOut {
			t.Fatalf("trial %d: sharded sample (%v,%v) != serial (%v,%v)", trial, mOut, mOK, wOut, wOK)
		}
		if !mOK {
			continue
		}
		if v, in := support[mOut.Index]; !in || float64(v) != mOut.Estimate {
			t.Fatalf("trial %d: sample (%d,%v) outside support %v", trial, mOut.Index, mOut.Estimate, support)
		}
		counts[mOut.Index]++
		emitted++
	}
	if emitted < trials/2 {
		t.Fatalf("only %d/%d trials emitted a sample", emitted, trials)
	}
	// Total variation distance to the uniform support distribution.
	tv := 0.0
	for i := range support {
		tv += math.Abs(float64(counts[i])/float64(emitted) - 1.0/float64(len(support)))
	}
	tv /= 2
	if tv > 0.25 {
		t.Errorf("L0 engine sample frequencies TV distance %.3f from uniform, counts %v", tv, counts)
	}
}

// TestPropertyLpEngineSampleDistribution: sharded+merged L1 sampling tracks
// the |x_i|/||x||_1 target distribution on a skewed vector.
func TestPropertyLpEngineSampleDistribution(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	const n = 64
	values := map[int]int64{3: 60, 20: -30, 40: 8, 50: 2}
	var l1 float64
	var st stream.Stream
	for i, v := range values {
		st = append(st, stream.Update{Index: i, Delta: v})
		l1 += math.Abs(float64(v))
	}

	const trials = 200
	counts := map[int]int{}
	emitted := 0
	cfg := core.LpConfig{P: 1, N: n, Eps: 0.25, Delta: 0.2}
	for trial := 0; trial < trials; trial++ {
		seed := uint64(5000 + trial)
		eng := New(Config{Shards: 4, BatchSize: 8},
			func(int) *core.LpSampler { return core.NewLpSampler(cfg, seeded(seed)) },
			func(dst, src *core.LpSampler) error { return dst.Merge(src) })
		eng.Feed(st)
		merged, err := eng.Results()
		if err != nil {
			t.Fatalf("Results: %v", err)
		}
		out, ok := merged.Sample()
		if !ok {
			continue
		}
		if _, in := values[out.Index]; !in {
			t.Fatalf("trial %d: sampled coordinate %d outside support", trial, out.Index)
		}
		counts[out.Index]++
		emitted++
	}
	if emitted < trials/2 {
		t.Fatalf("only %d/%d trials emitted a sample", emitted, trials)
	}
	tv := 0.0
	for i, v := range values {
		tv += math.Abs(float64(counts[i])/float64(emitted) - math.Abs(float64(v))/l1)
	}
	tv /= 2
	if tv > 0.25 {
		t.Errorf("L1 engine sample frequencies TV distance %.3f from target, counts %v", tv, counts)
	}
}
