package engine

import "fmt"

// PartialResultError is the typed error Results (and Snapshot, and
// CheckpointNow) return when shard workers quarantined panicking replicas
// and exactness could not be re-established — either no checkpoint store is
// bound, or the rollback itself failed (RecoveryErr says why). The merged
// sketch returned alongside it is the exact sum of the surviving replicas:
// a degraded answer missing the quarantined shards' updates, clearly
// labeled, instead of a crash or a silent hole.
type PartialResultError struct {
	// Shards lists the quarantined shard indices, ascending.
	Shards []int
	// Lost counts the updates discarded with quarantined replicas: every
	// update a replica had absorbed when it panicked, plus the batch it
	// panicked inside.
	Lost int64
	// Panics is the engine's total caught-panic count.
	Panics int64
	// RecoveryErr is why a checkpoint rollback could not re-establish
	// exactness; nil when no store was bound.
	RecoveryErr error
}

func (e *PartialResultError) Error() string {
	msg := fmt.Sprintf("engine: partial result: %d shard(s) quarantined after %d panic(s), %d update(s) missing",
		len(e.Shards), e.Panics, e.Lost)
	if e.RecoveryErr != nil {
		msg += fmt.Sprintf("; checkpoint rollback failed: %v", e.RecoveryErr)
	}
	return msg
}

func (e *PartialResultError) Unwrap() error { return e.RecoveryErr }

// partialError builds the typed taint report from the slots. Producer-only,
// workers quiesced or joined.
func (e *Engine[T]) partialError() *PartialResultError {
	pe := &PartialResultError{
		Panics:      e.panics.Load(),
		RecoveryErr: e.durable.recoverErr,
	}
	for _, slot := range e.slots {
		if slot.tainted {
			pe.Shards = append(pe.Shards, slot.idx)
			pe.Lost += slot.lost
		}
	}
	return pe
}
