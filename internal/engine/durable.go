package engine

import (
	"errors"
	"fmt"

	"repro/internal/checkpoint"
	"repro/internal/stream"
)

// durableState is the engine's crash-safety wiring, zero unless
// CheckpointTo bound a store. All fields are producer-only.
type durableState[T stream.Sink] struct {
	store   *checkpoint.Store
	marshal func(T) ([]byte, error)
	restore func(T, []byte) error
	// sinceCkpt counts accepted updates since the last durable generation;
	// checkpoints counts generations written by this engine.
	sinceCkpt   int
	checkpoints int64
	// appendErr is sticky: once a journal append fails, journaling stops —
	// a hole mid-journal would make any later replay silently wrong — until
	// a successful checkpoint (whose generation carries the complete state)
	// re-seals durability. ckptErr is the last checkpoint failure, cleared
	// on success. recoverErr is why a rollback could not re-establish
	// exactness after worker panics.
	appendErr  error
	ckptErr    error
	recoverErr error
	wal1       [1]stream.Update // scratch so Process journals without allocating
}

// CheckpointTo binds a durable checkpoint store to the engine: every
// accepted batch is journaled write-ahead, a generation (one marshaled blob
// per shard) is written every Config.CheckpointEvery updates, and worker
// panics roll back to the last durable state instead of degrading the
// result. marshal and restore translate between replicas and blobs (same
// contract as Snapshot/Restore).
//
// If the store already holds state, the engine ADOPTS it first — its
// current replicas are discarded and rebuilt from the store's last good
// generation plus the journal tail (exact for any saved shard count, by
// linearity) — and then immediately writes a fresh generation, rotating the
// journal so the replayed tail can never be double-counted. Binding a
// virgin store just seals generation zero. Either way, a clean return means
// the engine and the store agree and every later accepted update is
// durable.
//
// The store stays owned by the caller (the engine never closes it) and at
// most one store may be bound per engine.
func (e *Engine[T]) CheckpointTo(store *checkpoint.Store, marshal func(T) ([]byte, error), restore func(T, []byte) error) error {
	if e.done {
		return fmt.Errorf("engine: CheckpointTo: %w", ErrEngineClosed)
	}
	if store == nil || marshal == nil || restore == nil {
		return errors.New("engine: CheckpointTo requires a store, a marshal func and a restore func")
	}
	if e.durable.store != nil {
		return errors.New("engine: a checkpoint store is already bound")
	}
	e.durable.store = store
	e.durable.marshal = marshal
	e.durable.restore = restore
	rec, err := store.Latest()
	switch {
	case err == nil:
		if err := e.quiesce(); err != nil {
			e.durable = durableState[T]{}
			return err
		}
		if err := e.adopt(rec); err != nil {
			e.durable = durableState[T]{}
			return fmt.Errorf("engine: adopting checkpoint store state: %w", err)
		}
	case errors.Is(err, checkpoint.ErrNoCheckpoint) && !errors.Is(err, checkpoint.ErrTornWrite):
		// Virgin store: nothing to adopt, the engine's current state becomes
		// the baseline.
	default:
		// The store holds data it cannot recover (all generations torn, or a
		// journal gap). Refuse to bind rather than silently discard it; the
		// caller can inspect and RemoveAll if starting over is intended.
		e.durable = durableState[T]{}
		return fmt.Errorf("engine: recovering checkpoint store state: %w", err)
	}
	if err := e.CheckpointNow(); err != nil {
		e.durable = durableState[T]{}
		return err
	}
	return nil
}

// CheckpointNow quiesces the engine and writes a durable generation — one
// marshaled blob per shard — rotating the write-ahead journal. A tainted
// engine whose rollback failed refuses to checkpoint (the blobs would
// encode the hole) and returns the same typed *PartialResultError Results
// would. On success any earlier journaling failure is healed: the new
// generation carries the complete state, so durability is re-established
// from here.
func (e *Engine[T]) CheckpointNow() error {
	if e.done {
		return fmt.Errorf("engine: CheckpointNow: %w", ErrEngineClosed)
	}
	d := &e.durable
	if d.store == nil {
		return errors.New("engine: CheckpointNow without a bound store (use CheckpointTo)")
	}
	if err := e.quiesce(); err != nil {
		d.ckptErr = err
		return err
	}
	if e.anyTainted() {
		err := e.partialError()
		d.ckptErr = err
		return err
	}
	states := make([][]byte, len(e.slots))
	for s, slot := range e.slots {
		b, err := d.marshal(slot.replica)
		if err != nil {
			d.ckptErr = fmt.Errorf("engine: marshaling shard %d for checkpoint: %w", s, err)
			return d.ckptErr
		}
		states[s] = b
	}
	if _, err := d.store.Save(states); err != nil {
		d.ckptErr = fmt.Errorf("engine: writing checkpoint: %w", err)
		return d.ckptErr
	}
	d.ckptErr, d.appendErr = nil, nil
	d.sinceCkpt = 0
	d.checkpoints++
	return nil
}

// DurabilityErr reports the engine's current durability health: nil when
// every accepted update is either journaled or covered by a generation, or
// the join of the sticky journal failure, the last checkpoint failure and
// the last rollback failure. Ingestion itself never fails on durability
// errors — the in-memory result stays exact — so callers that care must
// poll this (or check the error from CheckpointNow/Results).
func (e *Engine[T]) DurabilityErr() error {
	d := &e.durable
	return errors.Join(d.appendErr, d.ckptErr, d.recoverErr)
}

// journalBatch appends one accepted batch to the write-ahead journal.
// Write-ahead means journal-then-route: the journal is a superset of what
// the replicas absorbed, so recovery (generation + journal replay) can
// never under-count. Failures stop journaling (see durableState.appendErr)
// but never fail ingestion.
func (e *Engine[T]) journalBatch(batch []stream.Update) {
	d := &e.durable
	if d.store == nil || d.appendErr != nil || len(batch) == 0 {
		return
	}
	if err := d.store.Append(batch); err != nil {
		d.appendErr = fmt.Errorf("engine: write-ahead journal append: %w", err)
	}
}

func (e *Engine[T]) journalOne(u stream.Update) {
	if e.durable.store == nil {
		return
	}
	e.durable.wal1[0] = u
	e.journalBatch(e.durable.wal1[:1])
}

// maybeCheckpoint ticks the periodic-checkpoint counter after n accepted
// updates and writes a generation once Config.CheckpointEvery is crossed.
// Failures are recorded in DurabilityErr, not surfaced here — the ingest
// hot path stays infallible.
func (e *Engine[T]) maybeCheckpoint(n int) {
	d := &e.durable
	if d.store == nil || e.cfg.CheckpointEvery <= 0 {
		return
	}
	d.sinceCkpt += n
	if d.sinceCkpt < e.cfg.CheckpointEvery {
		return
	}
	//nolint:errcheck // recorded in d.ckptErr / DurabilityErr by CheckpointNow
	_ = e.CheckpointNow()
	d.sinceCkpt = 0
}

// rollback re-establishes exactness after worker panics by rebuilding the
// entire replica set from the store's last durable generation plus the
// journal tail. The restore is global rather than per-shard: with work
// stealing, spill and hot-key fan-out any replica may have absorbed any
// update, so only a whole-engine restore is provably exact — and linearity
// makes it cheap to reason about (generation blobs + journal tail = every
// accepted update, each exactly once). Requires the workers quiesced or
// joined; requires an unbroken journal (a sticky append failure means the
// tail has a hole, so rollback refuses rather than under-count).
func (e *Engine[T]) rollback() error {
	d := &e.durable
	if d.appendErr != nil {
		return fmt.Errorf("engine: rollback impossible, write-ahead journal has a hole: %w", d.appendErr)
	}
	rec, err := d.store.Latest()
	if err != nil {
		return fmt.Errorf("engine: rollback: %w", err)
	}
	return e.adopt(rec)
}

// adopt rebuilds the replica set from a store recovery: each generation
// blob restores into a staged fresh replica and folds into staged slot
// s mod Shards — exact for any saved shard count, by linearity — and the
// journal tail replays into staged slot 0. All-or-nothing like Restore: a
// failure leaves the live replicas untouched. Requires the workers
// quiesced or joined.
func (e *Engine[T]) adopt(rec *checkpoint.Recovery) error {
	staged := make([]T, len(e.slots))
	for s := range staged {
		staged[s] = e.factory(s)
	}
	for i, blob := range rec.States {
		tmp := e.factory(i % len(staged))
		if err := e.durable.restore(tmp, blob); err != nil {
			return fmt.Errorf("engine: restoring checkpoint shard state %d of generation %d: %w",
				i, rec.Generation, err)
		}
		if err := e.mergeInto(staged[i%len(staged)], tmp); err != nil {
			return fmt.Errorf("engine: folding checkpoint shard state %d: %w", i, err)
		}
	}
	for _, b := range rec.Tail {
		stream.ProcessAll(staged[0], b)
	}
	e.installReplicas(staged)
	return nil
}
