package engine

import (
	"bytes"
	"errors"
	"math/rand/v2"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/faultinject"
	"repro/internal/stream"
)

// TestDurableKillRestartExactness is the tentpole property at the engine
// level: an ingest killed at arbitrary points and resumed from the durable
// store must end byte-identical to an uninterrupted serial ingest. Each
// kill abandons the engine mid-stream WITHOUT a final checkpoint — the
// write-ahead journal alone must carry every accepted update across the
// crash. The property sweeps random kill schedules.
func TestDurableKillRestartExactness(t *testing.T) {
	seeds := 8
	if testing.Short() {
		seeds = 3
	}
	for seed := uint64(1); seed <= uint64(seeds); seed++ {
		if err := runDurableKillRestart(t, seed); err != nil {
			t.Fatalf("seed %d: %v\nrepro: go test -race -run 'TestDurableKillRestartExactness' ./internal/engine (seed %d)",
				seed, err, seed)
		}
	}
}

func runDurableKillRestart(t *testing.T, seed uint64) error {
	const n, length = 256, 9000
	rng := rand.New(rand.NewPCG(seed, seed<<7))
	st := stream.RandomTurnstile(n, length, 40, rng)
	factory := l0Factory(n)

	serial := factory(0)
	st.Feed(serial)

	dir := t.TempDir()
	// 2 to 4 kills at random cut points.
	kills := 2 + rng.IntN(3)
	cuts := make([]int, 0, kills+2)
	cuts = append(cuts, 0)
	for i := 0; i < kills; i++ {
		cuts = append(cuts, 1+rng.IntN(length-1))
	}
	cuts = append(cuts, length)
	for i := 1; i < len(cuts); i++ {
		for j := i; j > 1 && cuts[j] < cuts[j-1]; j-- {
			cuts[j], cuts[j-1] = cuts[j-1], cuts[j]
		}
	}

	var final []byte
	for leg := 0; leg+1 < len(cuts); leg++ {
		store, err := checkpoint.Open(dir, checkpoint.Options{})
		if err != nil {
			return err
		}
		eng := New(Config{
			Shards: 1 + int(seed)%4, BatchSize: 32, QueueDepth: 2,
			CheckpointEvery: 2500,
		}, factory, l0Merge)
		if err := eng.CheckpointTo(store, l0Marshal, l0Restore); err != nil {
			store.Close()
			return err
		}
		eng.ProcessBatch(st[cuts[leg]:cuts[leg+1]])
		if derr := eng.DurabilityErr(); derr != nil {
			store.Close()
			return derr
		}
		if leg+2 < len(cuts) {
			// Kill: no Results, no final checkpoint. Close only joins the
			// workers so the test does not leak goroutines; the journal is
			// all that survives.
			eng.Close()
		} else {
			merged, err := eng.Results()
			if err != nil {
				store.Close()
				return err
			}
			final = merged.ExportState()
		}
		store.Close()
	}
	if !bytes.Equal(final, serial.ExportState()) {
		return errors.New("resumed state differs from uninterrupted serial ingest")
	}
	return nil
}

// TestCheckpointAdoptAcrossShardCounts: a store written by a 4-shard engine
// must resume exactly into a 3-shard engine — generation blobs fold by
// s mod Shards and the journal tail replays into shard 0, both exact by
// linearity.
func TestCheckpointAdoptAcrossShardCounts(t *testing.T) {
	const n, length = 256, 5000
	st := stream.RandomTurnstile(n, length, 40, seeded(71))
	factory := l0Factory(n)

	serial := factory(0)
	st.Feed(serial)

	dir := t.TempDir()
	store, err := checkpoint.Open(dir, checkpoint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	first := New(Config{Shards: 4, BatchSize: 64}, factory, l0Merge)
	if err := first.CheckpointTo(store, l0Marshal, l0Restore); err != nil {
		t.Fatal(err)
	}
	first.ProcessBatch(st[:3000])
	if err := first.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	first.ProcessBatch(st[3000:4000]) // journal tail beyond the generation
	first.Close()
	store.Close()

	store2, err := checkpoint.Open(dir, checkpoint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	resumed := New(Config{Shards: 3, BatchSize: 64}, factory, l0Merge)
	if err := resumed.CheckpointTo(store2, l0Marshal, l0Restore); err != nil {
		t.Fatal(err)
	}
	resumed.ProcessBatch(st[4000:])
	merged, err := resumed.Results()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(merged.ExportState(), serial.ExportState()) {
		t.Fatal("cross-shard-count resume differs from serial state")
	}
}

// TestCheckpointStatsAndGenerations: periodic checkpoints actually fire and
// the stats surface them.
func TestCheckpointStatsAndGenerations(t *testing.T) {
	const n, length = 128, 6000
	st := stream.RandomTurnstile(n, length, 20, seeded(72))
	factory := l0Factory(n)
	store, err := checkpoint.Open(t.TempDir(), checkpoint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	eng := New(Config{Shards: 2, BatchSize: 32, CheckpointEvery: 1000}, factory, l0Merge)
	if err := eng.CheckpointTo(store, l0Marshal, l0Restore); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < length; i += 500 {
		eng.ProcessBatch(st[i : i+500])
	}
	stats := eng.Stats()
	// One generation seals the bind, plus ~length/CheckpointEvery periodic.
	if stats.Checkpoints < 4 {
		t.Fatalf("Checkpoints = %d, want the bind seal plus periodic generations", stats.Checkpoints)
	}
	if stats.Generation == 0 {
		t.Fatal("Stats.Generation did not advance")
	}
	if _, err := eng.Results(); err != nil {
		t.Fatal(err)
	}
}

// TestDurabilityErrHealsOnCheckpoint: a sticky journal-append failure
// surfaces in DurabilityErr without failing ingestion, and a later
// successful CheckpointNow — whose generation carries the complete state —
// clears it.
func TestDurabilityErrHealsOnCheckpoint(t *testing.T) {
	const n = 128
	factory := l0Factory(n)
	inj := faultinject.New(9, 1).Only(faultinject.JournalAppend)
	store, err := checkpoint.Open(t.TempDir(), checkpoint.Options{Injector: inj})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	eng := New(Config{Shards: 2, BatchSize: 16}, factory, l0Merge)
	if err := eng.CheckpointTo(store, l0Marshal, l0Restore); err != nil {
		t.Fatal(err)
	}
	st := stream.RandomTurnstile(n, 200, 20, seeded(73))
	eng.ProcessBatch(st)
	derr := eng.DurabilityErr()
	var ie *faultinject.InjectedErr
	if !errors.As(derr, &ie) {
		t.Fatalf("DurabilityErr = %v, want the injected journal fault", derr)
	}
	if err := eng.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	if derr := eng.DurabilityErr(); derr != nil {
		t.Fatalf("DurabilityErr after healing checkpoint = %v, want nil", derr)
	}
	if _, err := eng.Results(); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointToGuards pins the binding error surface: nil arguments,
// double bind, and a store whose contents cannot be recovered.
func TestCheckpointToGuards(t *testing.T) {
	factory := l0Factory(64)
	store, err := checkpoint.Open(t.TempDir(), checkpoint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	eng := New(Config{Shards: 2}, factory, l0Merge)
	defer eng.Close()
	if err := eng.CheckpointTo(nil, l0Marshal, l0Restore); err == nil {
		t.Fatal("nil store must be rejected")
	}
	if err := eng.CheckpointTo(store, nil, l0Restore); err == nil {
		t.Fatal("nil marshal must be rejected")
	}
	if err := eng.CheckpointTo(store, l0Marshal, l0Restore); err != nil {
		t.Fatal(err)
	}
	if err := eng.CheckpointTo(store, l0Marshal, l0Restore); err == nil {
		t.Fatal("second bind must be rejected")
	}

	unbound := New(Config{Shards: 2}, factory, l0Merge)
	defer unbound.Close()
	if err := unbound.CheckpointNow(); err == nil {
		t.Fatal("CheckpointNow without a store must fail")
	}
}
