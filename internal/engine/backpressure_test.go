package engine

import (
	"bytes"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/countmin"
	"repro/internal/stream"
)

// gatedSketch wraps a count-min replica whose batch processing blocks on a
// gate channel until it is closed — a deterministic stand-in for a stalled
// or slow shard worker. A nil gate never blocks, so a factory can stall
// exactly one shard (or hand the producer-side spill replica a free one).
type gatedSketch struct {
	*countmin.Sketch
	gate    <-chan struct{}
	batches atomic.Int64
}

func (g *gatedSketch) Process(u stream.Update) {
	g.ProcessBatch([]stream.Update{u})
}

func (g *gatedSketch) ProcessBatch(batch []stream.Update) {
	if g.gate != nil {
		<-g.gate
	}
	g.batches.Add(1)
	g.Sketch.ProcessBatch(batch)
}

func gatedMerge(dst, src *gatedSketch) error { return dst.Sketch.Merge(src.Sketch) }

// TestSpillOnFullQueueKeepsResultExact: with the Spill policy and a stalled
// worker, the producer must degrade to the local spill replica instead of
// blocking — and the final result must still match a serial ingest exactly,
// because the spill replica is folded back in by linearity.
func TestSpillOnFullQueueKeepsResultExact(t *testing.T) {
	const n = 256
	st := stream.RandomTurnstile(n, 20000, 50, seeded(61))

	serial := countmin.New(64, 5, seeded(62))
	st.Feed(serial)

	gate := make(chan struct{})
	factory := func(shard int) *gatedSketch {
		g := &gatedSketch{Sketch: countmin.New(64, 5, seeded(62))}
		if shard == 0 {
			g.gate = gate // only the single worker shard stalls
		}
		return g
	}

	eng := New(Config{
		Shards: 1, BatchSize: 32, QueueDepth: 2, Backpressure: Spill,
	}, factory, gatedMerge)
	// The worker is stalled on the gate: the first batch blocks in
	// ProcessBatch, the next QueueDepth fill the channel, everything after
	// that must spill. A Block-policy engine would deadlock right here.
	eng.ProcessBatch(st)

	stats := eng.Stats()
	if stats.SpilledBatches == 0 || stats.SpilledUpdates == 0 {
		t.Fatalf("expected spills with a stalled worker, got %+v", stats)
	}
	if stats.Routed != int64(len(st)) {
		t.Fatalf("routed %d != %d", stats.Routed, len(st))
	}

	close(gate) // un-stall the worker, then fold everything together
	merged, err := eng.Results()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if got, want := merged.QueryMedian(uint64(i)), serial.QueryMedian(uint64(i)); got != want {
			t.Fatalf("coordinate %d: spilled engine %d != serial %d", i, got, want)
		}
	}
}

// gatedL0 is the same stalled-worker stand-in around the L0 sampler, whose
// raw state export makes the snapshot comparison bit-exact.
type gatedL0 struct {
	*core.L0Sampler
	gate <-chan struct{}
}

func (g *gatedL0) Process(u stream.Update) { g.ProcessBatch([]stream.Update{u}) }

func (g *gatedL0) ProcessBatch(batch []stream.Update) {
	if g.gate != nil {
		<-g.gate
	}
	g.L0Sampler.ProcessBatch(batch)
}

// TestSpillFlushedIntoSnapshot: a Snapshot taken while the spill replica is
// dirty must fold it into the shard states first — restoring the blobs and
// replaying the tail yields byte-identical serial state.
func TestSpillFlushedIntoSnapshot(t *testing.T) {
	const n = 256
	st := stream.RandomTurnstile(n, 12000, 40, seeded(63))
	cut := 8000

	newL0 := func() *core.L0Sampler {
		return core.NewL0Sampler(core.L0Config{N: n, Delta: 0.2}, seeded(64))
	}
	serial := newL0()
	st.Feed(serial)

	gate := make(chan struct{})
	mk := func(stalled bool) func(int) *gatedL0 {
		return func(shard int) *gatedL0 {
			g := &gatedL0{L0Sampler: newL0()}
			if stalled && shard == 0 {
				g.gate = gate
			}
			return g
		}
	}
	merge := func(dst, src *gatedL0) error { return dst.L0Sampler.Merge(src.L0Sampler) }

	eng := New(Config{Shards: 1, BatchSize: 32, QueueDepth: 2, Backpressure: Spill}, mk(true), merge)
	eng.ProcessBatch(st[:cut])
	if eng.Stats().SpilledBatches == 0 {
		t.Fatal("setup failed to provoke spills")
	}
	close(gate) // Snapshot quiesces: the stalled worker must be able to drain
	snap, err := eng.Snapshot(func(g *gatedL0) ([]byte, error) { return g.ExportState(), nil })
	if err != nil {
		t.Fatal(err)
	}
	eng.Close()

	resumed := New(Config{Shards: 1, BatchSize: 32, QueueDepth: 2, Backpressure: Spill}, mk(false), merge)
	if err := resumed.Restore(snap, func(g *gatedL0, b []byte) error { return g.ImportState(b) }); err != nil {
		t.Fatal(err)
	}
	resumed.ProcessBatch(st[cut:])
	merged, err := resumed.Results()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(merged.ExportState(), serial.ExportState()) {
		t.Fatal("snapshot with dirty spill replica diverged from serial state")
	}
}

// TestBlockPolicyNeverSpills pins the default policy: bounded queues with a
// live worker block-and-drain, and the spill counters stay zero.
func TestBlockPolicyNeverSpills(t *testing.T) {
	const n = 128
	st := stream.RandomTurnstile(n, 10000, 20, seeded(65))
	eng := New(Config{Shards: 2, BatchSize: 16, QueueDepth: 1},
		func(int) *countmin.Sketch { return countmin.New(32, 4, seeded(66)) },
		func(dst, src *countmin.Sketch) error { return dst.Merge(src) })
	eng.ProcessBatch(st)
	if s := eng.Stats(); s.SpilledBatches != 0 || s.SpilledUpdates != 0 {
		t.Fatalf("Block policy spilled: %+v", s)
	}
	if _, err := eng.Results(); err != nil {
		t.Fatal(err)
	}
}

// TestWorkStealingDrainsStalledShard: one shard's worker is stalled while
// every update routes to that shard. With WorkStealing enabled the idle
// workers must pick its queue up (Steals > 0), the producer must never
// deadlock even under the Block policy, and the merged result must stay
// exact. Run under -race this doubles as the stealing data-race test.
func TestWorkStealingDrainsStalledShard(t *testing.T) {
	const shards = 4
	gate := make(chan struct{})

	factory := func(s int) *gatedSketch {
		g := &gatedSketch{Sketch: countmin.New(64, 5, seeded(71))}
		return g
	}
	eng := New(Config{
		Shards: shards, BatchSize: 8, QueueDepth: 2, WorkStealing: true,
	}, factory, gatedMerge)

	// Find an index owned by some shard h and stall exactly that worker by
	// swapping its replica's gate in before any batch reaches it.
	hotIdx := 0
	h := eng.shardOf(hotIdx)
	eng.slots[h].replica.gate = gate

	// 500 batches of 8 updates, all for shard h: its queue (depth 2) fills
	// immediately and only thieves can make progress until the gate opens.
	var st stream.Stream
	for i := 0; i < 4000; i++ {
		st = append(st, stream.Update{Index: hotIdx, Delta: 1})
	}
	serial := countmin.New(64, 5, seeded(71))
	st.Feed(serial)

	eng.ProcessBatch(st)
	if got := eng.Stats().Steals; got == 0 {
		t.Fatal("stalled hot shard was never stolen from")
	}
	close(gate)
	merged, err := eng.Results()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := merged.QueryMedian(uint64(hotIdx)), serial.QueryMedian(uint64(hotIdx)); got != want {
		t.Fatalf("stolen ingest %d != serial %d", got, want)
	}
}

// TestWorkStealingExactUnderChurn runs a full random workload with stealing
// enabled (no stalls) and checks exactness plus a clean shutdown — the
// steady-state configuration, exercised under -race.
func TestWorkStealingExactUnderChurn(t *testing.T) {
	const n = 512
	st := stream.RandomTurnstile(n, 40000, 60, seeded(72))

	serial := countmin.New(64, 5, seeded(73))
	st.Feed(serial)

	eng := New(Config{Shards: 4, BatchSize: 16, QueueDepth: 2, WorkStealing: true},
		func(int) *countmin.Sketch { return countmin.New(64, 5, seeded(73)) },
		func(dst, src *countmin.Sketch) error { return dst.Merge(src) })
	eng.ProcessBatch(st)
	merged, err := eng.Results()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if got, want := merged.QueryMedian(uint64(i)), serial.QueryMedian(uint64(i)); got != want {
			t.Fatalf("coordinate %d: stealing engine %d != serial %d", i, got, want)
		}
	}
}
