package engine

import "repro/internal/heavyhitters"

// Skew-aware routing. The coordinate router (shardOf) balances uniform and
// dense index distributions, but a zipf-heavy stream concentrates most of
// its update *traffic* on a handful of keys, and a fixed index→shard map
// pins each of those keys' entire volume onto one shard — the classic hot
// partition. Linearity dissolves the problem: any replica may absorb any
// update, so once a key is known to be hot its updates can round-robin
// across every shard with zero correctness cost.
//
// Detection reuses the heavy-hitter machinery the paper's §4.4 reductions
// are built on, in its cheapest streaming form: a Misra-Gries tracker
// (heavyhitters.Tracker) over the index stream, refreshed every interval.
// The current hot set lives in a small direct-mapped filter so the per-
// update check is one mask, one load and one compare; a collision merely
// drops one hot key from fan-out for an interval, which costs balance, not
// correctness.
type hotRouter struct {
	tracker  *heavyhitters.Tracker
	interval int
	phi      float64
	// filter maps slot -> hot key + 1 (0 = empty), direct-mapped by the low
	// bits of the key.
	filter []int64
	mask   uint32
	seen   int
	rr     uint32 // round-robin cursor for hot-key fan-out

	hotKeys   int
	hotRouted int64
}

// hotFilterSlots is the direct-mapped hot-set capacity; plenty above the
// tracker sizes in use, and a power of two for mask indexing.
const hotFilterSlots = 512

func newHotRouter(cfg Config) *hotRouter {
	interval := cfg.HotKeyInterval
	if interval <= 0 {
		interval = 8192
	}
	counters := cfg.HotKeyCounters
	if counters <= 0 {
		counters = 256
	}
	phi := cfg.HotKeyPhi
	if phi <= 0 {
		phi = 1.0 / 64
	}
	return &hotRouter{
		tracker:  heavyhitters.NewTracker(counters),
		interval: interval,
		phi:      phi,
		filter:   make([]int64, hotFilterSlots),
		mask:     hotFilterSlots - 1,
	}
}

// route observes one update's key and, when the key is currently hot,
// returns the next fan-out shard. Called on the producer goroutine only.
func (r *hotRouter) route(index, shards int) (int, bool) {
	r.tracker.Offer(index)
	r.seen++
	if r.seen >= r.interval {
		r.refresh()
	}
	if r.filter[uint32(index)&r.mask] == int64(index)+1 {
		r.hotRouted++
		r.rr++
		return int(r.rr % uint32(shards)), true
	}
	return 0, false
}

// refresh rebuilds the hot filter from the tracker and resets it, so
// hotness follows the traffic with one interval of lag in either
// direction (a cooled-off key stops fanning at the next refresh).
func (r *hotRouter) refresh() {
	for i := range r.filter {
		r.filter[i] = 0
	}
	thresh := int64(r.phi * float64(r.seen))
	if thresh < 1 {
		thresh = 1
	}
	hot := r.tracker.Heavy(thresh)
	for _, key := range hot {
		r.filter[uint32(key)&r.mask] = int64(key) + 1
	}
	r.hotKeys = len(hot)
	r.tracker.Reset()
	r.seen = 0
}
