package engine

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/countmin"
	"repro/internal/stream"
)

// TestPropertyResizeMatchesSerial is the elastic-engine acceptance property:
// an ingest interrupted by arbitrary Resize calls — scale-up and scale-down,
// in random places — produces L0 sampler state byte-identical to an
// uninterrupted serial ingest. Same style as the other engine property
// tests: linearity says any split/merge of same-seed replicas is exact, so
// the strongest (bit-level) comparison must hold.
func TestPropertyResizeMatchesSerial(t *testing.T) {
	f := func(seed uint64, cutsRaw [3]uint16, shardsRaw [4]uint8) bool {
		rr := seeded(seed)
		n := 128 + rr.IntN(400)
		st := stream.RandomTurnstile(n, 2000+rr.IntN(4000), 40, rr)

		factory := func(int) *core.L0Sampler {
			return core.NewL0Sampler(core.L0Config{N: n, Delta: 0.25}, seeded(seed^0xC0FFEE))
		}
		merge := func(dst, src *core.L0Sampler) error { return dst.Merge(src) }

		serial := factory(0)
		st.Feed(serial)

		// Random segment boundaries and a shard-count trajectory that mixes
		// growth and shrink (1..6 shards).
		cuts := make([]int, 0, 3)
		for _, c := range cutsRaw {
			cuts = append(cuts, int(c)%(len(st)+1))
		}
		cuts = append(cuts, 0, len(st))
		sortInts(cuts)

		eng := New(Config{Shards: 1 + int(shardsRaw[0])%6, BatchSize: 32}, factory, merge)
		for i := 0; i+1 < len(cuts); i++ {
			eng.ProcessBatch(st[cuts[i]:cuts[i+1]])
			if i < len(shardsRaw)-1 {
				if err := eng.Resize(1 + int(shardsRaw[i+1])%6); err != nil {
					t.Logf("Resize: %v", err)
					return false
				}
			}
		}
		merged, err := eng.Results()
		if err != nil {
			t.Logf("Results: %v", err)
			return false
		}
		if !bytes.Equal(merged.ExportState(), serial.ExportState()) {
			t.Logf("seed %d: resized engine state diverged from serial", seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// TestResizeUpDownRoundTrip pins the acceptance criterion scenario exactly:
// scale-up then scale-down around a steady ingest, byte-identical result.
func TestResizeUpDownRoundTrip(t *testing.T) {
	const n = 512
	st := stream.RandomTurnstile(n, 9000, 50, seeded(21))
	factory := func(int) *core.L0Sampler {
		return core.NewL0Sampler(core.L0Config{N: n, Delta: 0.2}, seeded(77))
	}
	merge := func(dst, src *core.L0Sampler) error { return dst.Merge(src) }

	serial := factory(0)
	st.Feed(serial)

	eng := New(Config{Shards: 2, BatchSize: 64}, factory, merge)
	eng.ProcessBatch(st[:3000])
	if err := eng.Resize(8); err != nil { // scale up under load
		t.Fatal(err)
	}
	if got := eng.Shards(); got != 8 {
		t.Fatalf("Shards() = %d after Resize(8)", got)
	}
	eng.ProcessBatch(st[3000:6000])
	if err := eng.Resize(3); err != nil { // scale back down
		t.Fatal(err)
	}
	eng.ProcessBatch(st[6000:])
	merged, err := eng.Results()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(merged.ExportState(), serial.ExportState()) {
		t.Fatal("resize round-trip state differs from uninterrupted serial ingest")
	}
	if eng.Stats().Resizes != 2 {
		t.Fatalf("Stats().Resizes = %d, want 2", eng.Stats().Resizes)
	}
}

// TestResizeSnapshotAgreement: a snapshot taken after a Resize carries the
// new shard count and restores exactly into a same-sized engine.
func TestResizeSnapshotAgreement(t *testing.T) {
	const n = 256
	st := stream.RandomTurnstile(n, 4000, 30, seeded(31))
	factory := func(int) *core.L0Sampler {
		return core.NewL0Sampler(core.L0Config{N: n, Delta: 0.2}, seeded(32))
	}
	merge := func(dst, src *core.L0Sampler) error { return dst.Merge(src) }

	serial := factory(0)
	st.Feed(serial)

	eng := New(Config{Shards: 2, BatchSize: 32}, factory, merge)
	eng.ProcessBatch(st[:1500])
	if err := eng.Resize(5); err != nil {
		t.Fatal(err)
	}
	snap, err := eng.Snapshot(l0Marshal)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap) != 5 {
		t.Fatalf("snapshot after Resize(5) has %d blobs", len(snap))
	}
	eng.Close()

	resumed := New(Config{Shards: 5, BatchSize: 32}, factory, merge)
	if err := resumed.Restore(snap, l0Restore); err != nil {
		t.Fatal(err)
	}
	resumed.ProcessBatch(st[1500:])
	merged, err := resumed.Results()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(merged.ExportState(), serial.ExportState()) {
		t.Fatal("restore after resize diverged from serial state")
	}
}

// TestResizeDownJoinsRetiredWorkers pins the orphaned-thief regression:
// scale-down must join the retired shards' workers before returning. A
// retired work-stealing worker left running could wake on a stale buffered
// hot signal after Resize returns and steal fresh batches into its replica
// — already folded into a survivor and never merged again, silently
// dropping those updates. The test floods the hot channel with stale
// signals (the worst case for the select race), resizes down, and then
// verifies both that every retired worker has exited and that heavy
// post-resize ingest still matches serial exactly.
func TestResizeDownJoinsRetiredWorkers(t *testing.T) {
	const n = 1024
	st := stream.RandomTurnstile(n, 20000, 60, seeded(61))

	factory := func(int) *countmin.Sketch { return countmin.New(64, 5, seeded(62)) }
	merge := func(dst, src *countmin.Sketch) error { return dst.Merge(src) }

	serial := factory(0)
	st.Feed(serial)

	eng := New(Config{
		Shards: 8, BatchSize: 32, QueueDepth: 4, WorkStealing: true,
	}, factory, merge)
	eng.ProcessBatch(st[:8000])
	// Leave stale wake signals buffered so retired workers are maximally
	// likely to take the hot case instead of observing their closed channel.
	for i := 0; i < cap(eng.hot); i++ {
		eng.signalHot()
	}
	var retired []chan struct{}
	for _, slot := range eng.slots[2:] {
		retired = append(retired, slot.exited)
	}
	if err := eng.Resize(2); err != nil {
		t.Fatal(err)
	}
	for s, done := range retired {
		select {
		case <-done:
		default:
			t.Fatalf("retired worker %d still running after Resize returned", s+2)
		}
	}
	// Post-resize traffic must land only in live replicas: exact agreement.
	eng.ProcessBatch(st[8000:])
	merged, err := eng.Results()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if got, want := merged.QueryMedian(uint64(i)), serial.QueryMedian(uint64(i)); got != want {
			t.Fatalf("coordinate %d: post-resize %d != serial %d", i, got, want)
		}
	}
}

// TestResizeGuards pins the error surface: invalid target, no-op resize,
// terminal engine.
func TestResizeGuards(t *testing.T) {
	factory := func(int) *countmin.Sketch { return countmin.New(16, 3, seeded(40)) }
	merge := func(dst, src *countmin.Sketch) error { return dst.Merge(src) }

	eng := New(Config{Shards: 3}, factory, merge)
	if err := eng.Resize(0); err == nil {
		t.Error("Resize(0) must fail")
	}
	if err := eng.Resize(3); err != nil {
		t.Errorf("no-op Resize(3): %v", err)
	}
	if eng.Stats().Resizes != 0 {
		t.Errorf("no-op resize counted: %d", eng.Stats().Resizes)
	}
	if _, err := eng.Results(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Resize(2); err == nil {
		t.Error("Resize after Results must fail")
	}
}

// TestResizeWithWorkStealingAndSpill exercises every elastic feature at
// once under churn — the configuration a production deployment would run —
// and still demands exact (count-min, integer cells) agreement with serial.
func TestResizeWithWorkStealingAndSpill(t *testing.T) {
	const n = 1024
	st := stream.RandomTurnstile(n, 30000, 80, seeded(51))

	factory := func(int) *countmin.Sketch { return countmin.New(64, 5, seeded(52)) }
	merge := func(dst, src *countmin.Sketch) error { return dst.Merge(src) }

	serial := factory(0)
	st.Feed(serial)

	eng := New(Config{
		Shards: 2, BatchSize: 64, QueueDepth: 2,
		Backpressure: Spill, WorkStealing: true,
		HotKeyRouting: true, HotKeyInterval: 2048,
	}, factory, merge)
	for i, cut := range []int{5000, 12000, 20000, len(st)} {
		lo := 0
		if i > 0 {
			lo = []int{5000, 12000, 20000}[i-1]
		}
		eng.ProcessBatch(st[lo:cut])
		if cut != len(st) {
			if err := eng.Resize(2 + (i*3)%7); err != nil {
				t.Fatal(err)
			}
		}
	}
	merged, err := eng.Results()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if got, want := merged.QueryMedian(uint64(i)), serial.QueryMedian(uint64(i)); got != want {
			t.Fatalf("coordinate %d: elastic %d != serial %d", i, got, want)
		}
	}
}
