package engine

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/stream"
)

// These tests pin the error paths of Engine.Restore: a failed restore —
// truncated blob, corrupt blob, callback error on a later shard — must
// leave the engine exactly as it was (still ingesting the pre-failure
// state, not half-replaced) and still restorable from a good snapshot.

// TestRestoreTruncatedBlobLeavesStateIntact takes a snapshot early, keeps
// ingesting, then attempts a restore where the SECOND blob is truncated.
// Shard 0's blob is valid — a non-staged restore would have already
// replaced shard 0's replica with the early state when shard 1 fails,
// silently dropping everything shard 0 absorbed in between. The final
// result must match serial over the whole stream, proving no replica was
// touched.
func TestRestoreTruncatedBlobLeavesStateIntact(t *testing.T) {
	const n, length = 256, 6000
	st := stream.RandomTurnstile(n, length, 40, seeded(81))
	factory := l0Factory(n)

	serial := factory(0)
	st.Feed(serial)

	eng := New(Config{Shards: 2, BatchSize: 64}, factory, l0Merge)
	eng.ProcessBatch(st[:2000])
	snap, err := eng.Snapshot(l0Marshal)
	if err != nil {
		t.Fatal(err)
	}
	eng.ProcessBatch(st[2000:4000])

	bad := [][]byte{snap[0], snap[1][:7]} // 7 bytes can never be a whole state
	if err := eng.Restore(bad, l0Restore); err == nil {
		t.Fatal("Restore with a truncated blob must fail")
	}

	eng.ProcessBatch(st[4000:])
	merged, err := eng.Results()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(merged.ExportState(), serial.ExportState()) {
		t.Fatal("failed Restore disturbed the live replicas")
	}
}

// TestRestoreFailureThenRetrySucceeds: after a failed restore the engine is
// not poisoned — restoring the intact snapshot immediately afterwards works
// and resumes exactly.
func TestRestoreFailureThenRetrySucceeds(t *testing.T) {
	const n, length = 256, 6000
	st := stream.RandomTurnstile(n, length, 40, seeded(82))
	factory := l0Factory(n)

	serial := factory(0)
	st.Feed(serial)

	eng := New(Config{Shards: 2, BatchSize: 64}, factory, l0Merge)
	eng.ProcessBatch(st[:3000])
	snap, err := eng.Snapshot(l0Marshal)
	if err != nil {
		t.Fatal(err)
	}
	eng.ProcessBatch(st[3000:5000]) // will be discarded by the good restore

	corrupt := [][]byte{snap[0], snap[1][:len(snap[1])-1]}
	if err := eng.Restore(corrupt, l0Restore); err == nil {
		t.Fatal("Restore with a corrupt blob must fail")
	}
	if err := eng.Restore(snap, l0Restore); err != nil {
		t.Fatalf("Restore retry after failure: %v", err)
	}
	eng.ProcessBatch(st[3000:])
	merged, err := eng.Results()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(merged.ExportState(), serial.ExportState()) {
		t.Fatal("resume after failed-then-good Restore differs from serial")
	}
}

// TestRestoreCallbackErrorMidway: the callback itself failing on a later
// shard (not just blob decoding) must also leave the engine usable, and the
// error must carry the failing shard.
func TestRestoreCallbackErrorMidway(t *testing.T) {
	const n = 128
	factory := l0Factory(n)
	st := stream.RandomTurnstile(n, 1000, 20, seeded(83))

	serial := factory(0)
	st.Feed(serial)

	eng := New(Config{Shards: 3, BatchSize: 32}, factory, l0Merge)
	eng.ProcessBatch(st)
	snap, err := eng.Snapshot(l0Marshal)
	if err != nil {
		t.Fatal(err)
	}

	boom := errors.New("boom")
	calls := 0
	failing := func(r *core.L0Sampler, b []byte) error {
		calls++
		if calls == 2 {
			return boom
		}
		return l0Restore(r, b)
	}
	if err := eng.Restore(snap, failing); !errors.Is(err, boom) {
		t.Fatalf("Restore err = %v, want the callback's error", err)
	}
	merged, err := eng.Results()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(merged.ExportState(), serial.ExportState()) {
		t.Fatal("mid-restore callback failure disturbed the live replicas")
	}
}
