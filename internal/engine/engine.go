// Package engine implements sharded, concurrent ingestion for the linear
// sketches of this repository.
//
// Every sketch here — count-sketch, count-min, exact sparse recovery, the
// L0/Lp samplers, the distinct-elements estimator, heavy hitters, the
// duplicate finders — is a linear function of the input vector, so a sketch
// of x + y is the cell-wise sum of same-seed sketches of x and y. The engine
// exploits exactly that:
//
//	updates ──route by index──▶ shard 0 ─ batch ─▶ worker 0: replica 0
//	                            shard 1 ─ batch ─▶ worker 1: replica 1   ──▶ Merge ──▶ result
//	                            ...
//	                            shard S-1 ─────▶ worker S-1: replica S-1
//
// The caller supplies a factory that builds one same-seed replica per shard
// (same WithSeed / identically seeded *rand.Rand, so all replicas share
// randomness) and a merge function; the engine routes each update to the
// shard owning its coordinate, accumulates per-shard batches to amortize
// channel handoffs, and the workers drive each replica's ProcessBatch hot
// path. Results flushes, joins the workers and folds the replicas together.
//
// Linearity also means the shard assignment is a load-balancing choice, not
// a correctness requirement: ANY replica may absorb ANY update and the
// merged result is unchanged. The elastic features all follow from that one
// fact:
//
//   - Resize grows the engine by adding fresh same-seed replicas (sketches
//     of the zero vector — merging them adds nothing) and shrinks it by
//     folding retired replicas into survivors, so shard count can track load
//     mid-stream without changing any answer.
//   - The Spill backpressure policy degrades to a producer-local replica
//     when a shard queue is full instead of blocking, and folds that replica
//     back in at the next quiesce point.
//   - Work-stealing workers drain other shards' queues into their own
//     replica when idle.
//   - The skew-aware router fans updates for detected hot keys round-robin
//     across all shards instead of pinning them to one.
//
// Producer methods (Process, ProcessBatch, Feed, Results, Close, Snapshot,
// Restore, Resize, Stats) must be called from one goroutine; the
// parallelism lives in the shard workers.
//
// # Checkpoint and resume
//
// Because every replica is a serializable linear sketch, a sharded ingest
// can checkpoint mid-stream: Snapshot quiesces the workers (flushes pending
// batches, waits until every in-flight batch is consumed, folds any spill
// replica into shard 0) and returns one marshaled state per shard replica;
// ingestion continues afterwards. A new engine with the same shard count,
// batch-independent routing being deterministic by coordinate, Restores
// those states into its replicas and replays only the updates after the
// checkpoint — the resumed result is exactly the uninterrupted one. See
// examples/checkpoint.
package engine

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/codec"
	"repro/internal/stream"
)

// BackpressurePolicy selects what the producer does when a shard's bounded
// queue is full.
type BackpressurePolicy uint8

const (
	// Block, the default, applies backpressure: the producer blocks until
	// the shard worker (or, with WorkStealing, a thief) drains a batch.
	// Memory stays bounded at roughly Shards × QueueDepth × BatchSize
	// buffered updates.
	Block BackpressurePolicy = iota
	// Spill degrades instead of blocking: the overflowing batch is folded
	// into a producer-local same-seed spill replica, keeping ingest
	// wait-free under worker stalls without unbounded buffering. The spill
	// replica is merged back at every quiesce point (Snapshot, Restore,
	// Resize) and into the final Results — exact by linearity, so the
	// degradation changes latency, never answers.
	Spill
)

// Config tunes the engine. Zero values select sensible defaults.
type Config struct {
	// Shards is the initial number of worker shards (default
	// runtime.GOMAXPROCS). Resize changes it mid-stream.
	Shards int
	// BatchSize is the number of updates accumulated per shard before the
	// batch is handed to the worker (default 2048). Re-tuned for the flat
	// hash kernels: with per-update costs ~2× lower than the scalar-hash
	// paths, a larger batch halves handoff counts while the batch plus the
	// sketches' kernel scratch stays cache-resident; measured throughput is
	// flat from 512 to 8192 on the 10M-update ingest workload, so the
	// default favors fewer channel operations.
	BatchSize int
	// QueueDepth is the number of in-flight batches buffered per shard
	// channel; it bounds memory while letting the producer run ahead of a
	// momentarily slow shard (default 8).
	QueueDepth int
	// Backpressure picks the full-queue behavior: Block (default) or Spill.
	Backpressure BackpressurePolicy
	// WorkStealing lets idle shard workers drain other shards' queues into
	// their own replica — exact by linearity — so one hot shard cannot
	// leave the rest of the pool idle. Off by default.
	WorkStealing bool
	// HotKeyRouting enables the skew-aware router: a Misra-Gries tracker
	// (internal/heavyhitters.Tracker) detects keys receiving at least
	// HotKeyPhi of recent update traffic and fans their updates round-robin
	// across all shards instead of pinning them to shardOf(index). Off by
	// default; routing stays exact either way.
	HotKeyRouting bool
	// HotKeyInterval is the number of updates between hot-set refreshes
	// (default 8192).
	HotKeyInterval int
	// HotKeyCounters sizes the Misra-Gries tracker (default 256).
	HotKeyCounters int
	// HotKeyPhi is the traffic fraction at which a key counts as hot
	// (default 1/64).
	HotKeyPhi float64
}

func (c Config) withDefaults() Config {
	if c.Shards < 1 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.BatchSize < 1 {
		c.BatchSize = 2048
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 8
	}
	return c
}

// Stats is a point-in-time snapshot of the engine's operational counters,
// read from the producer goroutine via Engine.Stats.
type Stats struct {
	// Shards is the current shard count (changes with Resize).
	Shards int
	// Routed counts updates accepted so far.
	Routed int64
	// Resizes counts completed Resize calls that changed the shard count.
	Resizes int64
	// SpilledBatches / SpilledUpdates count Spill-policy degradations:
	// batches folded into the producer-local replica because the target
	// queue was full.
	SpilledBatches int64
	SpilledUpdates int64
	// Steals counts batches drained from another shard's queue by an idle
	// work-stealing worker.
	Steals int64
	// HotKeys is the size of the router's current hot set; HotRouted counts
	// updates fanned across shards instead of routed by coordinate.
	HotKeys   int
	HotRouted int64
}

// Engine fans an update stream out to same-seed sketch replicas, one per
// shard, and produces the final sketch by merging them.
type Engine[T stream.Sink] struct {
	cfg      Config
	factory  func(shard int) T
	merge    func(dst, src T) error
	replicas []T
	chans    []chan []stream.Update
	pending  [][]stream.Update
	stealSet atomic.Pointer[[]chan []stream.Update]
	hot      chan struct{}
	hotAt    int
	router   *hotRouter
	pool     sync.Pool
	wg       sync.WaitGroup
	exited   []chan struct{} // per shard, closed when its worker returns
	inflight sync.WaitGroup  // batches handed off but not yet processed
	spill    T
	spillSet bool

	routed         int64
	resizes        int64
	spilledBatches int64
	spilledUpdates int64
	steals         atomic.Int64

	done   bool
	result T
	err    error
}

// New builds the engine and starts its shard workers immediately. Every
// engine must be terminated with Results or Close — an abandoned engine
// leaks its worker goroutines, which block forever on their channels.
//
// factory(shard) must return one replica per shard, all built from
// identical seeds — sketch linearity makes the shard-then-merge reduction
// exact only for same-seed replicas, and the merge functions of this
// repository reject anything else. The engine may call factory with shard
// indices at or beyond the current count (Resize scale-up, the Spill
// policy's producer-local replica); the same-seed contract holds for every
// index. merge folds src into dst.
func New[T stream.Sink](cfg Config, factory func(shard int) T, merge func(dst, src T) error) *Engine[T] {
	cfg = cfg.withDefaults()
	e := &Engine[T]{
		cfg:      cfg,
		factory:  factory,
		merge:    merge,
		replicas: make([]T, cfg.Shards),
		chans:    make([]chan []stream.Update, cfg.Shards),
		pending:  make([][]stream.Update, cfg.Shards),
		exited:   make([]chan struct{}, cfg.Shards),
		hot:      make(chan struct{}, 4*cfg.Shards+16),
		hotAt:    max(1, cfg.QueueDepth/2),
	}
	if cfg.HotKeyRouting {
		e.router = newHotRouter(cfg)
	}
	e.pool.New = func() any { return make([]stream.Update, 0, cfg.BatchSize) }
	for s := range e.replicas {
		e.replicas[s] = factory(s)
		e.chans[s] = make(chan []stream.Update, cfg.QueueDepth)
		e.pending[s] = e.batchBuf()
	}
	e.publishStealSet()
	for s := 0; s < cfg.Shards; s++ {
		e.spawn(s)
	}
	return e
}

func (e *Engine[T]) batchBuf() []stream.Update {
	return e.pool.Get().([]stream.Update)[:0]
}

// publishStealSet snapshots the current channel slice for the work-stealing
// workers. Called from the producer goroutine at construction and at the
// quiesced point of every Resize; workers Load it on each steal scan, so
// structural changes never race with thieves.
func (e *Engine[T]) publishStealSet() {
	snap := make([]chan []stream.Update, len(e.chans))
	copy(snap, e.chans)
	e.stealSet.Store(&snap)
}

func (e *Engine[T]) spawn(s int) {
	e.wg.Add(1)
	done := make(chan struct{})
	e.exited[s] = done
	// Capture the channel and replica here, on the producer goroutine —
	// reading e.chans/e.replicas inside the worker would race with the
	// slice appends of a later Resize.
	ch, replica := e.chans[s], e.replicas[s]
	go func() {
		defer close(done)
		e.worker(s, ch, replica)
	}()
}

// consume runs one batch through a replica and retires it.
func (e *Engine[T]) consume(replica T, batch []stream.Update) {
	stream.ProcessAll(replica, batch)
	e.pool.Put(batch[:0])
	e.inflight.Done()
}

func (e *Engine[T]) worker(shard int, own chan []stream.Update, replica T) {
	defer e.wg.Done()
	if !e.cfg.WorkStealing {
		for batch := range own {
			e.consume(replica, batch)
		}
		return
	}
	for {
		select {
		case batch, ok := <-own:
			if !ok {
				return
			}
			e.consume(replica, batch)
		case <-e.hot:
			// A producer saw backlog somewhere. Before stealing, make sure
			// this worker is still live: select picks randomly among ready
			// cases, so a retired worker can reach here on a stale buffered
			// signal even though `own` is closed — it must exit, not steal
			// batches into a replica that has already been folded away.
			select {
			case batch, ok := <-own:
				if !ok {
					return
				}
				e.consume(replica, batch)
			default:
			}
			// Drain foreign queues into this worker's replica until every
			// queue scans empty.
			for e.stealOne(shard, replica) {
			}
		}
	}
}

// stealOne attempts to drain one batch from any other shard's queue into
// this worker's replica (exact by linearity). Returns false when every
// foreign queue scanned empty.
func (e *Engine[T]) stealOne(self int, replica T) bool {
	set := *e.stealSet.Load()
	for i, ch := range set {
		if i == self {
			continue
		}
		select {
		case batch, ok := <-ch:
			if !ok {
				continue // retired shard, nothing buffered
			}
			e.consume(replica, batch)
			e.steals.Add(1)
			return true
		default:
		}
	}
	return false
}

// signalHot wakes an idle work-stealing worker, if any; the buffered channel
// keeps the signal until somebody parks, and dropping the signal when the
// buffer is full is fine — thieves rescan every queue per signal.
func (e *Engine[T]) signalHot() {
	select {
	case e.hot <- struct{}{}:
	default:
	}
}

// send hands one batch to a shard worker, tracking it for quiesce. Under the
// Spill policy a full queue degrades to the producer-local spill replica
// instead of blocking.
func (e *Engine[T]) send(s int, batch []stream.Update) {
	ch := e.chans[s]
	if e.cfg.WorkStealing && len(ch) >= e.hotAt {
		e.signalHot()
	}
	e.inflight.Add(1)
	if e.cfg.Backpressure == Spill {
		select {
		case ch <- batch:
			return
		default:
		}
		e.inflight.Done()
		e.spillBatch(batch)
		return
	}
	ch <- batch
}

// spillBatch folds an overflow batch into the producer-local same-seed
// replica; flushSpill merges it back at the next quiesce point.
func (e *Engine[T]) spillBatch(batch []stream.Update) {
	if !e.spillSet {
		e.spill = e.factory(len(e.replicas))
		e.spillSet = true
	}
	stream.ProcessAll(e.spill, batch)
	e.spilledBatches++
	e.spilledUpdates += int64(len(batch))
	e.pool.Put(batch[:0])
}

// flushSpill folds the spill replica into shard 0's. Must only run while
// the workers are quiesced or joined.
func (e *Engine[T]) flushSpill() error {
	if !e.spillSet {
		return nil
	}
	if err := e.merge(e.replicas[0], e.spill); err != nil {
		return fmt.Errorf("engine: folding spill replica: %w", err)
	}
	var zero T
	e.spill = zero
	e.spillSet = false
	return nil
}

// shardOf routes a coordinate to its owning shard: a Fibonacci mix of the
// index (multiplication by 2^32/φ is a bijection on uint32 that spreads the
// small, dense indices of real streams across the full 32-bit range)
// followed by the same multiply-shift range reduction the hash kernels use
// (hash.Bucket). Two multiplies, no hardware divide — at sketch-kernel
// speeds the `index % S` divide would dominate the router. The mix step is
// essential: Lemire reduction of the raw index would send every index below
// 2^32/S to shard 0. Any fixed index → shard map is correct (linearity makes
// the reduction order-insensitive), and this one is deterministic and
// balanced for dense and sparse index distributions alike.
func (e *Engine[T]) shardOf(index int) int {
	const fib32 = 0x9E3779B9 // 2^32 / golden ratio, odd
	h := uint64(uint32(index) * fib32)
	return int((h * uint64(e.cfg.Shards)) >> 32)
}

// shardFor is shardOf plus the skew-aware override: updates for keys the
// router currently considers hot round-robin across all shards.
func (e *Engine[T]) shardFor(index int) int {
	if r := e.router; r != nil {
		if s, hot := r.route(index, e.cfg.Shards); hot {
			return s
		}
	}
	return e.shardOf(index)
}

// route appends the update to its shard's pending batch, handing the batch
// off once full.
func (e *Engine[T]) route(s int, u stream.Update) {
	p := append(e.pending[s], u)
	e.pending[s] = p
	if len(p) == e.cfg.BatchSize {
		e.send(s, p)
		e.pending[s] = e.batchBuf()
	}
}

// Process implements stream.Sink: the update joins its shard's pending
// batch, which is handed off once full.
func (e *Engine[T]) Process(u stream.Update) {
	if e.done {
		panic("engine: Process after Results/Close")
	}
	e.route(e.shardFor(u.Index), u)
	e.routed++
}

// ProcessBatch implements stream.BatchSink: one done-check and one shard
// multiplier load for the whole batch instead of per update. With a single
// shard (and no skew router observing traffic) there is nothing to route,
// so whole runs of updates move into the pending batch with copy — at
// kernel speeds the per-update append would otherwise be the engine's
// dominant cost on one core.
func (e *Engine[T]) ProcessBatch(batch []stream.Update) {
	if e.done {
		panic("engine: Process after Results/Close")
	}
	e.routed += int64(len(batch))
	if e.cfg.Shards == 1 && e.router == nil {
		for len(batch) > 0 {
			p := e.pending[0]
			n := copy(p[len(p):e.cfg.BatchSize], batch)
			p = p[:len(p)+n]
			batch = batch[n:]
			if len(p) == e.cfg.BatchSize {
				e.send(0, p)
				p = e.batchBuf()
			}
			e.pending[0] = p
		}
		return
	}
	for _, u := range batch {
		e.route(e.shardFor(u.Index), u)
	}
}

// Feed routes an entire stream through the engine.
func (e *Engine[T]) Feed(s stream.Stream) {
	e.ProcessBatch(s)
}

// Routed reports how many updates have been routed so far.
func (e *Engine[T]) Routed() int64 { return e.routed }

// Shards reports the shard count in use.
func (e *Engine[T]) Shards() int { return e.cfg.Shards }

// Stats reports the engine's operational counters.
func (e *Engine[T]) Stats() Stats {
	st := Stats{
		Shards:         e.cfg.Shards,
		Routed:         e.routed,
		Resizes:        e.resizes,
		SpilledBatches: e.spilledBatches,
		SpilledUpdates: e.spilledUpdates,
		Steals:         e.steals.Load(),
	}
	if e.router != nil {
		st.HotKeys = e.router.hotKeys
		st.HotRouted = e.router.hotRouted
	}
	return st
}

// Results flushes all pending batches, waits for the workers to drain, and
// merges every replica (plus any spill replica) into shard 0's, which it
// returns: the sketch of the full vector, exactly as if one sketch had
// consumed the whole stream. The engine is terminal afterwards; further
// Process calls panic. Calling Results again returns the same result.
func (e *Engine[T]) Results() (T, error) {
	if e.done {
		return e.result, e.err
	}
	e.shutdown()
	e.result = e.replicas[0]
	for s := 1; s < len(e.replicas); s++ {
		if err := e.merge(e.result, e.replicas[s]); err != nil {
			e.err = err
			break
		}
	}
	if e.err == nil {
		e.err = e.flushSpill()
	}
	return e.result, e.err
}

// Close abandons ingestion without merging: pending batches and any spill
// replica are dropped, workers are joined, and the engine becomes terminal.
// Results after Close reports an error. Close is idempotent and safe after
// Results.
func (e *Engine[T]) Close() {
	if e.done {
		return
	}
	for s := range e.pending {
		e.pending[s] = e.pending[s][:0]
	}
	var zero T
	e.spill = zero
	e.spillSet = false
	e.shutdown()
	e.err = errors.New("engine: closed without results")
}

func (e *Engine[T]) shutdown() {
	for s, ch := range e.chans {
		if len(e.pending[s]) > 0 {
			e.send(s, e.pending[s])
		}
		close(ch)
	}
	e.wg.Wait()
	e.done = true
}

// quiesce flushes every pending partial batch to its worker, blocks until
// all in-flight batches have been consumed, and folds any spill replica
// into shard 0. Afterwards the workers idle on their channels and the
// replicas are safe to read, replace or fold from the producer goroutine;
// ingestion may continue.
func (e *Engine[T]) quiesce() error {
	for s := range e.pending {
		if len(e.pending[s]) > 0 {
			e.send(s, e.pending[s])
			e.pending[s] = e.batchBuf()
		}
	}
	e.inflight.Wait()
	return e.flushSpill()
}

// Snapshot checkpoints the engine mid-ingest: it quiesces the workers and
// returns marshal applied to every shard replica, in shard order. The
// engine keeps running — updates may continue to flow afterwards — so a
// long ingest can checkpoint periodically and, after a crash, a fresh
// engine with the same shard count at snapshot time (shard routing is
// deterministic by coordinate and shard count) Restores the blobs and
// replays only the updates that came after the snapshot.
func (e *Engine[T]) Snapshot(marshal func(replica T) ([]byte, error)) ([][]byte, error) {
	if e.done {
		return nil, errors.New("engine: Snapshot after Results/Close")
	}
	if err := e.quiesce(); err != nil {
		return nil, err
	}
	out := make([][]byte, len(e.replicas))
	for s, r := range e.replicas {
		b, err := marshal(r)
		if err != nil {
			return nil, fmt.Errorf("engine: snapshot of shard %d: %w", s, err)
		}
		out[s] = b
	}
	return out, nil
}

// Restore replaces every shard replica's state with a previously
// Snapshot-ted blob (restore is called per replica, in shard order). The
// engine must have the same shard count as the one that produced the
// snapshot; the replicas must be same-seed reconstructions, which restore
// typically enforces via the sketches' UnmarshalBinary. Safe before any
// update or mid-stream (the workers are quiesced first); updates processed
// before a Restore are discarded with the replaced state.
func (e *Engine[T]) Restore(states [][]byte, restore func(replica T, state []byte) error) error {
	if e.done {
		return errors.New("engine: Restore after Results/Close")
	}
	if len(states) != len(e.replicas) {
		return fmt.Errorf("engine: restoring %d shard states into %d shards: %w",
			len(states), len(e.replicas), codec.ErrConfigMismatch)
	}
	if err := e.quiesce(); err != nil {
		return err
	}
	for s, r := range e.replicas {
		if err := restore(r, states[s]); err != nil {
			return fmt.Errorf("engine: restore of shard %d: %w", s, err)
		}
	}
	return nil
}
