// Package engine implements sharded, concurrent ingestion for the linear
// sketches of this repository.
//
// Every sketch here — count-sketch, count-min, exact sparse recovery, the
// L0/Lp samplers, the distinct-elements estimator, heavy hitters, the
// duplicate finders — is a linear function of the input vector, so a sketch
// of x + y is the cell-wise sum of same-seed sketches of x and y. The engine
// exploits exactly that:
//
//	updates ──route by index──▶ shard 0 ─ batch ─▶ worker 0: replica 0
//	                            shard 1 ─ batch ─▶ worker 1: replica 1   ──▶ Merge ──▶ result
//	                            ...
//	                            shard S-1 ─────▶ worker S-1: replica S-1
//
// The caller supplies a factory that builds one same-seed replica per shard
// (same WithSeed / identically seeded *rand.Rand, so all replicas share
// randomness) and a merge function; the engine routes each update to the
// shard owning its coordinate, accumulates per-shard batches to amortize
// channel handoffs, and the workers drive each replica's ProcessBatch hot
// path. Results flushes, joins the workers and folds the replicas together.
//
// Linearity also means the shard assignment is a load-balancing choice, not
// a correctness requirement: ANY replica may absorb ANY update and the
// merged result is unchanged. The elastic features all follow from that one
// fact:
//
//   - Resize grows the engine by adding fresh same-seed replicas (sketches
//     of the zero vector — merging them adds nothing) and shrinks it by
//     folding retired replicas into survivors, so shard count can track load
//     mid-stream without changing any answer.
//   - The Spill backpressure policy degrades to a producer-local replica
//     when a shard queue is full instead of blocking, and folds that replica
//     back in at the next quiesce point.
//   - Work-stealing workers drain other shards' queues into their own
//     replica when idle.
//   - The skew-aware router fans updates for detected hot keys round-robin
//     across all shards instead of pinning them to one.
//
// Producer methods (Process, ProcessBatch, Feed, Results, Close, Snapshot,
// Restore, Resize, Stats, CheckpointTo, CheckpointNow) must be called from
// one goroutine; the parallelism lives in the shard workers.
//
// # Supervision
//
// A panicking replica is quarantined rather than allowed to kill the
// process: the shard worker recovers, discards the indeterminate replica,
// respawns a fresh same-seed one in its place and keeps draining its queue,
// so no fault schedule can wedge the producer against a full queue. The
// shard is marked tainted — its discarded replica's updates are missing —
// and at the next quiesce barrier the engine re-establishes exactness by
// rolling every replica back to the bound checkpoint store's last good
// generation and replaying the journal tail (see durable.go). Without a
// store the taint is permanent and Results returns the degraded merge
// together with a typed *PartialResultError naming the quarantined shards.
//
// # Checkpoint and resume
//
// Because every replica is a serializable linear sketch, a sharded ingest
// can checkpoint mid-stream: Snapshot quiesces the workers (flushes pending
// batches, waits until every in-flight batch is consumed, folds any spill
// replica into shard 0) and returns one marshaled state per shard replica;
// ingestion continues afterwards. A new engine with the same shard count,
// batch-independent routing being deterministic by coordinate, Restores
// those states into its replicas and replays only the updates after the
// checkpoint — the resumed result is exactly the uninterrupted one. See
// examples/checkpoint.
//
// CheckpointTo upgrades this to crash safety: it binds an
// internal/checkpoint.Store, journals every accepted batch write-ahead, and
// writes a durable generation every Config.CheckpointEvery updates, so a
// killed process resumes byte-identical from disk.
package engine

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/codec"
	"repro/internal/faultinject"
	"repro/internal/stream"
)

// ErrEngineClosed is the typed sentinel for every use-after-termination
// guard: producer entry points called after Results or Close either return
// an error wrapping it or, on the hot ingest path, panic with an error
// wrapping it.
var ErrEngineClosed = errors.New("engine: engine is terminal after Results/Close")

// BackpressurePolicy selects what the producer does when a shard's bounded
// queue is full.
type BackpressurePolicy uint8

const (
	// Block, the default, applies backpressure: the producer blocks until
	// the shard worker (or, with WorkStealing, a thief) drains a batch.
	// Memory stays bounded at roughly Shards × QueueDepth × BatchSize
	// buffered updates.
	Block BackpressurePolicy = iota
	// Spill degrades instead of blocking: the overflowing batch is folded
	// into a producer-local same-seed spill replica, keeping ingest
	// wait-free under worker stalls without unbounded buffering. The spill
	// replica is merged back at every quiesce point (Snapshot, Restore,
	// Resize) and into the final Results — exact by linearity, so the
	// degradation changes latency, never answers.
	Spill
)

// Config tunes the engine. Zero values select sensible defaults.
type Config struct {
	// Shards is the initial number of worker shards (default
	// runtime.GOMAXPROCS). Resize changes it mid-stream.
	Shards int
	// BatchSize is the number of updates accumulated per shard before the
	// batch is handed to the worker (default 2048). Re-tuned for the flat
	// hash kernels: with per-update costs ~2× lower than the scalar-hash
	// paths, a larger batch halves handoff counts while the batch plus the
	// sketches' kernel scratch stays cache-resident; measured throughput is
	// flat from 512 to 8192 on the 10M-update ingest workload, so the
	// default favors fewer channel operations.
	BatchSize int
	// QueueDepth is the number of in-flight batches buffered per shard
	// channel; it bounds memory while letting the producer run ahead of a
	// momentarily slow shard (default 8).
	QueueDepth int
	// Backpressure picks the full-queue behavior: Block (default) or Spill.
	Backpressure BackpressurePolicy
	// WorkStealing lets idle shard workers drain other shards' queues into
	// their own replica — exact by linearity — so one hot shard cannot
	// leave the rest of the pool idle. Off by default.
	WorkStealing bool
	// HotKeyRouting enables the skew-aware router: a Misra-Gries tracker
	// (internal/heavyhitters.Tracker) detects keys receiving at least
	// HotKeyPhi of recent update traffic and fans their updates round-robin
	// across all shards instead of pinning them to shardOf(index). Off by
	// default; routing stays exact either way.
	HotKeyRouting bool
	// HotKeyInterval is the number of updates between hot-set refreshes
	// (default 8192).
	HotKeyInterval int
	// HotKeyCounters sizes the Misra-Gries tracker (default 256).
	HotKeyCounters int
	// HotKeyPhi is the traffic fraction at which a key counts as hot
	// (default 1/64).
	HotKeyPhi float64
	// CheckpointEvery, with a store bound via CheckpointTo, writes a durable
	// generation after roughly this many accepted updates (checkpoints land
	// on batch boundaries). Zero means no periodic checkpoints: the store
	// still journals every batch write-ahead, and CheckpointNow remains
	// available.
	CheckpointEvery int
	// Injector, when non-nil, enables deterministic fault injection on the
	// engine's internal decision points (forced queue overflow, merge
	// failures, worker panics) — see internal/faultinject. Nil (the default)
	// costs one predictable branch per injection point.
	Injector *faultinject.Injector
}

func (c Config) withDefaults() Config {
	if c.Shards < 1 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.BatchSize < 1 {
		c.BatchSize = 2048
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 8
	}
	return c
}

// Stats is a point-in-time snapshot of the engine's operational counters,
// read from the producer goroutine via Engine.Stats.
type Stats struct {
	// Shards is the current shard count (changes with Resize).
	Shards int
	// Routed counts updates accepted so far.
	Routed int64
	// Resizes counts completed Resize calls that changed the shard count.
	Resizes int64
	// SpilledBatches / SpilledUpdates count Spill-policy degradations:
	// batches folded into the producer-local replica because the target
	// queue was full.
	SpilledBatches int64
	SpilledUpdates int64
	// Steals counts batches drained from another shard's queue by an idle
	// work-stealing worker.
	Steals int64
	// HotKeys is the size of the router's current hot set; HotRouted counts
	// updates fanned across shards instead of routed by coordinate.
	HotKeys   int
	HotRouted int64
	// Panics counts replica panics caught and quarantined by the shard
	// workers; Recoveries counts tainted shards whose exactness was
	// re-established by a checkpoint rollback.
	Panics     int64
	Recoveries int64
	// Checkpoints counts durable generations written via the bound store;
	// Generation is the store's current generation number (zero when no
	// store is bound).
	Checkpoints int64
	Generation  uint64
}

// shardSlot is the per-shard state bundle. Slots are individually heap
// allocated so the pointer a worker captures at spawn stays valid across
// the slice appends of a later Resize.
//
// Ownership discipline (this is what makes the supervision fields safe
// without locks): replica, tainted, lost and absorbed are written by the
// owning worker only while it holds an in-flight batch token, and by the
// producer only after inflight.Wait() has drained every token — the
// WaitGroup edge plus the channel send/recv edge of the next handoff order
// all of it. A worker reads its own slot only after receiving a batch, so
// even a thief woken by a stale hot signal never races a quiesced
// producer's writes.
type shardSlot[T stream.Sink] struct {
	idx     int
	replica T
	ch      chan []stream.Update
	pending []stream.Update
	exited  chan struct{} // closed when the shard's worker returns
	// Supervision state, per the ownership discipline above.
	tainted  bool  // replica panicked; its updates are missing until rollback
	lost     int64 // updates discarded with quarantined replicas
	absorbed int64 // updates folded into replica since it was last (re)built
}

// Engine fans an update stream out to same-seed sketch replicas, one per
// shard, and produces the final sketch by merging them.
type Engine[T stream.Sink] struct {
	cfg      Config
	factory  func(shard int) T
	merge    func(dst, src T) error
	slots    []*shardSlot[T]
	stealSet atomic.Pointer[[]chan []stream.Update]
	hot      chan struct{}
	hotAt    int
	router   *hotRouter
	pool     sync.Pool
	wg       sync.WaitGroup
	inflight sync.WaitGroup // batches handed off but not yet processed
	spill    T
	spillSet bool

	routed         int64
	resizes        int64
	spilledBatches int64
	spilledUpdates int64
	steals         atomic.Int64
	panics         atomic.Int64 // written by workers, read anywhere
	recoveries     int64        // producer-only

	durable durableState[T] // zero unless CheckpointTo bound a store

	done   bool
	result T
	err    error
}

// New builds the engine and starts its shard workers immediately. Every
// engine must be terminated with Results or Close — an abandoned engine
// leaks its worker goroutines, which block forever on their channels.
//
// factory(shard) must return one replica per shard, all built from
// identical seeds — sketch linearity makes the shard-then-merge reduction
// exact only for same-seed replicas, and the merge functions of this
// repository reject anything else. The engine may call factory with shard
// indices at or beyond the current count (Resize scale-up, the Spill
// policy's producer-local replica); the same-seed contract holds for every
// index. merge folds src into dst.
//
// factory must additionally be safe for concurrent use: a shard worker
// invokes it to respawn a fresh replica when quarantining a panicked one.
// The factories in this repository qualify (each call builds its own
// seeded PRNG); a factory closing over shared mutable state would not.
func New[T stream.Sink](cfg Config, factory func(shard int) T, merge func(dst, src T) error) *Engine[T] {
	cfg = cfg.withDefaults()
	e := &Engine[T]{
		cfg:     cfg,
		factory: factory,
		merge:   merge,
		slots:   make([]*shardSlot[T], cfg.Shards),
		hot:     make(chan struct{}, 4*cfg.Shards+16),
		hotAt:   max(1, cfg.QueueDepth/2),
	}
	if cfg.HotKeyRouting {
		e.router = newHotRouter(cfg)
	}
	e.pool.New = func() any { return make([]stream.Update, 0, cfg.BatchSize) }
	for s := range e.slots {
		e.slots[s] = &shardSlot[T]{
			idx:     s,
			replica: factory(s),
			ch:      make(chan []stream.Update, cfg.QueueDepth),
		}
		e.slots[s].pending = e.batchBuf()
	}
	e.publishStealSet()
	for s := 0; s < cfg.Shards; s++ {
		e.spawn(e.slots[s])
	}
	return e
}

// mustOpen is the single use-after-termination guard on the hot ingest
// entry points. Feeding a terminal engine is a programming error, so it
// panics; the panic value is an error wrapping ErrEngineClosed so recovery
// sites can type-check it.
func (e *Engine[T]) mustOpen() {
	if e.done {
		panic(fmt.Errorf("engine: Process after Results/Close: %w", ErrEngineClosed))
	}
}

func (e *Engine[T]) batchBuf() []stream.Update {
	return e.pool.Get().([]stream.Update)[:0]
}

// publishStealSet snapshots the current channel set for the work-stealing
// workers. Called from the producer goroutine at construction and at the
// quiesced point of every Resize; workers Load it on each steal scan, so
// structural changes never race with thieves.
func (e *Engine[T]) publishStealSet() {
	snap := make([]chan []stream.Update, len(e.slots))
	for i, slot := range e.slots {
		snap[i] = slot.ch
	}
	e.stealSet.Store(&snap)
}

func (e *Engine[T]) spawn(slot *shardSlot[T]) {
	e.wg.Add(1)
	slot.exited = make(chan struct{})
	go func() {
		defer close(slot.exited)
		e.worker(slot)
	}()
}

// consume runs one batch through the slot's replica and retires it. A
// panic out of the replica is quarantined here: the replica's state is
// indeterminate mid-batch, so it is discarded, a fresh same-seed replica
// takes its place, and the slot is marked tainted for the supervisor to
// re-establish exactness at the next quiesce barrier. The worker itself
// never dies — it keeps draining its queue — so a panic can never wedge
// the producer against a full channel.
func (e *Engine[T]) consume(slot *shardSlot[T], batch []stream.Update) {
	defer func() {
		if r := recover(); r != nil {
			e.panics.Add(1)
			slot.lost += slot.absorbed + int64(len(batch))
			slot.absorbed = 0
			slot.tainted = true
			slot.replica = e.factory(slot.idx)
		}
		e.pool.Put(batch[:0])
		e.inflight.Done()
	}()
	e.cfg.Injector.MaybePanic(faultinject.WorkerPanic)
	stream.ProcessAll(slot.replica, batch)
	slot.absorbed += int64(len(batch))
}

func (e *Engine[T]) worker(slot *shardSlot[T]) {
	defer e.wg.Done()
	if !e.cfg.WorkStealing {
		for batch := range slot.ch {
			e.consume(slot, batch)
		}
		return
	}
	for {
		select {
		case batch, ok := <-slot.ch:
			if !ok {
				return
			}
			e.consume(slot, batch)
		case <-e.hot:
			// A producer saw backlog somewhere. Before stealing, make sure
			// this worker is still live: select picks randomly among ready
			// cases, so a retired worker can reach here on a stale buffered
			// signal even though its channel is closed — it must exit, not
			// steal batches into a replica that has already been folded away.
			select {
			case batch, ok := <-slot.ch:
				if !ok {
					return
				}
				e.consume(slot, batch)
			default:
			}
			// Drain foreign queues into this worker's replica until every
			// queue scans empty.
			for e.stealOne(slot) {
			}
		}
	}
}

// stealOne attempts to drain one batch from any other shard's queue into
// this worker's replica (exact by linearity). Returns false when every
// foreign queue scanned empty.
func (e *Engine[T]) stealOne(slot *shardSlot[T]) bool {
	set := *e.stealSet.Load()
	for i, ch := range set {
		if i == slot.idx {
			continue
		}
		select {
		case batch, ok := <-ch:
			if !ok {
				continue // retired shard, nothing buffered
			}
			e.consume(slot, batch)
			e.steals.Add(1)
			return true
		default:
		}
	}
	return false
}

// signalHot wakes an idle work-stealing worker, if any; the buffered channel
// keeps the signal until somebody parks, and dropping the signal when the
// buffer is full is fine — thieves rescan every queue per signal.
func (e *Engine[T]) signalHot() {
	select {
	case e.hot <- struct{}{}:
	default:
	}
}

// send hands one batch to a shard worker, tracking it for quiesce. Under the
// Spill policy a full queue degrades to the producer-local spill replica
// instead of blocking. The EngineQueue injection point forces the
// full-queue path so chaos schedules exercise spill and hot-signal handling
// without needing to actually stall a worker.
func (e *Engine[T]) send(s int, batch []stream.Update) {
	slot := e.slots[s]
	forcedFull := e.cfg.Injector.Fire(faultinject.EngineQueue)
	if e.cfg.WorkStealing && (forcedFull || len(slot.ch) >= e.hotAt) {
		e.signalHot()
	}
	e.inflight.Add(1)
	if e.cfg.Backpressure == Spill {
		if !forcedFull {
			select {
			case slot.ch <- batch:
				return
			default:
			}
		}
		e.inflight.Done()
		e.spillBatch(batch)
		return
	}
	slot.ch <- batch
}

// spillBatch folds an overflow batch into the producer-local same-seed
// replica; flushSpill merges it back at the next quiesce point.
func (e *Engine[T]) spillBatch(batch []stream.Update) {
	if !e.spillSet {
		e.spill = e.factory(len(e.slots))
		e.spillSet = true
	}
	stream.ProcessAll(e.spill, batch)
	e.spilledBatches++
	e.spilledUpdates += int64(len(batch))
	e.pool.Put(batch[:0])
}

// flushSpill folds the spill replica into shard 0's. Must only run while
// the workers are quiesced or joined.
func (e *Engine[T]) flushSpill() error {
	if !e.spillSet {
		return nil
	}
	if err := e.mergeInto(e.slots[0].replica, e.spill); err != nil {
		return fmt.Errorf("engine: folding spill replica: %w", err)
	}
	var zero T
	e.spill = zero
	e.spillSet = false
	return nil
}

// mergeInto is merge plus the EngineMerge injection point, so chaos
// schedules can force fold failures at every place replicas combine.
func (e *Engine[T]) mergeInto(dst, src T) error {
	if err := e.cfg.Injector.Err(faultinject.EngineMerge); err != nil {
		return err
	}
	return e.merge(dst, src)
}

// shardOf routes a coordinate to its owning shard: a Fibonacci mix of the
// index (multiplication by 2^32/φ is a bijection on uint32 that spreads the
// small, dense indices of real streams across the full 32-bit range)
// followed by the same multiply-shift range reduction the hash kernels use
// (hash.Bucket). Two multiplies, no hardware divide — at sketch-kernel
// speeds the `index % S` divide would dominate the router. The mix step is
// essential: Lemire reduction of the raw index would send every index below
// 2^32/S to shard 0. Any fixed index → shard map is correct (linearity makes
// the reduction order-insensitive), and this one is deterministic and
// balanced for dense and sparse index distributions alike.
func (e *Engine[T]) shardOf(index int) int {
	const fib32 = 0x9E3779B9 // 2^32 / golden ratio, odd
	h := uint64(uint32(index) * fib32)
	return int((h * uint64(e.cfg.Shards)) >> 32)
}

// shardFor is shardOf plus the skew-aware override: updates for keys the
// router currently considers hot round-robin across all shards.
func (e *Engine[T]) shardFor(index int) int {
	if r := e.router; r != nil {
		if s, hot := r.route(index, e.cfg.Shards); hot {
			return s
		}
	}
	return e.shardOf(index)
}

// route appends the update to its shard's pending batch, handing the batch
// off once full.
func (e *Engine[T]) route(s int, u stream.Update) {
	slot := e.slots[s]
	p := append(slot.pending, u)
	slot.pending = p
	if len(p) == e.cfg.BatchSize {
		e.send(s, p)
		slot.pending = e.batchBuf()
	}
}

// Process implements stream.Sink: the update joins its shard's pending
// batch, which is handed off once full.
func (e *Engine[T]) Process(u stream.Update) {
	e.mustOpen()
	e.journalOne(u)
	e.route(e.shardFor(u.Index), u)
	e.routed++
	e.maybeCheckpoint(1)
}

// ProcessBatch implements stream.BatchSink: one done-check and one shard
// multiplier load for the whole batch instead of per update. With a single
// shard (and no skew router observing traffic) there is nothing to route,
// so whole runs of updates move into the pending batch with copy — at
// kernel speeds the per-update append would otherwise be the engine's
// dominant cost on one core.
func (e *Engine[T]) ProcessBatch(batch []stream.Update) {
	e.mustOpen()
	e.journalBatch(batch)
	n := len(batch)
	e.routed += int64(n)
	if e.cfg.Shards == 1 && e.router == nil {
		for len(batch) > 0 {
			slot := e.slots[0]
			p := slot.pending
			c := copy(p[len(p):e.cfg.BatchSize], batch)
			p = p[:len(p)+c]
			batch = batch[c:]
			if len(p) == e.cfg.BatchSize {
				e.send(0, p)
				p = e.batchBuf()
			}
			slot.pending = p
		}
		e.maybeCheckpoint(n)
		return
	}
	for _, u := range batch {
		e.route(e.shardFor(u.Index), u)
	}
	e.maybeCheckpoint(n)
}

// Feed routes an entire stream through the engine.
func (e *Engine[T]) Feed(s stream.Stream) {
	e.ProcessBatch(s)
}

// Routed reports how many updates have been routed so far.
func (e *Engine[T]) Routed() int64 { return e.routed }

// Shards reports the shard count in use.
func (e *Engine[T]) Shards() int { return e.cfg.Shards }

// Stats reports the engine's operational counters.
func (e *Engine[T]) Stats() Stats {
	st := Stats{
		Shards:         e.cfg.Shards,
		Routed:         e.routed,
		Resizes:        e.resizes,
		SpilledBatches: e.spilledBatches,
		SpilledUpdates: e.spilledUpdates,
		Steals:         e.steals.Load(),
		Panics:         e.panics.Load(),
		Recoveries:     e.recoveries,
		Checkpoints:    e.durable.checkpoints,
	}
	if e.durable.store != nil {
		st.Generation = e.durable.store.Generation()
	}
	if e.router != nil {
		st.HotKeys = e.router.hotKeys
		st.HotRouted = e.router.hotRouted
	}
	return st
}

// anyTainted reports whether some shard's replica was quarantined and
// exactness has not been re-established. Producer-only; the slot fields are
// safe to read at quiesce points and after shutdown.
func (e *Engine[T]) anyTainted() bool {
	for _, slot := range e.slots {
		if slot.tainted {
			return true
		}
	}
	return false
}

// Results flushes all pending batches, waits for the workers to drain, and
// merges every replica (plus any spill replica) into shard 0's, which it
// returns: the sketch of the full vector, exactly as if one sketch had
// consumed the whole stream. The engine is terminal afterwards; further
// Process calls panic. Calling Results again returns the same result.
//
// If shard workers quarantined panicking replicas and a checkpoint store is
// bound, Results first rolls the engine back to the last durable generation
// plus the journal tail, so the result is still exact. Without a store (or
// when the rollback itself fails) Results returns the degraded merge of the
// surviving replicas together with a *PartialResultError naming the
// quarantined shards — a typed partial answer instead of a crash or a
// silent hole.
func (e *Engine[T]) Results() (T, error) {
	if e.done {
		return e.result, e.err
	}
	e.shutdown()
	// Fold the spill replica before any rollback: a rollback rebuilds the
	// replicas from the journal, which already covers the spilled updates,
	// so flushing after it would double-count them.
	spillErr := e.flushSpill()
	if e.anyTainted() && e.durable.store != nil {
		if err := e.rollback(); err != nil {
			if e.durable.recoverErr == nil {
				e.durable.recoverErr = err
			}
		} else {
			// The rollback state holds every journaled update, including any
			// spill replica whose fold failed above.
			spillErr = nil
			var zero T
			e.spill = zero
			e.spillSet = false
		}
	}
	e.result = e.slots[0].replica
	for s := 1; s < len(e.slots); s++ {
		if err := e.mergeInto(e.result, e.slots[s].replica); err != nil {
			e.err = err
			break
		}
	}
	if e.err == nil {
		e.err = spillErr
	}
	if e.err == nil && e.anyTainted() {
		e.err = e.partialError()
	}
	return e.result, e.err
}

// Close abandons ingestion without merging: pending batches and any spill
// replica are dropped, workers are joined, and the engine becomes terminal.
// Results after Close reports an error wrapping ErrEngineClosed. Close is
// idempotent and safe after Results.
func (e *Engine[T]) Close() {
	if e.done {
		return
	}
	for _, slot := range e.slots {
		slot.pending = slot.pending[:0]
	}
	var zero T
	e.spill = zero
	e.spillSet = false
	e.shutdown()
	e.err = fmt.Errorf("engine: closed without results: %w", ErrEngineClosed)
}

func (e *Engine[T]) shutdown() {
	for _, slot := range e.slots {
		if len(slot.pending) > 0 {
			e.send(slot.idx, slot.pending)
		}
		close(slot.ch)
	}
	e.wg.Wait()
	e.done = true
}

// quiesce flushes every pending partial batch to its worker, blocks until
// all in-flight batches have been consumed, and folds any spill replica
// into shard 0. Afterwards the workers idle on their channels and the
// replicas are safe to read, replace or fold from the producer goroutine;
// ingestion may continue. Quiesce is also the supervision barrier: if any
// worker quarantined a panicked replica since the last barrier and a
// checkpoint store is bound, the engine rolls back to the store's last
// durable state here, re-establishing exactness before the caller looks at
// the replicas.
func (e *Engine[T]) quiesce() error {
	for _, slot := range e.slots {
		if len(slot.pending) > 0 {
			e.send(slot.idx, slot.pending)
			slot.pending = e.batchBuf()
		}
	}
	e.inflight.Wait()
	if err := e.flushSpill(); err != nil {
		return err
	}
	if e.anyTainted() && e.durable.store != nil {
		if err := e.rollback(); err != nil {
			// Exactness could not be re-established; remember why, keep
			// running degraded. Results surfaces the taint as a typed
			// *PartialResultError carrying this cause.
			if e.durable.recoverErr == nil {
				e.durable.recoverErr = err
			}
		}
	}
	return nil
}

// Snapshot checkpoints the engine mid-ingest: it quiesces the workers and
// returns marshal applied to every shard replica, in shard order. The
// engine keeps running — updates may continue to flow afterwards — so a
// long ingest can checkpoint periodically and, after a crash, a fresh
// engine with the same shard count at snapshot time (shard routing is
// deterministic by coordinate and shard count) Restores the blobs and
// replays only the updates that came after the snapshot.
//
// A tainted engine (quarantined replicas, no store to roll back from)
// refuses to snapshot: the blobs would encode the hole. The error is the
// same typed *PartialResultError Results would return.
func (e *Engine[T]) Snapshot(marshal func(replica T) ([]byte, error)) ([][]byte, error) {
	if e.done {
		return nil, fmt.Errorf("engine: Snapshot: %w", ErrEngineClosed)
	}
	if err := e.quiesce(); err != nil {
		return nil, err
	}
	if e.anyTainted() {
		return nil, e.partialError()
	}
	out := make([][]byte, len(e.slots))
	for s, slot := range e.slots {
		b, err := marshal(slot.replica)
		if err != nil {
			return nil, fmt.Errorf("engine: snapshot of shard %d: %w", s, err)
		}
		out[s] = b
	}
	return out, nil
}

// Restore replaces every shard replica's state with a previously
// Snapshot-ted blob (restore is called per replica, in shard order). The
// engine must have the same shard count as the one that produced the
// snapshot; the replicas must be same-seed reconstructions, which restore
// typically enforces via the sketches' UnmarshalBinary. Safe before any
// update or mid-stream (the workers are quiesced first); updates processed
// before a Restore are discarded with the replaced state.
//
// Restore is all-or-nothing: every blob is decoded into a staged fresh
// replica first, and only when all of them succeed is the live set swapped.
// A failed Restore therefore leaves the engine's state exactly as it was —
// still ingesting, still restorable from a good snapshot — rather than
// half-replaced.
func (e *Engine[T]) Restore(states [][]byte, restore func(replica T, state []byte) error) error {
	if e.done {
		return fmt.Errorf("engine: Restore: %w", ErrEngineClosed)
	}
	if len(states) != len(e.slots) {
		return fmt.Errorf("engine: restoring %d shard states into %d shards: %w",
			len(states), len(e.slots), codec.ErrConfigMismatch)
	}
	if err := e.quiesce(); err != nil {
		return err
	}
	staged := make([]T, len(states))
	for s := range states {
		staged[s] = e.factory(s)
		if err := restore(staged[s], states[s]); err != nil {
			return fmt.Errorf("engine: restore of shard %d: %w", s, err)
		}
	}
	e.installReplicas(staged)
	return nil
}

// installReplicas swaps a fully-built replica set into the slots and clears
// all supervision state — the old replicas (including any taint they
// carried) are discarded wholesale. Producer-only, workers quiesced.
func (e *Engine[T]) installReplicas(replicas []T) {
	for s, slot := range e.slots {
		if slot.tainted {
			e.recoveries++
		}
		slot.replica = replicas[s]
		slot.tainted = false
		slot.lost = 0
		slot.absorbed = 0
	}
	e.durable.recoverErr = nil
}
