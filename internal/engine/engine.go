// Package engine implements sharded, concurrent ingestion for the linear
// sketches of this repository.
//
// Every sketch here — count-sketch, count-min, exact sparse recovery, the
// L0/Lp samplers, the distinct-elements estimator, heavy hitters, the
// duplicate finders — is a linear function of the input vector, so a sketch
// of x + y is the cell-wise sum of same-seed sketches of x and y. The engine
// exploits exactly that:
//
//	updates ──route by index──▶ shard 0 ─ batch ─▶ worker 0: replica 0
//	                            shard 1 ─ batch ─▶ worker 1: replica 1   ──▶ Merge ──▶ result
//	                            ...
//	                            shard S-1 ─────▶ worker S-1: replica S-1
//
// The caller supplies a factory that builds one same-seed replica per shard
// (same WithSeed / identically seeded *rand.Rand, so all replicas share
// randomness) and a merge function; the engine routes each update to the
// shard owning its coordinate, accumulates per-shard batches to amortize
// channel handoffs, and the workers drive each replica's ProcessBatch hot
// path. Results flushes, joins the workers and folds the replicas together.
//
// Producer methods (Process, ProcessBatch, Feed, Results, Close, Snapshot,
// Restore) must be called from one goroutine; the parallelism lives in the
// shard workers.
//
// # Checkpoint and resume
//
// Because every replica is a serializable linear sketch, a sharded ingest
// can checkpoint mid-stream: Snapshot quiesces the workers (flushes pending
// batches, waits until every in-flight batch is consumed) and returns one
// marshaled state per shard replica; ingestion continues afterwards. A new
// engine with the same shard count, batch-independent routing being
// deterministic by coordinate, Restores those states into its replicas and
// replays only the updates after the checkpoint — the resumed result is
// exactly the uninterrupted one. See examples/checkpoint.
package engine

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/codec"
	"repro/internal/stream"
)

// Config tunes the engine. Zero values select sensible defaults.
type Config struct {
	// Shards is the number of worker shards (default runtime.GOMAXPROCS).
	Shards int
	// BatchSize is the number of updates accumulated per shard before the
	// batch is handed to the worker (default 2048). Re-tuned for the flat
	// hash kernels: with per-update costs ~2× lower than the scalar-hash
	// paths, a larger batch halves handoff counts while the batch plus the
	// sketches' kernel scratch stays cache-resident; measured throughput is
	// flat from 512 to 8192 on the 10M-update ingest workload, so the
	// default favors fewer channel operations.
	BatchSize int
	// QueueDepth is the number of in-flight batches buffered per shard
	// channel; it bounds memory while letting the producer run ahead of a
	// momentarily slow shard (default 8).
	QueueDepth int
}

func (c Config) withDefaults() Config {
	if c.Shards < 1 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.BatchSize < 1 {
		c.BatchSize = 2048
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 8
	}
	return c
}

// Engine fans an update stream out to same-seed sketch replicas, one per
// shard, and produces the final sketch by merging them.
type Engine[T stream.Sink] struct {
	cfg      Config
	replicas []T
	merge    func(dst, src T) error
	chans    []chan []stream.Update
	pending  [][]stream.Update
	pool     sync.Pool
	wg       sync.WaitGroup
	inflight sync.WaitGroup // batches handed off but not yet processed
	routed   int64
	done     bool
	result   T
	err      error
}

// New builds the engine and starts its shard workers immediately. Every
// engine must be terminated with Results or Close — an abandoned engine
// leaks its worker goroutines, which block forever on their channels.
//
// factory(shard) must return one replica per shard, all built from
// identical seeds — sketch linearity makes the shard-then-merge reduction
// exact only for same-seed replicas, and the merge functions of this
// repository reject anything else. merge folds src into dst.
func New[T stream.Sink](cfg Config, factory func(shard int) T, merge func(dst, src T) error) *Engine[T] {
	cfg = cfg.withDefaults()
	e := &Engine[T]{
		cfg:      cfg,
		replicas: make([]T, cfg.Shards),
		merge:    merge,
		chans:    make([]chan []stream.Update, cfg.Shards),
		pending:  make([][]stream.Update, cfg.Shards),
	}
	e.pool.New = func() any { return make([]stream.Update, 0, cfg.BatchSize) }
	for s := range e.replicas {
		e.replicas[s] = factory(s)
		e.chans[s] = make(chan []stream.Update, cfg.QueueDepth)
		e.pending[s] = e.batchBuf()
	}
	e.wg.Add(cfg.Shards)
	for s := 0; s < cfg.Shards; s++ {
		go e.worker(s)
	}
	return e
}

func (e *Engine[T]) batchBuf() []stream.Update {
	return e.pool.Get().([]stream.Update)[:0]
}

func (e *Engine[T]) worker(shard int) {
	defer e.wg.Done()
	replica := e.replicas[shard]
	for batch := range e.chans[shard] {
		stream.ProcessAll(replica, batch)
		e.pool.Put(batch[:0])
		e.inflight.Done()
	}
}

// send hands one batch to a shard worker, tracking it for quiesce.
func (e *Engine[T]) send(s int, batch []stream.Update) {
	e.inflight.Add(1)
	e.chans[s] <- batch
}

// shardOf routes a coordinate to its owning shard: a Fibonacci mix of the
// index (multiplication by 2^32/φ is a bijection on uint32 that spreads the
// small, dense indices of real streams across the full 32-bit range)
// followed by the same multiply-shift range reduction the hash kernels use
// (hash.Bucket). Two multiplies, no hardware divide — at sketch-kernel
// speeds the `index % S` divide would dominate the router. The mix step is
// essential: Lemire reduction of the raw index would send every index below
// 2^32/S to shard 0. Any fixed index → shard map is correct (linearity makes
// the reduction order-insensitive), and this one is deterministic and
// balanced for dense and sparse index distributions alike.
func (e *Engine[T]) shardOf(index int) int {
	const fib32 = 0x9E3779B9 // 2^32 / golden ratio, odd
	h := uint64(uint32(index) * fib32)
	return int((h * uint64(e.cfg.Shards)) >> 32)
}

// route appends the update to its shard's pending batch, handing the batch
// off once full.
func (e *Engine[T]) route(s int, u stream.Update) {
	p := append(e.pending[s], u)
	e.pending[s] = p
	if len(p) == e.cfg.BatchSize {
		e.send(s, p)
		e.pending[s] = e.batchBuf()
	}
}

// Process implements stream.Sink: the update joins its shard's pending
// batch, which is handed off once full.
func (e *Engine[T]) Process(u stream.Update) {
	if e.done {
		panic("engine: Process after Results/Close")
	}
	e.route(e.shardOf(u.Index), u)
	e.routed++
}

// ProcessBatch implements stream.BatchSink: one done-check and one shard
// multiplier load for the whole batch instead of per update. With a single
// shard there is nothing to route, so whole runs of updates move into the
// pending batch with copy — at kernel speeds the per-update append would
// otherwise be the engine's dominant cost on one core.
func (e *Engine[T]) ProcessBatch(batch []stream.Update) {
	if e.done {
		panic("engine: Process after Results/Close")
	}
	e.routed += int64(len(batch))
	if e.cfg.Shards == 1 {
		for len(batch) > 0 {
			p := e.pending[0]
			n := copy(p[len(p):e.cfg.BatchSize], batch)
			p = p[:len(p)+n]
			batch = batch[n:]
			if len(p) == e.cfg.BatchSize {
				e.send(0, p)
				p = e.batchBuf()
			}
			e.pending[0] = p
		}
		return
	}
	for _, u := range batch {
		e.route(e.shardOf(u.Index), u)
	}
}

// Feed routes an entire stream through the engine.
func (e *Engine[T]) Feed(s stream.Stream) {
	e.ProcessBatch(s)
}

// Routed reports how many updates have been routed so far.
func (e *Engine[T]) Routed() int64 { return e.routed }

// Shards reports the shard count in use.
func (e *Engine[T]) Shards() int { return e.cfg.Shards }

// Results flushes all pending batches, waits for the workers to drain, and
// merges every replica into shard 0's, which it returns: the sketch of the
// full vector, exactly as if one sketch had consumed the whole stream. The
// engine is terminal afterwards; further Process calls panic. Calling
// Results again returns the same result.
func (e *Engine[T]) Results() (T, error) {
	if e.done {
		return e.result, e.err
	}
	e.shutdown()
	e.result = e.replicas[0]
	for s := 1; s < len(e.replicas); s++ {
		if err := e.merge(e.result, e.replicas[s]); err != nil {
			e.err = err
			break
		}
	}
	return e.result, e.err
}

// Close abandons ingestion without merging: pending batches are dropped,
// workers are joined, and the engine becomes terminal. Results after Close
// reports an error. Close is idempotent and safe after Results.
func (e *Engine[T]) Close() {
	if e.done {
		return
	}
	for s := range e.pending {
		e.pending[s] = e.pending[s][:0]
	}
	e.shutdown()
	e.err = errors.New("engine: closed without results")
}

func (e *Engine[T]) shutdown() {
	for s, ch := range e.chans {
		if len(e.pending[s]) > 0 {
			e.send(s, e.pending[s])
		}
		close(ch)
	}
	e.wg.Wait()
	e.done = true
}

// quiesce flushes every pending partial batch to its worker and blocks
// until all in-flight batches have been consumed. Afterwards the workers
// idle on their channels and the replicas are safe to read or replace from
// the producer goroutine; ingestion may continue.
func (e *Engine[T]) quiesce() {
	for s := range e.pending {
		if len(e.pending[s]) > 0 {
			e.send(s, e.pending[s])
			e.pending[s] = e.batchBuf()
		}
	}
	e.inflight.Wait()
}

// Snapshot checkpoints the engine mid-ingest: it quiesces the workers and
// returns marshal applied to every shard replica, in shard order. The
// engine keeps running — updates may continue to flow afterwards — so a
// long ingest can checkpoint periodically and, after a crash, a fresh
// engine with the same Config.Shards (shard routing is deterministic by
// coordinate and shard count) Restores the blobs and replays only the
// updates that came after the snapshot.
func (e *Engine[T]) Snapshot(marshal func(replica T) ([]byte, error)) ([][]byte, error) {
	if e.done {
		return nil, errors.New("engine: Snapshot after Results/Close")
	}
	e.quiesce()
	out := make([][]byte, len(e.replicas))
	for s, r := range e.replicas {
		b, err := marshal(r)
		if err != nil {
			return nil, fmt.Errorf("engine: snapshot of shard %d: %w", s, err)
		}
		out[s] = b
	}
	return out, nil
}

// Restore replaces every shard replica's state with a previously
// Snapshot-ted blob (restore is called per replica, in shard order). The
// engine must have the same shard count as the one that produced the
// snapshot; the replicas must be same-seed reconstructions, which restore
// typically enforces via the sketches' UnmarshalBinary. Safe before any
// update or mid-stream (the workers are quiesced first); updates processed
// before a Restore are discarded with the replaced state.
func (e *Engine[T]) Restore(states [][]byte, restore func(replica T, state []byte) error) error {
	if e.done {
		return errors.New("engine: Restore after Results/Close")
	}
	if len(states) != len(e.replicas) {
		return fmt.Errorf("engine: restoring %d shard states into %d shards: %w",
			len(states), len(e.replicas), codec.ErrConfigMismatch)
	}
	e.quiesce()
	for s, r := range e.replicas {
		if err := restore(r, states[s]); err != nil {
			return fmt.Errorf("engine: restore of shard %d: %w", s, err)
		}
	}
	return nil
}
