package engine

import (
	"bytes"
	"math/rand/v2"
	"testing"

	"repro/internal/core"
	"repro/internal/countmin"
	"repro/internal/countsketch"
	"repro/internal/distinct"
	"repro/internal/duplicates"
	"repro/internal/heavyhitters"
	"repro/internal/stream"
)

func seeded(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x9E3779B97F4A7C15))
}

// TestCountMinShardedMatchesSerial: integer cells make the shard-then-merge
// reduction bit-exact, so every point query must agree with the serial sink.
func TestCountMinShardedMatchesSerial(t *testing.T) {
	const n, length = 512, 20000
	st := stream.RandomTurnstile(n, length, 50, seeded(1))

	serial := countmin.New(64, 5, seeded(42))
	st.Feed(serial)

	eng := New(Config{Shards: 4, BatchSize: 128},
		func(int) *countmin.Sketch { return countmin.New(64, 5, seeded(42)) },
		func(dst, src *countmin.Sketch) error { return dst.Merge(src) })
	eng.Feed(st)
	merged, err := eng.Results()
	if err != nil {
		t.Fatalf("Results: %v", err)
	}
	for i := 0; i < n; i++ {
		if got, want := merged.QueryMedian(uint64(i)), serial.QueryMedian(uint64(i)); got != want {
			t.Fatalf("coordinate %d: sharded %d != serial %d", i, got, want)
		}
	}
	if eng.Routed() != int64(length) {
		t.Fatalf("routed %d updates, want %d", eng.Routed(), length)
	}
}

// TestCountSketchShardedMatchesSerial: with integer deltas every cell is an
// integer-valued float sum, so estimates match the serial sketch exactly.
func TestCountSketchShardedMatchesSerial(t *testing.T) {
	const n = 256
	st := stream.RandomTurnstile(n, 8000, 100, seeded(2))

	serial := countsketch.New(8, 7, seeded(43))
	st.Feed(serial)

	eng := New(Config{Shards: 3, BatchSize: 64},
		func(int) *countsketch.Sketch { return countsketch.New(8, 7, seeded(43)) },
		func(dst, src *countsketch.Sketch) error { return dst.Merge(src) })
	eng.Feed(st)
	merged, err := eng.Results()
	if err != nil {
		t.Fatalf("Results: %v", err)
	}
	for i := 0; i < n; i++ {
		if got, want := merged.Estimate(uint64(i)), serial.Estimate(uint64(i)); got != want {
			t.Fatalf("coordinate %d: sharded %v != serial %v", i, got, want)
		}
	}
}

// TestL0ShardedMatchesSerialState: the strongest form of correctness — the
// merged L0 sampler's linear measurements are byte-identical to a serial
// same-seed sampler's, so every downstream query behaves identically.
func TestL0ShardedMatchesSerialState(t *testing.T) {
	const n = 512
	st := stream.SparseVector(n, 30, 1000, seeded(3))

	serial := core.NewL0Sampler(core.L0Config{N: n, Delta: 0.2}, seeded(44))
	st.Feed(serial)

	eng := New(Config{Shards: 4, BatchSize: 32},
		func(int) *core.L0Sampler { return core.NewL0Sampler(core.L0Config{N: n, Delta: 0.2}, seeded(44)) },
		func(dst, src *core.L0Sampler) error { return dst.Merge(src) })
	eng.Feed(st)
	merged, err := eng.Results()
	if err != nil {
		t.Fatalf("Results: %v", err)
	}
	if !bytes.Equal(merged.ExportState(), serial.ExportState()) {
		t.Fatal("merged L0 state differs from serial state")
	}
	wOut, wOK := serial.Sample()
	mOut, mOK := merged.Sample()
	if wOK != mOK || wOut != mOut {
		t.Fatalf("merged sample (%v,%v) != serial (%v,%v)", mOut, mOK, wOut, wOK)
	}
}

// TestDistinctShardedMatchesSerial: field fingerprints add exactly, so the
// sharded estimate equals the serial one.
func TestDistinctShardedMatchesSerial(t *testing.T) {
	const n = 1024
	st := stream.SparseVector(n, 200, 10, seeded(4))

	serial := distinct.New(n, 12, seeded(45))
	st.Feed(serial)

	eng := New(Config{Shards: 5, BatchSize: 256},
		func(int) *distinct.Estimator { return distinct.New(n, 12, seeded(45)) },
		func(dst, src *distinct.Estimator) error { return dst.Merge(src) })
	eng.Feed(st)
	merged, err := eng.Results()
	if err != nil {
		t.Fatalf("Results: %v", err)
	}
	if got, want := merged.Estimate(), serial.Estimate(); got != want {
		t.Fatalf("sharded estimate %d != serial %d", got, want)
	}
}

// TestHeavyHittersSharded: a strongly separated instance — the merged sketch
// must report the planted heavy coordinate and nothing from the light mass.
func TestHeavyHittersSharded(t *testing.T) {
	const n = 256
	var st stream.Stream
	st = append(st, stream.Update{Index: 17, Delta: 100000})
	for i := 0; i < n; i++ {
		st = append(st, stream.Update{Index: i, Delta: int64(1 + i%3)})
	}

	cfg := heavyhitters.Config{P: 1, Phi: 0.3, N: n}
	eng := New(Config{Shards: 4, BatchSize: 16},
		func(int) *heavyhitters.Sketch { return heavyhitters.New(cfg, seeded(46)) },
		func(dst, src *heavyhitters.Sketch) error { return dst.Merge(src) })
	eng.Feed(st)
	merged, err := eng.Results()
	if err != nil {
		t.Fatalf("Results: %v", err)
	}
	report := merged.HeavyHitters()
	if len(report) != 1 || report[0] != 17 {
		t.Fatalf("sharded heavy hitters = %v, want [17]", report)
	}
}

// TestDuplicateFinderSharded: each shard replica feeds its own pigeonhole
// prefix; Finder.Merge compensates, so the engine result behaves like one
// finder that saw the whole letter stream.
func TestDuplicateFinderSharded(t *testing.T) {
	const n = 200
	const trials = 10
	ok, correct := 0, 0
	for trial := 0; trial < trials; trial++ {
		r := seeded(uint64(100 + trial))
		dup := r.IntN(n)
		items := stream.DuplicateItems(n, dup, r)

		seed := uint64(200 + trial)
		eng := New(Config{Shards: 3, BatchSize: 64},
			func(int) *duplicates.Finder { return duplicates.NewFinder(n, 0.2, seeded(seed)) },
			func(dst, src *duplicates.Finder) error { return dst.Merge(src) })
		eng.Feed(items.Updates())
		merged, err := eng.Results()
		if err != nil {
			t.Fatalf("Results: %v", err)
		}
		res := merged.Find()
		if res.Kind != duplicates.Duplicate {
			continue
		}
		ok++
		if res.Index == dup {
			correct++
		}
	}
	if ok < trials/2 {
		t.Errorf("sharded finder succeeded %d/%d times, want >= %d", ok, trials, trials/2)
	}
	if correct < ok-1 {
		t.Errorf("only %d/%d successes named the true duplicate", correct, ok)
	}
}

// TestMismatchedSeedsRejected: replicas that do not share randomness must be
// refused at the merge stage with an error, not silently combined.
func TestMismatchedSeedsRejected(t *testing.T) {
	eng := New(Config{Shards: 4},
		func(shard int) *countmin.Sketch { return countmin.New(32, 4, seeded(uint64(shard))) },
		func(dst, src *countmin.Sketch) error { return dst.Merge(src) })
	eng.Feed(stream.RandomTurnstile(64, 1000, 10, seeded(5)))
	if _, err := eng.Results(); err == nil {
		t.Fatal("expected mismatched-seed replicas to be rejected")
	}
}

func TestEngineLifecycle(t *testing.T) {
	eng := New(Config{Shards: 2, BatchSize: 8},
		func(int) *countmin.Sketch { return countmin.New(16, 3, seeded(6)) },
		func(dst, src *countmin.Sketch) error { return dst.Merge(src) })
	eng.Feed(stream.RandomTurnstile(32, 100, 5, seeded(7)))

	first, err := eng.Results()
	if err != nil {
		t.Fatalf("Results: %v", err)
	}
	second, err := eng.Results()
	if err != nil || second != first {
		t.Fatal("Results must be idempotent")
	}

	defer func() {
		if recover() == nil {
			t.Error("Process after Results must panic")
		}
	}()
	eng.Process(stream.Update{Index: 1, Delta: 1})
}

func TestEngineCloseWithoutResults(t *testing.T) {
	eng := New(Config{Shards: 2},
		func(int) *countmin.Sketch { return countmin.New(16, 3, seeded(8)) },
		func(dst, src *countmin.Sketch) error { return dst.Merge(src) })
	eng.Process(stream.Update{Index: 1, Delta: 1})
	eng.Close()
	eng.Close() // idempotent
	if _, err := eng.Results(); err == nil {
		t.Fatal("Results after Close must report an error")
	}
}
