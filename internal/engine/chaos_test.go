package engine

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand/v2"
	"os"
	"strconv"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/retry"
	"repro/internal/stream"
)

// TestChaosFaultSeeds is the chaos property the CI `make chaos` leg sweeps
// under -race: a fully-featured engine (work stealing, spill backpressure,
// skew routing, periodic durable checkpoints) ingests a random stream while
// a deterministic injector fires faults at EVERY injection point — worker
// panics, forced queue overflow, merge failures, torn checkpoint writes,
// fsync errors, bit flips, journal append failures, decode faults. The
// property: the run either ends exact (byte-identical to serial) or fails
// with a typed error. Crashes, hangs, silent corruption and untyped errors
// are the bugs this hunts.
//
// REPRO_FAULTS=seed:rate reruns a single failing schedule; the failure
// message prints that one-liner.
func TestChaosFaultSeeds(t *testing.T) {
	type sched struct {
		seed uint64
		rate float64
	}
	var scheds []sched
	if env := os.Getenv(faultinject.EnvVar); env != "" {
		inj, err := faultinject.FromEnv()
		if err != nil {
			t.Fatal(err)
		}
		_ = inj // the seed/rate are re-parsed below so the schedule is explicit
		var seed uint64
		var rate float64
		if _, err := fmt.Sscanf(env, "%d:%g", &seed, &rate); err != nil {
			t.Fatalf("parsing %s=%q: %v", faultinject.EnvVar, env, err)
		}
		scheds = []sched{{seed, rate}}
	} else {
		count := 10
		if testing.Short() {
			count = 3
		}
		for s := 1; s <= count; s++ {
			scheds = append(scheds, sched{uint64(s), 0.02})
		}
	}
	for _, sc := range scheds {
		if msg := runChaosSchedule(t, sc.seed, sc.rate); msg != "" {
			t.Fatalf("fault seed %d: %s\nrepro: %s=%d:%s go test -race -run 'TestChaosFaultSeeds' ./internal/engine",
				sc.seed, msg, faultinject.EnvVar, sc.seed, strconv.FormatFloat(sc.rate, 'g', -1, 64))
		}
	}
}

// typedChaosOutcome reports whether err is one of the contracted error
// types a chaos run may legitimately end with.
func typedChaosOutcome(err error) bool {
	var pe *PartialResultError
	var ie *faultinject.InjectedErr
	return errors.As(err, &pe) || errors.As(err, &ie) ||
		errors.Is(err, checkpoint.ErrNoCheckpoint) ||
		errors.Is(err, checkpoint.ErrGenerationGap) ||
		errors.Is(err, checkpoint.ErrTornWrite) ||
		errors.Is(err, codec.ErrBadRecord)
}

func runChaosSchedule(t *testing.T, seed uint64, rate float64) string {
	const n, length = 256, 8000
	rng := rand.New(rand.NewPCG(seed, seed^0xA5A5))
	st := stream.RandomTurnstile(n, length, 40, rng)
	factory := l0Factory(n)

	serial := factory(0)
	st.Feed(serial)

	inj := faultinject.New(seed, rate)
	store, err := checkpoint.Open(t.TempDir(), checkpoint.Options{
		Keep:     8, // keep the journal chain long enough to survive corrupt generations
		Injector: inj,
		Retry:    retry.Policy{Attempts: 4, Sleep: noSleep},
	})
	if err != nil {
		return fmt.Sprintf("opening store: %v", err)
	}
	defer store.Close()

	eng := New(Config{
		Shards: 4, BatchSize: 32, QueueDepth: 2,
		WorkStealing: true, Backpressure: Spill,
		HotKeyRouting: true, HotKeyInterval: 512, HotKeyPhi: 0.1,
		CheckpointEvery: 2000,
		Injector:        inj,
	}, factory, l0Merge)

	durable := true
	if err := eng.CheckpointTo(store, l0Marshal, l0Restore); err != nil {
		if !typedChaosOutcome(err) {
			eng.Close()
			return fmt.Sprintf("CheckpointTo failed untyped: %v", err)
		}
		durable = false // injected bind failure; run stays in-memory only
	}

	// Feed in chunks with a mid-stream resize, the worst structural churn.
	for i := 0; i < length; i += 1000 {
		eng.ProcessBatch(st[i : i+1000])
		if i == 3000 {
			if err := eng.Resize(2 + int(seed)%3); err != nil {
				if typedChaosOutcome(err) {
					// Resize folds closed the engine on an injected merge
					// error; the run legitimately ends here.
					return ""
				}
				return fmt.Sprintf("Resize failed untyped: %v", err)
			}
		}
	}

	merged, err := eng.Results()
	if err != nil {
		if !typedChaosOutcome(err) {
			return fmt.Sprintf("Results failed untyped: %v", err)
		}
		return ""
	}
	// A clean Results must be exact — faults may only cost latency or end
	// in a typed error, never silently change answers.
	if !bytes.Equal(merged.ExportState(), serial.ExportState()) {
		st := eng.Stats()
		return fmt.Sprintf("clean Results is NOT exact (panics=%d recoveries=%d durable=%v injected=%d)",
			st.Panics, st.Recoveries, durable, inj.Fired())
	}
	return ""
}

// TestChaosWithoutStore runs the same sweep with no durability at all: the
// contract degrades to "typed partial results, never a crash or a silent
// hole" — a clean Results with panics recorded would be exactly such a
// hole, so it must not happen.
func TestChaosWithoutStore(t *testing.T) {
	count := 6
	if testing.Short() {
		count = 2
	}
	for seed := uint64(1); seed <= uint64(count); seed++ {
		const n, length = 128, 4000
		st := stream.RandomTurnstile(n, length, 20, rand.New(rand.NewPCG(seed, 3)))
		factory := func(int) *core.L0Sampler {
			return core.NewL0Sampler(core.L0Config{N: n, Delta: 0.2},
				rand.New(rand.NewPCG(99, 98)))
		}
		inj := faultinject.New(seed, 0.03).Only(faultinject.WorkerPanic, faultinject.EngineQueue)
		eng := New(Config{
			Shards: 3, BatchSize: 16, QueueDepth: 2,
			WorkStealing: true, Backpressure: Spill,
			Injector: inj,
		}, factory, l0Merge)
		eng.ProcessBatch(st)
		_, err := eng.Results()
		panics := eng.Stats().Panics
		var pe *PartialResultError
		switch {
		case err == nil && panics > 0:
			t.Fatalf("seed %d: %d panics but Results claims a clean result", seed, panics)
		case err != nil && !errors.As(err, &pe):
			t.Fatalf("seed %d: untyped Results error: %v", seed, err)
		}
	}
}
