package engine

import (
	"bytes"
	"errors"
	"math/rand/v2"
	"testing"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/stream"
)

// l0Marshal/l0Restore adapt the L0 sampler's raw state export to the
// Snapshot/Restore callbacks.
func l0Marshal(s *core.L0Sampler) ([]byte, error) { return s.ExportState(), nil }

func l0Restore(s *core.L0Sampler, b []byte) error { return s.ImportState(b) }

// TestSnapshotRestoreResumesExactly checkpoints a sharded ingest mid-stream,
// "crashes" the engine, restores the snapshot into a fresh engine, replays
// the rest of the stream and checks the final merged state is byte-identical
// to an uninterrupted serial ingest.
func TestSnapshotRestoreResumesExactly(t *testing.T) {
	const n, length, shards = 512, 6000, 4
	st := stream.RandomTurnstile(n, length, 50, rand.New(rand.NewPCG(11, 12)))
	factory := func(int) *core.L0Sampler {
		return core.NewL0Sampler(core.L0Config{N: n, Delta: 0.2},
			rand.New(rand.NewPCG(99, 98)))
	}
	merge := func(dst, src *core.L0Sampler) error { return dst.Merge(src) }

	serial := factory(0)
	st.Feed(serial)

	cut := length / 3
	first := New(Config{Shards: shards, BatchSize: 64}, factory, merge)
	first.ProcessBatch(st[:cut])
	snap, err := first.Snapshot(l0Marshal)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap) != shards {
		t.Fatalf("snapshot has %d blobs, want %d", len(snap), shards)
	}
	// The first engine crashes: whatever it would have processed next is
	// lost with it.
	first.Close()

	resumed := New(Config{Shards: shards, BatchSize: 64}, factory, merge)
	if err := resumed.Restore(snap, l0Restore); err != nil {
		t.Fatal(err)
	}
	resumed.ProcessBatch(st[cut:])
	merged, err := resumed.Results()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(merged.ExportState(), serial.ExportState()) {
		t.Fatal("resumed sharded state differs from uninterrupted serial state")
	}
}

// TestSnapshotMidStreamContinues checks that the engine keeps ingesting
// after a Snapshot: the checkpoint is a barrier, not a terminator.
func TestSnapshotMidStreamContinues(t *testing.T) {
	const n, length = 256, 3000
	st := stream.RandomTurnstile(n, length, 20, rand.New(rand.NewPCG(5, 6)))
	factory := func(int) *core.L0Sampler {
		return core.NewL0Sampler(core.L0Config{N: n, Delta: 0.2},
			rand.New(rand.NewPCG(7, 8)))
	}
	merge := func(dst, src *core.L0Sampler) error { return dst.Merge(src) }

	serial := factory(0)
	st.Feed(serial)

	eng := New(Config{Shards: 3, BatchSize: 128}, factory, merge)
	eng.ProcessBatch(st[:length/2])
	if _, err := eng.Snapshot(l0Marshal); err != nil {
		t.Fatal(err)
	}
	eng.ProcessBatch(st[length/2:])
	merged, err := eng.Results()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(merged.ExportState(), serial.ExportState()) {
		t.Fatal("post-snapshot ingestion diverged from serial state")
	}
}

// TestRestoreShardCountMismatch pins the typed error for snapshots taken
// with a different shard count.
func TestRestoreShardCountMismatch(t *testing.T) {
	factory := func(int) *core.L0Sampler {
		return core.NewL0Sampler(core.L0Config{N: 64, Delta: 0.2},
			rand.New(rand.NewPCG(1, 2)))
	}
	merge := func(dst, src *core.L0Sampler) error { return dst.Merge(src) }
	eng := New(Config{Shards: 2}, factory, merge)
	defer eng.Close()
	if err := eng.Restore(make([][]byte, 3), l0Restore); !errors.Is(err, codec.ErrConfigMismatch) {
		t.Fatalf("Restore with wrong shard count: %v, want ErrConfigMismatch", err)
	}
}

// TestSnapshotAfterResultsFails pins the terminal-engine guard.
func TestSnapshotAfterResultsFails(t *testing.T) {
	factory := func(int) *core.L0Sampler {
		return core.NewL0Sampler(core.L0Config{N: 64, Delta: 0.2},
			rand.New(rand.NewPCG(3, 4)))
	}
	merge := func(dst, src *core.L0Sampler) error { return dst.Merge(src) }
	eng := New(Config{Shards: 2}, factory, merge)
	if _, err := eng.Results(); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Snapshot(l0Marshal); err == nil {
		t.Fatal("Snapshot after Results must fail")
	}
	if err := eng.Restore(make([][]byte, 2), l0Restore); err == nil {
		t.Fatal("Restore after Results must fail")
	}
}
