package engine

import (
	"fmt"

	"repro/internal/stream"
)

// Resize changes the shard count to n mid-stream, exactly — the elastic
// scale-up/scale-down operation of the engine.
//
// Linearity makes both directions trivial to prove correct. Scaling up
// splits the work by adding fresh same-seed replicas: a fresh replica is
// the sketch of the zero vector, so merging it at Results adds nothing,
// and subsequent updates routed to it are counted exactly once. Scaling
// down merges: the retired shards' replicas are folded into the survivors
// (replica s joins replica s mod n) behind the quiesce barrier, which is
// the same exact cell-wise sum Results performs. In both directions the
// router immediately re-balances onto the new shard count; because any
// fixed index→shard map yields the same merged sketch, the resized engine's
// final state is byte-identical to an uninterrupted serial ingest.
//
// Resize must be called from the producer goroutine. It quiesces the
// workers (so it is also a checkpoint barrier: a pending Spill replica is
// folded in first, and a tainted engine with a bound store rolls back to
// exactness), then grows or shrinks the worker pool. Folding a retired
// shard that is still tainted — no store to roll back from — carries the
// taint onto the surviving slot, so the degradation stays visible in the
// eventual PartialResultError. On a fold error — possible only when
// factory/merge break the same-seed contract — the engine is closed and
// becomes terminal, and the error is returned.
func (e *Engine[T]) Resize(n int) error {
	if e.done {
		return fmt.Errorf("engine: Resize: %w", ErrEngineClosed)
	}
	if n < 1 {
		return fmt.Errorf("engine: Resize to %d shards", n)
	}
	if n == e.cfg.Shards {
		return nil
	}
	if err := e.quiesce(); err != nil {
		return err
	}
	old := e.cfg.Shards
	if n > old {
		for s := old; s < n; s++ {
			slot := &shardSlot[T]{
				idx:     s,
				replica: e.factory(s),
				ch:      make(chan []stream.Update, e.cfg.QueueDepth),
			}
			slot.pending = e.batchBuf()
			e.slots = append(e.slots, slot)
		}
		e.cfg.Shards = n
		e.publishStealSet()
		for s := old; s < n; s++ {
			e.spawn(e.slots[s])
		}
	} else {
		// Fold first; only retire workers once every merge has succeeded,
		// so a failure leaves the engine closable rather than half-torn.
		for s := n; s < old; s++ {
			if err := e.mergeInto(e.slots[s%n].replica, e.slots[s].replica); err != nil {
				e.Close()
				return fmt.Errorf("engine: folding shard %d into %d: %w", s, s%n, err)
			}
		}
		for s := n; s < old; s++ {
			close(e.slots[s].ch)
		}
		// Join the retired workers before dropping their state. Without the
		// join, a retired work-stealing worker parked in its select can wake
		// on a stale buffered hot signal after Resize returns and steal
		// freshly produced batches into a replica that is no longer in any
		// slot — silently dropping those updates. The wait is cheap: the
		// engine is quiesced, so every queue is empty and each worker exits
		// on its next scheduling. (The workers' hot path also checks for a
		// closed own channel before stealing, as a second line of defense.)
		// The join also orders the retired workers' final supervision-field
		// writes before the taint fold below.
		for s := n; s < old; s++ {
			<-e.slots[s].exited
			e.pool.Put(e.slots[s].pending[:0])
			dst := e.slots[s%n]
			dst.tainted = dst.tainted || e.slots[s].tainted
			dst.lost += e.slots[s].lost
			dst.absorbed += e.slots[s].absorbed
		}
		e.slots = e.slots[:n]
		e.cfg.Shards = n
		e.publishStealSet()
	}
	e.resizes++
	return nil
}
