package engine

import (
	"errors"
	"fmt"

	"repro/internal/stream"
)

// Resize changes the shard count to n mid-stream, exactly — the elastic
// scale-up/scale-down operation of the engine.
//
// Linearity makes both directions trivial to prove correct. Scaling up
// splits the work by adding fresh same-seed replicas: a fresh replica is
// the sketch of the zero vector, so merging it at Results adds nothing,
// and subsequent updates routed to it are counted exactly once. Scaling
// down merges: the retired shards' replicas are folded into the survivors
// (replica s joins replica s mod n) behind the quiesce barrier, which is
// the same exact cell-wise sum Results performs. In both directions the
// router immediately re-balances onto the new shard count; because any
// fixed index→shard map yields the same merged sketch, the resized engine's
// final state is byte-identical to an uninterrupted serial ingest.
//
// Resize must be called from the producer goroutine. It quiesces the
// workers (so it is also a checkpoint barrier: a pending Spill replica is
// folded in first), then grows or shrinks the worker pool. On a fold error
// — possible only when factory/merge break the same-seed contract — the
// engine is closed and becomes terminal, and the error is returned.
func (e *Engine[T]) Resize(n int) error {
	if e.done {
		return errors.New("engine: Resize after Results/Close")
	}
	if n < 1 {
		return fmt.Errorf("engine: Resize to %d shards", n)
	}
	if n == e.cfg.Shards {
		return nil
	}
	if err := e.quiesce(); err != nil {
		return err
	}
	old := e.cfg.Shards
	if n > old {
		for s := old; s < n; s++ {
			e.replicas = append(e.replicas, e.factory(s))
			e.chans = append(e.chans, make(chan []stream.Update, e.cfg.QueueDepth))
			e.pending = append(e.pending, e.batchBuf())
			e.exited = append(e.exited, nil)
		}
		e.cfg.Shards = n
		e.publishStealSet()
		for s := old; s < n; s++ {
			e.spawn(s)
		}
	} else {
		// Fold first; only retire workers once every merge has succeeded,
		// so a failure leaves the engine closable rather than half-torn.
		for s := n; s < old; s++ {
			if err := e.merge(e.replicas[s%n], e.replicas[s]); err != nil {
				e.Close()
				return fmt.Errorf("engine: folding shard %d into %d: %w", s, s%n, err)
			}
		}
		for s := n; s < old; s++ {
			close(e.chans[s])
		}
		// Join the retired workers before dropping their state. Without the
		// join, a retired work-stealing worker parked in its select can wake
		// on a stale buffered hot signal after Resize returns and steal
		// freshly produced batches into a replica that is no longer in
		// e.replicas — silently dropping those updates. The wait is cheap:
		// the engine is quiesced, so every queue is empty and each worker
		// exits on its next scheduling. (The workers' hot path also checks
		// for a closed own channel before stealing, as a second line of
		// defense.)
		for s := n; s < old; s++ {
			<-e.exited[s]
			e.pool.Put(e.pending[s][:0])
		}
		e.replicas = e.replicas[:n]
		e.chans = e.chans[:n]
		e.pending = e.pending[:n]
		e.exited = e.exited[:n]
		e.cfg.Shards = n
		e.publishStealSet()
	}
	e.resizes++
	return nil
}
