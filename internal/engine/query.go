package engine

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Query-side parallelism: the ingestion engine shards updates across
// workers; these helpers give the decode/query path the same treatment.
// Multi-level sketches (the Theorem 2 L0 sampler probes O(log n) Lemma 5
// recoverers; graph connectivity probes one sampler per component per
// Borůvka round) decode their parts independently, so a bounded worker pool
// turns query latency from the sum of the per-part decodes into the
// maximum.

// ParallelFor runs fn(i) for every i in [0, n) across a bounded pool of
// worker goroutines. workers <= 0 selects GOMAXPROCS; the pool never
// exceeds n. Work is handed out through an atomic counter, so unevenly
// sized items (levels that early-exit their Chien scan vs. levels that walk
// all of [n]) balance across workers. fn must be safe to call concurrently
// for distinct i; calls for the same i never happen twice. On a single-CPU
// machine (or workers == 1) the loop degrades to a plain serial for loop
// with no goroutine or allocation overhead.
func ParallelFor(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// LevelDecoder is a multi-level linear sketch whose levels decode
// independently — the query-side counterpart of stream.BatchSink. The
// Theorem 2 L0 sampler (*core.L0Sampler) is the canonical implementation:
// Levels reports its subsampling depth and RecoverLevel runs (memoized)
// Lemma 5 recovery on one level. RecoverLevel must be safe for concurrent
// calls with distinct k.
type LevelDecoder interface {
	Levels() int
	RecoverLevel(k int) (map[int]int64, bool)
}

// LevelDecode is one level's decode outcome as reported by RecoverAll.
type LevelDecode struct {
	// Level is the subsampling level index.
	Level int
	// Support maps coordinate -> exact value for a successful decode. The
	// map is owned by the decoder's level and valid until its next
	// mutation.
	Support map[int]int64
	// OK is false when the level reported DENSE.
	OK bool
}

// RecoverAll decodes every level of d concurrently over ParallelFor's
// worker pool and returns the outcomes in level order. Because per-level
// decodes are memoized inside the sketch, RecoverAll doubles as a parallel
// cache warmer: a subsequent Sample/Recover pass on the same unchanged
// sketch answers from the caches without decoding anything — the
// multi-level query path of the sharded engine.
func RecoverAll(d LevelDecoder, workers int) []LevelDecode {
	out := make([]LevelDecode, d.Levels())
	ParallelFor(len(out), workers, func(k int) {
		rec, ok := d.RecoverLevel(k)
		out[k] = LevelDecode{Level: k, Support: rec, OK: ok}
	})
	return out
}
