package engine

import (
	"math/rand/v2"
	"testing"

	"repro/internal/core"
	"repro/internal/countmin"
	"repro/internal/countsketch"
	"repro/internal/distinct"
	"repro/internal/norm"
	"repro/internal/prng"
	"repro/internal/sparse"
	"repro/internal/stream"
)

// TestBatchedHotPathsZeroAlloc pins the PR-2 acceptance criterion across
// every BatchSink the engine drives: after one warm-up call grows the
// per-sketch scratch, steady-state ProcessBatch calls allocate nothing.
// (The L0 sampler is exercised through its sparse levels plus its own
// membership scratch; the Lp sampler covers countsketch.AddBatch and
// norm batch paths end to end.)
func TestBatchedHotPathsZeroAlloc(t *testing.T) {
	const n = 1 << 10
	st := stream.RandomTurnstile(n, 512, 50, rand.New(rand.NewPCG(91, 92)))
	sinks := []struct {
		name string
		sink stream.BatchSink
	}{
		{"countsketch", countsketch.New(16, 6, seeded(1))},
		{"countmin", countmin.New(64, 5, seeded(2))},
		{"distinct", distinct.New(n, 8, seeded(3))},
		{"sparse", sparse.New(n, 8, seeded(4))},
		{"ams", norm.NewAMS(5, 4, seeded(5))},
		{"stable", norm.NewStable(1.4, 20, seeded(6))},
		{"l0sampler", core.NewL0Sampler(core.L0Config{N: n, Delta: 0.2}, seeded(7))},
		{"l0sampler-nested", core.NewL0Sampler(core.L0Config{N: n, Delta: 0.2, NestedLevels: true}, seeded(7))},
		{"lpsampler", core.NewLpSampler(core.LpConfig{P: 1.2, N: n, Eps: 0.3, Delta: 0.3, Copies: 3}, seeded(8))},
	}
	for _, tc := range sinks {
		tc.sink.ProcessBatch(st) // grow scratch
		if got := testing.AllocsPerRun(5, func() { tc.sink.ProcessBatch(st) }); got != 0 {
			t.Errorf("%s: ProcessBatch allocates %v times per call, want 0", tc.name, got)
		}
	}
}

// TestNisanBatchKernelZeroAlloc pins the PRG prefix-stack kernel the L0
// fast path leans on: after the first call allocates the stack, steady-state
// BlockBatch calls allocate nothing — for both the run-structured index
// pattern of the i.i.d. membership path and arbitrary index orders.
func TestNisanBatchKernelZeroAlloc(t *testing.T) {
	g := prng.New(1<<22, seeded(10))
	run := make([]uint64, 16)
	scattered := make([]uint64, 64)
	dst := make([]uint64, 64)
	for i := range run {
		run[i] = 4096 + uint64(i)
	}
	for i := range scattered {
		scattered[i] = uint64(i) * 2654435761
	}
	g.BlockBatch(dst[:len(run)], run) // grow the prefix stack
	for _, idx := range [][]uint64{run, scattered} {
		if got := testing.AllocsPerRun(10, func() { g.BlockBatch(dst[:len(idx)], idx) }); got != 0 {
			t.Errorf("BlockBatch(%d indices) allocates %v times per call, want 0", len(idx), got)
		}
	}
}

// TestShardRoutingBalanced pins the router's mix step: dense small indices —
// the realistic stream domain — must spread across all shards, not collapse
// onto shard 0 (which a raw multiply-shift reduction of the index would do).
func TestShardRoutingBalanced(t *testing.T) {
	for _, shards := range []int{2, 3, 8} {
		e := New(Config{Shards: shards},
			func(int) *countmin.Sketch { return countmin.New(8, 2, seeded(9)) },
			func(dst, src *countmin.Sketch) error { return dst.Merge(src) })
		const n = 1 << 16
		counts := make([]int, shards)
		for i := 0; i < n; i++ {
			counts[e.shardOf(i)]++
		}
		e.Close()
		mean := float64(n) / float64(shards)
		for s, c := range counts {
			if float64(c) < 0.8*mean || float64(c) > 1.2*mean {
				t.Errorf("shards=%d: shard %d owns %d of %d indices (mean %.0f)", shards, s, c, n, mean)
			}
		}
	}
}
