package engine

import (
	"testing"

	"repro/internal/countmin"
	"repro/internal/stream"
)

// zipfish builds a skewed stream: roughly half of all updates hit one hot
// key, the rest spread over [n].
func zipfish(n, length int, hot int, seed uint64) stream.Stream {
	r := seeded(seed)
	st := make(stream.Stream, 0, length)
	for i := 0; i < length; i++ {
		idx := hot
		if i%2 == 1 {
			idx = r.IntN(n)
		}
		st = append(st, stream.Update{Index: idx, Delta: int64(1 + r.IntN(5))})
	}
	return st
}

// TestHotKeyRoutingStaysExact: the skew-aware router changes only placement,
// never answers — a zipf-heavy ingest with hot-key fan-out must agree with
// serial on every coordinate, and the router must actually have detected and
// fanned the hot key.
func TestHotKeyRoutingStaysExact(t *testing.T) {
	const n, length, hotIdx = 512, 40000, 7
	st := zipfish(n, length, hotIdx, 81)

	serial := countmin.New(64, 5, seeded(82))
	st.Feed(serial)

	eng := New(Config{
		Shards: 4, BatchSize: 64,
		HotKeyRouting: true, HotKeyInterval: 1024, HotKeyPhi: 0.1,
	}, func(int) *countmin.Sketch { return countmin.New(64, 5, seeded(82)) },
		func(dst, src *countmin.Sketch) error { return dst.Merge(src) })
	eng.Feed(st)

	stats := eng.Stats()
	if stats.HotRouted == 0 {
		t.Fatalf("router never fanned the hot key: %+v", stats)
	}
	if stats.HotKeys == 0 {
		t.Fatalf("hot set empty after a zipf ingest: %+v", stats)
	}

	merged, err := eng.Results()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if got, want := merged.QueryMedian(uint64(i)), serial.QueryMedian(uint64(i)); got != want {
			t.Fatalf("coordinate %d: hot-routed %d != serial %d", i, got, want)
		}
	}
}

// TestHotKeyRoutingSpreadsLoad: with a single ultra-hot key, static routing
// pins all mass on one replica while the skew-aware router spreads it. The
// per-replica count-min mass is observable after a quiesce (replicas are
// safe to read from the producer goroutine), so assert the fan-out
// directly: every shard's replica must have absorbed part of the hot key.
func TestHotKeyRoutingSpreadsLoad(t *testing.T) {
	const shards = 4
	mkStream := func() stream.Stream {
		st := make(stream.Stream, 0, 1<<14)
		for i := 0; i < 1<<14; i++ {
			st = append(st, stream.Update{Index: 3, Delta: 1})
		}
		return st
	}
	factory := func(int) *countmin.Sketch { return countmin.New(32, 4, seeded(83)) }
	merge := func(dst, src *countmin.Sketch) error { return dst.Merge(src) }

	replicasWithMass := func(cfg Config) int {
		eng := New(cfg, factory, merge)
		defer eng.Close()
		eng.Feed(mkStream())
		if err := eng.quiesce(); err != nil {
			t.Fatal(err)
		}
		touched := 0
		for _, slot := range eng.slots {
			if slot.replica.QueryMedian(3) > 0 {
				touched++
			}
		}
		return touched
	}

	static := replicasWithMass(Config{Shards: shards, BatchSize: 64})
	if static != 1 {
		t.Fatalf("static routing touched %d replicas for one key, want 1", static)
	}
	fanned := replicasWithMass(Config{
		Shards: shards, BatchSize: 64,
		HotKeyRouting: true, HotKeyInterval: 512, HotKeyPhi: 0.25,
	})
	if fanned != shards {
		t.Fatalf("skew-aware routing touched %d/%d replicas for the hot key", fanned, shards)
	}
}

// TestHotKeyRoutingAdapts: a key that cools off leaves the hot set at the
// next refresh, so fan-out follows the traffic.
func TestHotKeyRoutingAdapts(t *testing.T) {
	r := newHotRouter(Config{HotKeyRouting: true, HotKeyInterval: 256, HotKeyPhi: 0.2})
	// Phase 1: key 9 dominates → hot after the first refresh.
	for i := 0; i < 512; i++ {
		r.route(9, 4)
	}
	if r.hotKeys == 0 || r.hotRouted == 0 {
		t.Fatalf("hot phase not detected: hotKeys=%d hotRouted=%d", r.hotKeys, r.hotRouted)
	}
	// Phase 2: traffic goes uniform over many keys → hot set empties.
	for i := 0; i < 1024; i++ {
		r.route(1000+i%503, 4)
	}
	if r.hotKeys != 0 {
		t.Fatalf("hot set did not decay after traffic cooled: %d keys", r.hotKeys)
	}
}
