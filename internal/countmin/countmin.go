// Package countmin implements the count-min sketch and the count-median
// estimator of Cormode and Muthukrishnan ("An improved data stream summary:
// the count-min sketch and its applications", J. Algorithms 2005) — reference
// [8] of the paper. §4.4 cites count-median as the classical O(φ^{-1} log² n)
// L1 heavy-hitters algorithm that the paper's lower bound (Theorem 9) shows
// optimal; we use it as the baseline against the count-sketch-based Lp heavy
// hitters.
//
// Count-min answers point queries with one-sided error in the strict
// turnstile model: min_j cells[j][h_j(i)] >= x_i always, and exceeds x_i by
// more than eps*||x||_1 with probability at most delta for width e/eps and
// depth ln(1/delta). Count-median replaces min with median and works in the
// general update model (two-sided error).
package countmin

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"

	"repro/internal/codec"
	"repro/internal/hash"
	"repro/internal/kernel"
	"repro/internal/stream"
)

// Sketch is a count-min / count-median structure (the cells are shared; the
// two estimators read them differently).
type Sketch struct {
	width uint64
	depth int
	h     *hash.FlatFamily
	cells [][]int64

	// Batch scratch (key/delta views of the batch, per-row kernel buckets,
	// scatter-fold state), grown on demand: steady-state ProcessBatch calls
	// allocate nothing.
	scratchIdx []uint64
	scratchDel []int64
	scratchBkt []uint64
	scatter    kernel.ScatterScratch
}

// New creates a sketch with the given width (buckets per row) and depth
// (rows). Width Theta(1/eps) and depth Theta(log 1/delta) give the classical
// guarantees.
func New(width, depth int, r *rand.Rand) *Sketch {
	if width < 1 {
		width = 1
	}
	if depth < 1 {
		depth = 1
	}
	s := &Sketch{
		width: uint64(width),
		depth: depth,
		h:     hash.NewFlatFamily(depth, 2, r),
		cells: make([][]int64, depth),
	}
	for j := range s.cells {
		s.cells[j] = make([]int64, width)
	}
	return s
}

// NewForGuarantee sizes the sketch for point-query error eps*||x||_1 with
// failure probability delta.
func NewForGuarantee(eps, delta float64, r *rand.Rand) *Sketch {
	width := int(math.Ceil(math.E / eps))
	depth := int(math.Ceil(math.Log(1 / delta)))
	return New(width, depth, r)
}

// Add applies x_i += delta.
func (s *Sketch) Add(i uint64, delta int64) {
	for j := 0; j < s.depth; j++ {
		s.cells[j][s.h.Bucket(j, i, s.width)] += delta
	}
}

// Process implements stream.Sink.
func (s *Sketch) Process(u stream.Update) { s.Add(uint64(u.Index), u.Delta) }

// ProcessBatch implements stream.BatchSink: the batch's keys are extracted
// once, then each row runs the flat BucketBatch kernel (coefficients in
// registers, Lemire reduction, no divide) and folds the deltas into its
// cells through the kernel.ScatterAdd primitive (prefetched, batch-order).
// Equivalent to repeated Process calls; steady-state calls allocate nothing.
func (s *Sketch) ProcessBatch(batch []stream.Update) {
	n := len(batch)
	idx := stream.Keys(batch, &s.scratchIdx)
	del := stream.Int64Deltas(batch, &s.scratchDel)
	if cap(s.scratchBkt) < n {
		s.scratchBkt = make([]uint64, n)
	}
	bkt := s.scratchBkt[:n]
	for j := 0; j < s.depth; j++ {
		s.h.BucketBatch(j, s.width, idx, bkt)
		kernel.ScatterAddI64(&s.scatter, s.cells[j], bkt, del)
	}
}

// Merge adds another sketch's cells into this one (sketch linearity). Both
// must be same-seed replicas of identical shape; a mismatch is reported as an
// error and leaves the receiver untouched.
func (s *Sketch) Merge(other *Sketch) error {
	if other == nil {
		return fmt.Errorf("countmin: %w", codec.ErrNilMerge)
	}
	if s.width != other.width || s.depth != other.depth {
		return fmt.Errorf("countmin: merging sketches of different shapes: %w", codec.ErrConfigMismatch)
	}
	if !s.h.Equal(other.h) {
		return fmt.Errorf("countmin: %w", codec.ErrSeedMismatch)
	}
	for j := range s.cells {
		row, orow := s.cells[j], other.cells[j]
		for k := range row {
			row[k] += orow[k]
		}
	}
	return nil
}

// QueryMin returns the count-min point estimate: an upper bound on x_i in the
// strict turnstile model.
func (s *Sketch) QueryMin(i uint64) int64 {
	min := int64(math.MaxInt64)
	for j := 0; j < s.depth; j++ {
		if c := s.cells[j][s.h.Bucket(j, i, s.width)]; c < min {
			min = c
		}
	}
	return min
}

// QueryMedian returns the count-median point estimate, valid for general
// updates (two-sided error eps*||x||_1 w.h.p. in depth).
func (s *Sketch) QueryMedian(i uint64) int64 {
	ests := make([]int64, s.depth)
	for j := 0; j < s.depth; j++ {
		ests[j] = s.cells[j][s.h.Bucket(j, i, s.width)]
	}
	sort.Slice(ests, func(a, b int) bool { return ests[a] < ests[b] })
	if s.depth%2 == 1 {
		return ests[s.depth/2]
	}
	return (ests[s.depth/2-1] + ests[s.depth/2]) / 2
}

// HeavyHitters returns every i in [n] whose count-min estimate reaches
// phi*||x||_1 — in the strict turnstile model this set contains all true
// phi-heavy hitters (one-sided error guarantees no false negatives).
func (s *Sketch) HeavyHitters(n int, phi float64, l1 int64) []int {
	thresh := int64(math.Ceil(phi * float64(l1)))
	var out []int
	for i := 0; i < n; i++ {
		if s.QueryMin(uint64(i)) >= thresh {
			out = append(out, i)
		}
	}
	return out
}

// L1 returns the exact ||x||_1-preserving row sum in the strict turnstile
// model (every row sums to sum_i x_i; nonnegative final vectors make this
// ||x||_1).
func (s *Sketch) L1() int64 {
	var sum int64
	for _, c := range s.cells[0] {
		sum += c
	}
	return sum
}

// SpaceBits reports cells plus seeds at 64 bits per word.
func (s *Sketch) SpaceBits() int64 {
	return int64(s.depth)*int64(s.width)*64 + s.h.SpaceBits()
}

// AppendState writes the cell contents row-major into a codec encoder.
func (s *Sketch) AppendState(e *codec.Encoder) {
	for _, row := range s.cells {
		for _, c := range row {
			e.I64(c)
		}
	}
}

// RestoreState replaces the cell contents from a codec decoder, keeping the
// receiver's shape and hash functions.
func (s *Sketch) RestoreState(d *codec.Decoder) {
	for _, row := range s.cells {
		for k := range row {
			row[k] = d.I64()
		}
	}
}
