package countmin

import (
	"math/rand/v2"
	"testing"

	"repro/internal/stream"
)

func TestQueryMinUpperBound(t *testing.T) {
	// In the strict turnstile model count-min never underestimates.
	r := rand.New(rand.NewPCG(1, 1))
	const n = 200
	st := stream.StrictTurnstile(n, 3000, 10, r)
	truth := st.Apply(n)
	s := New(64, 5, r)
	st.Feed(s)
	for i := 0; i < n; i++ {
		if got := s.QueryMin(uint64(i)); got < truth.Get(i) {
			t.Fatalf("count-min underestimated x_%d: %d < %d", i, got, truth.Get(i))
		}
	}
}

func TestQueryMinErrorBound(t *testing.T) {
	// Overestimate should stay below eps*||x||_1 for most coordinates with
	// width e/eps.
	r := rand.New(rand.NewPCG(2, 2))
	const n = 500
	st := stream.StrictTurnstile(n, 4000, 10, r)
	truth := st.Apply(n)
	l1 := int64(0)
	for _, v := range truth.Coords() {
		l1 += v
	}
	eps := 0.02
	s := NewForGuarantee(eps, 0.01, r)
	st.Feed(s)
	bad := 0
	for i := 0; i < n; i++ {
		if float64(s.QueryMin(uint64(i))-truth.Get(i)) > eps*float64(l1) {
			bad++
		}
	}
	if bad > n/20 {
		t.Errorf("%d/%d coordinates exceed the eps*L1 error bound", bad, n)
	}
}

func TestQueryMedianGeneralUpdates(t *testing.T) {
	// Median estimator works with negative coordinates.
	r := rand.New(rand.NewPCG(3, 3))
	const n = 300
	st := stream.RandomTurnstile(n, 2000, 5, r)
	truth := st.Apply(n)
	s := New(128, 9, r)
	st.Feed(s)
	var l1 float64
	for _, v := range truth.Coords() {
		if v < 0 {
			l1 -= float64(v)
		} else {
			l1 += float64(v)
		}
	}
	bad := 0
	for i := 0; i < n; i++ {
		diff := float64(s.QueryMedian(uint64(i)) - truth.Get(i))
		if diff < 0 {
			diff = -diff
		}
		if diff > 0.05*l1 {
			bad++
		}
	}
	if bad > n/10 {
		t.Errorf("%d/%d median estimates outside 5%% of L1", bad, n)
	}
}

func TestHeavyHittersContainsTruth(t *testing.T) {
	r := rand.New(rand.NewPCG(4, 4))
	const n = 256
	s := New(128, 7, r)
	// light noise + two heavies
	var updates stream.Stream
	for i := 0; i < n; i++ {
		updates = append(updates, stream.Update{Index: i, Delta: 1})
	}
	updates = append(updates, stream.Update{Index: 3, Delta: 500}, stream.Update{Index: 77, Delta: 400})
	updates.Feed(s)
	l1 := s.L1()
	hh := s.HeavyHitters(n, 0.2, l1)
	found3, found77 := false, false
	for _, i := range hh {
		if i == 3 {
			found3 = true
		}
		if i == 77 {
			found77 = true
		}
	}
	if !found3 || !found77 {
		t.Fatalf("heavy hitters missing: %v", hh)
	}
	// Nothing with x_i <= phi/2 * L1 should appear (w.h.p.) — here every
	// non-heavy coordinate has x_i = 1, far below the threshold band.
	for _, i := range hh {
		if i != 3 && i != 77 {
			t.Errorf("spurious heavy hitter %d", i)
		}
	}
}

func TestL1RowSum(t *testing.T) {
	r := rand.New(rand.NewPCG(5, 5))
	s := New(32, 3, r)
	s.Add(1, 10)
	s.Add(2, 5)
	s.Add(1, -3)
	if got := s.L1(); got != 12 {
		t.Fatalf("L1 = %d, want 12", got)
	}
}

func TestSpaceBits(t *testing.T) {
	r := rand.New(rand.NewPCG(6, 6))
	s := New(32, 4, r)
	if s.SpaceBits() < 32*4*64 {
		t.Error("space accounting too small")
	}
}

func TestClampedParams(t *testing.T) {
	r := rand.New(rand.NewPCG(7, 7))
	s := New(0, 0, r)
	s.Add(0, 3)
	if s.QueryMin(0) != 3 {
		t.Error("1x1 sketch must hold the exact sum")
	}
}

func BenchmarkAdd(b *testing.B) {
	s := New(512, 5, rand.New(rand.NewPCG(1, 1)))
	for i := 0; i < b.N; i++ {
		s.Add(uint64(i), 1)
	}
}

func TestMergeAndBatchMatchSerial(t *testing.T) {
	mk := func() *Sketch { return New(64, 5, rand.New(rand.NewPCG(41, 42))) }
	st := stream.RandomTurnstile(300, 3000, 20, rand.New(rand.NewPCG(43, 44)))
	whole, a, b := mk(), mk(), mk()
	st.FeedBatch(128, whole)
	st[:1500].Feed(a)
	st[1500:].Feed(b)
	if err := a.Merge(b); err != nil {
		t.Fatalf("same-seed merge failed: %v", err)
	}
	for i := 0; i < 300; i++ {
		if a.QueryMedian(uint64(i)) != whole.QueryMedian(uint64(i)) {
			t.Fatalf("coordinate %d: merged/batched states diverged", i)
		}
	}
	if err := a.Merge(New(64, 5, rand.New(rand.NewPCG(45, 46)))); err == nil {
		t.Fatal("expected error merging differently seeded sketches")
	}
}
