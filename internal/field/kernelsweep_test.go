package field

import (
	"math/rand/v2"
	"testing"

	"repro/internal/kernel"
)

// sweepVariants runs fn once under every kernel variant selectable on this
// machine, restoring the startup selection afterwards. The scalar Eval/Next
// paths inside fn are not dispatched, so they serve as the fixed reference.
func sweepVariants(t *testing.T, fn func(t *testing.T)) {
	prev := kernel.Active()
	t.Cleanup(func() {
		if err := kernel.Select(prev); err != nil {
			t.Fatalf("restoring kernel variant %q: %v", prev, err)
		}
	})
	for _, name := range kernel.Variants() {
		if err := kernel.Select(name); err != nil {
			t.Fatalf("Select(%q): %v", name, err)
		}
		t.Run(name, fn)
	}
}

func TestEvalBatchVariantsMatchEval(t *testing.T) {
	r := rand.New(rand.NewPCG(41, 1))
	polys := []Poly{
		nil,
		{New(r.Uint64())},
		{New(r.Uint64()), New(r.Uint64())},
		make(Poly, 7),
		make(Poly, 12),
	}
	for _, p := range polys {
		for i := range p {
			p[i] = New(r.Uint64())
		}
	}
	xs := make([]Elem, 131)
	for i := range xs {
		xs[i] = New(r.Uint64())
	}
	sweepVariants(t, func(t *testing.T) {
		for _, p := range polys {
			out := make([]Elem, len(xs))
			p.EvalBatch(xs, out)
			for i, x := range xs {
				if want := p.Eval(x); out[i] != want {
					t.Fatalf("deg %d: EvalBatch[%d] = %#x, Eval = %#x", p.Degree(), i, out[i], want)
				}
			}
		}
	})
}

func TestNextBlockVariantsMatchNext(t *testing.T) {
	r := rand.New(rand.NewPCG(42, 1))
	for _, deg := range []int{0, 1, 2, 4, 8, 15} {
		p := make(Poly, deg+1)
		for i := range p {
			p[i] = New(r.Uint64())
		}
		p[deg] = Add(p[deg], 1) // keep the leading coefficient nonzero
		sweepVariants(t, func(t *testing.T) {
			ref := NewFDStepper(p, 3)
			blk := NewFDStepper(p, 3)
			// Odd-sized chunks so block boundaries land everywhere.
			buf := make([]Elem, 7)
			pos := 0
			for pos < 100 {
				n := min(len(buf), 100-pos)
				blk.NextBlock(buf[:n])
				for i := 0; i < n; i++ {
					if want := ref.Next(); buf[i] != want {
						t.Fatalf("deg %d: NextBlock value %d = %#x, Next = %#x", deg, pos+i, buf[i], want)
					}
				}
				pos += n
			}
		})
	}
}
