package field

import (
	"encoding/binary"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func randPoly(r *rand.Rand, deg int) Poly {
	p := make(Poly, deg+1)
	for i := range p {
		p[i] = New(r.Uint64())
	}
	// Force the exact degree so Degree() = deg.
	for p[deg] == 0 {
		p[deg] = New(r.Uint64())
	}
	return p
}

// TestPropertyFDStepperMatchesEval pins the finite-difference stepper
// bit-identical to scalar Horner evaluation: for random polynomials of every
// degree the Chien scan uses, stepping through a run of consecutive points
// returns exactly Poly.Eval at each one — including runs that wrap the field
// modulus and the zero and constant polynomials.
func TestPropertyFDStepperMatchesEval(t *testing.T) {
	f := func(seed uint64, degRaw uint8, x0Raw uint64) bool {
		r := rand.New(rand.NewPCG(seed, 999))
		deg := int(degRaw) % 16
		p := randPoly(r, deg)
		x0 := New(x0Raw)
		fd := NewFDStepper(p, x0)
		x := x0
		for i := 0; i < 200; i++ {
			if got, want := fd.Next(), p.Eval(x); got != want {
				t.Logf("deg %d point %d: fd %d, eval %d", deg, i, got, want)
				return false
			}
			x = Add(x, 1)
		}
		// Reset must reposition exactly, reusing the table.
		fd.Reset(p, x0)
		return fd.Next() == p.Eval(x0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
	// Degenerate polynomials.
	for _, p := range []Poly{nil, {}, {0}, {7}, {0, 0}} {
		fd := NewFDStepper(p, 3)
		for i := 0; i < 5; i++ {
			if got, want := fd.Next(), p.Eval(New(uint64(3+i))); got != want {
				t.Errorf("poly %v point %d: fd %d, eval %d", p, i, got, want)
			}
		}
	}
	// A run crossing the modulus: x0 + i wraps to 0, 1, ...
	r := rand.New(rand.NewPCG(5, 5))
	p := randPoly(r, 4)
	x0 := Elem(Modulus - 3)
	fd := NewFDStepper(p, x0)
	x := x0
	for i := 0; i < 10; i++ {
		if got, want := fd.Next(), p.Eval(x); got != want {
			t.Fatalf("wrap point %d: fd %d, eval %d", i, got, want)
		}
		x = Add(x, 1)
	}
}

// TestPropertyEvalBatchMatchesEval pins the transposed 4-wide multi-point
// kernel bit-identical to scalar evaluation for every batch length
// (exercising both the blocked groups and the scalar tail) and degree.
func TestPropertyEvalBatchMatchesEval(t *testing.T) {
	f := func(seed uint64, degRaw, lenRaw uint8) bool {
		r := rand.New(rand.NewPCG(seed, 1234))
		deg := int(degRaw) % 12
		n := int(lenRaw) % 23
		p := randPoly(r, deg)
		xs := make([]Elem, n)
		for i := range xs {
			xs[i] = New(r.Uint64())
		}
		out := make([]Elem, n)
		p.EvalBatch(xs, out)
		for i, x := range xs {
			if out[i] != p.Eval(x) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestPropertyVandermondeSolveMatchesGaussian: the O(e²) structured solver
// must return exactly the unique solution of the transposed Vandermonde
// system — cross-checked against forward substitution into the system and
// against the generic Gaussian SolveLinear it replaces.
func TestPropertyVandermondeSolveMatchesGaussian(t *testing.T) {
	f := func(seed uint64, eRaw uint8) bool {
		r := rand.New(rand.NewPCG(seed, 4321))
		e := 1 + int(eRaw)%12
		// Distinct nonzero points (the decoded support locations a_i = i+1).
		seen := map[Elem]bool{}
		points := make([]Elem, 0, e)
		for len(points) < e {
			a := New(uint64(r.IntN(1<<20)) + 1)
			if a != 0 && !seen[a] {
				seen[a] = true
				points = append(points, a)
			}
		}
		truth := make([]Elem, e)
		for t := range truth {
			truth[t] = New(r.Uint64())
		}
		// y_j = Σ_t truth_t · a_t^j — the syndrome prefix of the vector.
		y := make([]Elem, e)
		for j := 0; j < e; j++ {
			for t := range points {
				y[j] = Add(y[j], Mul(truth[t], Pow(points[t], uint64(j))))
			}
		}
		var vs VandermondeSolver
		out := make([]Elem, e)
		if !vs.Solve(points, y, out) {
			return false
		}
		for t := range truth {
			if out[t] != truth[t] {
				return false
			}
		}
		// Bit-identity with the generic Gaussian path.
		mat := make([][]Elem, e)
		yy := make([]Elem, e)
		for j := 0; j < e; j++ {
			mat[j] = make([]Elem, e)
			for t, a := range points {
				mat[j][t] = Pow(a, uint64(j))
			}
			yy[j] = y[j]
		}
		gauss, ok := SolveLinear(mat, yy)
		if !ok {
			return false
		}
		for t := range gauss {
			if out[t] != gauss[t] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestVandermondeSolveSingular: coincident points make the system singular
// and must be reported, not mis-solved.
func TestVandermondeSolveSingular(t *testing.T) {
	var vs VandermondeSolver
	out := make([]Elem, 2)
	if vs.Solve([]Elem{5, 5}, []Elem{1, 2}, out) {
		t.Error("repeated points must be singular")
	}
	if !vs.Solve(nil, nil, nil) {
		t.Error("empty system is trivially solvable")
	}
}

// bmRoundTrip builds the 2s power-sum syndromes of an e-sparse vector,
// runs Berlekamp-Massey, and checks the result is exactly the locator
// polynomial Π (1 - a_i x): degree e, constant term 1, and the reversed
// polynomial vanishing precisely on the support points. It returns false
// only on a genuine BM failure.
func bmRoundTrip(t *testing.T, n, s int, support map[int]int64) bool {
	t.Helper()
	synd := make([]Elem, 2*s)
	for j := range synd {
		for i, v := range support {
			synd[j] = Add(synd[j], Mul(FromInt64(v), Pow(New(uint64(i)+1), uint64(j))))
		}
	}
	loc := BerlekampMassey(synd)
	e := len(support)
	if loc.Degree() != e {
		t.Logf("n=%d s=%d |supp|=%d: locator degree %d", n, s, e, loc.Degree())
		return false
	}
	if e > 0 && loc[0] != 1 {
		t.Logf("locator constant term %d, want 1", loc[0])
		return false
	}
	rev := loc.Reverse()
	roots := 0
	for i := 0; i < n; i++ {
		isRoot := rev.Eval(New(uint64(i)+1)) == 0
		if isRoot != (support[i] != 0) {
			t.Logf("position %d: root=%v, in support=%v", i, isRoot, support[i] != 0)
			return false
		}
		if isRoot {
			roots++
		}
	}
	return roots == e
}

// TestPropertyBerlekampMasseyRoundTrip: for random s-sparse vectors the
// minimal connection polynomial of the syndrome sequence is exactly the
// support locator — the identity Lemma 5 recovery rests on.
func TestPropertyBerlekampMasseyRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 0xB512))
		n := 16 + r.IntN(500)
		s := 1 + r.IntN(10)
		e := r.IntN(s + 1)
		support := map[int]int64{}
		for len(support) < e {
			v := int64(r.IntN(2000)) - 1000
			if v != 0 {
				support[r.IntN(n)] = v
			}
		}
		return bmRoundTrip(t, n, s, support)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// FuzzBerlekampMassey feeds adversarial support sets (positions and values
// decoded from raw bytes, including repeated positions, canceling values and
// boundary magnitudes) through the same round trip.
func FuzzBerlekampMassey(f *testing.F) {
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0, 0, 0, 5})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15})
	f.Add([]byte{255, 255, 255, 255, 255, 255, 255, 255, 255, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		const n, s = 256, 8
		support := map[int]int64{}
		for len(data) >= 3 && len(support) < s {
			pos := int(binary.LittleEndian.Uint16(data)) % n
			val := int64(int8(data[2]))
			data = data[3:]
			support[pos] += val
		}
		for i, v := range support {
			if v == 0 {
				delete(support, i)
			}
		}
		if !bmRoundTrip(t, n, s, support) {
			t.Errorf("round trip failed for support %v", support)
		}
	})
}
