package field

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func elemGen(r *rand.Rand) Elem { return New(r.Uint64()) }

func TestReduceCanonical(t *testing.T) {
	cases := []struct {
		in   uint64
		want Elem
	}{
		{0, 0},
		{1, 1},
		{Modulus, 0},
		{Modulus + 1, 1},
		{2 * Modulus, 0},
		{^uint64(0), New(^uint64(0))},
	}
	for _, c := range cases {
		got := New(c.in)
		if uint64(got) >= Modulus {
			t.Fatalf("New(%d) = %d not canonical", c.in, got)
		}
		if got != c.want {
			t.Errorf("New(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestAddSubInverse(t *testing.T) {
	f := func(x, y uint64) bool {
		a, b := New(x), New(y)
		return Sub(Add(a, b), b) == a && Add(Sub(a, b), b) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNeg(t *testing.T) {
	f := func(x uint64) bool {
		a := New(x)
		return Add(a, Neg(a)) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMulCommutativeAssociativeDistributive(t *testing.T) {
	f := func(x, y, z uint64) bool {
		a, b, c := New(x), New(y), New(z)
		if Mul(a, b) != Mul(b, a) {
			return false
		}
		if Mul(Mul(a, b), c) != Mul(a, Mul(b, c)) {
			return false
		}
		return Mul(a, Add(b, c)) == Add(Mul(a, b), Mul(a, c))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMulAgainstBigIntSemantics(t *testing.T) {
	// Cross-check Mul against repeated addition on small operands and
	// against known identities on large ones.
	r := rand.New(rand.NewPCG(1, 2))
	for i := 0; i < 1000; i++ {
		a := Elem(r.Uint64N(1 << 20))
		b := Elem(r.Uint64N(1 << 20))
		want := New(uint64(a) * uint64(b)) // fits in 40 bits, no overflow
		if got := Mul(a, b); got != want {
			t.Fatalf("Mul(%d,%d) = %d, want %d", a, b, got, want)
		}
	}
	// 2^61 = 1 (mod Modulus) so Mul(2^60, 2) must equal 1.
	if got := Mul(Elem(1)<<60, 2); got != 1 {
		t.Fatalf("2^61 mod p = %d, want 1", got)
	}
}

func TestInv(t *testing.T) {
	r := rand.New(rand.NewPCG(3, 4))
	for i := 0; i < 500; i++ {
		a := elemGen(r)
		if a == 0 {
			continue
		}
		if Mul(a, Inv(a)) != 1 {
			t.Fatalf("Inv(%d) failed", a)
		}
	}
	if Inv(0) != 0 {
		t.Error("Inv(0) must return 0")
	}
}

func TestPow(t *testing.T) {
	if Pow(3, 0) != 1 {
		t.Error("a^0 != 1")
	}
	if Pow(0, 0) != 1 {
		t.Error("0^0 convention should be 1")
	}
	// Fermat: a^(p-1) = 1
	r := rand.New(rand.NewPCG(5, 6))
	for i := 0; i < 50; i++ {
		a := elemGen(r)
		if a == 0 {
			continue
		}
		if Pow(a, Modulus-1) != 1 {
			t.Fatalf("Fermat failed for %d", a)
		}
	}
}

func TestFromToInt64RoundTrip(t *testing.T) {
	f := func(v int32) bool {
		return FromInt64(int64(v)).ToInt64() == int64(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	big := []int64{1 << 59, -(1 << 59), 0, 1, -1}
	for _, v := range big {
		if FromInt64(v).ToInt64() != v {
			t.Errorf("round trip failed for %d", v)
		}
	}
}

func TestFromInt64Linearity(t *testing.T) {
	f := func(a, b int32) bool {
		return Add(FromInt64(int64(a)), FromInt64(int64(b))) == FromInt64(int64(a)+int64(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPolyEval(t *testing.T) {
	// p(x) = 2 + 3x + x^2 at x=5: 2+15+25 = 42
	p := Poly{2, 3, 1}
	if got := p.Eval(5); got != 42 {
		t.Fatalf("Eval = %d, want 42", got)
	}
	var zero Poly
	if zero.Eval(17) != 0 {
		t.Error("zero poly must evaluate to 0")
	}
	if zero.Degree() != -1 {
		t.Error("zero poly degree must be -1")
	}
}

func TestPolyReverseRootRelation(t *testing.T) {
	// roots of p at a  <=>  roots of Reverse(p) at 1/a
	r := rand.New(rand.NewPCG(7, 8))
	for trial := 0; trial < 50; trial++ {
		// p = (1 - a x)(1 - b x)
		a, b := Elem(r.Uint64N(1000)+1), Elem(r.Uint64N(1000)+1002)
		p := Poly{1, Neg(Add(a, b)), Mul(a, b)}
		rev := p.Reverse()
		if rev.Eval(a) != 0 || rev.Eval(b) != 0 {
			t.Fatalf("Reverse must vanish at a=%d b=%d", a, b)
		}
		if rev.Eval(Add(b, 1)) == 0 {
			t.Fatalf("Reverse has spurious root")
		}
	}
}

// lfsrSequence generates a sequence satisfying the connection polynomial c
// from initial state.
func lfsrSequence(c Poly, init []Elem, n int) []Elem {
	s := make([]Elem, n)
	copy(s, init)
	l := c.Degree()
	for j := l; j < n; j++ {
		var acc Elem
		for k := 1; k <= l; k++ {
			acc = Add(acc, Mul(c[k], s[j-k]))
		}
		s[j] = Neg(acc)
	}
	return s
}

func TestBerlekampMasseyRecoversLFSR(t *testing.T) {
	r := rand.New(rand.NewPCG(9, 10))
	for trial := 0; trial < 100; trial++ {
		l := 1 + r.IntN(8)
		c := make(Poly, l+1)
		c[0] = 1
		for i := 1; i <= l; i++ {
			c[i] = Elem(r.Uint64N(1 << 30))
		}
		c[l] = Elem(r.Uint64N(1<<30) + 1) // ensure degree exactly l
		init := make([]Elem, l)
		anyNZ := false
		for i := range init {
			init[i] = Elem(r.Uint64N(1 << 30))
			if init[i] != 0 {
				anyNZ = true
			}
		}
		if !anyNZ {
			init[0] = 1
		}
		s := lfsrSequence(c, init, 3*l+2)
		got := BerlekampMassey(s)
		// The recovered polynomial must annihilate the sequence.
		gl := got.Degree()
		if gl > l {
			t.Fatalf("BM degree %d exceeds true degree %d", gl, l)
		}
		for j := gl; j < len(s); j++ {
			d := s[j]
			for k := 1; k <= gl; k++ {
				d = Add(d, Mul(got[k], s[j-k]))
			}
			if d != 0 {
				t.Fatalf("BM output does not annihilate sequence at %d", j)
			}
		}
	}
}

func TestBerlekampMasseySyndromeLocator(t *testing.T) {
	// Syndromes of a sparse vector: BM must return the locator polynomial.
	r := rand.New(rand.NewPCG(11, 12))
	for trial := 0; trial < 50; trial++ {
		e := 1 + r.IntN(6)
		pos := map[uint64]bool{}
		for len(pos) < e {
			pos[r.Uint64N(1000)+1] = true
		}
		type entry struct {
			a Elem
			v Elem
		}
		var entries []entry
		for p := range pos {
			entries = append(entries, entry{Elem(p), Elem(r.Uint64N(1<<40) + 1)})
		}
		n := 2 * e
		synd := make([]Elem, n)
		for j := 0; j < n; j++ {
			var s Elem
			for _, en := range entries {
				s = Add(s, Mul(en.v, Pow(en.a, uint64(j))))
			}
			synd[j] = s
		}
		loc := BerlekampMassey(synd)
		if loc.Degree() != e {
			t.Fatalf("locator degree %d, want %d", loc.Degree(), e)
		}
		rev := loc.Reverse()
		for _, en := range entries {
			if rev.Eval(en.a) != 0 {
				t.Fatalf("locator missing root at %d", en.a)
			}
		}
	}
}

func TestBerlekampMasseyZero(t *testing.T) {
	s := make([]Elem, 10)
	c := BerlekampMassey(s)
	if c.Degree() != 0 {
		t.Fatalf("BM on zero sequence: degree %d, want 0", c.Degree())
	}
}

func TestSolveLinear(t *testing.T) {
	// 2x + y = 5 ; x + 3y = 10  ->  x = 1, y = 3
	a := [][]Elem{{2, 1}, {1, 3}}
	y := []Elem{5, 10}
	x, ok := SolveLinear(a, y)
	if !ok || x[0] != 1 || x[1] != 3 {
		t.Fatalf("SolveLinear = %v ok=%v, want [1 3]", x, ok)
	}
}

func TestSolveLinearSingular(t *testing.T) {
	a := [][]Elem{{1, 2}, {2, 4}}
	y := []Elem{1, 2}
	if _, ok := SolveLinear(a, y); ok {
		t.Fatal("singular system must report failure")
	}
}

func TestSolveLinearVandermonde(t *testing.T) {
	r := rand.New(rand.NewPCG(13, 14))
	for trial := 0; trial < 30; trial++ {
		e := 1 + r.IntN(6)
		alphas := map[uint64]bool{}
		for len(alphas) < e {
			alphas[r.Uint64N(100000)+1] = true
		}
		var as []Elem
		for a := range alphas {
			as = append(as, Elem(a))
		}
		vals := make([]Elem, e)
		for i := range vals {
			vals[i] = Elem(r.Uint64N(1 << 50))
		}
		// y_j = sum_i vals[i] * as[i]^j
		mat := make([][]Elem, e)
		y := make([]Elem, e)
		for j := 0; j < e; j++ {
			mat[j] = make([]Elem, e)
			for i := 0; i < e; i++ {
				mat[j][i] = Pow(as[i], uint64(j))
				y[j] = Add(y[j], Mul(vals[i], mat[j][i]))
			}
		}
		got, ok := SolveLinear(mat, y)
		if !ok {
			t.Fatal("Vandermonde solve failed")
		}
		for i := range vals {
			if got[i] != vals[i] {
				t.Fatalf("value mismatch at %d", i)
			}
		}
	}
}

func BenchmarkMul(b *testing.B) {
	x, y := Elem(123456789123), Elem(987654321987)
	for i := 0; i < b.N; i++ {
		x = Mul(x, y)
	}
	_ = x
}

func BenchmarkInv(b *testing.B) {
	x := Elem(123456789123)
	for i := 0; i < b.N; i++ {
		x = Inv(x + 1)
	}
	_ = x
}
