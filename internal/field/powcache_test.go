package field

import (
	"math/rand/v2"
	"testing"
)

// TestPowCacheMatchesPow: the square-table exponentiation is exactly the
// ladder Pow for every exponent shape — small indices, random 64-bit
// exponents, and the boundary cases 0 and 1.
func TestPowCacheMatchesPow(t *testing.T) {
	r := rand.New(rand.NewPCG(71, 72))
	for trial := 0; trial < 50; trial++ {
		base := New(r.Uint64())
		pc := NewPowCache(base)
		if pc.Base() != base {
			t.Fatalf("Base() = %d, want %d", pc.Base(), base)
		}
		for _, e := range []uint64{0, 1, 2, 3, 63, 64, 65, 1 << 20, r.Uint64(), r.Uint64() >> 40} {
			if got, want := pc.Pow(e), Pow(base, e); got != want {
				t.Fatalf("base %d: PowCache.Pow(%d) = %d, want %d", base, e, got, want)
			}
		}
	}
	pc := NewPowCache(0)
	if pc.Pow(0) != 1 || pc.Pow(5) != 0 {
		t.Fatalf("zero base: Pow(0)=%d Pow(5)=%d, want 1, 0", pc.Pow(0), pc.Pow(5))
	}
}

// ---------------------------------------------------------------------------
// Micro-benchmarks: the two exponentiation paths the fingerprint sketches
// use. (BenchmarkMul — the unit of work of every hash kernel — lives in
// field_test.go.)
// ---------------------------------------------------------------------------

func BenchmarkPowLadder(b *testing.B) {
	base := New(0x123456789ABCDEF)
	b.ReportAllocs()
	var sink Elem
	for i := 0; i < b.N; i++ {
		sink += Pow(base, uint64(i)&0xFFFF)
	}
	_ = sink
}

func BenchmarkPowCache(b *testing.B) {
	pc := NewPowCache(New(0x123456789ABCDEF))
	b.ReportAllocs()
	var sink Elem
	for i := 0; i < b.N; i++ {
		sink += pc.Pow(uint64(i) & 0xFFFF)
	}
	_ = sink
}
