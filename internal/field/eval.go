package field

import (
	"unsafe"

	"repro/internal/kernel"
)

// Words reinterprets a []Elem as the raw []uint64 view the internal/kernel
// layer dispatches on — a zero-copy cast, valid because Elem is a uint64 in
// canonical form. Writes through the view are writes to the elements.
func Words(es []Elem) []uint64 {
	if len(es) == 0 {
		return nil
	}
	return unsafe.Slice((*uint64)(unsafe.Pointer(&es[0])), len(es))
}

// Fast multi-point polynomial evaluation and the structured Vandermonde
// solve behind the query-side recovery engine (internal/sparse). Three
// kernels, each pinned bit-identical to its scalar reference by the property
// tests in eval_test.go:
//
//   - FDStepper: evaluation at the consecutive points x0, x0+1, x0+2, … by
//     forward finite differences. After an O(e²) setup the degree-e Horner
//     chain (e dependent Muls per point) collapses to e independent Adds per
//     point — the access pattern of the Chien scan, which probes rev(loc) at
//     a_i = 1..n.
//   - Poly.EvalBatch: multi-point Horner for arbitrary point sets, dispatched
//     through internal/kernel — 4-lane transposed chains on AVX2, a plain
//     per-point loop on the scalar reference — so the multiplier pipeline
//     stays full instead of one chain draining per point.
//   - VandermondeSolver: the transposed-Vandermonde system
//     Σ_t v_t·a_t^j = y_j (the value solve of Lemma 5 recovery) in O(e²)
//     through the master polynomial Π(x-a_t), per-point synthetic division,
//     and one batched inversion — replacing O(e³) Gaussian elimination with
//     e full inversions.

// FDStepper evaluates a polynomial at the consecutive points x0, x0+1, …
// using forward finite differences: d[k] holds Δᵏp at the current point, and
// one step updates d[k] += d[k+1] for all k — deg(p) field additions, no
// multiplications. Field arithmetic is exact, so every value is bit-identical
// to Poly.Eval at the same point.
//
// The zero value is ready for Reset. Resetting costs deg+1 Horner
// evaluations plus an O(deg²) difference table — worth it from roughly deg
// consecutive points onward.
type FDStepper struct {
	d []Elem
}

// NewFDStepper returns a stepper positioned at x0.
func NewFDStepper(p Poly, x0 Elem) *FDStepper {
	fd := &FDStepper{}
	fd.Reset(p, x0)
	return fd
}

// Reset repositions the stepper at x0 for polynomial p, reusing its internal
// table (no allocation once the table has grown to the largest degree seen).
func (fd *FDStepper) Reset(p Poly, x0 Elem) {
	deg := p.Degree()
	if deg < 0 {
		// Zero polynomial: every value is 0.
		fd.d = append(fd.d[:0], 0)
		return
	}
	if cap(fd.d) < deg+1 {
		fd.d = make([]Elem, deg+1)
	}
	d := fd.d[:deg+1]
	fd.d = d
	// d[j] = p(x0 + j), then difference in place: after pass k,
	// d[j] = Δᵏp(x0 + j - k) for j >= k, so d[k] = Δᵏp(x0).
	x := x0
	for j := 0; j <= deg; j++ {
		d[j] = p.Eval(x)
		x = Add(x, 1)
	}
	for k := 1; k <= deg; k++ {
		for j := deg; j >= k; j-- {
			d[j] = Sub(d[j], d[j-1])
		}
	}
}

// Next returns p at the current point and advances to the next one. The i-th
// call after Reset(p, x0) returns exactly p.Eval(x0 + i).
func (fd *FDStepper) Next() Elem {
	d := fd.d
	v := d[0]
	for k := 0; k+1 < len(d); k++ {
		d[k] = Add(d[k], d[k+1])
	}
	return v
}

// NextBlock fills out with the next len(out) consecutive values — out[t] is
// what the (t+1)-th of len(out) Next calls would return, bit for bit. The
// block form amortizes one kernel dispatch over the whole run and lets the
// vector backends update the difference table SIMD-wide, which is where the
// Chien scan of sparse recovery spends its time.
func (fd *FDStepper) NextBlock(out []Elem) {
	kernel.FDScan(Words(fd.d), Words(out))
}

// EvalBatch evaluates p at every point of xs into out (len(out) must be at
// least len(xs)) through the dispatched kernel: four transposed Horner chains
// per SIMD step on vector backends, a straight per-point Horner loop on the
// scalar one. Per point the operation sequence is exact mod-p Horner in
// canonical form, so results are bit-identical to Eval across all backends.
func (p Poly) EvalBatch(xs []Elem, out []Elem) {
	kernel.PolyEvalBatch(Words(p), Words(xs), Words(out))
}

// VandermondeSolver solves transposed Vandermonde systems
//
//	Σ_t v_t · points[t]^j = y[j],  j = 0..e-1,
//
// in O(e²) field operations — the value solve of Lemma 5 recovery, where the
// points are the decoded support locations and y is the syndrome prefix.
//
// Method: with M(x) = Π_t (x - a_t) and Q_t(x) = M(x)/(x - a_t), the
// Lagrange basis polynomial through a_t is Q_t/Q_t(a_t), and the solution of
// the transposed system is v_t = (Σ_j q_{t,j}·y_j) / Q_t(a_t) — the
// transpose of interpolation. Each Q_t comes from one synthetic division of
// M, and all denominators are inverted together by one batched (Montgomery
// trick) inversion: one Inv plus O(e) Muls instead of e ladder inversions.
//
// The zero value is ready for use; scratch is reused across calls (no
// allocation once grown). The system has a unique solution whenever the
// points are distinct — the same elements Gaussian elimination would
// produce, so decodes are bit-identical to the generic SolveLinear path.
type VandermondeSolver struct {
	master []Elem // Π (x - a_t), degree e
	quot   []Elem // synthetic-division quotient Q_t
	num    []Elem // numerators Σ_j q_{t,j} y_j
	den    []Elem // denominators Q_t(a_t) = M'(a_t)
	pref   []Elem // batched-inversion prefix products
}

func growElems(buf *[]Elem, n int) []Elem {
	if cap(*buf) < n {
		*buf = make([]Elem, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// Solve writes the solution into out (len(out) must be at least e =
// len(points); len(y) must be at least e). It returns false when the system
// is singular, i.e. when two points coincide.
func (vs *VandermondeSolver) Solve(points, y, out []Elem) bool {
	e := len(points)
	if e == 0 {
		return true
	}
	// Master polynomial M(x) = Π (x - a_t), built in place low-to-high:
	// multiplying by (x - a) maps m[j] ← m[j-1] - a·m[j], walked top-down so
	// each old coefficient is read before it is overwritten.
	m := growElems(&vs.master, e+1)
	m[0] = 1
	for d, a := range points {
		m[d+1] = m[d]
		for j := d; j >= 1; j-- {
			m[j] = Sub(m[j-1], Mul(a, m[j]))
		}
		m[0] = Mul(Neg(a), m[0])
	}
	q := growElems(&vs.quot, e)
	num := growElems(&vs.num, e)
	den := growElems(&vs.den, e)
	for t, a := range points {
		// Q_t = M / (x - a_t) by synthetic division (exact: a_t is a root).
		q[e-1] = m[e]
		for j := e - 2; j >= 0; j-- {
			q[j] = Add(m[j+1], Mul(a, q[j+1]))
		}
		// Numerator ⟨q, y⟩ and denominator Q_t(a_t), fused over one pass.
		var n Elem
		d := q[e-1]
		for j := e - 2; j >= 0; j-- {
			d = Add(Mul(d, a), q[j])
		}
		for j := 0; j < e; j++ {
			n = Add(n, Mul(q[j], y[j]))
		}
		num[t], den[t] = n, d
	}
	// Batched inversion of all denominators: prefix products, one Inv, then
	// unwind. A zero anywhere collapses the full product to zero.
	pref := growElems(&vs.pref, e)
	pref[0] = den[0]
	for t := 1; t < e; t++ {
		pref[t] = Mul(pref[t-1], den[t])
	}
	if pref[e-1] == 0 {
		return false
	}
	inv := Inv(pref[e-1])
	for t := e - 1; t >= 1; t-- {
		out[t] = Mul(num[t], Mul(inv, pref[t-1]))
		inv = Mul(inv, den[t])
	}
	out[0] = Mul(num[0], inv)
	return true
}
