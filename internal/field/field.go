// Package field implements arithmetic over the prime field GF(2^61-1).
//
// The Mersenne prime 2^61-1 supports fast modular reduction (two folds of a
// 128-bit product) while leaving enough headroom that polynomially bounded
// stream values (|x_i| <= poly(n)) embed injectively into the field. The
// package provides the element arithmetic, dense polynomials, a
// Berlekamp-Massey minimal-LFSR solver and a small Gaussian elimination —
// exactly the toolkit needed by the k-wise independent hash families
// (internal/hash) and the exact sparse recovery of Lemma 5 (internal/sparse)
// — plus the query-side evaluation kernels (eval.go): FDStepper walks
// consecutive evaluation points by forward finite differences (e Adds per
// point after O(e²) setup, the Chien-scan access pattern), Poly.EvalBatch is
// the transposed 4-wide multi-point Horner for arbitrary point sets, and
// VandermondeSolver solves the transposed Vandermonde value system of
// Lemma 5 recovery in O(e²).
package field

import "math/bits"

// Modulus is the field characteristic, the Mersenne prime 2^61 - 1.
const Modulus uint64 = (1 << 61) - 1

// Elem is an element of GF(2^61-1), always kept in canonical form [0, Modulus).
type Elem uint64

// reduce maps any uint64 into canonical form. The input may be up to 2^64-1;
// two folds suffice because after one fold the value is < 2^62.
func reduce(x uint64) Elem {
	x = (x & Modulus) + (x >> 61)
	if x >= Modulus {
		x -= Modulus
	}
	return Elem(x)
}

// New returns the canonical element for an arbitrary uint64.
func New(x uint64) Elem { return reduce(x) }

// FromInt64 embeds a signed integer into the field, mapping negatives to
// Modulus - |v|. Values with |v| < Modulus/2 round-trip through ToInt64.
func FromInt64(v int64) Elem {
	if v >= 0 {
		return reduce(uint64(v))
	}
	m := reduce(uint64(-v))
	if m == 0 {
		return 0
	}
	return Elem(Modulus) - m
}

// ToInt64 inverts FromInt64 for elements that encode signed values of
// magnitude below Modulus/2 (all stream values do: |x_i| <= poly(n)).
func (e Elem) ToInt64() int64 {
	if uint64(e) > Modulus/2 {
		return -int64(Modulus - uint64(e))
	}
	return int64(e)
}

// Add returns a + b in the field.
func Add(a, b Elem) Elem {
	s := uint64(a) + uint64(b)
	if s >= Modulus {
		s -= Modulus
	}
	return Elem(s)
}

// Sub returns a - b in the field.
func Sub(a, b Elem) Elem {
	if a >= b {
		return a - b
	}
	return a + Elem(Modulus) - b
}

// Neg returns -a in the field.
func Neg(a Elem) Elem {
	if a == 0 {
		return 0
	}
	return Elem(Modulus) - a
}

// Mul returns a * b in the field using a 128-bit product and Mersenne folding.
func Mul(a, b Elem) Elem {
	hi, lo := bits.Mul64(uint64(a), uint64(b))
	// a,b < 2^61 so hi < 2^58. The product is hi*2^64 + lo; since
	// 2^61 = 1 (mod Modulus), 2^64 = 8 (mod Modulus):
	//   value = (lo & M) + (lo >> 61) + hi*8 (mod Modulus)
	part := (lo & Modulus) + (lo >> 61) + hi<<3 // < 2^61 + 2^3 + 2^61 < 2^63
	return reduce(part)
}

// Pow returns a^e by square-and-multiply.
func Pow(a Elem, e uint64) Elem {
	r := Elem(1)
	base := a
	for e > 0 {
		if e&1 == 1 {
			r = Mul(r, base)
		}
		base = Mul(base, base)
		e >>= 1
	}
	return r
}

// PowCache precomputes base^(2^i) for i < 64 so repeated exponentiations of
// one base cost a single Mul per set bit of the exponent, instead of the full
// square-and-multiply ladder of Pow (~61 squarings). The fingerprint hot
// paths (sparse recovery and the distinct-elements estimator evaluate
// rho^index once per update per repetition) are the intended users: for
// stream indices below 2^b the cost drops from ~61+b/2 to at most b
// multiplications.
type PowCache struct {
	sq [64]Elem // sq[i] = base^(2^i)
}

// NewPowCache builds the square table for base.
func NewPowCache(base Elem) *PowCache {
	var pc PowCache
	pc.sq[0] = base
	for i := 1; i < len(pc.sq); i++ {
		pc.sq[i] = Mul(pc.sq[i-1], pc.sq[i-1])
	}
	return &pc
}

// Base returns the cached base (sq[0]).
func (pc *PowCache) Base() Elem { return pc.sq[0] }

// Pow returns base^e, identical to Pow(base, e) for every e.
func (pc *PowCache) Pow(e uint64) Elem {
	r := Elem(1)
	for e != 0 {
		i := bits.TrailingZeros64(e)
		r = Mul(r, pc.sq[i])
		e &= e - 1
	}
	return r
}

// Inv returns the multiplicative inverse a^(Modulus-2). Inv(0) returns 0;
// callers that can receive zero must check first.
func Inv(a Elem) Elem {
	if a == 0 {
		return 0
	}
	return Pow(a, Modulus-2)
}

// Div returns a / b. Div by zero returns 0 (callers must guard).
func Div(a, b Elem) Elem { return Mul(a, Inv(b)) }
