package field

// Poly is a dense polynomial over GF(2^61-1) with coefficient i of x^i at
// index i. The zero polynomial is the empty (or all-zero) slice.
type Poly []Elem

// Degree returns the degree of p, or -1 for the zero polynomial.
func (p Poly) Degree() int {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] != 0 {
			return i
		}
	}
	return -1
}

// trim removes trailing zero coefficients.
func (p Poly) trim() Poly {
	d := p.Degree()
	return p[:d+1]
}

// Eval evaluates p at x by Horner's rule.
func (p Poly) Eval(x Elem) Elem {
	var acc Elem
	for i := len(p) - 1; i >= 0; i-- {
		acc = Add(Mul(acc, x), p[i])
	}
	return acc
}

// Reverse returns the reversal x^d * p(1/x) where d = Degree(p). A nonzero
// alpha is a root of Reverse(p) iff 1/alpha is a root of p — this lets the
// Chien search in internal/sparse scan candidate positions without field
// inversions.
func (p Poly) Reverse() Poly {
	d := p.Degree()
	if d < 0 {
		return nil
	}
	r := make(Poly, d+1)
	for i := 0; i <= d; i++ {
		r[i] = p[d-i]
	}
	return r
}

// Clone returns an independent copy of p.
func (p Poly) Clone() Poly {
	q := make(Poly, len(p))
	copy(q, p)
	return q
}

// BerlekampMassey returns the minimal connection polynomial C with C[0] = 1
// such that for all j >= L (L = Degree(C)):
//
//	s[j] + C[1]*s[j-1] + ... + C[L]*s[j-L] = 0.
//
// For a syndrome sequence s_j = sum_i v_i a_i^j of an e-sparse vector with
// distinct nonzero evaluation points a_i and len(s) >= 2e, the result is
// exactly the locator polynomial prod_i (1 - a_i x), which is the fact the
// sparse recovery of Lemma 5 relies on.
func BerlekampMassey(s []Elem) Poly {
	c := Poly{1} // current connection polynomial
	b := Poly{1} // copy at last length change
	var l int    // current LFSR length
	m := 1       // steps since last length change
	bd := Elem(1)
	for i := 0; i < len(s); i++ {
		// discrepancy d = s[i] + sum_{k=1..l} c[k] s[i-k]
		d := s[i]
		for k := 1; k <= l && k < len(c); k++ {
			d = Add(d, Mul(c[k], s[i-k]))
		}
		if d == 0 {
			m++
			continue
		}
		// c(x) -= (d/bd) * x^m * b(x)
		coef := Mul(d, Inv(bd))
		if 2*l <= i {
			t := c.Clone()
			c = subShifted(c, b, coef, m)
			l = i + 1 - l
			b = t
			bd = d
			m = 1
		} else {
			c = subShifted(c, b, coef, m)
			m++
		}
	}
	return c.trim()
}

// subShifted returns c - coef * x^shift * b.
func subShifted(c, b Poly, coef Elem, shift int) Poly {
	n := len(b) + shift
	if len(c) > n {
		n = len(c)
	}
	out := make(Poly, n)
	copy(out, c)
	for i, bi := range b {
		if bi == 0 {
			continue
		}
		out[i+shift] = Sub(out[i+shift], Mul(coef, bi))
	}
	return out
}

// SolveLinear solves the square system A x = y in place by Gaussian
// elimination with partial (first-nonzero) pivoting. It returns false when A
// is singular. A and y are clobbered. Intended for the small (e <= s)
// Vandermonde value-solve inside sparse recovery, not as a general solver.
func SolveLinear(a [][]Elem, y []Elem) ([]Elem, bool) {
	n := len(a)
	for col := 0; col < n; col++ {
		// find pivot
		piv := -1
		for r := col; r < n; r++ {
			if a[r][col] != 0 {
				piv = r
				break
			}
		}
		if piv < 0 {
			return nil, false
		}
		a[col], a[piv] = a[piv], a[col]
		y[col], y[piv] = y[piv], y[col]
		inv := Inv(a[col][col])
		for c := col; c < n; c++ {
			a[col][c] = Mul(a[col][c], inv)
		}
		y[col] = Mul(y[col], inv)
		for r := 0; r < n; r++ {
			if r == col || a[r][col] == 0 {
				continue
			}
			f := a[r][col]
			for c := col; c < n; c++ {
				a[r][c] = Sub(a[r][c], Mul(f, a[col][c]))
			}
			y[r] = Sub(y[r], Mul(f, y[col]))
		}
	}
	return y, true
}
