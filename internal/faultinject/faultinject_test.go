package faultinject

import (
	"errors"
	"testing"
)

func TestNilInjectorNeverFires(t *testing.T) {
	var in *Injector
	if in.Fire(WorkerPanic) || in.Err(JournalAppend) != nil || in.Fired() != 0 {
		t.Fatal("nil injector must be a no-op")
	}
	in.MaybePanic(WorkerPanic) // must not panic
	buf := []byte{0xAA}
	if in.FlipBit(CodecDecode, buf) || buf[0] != 0xAA {
		t.Fatal("nil injector must not corrupt")
	}
	if n := in.ShortLen(CheckpointWrite, 7); n != 7 {
		t.Fatalf("nil ShortLen = %d, want 7", n)
	}
}

func TestZeroRateNeverFires(t *testing.T) {
	in := New(1, 0)
	for i := 0; i < 10000; i++ {
		if in.Fire(WorkerPanic) {
			t.Fatal("rate 0 fired")
		}
	}
}

func TestFullRateAlwaysFires(t *testing.T) {
	in := New(1, 1)
	for i := 0; i < 100; i++ {
		if !in.Fire(WorkerPanic) {
			t.Fatal("rate 1 missed")
		}
	}
}

// TestDeterministicSchedule: the set of firing draws for a point is a pure
// function of the seed, whatever order points interleave in.
func TestDeterministicSchedule(t *testing.T) {
	record := func() []bool {
		in := New(99, 0.25)
		out := make([]bool, 200)
		for i := range out {
			in.Fire(CheckpointSync) // interleaved other-point traffic
			out[i] = in.Fire(WorkerPanic)
		}
		return out
	}
	a, b := record(), record()
	fires := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs across identically seeded runs", i)
		}
		if a[i] {
			fires++
		}
	}
	if fires == 0 || fires == len(a) {
		t.Fatalf("rate 0.25 fired %d/%d draws — schedule degenerate", fires, len(a))
	}
}

func TestSeedChangesSchedule(t *testing.T) {
	a, b := New(1, 0.5), New(2, 0.5)
	same := true
	for i := 0; i < 64; i++ {
		if a.Fire(WorkerPanic) != b.Fire(WorkerPanic) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical 64-draw schedules")
	}
}

func TestOnlyRestrictsPoints(t *testing.T) {
	in := New(7, 1).Only(JournalAppend)
	if in.Fire(WorkerPanic) {
		t.Fatal("point outside Only fired")
	}
	if !in.Fire(JournalAppend) {
		t.Fatal("point inside Only did not fire at rate 1")
	}
}

func TestErrIsTyped(t *testing.T) {
	in := New(3, 1)
	err := in.Err(CheckpointSync)
	var ie *InjectedErr
	if !errors.As(err, &ie) || ie.Point != CheckpointSync {
		t.Fatalf("Err = %v, want typed *InjectedErr for %s", err, CheckpointSync)
	}
}

func TestMaybePanicValue(t *testing.T) {
	in := New(3, 1)
	defer func() {
		r := recover()
		ip, ok := r.(InjectedPanic)
		if !ok || ip.Point != WorkerPanic {
			t.Fatalf("recovered %v, want InjectedPanic at %s", r, WorkerPanic)
		}
	}()
	in.MaybePanic(WorkerPanic)
	t.Fatal("MaybePanic at rate 1 did not panic")
}

func TestFlipBitCorruptsExactlyOneBit(t *testing.T) {
	in := New(5, 1)
	data := make([]byte, 64)
	if !in.FlipBit(CodecDecode, data) {
		t.Fatal("FlipBit at rate 1 did not fire")
	}
	bits := 0
	for _, b := range data {
		for ; b != 0; b &= b - 1 {
			bits++
		}
	}
	if bits != 1 {
		t.Fatalf("FlipBit changed %d bits, want exactly 1", bits)
	}
}

func TestShortLenIsStrictPrefix(t *testing.T) {
	in := New(5, 1)
	for i := 0; i < 100; i++ {
		if n := in.ShortLen(CheckpointWrite, 1000); n < 0 || n >= 1000 {
			t.Fatalf("ShortLen = %d, want a strict prefix of 1000", n)
		}
	}
}

func TestFromEnv(t *testing.T) {
	t.Setenv(EnvVar, "")
	if in, err := FromEnv(); in != nil || err != nil {
		t.Fatalf("empty env: got (%v, %v), want disabled", in, err)
	}
	t.Setenv(EnvVar, "42:0.5")
	in, err := FromEnv()
	if err != nil || in == nil {
		t.Fatalf("valid env rejected: %v", err)
	}
	if in.seed != 42 {
		t.Fatalf("seed = %d, want 42", in.seed)
	}
	for _, bad := range []string{"42", "x:0.5", "42:nope", "42:1.5", "42:-1"} {
		t.Setenv(EnvVar, bad)
		if _, err := FromEnv(); err == nil {
			t.Fatalf("malformed %q accepted", bad)
		}
	}
}
