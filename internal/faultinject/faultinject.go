// Package faultinject is a deterministic, seed-driven fault injector for the
// durability and supervision layers. Injection points are compiled into the
// checkpoint store's I/O (short writes, fsync failures, bit flips, read
// errors), the journal append path, the engine's queues and merge, and the
// shard workers (panics). A nil *Injector is the disabled state: every hook
// is a nil-receiver no-op costing one pointer compare, so production paths
// carry no overhead.
//
// # Determinism
//
// Each injection point keeps its own atomic fire counter, and the decision
// for the k-th evaluation of point p is a pure function of (seed, p, k):
// splitmix64(seed ⊕ fnv(p) ⊕ k) compared against the rate threshold. The
// *schedule* of faults — which evaluations of which points fail — is
// therefore exactly reproducible from the seed alone, even when the
// evaluations happen on worker goroutines (concurrency may permute which
// goroutine draws which k, but the set of failing draws is fixed). The chaos
// suite sweeps seeds and prints the failing seed as a one-line repro.
//
// # Enabling
//
// Programmatically: faultinject.New(seed, rate), handed to
// checkpoint.Options.Injector / engine Config.Injector. From the
// environment: REPRO_FAULTS="seed:rate" (e.g. REPRO_FAULTS=42:0.01) makes
// FromEnv return a live injector; unset or empty returns nil (disabled).
package faultinject

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Point names one injection site. The constants below are the sites compiled
// into this repository; Fire accepts any Point, so tests can add private
// ones.
type Point string

const (
	// CheckpointWrite short-writes a generation file: only a prefix of the
	// bytes reaches disk (torn write).
	CheckpointWrite Point = "checkpoint/write"
	// CheckpointSync fails the fsync of a generation file or directory.
	CheckpointSync Point = "checkpoint/sync"
	// CheckpointCorrupt flips one bit in a generation file's payload on its
	// way to disk (lying-hardware corruption that survives the atomic
	// rename).
	CheckpointCorrupt Point = "checkpoint/corrupt"
	// CheckpointRead fails reading a generation file back.
	CheckpointRead Point = "checkpoint/read"
	// CodecDecode flips one bit in bytes about to be decoded, exercising the
	// codec's fingerprint and framing detection.
	CodecDecode Point = "codec/decode"
	// JournalAppend fails a journal record append.
	JournalAppend Point = "journal/append"
	// EngineQueue perturbs the engine's queue admission: the producer treats
	// the target queue as momentarily full, exercising the backpressure and
	// spill paths. A scheduling perturbation only — exactness is unaffected.
	EngineQueue Point = "engine/queue"
	// EngineMerge fails a replica fold during Results/rollback.
	EngineMerge Point = "engine/merge"
	// WorkerPanic panics a shard worker mid-batch, exercising the engine's
	// recover() isolation and quarantine/respawn path.
	WorkerPanic Point = "engine/worker-panic"
)

// InjectedPanic is the value a WorkerPanic injection panics with, so the
// engine's supervision tests can tell injected panics from real bugs.
type InjectedPanic struct {
	Point Point
	Seq   uint64
}

func (p InjectedPanic) Error() string {
	return fmt.Sprintf("faultinject: injected panic at %s (draw %d)", p.Point, p.Seq)
}

// InjectedErr is the typed error injected at I/O points.
type InjectedErr struct {
	Point Point
	Seq   uint64
}

func (e *InjectedErr) Error() string {
	return fmt.Sprintf("faultinject: injected fault at %s (draw %d)", e.Point, e.Seq)
}

// Injector decides, deterministically per seed, which evaluations of which
// injection points fail. The zero value must not be used; construct with
// New. A nil *Injector is valid everywhere and never fires.
type Injector struct {
	seed      uint64
	threshold uint64 // rate scaled to [0, 2^64)
	only      map[Point]bool

	mu       sync.Mutex
	counters map[Point]*atomic.Uint64
	fired    atomic.Int64
}

// New builds an injector firing each point's evaluations independently with
// the given probability (clamped to [0,1]), scheduled by seed.
func New(seed uint64, rate float64) *Injector {
	if rate < 0 {
		rate = 0
	}
	var threshold uint64
	if rate >= 1 {
		threshold = ^uint64(0)
	} else {
		threshold = uint64(rate * float64(1<<63) * 2)
	}
	return &Injector{
		seed:      seed,
		threshold: threshold,
		counters:  make(map[Point]*atomic.Uint64),
	}
}

// Only restricts the injector to the listed points (all others never fire)
// and returns the receiver, for chaining at construction.
func (in *Injector) Only(points ...Point) *Injector {
	in.only = make(map[Point]bool, len(points))
	for _, p := range points {
		in.only[p] = true
	}
	return in
}

// EnvVar is the environment knob FromEnv reads: "seed:rate".
const EnvVar = "REPRO_FAULTS"

// FromEnv builds an injector from REPRO_FAULTS="seed:rate", or returns nil
// (disabled) when the variable is unset or empty. A malformed value is an
// error rather than a silent no-op, so a typo'd repro line cannot
// masquerade as a clean run.
func FromEnv() (*Injector, error) {
	v := strings.TrimSpace(os.Getenv(EnvVar))
	if v == "" {
		return nil, nil
	}
	seedStr, rateStr, ok := strings.Cut(v, ":")
	if !ok {
		return nil, fmt.Errorf("faultinject: %s=%q: want \"seed:rate\"", EnvVar, v)
	}
	seed, err := strconv.ParseUint(seedStr, 10, 64)
	if err != nil {
		return nil, fmt.Errorf("faultinject: %s seed %q: %w", EnvVar, seedStr, err)
	}
	rate, err := strconv.ParseFloat(rateStr, 64)
	if err != nil || rate < 0 || rate > 1 {
		return nil, fmt.Errorf("faultinject: %s rate %q: want a probability in [0,1]", EnvVar, rateStr)
	}
	return New(seed, rate), nil
}

// counter returns the point's fire counter, creating it on first use.
func (in *Injector) counter(p Point) *atomic.Uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	c := in.counters[p]
	if c == nil {
		c = new(atomic.Uint64)
		in.counters[p] = c
	}
	return c
}

// fnv1a hashes the point name into the decision stream.
func fnv1a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// splitmix64 is the finalizer turning (seed, point, draw) into a uniform
// 64-bit decision word.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// eval draws the next decision for the point, returning (sequence, fired).
func (in *Injector) eval(p Point) (uint64, bool) {
	if in == nil {
		return 0, false
	}
	if in.only != nil && !in.only[p] {
		return 0, false
	}
	seq := in.counter(p).Add(1) - 1
	fire := splitmix64(in.seed^fnv1a(string(p))^seq) < in.threshold
	if fire {
		in.fired.Add(1)
	}
	return seq, fire
}

// Fire reports whether this evaluation of the point should fail. Nil-safe:
// a nil injector never fires.
func (in *Injector) Fire(p Point) bool {
	_, fired := in.eval(p)
	return fired
}

// Err returns a typed *InjectedErr when this evaluation fires, nil
// otherwise — the one-liner for error-returning injection sites.
func (in *Injector) Err(p Point) error {
	seq, fired := in.eval(p)
	if !fired {
		return nil
	}
	return &InjectedErr{Point: p, Seq: seq}
}

// MaybePanic panics with an InjectedPanic when this evaluation fires.
func (in *Injector) MaybePanic(p Point) {
	if seq, fired := in.eval(p); fired {
		panic(InjectedPanic{Point: p, Seq: seq})
	}
}

// FlipBit deterministically corrupts one bit of data in place when this
// evaluation fires, returning whether it did. The bit position is drawn from
// the same decision stream, so the corruption is reproducible.
func (in *Injector) FlipBit(p Point, data []byte) bool {
	seq, fired := in.eval(p)
	if !fired || len(data) == 0 {
		return false
	}
	bit := splitmix64(in.seed^fnv1a(string(p))^(seq<<1)^0xC0FFEE) % uint64(len(data)*8)
	data[bit/8] ^= 1 << (bit % 8)
	return true
}

// ShortLen returns a deterministic strict prefix length for data when this
// evaluation fires, and len(data) otherwise — the torn-write injection for
// file writes.
func (in *Injector) ShortLen(p Point, n int) int {
	seq, fired := in.eval(p)
	if !fired || n == 0 {
		return n
	}
	return int(splitmix64(in.seed^fnv1a(string(p))^(seq<<1)^0x7EA4) % uint64(n))
}

// Fired reports how many faults this injector has injected in total.
func (in *Injector) Fired() int64 {
	if in == nil {
		return 0
	}
	return in.fired.Load()
}
