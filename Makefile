# Local dev and CI run the exact same commands: the ci.yml jobs each invoke
# one of these targets.

GO ?= go

.PHONY: build test race bench lint lint-vet lint-fmt fmt

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector run with coverage, the CI test job. Coverage lands in
# coverage.out (uploaded as a CI artifact).
race:
	$(GO) test -race -coverprofile=coverage.out -covermode=atomic ./...

# One iteration of every benchmark — a smoke test that the bench harness and
# the serial-vs-engine ingestion comparison still run, not a measurement.
bench:
	$(GO) test -run '^$$' -bench=. -benchtime=1x ./...

lint: lint-vet lint-fmt

lint-vet:
	$(GO) vet ./...

lint-fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

fmt:
	gofmt -w .
