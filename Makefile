# Local dev and CI run the exact same commands: the ci.yml jobs each invoke
# one of these targets.

GO ?= go

.PHONY: build test race bench microbench profile lint lint-vet lint-fmt fmt

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector run with coverage, the CI test job. Coverage lands in
# coverage.out (uploaded as a CI artifact).
race:
	$(GO) test -race -coverprofile=coverage.out -covermode=atomic ./...

# One iteration of every benchmark — a smoke test that the bench harness and
# the serial-vs-engine ingestion comparison still run, not a measurement.
bench:
	$(GO) test -run '^$$' -bench=. -benchtime=1x ./...

# The PR-2 kernel micro-benchmarks (field multiply / exponentiation, scalar
# vs flat-batch hash kernels, count-sketch hot paths) at a benchtime large
# enough to be meaningful in CI; the zero-allocation contract is enforced by
# the accompanying tests, the numbers land in the job log. BENCH_PR2.json
# holds the committed baseline-vs-after snapshot.
microbench:
	$(GO) test -run '^$$' -bench 'Mul$$|Pow|Eval|Scalar|Batch' -benchtime 1000x \
		./internal/field ./internal/hash ./internal/countsketch

# CPU profile of the 10M-update batched ingest (the headline workload):
# writes cpu.out for `go tool pprof cpu.out`.
profile:
	$(GO) test -run '^$$' -bench 'BenchmarkIngestSerialBatched$$' -benchtime 2x \
		-cpuprofile cpu.out .

lint: lint-vet lint-fmt

lint-vet:
	$(GO) vet ./...

lint-fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

fmt:
	gofmt -w .
